// Command sionsplit extracts the logical task-local files of a SION
// multifile and recreates them as physical files (the paper's §3.3 "split"
// utility).
//
// Usage: sionsplit [-pattern task-%d.bin] [-ranks 0,3,7]
// [-backend posix|objstore[,profile]] <multifile>
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/backendflag"
	sion "repro/internal/core"
)

func main() {
	pattern := flag.String("pattern", "task-%d.bin", "output file name pattern (%d = task rank)")
	rankList := flag.String("ranks", "", "comma-separated ranks to extract (default: all)")
	backend := backendflag.Flag()
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sionsplit [-pattern P] [-ranks R,...] <multifile>")
		os.Exit(2)
	}
	var ranks []int
	if *rankList != "" {
		for _, s := range strings.Split(*rankList, ",") {
			r, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(os.Stderr, "sionsplit: bad rank %q\n", s)
				os.Exit(2)
			}
			ranks = append(ranks, r)
		}
	}
	stack, err := backendflag.Build(*backend, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sionsplit:", err)
		os.Exit(2)
	}
	fs := stack.FS
	if err := sion.Split(fs, flag.Arg(0), fs, *pattern, ranks); err != nil {
		fmt.Fprintln(os.Stderr, "sionsplit:", err)
		os.Exit(1)
	}
}
