// Command sionbench regenerates the paper's evaluation tables and figures
// on the simulated Jugene and Jaguar machines.
//
// Usage:
//
//	sionbench [-exp fig3a,...|all] [-scale N]
//
// With -scale 1 (the default) every experiment runs at the paper's full
// configuration (up to 64K tasks and terabytes of simulated I/O); larger
// scale divisors shrink task counts and volumes proportionally for quick
// runs. Output is one text table per experiment, with the paper's numbers
// referenced in the notes for comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/expt"
)

func main() {
	exps := flag.String("exp", "all", "comma-separated experiment ids ("+strings.Join(expt.Names(), ",")+") or 'all'")
	scale := flag.Int("scale", 1, "scale divisor for task counts and data volumes (1 = paper scale)")
	flag.Parse()

	var names []string
	if *exps == "all" {
		names = expt.Names()
	} else {
		names = strings.Split(*exps, ",")
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		run := expt.ByName(name)
		if run == nil {
			fmt.Fprintf(os.Stderr, "sionbench: unknown experiment %q (known: %s)\n",
				name, strings.Join(expt.Names(), ", "))
			os.Exit(2)
		}
		start := time.Now()
		res := run(*scale)
		res.Notes = append(res.Notes, fmt.Sprintf("regenerated in %.1fs wall time at scale %d", time.Since(start).Seconds(), *scale))
		res.Print(os.Stdout)
	}
}
