// Command sionverify checks the structural integrity of a SION multifile:
// metablocks parse, the task placement is consistent, per-block byte
// counts fit their chunks, and (when present) the per-chunk headers agree
// with metablock 2.
//
// Usage: sionverify [-backend posix|objstore[,profile]] <multifile>
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/backendflag"
	sion "repro/internal/core"
)

func main() {
	backend := backendflag.Flag()
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sionverify [-backend B] <multifile>")
		os.Exit(2)
	}
	stack, err := backendflag.Build(*backend, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sionverify:", err)
		os.Exit(2)
	}
	if err := sion.Verify(stack.FS, flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "sionverify:", err)
		os.Exit(1)
	}
	fmt.Println("sionverify: multifile verifies clean")
}
