// Command sionverify checks the structural integrity of a SION multifile:
// metablocks parse, the task placement is consistent, per-block byte
// counts fit their chunks, and (when present) the per-chunk headers agree
// with metablock 2.
//
// Usage: sionverify <multifile>
package main

import (
	"fmt"
	"os"

	sion "repro/internal/core"
	"repro/internal/fsio"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: sionverify <multifile>")
		os.Exit(2)
	}
	if err := sion.Verify(fsio.NewOS(""), os.Args[1]); err != nil {
		fmt.Fprintln(os.Stderr, "sionverify:", err)
		os.Exit(1)
	}
	fmt.Println("sionverify: multifile verifies clean")
}
