// Command siondefrag rewrites a SION multifile so that each task's data
// occupies a single chunk in one block, removing the logical gaps left by
// partially filled blocks (the paper's §3.3 "defragment" utility).
//
// Usage: siondefrag [-backend posix|objstore[,profile]] <src-multifile> <dst-multifile>
//
// The backend applies to both sides of the rewrite; with an objstore
// backend the destination inherits the backend's part-aligned geometry
// (fsio.FileSystem.BlockSize reports the part size).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/backendflag"
	sion "repro/internal/core"
)

func main() {
	backend := backendflag.Flag()
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: siondefrag [-backend B] <src> <dst>")
		os.Exit(2)
	}
	stack, err := backendflag.Build(*backend, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "siondefrag:", err)
		os.Exit(2)
	}
	fs := stack.FS
	if err := sion.Defrag(fs, flag.Arg(0), fs, flag.Arg(1)); err != nil {
		fmt.Fprintln(os.Stderr, "siondefrag:", err)
		os.Exit(1)
	}
}
