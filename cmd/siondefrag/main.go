// Command siondefrag rewrites a SION multifile so that each task's data
// occupies a single chunk in one block, removing the logical gaps left by
// partially filled blocks (the paper's §3.3 "defragment" utility).
//
// Usage: siondefrag <src-multifile> <dst-multifile>
package main

import (
	"fmt"
	"os"

	sion "repro/internal/core"
	"repro/internal/fsio"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: siondefrag <src> <dst>")
		os.Exit(2)
	}
	fs := fsio.NewOS("")
	if err := sion.Defrag(fs, os.Args[1], fs, os.Args[2]); err != nil {
		fmt.Fprintln(os.Stderr, "siondefrag:", err)
		os.Exit(1)
	}
}
