// Command siondump prints the metadata of a SION multifile (the paper's
// §3.3 "dump" utility): global layout, per-segment geometry, and the
// per-task chunk table.
//
// Usage:
//
//	siondump [-mapping] <multifile>
//
// With -mapping it prints only the global rank→(physical file, local
// rank) mapping table decoded from file 0's header — this needs no other
// segment to be present or intact, so it also works on partially damaged
// multifiles where the full dump (which parses every segment's metablock
// 2) fails.
package main

import (
	"flag"
	"fmt"
	"os"

	sion "repro/internal/core"
	"repro/internal/fsio"
)

func main() {
	mapping := flag.Bool("mapping", false, "print only the rank→file mapping table from file 0's header")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: siondump [-mapping] <multifile>")
		os.Exit(2)
	}
	dump := sion.Dump
	if *mapping {
		dump = sion.DumpMapping
	}
	if err := dump(fsio.NewOS(""), flag.Arg(0), os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "siondump:", err)
		os.Exit(1)
	}
}
