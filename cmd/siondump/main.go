// Command siondump prints the metadata of a SION multifile (the paper's
// §3.3 "dump" utility): global layout, per-segment geometry, and the
// per-task chunk table.
//
// Usage: siondump <multifile>
package main

import (
	"fmt"
	"os"

	sion "repro/internal/core"
	"repro/internal/fsio"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: siondump <multifile>")
		os.Exit(2)
	}
	if err := sion.Dump(fsio.NewOS(""), os.Args[1], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "siondump:", err)
		os.Exit(1)
	}
}
