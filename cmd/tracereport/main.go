// Command tracereport summarizes a trace multifile written by the tracing
// substrate (internal/trace): per-rank event counts and a global profile
// (region times, message volume) — the serial counterpart of the parallel
// analyzer, handy for inspecting traces produced by examples/tracing.
//
// Usage: tracereport <trace-multifile>
package main

import (
	"fmt"
	"os"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracereport <trace-multifile>")
		os.Exit(2)
	}
	fsys := fsio.NewOS("")
	sf, err := sion.Open(fsys, os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracereport:", err)
		os.Exit(1)
	}
	ntasks := sf.NTasks()
	sf.Close()

	global := &trace.GlobalProfile{Ranks: ntasks, RegionTime: make(map[uint32]float64)}
	for r := 0; r < ntasks; r++ {
		events, err := trace.ReadSION(fsys, os.Args[1], r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracereport: rank %d: %v\n", r, err)
			os.Exit(1)
		}
		p := trace.BuildProfile(r, events)
		fmt.Printf("rank %4d: %7d events, %6d sends, %6d recvs, span %.3fs\n",
			r, p.Events, p.Sends, p.Recvs, p.Span)
		global.Events += int64(p.Events)
		global.Sends += int64(p.Sends)
		global.BytesSent += p.BytesSent
		if p.Span > global.MaxSpan {
			global.MaxSpan = p.Span
		}
		for reg, tm := range p.Regions {
			global.RegionTime[reg] += tm
		}
	}
	fmt.Println()
	global.Format(os.Stdout)
}
