// Command sionrouter fronts a multifile with a cluster of serve nodes
// (internal/cluster): blocks are consistent-hashed across N in-process
// serve instances, the hottest blocks are replicated to ring successors,
// and nodes fill their caches from each other before touching the
// backend — one process, but the cluster data path (ring routing, peer
// fill, failover) that a multi-host deployment would use.
//
// Usage:
//
//	sionrouter [-addr :8080] [-nodes 3] [-cache-mb 64] [-block N]
//	           [-retries 4] [-replicate 2] [-hot-min 64] [-vnodes 64]
//	           [-backend posix|objstore[,profile]] <multifile>
//
// Endpoints:
//
//	GET  /ranks                  JSON layout summary (tasks, files, sizes)
//	GET  /rank/<r>               the rank's whole logical stream
//	GET  /rank/<r>?off=O&n=N     N bytes from logical offset O
//	GET  /stats                  JSON cluster + per-node counters
//	GET  /metrics                Prometheus text exposition: router-level
//	                             cluster_* families plus every node's
//	                             serve_* families labeled node=<id>
//	GET  /healthz                aggregated breaker state; 503 only when
//	                             every node is degraded (single nodes are
//	                             routed around, not surfaced)
//	GET  /cluster                membership and hot-set summary
//	POST /cluster/join?id=<id>   add a serve node to the ring
//	POST /cluster/leave?id=<id>  drain a node off the ring
//	POST /cluster/rebalance      replicate the current hot set now
//
// Reads that lose every ring replica answer 503 + Retry-After, mirroring
// sionserve's degraded contract. A hot-set rebalance also runs on a
// background ticker.
//
// With -pprof the net/http/pprof handlers are mounted under
// /debug/pprof/. Every response echoes an X-Request-ID (adopted from the
// request or generated); requests slower than -slow-ms are logged with
// the request's breadcrumb trail (cache hits, peer fills, failovers).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/backendflag"
	"repro/internal/cluster"
	"repro/internal/fsio"
	"repro/internal/obs"
	"repro/internal/resil"
	"repro/internal/serve"
)

// router carries the cluster plus everything needed to admit new nodes
// at runtime (join re-uses the CLI's backend and per-node serve config).
type router struct {
	c     *cluster.Cluster
	fsys  fsio.FileSystem
	name  string
	scfg  *serve.Config
	slow  time.Duration // slow-request log threshold (0 disables)
	pprof bool          // mount /debug/pprof/
}

// logger is the process-wide structured logger: response-write failures —
// errors after the status line is committed, which can no longer become
// an HTTP error for the client — plus the middleware's slow-request
// lines. Handler tests capture records via logger.SetHook.
var logger = obs.NewLogger(os.Stderr)

const (
	shutdownTimeout = 10 * time.Second
	rebalanceEvery  = 5 * time.Second
	retryAfterSecs  = "1"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	nodes := flag.Int("nodes", 3, "serve nodes to start on the ring")
	cacheMB := flag.Int64("cache-mb", 64, "per-node block cache budget in MiB")
	block := flag.Int64("block", 0, "cache block size in bytes (0 = the multifile's FS block size)")
	retries := flag.Int("retries", resil.DefaultMaxAttempts,
		"max attempts per backend read under transient faults (1 disables retries)")
	replicate := flag.Int("replicate", 2, "ring replicas per hot block, primary included (1 disables)")
	hotMin := flag.Int64("hot-min", 64, "cache hits at which a block counts as hot")
	vnodes := flag.Int("vnodes", 64, "virtual ring points per node")
	backend := backendflag.Flag()
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	slowMs := flag.Int64("slow-ms", 500,
		"log requests slower than this many milliseconds with their breadcrumb trail (0 disables)")
	flag.Parse()
	if flag.NArg() != 1 || *nodes < 1 {
		fmt.Fprintln(os.Stderr, "usage: sionrouter [flags] <multifile> (see -h)")
		os.Exit(2)
	}

	// One registry for the whole topology: the router's cluster_* families,
	// each node's serve_* families (labeled node=<id> at Join), and the
	// shared instrumented backend's fsio_* families (labeled backend=<kind>).
	reg := obs.NewRegistry()
	stack, err := backendflag.Build(*backend, reg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sionrouter:", err)
		os.Exit(2)
	}
	rt := &router{
		c: cluster.New(&cluster.Config{
			VNodes:       *vnodes,
			ReplicateHot: *replicate,
			HotMinHits:   *hotMin,
			Metrics:      reg,
		}),
		fsys:  stack.FS,
		name:  flag.Arg(0),
		slow:  time.Duration(*slowMs) * time.Millisecond,
		pprof: *pprofOn,
		scfg: &serve.Config{
			CacheBytes: *cacheMB << 20,
			BlockBytes: *block,
			Retry:      &resil.Budget{MaxAttempts: *retries},
		},
	}
	for i := 1; i <= *nodes; i++ {
		if _, err := rt.c.Join(fmt.Sprintf("n%d", i), rt.fsys, rt.name, rt.scfg); err != nil {
			fmt.Fprintln(os.Stderr, "sionrouter:", err)
			os.Exit(1)
		}
	}
	httpSrv := &http.Server{Addr: *addr, Handler: rt.handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Hot blocks drift with the workload; fold fresh LRU hit reports into
	// ring replicas on a fixed cadence (and on demand via the endpoint).
	go func() {
		t := time.NewTicker(rebalanceEvery)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				rt.c.RebalanceHot()
			}
		}
	}()

	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		fmt.Println("sionrouter: shutting down")
		dctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		defer cancel()
		done <- httpSrv.Shutdown(dctx)
	}()

	fmt.Printf("sionrouter: serving %s (%d ranks, %d nodes) on %s\n",
		rt.name, rt.c.Layout().NTasks(), *nodes, *addr)
	err = httpSrv.ListenAndServe()
	if !errors.Is(err, http.ErrServerClosed) {
		rt.c.Close()
		fmt.Fprintln(os.Stderr, "sionrouter:", err)
		os.Exit(1)
	}
	if derr := <-done; derr != nil {
		fmt.Fprintln(os.Stderr, "sionrouter: drain:", derr)
	}
	if cerr := rt.c.Close(); cerr != nil {
		fmt.Fprintln(os.Stderr, "sionrouter: close:", cerr)
	}
}

// mux wires the handler table (split out so tests drive the handlers
// through httptest without a listener).
func (rt *router) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/ranks", rt.handleRanks)
	mux.HandleFunc("/rank/", rt.handleRank)
	mux.HandleFunc("/stats", rt.handleStats)
	mux.Handle("/metrics", obs.Handler(rt.c.Metrics()))
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/cluster", rt.handleCluster)
	mux.HandleFunc("/cluster/", rt.handleClusterOp)
	if rt.pprof {
		obs.MountPprof(mux)
	}
	return mux
}

// handler is the mux behind the shared observability middleware:
// X-Request-ID assignment/echo, a per-request breadcrumb span, and the
// slow-request log.
func (rt *router) handler() http.Handler {
	return obs.HTTPMiddleware(rt.mux(), logger, rt.slow)
}

func (rt *router) handleRanks(w http.ResponseWriter, _ *http.Request) {
	l := rt.c.Layout()
	type rankInfo struct {
		Rank  int   `json:"rank"`
		File  int   `json:"file"`
		Bytes int64 `json:"bytes"`
	}
	out := struct {
		Name  string     `json:"name"`
		Tasks int        `json:"tasks"`
		Files int        `json:"files"`
		FSBlk int64      `json:"fs_block_size"`
		Ranks []rankInfo `json:"ranks"`
	}{Name: l.Name(), Tasks: l.NTasks(), Files: l.NumFiles(), FSBlk: l.FSBlockSize()}
	for g, loc := range l.Mapping() {
		out.Ranks = append(out.Ranks, rankInfo{Rank: g, File: int(loc.File), Bytes: l.RankSize(g)})
	}
	writeJSON(w, out)
}

func (rt *router) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, rt.c.Stats())
}

// handleHealthz aggregates the nodes' breaker state. Unlike a single
// sionserve, one degraded node is not a degraded service — the ring
// routes around it — so the 503 fires only when the whole cluster is.
func (rt *router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	degraded := rt.c.Degraded()
	status := "ok"
	if degraded {
		status = "degraded"
		w.Header().Set("Retry-After", retryAfterSecs)
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, struct {
		Status string               `json:"status"`
		Nodes  []cluster.NodeHealth `json:"nodes"`
	}{Status: status, Nodes: rt.c.Health()})
}

// handleCluster summarizes membership and the tracked hot set.
func (rt *router) handleCluster(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, struct {
		Nodes      []string `json:"nodes"`
		HotTracked int      `json:"hot_tracked"`
	}{Nodes: rt.c.NodeIDs(), HotTracked: rt.c.HotTracked()})
}

// handleClusterOp routes POST /cluster/{join,leave,rebalance}.
func (rt *router) handleClusterOp(w http.ResponseWriter, r *http.Request) {
	op := strings.TrimPrefix(r.URL.Path, "/cluster/")
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "cluster operations are POSTs", http.StatusMethodNotAllowed)
		return
	}
	id := r.URL.Query().Get("id")
	switch op {
	case "join":
		if id == "" {
			http.Error(w, "join needs ?id=", http.StatusBadRequest)
			return
		}
		if _, err := rt.c.Join(id, rt.fsys, rt.name, rt.scfg); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
	case "leave":
		if id == "" {
			http.Error(w, "leave needs ?id=", http.StatusBadRequest)
			return
		}
		if err := rt.c.Leave(id); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
	case "rebalance":
		writeJSON(w, struct {
			Replicated int `json:"replicated"`
		}{Replicated: rt.c.RebalanceHot()})
		return
	default:
		http.NotFound(w, r)
		return
	}
	rt.handleCluster(w, r)
}

// handleRank answers /rank/<r> whole or windowed, streaming through the
// cluster data path.
func (rt *router) handleRank(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/rank/")
	rank, err := strconv.Atoi(rest)
	if err != nil {
		http.Error(w, "bad rank", http.StatusBadRequest)
		return
	}
	h, err := rt.c.Open(rank)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	// Thread the request's span down the cluster data path so the layers
	// below leave breadcrumbs (cache hit / peer fill / failover) on it.
	h.SetSpan(obs.SpanFrom(r.Context()))
	rt.serveBytes(w, r, h)
}

// serveChunk bounds the buffer serveBytes streams through, so a full-rank
// GET never materializes the whole logical stream.
const serveChunk int64 = 1 << 20

// serveBytes mirrors sionserve's window contract: malformed off/n are
// 400s, a well-formed off outside [0, size] is a 416, n past the end is
// clamped, off == size is a valid empty window. The first chunk is read
// before the status line goes out so immediate failures map through
// httpError; later failures are logged and the body cut short.
func (rt *router) serveBytes(w http.ResponseWriter, r *http.Request, h *serve.Handle) {
	size := h.LogicalSize()
	off, n := int64(0), size
	q := r.URL.Query()
	if v := q.Get("off"); v != "" {
		parsed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			http.Error(w, "off is not an integer", http.StatusBadRequest)
			return
		}
		if parsed < 0 || parsed > size {
			http.Error(w, fmt.Sprintf("off %d outside the logical stream (0..%d)", parsed, size),
				http.StatusRequestedRangeNotSatisfiable)
			return
		}
		off = parsed
		n = size - off
	}
	if v := q.Get("n"); v != "" {
		want, err := strconv.ParseInt(v, 10, 64)
		if err != nil || want < 0 {
			http.Error(w, "n is not a byte count", http.StatusBadRequest)
			return
		}
		if want < n {
			n = want
		}
	}
	buf := make([]byte, min(n, serveChunk))
	if n > 0 {
		if _, err := h.ReadLogicalAt(buf[:min(n, serveChunk)], off); err != nil {
			httpError(w, err)
			return
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(n, 10))
	for sent := int64(0); sent < n; {
		m := min(n-sent, serveChunk)
		if sent > 0 { // the first chunk was read before the headers
			if _, err := h.ReadLogicalAt(buf[:m], off+sent); err != nil {
				logger.Error("reading stream", "req", obs.SpanFrom(r.Context()).ID(),
					"path", r.URL.Path, "at", sent, "of", n, "err", err)
				return
			}
		}
		if _, err := w.Write(buf[:m]); err != nil {
			logger.Error("writing response", "req", obs.SpanFrom(r.Context()).ID(),
				"path", r.URL.Path, "at", sent, "of", n, "err", err)
			return
		}
		sent += m
	}
}

// httpError maps a read failure to its status: a cluster with every
// replica of a block down is 503 + Retry-After (the breakers re-probe
// after their cooldown), everything else stays a 500.
func httpError(w http.ResponseWriter, err error) {
	if errors.Is(err, serve.ErrDegraded) {
		w.Header().Set("Retry-After", retryAfterSecs)
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}

// writeJSON marshals before touching the ResponseWriter so an encoding
// failure can still become a 500; a failed write afterwards is logged.
func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		logger.Error("encoding response", "err", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(append(data, '\n')); err != nil {
		logger.Error("writing response", "err", err)
	}
}
