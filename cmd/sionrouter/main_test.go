package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"repro/internal/cluster"
	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/resil"
	"repro/internal/serve"
)

const (
	rtRanks   = 3
	rtPerRank = 5000
)

// rtPayload is the deterministic per-rank content of the test multifile.
func rtPayload(rank, size int) []byte {
	p := make([]byte, size)
	x := uint32(rank)*2654435761 + 12345
	for i := range p {
		x = x*1664525 + 1013904223
		p[i] = byte(x >> 24)
	}
	return p
}

// newTestRouter writes a small multifile, stands up a 3-node cluster over
// it, and returns the router (for membership ops) plus its handler table.
func newTestRouter(t *testing.T) (*router, *http.ServeMux) {
	t.Helper()
	fsys := fsio.NewOS(t.TempDir())
	mpi.Run(rtRanks, func(c *mpi.Comm) {
		f, err := sion.ParOpen(c, fsys, "data", sion.WriteMode, &sion.Options{ChunkSize: 2048})
		if err != nil {
			t.Errorf("rank %d: ParOpen: %v", c.Rank(), err)
			return
		}
		if _, err := f.Write(rtPayload(c.Rank(), rtPerRank)); err != nil {
			t.Errorf("rank %d: Write: %v", c.Rank(), err)
		}
		if err := f.Close(); err != nil {
			t.Errorf("rank %d: Close: %v", c.Rank(), err)
		}
	})
	// Mirror main()'s observability wiring: one registry shared by the
	// cluster families and the backend-labeled fsio meter.
	reg := obs.NewRegistry()
	rt := &router{
		c:    cluster.New(&cluster.Config{Metrics: reg}),
		fsys: fsio.Instrument(fsys, fsio.NewMeter(reg, "os")),
		name: "data",
		scfg: &serve.Config{Retry: &resil.Budget{MaxAttempts: resil.DefaultMaxAttempts}},
	}
	for i := 1; i <= 3; i++ {
		if _, err := rt.c.Join(fmt.Sprintf("n%d", i), rt.fsys, "data", rt.scfg); err != nil {
			t.Fatalf("Join n%d: %v", i, err)
		}
	}
	t.Cleanup(func() { rt.c.Close() })
	return rt, rt.mux()
}

func get(t *testing.T, mux *http.ServeMux, url string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	return rec
}

func post(t *testing.T, mux *http.ServeMux, url string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", url, nil))
	return rec
}

// TestRouterRankWindows pins the windowed-read contract over the cluster
// data path: byte identity, Content-Length, 416/400 mapping, clamping.
func TestRouterRankWindows(t *testing.T) {
	_, mux := newTestRouter(t)
	full := rtPayload(1, rtPerRank)
	cases := []struct {
		name   string
		url    string
		status int
		want   []byte // nil = don't check the body
	}{
		{"whole stream", "/rank/1", 200, full},
		{"window", "/rank/1?off=100&n=50", 200, full[100:150]},
		{"empty window at end", fmt.Sprintf("/rank/1?off=%d", rtPerRank), 200, []byte{}},
		{"count clamped", fmt.Sprintf("/rank/1?off=%d&n=9999", rtPerRank-3), 200, full[rtPerRank-3:]},
		{"off past end", fmt.Sprintf("/rank/1?off=%d", rtPerRank+1), 416, nil},
		{"negative off", "/rank/1?off=-1", 416, nil},
		{"non-integer off", "/rank/1?off=abc", 400, nil},
		{"negative n", "/rank/1?n=-1", 400, nil},
		{"unknown rank", "/rank/99", 404, nil},
		{"non-integer rank", "/rank/zzz", 400, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := get(t, mux, tc.url)
			if rec.Code != tc.status {
				t.Fatalf("%s: status %d, want %d (body %q)", tc.url, rec.Code, tc.status, rec.Body.String())
			}
			if tc.want == nil {
				return
			}
			if cl := rec.Header().Get("Content-Length"); cl != strconv.Itoa(len(tc.want)) {
				t.Errorf("%s: Content-Length %q, want %d", tc.url, cl, len(tc.want))
			}
			if !bytes.Equal(rec.Body.Bytes(), tc.want) {
				t.Errorf("%s: body mismatch (%d bytes, want %d)", tc.url, rec.Body.Len(), len(tc.want))
			}
		})
	}
}

// TestRouterClusterOps drives the membership endpoints: join grows the
// ring, duplicate joins conflict, leave shrinks it, unknown leaves 404,
// non-POSTs 405, and reads stay byte-identical across the churn.
func TestRouterClusterOps(t *testing.T) {
	_, mux := newTestRouter(t)
	full := rtPayload(2, rtPerRank)

	members := func(rec *httptest.ResponseRecorder) []string {
		t.Helper()
		var out struct {
			Nodes []string `json:"nodes"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("membership body %q: %v", rec.Body.String(), err)
		}
		return out.Nodes
	}
	if got := members(get(t, mux, "/cluster")); len(got) != 3 {
		t.Fatalf("initial membership %v, want 3 nodes", got)
	}

	if rec := post(t, mux, "/cluster/join?id=n4"); rec.Code != 200 {
		t.Fatalf("join: status %d (%s)", rec.Code, rec.Body.String())
	} else if got := members(rec); len(got) != 4 {
		t.Fatalf("post-join membership %v, want 4 nodes", got)
	}
	if rec := post(t, mux, "/cluster/join?id=n4"); rec.Code != http.StatusConflict {
		t.Errorf("duplicate join: status %d, want 409", rec.Code)
	}
	if rec := get(t, mux, "/rank/2"); rec.Code != 200 || !bytes.Equal(rec.Body.Bytes(), full) {
		t.Errorf("read after join: status %d, %d bytes", rec.Code, rec.Body.Len())
	}

	if rec := post(t, mux, "/cluster/leave?id=n4"); rec.Code != 200 {
		t.Fatalf("leave: status %d (%s)", rec.Code, rec.Body.String())
	} else if got := members(rec); len(got) != 3 {
		t.Fatalf("post-leave membership %v, want 3 nodes", got)
	}
	if rec := post(t, mux, "/cluster/leave?id=ghost"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown leave: status %d, want 404", rec.Code)
	}
	if rec := get(t, mux, "/rank/2"); rec.Code != 200 || !bytes.Equal(rec.Body.Bytes(), full) {
		t.Errorf("read after leave: status %d, %d bytes", rec.Code, rec.Body.Len())
	}

	if rec := post(t, mux, "/cluster/join"); rec.Code != http.StatusBadRequest {
		t.Errorf("join without id: status %d, want 400", rec.Code)
	}
	if rec := get(t, mux, "/cluster/join?id=n5"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET join: status %d, want 405", rec.Code)
	}
	if rec := post(t, mux, "/cluster/frobnicate"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown op: status %d, want 404", rec.Code)
	}
	var reb struct {
		Replicated int `json:"replicated"`
	}
	if rec := post(t, mux, "/cluster/rebalance"); rec.Code != 200 {
		t.Errorf("rebalance: status %d", rec.Code)
	} else if err := json.Unmarshal(rec.Body.Bytes(), &reb); err != nil {
		t.Errorf("rebalance body %q: %v", rec.Body.String(), err)
	}
}

// TestRouterHealthzAndStats pins the read-only JSON surfaces: a healthy
// cluster is 200/"ok" with one entry per node, and /stats carries the
// cluster counters (every rank read once → requests counted, no
// failovers, no replica exhaustion).
func TestRouterHealthzAndStats(t *testing.T) {
	_, mux := newTestRouter(t)
	for r := 0; r < rtRanks; r++ {
		if rec := get(t, mux, fmt.Sprintf("/rank/%d", r)); rec.Code != 200 {
			t.Fatalf("rank %d: status %d", r, rec.Code)
		}
	}

	rec := get(t, mux, "/healthz")
	if rec.Code != 200 {
		t.Fatalf("/healthz: status %d", rec.Code)
	}
	var hz struct {
		Status string               `json:"status"`
		Nodes  []cluster.NodeHealth `json:"nodes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil {
		t.Fatalf("/healthz body: %v", err)
	}
	if hz.Status != "ok" || len(hz.Nodes) != 3 {
		t.Errorf("/healthz = %q with %d nodes, want ok/3", hz.Status, len(hz.Nodes))
	}

	rec = get(t, mux, "/stats")
	if rec.Code != 200 {
		t.Fatalf("/stats: status %d", rec.Code)
	}
	var st cluster.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("/stats body: %v", err)
	}
	if st.Nodes != 3 || st.Requests == 0 {
		t.Errorf("stats nodes=%d requests=%d, want 3 nodes and nonzero requests", st.Nodes, st.Requests)
	}
	if st.Failovers != 0 || st.AllReplicasDown != 0 {
		t.Errorf("healthy cluster shows failovers=%d allDown=%d", st.Failovers, st.AllReplicasDown)
	}

	if rec := get(t, mux, "/ranks"); rec.Code != 200 {
		t.Errorf("/ranks: status %d", rec.Code)
	}
}
