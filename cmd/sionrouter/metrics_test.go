package main

import (
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

// familySum sums every sample of a counter/gauge family across its label
// sets (all nodes) in a Prometheus text exposition.
func familySum(t *testing.T, body, family string) int64 {
	t.Helper()
	var sum int64
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, family) {
			continue
		}
		rest := line[len(family):]
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue // a longer family name sharing this prefix
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("parsing sample %q: %v", line, err)
		}
		sum += int64(v)
	}
	return sum
}

// TestRouterMetricsMatchesStats seeds reads through the ring and pins the
// acceptance contract on the cluster side: /metrics parses cleanly, the
// router-level cluster_* families agree exactly with /stats, and the
// node-labeled serve_* families sum to the cluster's aggregate.
func TestRouterMetricsMatchesStats(t *testing.T) {
	rt, _ := newTestRouter(t)
	h := rt.handler()
	for i := 0; i < 2; i++ { // second pass hits the warmed caches
		for r := 0; r < rtRanks; r++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", fmt.Sprintf("/rank/%d", r), nil))
			if rec.Code != 200 {
				t.Fatalf("rank %d: status %d", r, rec.Code)
			}
		}
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics: status %d", rec.Code)
	}
	if id := rec.Header().Get(obs.RequestIDHeader); len(id) != 16 {
		t.Errorf("request ID %q, want 16 hex chars", id)
	}
	body := rec.Body.String()
	if err := obs.CheckExposition([]byte(body)); err != nil {
		t.Fatalf("exposition: %v", err)
	}

	st := rt.c.Stats()
	if st.Requests == 0 || st.Serve.Hits == 0 {
		t.Fatalf("workload did not seed the counters: %+v", st)
	}
	for _, c := range []struct {
		family string
		want   int64
	}{
		{"cluster_requests_total", st.Requests},
		{"cluster_failovers_total", st.Failovers},
		{"cluster_handles_opened_total", st.HandlesOpened},
		{"serve_cache_hits_total", st.Serve.Hits},
		{"serve_cache_misses_total", st.Serve.Misses},
		{"serve_backend_reads_total", st.Serve.BackendReads},
		{"serve_served_bytes_total", st.Serve.ServedBytes},
	} {
		if got := familySum(t, body, c.family); got != c.want {
			t.Errorf("%s = %d, want %d (Stats)", c.family, got, c.want)
		}
	}
	// Every node's serve families carry its identity.
	for _, id := range rt.c.NodeIDs() {
		if !strings.Contains(body, `node="`+id+`"`) {
			t.Errorf("exposition is missing node label %q", id)
		}
	}
	// The shared backend's fsio_* families carry the -backend stack's
	// label, so multi-backend deployments stay tellable apart.
	if ops := familySum(t, body, "fsio_ops_total"); ops == 0 {
		t.Error("fsio_ops_total = 0, want the instrumented backend's ops")
	}
	if !strings.Contains(body, `fsio_ops_total{backend="os"`) {
		t.Error("fsio_ops_total lacks the backend label in the exposition")
	}
}
