// Command sionrepair reconstructs the closing metadata (metablock 2 and
// trailer) of a SION multifile from the per-chunk headers, recovering
// multifiles whose writer died before the collective close — the paper's
// §6 robustness plan. The multifile must have been written with chunk
// headers enabled.
//
// Usage: sionrepair <multifile>
package main

import (
	"fmt"
	"os"

	sion "repro/internal/core"
	"repro/internal/fsio"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: sionrepair <multifile>")
		os.Exit(2)
	}
	fs := fsio.NewOS("")
	n, err := sion.Repair(fs, os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "sionrepair:", err)
		os.Exit(1)
	}
	fmt.Printf("sionrepair: recovered metadata for %d chunks\n", n)
	if err := sion.Verify(fs, os.Args[1]); err != nil {
		fmt.Fprintln(os.Stderr, "sionrepair: post-repair verify:", err)
		os.Exit(1)
	}
	fmt.Println("sionrepair: multifile verifies clean")
}
