package main

import (
	"strings"
	"testing"
)

func bench(name string, metrics map[string]float64) Benchmark {
	return Benchmark{Name: name, Iterations: 1, Metrics: metrics}
}

func TestCompareDirections(t *testing.T) {
	base := &Doc{Benchmarks: []Benchmark{
		bench("BenchmarkA", map[string]float64{"sim-create-s": 10, "ns/op": 5e6}),
		bench("BenchmarkB", map[string]float64{"sim-MB/s": 100}),
		bench("BenchmarkC", map[string]float64{"backend-read-reduction": 30}),
	}}
	tol := 0.25

	// Identical run: clean.
	if regs := compare(base, base, tol); len(regs) != 0 {
		t.Fatalf("identical run flagged: %v", regs)
	}

	// Lower-better metric grows beyond tolerance; higher-better metrics
	// shrink beyond tolerance; ns/op explodes but is never gated.
	cur := &Doc{Benchmarks: []Benchmark{
		bench("BenchmarkA", map[string]float64{"sim-create-s": 13, "ns/op": 5e9}),
		bench("BenchmarkB", map[string]float64{"sim-MB/s": 70}),
		bench("BenchmarkC", map[string]float64{"backend-read-reduction": 20}),
	}}
	regs := compare(base, cur, tol)
	if len(regs) != 3 {
		t.Fatalf("want 3 regressions, got %d: %v", len(regs), regs)
	}
	for _, want := range []string{"sim-create-s", "sim-MB/s", "backend-read-reduction"} {
		found := false
		for _, r := range regs {
			if strings.Contains(r, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no regression mentions %s: %v", want, regs)
		}
	}

	// Within tolerance: clean.
	cur = &Doc{Benchmarks: []Benchmark{
		bench("BenchmarkA", map[string]float64{"sim-create-s": 12, "ns/op": 1}),
		bench("BenchmarkB", map[string]float64{"sim-MB/s": 80}),
		bench("BenchmarkC", map[string]float64{"backend-read-reduction": 24}),
	}}
	if regs := compare(base, cur, tol); len(regs) != 0 {
		t.Fatalf("within-tolerance run flagged: %v", regs)
	}
}

// TestCompareAllocsGated pins allocs/op's place in the gate: a growth
// beyond tolerance fails (allocation counts are machine-independent),
// while B/op and ns/op stay ungated however far they move.
func TestCompareAllocsGated(t *testing.T) {
	base := &Doc{Benchmarks: []Benchmark{
		bench("BenchmarkA", map[string]float64{"allocs/op": 1000, "B/op": 4096, "ns/op": 5e6}),
	}}
	cur := &Doc{Benchmarks: []Benchmark{
		bench("BenchmarkA", map[string]float64{"allocs/op": 1300, "B/op": 1 << 30, "ns/op": 5e9}),
	}}
	regs := compare(base, cur, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
		t.Fatalf("allocs/op growth not (solely) flagged: %v", regs)
	}
	// Within tolerance (and shrinking) is clean.
	cur.Benchmarks[0].Metrics["allocs/op"] = 900
	if regs := compare(base, cur, 0.25); len(regs) != 0 {
		t.Fatalf("allocs/op improvement flagged: %v", regs)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := &Doc{Benchmarks: []Benchmark{bench("BenchmarkGone", map[string]float64{"sim-create-s": 1})}}
	cur := &Doc{Benchmarks: []Benchmark{bench("BenchmarkNew", map[string]float64{"sim-create-s": 1})}}
	regs := compare(base, cur, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "missing from this run") {
		t.Fatalf("missing benchmark not flagged: %v", regs)
	}
	// New benchmarks in cur never fail.
	if regs := compare(cur, cur, 0.25); len(regs) != 0 {
		t.Fatalf("self-compare flagged: %v", regs)
	}
}

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkTable6Serve-8 \t 1\t164403305 ns/op\t35.68 backend-read-reduction")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.Name != "BenchmarkTable6Serve" {
		t.Fatalf("name %q kept its GOMAXPROCS suffix", b.Name)
	}
	if b.Metrics["backend-read-reduction"] != 35.68 || b.Metrics["ns/op"] != 164403305 {
		t.Fatalf("metrics wrong: %v", b.Metrics)
	}
	if _, ok := parseLine("ok  \trepro\t0.2s"); ok {
		t.Fatal("non-benchmark line accepted")
	}
	if _, ok := parseLine("BenchmarkBroken 1"); ok {
		t.Fatal("short line accepted")
	}
}

func TestHigherBetter(t *testing.T) {
	for unit, want := range map[string]bool{
		"sim-MB/s":               true,
		"write-speedup":          true,
		"activation-speedup":     true,
		"read-request-reduction": true,
		"backend-read-reduction": true,
		"sim-create-s":           false,
		"align-ratio":            false,
	} {
		if got := higherBetter(unit); got != want {
			t.Errorf("higherBetter(%q) = %v, want %v", unit, got, want)
		}
	}
}

func TestCompareGiveUpsZeroGate(t *testing.T) {
	base := &Doc{Benchmarks: []Benchmark{
		bench("BenchmarkTable8Chaos", map[string]float64{"chaos-retries": 25, "chaos-giveups": 0}),
	}}

	// Identical run: clean (a zero baseline on its own gates nothing).
	if regs := compare(base, base, 0.25); len(regs) != 0 {
		t.Fatalf("identical run flagged: %v", regs)
	}

	// Any give-up off the zero baseline fails, regardless of tolerance.
	cur := &Doc{Benchmarks: []Benchmark{
		bench("BenchmarkTable8Chaos", map[string]float64{"chaos-retries": 25, "chaos-giveups": 1}),
	}}
	regs := compare(base, cur, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "chaos-giveups") {
		t.Fatalf("give-up off zero baseline not flagged: %v", regs)
	}

	// Other zero-baseline metrics stay ungated.
	base.Benchmarks[0].Metrics["speedup-33Mio"] = 0
	cur.Benchmarks[0].Metrics["chaos-giveups"] = 0
	cur.Benchmarks[0].Metrics["speedup-33Mio"] = 5
	if regs := compare(base, cur, 0.25); len(regs) != 0 {
		t.Fatalf("non-giveups zero metric gated: %v", regs)
	}

	// A retry storm beyond tolerance on the lower-better retries metric
	// still fails through the ordinary gate.
	cur.Benchmarks[0].Metrics["chaos-retries"] = 100
	if regs := compare(base, cur, 0.25); len(regs) != 1 || !strings.Contains(regs[0], "chaos-retries") {
		t.Fatalf("retry storm not flagged: %v", regs)
	}
}
