// Command benchjson converts `go test -bench` output into a stable JSON
// document, establishing the repository's perf-trajectory baseline: CI
// runs the top-level benchmark suite at -benchtime=1x and records every
// reported metric (including the simulated-quantity custom metrics, which
// are deterministic) so successive PRs can be compared against the
// committed BENCH_PR<N>.json snapshots.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x . | benchjson -o BENCH_PR2.json
//
// Lines that are not benchmark results are ignored, so the raw `go test`
// stream can be piped in directly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one benchmark's parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the committed baseline document.
type Doc struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	doc := Doc{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one `BenchmarkX-8   1   123 ns/op   4.5 unit` line.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix so names are machine-independent.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}
