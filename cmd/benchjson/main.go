// Command benchjson converts `go test -bench` output into a stable JSON
// document, establishing the repository's perf-trajectory baseline: CI
// runs the top-level benchmark suite at -benchtime=1x and records every
// reported metric (including the simulated-quantity custom metrics, which
// are deterministic) so successive PRs can be compared against the
// committed BENCH_PR<N>.json snapshots.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x . | benchjson -o BENCH_PR4.json
//	go test -run '^$' -bench . -benchtime 1x . | benchjson -baseline BENCH_PR4.json -o BENCH_CI.json
//
// With -baseline, benchjson compares the current run against the
// committed baseline and exits non-zero when any deterministic metric
// regresses by more than -tolerance (default 25%): time-like metrics must
// not grow past baseline×(1+tol), rate/ratio metrics where higher is
// better must not shrink below baseline×(1−tol). Metrics whose unit ends
// in "giveups" are zero-tolerance when their baseline is zero: the
// resilience counters promise full absorption of injected faults, so any
// nonzero value is a retry storm escaping its budget, not noise.
// Machine-dependent metrics (ns/op, B/op, MB/s) are recorded but never
// gated. allocs/op (emitted when the bench run passes -benchmem) IS
// gated lower-better: allocation counts depend on the code, not on the
// machine's speed, so a >25% growth is a real allocation regression. A
// benchmark present in the baseline but missing from the run also fails
// (silent coverage loss); new benchmarks are reported and pass.
//
// Lines that are not benchmark results are ignored, so the raw `go test`
// stream can be piped in directly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one benchmark's parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the committed baseline document.
type Doc struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "committed baseline JSON to gate against")
	tolerance := flag.Float64("tolerance", 0.25, "allowed relative regression before failing")
	flag.Parse()

	doc := Doc{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *baseline == "" {
		return
	}
	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	var base Doc
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: parsing %s: %v\n", *baseline, err)
		os.Exit(1)
	}
	regressions := compare(&base, &doc, *tolerance)
	for _, r := range regressions {
		fmt.Fprintln(os.Stderr, "benchjson: REGRESSION:", r)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) beyond %.0f%% vs %s\n",
			len(regressions), *tolerance*100, *baseline)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: no regressions beyond %.0f%% vs %s\n", *tolerance*100, *baseline)
}

// skipUnits are machine-dependent metrics never gated on: wall-clock
// noise varies across runners, while the sim-* metrics, the derived
// ratios, and allocation counts (allocs/op — a property of the code, not
// the runner) are deterministic. B/op stays ungated: byte totals shift
// with allocator size classes across Go versions, while the allocation
// *count* is the stable signal.
var skipUnits = map[string]bool{
	"ns/op": true,
	"B/op":  true,
	"MB/s":  true,
}

// higherBetter classifies a metric's direction: throughputs, speedups,
// and reduction factors improve upward; times, request counts, and
// degradation ratios improve downward.
func higherBetter(unit string) bool {
	switch {
	case strings.HasSuffix(unit, "MB/s"),
		strings.HasSuffix(unit, "speedup"),
		strings.HasSuffix(unit, "reduction"):
		return true
	}
	return false
}

// compare returns one message per metric of base that cur misses or
// regresses on beyond tol.
func compare(base, cur *Doc, tol float64) []string {
	current := make(map[string]Benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		current[b.Name] = b
	}
	var out []string
	for _, bb := range base.Benchmarks {
		cb, ok := current[bb.Name]
		if !ok {
			out = append(out, fmt.Sprintf("%s: present in baseline, missing from this run", bb.Name))
			continue
		}
		for unit, bv := range bb.Metrics {
			if skipUnits[unit] {
				continue
			}
			cv, ok := cb.Metrics[unit]
			if !ok {
				out = append(out, fmt.Sprintf("%s: metric %q missing from this run", bb.Name, unit))
				continue
			}
			if bv == 0 {
				// A baseline of zero leaves no tolerance to scale. Most
				// zero metrics are simply unused and stay ungated, but
				// give-up counters are zero by design: the resilience
				// layers promise full absorption, so any movement is a
				// retry storm escaping its budget and fails the gate.
				if strings.HasSuffix(unit, "giveups") && cv != 0 {
					out = append(out, fmt.Sprintf("%s: %s moved off its zero baseline to %.4g",
						bb.Name, unit, cv))
				}
				continue
			}
			if higherBetter(unit) {
				if cv < bv*(1-tol) {
					out = append(out, fmt.Sprintf("%s: %s fell %.4g -> %.4g (-%.0f%%)",
						bb.Name, unit, bv, cv, 100*(1-cv/bv)))
				}
			} else if cv > bv*(1+tol) {
				out = append(out, fmt.Sprintf("%s: %s grew %.4g -> %.4g (+%.0f%%)",
					bb.Name, unit, bv, cv, 100*(cv/bv-1)))
			}
		}
	}
	return out
}

// parseLine parses one `BenchmarkX-8   1   123 ns/op   4.5 unit` line.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix so names are machine-independent.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}
