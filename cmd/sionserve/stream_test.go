package main

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/serve"
)

// bigBytes spans several serveChunk windows with an odd remainder, so the
// streaming loop's chunk arithmetic and tail handling are both exercised.
const bigBytes = 2*serveChunk + serveChunk/2 + 37

// newBigServer writes a single-rank multifile larger than serveChunk and
// returns the handler table over it.
func newBigServer(t *testing.T) *http.ServeMux {
	t.Helper()
	fsys := fsio.NewOS(t.TempDir())
	mpi.Run(1, func(c *mpi.Comm) {
		f, err := sion.ParOpen(c, fsys, "big", sion.WriteMode, &sion.Options{ChunkSize: 1 << 20})
		if err != nil {
			t.Errorf("ParOpen: %v", err)
			return
		}
		if _, err := f.Write(tsPayload(0, int(bigBytes))); err != nil {
			t.Errorf("Write: %v", err)
		}
		if err := f.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	srv, err := serve.New(fsys, "big", nil)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	s := &server{srv: srv, keys: make(map[int]*sion.KeyReader)}
	return s.mux()
}

// captureLog hooks the structured logger, collecting record messages for
// the test's duration (the hook also suppresses writer output).
func captureLog(t *testing.T) *[]string {
	t.Helper()
	var lines []string
	prev := logger.SetHook(func(r obs.Record) { lines = append(lines, r.Msg) })
	t.Cleanup(func() { logger.SetHook(prev) })
	return &lines
}

// TestServeBytesStreamsLargeRank pins the chunked-streaming rewrite: a
// rank several times serveChunk long arrives byte-identical with an exact
// Content-Length, for the whole stream and for windows that straddle
// chunk boundaries.
func TestServeBytesStreamsLargeRank(t *testing.T) {
	mux := newBigServer(t)
	full := tsPayload(0, int(bigBytes))
	cases := []struct {
		name string
		url  string
		want []byte
	}{
		{"whole stream", "/rank/0", full},
		{"window across chunk boundary",
			fmt.Sprintf("/rank/0?off=%d&n=%d", serveChunk-100, serveChunk+200),
			full[serveChunk-100 : 2*serveChunk+100]},
		{"tail remainder", fmt.Sprintf("/rank/0?off=%d", 2*serveChunk), full[2*serveChunk:]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			mux.ServeHTTP(rec, httptest.NewRequest("GET", tc.url, nil))
			if rec.Code != 200 {
				t.Fatalf("%s: status %d", tc.url, rec.Code)
			}
			if cl := rec.Header().Get("Content-Length"); cl != strconv.Itoa(len(tc.want)) {
				t.Errorf("%s: Content-Length %q, want %d", tc.url, cl, len(tc.want))
			}
			if !bytes.Equal(rec.Body.Bytes(), tc.want) {
				t.Errorf("%s: body mismatch (%d bytes, want %d)", tc.url, rec.Body.Len(), len(tc.want))
			}
		})
	}
}

// failAfterWriter passes through a fixed number of Writes, then fails —
// the shape of a client hanging up mid-download.
type failAfterWriter struct {
	http.ResponseWriter
	remaining int
}

func (f *failAfterWriter) Write(p []byte) (int, error) {
	if f.remaining <= 0 {
		return 0, errors.New("client hung up")
	}
	f.remaining--
	return f.ResponseWriter.Write(p)
}

// TestServeBytesWriteErrorLogged pins the post-header error path: once the
// status line is out, a failed body write must be logged and the stream
// cut short — not silently dropped, and never a second WriteHeader.
func TestServeBytesWriteErrorLogged(t *testing.T) {
	mux := newBigServer(t)
	lines := captureLog(t)
	rec := httptest.NewRecorder()
	w := &failAfterWriter{ResponseWriter: rec, remaining: 1}
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/rank/0", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d, want 200 (headers precede the failure)", rec.Code)
	}
	if got := int64(rec.Body.Len()); got != serveChunk {
		t.Errorf("body stopped at %d bytes, want exactly one chunk (%d)", got, serveChunk)
	}
	if len(*lines) != 1 || !strings.Contains((*lines)[0], "writing response") {
		t.Errorf("log lines = %q, want one write-failure entry", *lines)
	}
}

// TestWriteJSONErrorsChecked pins writeJSON's two failure paths: an
// unencodable value becomes a 500 (nothing was written yet), and a failed
// write of a good payload is logged.
func TestWriteJSONErrorsChecked(t *testing.T) {
	lines := captureLog(t)
	rec := httptest.NewRecorder()
	writeJSON(rec, make(chan int)) // not marshalable
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("unencodable value: status %d, want 500", rec.Code)
	}
	if len(*lines) != 1 || !strings.Contains((*lines)[0], "encoding response") {
		t.Fatalf("log lines = %q, want one encoding-failure entry", *lines)
	}

	*lines = (*lines)[:0]
	w := &failAfterWriter{ResponseWriter: httptest.NewRecorder(), remaining: 0}
	writeJSON(w, map[string]int{"ok": 1})
	if len(*lines) != 1 || !strings.Contains((*lines)[0], "writing response") {
		t.Errorf("log lines = %q, want one write-failure entry", *lines)
	}
}
