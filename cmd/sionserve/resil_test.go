package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/mpi"
	"repro/internal/resil"
	"repro/internal/serve"
	"repro/internal/simfs"
)

// newDegradableServer builds the handler table over a flaky-wrappable
// backend with a tight breaker, returning the fault model for the test to
// steer. Retries are disabled (MaxAttempts 1) so each failing request is
// one breaker failure — the state walk in the test stays exact.
func newDegradableServer(t *testing.T) (*http.ServeMux, *simfs.Flaky, *serve.Server) {
	t.Helper()
	fsys := fsio.NewOS(t.TempDir())
	mpi.Run(tsRanks, func(c *mpi.Comm) {
		f, err := sion.ParOpen(c, fsys, "data", sion.WriteMode, &sion.Options{ChunkSize: 2048})
		if err != nil {
			t.Errorf("rank %d: ParOpen: %v", c.Rank(), err)
			return
		}
		if _, err := f.Write(tsPayload(c.Rank(), tsPerRank)); err != nil {
			t.Errorf("rank %d: Write: %v", c.Rank(), err)
		}
		if err := f.Close(); err != nil {
			t.Errorf("rank %d: Close: %v", c.Rank(), err)
		}
	})
	fl := simfs.NewFlaky(simfs.FlakyConfig{Seed: 404})
	srv, err := serve.New(fl.Wrap(fsys, nil), "data", &serve.Config{
		Retry:            &resil.Budget{MaxAttempts: 1, Sleep: func(time.Duration) {}},
		BreakerThreshold: 2,
		BreakerCooldown:  3,
	})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	s := &server{srv: srv, keys: make(map[int]*sion.KeyReader)}
	return s.mux(), fl, srv
}

func TestHealthzOK(t *testing.T) {
	mux := newTestServer(t)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthy /healthz = %d, want 200", rec.Code)
	}
	var body struct {
		Status string `json:"status"`
		Files  []struct {
			File  int    `json:"file"`
			Path  string `json:"path"`
			State string `json:"state"`
		} `json:"files"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("healthz body: %v", err)
	}
	if body.Status != "ok" || len(body.Files) == 0 {
		t.Fatalf("healthz body %+v; want ok with files listed", body)
	}
	for _, f := range body.Files {
		if f.State != "closed" {
			t.Fatalf("file %d state %q, want closed", f.File, f.State)
		}
	}
}

func TestDegradedServing503(t *testing.T) {
	mux, fl, srv := newDegradableServer(t)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	// Warm rank 0's first bytes into the cache, then start the outage.
	if rec := get("/rank/0?off=0&n=64"); rec.Code != http.StatusOK {
		t.Fatalf("warm read = %d", rec.Code)
	}
	phys := srv.Health()[0].Path
	fl.FailWindow(phys, fl.FileOps(phys), 1<<40)

	// Two uncached reads trip the threshold-2 breaker (each is one
	// no-retry backend failure → 500), then the circuit is open.
	for i := 0; i < 2; i++ {
		if rec := get("/rank/0?off=4600&n=64"); rec.Code != http.StatusInternalServerError {
			t.Fatalf("outage read %d = %d, want 500", i, rec.Code)
		}
	}

	// Open circuit: misses are 503 with a Retry-After hint...
	rec := get("/rank/0?off=4600&n=64")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded read = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatalf("degraded 503 missing Retry-After")
	}
	if !strings.Contains(rec.Body.String(), "degraded") {
		t.Fatalf("degraded body %q does not name the condition", rec.Body.String())
	}
	// ...cache hits still answer 200 with the right bytes...
	recHit := get("/rank/0?off=0&n=64")
	if recHit.Code != http.StatusOK {
		t.Fatalf("cached read while degraded = %d, want 200", recHit.Code)
	}
	want, _ := io.ReadAll(recHit.Result().Body)
	if len(want) != 64 {
		t.Fatalf("cached read returned %d bytes", len(want))
	}
	// ...and /healthz flips to 503/degraded naming the open file.
	hz := get("/healthz")
	if hz.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded /healthz = %d, want 503", hz.Code)
	}
	if !strings.Contains(hz.Body.String(), `"state": "open"`) {
		t.Fatalf("healthz body %q does not show the open circuit", hz.Body.String())
	}

	// Recovery: lift the outage, walk the cooldown (one more reject
	// already happened above — the 503 read — so two more finish it),
	// then the probe closes the circuit and /healthz returns 200.
	fl.ClearWindows()
	for i := 0; srv.Health()[0].StateName != "half-open"; i++ {
		get("/rank/0?off=4600&n=64")
		if i > 8 {
			t.Fatalf("cooldown never reached half-open: %+v", srv.Health())
		}
	}
	if rec := get("/rank/0?off=4600&n=64"); rec.Code != http.StatusOK {
		t.Fatalf("probe read = %d, want 200", rec.Code)
	}
	if hz := get("/healthz"); hz.Code != http.StatusOK {
		t.Fatalf("recovered /healthz = %d, want 200", hz.Code)
	}
}
