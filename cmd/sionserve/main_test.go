package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/mpi"
	"repro/internal/serve"
)

// tsPayload is the deterministic per-rank content of the test multifile.
func tsPayload(rank, size int) []byte {
	p := make([]byte, size)
	x := uint32(rank)*2654435761 + 12345
	for i := range p {
		x = x*1664525 + 1013904223
		p[i] = byte(x >> 24)
	}
	return p
}

const (
	tsRanks   = 3
	tsPerRank = 5000
)

// newTestServer writes a small multifile and returns the HTTP handler
// table over it.
func newTestServer(t *testing.T) *http.ServeMux {
	t.Helper()
	fsys := fsio.NewOS(t.TempDir())
	mpi.Run(tsRanks, func(c *mpi.Comm) {
		f, err := sion.ParOpen(c, fsys, "data", sion.WriteMode, &sion.Options{ChunkSize: 2048})
		if err != nil {
			t.Errorf("rank %d: ParOpen: %v", c.Rank(), err)
			return
		}
		if _, err := f.Write(tsPayload(c.Rank(), tsPerRank)); err != nil {
			t.Errorf("rank %d: Write: %v", c.Rank(), err)
		}
		if err := f.Close(); err != nil {
			t.Errorf("rank %d: Close: %v", c.Rank(), err)
		}
	})
	srv, err := serve.New(fsys, "data", nil)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	s := &server{srv: srv, keys: make(map[int]*sion.KeyReader)}
	return s.mux()
}

func TestHandleRankWindows(t *testing.T) {
	mux := newTestServer(t)
	full := tsPayload(1, tsPerRank)
	cases := []struct {
		name   string
		url    string
		status int
		want   []byte // nil = don't check the body bytes
	}{
		{"whole stream", "/rank/1", 200, full},
		{"window", "/rank/1?off=100&n=50", 200, full[100:150]},
		{"offset to end", fmt.Sprintf("/rank/1?off=%d", tsPerRank-7), 200, full[tsPerRank-7:]},
		{"empty window at end", fmt.Sprintf("/rank/1?off=%d", tsPerRank), 200, []byte{}},
		{"count clamped to tail", fmt.Sprintf("/rank/1?off=%d&n=9999", tsPerRank-3), 200, full[tsPerRank-3:]},
		{"zero count", "/rank/1?off=5&n=0", 200, []byte{}},
		{"off past end", fmt.Sprintf("/rank/1?off=%d", tsPerRank+1), 416, nil},
		{"negative off", "/rank/1?off=-1", 416, nil},
		{"huge off", "/rank/1?off=92233720368547758070", 400, nil}, // overflows int64 → malformed
		{"non-integer off", "/rank/1?off=abc", 400, nil},
		{"negative n", "/rank/1?n=-1", 400, nil},
		{"non-integer n", "/rank/1?n=x", 400, nil},
		{"unknown rank", "/rank/99", 404, nil},
		{"non-integer rank", "/rank/zzz", 400, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			mux.ServeHTTP(rec, httptest.NewRequest("GET", tc.url, nil))
			if rec.Code != tc.status {
				t.Fatalf("%s: status %d, want %d (body %q)", tc.url, rec.Code, tc.status, rec.Body.String())
			}
			if tc.want == nil {
				return
			}
			if cl := rec.Header().Get("Content-Length"); cl != strconv.Itoa(len(tc.want)) {
				t.Errorf("%s: Content-Length %q, want %d", tc.url, cl, len(tc.want))
			}
			if !bytes.Equal(rec.Body.Bytes(), tc.want) {
				t.Errorf("%s: body mismatch (%d bytes, want %d)", tc.url, rec.Body.Len(), len(tc.want))
			}
		})
	}
}

func TestHandleRanksAndStats(t *testing.T) {
	mux := newTestServer(t)
	for _, url := range []string{"/ranks", "/stats"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != 200 {
			t.Fatalf("%s: status %d", url, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type %q", url, ct)
		}
		if _, err := io.ReadAll(rec.Result().Body); err != nil {
			t.Errorf("%s: reading body: %v", url, err)
		}
	}
}
