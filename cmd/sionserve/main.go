// Command sionserve exposes a multifile over HTTP through the read-serving
// subsystem (internal/serve): one process fronts the multifile for any
// number of remote clients, with a sharded block cache and coalesced
// backend reads between them and the file system.
//
// Usage:
//
//	sionserve [-addr :8080] [-cache-mb 64] [-block N] [-retries 4] <multifile>
//
// Endpoints:
//
//	GET /ranks                  JSON layout summary (tasks, files, sizes)
//	GET /rank/<r>               the rank's whole logical stream
//	GET /rank/<r>?off=O&n=N     N bytes from logical offset O
//	GET /rank/<r>/keys          JSON list of the rank's record keys
//	GET /rank/<r>/key/<k>       concatenated payload of key k's records
//	GET /stats                  JSON cache/backend counters
//	GET /metrics                Prometheus text exposition of every
//	                            instrument (serve_*, fsio_*)
//	GET /healthz                per-physical-file circuit-breaker state;
//	                            200 when all circuits are closed, 503 when
//	                            any physical file is degraded
//
// With -pprof the net/http/pprof handlers are mounted under
// /debug/pprof/. Every response echoes an X-Request-ID (adopted from the
// request or generated); requests slower than -slow-ms are logged with
// the request's breadcrumb trail (cache hits, backend reads, retries).
//
// Resilience: backend span reads retry transient faults under a bounded
// backoff budget (-retries), and each physical file sits behind a circuit
// breaker. While a circuit is open, reads that the cache can satisfy keep
// succeeding; reads that would need the degraded backend answer
// 503 Service Unavailable with a Retry-After hint.
//
// On SIGINT/SIGTERM the process stops accepting connections, drains
// in-flight requests (bounded by a deadline), then closes the serve layer
// and exits.
//
// The multifile must be complete (written and closed); serving a file
// still being written is out of scope for the cache's consistency model.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/backendflag"
	sion "repro/internal/core"
	"repro/internal/obs"
	"repro/internal/resil"
	"repro/internal/serve"
)

type server struct {
	srv   *serve.Server
	slow  time.Duration // slow-request log threshold (0 disables)
	pprof bool          // mount /debug/pprof/

	mu   sync.Mutex
	keys map[int]*sion.KeyReader // lazily built per rank, shared by clients
}

// logger is the process-wide structured logger. It mostly reports
// response-write failures — errors that surface after the status line is
// committed, so they can no longer turn into an HTTP error for the
// client — plus the middleware's slow-request lines. Handler tests
// capture records via logger.SetHook.
var logger = obs.NewLogger(os.Stderr)

// shutdownTimeout bounds the in-flight request drain on SIGINT/SIGTERM.
const shutdownTimeout = 10 * time.Second

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheMB := flag.Int64("cache-mb", 64, "block cache budget in MiB")
	block := flag.Int64("block", 0, "cache block size in bytes (0 = the multifile's FS block size)")
	retries := flag.Int("retries", resil.DefaultMaxAttempts,
		"max attempts per backend read under transient faults (1 disables retries)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	slowMs := flag.Int64("slow-ms", 500,
		"log requests slower than this many milliseconds with their breadcrumb trail (0 disables)")
	backend := backendflag.Flag()
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sionserve [-addr :8080] [-cache-mb 64] [-block N] [-retries 4] [-backend posix|objstore[,profile]] <multifile>")
		os.Exit(2)
	}
	// One registry carries the whole process: the serve layer's families
	// plus the instrumented backend's fsio_* families (labeled with the
	// backend name), so /metrics shows cache behavior next to the raw I/O
	// it turns into.
	reg := obs.NewRegistry()
	stack, err := backendflag.Build(*backend, reg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sionserve:", err)
		os.Exit(2)
	}
	srv, err := serve.New(stack.FS, flag.Arg(0), &serve.Config{
		CacheBytes: *cacheMB << 20,
		BlockBytes: *block,
		Retry:      &resil.Budget{MaxAttempts: *retries},
		Metrics:    reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sionserve:", err)
		os.Exit(1)
	}
	s := &server{
		srv:   srv,
		slow:  time.Duration(*slowMs) * time.Millisecond,
		pprof: *pprofOn,
		keys:  make(map[int]*sion.KeyReader),
	}
	httpSrv := &http.Server{Addr: *addr, Handler: s.handler()}

	// Graceful shutdown: stop accepting, drain in-flight requests under a
	// deadline, then release the serve layer (fetchers + file handles).
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		fmt.Println("sionserve: shutting down")
		dctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		defer cancel()
		done <- httpSrv.Shutdown(dctx)
	}()

	fmt.Printf("sionserve: serving %s (%d ranks, %d physical files) on %s\n",
		flag.Arg(0), srv.Layout().NTasks(), srv.Layout().NumFiles(), *addr)
	err = httpSrv.ListenAndServe()
	if !errors.Is(err, http.ErrServerClosed) {
		srv.Close()
		fmt.Fprintln(os.Stderr, "sionserve:", err)
		os.Exit(1)
	}
	if derr := <-done; derr != nil {
		fmt.Fprintln(os.Stderr, "sionserve: drain:", derr)
	}
	if cerr := srv.Close(); cerr != nil {
		fmt.Fprintln(os.Stderr, "sionserve: close:", cerr)
	}
}

// mux wires the handler table (split out so tests drive the handlers
// through httptest without a listener).
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/ranks", s.handleRanks)
	mux.HandleFunc("/rank/", s.handleRank)
	mux.HandleFunc("/stats", s.handleStats)
	mux.Handle("/metrics", obs.Handler(s.srv.Metrics()))
	mux.HandleFunc("/healthz", s.handleHealthz)
	if s.pprof {
		obs.MountPprof(mux)
	}
	return mux
}

// handler is the mux behind the shared observability middleware:
// X-Request-ID assignment/echo, a per-request breadcrumb span, and the
// slow-request log.
func (s *server) handler() http.Handler {
	return obs.HTTPMiddleware(s.mux(), logger, s.slow)
}

// handleHealthz reports per-physical-file breaker state: 200 with all
// circuits closed, 503 while any file is degraded (load balancers can key
// readiness off the status code alone).
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	health := s.srv.Health()
	degraded := s.srv.Degraded()
	status := "ok"
	if degraded {
		status = "degraded"
		w.Header().Set("Retry-After", retryAfterSecs)
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, struct {
		Status string             `json:"status"`
		Files  []serve.FileHealth `json:"files"`
	}{Status: status, Files: health})
}

// retryAfterSecs is the Retry-After hint sent with degraded 503s. The
// breaker cooldown is request-counted, so any client backoff that sheds
// immediate retries is appropriate; a small constant keeps well-behaved
// clients probing at a reasonable rate.
const retryAfterSecs = "1"

// httpError maps a read failure to its status: degraded backends are
// 503 + Retry-After (temporary by construction — the circuit re-probes
// after its cooldown), everything else stays a 500.
func httpError(w http.ResponseWriter, err error) {
	if errors.Is(err, serve.ErrDegraded) {
		w.Header().Set("Retry-After", retryAfterSecs)
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}

func (s *server) handleRanks(w http.ResponseWriter, _ *http.Request) {
	l := s.srv.Layout()
	type rankInfo struct {
		Rank  int   `json:"rank"`
		File  int   `json:"file"`
		Bytes int64 `json:"bytes"`
	}
	out := struct {
		Name  string     `json:"name"`
		Tasks int        `json:"tasks"`
		Files int        `json:"files"`
		FSBlk int64      `json:"fs_block_size"`
		Ranks []rankInfo `json:"ranks"`
	}{Name: l.Name(), Tasks: l.NTasks(), Files: l.NumFiles(), FSBlk: l.FSBlockSize()}
	for g, loc := range l.Mapping() {
		out.Ranks = append(out.Ranks, rankInfo{Rank: g, File: int(loc.File), Bytes: l.RankSize(g)})
	}
	writeJSON(w, out)
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.srv.Stats())
}

// handleRank routes /rank/<r>, /rank/<r>/keys, and /rank/<r>/key/<k>.
func (s *server) handleRank(w http.ResponseWriter, r *http.Request) {
	parts := strings.Split(strings.TrimPrefix(r.URL.Path, "/rank/"), "/")
	rank, err := strconv.Atoi(parts[0])
	if err != nil {
		http.Error(w, "bad rank", http.StatusBadRequest)
		return
	}
	h, err := s.srv.Open(rank)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	// Thread the request's span down the read path so the layers below
	// leave breadcrumbs (cache hit / backend read / retry) on it.
	h.SetSpan(obs.SpanFrom(r.Context()))
	switch {
	case len(parts) == 1:
		s.serveBytes(w, r, h)
	case len(parts) == 2 && parts[1] == "keys":
		kr, err := s.keyReader(rank, h)
		if err != nil {
			keyReaderError(w, err)
			return
		}
		writeJSON(w, kr.Keys())
	case len(parts) == 3 && parts[1] == "key":
		key, err := strconv.ParseUint(parts[2], 10, 64)
		if err != nil {
			http.Error(w, "bad key", http.StatusBadRequest)
			return
		}
		kr, err := s.keyReader(rank, h)
		if err != nil {
			keyReaderError(w, err)
			return
		}
		data, err := kr.ReadKey(key)
		if err != nil {
			httpError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		if _, err := w.Write(data); err != nil {
			logger.Error("writing response",
				"req", obs.SpanFrom(r.Context()).ID(), "rank", rank, "key", key, "err", err)
		}
	default:
		http.NotFound(w, r)
	}
}

// serveChunk bounds the buffer serveBytes streams through: a rank's
// logical stream can be arbitrarily large, so the window is read and
// written in pieces instead of materialized in one allocation sized by
// the client's n.
const serveChunk int64 = 1 << 20

// serveBytes answers /rank/<r> with the whole stream or the ?off=&n=
// window. Malformed values are 400s; a well-formed off outside [0, size]
// is a 416 (range not satisfiable, mirroring HTTP range semantics); a
// count past the end is clamped to the stream's tail. off == size is a
// valid empty window.
//
// The first chunk is read before the status line is committed, so an
// immediately failing backend still maps through httpError (503 when
// degraded). Once headers are out the status can't change: mid-stream
// failures are logged and the response cut short of its Content-Length,
// which clients detect as a truncated body.
func (s *server) serveBytes(w http.ResponseWriter, r *http.Request, h *serve.Handle) {
	size := h.LogicalSize()
	off, n := int64(0), size
	q := r.URL.Query()
	if v := q.Get("off"); v != "" {
		parsed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			http.Error(w, "off is not an integer", http.StatusBadRequest)
			return
		}
		if parsed < 0 || parsed > size {
			http.Error(w, fmt.Sprintf("off %d outside the logical stream (0..%d)", parsed, size),
				http.StatusRequestedRangeNotSatisfiable)
			return
		}
		off = parsed
		n = size - off
	}
	if v := q.Get("n"); v != "" {
		want, err := strconv.ParseInt(v, 10, 64)
		if err != nil || want < 0 {
			http.Error(w, "n is not a byte count", http.StatusBadRequest)
			return
		}
		if want < n {
			n = want
		}
	}
	buf := make([]byte, min(n, serveChunk))
	if n > 0 {
		if _, err := h.ReadLogicalAt(buf[:min(n, serveChunk)], off); err != nil {
			httpError(w, err)
			return
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(n, 10))
	for sent := int64(0); sent < n; {
		m := min(n-sent, serveChunk)
		if sent > 0 { // the first chunk was read before the headers
			if _, err := h.ReadLogicalAt(buf[:m], off+sent); err != nil {
				logger.Error("reading stream", "req", obs.SpanFrom(r.Context()).ID(),
					"path", r.URL.Path, "at", sent, "of", n, "err", err)
				return
			}
		}
		if _, err := w.Write(buf[:m]); err != nil {
			logger.Error("writing response", "req", obs.SpanFrom(r.Context()).ID(),
				"path", r.URL.Path, "at", sent, "of", n, "err", err)
			return
		}
		sent += m
	}
}

// keyReaderError distinguishes "this rank has no key records" (a client
// mistake, 400) from a degraded backend interrupting the index scan (503).
func keyReaderError(w http.ResponseWriter, err error) {
	if errors.Is(err, serve.ErrDegraded) {
		httpError(w, err)
		return
	}
	http.Error(w, err.Error(), http.StatusBadRequest)
}

// keyReader returns the rank's shared key index, building it on first use
// (the scan runs through the block cache, so later ranks and clients
// reuse its backend reads).
func (s *server) keyReader(rank int, h *serve.Handle) (*sion.KeyReader, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if kr, ok := s.keys[rank]; ok {
		return kr, nil
	}
	kr, err := h.KeyReader()
	if err != nil {
		return nil, err
	}
	s.keys[rank] = kr
	return kr, nil
}

// writeJSON marshals before touching the ResponseWriter so an encoding
// failure can still become a 500; a failed write afterwards can only be
// logged (the 200 is already committed).
func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		logger.Error("encoding response", "err", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(append(data, '\n')); err != nil {
		logger.Error("writing response", "err", err)
	}
}
