package main

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/serve"
)

// newMetricsServer is newTestServer with the full observability wiring of
// main(): one registry shared by the instrumented backend and the serve
// layer, and the middleware-wrapped handler.
func newMetricsServer(t *testing.T) (*server, http.Handler) {
	t.Helper()
	fsys := fsio.NewOS(t.TempDir())
	mpi.Run(tsRanks, func(c *mpi.Comm) {
		f, err := sion.ParOpen(c, fsys, "data", sion.WriteMode, &sion.Options{ChunkSize: 2048})
		if err != nil {
			t.Errorf("rank %d: ParOpen: %v", c.Rank(), err)
			return
		}
		if _, err := f.Write(tsPayload(c.Rank(), tsPerRank)); err != nil {
			t.Errorf("rank %d: Write: %v", c.Rank(), err)
		}
		if err := f.Close(); err != nil {
			t.Errorf("rank %d: Close: %v", c.Rank(), err)
		}
	})
	reg := obs.NewRegistry()
	srv, err := serve.New(fsio.Instrument(fsys, fsio.NewMeter(reg, "os")), "data",
		&serve.Config{Metrics: reg})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	s := &server{srv: srv, keys: make(map[int]*sion.KeyReader)}
	return s, s.handler()
}

// familySum sums every sample of a counter/gauge family across its label
// sets in a Prometheus text exposition.
func familySum(t *testing.T, body, family string) int64 {
	t.Helper()
	var sum int64
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, family) {
			continue
		}
		rest := line[len(family):]
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue // a longer family name sharing this prefix
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("parsing sample %q: %v", line, err)
		}
		sum += int64(v)
	}
	return sum
}

// TestMetricsMatchesStats seeds a workload and pins the acceptance
// contract: /metrics parses cleanly and its serve_* families agree
// exactly with /stats' snapshot (they are the same instruments).
func TestMetricsMatchesStats(t *testing.T) {
	s, h := newMetricsServer(t)
	for i := 0; i < 2; i++ { // second pass hits the warmed cache
		for r := 0; r < tsRanks; r++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/rank/"+strconv.Itoa(r), nil))
			if rec.Code != 200 {
				t.Fatalf("rank %d: status %d", r, rec.Code)
			}
		}
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type %q", ct)
	}
	body := rec.Body.String()
	if err := obs.CheckExposition([]byte(body)); err != nil {
		t.Fatalf("exposition: %v", err)
	}

	st := s.srv.Stats()
	if st.Hits == 0 || st.BackendReads == 0 {
		t.Fatalf("workload did not seed the counters: %+v", st)
	}
	for _, c := range []struct {
		family string
		want   int64
	}{
		{"serve_cache_hits_total", st.Hits},
		{"serve_cache_misses_total", st.Misses},
		{"serve_backend_reads_total", st.BackendReads},
		{"serve_backend_bytes_total", st.BackendBytes},
		{"serve_served_bytes_total", st.ServedBytes},
		{"serve_handles_opened_total", st.HandlesOpened},
	} {
		if got := familySum(t, body, c.family); got != c.want {
			t.Errorf("%s = %d, want %d (Stats)", c.family, got, c.want)
		}
	}
	// The instrumented backend saw the serve layer's reads: every backend
	// read is at least one fsio read op.
	if ops := familySum(t, body, "fsio_ops_total"); ops == 0 {
		t.Error("fsio_ops_total = 0, want the instrumented backend's ops")
	}
	// Every fsio_* family carries the backend label (the -backend flag's
	// stack label, "os" here), so multi-backend deployments stay tellable
	// apart in one exposition.
	for _, family := range []string{"fsio_ops_total", "fsio_bytes_total"} {
		if !strings.Contains(body, family+`{backend="os"`) {
			t.Errorf("%s lacks the backend label in the exposition", family)
		}
	}
}

// TestRequestIDEcho pins the middleware header contract: a fresh ID is
// assigned when the client sends none, and a client-sent ID is adopted.
func TestRequestIDEcho(t *testing.T) {
	_, h := newMetricsServer(t)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/rank/0", nil))
	if id := rec.Header().Get(obs.RequestIDHeader); len(id) != 16 {
		t.Errorf("generated request ID %q, want 16 hex chars", id)
	}

	req := httptest.NewRequest("GET", "/rank/0", nil)
	req.Header.Set(obs.RequestIDHeader, "caller-chosen-id")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if id := rec.Header().Get(obs.RequestIDHeader); id != "caller-chosen-id" {
		t.Errorf("adopted request ID %q, want the caller's", id)
	}
}

// TestSlowRequestLogCarriesCrumbs drops the slow threshold to a
// nanosecond so every request logs, and checks the trail: a cold read
// leaves backend_read crumbs, a warm re-read cache_hit crumbs.
func TestSlowRequestLogCarriesCrumbs(t *testing.T) {
	s, _ := newMetricsServer(t)
	s.slow = time.Nanosecond
	h := s.handler()

	var crumbs []string
	prev := logger.SetHook(func(r obs.Record) {
		if r.Msg != "slow request" {
			return
		}
		for i := 0; i+1 < len(r.KV); i += 2 {
			if r.KV[i] == "crumbs" {
				crumbs = append(crumbs, r.KV[i+1].(string))
			}
		}
	})
	t.Cleanup(func() { logger.SetHook(prev) })

	for i := 0; i < 2; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/rank/0", nil))
		if rec.Code != 200 {
			t.Fatalf("read %d: status %d", i, rec.Code)
		}
	}
	if len(crumbs) != 2 {
		t.Fatalf("slow-request records = %d, want 2 (crumbs %q)", len(crumbs), crumbs)
	}
	if !strings.Contains(crumbs[0], obs.CrumbBackendRead+"=") {
		t.Errorf("cold read crumbs %q, want a backend_read", crumbs[0])
	}
	if !strings.Contains(crumbs[1], obs.CrumbCacheHit+"=") {
		t.Errorf("warm read crumbs %q, want cache hits", crumbs[1])
	}
}
