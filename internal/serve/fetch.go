package serve

import (
	"fmt"
	"time"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/resil"
)

// Per-physical-file fetcher: the only entity that issues backend reads for
// its file. Serializing misses through one goroutine per file is what CkIO
// calls the aggregator pattern — it gives singleflight semantics for free
// (a miss queued behind an identical in-flight miss finds the block cached
// when its turn comes, instead of issuing a duplicate read) and makes
// request coalescing natural: every miss that accumulates while the
// previous batch is on the wire is merged into the next batch, and the
// batch's blocks are fused into dense span reads with the same
// gap-splitting logic the mapped collective open uses
// (sion.CoalesceExtents).

// fetchReq asks the fetcher to materialize a set of cache blocks.
type fetchReq struct {
	blocks []int64 // sorted block indices the caller missed
	reply  chan fetchRes
}

// fetchRes answers one request of a batch: data maps each requested block
// to its full cache-block payload (shared, immutable). Requests are
// answered individually — a span failure fails only the requests whose
// blocks it covered, so one client's doomed read does not fail the
// neighbors batched with it. stats describes the whole batch's work and
// is shared by every answer (the batch's cost is genuinely shared); span
// breadcrumbs are therefore batch-level, not per-requester.
type fetchRes struct {
	data  map[int64][]byte
	err   error
	stats batchStats
}

// batchStats is what one fetcher batch cost: spans/spanBlocks are the
// dense backend reads issued and the cache blocks they materialized
// (their ratio is the span-fusion win), peerFills and flightHits the
// blocks that never touched the backend, retries the span re-attempts.
type batchStats struct {
	spans, spanBlocks     int64
	peerFills, flightHits int64
	retries               int64
}

type fetcher struct {
	s    *Server
	file int
	fh   fsio.File
	reqs chan *fetchReq
	done chan struct{}
}

func newFetcher(s *Server, file int, fh fsio.File) *fetcher {
	f := &fetcher{
		s:    s,
		file: file,
		fh:   fh,
		reqs: make(chan *fetchReq, 64),
		done: make(chan struct{}),
	}
	go f.loop()
	return f
}

// fetch blocks until the fetcher has materialized the given blocks.
func (f *fetcher) fetch(blocks []int64) fetchRes {
	req := &fetchReq{blocks: blocks, reply: make(chan fetchRes, 1)}
	f.reqs <- req
	return <-req.reply
}

// stop closes the request channel and waits for the loop to drain. The
// caller (Server.Close) guarantees no fetch is in flight.
func (f *fetcher) stop() {
	close(f.reqs)
	<-f.done
}

func (f *fetcher) loop() {
	defer close(f.done)
	for req := range f.reqs {
		batch := []*fetchReq{req}
		batch = f.collect(batch)
		f.serve(batch)
	}
}

// collect widens the batch: everything already queued is taken, and with a
// positive BatchWindow the fetcher keeps listening for that long so misses
// of concurrent clients that are microseconds apart fuse into one backend
// read pattern.
func (f *fetcher) collect(batch []*fetchReq) []*fetchReq {
	if w := f.s.batchWindow; w > 0 {
		timer := time.NewTimer(w)
		defer timer.Stop()
		for {
			select {
			case r, ok := <-f.reqs:
				if !ok {
					return batch
				}
				batch = append(batch, r)
			case <-timer.C:
				return batch
			}
		}
	}
	for {
		select {
		case r, ok := <-f.reqs:
			if !ok {
				return batch
			}
			batch = append(batch, r)
		default:
			return batch
		}
	}
}

// serve materializes the union of the batch's blocks — from the cache
// where a previous batch already fetched them (the singleflight path),
// then from peer caches when a PeerFill hook is installed, otherwise with
// one retried backend read per dense span — and answers every request
// individually: a request succeeds iff all of its blocks materialized,
// and a request whose blocks did not materialize is answered with the
// error of the span that covered *its own* blocks, so one client's
// doomed read neither fails nor mislabels the neighbors batched with it.
//
// Breaker protocol: when backend spans are needed, the batch consults the
// file's breaker once — an open circuit fails the needy requests fast with
// ErrDegraded (each rejection advances the breaker's cooldown clock).
// After the spans run, the batch reports one verdict: Failure if any span
// exhausted its retry budget on a transient fault, Success otherwise
// (a permanent error is the backend answering, which is evidence of
// health, not of overload).
func (f *fetcher) serve(batch []*fetchReq) {
	s := f.s
	s.m.fetchBatches.Inc()
	bs := s.blockBytes
	want := make(map[int64][]byte)
	for _, r := range batch {
		for _, b := range r.blocks {
			want[b] = nil
		}
	}
	var stats batchStats
	var missing []sion.Extent
	for b := range want {
		k := blockKey{f.file, b}
		if data, ok := s.cache.get(k); ok {
			want[b] = data
			s.m.flightHits.Inc()
			stats.flightHits++
			continue
		}
		if s.peerFill != nil {
			if data, ok := s.peerFill(f.file, b); ok && int64(len(data)) == bs {
				want[b] = data
				f.cachePut(k, data)
				s.m.peerFills.Inc()
				stats.peerFills++
				continue
			}
		}
		missing = append(missing, sion.Extent{Off: b * bs, Len: bs})
	}
	var breakerErr error         // covers every unmaterialized block (fail fast)
	var blockErr map[int64]error // per-block span errors otherwise
	if len(missing) > 0 {
		br := s.breakers[f.file]
		if br != nil && !br.Allow() {
			breakerErr = fmt.Errorf("serve: %s: %w", s.physNames[f.file], ErrDegraded)
		} else {
			transientGiveUp := false
			for _, sp := range sion.CoalesceExtents(missing, s.maxSpanGap) {
				buf := make([]byte, sp.End-sp.Off)
				// A short read past EOF leaves the zero fill of make,
				// matching the ReadAt contract for unwritten regions.
				// Spans longer than the backend's ranged-read ceiling
				// (Config.MaxSpanBytes, from the capability descriptor)
				// are read in several block-aligned requests.
				retries, rerr := f.windowedSpanRead(buf, sp.Off)
				stats.retries += retries
				if rerr != nil {
					if blockErr == nil {
						blockErr = make(map[int64]error)
					}
					for _, e := range sp.Extents {
						blockErr[e.Off/bs] = rerr
					}
					if resil.Classify(rerr) == resil.ClassTransient {
						transientGiveUp = true
					}
					continue
				}
				stats.spans++
				stats.spanBlocks += int64(len(sp.Extents))
				s.m.fetchSpans.Inc()
				s.m.fetchSpanBlocks.Add(int64(len(sp.Extents)))
				for _, e := range sp.Extents {
					data := buf[e.Off-sp.Off : e.Off-sp.Off+bs]
					if len(sp.Extents) > 1 {
						// Copy blocks out of multi-block spans so evicting one
						// block releases its bytes instead of pinning the span.
						data = append([]byte(nil), data...)
					}
					b := e.Off / bs
					want[b] = data
					f.cachePut(blockKey{f.file, b}, data)
				}
			}
			if br != nil {
				if transientGiveUp {
					br.Failure()
				} else {
					br.Success()
				}
			}
		}
	}
	for _, r := range batch {
		res := fetchRes{data: want, stats: stats}
		for _, b := range r.blocks {
			if want[b] == nil {
				if breakerErr != nil {
					res.err = breakerErr
					s.m.degraded.Inc()
				} else {
					res.err = blockErr[b]
				}
				break
			}
		}
		r.reply <- res
	}
}

// windowedSpanRead reads one dense span, split into requests of at most
// Server.maxSpanBytes (0 = one request regardless of length) so no
// single backend read exceeds the backend's ranged-read capability. The
// first failing window fails the whole span — its blocks are
// re-requested together anyway.
func (f *fetcher) windowedSpanRead(buf []byte, off int64) (retries int64, _ error) {
	s := f.s
	max := s.maxSpanBytes
	if max <= 0 || max >= int64(len(buf)) {
		return s.spanRead(f.fh, f.file, buf, off)
	}
	for w := int64(0); w < int64(len(buf)); w += max {
		end := w + max
		if end > int64(len(buf)) {
			end = int64(len(buf))
		}
		r, err := s.spanRead(f.fh, f.file, buf[w:end], off+w)
		retries += r
		if err != nil {
			return retries, err
		}
	}
	return retries, nil
}

// cachePut inserts a block and attributes any evictions it caused to the
// block's shard counter (evictions happen within the shard of the key
// being inserted).
func (f *fetcher) cachePut(k blockKey, data []byte) {
	if ev := f.s.cache.put(k, data); ev > 0 {
		f.s.m.evictions[f.s.cache.shardIndex(k)].Add(int64(ev))
	}
}
