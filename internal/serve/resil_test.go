package serve

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/fsio"
	"repro/internal/resil"
	"repro/internal/simfs"
)

// noRealSleep is the unit-test retry budget.
func noRealSleep(maxAttempts int) *resil.Budget {
	return &resil.Budget{MaxAttempts: maxAttempts, Seed: 7, Sleep: func(time.Duration) {}}
}

// TestServeRetriesAbsorbFlakyBackend: with probabilistic transient faults
// on the physical files and a retry budget, every client read must succeed
// with byte identity, and the stats must show the absorbed retries.
func TestServeRetriesAbsorbFlakyBackend(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	payloads := writeMultifile(t, fsys, "s.sion", 6)

	fl := simfs.NewFlaky(simfs.FlakyConfig{Seed: 1234, ReadErrProb: 0.3})
	fl.SetEnabled(false) // metadata load in New is not under the retry path
	s, err := New(fl.Wrap(fsys, nil), "s.sion", &Config{
		CacheBytes: 1 << 20,
		Retry:      noRealSleep(12),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fl.SetEnabled(true)
	for r, want := range payloads {
		h, err := s.Open(r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(h)
		if err != nil {
			t.Fatalf("rank %d under faults: %v", r, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("rank %d: bytes differ under faults", r)
		}
	}
	st := s.Stats()
	if st.Retries == 0 {
		t.Fatalf("p=0.3 faults absorbed with zero retries: %+v (injected %d)", st, fl.Stats().Injected)
	}
	if st.GiveUps != 0 || st.Degraded != 0 || st.BreakerOpens != 0 {
		t.Fatalf("healthy-backend run degraded: %+v", st)
	}
}

// TestServeZeroRetryOverhead pins the overhead guard: with no injection
// the retry/giveup/degraded counters stay exactly zero.
func TestServeZeroRetryOverhead(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	payloads := writeMultifile(t, fsys, "s.sion", 4)
	s, err := New(fsys, "s.sion", &Config{CacheBytes: 1 << 20, Retry: noRealSleep(8)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for r, want := range payloads {
		h, _ := s.Open(r)
		got, err := io.ReadAll(h)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	st := s.Stats()
	if st.Retries != 0 || st.GiveUps != 0 || st.Degraded != 0 || st.BreakerOpens != 0 {
		t.Fatalf("clean backend moved resilience counters: %+v", st)
	}
	if s.Degraded() {
		t.Fatalf("clean server reports degraded")
	}
}

// TestServeBreakerDegradesAndRecovers drives the full circuit lifecycle
// against a deterministic outage: consecutive give-ups open the breaker;
// while open, cached blocks still serve and uncached reads fail fast with
// ErrDegraded; once the outage lifts, the cooldown admits a half-open
// probe whose success closes the circuit and restores full service.
func TestServeBreakerDegradesAndRecovers(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	payloads := writeMultifile(t, fsys, "s.sion", 4)

	fl := simfs.NewFlaky(simfs.FlakyConfig{Seed: 77})
	const threshold, cooldown = 3, 5
	s, err := New(fl.Wrap(fsys, nil), "s.sion", &Config{
		CacheBytes:       1 << 20,
		Retry:            noRealSleep(2),
		BreakerThreshold: threshold,
		BreakerCooldown:  cooldown,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Warm the cache with rank 0 (lives in physical file 0 with the
	// two-file contiguous default mapping of writeMultifile).
	h0, err := s.Open(0)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := io.ReadAll(h0); err != nil || !bytes.Equal(got, payloads[0]) {
		t.Fatalf("warm read: %v", err)
	}

	// Outage on physical file 0 from now on.
	phys := s.physNames[0]
	fl.FailWindow(phys, fl.FileOps(phys), 1<<40)

	// Cached blocks still serve while the backend is down.
	h0b, _ := s.Open(0)
	if got, err := io.ReadAll(h0b); err != nil || !bytes.Equal(got, payloads[0]) {
		t.Fatalf("cached read during outage: %v", err)
	}

	// Rank 1 also lives in file 0 but is uncached: each read gives up
	// after retries; `threshold` consecutive give-ups open the circuit.
	h1, _ := s.Open(1)
	for i := 0; i < threshold; i++ {
		if _, err := h1.ReadLogicalAt(make([]byte, 64), 0); err == nil {
			t.Fatalf("outage read %d succeeded", i)
		} else if errors.Is(err, ErrDegraded) {
			t.Fatalf("outage read %d degraded before threshold", i)
		}
	}
	if hl := s.Health(); hl[0].StateName != "open" {
		t.Fatalf("after %d give-ups file 0 is %q, want open (health %+v)", threshold, hl[0].StateName, hl)
	}
	if !s.Degraded() {
		t.Fatalf("server does not report degraded with an open breaker")
	}

	// Open circuit: uncached misses fail fast with the typed error, and
	// cache hits keep working.
	for i := 0; i < cooldown-1; i++ {
		_, err := h1.ReadLogicalAt(make([]byte, 64), 0)
		if !errors.Is(err, ErrDegraded) {
			t.Fatalf("open-circuit read %d: %v, want ErrDegraded", i, err)
		}
	}
	h0c, _ := s.Open(0)
	if got, err := io.ReadAll(h0c); err != nil || !bytes.Equal(got, payloads[0]) {
		t.Fatalf("cached read with open circuit: %v", err)
	}
	retriesDuringOpen := s.Stats().Retries

	// Outage ends. The next rejection finishes the cooldown (half-open);
	// the one after that is the probe, which succeeds and closes the
	// circuit.
	fl.ClearWindows()
	if _, err := h1.ReadLogicalAt(make([]byte, 64), 0); !errors.Is(err, ErrDegraded) {
		t.Fatalf("cooldown-final read: %v, want ErrDegraded", err)
	}
	if hl := s.Health(); hl[0].StateName != "half-open" {
		t.Fatalf("after cooldown file 0 is %q, want half-open", hl[0].StateName)
	}
	probe := make([]byte, 64)
	if _, err := h1.ReadLogicalAt(probe, 0); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if !bytes.Equal(probe, payloads[1][:64]) {
		t.Fatalf("probe bytes differ")
	}
	if hl := s.Health(); hl[0].StateName != "closed" {
		t.Fatalf("after successful probe file 0 is %q, want closed", hl[0].StateName)
	}
	if s.Degraded() {
		t.Fatalf("recovered server still reports degraded")
	}

	// Full service restored, byte-identical.
	for r, want := range payloads {
		h, _ := s.Open(r)
		got, err := io.ReadAll(h)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("rank %d after recovery: %v", r, err)
		}
	}

	st := s.Stats()
	if st.BreakerOpens != 1 {
		t.Fatalf("BreakerOpens = %d, want 1", st.BreakerOpens)
	}
	if st.Degraded == 0 || st.GiveUps == 0 {
		t.Fatalf("lifecycle left no degraded/give-up trace: %+v", st)
	}
	// Fail-fast means no backend retries were burned while the circuit
	// was open.
	if st.Retries != retriesDuringOpen {
		t.Fatalf("retries advanced during fail-fast window: %d -> %d", retriesDuringOpen, st.Retries)
	}
}

// TestServePermanentErrorsDontTrip: a permanent backend error (here: a
// physical file removed out from under the server, yielding not-exist on
// reopen-style errors — simulated via reading a truncated file through a
// fault-free wrapper) must neither retry nor open the breaker.
func TestServePermanentErrorsDontTrip(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	writeMultifile(t, fsys, "s.sion", 4)
	s, err := New(fsys, "s.sion", &Config{
		CacheBytes:       1 << 20,
		Retry:            noRealSleep(6),
		BreakerThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Reads past EOF are legal zero-filled short reads, not errors: the
	// breaker must stay closed and nothing retries.
	h, _ := s.Open(3)
	buf := make([]byte, 32)
	if _, err := h.ReadLogicalAt(buf, h.LogicalSize()); err != io.EOF {
		t.Fatalf("read past end: %v, want io.EOF", err)
	}
	st := s.Stats()
	if st.Retries != 0 || st.BreakerOpens != 0 {
		t.Fatalf("EOF handling moved resilience counters: %+v", st)
	}
}
