package serve

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/mpi"
)

// testPayload is the deterministic per-rank payload used across the tests.
func testPayload(rank, size int) []byte {
	out := make([]byte, size)
	x := uint32(rank*2654435761 + 12345)
	for i := range out {
		x = x*1664525 + 1013904223
		out[i] = byte(x >> 24)
	}
	return out
}

// writeMultifile writes an n-task multifile (two physical files, ~2.5
// chunks per task) and returns each rank's payload.
func writeMultifile(t testing.TB, fsys fsio.FileSystem, name string, n int) [][]byte {
	t.Helper()
	payloads := make([][]byte, n)
	for r := range payloads {
		payloads[r] = testPayload(r, 2500+37*r)
	}
	mpi.Run(n, func(c *mpi.Comm) {
		f, err := sion.ParOpen(c, fsys, name, sion.WriteMode, &sion.Options{
			ChunkSize: 1024, FSBlockSize: 256, NFiles: 2,
		})
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.Write(payloads[c.Rank()]); err != nil {
			t.Error(err)
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	return payloads
}

func TestServeByteIdentity(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	payloads := writeMultifile(t, fsys, "s.sion", 8)
	s, err := New(fsys, "s.sion", &Config{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for r, want := range payloads {
		h, err := s.Open(r)
		if err != nil {
			t.Fatal(err)
		}
		if h.LogicalSize() != int64(len(want)) {
			t.Fatalf("rank %d: LogicalSize %d, want %d", r, h.LogicalSize(), len(want))
		}
		got, err := io.ReadAll(h)
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("rank %d: sequential read differs from payload", r)
		}
		// Random-access windows, including chunk-spanning and tail reads.
		for _, win := range [][2]int64{{0, 10}, {1000, 600}, {int64(len(want)) - 7, 7}, {300, 1}} {
			buf := make([]byte, win[1])
			if _, err := h.ReadLogicalAt(buf, win[0]); err != nil {
				t.Fatalf("rank %d: ReadLogicalAt(%v): %v", r, win, err)
			}
			if !bytes.Equal(buf, want[win[0]:win[0]+win[1]]) {
				t.Fatalf("rank %d: ReadLogicalAt(%v) differs", r, win)
			}
		}
		// Past-the-end reads are short with io.EOF.
		buf := make([]byte, 16)
		if n, err := h.ReadLogicalAt(buf, h.LogicalSize()-4); err != io.EOF || n != 4 {
			t.Fatalf("rank %d: tail read got (%d, %v), want (4, EOF)", r, n, err)
		}
	}
	st := s.Stats()
	if st.BackendReads == 0 || st.Misses == 0 {
		t.Fatalf("stats show no backend traffic: %+v", st)
	}
	if st.Hits == 0 {
		t.Fatalf("re-reads should hit the cache: %+v", st)
	}
}

func TestServeConcurrentClients(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	const n = 12
	payloads := writeMultifile(t, fsys, "c.sion", n)
	s, err := New(fsys, "c.sion", &Config{CacheBytes: 1 << 20, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const clients = 64
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rank := c % n
			want := payloads[rank]
			h, err := s.Open(rank)
			if err != nil {
				errs <- err
				return
			}
			// Mixed sequential and random access, zipf-ish repetition of
			// the same offsets across clients to exercise singleflight.
			got, err := io.ReadAll(h)
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", c, err)
				return
			}
			if !bytes.Equal(got, want) {
				errs <- fmt.Errorf("client %d: sequential bytes differ", c)
				return
			}
			for i := 0; i < 20; i++ {
				off := int64((c*131 + i*977) % (len(want) - 64))
				buf := make([]byte, 64)
				if _, err := h.ReadLogicalAt(buf, off); err != nil {
					errs <- fmt.Errorf("client %d: %w", c, err)
					return
				}
				if !bytes.Equal(buf, want[off:off+64]) {
					errs <- fmt.Errorf("client %d: random window at %d differs", c, off)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	var total int64
	for _, p := range payloads {
		total += int64(len(p))
	}
	// 64 clients each read a full rank plus 20 windows; without the cache
	// that is ≥64 full streams of backend traffic. The cache must have
	// reduced backend bytes to far less than the logical bytes served.
	if st.ServedBytes < 5*total {
		t.Fatalf("expected ≥5x logical over-read, served %d of %d total", st.ServedBytes, total)
	}
	if st.BackendBytes > st.ServedBytes/2 {
		t.Fatalf("cache ineffective: backend %d vs served %d bytes", st.BackendBytes, st.ServedBytes)
	}
	if st.HandlesOpened != clients {
		t.Fatalf("HandlesOpened = %d, want %d", st.HandlesOpened, clients)
	}
}

func TestServeTinyCacheStaysCorrect(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	payloads := writeMultifile(t, fsys, "t.sion", 6)
	// Budget of ~4 blocks forces constant eviction.
	s, err := New(fsys, "t.sion", &Config{CacheBytes: 1024, BlockBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for pass := 0; pass < 2; pass++ {
		for r, want := range payloads {
			h, err := s.Open(r)
			if err != nil {
				t.Fatal(err)
			}
			got, err := io.ReadAll(h)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("pass %d rank %d: bytes differ under eviction pressure", pass, r)
			}
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("expected evictions with a 1 KiB budget: %+v", st)
	}
	if st.CachedBytes > 2*1024 {
		t.Fatalf("resident bytes %d far exceed the budget", st.CachedBytes)
	}
}

func TestServeKeyReaderThroughCache(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	const n = 4
	type rec struct {
		key uint64
		val []byte
	}
	recs := make([][]rec, n)
	mpi.Run(n, func(c *mpi.Comm) {
		f, err := sion.ParOpen(c, fsys, "k.sion", sion.WriteMode, &sion.Options{
			ChunkSize: 512, FSBlockSize: 128,
		})
		if err != nil {
			t.Error(err)
			return
		}
		w, err := sion.NewKeyWriter(f)
		if err != nil {
			t.Error(err)
			return
		}
		var rs []rec
		for i := 0; i < 12; i++ {
			r := rec{key: uint64(i % 3), val: testPayload(c.Rank()*100+i, 40+i)}
			rs = append(rs, r)
			if err := w.WriteKey(r.key, r.val); err != nil {
				t.Error(err)
				return
			}
		}
		recs[c.Rank()] = rs
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	s, err := New(fsys, "k.sion", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for r := 0; r < n; r++ {
		h, err := s.Open(r)
		if err != nil {
			t.Fatal(err)
		}
		kr, err := h.KeyReader()
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		for key := uint64(0); key < 3; key++ {
			var want []byte
			for _, rc := range recs[r] {
				if rc.key == key {
					want = append(want, rc.val...)
				}
			}
			got, err := kr.ReadKey(key)
			if err != nil {
				t.Fatalf("rank %d key %d: %v", r, key, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("rank %d key %d: stream differs", r, key)
			}
		}
	}
}

func TestServeOpenValidatesRank(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	writeMultifile(t, fsys, "v.sion", 3)
	s, err := New(fsys, "v.sion", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Open(-1); err == nil {
		t.Fatal("Open(-1) accepted")
	}
	if _, err := s.Open(3); err == nil {
		t.Fatal("Open(ntasks) accepted")
	}
}

func TestServeCloseRejectsReads(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	writeMultifile(t, fsys, "x.sion", 2)
	s, err := New(fsys, "x.sion", nil)
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Open(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := h.ReadLogicalAt(make([]byte, 8), 0); err == nil {
		t.Fatal("read after Close succeeded")
	}
}

func TestServeSeekWhence(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	payloads := writeMultifile(t, fsys, "w.sion", 2)
	s, err := New(fsys, "w.sion", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h, _ := s.Open(1)
	want := payloads[1]
	if _, err := h.Seek(-10, io.SeekEnd); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want[len(want)-10:]) {
		t.Fatal("SeekEnd tail read differs")
	}
	if _, err := h.Seek(-1, io.SeekStart); err == nil {
		t.Fatal("negative Seek accepted")
	}
}
