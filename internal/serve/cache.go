package serve

import (
	"container/list"
	"sort"
	"sync"
	"sync/atomic"
)

// Sharded block cache: physical-file bytes in fixed-size blocks keyed by
// (physical file, block index). Shard count is a power of two so the key
// hash maps with a mask; each shard has its own lock and LRU list, and the
// byte budget is split evenly across shards (GPFS-style independent cache
// partitions), so concurrent clients only contend when their blocks hash
// to the same shard.

// blockKey identifies one cache block.
type blockKey struct {
	file  int
	block int64
}

// hash mixes the key into a shard index (Fibonacci-style multiplicative
// hashing; file and block each spread over the full word before xor so
// adjacent blocks land on different shards).
func (k blockKey) hash() uint64 {
	return uint64(k.file)*0x9e3779b97f4a7c15 ^ uint64(k.block)*0xbf58476d1ce4e5b9>>17 ^ uint64(k.block)
}

type cacheEntry struct {
	key  blockKey
	data []byte
	hits int64 // lookups served since insertion (feeds HotBlocks)
}

type cacheShard struct {
	mu    sync.Mutex
	items map[blockKey]*list.Element
	lru   list.List // front = most recently used
	bytes int64
}

type blockCache struct {
	shards    []cacheShard
	mask      uint64
	perShard  int64 // byte budget per shard
	evictions atomic.Int64
}

// newBlockCache builds a cache of totalBytes split over nshards shards
// (rounded up to a power of two). The caller guarantees the per-shard
// budget holds at least one block.
func newBlockCache(totalBytes int64, nshards int) *blockCache {
	n := 1
	for n < nshards {
		n <<= 1
	}
	c := &blockCache{
		shards:   make([]cacheShard, n),
		mask:     uint64(n - 1),
		perShard: totalBytes / int64(n),
	}
	for i := range c.shards {
		c.shards[i].items = make(map[blockKey]*list.Element)
	}
	return c
}

func (c *blockCache) shard(k blockKey) *cacheShard {
	return &c.shards[k.hash()&c.mask]
}

// shardIndex returns the shard a key maps to, for per-shard metric
// attribution.
func (c *blockCache) shardIndex(k blockKey) int {
	return int(k.hash() & c.mask)
}

// get returns the cached block and marks it most recently used. The
// returned slice is shared and must be treated as immutable.
func (c *blockCache) get(k blockKey) ([]byte, bool) {
	return c.getAt(c.shardIndex(k), k)
}

// getAt is get with the shard index precomputed — the read hot path
// needs the index for per-shard metric attribution anyway, so it hashes
// once and passes it in.
func (c *blockCache) getAt(si int, k blockKey) ([]byte, bool) {
	s := &c.shards[si]
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[k]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	ent := el.Value.(*cacheEntry)
	ent.hits++
	return ent.data, true
}

// put inserts (or refreshes) a block and evicts from the shard's LRU tail
// until the shard is back under budget, returning how many blocks were
// evicted. data must not be mutated after insertion.
func (c *blockCache) put(k blockKey, data []byte) int {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		// Concurrent fetchers of different files can race the same key only
		// if keys collide across fetchers, which they cannot (the file is
		// part of the key) — but a refetch after eviction can re-insert
		// while an old entry still exists on another path. Keep the fresh
		// bytes and the LRU position.
		ent := el.Value.(*cacheEntry)
		s.bytes += int64(len(data)) - int64(len(ent.data))
		ent.data = data
		s.lru.MoveToFront(el)
	} else {
		s.items[k] = s.lru.PushFront(&cacheEntry{key: k, data: data})
		s.bytes += int64(len(data))
	}
	evicted := 0
	for s.bytes > c.perShard && s.lru.Len() > 1 {
		el := s.lru.Back()
		ent := el.Value.(*cacheEntry)
		s.lru.Remove(el)
		delete(s.items, ent.key)
		s.bytes -= int64(len(ent.data))
		c.evictions.Add(1)
		evicted++
	}
	return evicted
}

// invalidate drops a block from the cache if present. Tail servers call
// it when a rank's committed frontier crosses into a new block: the block
// that used to contain the frontier was never cached (frontier bytes
// bypass the cache), but dropping it anyway keeps the cache provably free
// of stale bytes even if a future caller caches more eagerly.
func (c *blockCache) invalidate(k blockKey) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		ent := el.Value.(*cacheEntry)
		s.lru.Remove(el)
		delete(s.items, k)
		s.bytes -= int64(len(ent.data))
	}
}

// hot lists the resident blocks with at least minHits lookups, hottest
// first (ties on (file, block) so the order is deterministic). Hit counts
// are per-entry and reset when a block is evicted and refetched, so the
// report tracks the *current* working set, not all-time popularity.
func (c *blockCache) hot(minHits int64) []HotBlock {
	var out []HotBlock
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, el := range s.items {
			ent := el.Value.(*cacheEntry)
			if ent.hits >= minHits {
				out = append(out, HotBlock{File: ent.key.file, Block: ent.key.block, Hits: ent.hits})
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hits != out[j].Hits {
			return out[i].Hits > out[j].Hits
		}
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Block < out[j].Block
	})
	return out
}

// cachedBytes sums the resident bytes across shards (stats snapshot).
func (c *blockCache) cachedBytes() int64 {
	var total int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.bytes
		s.mu.Unlock()
	}
	return total
}
