package serve

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/simfs"
	"repro/internal/vtime"
)

// writeSimMultifile writes an n-task multifile into a simulated file
// system. simfs writes must run under the virtual-time engine (views are
// proc-bound); the returned payloads are read back later through a
// nil-proc view, which skips time metering entirely.
func writeSimMultifile(t *testing.T, fs *simfs.FS, name string, n int) [][]byte {
	t.Helper()
	payloads := make([][]byte, n)
	for r := range payloads {
		payloads[r] = testPayload(r, 2500+37*r)
	}
	e := vtime.NewEngine()
	mpi.RunSim(e, n, mpi.DefaultCost, func(c *mpi.Comm) {
		f, err := sion.ParOpen(c, fs.View(c.Rank(), c.Proc()), name, sion.WriteMode, &sion.Options{
			ChunkSize: 1024, FSBlockSize: 256, NFiles: 2,
		})
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.Write(payloads[c.Rank()]); err != nil {
			t.Error(err)
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	return payloads
}

// simReadReqs sums the simulated backend's own read-request ledger over
// the multifile's physical files.
func simReadReqs(t *testing.T, fs *simfs.FS, name string, nfiles int) int64 {
	t.Helper()
	var total int64
	for _, phys := range sion.PhysicalNames(name, nfiles) {
		st, ok := fs.Stats(phys)
		if !ok {
			t.Fatalf("no simfs stats for %s", phys)
		}
		total += st.ReadRequests
	}
	return total
}

// TestMetricsReconcileWithBackend drives concurrent clients over a
// simulated backend and reconciles the registry's counters against the
// backend's own request ledger: every backend read the server counted is
// one the file system actually saw, exactly — no drops, no double counts.
// Run under -race in CI, this also pins the instruments' thread safety on
// the hot path.
func TestMetricsReconcileWithBackend(t *testing.T) {
	fs := simfs.New(simfs.Jugene())
	const n = 8
	payloads := writeSimMultifile(t, fs, "m.sion", n)

	reg := obs.NewRegistry()
	s, err := New(fs.View(n, nil), "m.sion", &Config{
		CacheBytes: 1 << 20, Shards: 8, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	nfiles := s.Layout().NumFiles()
	preReads := simReadReqs(t, fs, "m.sion", nfiles) // layout load traffic

	const clients = 32
	var wg sync.WaitGroup
	var served int64 // bytes delivered to clients, summed across goroutines
	var servedMu sync.Mutex
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rank := c % n
			want := payloads[rank]
			h, err := s.Open(rank)
			if err != nil {
				errs <- err
				return
			}
			var mine int64
			for pass := 0; pass < 3; pass++ {
				buf := make([]byte, len(want))
				if _, err := h.ReadLogicalAt(buf, 0); err != nil {
					errs <- fmt.Errorf("client %d pass %d: %w", c, pass, err)
					return
				}
				if !bytes.Equal(buf, want) {
					errs <- fmt.Errorf("client %d pass %d: bytes differ", c, pass)
					return
				}
				mine += int64(len(buf))
			}
			servedMu.Lock()
			served += mine
			servedMu.Unlock()
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := s.Stats()
	backend := simReadReqs(t, fs, "m.sion", nfiles) - preReads
	if st.BackendReads != backend {
		t.Errorf("serve counted %d backend reads, the backend saw %d", st.BackendReads, backend)
	}
	if st.ServedBytes != served {
		t.Errorf("serve counted %d served bytes, clients received %d", st.ServedBytes, served)
	}
	if st.Hits == 0 || st.Misses == 0 || st.BackendReads == 0 {
		t.Errorf("storm left counters unseeded: %+v", st)
	}
	// The exposition is the same instruments; spot-check it agrees and
	// parses cleanly even right after heavy concurrent traffic.
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	if err := obs.CheckExposition(buf.Bytes()); err != nil {
		t.Fatalf("exposition: %v", err)
	}
}

// stormServer opens a warmed server over the multifile: every rank read
// once so the measured passes below are pure cache hits — the path where
// instrumentation overhead would be most visible.
func stormServer(b *testing.B, fsys fsio.FileSystem, name string, payloads [][]byte, reg *obs.Registry) (*Server, []*Handle) {
	b.Helper()
	s, err := New(fsys, name, &Config{CacheBytes: 8 << 20, Metrics: reg})
	if err != nil {
		b.Fatal(err)
	}
	handles := make([]*Handle, len(payloads))
	for r := range payloads {
		h, err := s.Open(r)
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, len(payloads[r]))
		if _, err := h.ReadLogicalAt(buf, 0); err != nil {
			b.Fatal(err)
		}
		handles[r] = h
	}
	return s, handles
}

// stormPass reads every rank's stream once through the warm cache.
func stormPass(b *testing.B, handles []*Handle, bufs [][]byte) {
	for r, h := range handles {
		if _, err := h.ReadLogicalAt(bufs[r], 0); err != nil {
			b.Fatal(err)
		}
	}
}

// writeBenchMultifile writes the overhead guard's multifile: production-
// shaped blocks (16 KiB, vs the unit tests' 256 B) so the storm's cost
// profile matches a real deployment — block copies dominate, counters
// ride along.
func writeBenchMultifile(b *testing.B, fsys fsio.FileSystem, name string, n int) [][]byte {
	b.Helper()
	payloads := make([][]byte, n)
	for r := range payloads {
		payloads[r] = testPayload(r, 256<<10)
	}
	mpi.Run(n, func(c *mpi.Comm) {
		f, err := sion.ParOpen(c, fsys, name, sion.WriteMode, &sion.Options{
			ChunkSize: 256 << 10, FSBlockSize: 16 << 10, NFiles: 2,
		})
		if err != nil {
			b.Error(err)
			return
		}
		if _, err := f.Write(payloads[c.Rank()]); err != nil {
			b.Error(err)
		}
		if err := f.Close(); err != nil {
			b.Error(err)
		}
	})
	return payloads
}

// BenchmarkInstrumentationOverhead is the overhead guard: the same
// warm-cache read storm runs under the default (live) registry and under
// obs.Nop(), interleaved, and the ratio of the two minima must stay
// within 5% — counters on the per-block hit path are atomic adds and
// latency is sampled, so instrumentation must be noise. The guard fails
// the bench run when it regresses; run with `go test -bench
// InstrumentationOverhead ./internal/serve/`.
func BenchmarkInstrumentationOverhead(b *testing.B) {
	fsys := fsio.NewOS(b.TempDir())
	const n = 4
	payloads := writeBenchMultifile(b, fsys, "o.sion", n)
	sOn, hOn := stormServer(b, fsys, "o.sion", payloads, nil) // live default registry
	defer sOn.Close()
	sOff, hOff := stormServer(b, fsys, "o.sion", payloads, obs.Nop())
	defer sOff.Close()
	bufs := make([][]byte, n)
	for r := range bufs {
		bufs[r] = make([]byte, len(payloads[r]))
	}

	// Each benchmark iteration is one interleaved trial of both variants
	// (several storm passes each); the guard compares the best trial of
	// each so scheduler noise cancels instead of deciding the verdict.
	const passes = 20
	minOn, minOff := time.Duration(1<<62), time.Duration(1<<62)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		for p := 0; p < passes; p++ {
			stormPass(b, hOn, bufs)
		}
		if d := time.Since(start); d < minOn {
			minOn = d
		}
		start = time.Now()
		for p := 0; p < passes; p++ {
			stormPass(b, hOff, bufs)
		}
		if d := time.Since(start); d < minOff {
			minOff = d
		}
	}
	b.StopTimer()
	ratio := float64(minOn) / float64(minOff)
	b.ReportMetric(ratio, "overhead-ratio")
	if b.N >= 3 && ratio > 1.05 {
		b.Errorf("instrumented storm is %.1f%% slower than the no-op registry (budget 5%%)",
			(ratio-1)*100)
	}
}
