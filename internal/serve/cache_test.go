package serve

import (
	"fmt"
	"sync"
	"testing"
)

func TestBlockCacheLRUEviction(t *testing.T) {
	// One shard, budget of 4 × 10-byte blocks.
	c := newBlockCache(40, 1)
	blk := func(i int) ([]byte, blockKey) {
		return []byte(fmt.Sprintf("block-%04d", i)), blockKey{0, int64(i)}
	}
	for i := 0; i < 4; i++ {
		d, k := blk(i)
		c.put(k, d)
	}
	// Touch block 0 so it is MRU, then insert one more: block 1 (LRU) must
	// be the victim.
	if _, ok := c.get(blockKey{0, 0}); !ok {
		t.Fatal("block 0 missing before eviction")
	}
	d, k := blk(4)
	c.put(k, d)
	if _, ok := c.get(blockKey{0, 1}); ok {
		t.Fatal("LRU block 1 survived eviction")
	}
	for _, want := range []int64{0, 2, 3, 4} {
		if _, ok := c.get(blockKey{0, want}); !ok {
			t.Fatalf("block %d evicted unexpectedly", want)
		}
	}
	if got := c.evictions.Load(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if got := c.cachedBytes(); got != 40 {
		t.Fatalf("cachedBytes = %d, want 40", got)
	}
}

func TestBlockCacheRefreshSameKey(t *testing.T) {
	c := newBlockCache(100, 1)
	k := blockKey{2, 7}
	c.put(k, []byte("abc"))
	c.put(k, []byte("defgh"))
	d, ok := c.get(k)
	if !ok || string(d) != "defgh" {
		t.Fatalf("refresh lost: %q %v", d, ok)
	}
	if got := c.cachedBytes(); got != 5 {
		t.Fatalf("cachedBytes = %d after refresh, want 5", got)
	}
}

func TestBlockCacheShardRounding(t *testing.T) {
	c := newBlockCache(1024, 5)
	if len(c.shards) != 8 {
		t.Fatalf("5 shards rounded to %d, want 8", len(c.shards))
	}
	if c.mask != 7 {
		t.Fatalf("mask = %d, want 7", c.mask)
	}
}

func TestBlockCacheConcurrent(t *testing.T) {
	c := newBlockCache(1<<16, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			data := make([]byte, 64)
			for i := 0; i < 500; i++ {
				k := blockKey{g % 3, int64(i % 50)}
				if d, ok := c.get(k); ok && len(d) != 64 {
					t.Errorf("wrong block size %d", len(d))
					return
				}
				c.put(k, data)
			}
		}(g)
	}
	wg.Wait()
}
