package serve

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/mpi"
)

// TestServeCloseIdempotentSentinel pins the Close contract under -race:
// Close is idempotent, reads racing Close either succeed or fail with
// ErrServerClosed (never a torn internal state), and reads issued after
// Close always fail with ErrServerClosed.
func TestServeCloseIdempotentSentinel(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	writeMultifile(t, fsys, "c.sion", 4)
	s, err := New(fsys, "c.sion", &Config{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	handles := make([]*Handle, 4)
	for r := range handles {
		if handles[r], err = s.Open(r); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for r, h := range handles {
		wg.Add(1)
		go func(r int, h *Handle) {
			defer wg.Done()
			buf := make([]byte, 512)
			for i := 0; i < 50; i++ {
				if _, err := h.ReadLogicalAt(buf, int64(i)%h.LogicalSize()); err != nil {
					if !errors.Is(err, ErrServerClosed) {
						t.Errorf("rank %d: read racing Close: %v", r, err)
					}
					return
				}
			}
		}(r, h)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v (want nil — Close must be idempotent)", err)
	}
	wg.Wait()
	buf := make([]byte, 16)
	if _, err := handles[0].ReadLogicalAt(buf, 0); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("post-Close read: %v, want ErrServerClosed", err)
	}
}

// TestServeTailLiveStream drives two writers flushing in lockstep while a
// tail server follows them: after every flush round the sessions must see
// exactly the committed prefix, hit ErrAgain at the watermark, and after
// the writers' Close drain to EOF with byte identity.
func TestServeTailLiveStream(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	const ranks, steps, piece = 2, 4, 700
	payloads := make([][]byte, ranks)
	for r := range payloads {
		payloads[r] = testPayload(r, steps*piece)
	}
	stepDone := make(chan struct{})
	resume := make(chan struct{})
	go mpi.Run(ranks, func(c *mpi.Comm) {
		f, err := sion.ParOpen(c, fsys, "t.sion", sion.WriteMode, &sion.Options{
			ChunkSize: 1024, FSBlockSize: 256, Watermarks: true,
		})
		if err != nil {
			t.Error(err)
			return
		}
		for st := 0; st < steps; st++ {
			if _, err := f.Write(payloads[c.Rank()][st*piece : (st+1)*piece]); err != nil {
				t.Errorf("rank %d: %v", c.Rank(), err)
			}
			if err := f.Flush(); err != nil {
				t.Errorf("rank %d: Flush: %v", c.Rank(), err)
			}
			c.Barrier()
			if c.Rank() == 0 {
				stepDone <- struct{}{}
				<-resume
			}
			c.Barrier()
		}
		if err := f.Close(); err != nil {
			t.Errorf("rank %d: Close: %v", c.Rank(), err)
		}
		c.Barrier()
		if c.Rank() == 0 {
			stepDone <- struct{}{}
		}
	})

	<-stepDone // round 1 flushed
	s, err := NewTail(fsys, "t.sion", &Config{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Open(0); err == nil {
		t.Fatal("Open on a tail server should fail")
	}
	sess := make([]*Session, ranks)
	got := make([][]byte, ranks)
	for r := range sess {
		if sess[r], err = s.Tail(r); err != nil {
			t.Fatal(err)
		}
	}
	readAvail := func(r int) {
		buf := make([]byte, 123) // deliberately unaligned with piece/block sizes
		for {
			n, err := sess[r].Read(buf)
			got[r] = append(got[r], buf[:n]...)
			if err == sion.ErrAgain || err == io.EOF {
				return
			}
			if err != nil {
				t.Fatalf("rank %d: Read: %v", r, err)
			}
		}
	}
	for st := 0; st < steps; st++ {
		if st > 0 {
			<-stepDone
			if _, err := s.Poll(); err != nil {
				t.Fatalf("Poll after round %d: %v", st+1, err)
			}
		}
		committed := (st + 1) * piece
		for r := 0; r < ranks; r++ {
			readAvail(r)
			if len(got[r]) != committed {
				t.Fatalf("round %d rank %d: read %d bytes, committed %d", st+1, r, len(got[r]), committed)
			}
			if !bytes.Equal(got[r], payloads[r][:committed]) {
				t.Fatalf("round %d rank %d: bytes differ from committed prefix", st+1, r)
			}
			if n, err := sess[r].Read(make([]byte, 8)); n != 0 || err != sion.ErrAgain {
				t.Fatalf("round %d rank %d: at watermark got (%d, %v), want (0, ErrAgain)", st+1, r, n, err)
			}
		}
		resume <- struct{}{}
	}
	<-stepDone // writers closed
	if adv, err := s.Poll(); err != nil || !adv {
		t.Fatalf("Poll after close: (%v, %v), want finalization advance", adv, err)
	}
	for r := 0; r < ranks; r++ {
		if !sess[r].Finalized() {
			t.Fatalf("rank %d: not finalized after writer Close", r)
		}
		readAvail(r)
		if !bytes.Equal(got[r], payloads[r]) {
			t.Fatalf("rank %d: final bytes differ", r)
		}
		if n, err := sess[r].Read(make([]byte, 8)); n != 0 || err != io.EOF {
			t.Fatalf("rank %d: after drain got (%d, %v), want (0, EOF)", r, n, err)
		}
	}
}

// TestServeTailAlignedCommitKeepsCache pins the Poll invalidation rule: a
// block-aligned old frontier means the block below it was already
// complete, so advancing past it must NOT evict that block — a re-read
// after the commit stays a cache hit with no new backend read.
func TestServeTailAlignedCommitKeepsCache(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	const bs = 256
	payload := testPayload(3, 4*bs)
	stepDone := make(chan struct{})
	resume := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		mpi.Run(1, func(c *mpi.Comm) {
			f, err := sion.ParOpen(c, fsys, "a.sion", sion.WriteMode, &sion.Options{
				ChunkSize: 1024, FSBlockSize: bs, Watermarks: true,
			})
			if err != nil {
				t.Error(err)
				return
			}
			for st := 0; st < 2; st++ { // two exactly block-aligned commits
				if _, err := f.Write(payload[st*bs : (st+1)*bs]); err != nil {
					t.Errorf("step %d: %v", st, err)
				}
				if err := f.Flush(); err != nil {
					t.Errorf("step %d: Flush: %v", st, err)
				}
				stepDone <- struct{}{}
				<-resume
			}
			if err := f.Close(); err != nil {
				t.Error(err)
			}
		})
	}()
	defer func() { resume <- struct{}{}; <-writerDone }() // let the writer finish

	<-stepDone // first aligned block committed
	s, err := NewTail(fsys, "a.sion", &Config{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess, err := s.Tail(0)
	if err != nil {
		t.Fatal(err)
	}
	// Read the committed block: it lies wholly below the (aligned)
	// frontier, so it is served through the cache.
	buf := make([]byte, bs)
	if n, err := sess.Read(buf); n != bs || err != nil {
		t.Fatalf("first read: (%d, %v), want (%d, nil)", n, err, bs)
	}
	if !bytes.Equal(buf, payload[:bs]) {
		t.Fatal("first block differs")
	}
	st0 := s.Stats()
	if st0.Misses == 0 {
		t.Fatal("first read should have missed into the cache")
	}

	resume <- struct{}{}
	<-stepDone // second aligned block committed
	if adv, err := s.Poll(); err != nil || !adv {
		t.Fatalf("Poll: (%v, %v), want advance", adv, err)
	}
	// Re-read the first block through a fresh session: the aligned advance
	// must not have evicted it — no new miss, no new backend read, one
	// more hit.
	sess2, err := s.Tail(0)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := sess2.Read(buf); n != bs || err != nil {
		t.Fatalf("re-read: (%d, %v), want (%d, nil)", n, err, bs)
	}
	if !bytes.Equal(buf, payload[:bs]) {
		t.Fatal("re-read block differs")
	}
	st1 := s.Stats()
	if st1.Misses != st0.Misses {
		t.Fatalf("aligned commit evicted the complete block: misses %d -> %d", st0.Misses, st1.Misses)
	}
	if st1.BackendReads != st0.BackendReads {
		t.Fatalf("aligned commit forced a refetch: backend reads %d -> %d", st0.BackendReads, st1.BackendReads)
	}
	if st1.Hits != st0.Hits+1 {
		t.Fatalf("re-read was not a cache hit: hits %d -> %d", st0.Hits, st1.Hits)
	}
}

// TestServeTailFollowBlocksUntilData exercises Follow's poll loop: a
// reader blocked at the watermark resumes when the writer commits more.
func TestServeTailFollowBlocksUntilData(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	payload := testPayload(7, 3000)
	wrote := make(chan int, 8) // committed byte counts, closed at the end
	go mpi.Run(1, func(c *mpi.Comm) {
		f, err := sion.ParOpen(c, fsys, "f.sion", sion.WriteMode, &sion.Options{
			ChunkSize: 1024, FSBlockSize: 256, Watermarks: true,
		})
		if err != nil {
			t.Error(err)
			return
		}
		for off := 0; off < len(payload); off += 1000 {
			end := off + 1000
			if end > len(payload) {
				end = len(payload)
			}
			if _, err := f.Write(payload[off:end]); err != nil {
				t.Error(err)
			}
			if err := f.Flush(); err != nil {
				t.Error(err)
			}
			wrote <- end
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
		close(wrote)
	})

	<-wrote // first kilobyte committed
	s, err := NewTail(fsys, "f.sion", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess, err := s.Tail(0)
	if err != nil {
		t.Fatal(err)
	}
	// wait drains the writer's progress channel; when it is exhausted the
	// writer has closed and the next Poll observes finalization.
	wait := func() bool {
		<-wrote
		return true
	}
	var got []byte
	buf := make([]byte, 256)
	for {
		n, err := sess.Follow(buf, wait)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Follow: %v", err)
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("followed stream differs: %d bytes, want %d", len(got), len(payload))
	}
}
