package serve

import (
	"strconv"
	"sync/atomic"

	"repro/internal/obs"
)

// serverMetrics is the Server's instrument set, registered in one
// obs.Registry. The server's counters live here — Stats() is a snapshot
// of these instruments, and GET /metrics in the HTTP front ends is the
// same registry in Prometheus text form, so the two surfaces can never
// disagree.
//
// Cache traffic (hits, misses, evictions) is counted per shard: a skewed
// workload shows up as one hot shard, which is exactly the signal the
// hot-block replication of internal/cluster keys off.
//
// Retries, give-ups, breaker opens, breaker states, and resident cache
// bytes are NOT duplicated into instruments — they already live in
// resil.Counters, the breakers, and the cache; registerDerived bridges
// them into the registry as CounterFunc/GaugeFunc reads at exposition
// time.
type serverMetrics struct {
	reg  *obs.Registry
	base []obs.Label
	off  bool // Nop registry: skip clock reads on the hot path

	hits      []*obs.Counter // per cache shard
	misses    []*obs.Counter
	evictions []*obs.Counter

	flightHits   *obs.Counter
	backendReads *obs.Counter
	backendBytes *obs.Counter
	servedBytes  *obs.Counter
	handles      *obs.Counter
	tailPolls    *obs.Counter
	peerFills    *obs.Counter
	degraded     *obs.Counter

	// Fetcher span fusion: blocks-per-span (fetchSpanBlocks/fetchSpans)
	// is the coalescing win; batches counts serve() rounds.
	fetchBatches    *obs.Counter
	fetchSpans      *obs.Counter
	fetchSpanBlocks *obs.Counter

	readLat  *obs.Histogram
	readTick atomic.Int64
}

// readSampleEvery is the 1-in-N sampling interval for ReadFileAt latency
// observations. Two clock reads per read would dominate a cache-hit
// (a few hundred ns); 1-in-64 keeps the histogram statistically useful
// at a per-read cost of one atomic add.
const readSampleEvery = 64

// newServerMetrics registers the serve instrument families. base labels
// (e.g. node=<id> from a cluster) are prepended to every family; shards
// is the resolved cache shard count.
func newServerMetrics(reg *obs.Registry, base []obs.Label, shards int) *serverMetrics {
	m := &serverMetrics{reg: reg, base: base, off: reg.Disabled()}
	m.hits = make([]*obs.Counter, shards)
	m.misses = make([]*obs.Counter, shards)
	m.evictions = make([]*obs.Counter, shards)
	for i := 0; i < shards; i++ {
		lbl := append(append([]obs.Label(nil), base...), obs.Label{Key: "shard", Value: strconv.Itoa(i)})
		m.hits[i] = reg.Counter("serve_cache_hits_total",
			"block lookups served from the cache, by shard", lbl...)
		m.misses[i] = reg.Counter("serve_cache_misses_total",
			"block lookups that went to a fetcher, by shard", lbl...)
		m.evictions[i] = reg.Counter("serve_cache_evictions_total",
			"cache blocks evicted, by shard", lbl...)
	}
	m.flightHits = reg.Counter("serve_flight_hits_total",
		"misses resolved by a concurrent fetch (singleflight), no new backend read", base...)
	m.backendReads = reg.Counter("serve_backend_reads_total",
		"span reads issued to the backend (each retry attempt counts)", base...)
	m.backendBytes = reg.Counter("serve_backend_bytes_total",
		"bytes moved by backend span reads", base...)
	m.servedBytes = reg.Counter("serve_served_bytes_total",
		"logical bytes handed to clients", base...)
	m.handles = reg.Counter("serve_handles_opened_total",
		"client sessions opened (Open and Tail)", base...)
	m.tailPolls = reg.Counter("serve_tail_polls_total",
		"watermark refreshes issued (tail servers)", base...)
	m.peerFills = reg.Counter("serve_peer_fills_total",
		"missed blocks filled from a peer cache instead of the backend", base...)
	m.degraded = reg.Counter("serve_degraded_total",
		"requests failed fast with ErrDegraded (circuit open)", base...)
	m.fetchBatches = reg.Counter("serve_fetch_batches_total",
		"fetcher batch rounds served", base...)
	m.fetchSpans = reg.Counter("serve_fetch_spans_total",
		"dense span reads the fetchers issued (post-coalescing)", base...)
	m.fetchSpanBlocks = reg.Counter("serve_fetch_span_blocks_total",
		"cache blocks materialized by span reads (span fusion ratio = blocks/spans)", base...)
	m.readLat = reg.Histogram("serve_read_seconds",
		"sampled ReadFileAt latency (1-in-64 reads)", base...)
	return m
}

// sumCounters totals a per-shard counter family.
func sumCounters(cs []*obs.Counter) int64 {
	var n int64
	for _, c := range cs {
		n += c.Value()
	}
	return n
}

// readStart begins a (possibly sampled) latency observation: it returns
// a clock reading to pass to readDone, or 0 when this read is not
// sampled. The first read is always sampled.
func (m *serverMetrics) readStart() int64 {
	if m.off {
		return 0
	}
	if m.readTick.Add(1)%readSampleEvery != 1 {
		return 0
	}
	return m.reg.Now()
}

// readDone completes an observation begun with readStart.
func (m *serverMetrics) readDone(start int64) {
	if start != 0 {
		m.readLat.Observe(m.reg.Now() - start)
	}
}

// registerDerived bridges state that already lives elsewhere in the
// server — retry counters, breaker opens, resident cache bytes — into
// the registry as exposition-time reads. Called once per Server after
// the cache and counters exist.
func (s *Server) registerDerived() {
	m := s.m
	m.reg.CounterFunc("serve_retries_total",
		"backend span reads re-attempted after a transient failure",
		func() float64 { return float64(s.retryCtrs.Retries.Load()) }, m.base...)
	m.reg.CounterFunc("serve_giveups_total",
		"span reads that exhausted their retry budget",
		func() float64 { return float64(s.retryCtrs.GiveUps.Load()) }, m.base...)
	m.reg.CounterFunc("serve_breaker_opens_total",
		"circuit-open transitions across all physical files",
		func() float64 { return float64(s.breakerOpens()) }, m.base...)
	m.reg.GaugeFunc("serve_cache_resident_bytes",
		"bytes resident in the block cache",
		func() float64 { return float64(s.cache.cachedBytes()) }, m.base...)
}

// registerBreakerGauge exposes one physical file's breaker state as a
// gauge (0 closed, 1 open, 2 half-open — resil.BreakerState order).
// Called from openPhysical for each file with a breaker.
func (s *Server) registerBreakerGauge(file int, path string) {
	br := s.breakers[file]
	if br == nil {
		return
	}
	lbl := append(append([]obs.Label(nil), s.m.base...),
		obs.Label{Key: "file", Value: strconv.Itoa(file)},
		obs.Label{Key: "path", Value: path})
	s.m.reg.GaugeFunc("serve_breaker_state",
		"circuit breaker state per physical file (0 closed, 1 open, 2 half-open)",
		func() float64 { return float64(br.State()) }, lbl...)
}
