// Package serve is a concurrent read-serving subsystem over a multifile:
// it fronts one closed multifile (on any fsio backend) for large numbers
// of logical clients, decoupling the many logical reads from the few
// backend file requests — the read-side scale lever CkIO (arXiv:2411.18593)
// gets from aggregating reader requests, and collective-buffering models
// (Zhang et al., arXiv:0901.0134) get from a cache-and-broadcast layer
// amortizing backend access across loosely coupled clients. Before this
// layer, every logical read walked the multifile per handle with no
// cross-client reuse.
//
// Three mechanisms do the work:
//
//   - A sharded block cache (cache.go): physical-file bytes are cached in
//     fixed-size blocks keyed by (physical file, block index). Shards are
//     a power of two, each with its own lock and LRU list, under one byte
//     budget split evenly across shards.
//   - Singleflight and request coalescing (fetch.go): all backend reads
//     of one physical file are issued by that file's fetcher goroutine.
//     Concurrent misses of the same block resolve to a single backend
//     read, and misses in nearby blocks — within one batch or within an
//     optional batching window — are merged into dense span reads using
//     the same gap-splitting span logic as the mapped collective open
//     (sion.CoalesceExtents).
//   - Cheap client sessions: Open returns a Handle holding only cursor
//     state, so opening a session issues no backend request at all.
//     Handles re-express the core read semantics (sequential Read,
//     ReadLogicalAt, key-value lookups via sion.NewKeyReaderFrom) over
//     the shared cache.
//
// Consistency: New snapshots the multifile metadata once and the cache
// assumes the data is immutable — open it only after the writers' Close.
// For a multifile that is still being written there is NewTail: built on
// the writer-side watermark sidecars (sion.TailLayout), it serves only
// bytes below each rank's committed watermark, reads the partially
// committed frontier block around the cache (so the cache never holds
// bytes that may still change), and invalidates frontier blocks as
// commits advance. Sessions (Tail) return sion.ErrAgain at the watermark
// and io.EOF once the multifile finalizes; Follow turns that into a
// bounded-lag polling loop.
package serve

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/obs"
	"repro/internal/resil"
)

// ErrServerClosed is returned (wrapped) by reads issued after Close.
var ErrServerClosed = errors.New("serve: server is closed")

// ErrDegraded is returned (wrapped) by reads that need a backend fetch
// from a physical file whose circuit breaker is open: the backend has
// been failing transiently and the server is failing fast instead of
// queueing more doomed reads behind it. Reads satisfied entirely from the
// cache keep succeeding while a file is degraded. The condition is
// temporary by construction — the breaker admits a half-open probe after its
// cooldown — so clients should back off and retry (cmd/sionserve maps
// this to 503 + Retry-After).
var ErrDegraded = errors.New("serve: degraded: backend circuit open")

// ErrAgain is returned by tail Sessions at the committed watermark while
// the writer is still live (alias of sion.ErrAgain for convenience).
var ErrAgain = sion.ErrAgain

// Config tunes a Server. The zero value (or nil) picks the defaults.
type Config struct {
	// CacheBytes is the total block-cache budget (default 64 MiB). The
	// effective shard count shrinks until every shard holds at least one
	// block, so tiny budgets degrade to a small cache, never to a useless
	// one.
	CacheBytes int64

	// BlockBytes is the cache-block size (default: the multifile's FS
	// block size). Chunks are FS-block-aligned by construction (paper
	// §3.1), so the default makes cache blocks coincide with chunk
	// fragments and never straddle two tasks' data unnecessarily.
	BlockBytes int64

	// Shards is the shard count, rounded up to a power of two
	// (default 16).
	Shards int

	// MaxSpanGap bounds the unwanted bytes one backend span read may
	// fetch between two missed blocks (default: the backend's preferred
	// request size when its capability descriptor reports one — paying
	// up to one preferred request of gap bytes to save a request round
	// trip is the break-even point — else sion.DefaultSpanGap; negative
	// = merge only adjacent blocks).
	MaxSpanGap int64

	// MaxSpanBytes bounds one dense backend span read; longer spans are
	// read in several requests of at most this size (default: the
	// backend's MaxReadBytes capability rounded down to whole cache
	// blocks; 0 = unbounded; negative = force one block per request).
	MaxSpanBytes int64

	// BatchWindow, when positive, makes a fetcher wait this long after
	// the first miss of a batch so that misses of concurrent clients
	// arriving within the window fuse into the same dense spans. The
	// default 0 still batches everything queued behind an in-flight
	// fetch, which is what matters at steady load.
	BatchWindow time.Duration

	// Retry is the backoff budget each backend span read runs under
	// (transient failures per the fsio error contract are re-attempted;
	// permanent ones are not). nil selects the resil defaults — 4 attempts,
	// 2 ms base delay doubling to 100 ms, real time.Sleep. Simulations pass
	// a Budget with a virtual-clock Sleep; a Budget with MaxAttempts 1
	// disables retries.
	Retry *resil.Budget

	// BreakerThreshold is the number of consecutive transiently-failed
	// fetch batches that open one physical file's circuit breaker
	// (0 = resil.DefaultBreakerThreshold; negative disables breakers
	// entirely).
	BreakerThreshold int

	// BreakerCooldown is the number of fail-fast rejected fetches an open
	// breaker absorbs before admitting a half-open probe
	// (0 = resil.DefaultBreakerCooldown).
	BreakerCooldown int

	// PeerFill, when non-nil, is consulted by the fetchers for every
	// missed block before any backend read is issued: if it returns the
	// block's full payload (exactly BlockBytes long, zero-filled past EOF
	// like a backend fetch), the block is cached locally without touching
	// the backend. internal/cluster wires this to the other nodes' Peek so
	// a block is read from the filesystem once per cluster, not once per
	// node. The hook runs on the fetcher goroutine and must not call back
	// into this Server.
	PeerFill func(file int, block int64) ([]byte, bool)

	// Metrics, when non-nil, is the obs registry the server registers its
	// instrument families in; nil gives the server a private registry
	// (reachable via Server.Metrics()). The server's counters ARE these
	// instruments — Stats() reads them — so passing obs.Nop() disables
	// stats along with exposition; only overhead benchmarks should do
	// that. Servers sharing one registry must disambiguate with
	// MetricLabels (internal/cluster labels each node), and a registry
	// must not mix labeled and unlabeled servers (the family label-key
	// check panics).
	Metrics *obs.Registry

	// MetricLabels are prepended to every metric family the server
	// registers (internal/cluster sets node=<id>).
	MetricLabels []obs.Label
}

// Stats is a snapshot of a Server's request counters.
type Stats struct {
	Hits          int64 // block lookups served from the cache
	Misses        int64 // block lookups that had to go to a fetcher
	FlightHits    int64 // misses resolved by a concurrent fetch (singleflight), no new backend read
	BackendReads  int64 // span reads issued to the backend
	BackendBytes  int64 // bytes moved by those span reads
	ServedBytes   int64 // logical bytes handed to clients
	Evictions     int64 // cache blocks evicted
	CachedBytes   int64 // bytes resident in the cache now
	HandlesOpened int64 // client sessions opened
	TailPolls     int64 // watermark refreshes issued (tail servers)
	PeerFills     int64 // missed blocks filled from a peer cache instead of the backend
	Retries       int64 // backend span reads re-attempted after a transient failure
	GiveUps       int64 // span reads that exhausted their retry budget
	Degraded      int64 // requests failed fast with ErrDegraded (breaker open)
	BreakerOpens  int64 // circuit-open transitions across all physical files
}

// Server serves concurrent read sessions over one multifile. All methods
// are safe for concurrent use.
type Server struct {
	mu     sync.RWMutex // readAt holds R, Close holds W
	closed bool

	name         string   // multifile base name (error messages)
	physNames    []string // physical file paths, indexed like files
	layout       *sion.Layout
	files        []fsio.File
	fetchers     []*fetcher
	breakers     []*resil.Breaker // per physical file; nil entries = disabled
	cache        *blockCache
	blockBytes   int64
	maxSpanGap   int64
	maxSpanBytes int64
	batchWindow  time.Duration
	retry        resil.Budget
	breakerCfg   [2]int // resolved {threshold, cooldown}; threshold < 0 disables
	peerFill     func(file int, block int64) ([]byte, bool)

	// Tail mode (NewTail): the live layout and per-rank committed sizes
	// from the last Poll. tailMu serializes all TailLayout access; no path
	// acquires mu while holding tailMu except Close (mu.W → tailMu), so
	// the order is acyclic.
	tail          *sion.TailLayout
	tailMu        sync.Mutex
	prevCommitted []int64

	// m holds the request counters as obs instruments; Stats() is a
	// snapshot of them, and the registry's /metrics exposition is the
	// same values. Retry/give-up counts stay in retryCtrs (the resil
	// API) and are bridged into the registry at exposition time.
	m         *serverMetrics
	retryCtrs resil.Counters
}

// New opens every physical file of the multifile, snapshots its layout,
// and starts one fetcher per physical file.
func New(fsys fsio.FileSystem, name string, cfg *Config) (*Server, error) {
	layout, err := sion.LoadLayout(fsys, name)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	c := resolveConfig(cfg, layout.FSBlockSize(), fsio.CapabilitiesOf(fsys))
	s := &Server{
		name:         name,
		layout:       layout,
		blockBytes:   c.BlockBytes,
		maxSpanGap:   c.MaxSpanGap,
		maxSpanBytes: c.MaxSpanBytes,
		batchWindow:  c.BatchWindow,
		cache:        newBlockCache(c.CacheBytes, c.Shards),
	}
	s.applyResilience(c)
	s.applyMetrics(c)
	for k := 0; k < layout.NumFiles(); k++ {
		if err := s.openPhysical(fsys, layout.PhysicalName(k)); err != nil {
			s.Close()
			return nil, fmt.Errorf("serve: opening physical file %d: %w", k, err)
		}
	}
	return s, nil
}

// resolveConfig applies the Config defaults against the multifile's FS
// block size and the backend's capability descriptor (see the Config
// field docs). A zero descriptor reproduces the historical POSIX-tuned
// defaults exactly.
func resolveConfig(cfg *Config, fsblk int64, caps fsio.Capabilities) Config {
	var c Config
	if cfg != nil {
		c = *cfg
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.BlockBytes <= 0 {
		c.BlockBytes = fsblk
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	// Round up to a power of two first (the cache masks the key hash), so
	// the one-block-per-shard guarantee below holds for the count actually
	// used — halving a rounded count keeps it a power of two.
	for n := 1; ; n <<= 1 {
		if n >= c.Shards {
			c.Shards = n
			break
		}
	}
	// Keep at least one block per shard so the budget is never split into
	// shards too small to hold anything.
	for c.Shards > 1 && c.CacheBytes/int64(c.Shards) < c.BlockBytes {
		c.Shards /= 2
	}
	if c.MaxSpanGap == 0 {
		if caps.PreferredRequestBytes > 0 {
			c.MaxSpanGap = caps.PreferredRequestBytes
		} else {
			c.MaxSpanGap = sion.DefaultSpanGap
		}
	} else if c.MaxSpanGap < 0 {
		c.MaxSpanGap = 0
	}
	if c.MaxSpanBytes == 0 {
		c.MaxSpanBytes = caps.MaxReadBytes
	} else if c.MaxSpanBytes < 0 {
		c.MaxSpanBytes = c.BlockBytes
	}
	if c.MaxSpanBytes > 0 {
		// Span requests are built from whole cache blocks; round the
		// ceiling down to the block grid (never below one block — the
		// backend splits oversized single requests itself).
		c.MaxSpanBytes -= c.MaxSpanBytes % c.BlockBytes
		if c.MaxSpanBytes < c.BlockBytes {
			c.MaxSpanBytes = c.BlockBytes
		}
	}
	return c
}

// applyResilience installs the resolved retry budget and breaker knobs.
func (s *Server) applyResilience(c Config) {
	if c.Retry != nil {
		s.retry = *c.Retry
	}
	s.breakerCfg = [2]int{c.BreakerThreshold, c.BreakerCooldown}
	s.peerFill = c.PeerFill
}

// applyMetrics registers the server's instrument families (a private
// registry when the config names none) and the exposition-time bridges.
// Must run after the cache exists: shard counters match its shard count
// and the resident-bytes gauge reads it.
func (s *Server) applyMetrics(c Config) {
	reg := c.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s.m = newServerMetrics(reg, c.MetricLabels, len(s.cache.shards))
	s.registerDerived()
}

// openPhysical opens one physical file and starts its fetcher (plus its
// circuit breaker unless breakers are disabled).
func (s *Server) openPhysical(fsys fsio.FileSystem, path string) error {
	fh, err := fsys.Open(path)
	if err != nil {
		return err
	}
	k := len(s.files)
	s.files = append(s.files, fh)
	s.physNames = append(s.physNames, path)
	var br *resil.Breaker
	if s.breakerCfg[0] >= 0 {
		br = resil.NewBreaker(s.breakerCfg[0], s.breakerCfg[1])
	}
	s.breakers = append(s.breakers, br)
	s.fetchers = append(s.fetchers, newFetcher(s, k, fh))
	s.registerBreakerGauge(k, path)
	return nil
}

// spanRead issues one backend read of [off, off+len(buf)) on physical file
// `file` under the server's retry budget, counting every attempt as a
// backend read. io.EOF is a legal short read (the caller keeps the zero
// fill), not a failure. retries reports this call's re-attempts (for the
// caller's breadcrumb trail; the aggregate lives in s.retryCtrs).
func (s *Server) spanRead(fh fsio.File, file int, buf []byte, off int64) (retries int64, _ error) {
	attempts := int64(0)
	err := resil.Do(s.retry, &s.retryCtrs, func() error {
		attempts++
		s.m.backendReads.Add(1)
		s.m.backendBytes.Add(int64(len(buf)))
		if _, rerr := fh.ReadAt(buf, off); rerr != nil && rerr != io.EOF {
			return rerr
		}
		return nil
	})
	retries = attempts - 1
	if err != nil {
		return retries, fmt.Errorf("serve: %s: span read at %d: %w", s.physNames[file], off, err)
	}
	return retries, nil
}

// Layout returns the multifile layout the server was built from (nil for
// a tail server, whose metadata is live — see NewTail).
func (s *Server) Layout() *sion.Layout { return s.layout }

// BlockBytes returns the resolved cache-block size. Peers of one cluster
// must agree on it (internal/cluster enforces this at Join).
func (s *Server) BlockBytes() int64 { return s.blockBytes }

// Peek returns block `block` of physical file `file` if (and only if) it
// is resident in the cache: no fetch is triggered, no backend read is
// issued, and the server's hit/miss counters do not move. The returned
// slice is shared and must be treated as immutable. This is the answer
// side of the cluster peer-fill protocol — a router asks Peek on peers
// before letting a node's fetcher touch the backend.
func (s *Server) Peek(file int, block int64) ([]byte, bool) {
	if file < 0 || file >= len(s.physNames) || block < 0 {
		return nil, false
	}
	return s.cache.get(blockKey{file, block})
}

// HotBlock is one cache block with its observed hit count, the unit of
// the hot-set report the cluster router replicates from.
type HotBlock struct {
	File  int
	Block int64
	Hits  int64
}

// HotBlocks lists the cache-resident blocks whose per-entry hit count
// (accumulated by the shard LRUs since the block was last inserted) is at
// least minHits, hottest first; ties break on (file, block) so the order
// is deterministic. minHits < 1 is treated as 1.
func (s *Server) HotBlocks(minHits int64) []HotBlock {
	if minHits < 1 {
		minHits = 1
	}
	return s.cache.hot(minHits)
}

// FileReaderAt reads a window of one physical multifile member through
// some serving tier: a single Server (cache + fetchers), or a cluster
// router fanning blocks out across many of them. Handles are generic over
// it, which is what lets cluster.Open reuse the Handle semantics
// unchanged.
type FileReaderAt interface {
	// ReadFileAt fills p with bytes [off, off+len(p)) of physical file
	// `file`. Reads past EOF keep the zero fill (the multifile layout
	// never maps logical bytes there).
	ReadFileAt(file int, p []byte, off int64) error
}

// SpanFileReaderAt is the span-threading extension of FileReaderAt:
// ReadFileAtSpan behaves exactly like ReadFileAt and additionally records
// breadcrumbs (cache hits, backend reads, peer fills, retries) on sp.
// *Server and cluster routers implement it; Handles use it when a span
// is attached (Handle.SetSpan) and fall back to ReadFileAt otherwise.
type SpanFileReaderAt interface {
	FileReaderAt
	ReadFileAtSpan(file int, p []byte, off int64, sp *obs.Span) error
}

// ReadFileAt serves [off, off+len(p)) of physical file `file` through the
// cache, delegating misses to the file's fetcher, and counts the bytes as
// served. It is the exported form of the internal read path, used by
// Handles and by cluster routers addressing this node.
func (s *Server) ReadFileAt(file int, p []byte, off int64) error {
	return s.ReadFileAtSpan(file, p, off, nil)
}

// ReadFileAtSpan is ReadFileAt with a breadcrumb trail: sp (nil is fine)
// accumulates what this read cost — cache hits/misses per block, and,
// for reads that missed, the fetch batch's backend spans, peer fills,
// flight hits, and retries. Batch-level costs are attributed to every
// requester the batch answered (the fetcher serializes misses per file,
// so a batch's work is genuinely shared).
func (s *Server) ReadFileAtSpan(file int, p []byte, off int64, sp *obs.Span) error {
	if file < 0 || file >= len(s.fetchers) {
		return fmt.Errorf("serve: %s: physical file %d outside 0..%d", s.name, file, len(s.fetchers)-1)
	}
	if off < 0 {
		return fmt.Errorf("serve: %s: negative physical offset %d", s.name, off)
	}
	start := s.m.readStart()
	if err := s.readAt(file, p, off, sp); err != nil {
		return err
	}
	s.m.servedBytes.Add(int64(len(p)))
	s.m.readDone(start)
	return nil
}

// Metrics returns the registry the server's instruments live in (the
// config's, or the private one created when the config named none).
func (s *Server) Metrics() *obs.Registry { return s.m.reg }

// Stats returns a snapshot of the request counters. The values are read
// from the same obs instruments the registry exposes on /metrics, so the
// two surfaces agree by construction.
func (s *Server) Stats() Stats {
	return Stats{
		Hits:          sumCounters(s.m.hits),
		Misses:        sumCounters(s.m.misses),
		FlightHits:    s.m.flightHits.Value(),
		BackendReads:  s.m.backendReads.Value(),
		BackendBytes:  s.m.backendBytes.Value(),
		ServedBytes:   s.m.servedBytes.Value(),
		Evictions:     s.cache.evictions.Load(),
		CachedBytes:   s.cache.cachedBytes(),
		HandlesOpened: s.m.handles.Value(),
		TailPolls:     s.m.tailPolls.Value(),
		PeerFills:     s.m.peerFills.Value(),
		Retries:       s.retryCtrs.Retries.Load(),
		GiveUps:       s.retryCtrs.GiveUps.Load(),
		Degraded:      s.m.degraded.Value(),
		BreakerOpens:  s.breakerOpens(),
	}
}

func (s *Server) breakerOpens() int64 {
	var n int64
	for _, br := range s.breakers {
		if br != nil {
			n += br.Snapshot().Opens
		}
	}
	return n
}

// FileHealth reports the breaker condition of one physical file.
type FileHealth struct {
	File  int                `json:"file"`
	Path  string             `json:"path"`
	State resil.BreakerState `json:"-"`
	// StateName is State rendered for JSON health endpoints.
	StateName string `json:"state"`
	// Opens counts circuit-open transitions over the server's life.
	Opens int64 `json:"opens"`
}

// Health reports per-physical-file breaker state, the substance of
// cmd/sionserve's /healthz endpoint. With breakers disabled every file
// reports closed.
func (s *Server) Health() []FileHealth {
	out := make([]FileHealth, len(s.physNames))
	for k, path := range s.physNames {
		h := FileHealth{File: k, Path: path}
		if br := s.breakers[k]; br != nil {
			snap := br.Snapshot()
			h.State, h.Opens = snap.State, snap.Opens
		}
		h.StateName = h.State.String()
		out[k] = h
	}
	return out
}

// Degraded reports whether any physical file's breaker is currently not
// closed (the server is refusing some backend fetches).
func (s *Server) Degraded() bool {
	for _, br := range s.breakers {
		if br != nil && br.State() != resil.Closed {
			return true
		}
	}
	return false
}

// Close stops the fetchers and closes the physical files. It is
// idempotent (a second Close returns nil); handles become unusable —
// reads issued after Close fail with ErrServerClosed — and in-flight
// reads finish first.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	for _, f := range s.fetchers {
		f.stop()
	}
	var firstErr error
	for _, fh := range s.files {
		if err := fh.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.tail != nil {
		s.tailMu.Lock()
		if err := s.tail.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		s.tailMu.Unlock()
	}
	return firstErr
}

// readAt serves [off, off+len(p)) of physical file `file` through the
// cache, delegating misses to the file's fetcher. sp (nil is fine)
// collects the read's breadcrumb trail.
func (s *Server) readAt(file int, p []byte, off int64, sp *obs.Span) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return fmt.Errorf("serve: %s: %w", s.name, ErrServerClosed)
	}
	bs := s.blockBytes
	var missing []int64
	for b := off / bs; b <= (off+int64(len(p))-1)/bs; b++ {
		k := blockKey{file, b}
		si := s.cache.shardIndex(k)
		if data, ok := s.cache.getAt(si, k); ok {
			s.m.hits[si].Inc()
			sp.Add(obs.CrumbCacheHit, 1)
			copyBlockPortion(p, off, b, bs, data)
		} else {
			s.m.misses[si].Inc()
			sp.Add(obs.CrumbCacheMiss, 1)
			missing = append(missing, b)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	res := s.fetchers[file].fetch(missing)
	if sp != nil {
		sp.Add(obs.CrumbBackendRead, res.stats.spans)
		sp.Add(obs.CrumbPeerFill, res.stats.peerFills)
		sp.Add(obs.CrumbFlightHit, res.stats.flightHits)
		sp.Add(obs.CrumbRetry, res.stats.retries)
	}
	if res.err != nil {
		return res.err
	}
	for _, b := range missing {
		copyBlockPortion(p, off, b, bs, res.data[b])
	}
	return nil
}

// copyBlockPortion copies the intersection of cache block b with the
// request window [off, off+len(p)) from the block's data into p.
func copyBlockPortion(p []byte, off, b, bs int64, data []byte) {
	blockStart := b * bs
	lo, hi := off, off+int64(len(p))
	if blockStart > lo {
		lo = blockStart
	}
	if end := blockStart + int64(len(data)); end < hi {
		hi = end
	}
	if hi > lo {
		copy(p[lo-off:hi-off], data[lo-blockStart:hi-blockStart])
	}
}

// Handle is one client's read session over a rank's logical file. A
// Handle is cheap (no backend state) and implements io.Reader, io.Seeker,
// and sion.LogicalReaderAt. ReadLogicalAt, LogicalSize, and KeyReader are
// stateless and safe for concurrent use even on one Handle; Read and
// Seek share the cursor and belong to a single goroutine — concurrent
// clients each Open their own Handle.
type Handle struct {
	r      FileReaderAt
	sr     SpanFileReaderAt // r, when it supports span threading (else nil)
	span   *obs.Span        // attached request span (nil = no tracing)
	name   string           // multifile base name (error messages)
	rank   int
	blocks []sion.BlockExtent
	base   []int64 // logical offset of each block extent's first byte
	size   int64
	pos    int64
}

var (
	_ io.Reader            = (*Handle)(nil)
	_ io.Seeker            = (*Handle)(nil)
	_ sion.LogicalReaderAt = (*Handle)(nil)
)

// NewHandle builds a read session on writer rank `rank` of the given
// layout, reading through r — a *Server (Open does exactly this) or any
// other FileReaderAt, e.g. a cluster router. It touches only the layout
// snapshot; no backend request is issued.
func NewHandle(layout *sion.Layout, rank int, r FileReaderAt) (*Handle, error) {
	if rank < 0 || rank >= layout.NTasks() {
		return nil, fmt.Errorf("serve: %s: rank %d outside 0..%d", layout.Name(), rank, layout.NTasks()-1)
	}
	blocks := layout.RankBlocks(rank)
	base := make([]int64, len(blocks))
	var size int64
	for b, be := range blocks {
		base[b] = size
		size += be.Bytes
	}
	sr, _ := r.(SpanFileReaderAt)
	return &Handle{r: r, sr: sr, name: layout.Name(), rank: rank, blocks: blocks, base: base, size: size}, nil
}

// SetSpan attaches a request span to the handle: subsequent reads record
// their breadcrumbs (cache hits, backend reads, peer fills, retries) on
// sp, provided the underlying reader supports span threading (a *Server
// or a cluster router does). SetSpan(nil) detaches. Like Read/Seek, the
// span belongs to the handle's goroutine; the HTTP front ends attach the
// per-request span right after Open.
func (h *Handle) SetSpan(sp *obs.Span) { h.span = sp }

// Open starts a read session on the logical file of writer rank `rank`.
// It touches only the layout snapshot — no backend request is issued.
func (s *Server) Open(rank int) (*Handle, error) {
	if s.tail != nil {
		return nil, fmt.Errorf("serve: %s: tail server (live multifile) — use Tail, not Open", s.name)
	}
	if rank < 0 || rank >= s.layout.NTasks() {
		return nil, fmt.Errorf("serve: %s: rank %d outside 0..%d", s.name, rank, s.layout.NTasks()-1)
	}
	h, err := NewHandle(s.layout, rank, s)
	if err != nil {
		return nil, err
	}
	s.m.handles.Inc()
	return h, nil
}

// Rank returns the writer rank this handle reads.
func (h *Handle) Rank() int { return h.rank }

// LogicalSize returns the total recorded bytes of the rank's logical file.
func (h *Handle) LogicalSize() int64 { return h.size }

// ReadLogicalAt fills p from the rank's logical stream starting at off,
// spanning blocks as needed, without moving the cursor. It returns io.EOF
// on short reads past the end (sion.LogicalReaderAt semantics).
func (h *Handle) ReadLogicalAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("serve: %s: negative logical offset", h.name)
	}
	// Locate the block extent containing off.
	block := sort.Search(len(h.base), func(i int) bool { return h.base[i] > off })
	if block > 0 {
		block--
	}
	total := 0
	for len(p) > 0 && block < len(h.blocks) {
		be := h.blocks[block]
		rel := off - h.base[block]
		avail := be.Bytes - rel
		if avail <= 0 {
			block++
			continue
		}
		n := int64(len(p))
		if n > avail {
			n = avail
		}
		var err error
		if h.sr != nil && h.span != nil {
			err = h.sr.ReadFileAtSpan(be.File, p[:n], be.Off+rel, h.span)
		} else {
			err = h.r.ReadFileAt(be.File, p[:n], be.Off+rel)
		}
		if err != nil {
			return total, err
		}
		p = p[n:]
		off += n
		total += int(n)
	}
	if len(p) > 0 {
		return total, io.EOF
	}
	return total, nil
}

// Read fills p from the cursor and advances it (io.Reader); it returns
// io.EOF only once the stream is exhausted, like (*sion.File).Read.
func (h *Handle) Read(p []byte) (int, error) {
	if h.pos >= h.size {
		return 0, io.EOF
	}
	if rest := h.size - h.pos; int64(len(p)) > rest {
		p = p[:rest]
	}
	n, err := h.ReadLogicalAt(p, h.pos)
	h.pos += int64(n)
	if err == io.EOF && n > 0 {
		err = nil
	}
	return n, err
}

// Seek positions the cursor in the logical stream (io.Seeker).
func (h *Handle) Seek(offset int64, whence int) (int64, error) {
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = h.pos + offset
	case io.SeekEnd:
		abs = h.size + offset
	default:
		return 0, fmt.Errorf("serve: Seek: invalid whence %d", whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("serve: Seek: negative position %d", abs)
	}
	h.pos = abs
	return abs, nil
}

// KeyReader indexes the rank's key-value records (sion.NewKeyReaderFrom)
// through the cache: the index scan and every later record read are
// ordinary cached block accesses, so concurrent clients indexing the same
// rank share the underlying backend reads.
func (h *Handle) KeyReader() (*sion.KeyReader, error) {
	return sion.NewKeyReaderFrom(h)
}
