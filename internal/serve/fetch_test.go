package serve

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/fsio"
	"repro/internal/resil"
)

// rangeFaultFS wraps a FileSystem so that ReadAt calls overlapping an
// installed offset range fail with that range's error — the minimal tool
// for making two spans of one fetch batch fail differently.
type rangeFaultFS struct {
	fsio.FileSystem
	mu    sync.Mutex
	rules []faultRule
}

type faultRule struct {
	lo, hi int64
	err    error
}

func (r *rangeFaultFS) fail(lo, hi int64, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rules = append(r.rules, faultRule{lo, hi, err})
}

func (r *rangeFaultFS) Open(name string) (fsio.File, error) {
	fh, err := r.FileSystem.Open(name)
	if err != nil {
		return nil, err
	}
	return &rangeFaultFile{File: fh, fs: r}, nil
}

type rangeFaultFile struct {
	fsio.File
	fs *rangeFaultFS
}

func (f *rangeFaultFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	end := off + int64(len(p))
	for _, r := range f.fs.rules {
		if off < r.hi && end > r.lo {
			return 0, r.err
		}
	}
	return f.File.ReadAt(p, off)
}

// TestFetchPerSpanErrors pins the per-request error attribution of a fetch
// batch: when two spans of one batch fail with different errors, each
// request is answered with the error that covered its own blocks — not
// with whichever span happened to fail first — and a request whose blocks
// all materialized still succeeds alongside the failures.
func TestFetchPerSpanErrors(t *testing.T) {
	inner := fsio.NewOS(t.TempDir())
	writeMultifile(t, inner, "e.sion", 4)
	ffs := &rangeFaultFS{FileSystem: inner}
	s, err := New(ffs, "e.sion", &Config{
		CacheBytes: 1 << 20,
		MaxSpanGap: -1, // merge only adjacent blocks: distinct blocks = distinct spans
		Retry:      &resil.Budget{MaxAttempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	bs := s.BlockBytes()

	errA := fmt.Errorf("span A is down: %w", fsio.ErrTransient)
	errB := errors.New("span B is corrupt") // permanent: no ErrTransient wrap
	ffs.fail(0*bs, 1*bs, errA)              // block 0
	ffs.fail(8*bs, 9*bs, errB)              // block 8

	reply := func() chan fetchRes { return make(chan fetchRes, 1) }
	reqA := &fetchReq{blocks: []int64{0}, reply: reply()}
	reqB := &fetchReq{blocks: []int64{8}, reply: reply()}
	reqOK := &fetchReq{blocks: []int64{4}, reply: reply()}
	s.fetchers[0].serve([]*fetchReq{reqA, reqB, reqOK})

	resA, resB, resOK := <-reqA.reply, <-reqB.reply, <-reqOK.reply
	if !errors.Is(resA.err, errA) {
		t.Fatalf("request for block 0 got %v, want its own span error %v", resA.err, errA)
	}
	if errors.Is(resA.err, errB) {
		t.Fatalf("request for block 0 was attributed span B's error: %v", resA.err)
	}
	if !errors.Is(resB.err, errB) {
		t.Fatalf("request for block 8 got %v, want its own span error %v", resB.err, errB)
	}
	if errors.Is(resB.err, errA) {
		t.Fatalf("request for block 8 was attributed span A's error: %v", resB.err)
	}
	// The misclassification the bug caused: block 8's failure is permanent,
	// and must not look transient because span A failed transiently first.
	if c := resil.Classify(resB.err); c != resil.ClassPermanent {
		t.Fatalf("request for block 8 classified %v, want permanent", c)
	}
	if c := resil.Classify(resA.err); c != resil.ClassTransient {
		t.Fatalf("request for block 0 classified %v, want transient", c)
	}
	if resOK.err != nil {
		t.Fatalf("request for healthy block 4 failed alongside the batch: %v", resOK.err)
	}
	if int64(len(resOK.data[4])) != bs {
		t.Fatalf("healthy block 4 materialized %d bytes, want %d", len(resOK.data[4]), bs)
	}
}

// TestPeerFillSkipsBackend pins the peer-fill fetch path: a node whose
// PeerFill hook can produce a block caches it without issuing any backend
// read, serves it byte-identically, and counts it in Stats.PeerFills.
func TestPeerFillSkipsBackend(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	payloads := writeMultifile(t, fsys, "p.sion", 4)

	a, err := New(fsys, "p.sion", &Config{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(fsys, "p.sion", &Config{
		CacheBytes: 1 << 20,
		PeerFill:   func(file int, block int64) ([]byte, bool) { return a.Peek(file, block) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Warm node a with rank 0's whole stream.
	ha, err := a.Open(0)
	if err != nil {
		t.Fatal(err)
	}
	want := payloads[0]
	got := make([]byte, len(want))
	if _, err := ha.ReadLogicalAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("node a: bytes differ")
	}
	if n := a.Stats().BackendReads; n == 0 {
		t.Fatal("node a issued no backend reads warming up")
	}

	// Node b reads the same rank: every miss must fill from a's cache.
	hb, err := b.Open(0)
	if err != nil {
		t.Fatal(err)
	}
	got = make([]byte, len(want))
	if _, err := hb.ReadLogicalAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("node b: peer-filled bytes differ")
	}
	st := b.Stats()
	if st.BackendReads != 0 {
		t.Fatalf("node b issued %d backend reads despite peer fill", st.BackendReads)
	}
	if st.PeerFills == 0 {
		t.Fatal("node b counted no peer fills")
	}
	// Peek is passive: asking for an uncached block is not a miss.
	misses := a.Stats().Misses
	if _, ok := a.Peek(0, 1<<30); ok {
		t.Fatal("Peek invented a block")
	}
	if _, ok := a.Peek(-1, 0); ok {
		t.Fatal("Peek accepted a negative file index")
	}
	if got := a.Stats().Misses; got != misses {
		t.Fatalf("Peek moved the miss counter %d -> %d", misses, got)
	}
}

// TestHotBlocksReportsWorkingSet pins the shard-LRU hit-count report the
// cluster router replicates from: repeatedly read blocks accumulate hits,
// the report is sorted hottest-first, and the threshold filters cold ones.
func TestHotBlocksReportsWorkingSet(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	writeMultifile(t, fsys, "h.sion", 4)
	s, err := New(fsys, "h.sion", &Config{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h, err := s.Open(0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	for i := 0; i < 5; i++ { // block of offset 0 read 5x
		if _, err := h.ReadLogicalAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.ReadLogicalAt(buf, h.LogicalSize()-64); err != nil { // tail block once
		t.Fatal(err)
	}
	hot := s.HotBlocks(4)
	if len(hot) == 0 {
		t.Fatal("no hot blocks reported after 5 identical reads")
	}
	if hot[0].Hits < 4 {
		t.Fatalf("hottest block has %d hits, want >= 4", hot[0].Hits)
	}
	for i := 1; i < len(hot); i++ {
		if hot[i].Hits > hot[i-1].Hits {
			t.Fatal("HotBlocks not sorted hottest-first")
		}
	}
	all := s.HotBlocks(0) // treated as 1
	for _, hb := range all {
		if hb.Hits < 1 {
			t.Fatalf("HotBlocks(0) reported a zero-hit block: %+v", hb)
		}
	}
}
