package serve

import (
	"fmt"
	"io"

	sion "repro/internal/core"
	"repro/internal/fsio"
)

// Tail serving: a Server over a multifile that is still being written
// (Options.Watermarks). The server keeps a live sion.TailLayout and only
// ever serves bytes below each rank's committed watermark, so clients
// never observe torn records. Cache discipline is the crux:
//
//   - Cache blocks are forced to the multifile's FS block size. Chunks
//     are FS-block-aligned (paper §3.1), so no cache block ever straddles
//     two ranks' data.
//   - Bytes in blocks that lie wholly below a rank's committed frontier
//     are immutable (the writer only appends past the watermark) and go
//     through the ordinary block cache.
//   - The partially committed frontier block is read directly from the
//     backend, bypassing the cache, so the cache never holds bytes that
//     may still change. Poll additionally invalidates a rank's former
//     frontier block when the frontier crosses into a new one.
//
// Sessions return sion.ErrAgain at the watermark while the writer is
// live; Follow wraps that in a polling loop whose cadence the caller
// controls (in simulations: virtual-time sleeps).

// NewTail opens a live multifile for tail serving. The multifile must
// have been created with Options.Watermarks; while the writer is still
// creating files the open fails with a not-exist error and the caller
// retries. The cache block size is forced to the multifile's FS block
// size (see above); cfg.BlockBytes is ignored.
func NewTail(fsys fsio.FileSystem, name string, cfg *Config) (*Server, error) {
	t, err := sion.LoadTailLayout(fsys, name)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	var c Config
	if cfg != nil {
		c = *cfg
	}
	c.BlockBytes = t.FSBlockSize()
	c = resolveConfig(&c, t.FSBlockSize(), fsio.CapabilitiesOf(fsys))
	s := &Server{
		name:          name,
		tail:          t,
		prevCommitted: make([]int64, t.NTasks()),
		blockBytes:    c.BlockBytes,
		maxSpanGap:    c.MaxSpanGap,
		maxSpanBytes:  c.MaxSpanBytes,
		batchWindow:   c.BatchWindow,
		cache:         newBlockCache(c.CacheBytes, c.Shards),
	}
	s.applyResilience(c)
	s.applyMetrics(c)
	for r := range s.prevCommitted {
		s.prevCommitted[r] = t.CommittedSize(r)
	}
	for k := 0; k < t.NumFiles(); k++ {
		if err := s.openPhysical(fsys, t.PhysicalName(k)); err != nil {
			s.Close()
			return nil, fmt.Errorf("serve: opening physical file %d: %w", k, err)
		}
	}
	return s, nil
}

// Poll re-reads the watermark sidecars, advancing every rank's visible
// frontier, and reports whether any rank's committed size grew (or the
// multifile finalized). Former frontier blocks of ranks that advanced are
// invalidated. Safe for concurrent use with Sessions.
func (s *Server) Poll() (bool, error) {
	if s.tail == nil {
		return false, nil
	}
	s.tailMu.Lock()
	defer s.tailMu.Unlock()
	s.m.tailPolls.Inc()
	wasFinal := s.tail.Finalized()
	if err := s.tail.Refresh(); err != nil {
		return false, err
	}
	advanced := s.tail.Finalized() != wasFinal
	bs := s.blockBytes
	for r := range s.prevCommitted {
		now := s.tail.CommittedSize(r)
		prev := s.prevCommitted[r]
		if now <= prev {
			continue
		}
		advanced = true
		// The block that contained the old frontier may have grown; drop
		// it (belt-and-braces — frontier bytes are never cached, see
		// Session.Read) unless the old frontier was block-aligned, in
		// which case the block below it was already complete and evicting
		// it would only force a needless refetch of a hot, immutable block
		// on every aligned commit.
		if prev > 0 && prev%bs != 0 { // there was a partially filled frontier block
			if ext, _ := s.tail.RankCommitted(r); len(ext) > 0 {
				if file, phys, ok := physAt(ext, prev-1); ok {
					s.cache.invalidate(blockKey{file, phys / bs})
				}
			}
		}
		s.prevCommitted[r] = now
	}
	return advanced, nil
}

// physAt maps a logical stream offset to its physical (file, offset)
// through the rank's committed extents.
func physAt(ext []sion.BlockExtent, logical int64) (int, int64, bool) {
	var base int64
	for _, e := range ext {
		if logical < base+e.Bytes {
			return e.File, e.Off + (logical - base), true
		}
		base += e.Bytes
	}
	return 0, 0, false
}

// Session is one client's tailing read session over a rank's logical
// stream. Read never returns bytes past the rank's committed watermark;
// at the watermark it returns (0, sion.ErrAgain) while the writer is live
// and (0, io.EOF) once the multifile has finalized and the stream is
// drained. Read and Follow share the cursor and belong to one goroutine;
// concurrent clients each open their own Session (Sessions of one Server
// share the cache and fetchers like Handles do).
type Session struct {
	s    *Server
	rank int
	pos  int64
}

// Tail starts a tailing session on the logical stream of writer rank
// `rank`. Like Open, it issues no backend request.
func (s *Server) Tail(rank int) (*Session, error) {
	if s.tail == nil {
		return nil, fmt.Errorf("serve: %s: not a tail server (built with New, not NewTail)", s.name)
	}
	if rank < 0 || rank >= s.tail.NTasks() {
		return nil, fmt.Errorf("serve: %s: rank %d outside 0..%d", s.name, rank, s.tail.NTasks()-1)
	}
	s.m.handles.Inc()
	return &Session{s: s, rank: rank}, nil
}

// Rank returns the writer rank this session reads.
func (c *Session) Rank() int { return c.rank }

// Committed returns the rank's committed logical size as of the last
// Poll.
func (c *Session) Committed() int64 {
	c.s.tailMu.Lock()
	defer c.s.tailMu.Unlock()
	return c.s.tail.CommittedSize(c.rank)
}

// Finalized reports whether the multifile is complete (as of the last
// Poll).
func (c *Session) Finalized() bool {
	c.s.tailMu.Lock()
	defer c.s.tailMu.Unlock()
	return c.s.tail.Finalized()
}

// Read copies committed bytes into p and advances the cursor. A short
// read means the session caught up with the watermark mid-buffer; see
// the Session doc for the frontier semantics.
func (c *Session) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	s := c.s
	s.tailMu.Lock()
	ext, open := s.tail.RankCommitted(c.rank)
	finalized := s.tail.Finalized()
	s.tailMu.Unlock()

	n := 0
	var base int64
	for i, e := range ext {
		if n == len(p) {
			break
		}
		cur := c.pos + int64(n)
		if cur >= base && cur < base+e.Bytes {
			rel := cur - base
			want := e.Bytes - rel
			if m := int64(len(p) - n); want > m {
				want = m
			}
			// Within the open last extent, bytes at or past the last
			// complete cache block bypass the cache: the writer will
			// append to that block, so it must never be cached partially.
			uncachedFrom := e.Off + e.Bytes
			if open && i == len(ext)-1 {
				uncachedFrom = (e.Off + e.Bytes) / s.blockBytes * s.blockBytes
			}
			if err := s.readTailSpan(e.File, p[n:n+int(want)], e.Off+rel, uncachedFrom); err != nil {
				return n, err
			}
			n += int(want)
		}
		base += e.Bytes
	}
	c.pos += int64(n)
	if n == 0 {
		if finalized {
			return 0, io.EOF
		}
		return 0, sion.ErrAgain
	}
	s.m.servedBytes.Add(int64(n))
	return n, nil
}

// readTailSpan serves [off, off+len(p)) of physical file `file`, routing
// bytes below uncachedFrom through the block cache and bytes at or past
// it directly to the backend (uncached).
func (s *Server) readTailSpan(file int, p []byte, off, uncachedFrom int64) error {
	end := off + int64(len(p))
	if uncachedFrom > end {
		uncachedFrom = end
	}
	if uncachedFrom < off {
		uncachedFrom = off
	}
	if uncachedFrom > off {
		if err := s.readAt(file, p[:uncachedFrom-off], off, nil); err != nil {
			return err
		}
	}
	if uncachedFrom < end {
		s.mu.RLock()
		defer s.mu.RUnlock()
		if s.closed {
			return fmt.Errorf("serve: %s: %w", s.name, ErrServerClosed)
		}
		// Frontier reads run under the same retry budget as cached span
		// reads (spanRead), so a transient fault at the watermark does not
		// surface to the tail session.
		buf := p[uncachedFrom-off:]
		if _, err := s.spanRead(s.files[file], file, buf, uncachedFrom); err != nil {
			return fmt.Errorf("serve: frontier read: %w", err)
		}
	}
	return nil
}

// Follow reads like Read but, on hitting the watermark with the writer
// still live, calls wait and polls for new commits instead of returning
// ErrAgain. wait returning false (or a nil wait) stops the loop: Follow
// then returns (0, sion.ErrAgain). In simulations, wait advances virtual
// time (e.g. proc.AdvanceTo(now + pollInterval)); in real deployments it
// sleeps. Finalization still surfaces as (0, io.EOF) after the stream is
// drained.
func (c *Session) Follow(p []byte, wait func() bool) (int, error) {
	for {
		n, err := c.Read(p)
		if n == 0 && err == sion.ErrAgain {
			if wait == nil || !wait() {
				return 0, sion.ErrAgain
			}
			if _, perr := c.s.Poll(); perr != nil {
				return 0, perr
			}
			continue
		}
		return n, err
	}
}
