package fsio

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Capability-tagged backends. Every layer of this library used to assume
// one implicit POSIX contract: atomic rename, cheap in-place updates, one
// block size, reads of any granularity. Real storage targets differ —
// an object store has a multipart part-size floor, ranged GETs with a
// practical request-size ceiling, and no in-place update at all — and
// the paper's central claim (the file mapping must be chosen to match
// the I/O pathways of the target file system, §3.1) extends naturally to
// the choice of request geometry. Capabilities makes the contract
// explicit: a backend reports one descriptor, decorators forward it
// unchanged, and the geometry-deciding layers (core.withDefaults, the
// serve fetcher) read it instead of hard-coding POSIX assumptions.
//
// The zero value is the conservative POSIX-ish descriptor: every
// consumer treats zero fields as "no constraint / behave as before", so
// a backend that reports nothing gets exactly the pre-capability
// behavior.

// SyncSemantics describes what a successful File.Sync means on a
// backend.
type SyncSemantics uint8

const (
	// SyncDurable: Sync makes previously written bytes durable in place
	// (POSIX fsync). The watermark commit protocol requires this.
	SyncDurable SyncSemantics = iota
	// SyncOnSeal: durability is only reached when a write unit (an
	// object-store part or the whole object) is sealed; Sync flushes
	// pending parts but cannot re-sync bytes inside already-sealed
	// regions without a staged copy.
	SyncOnSeal

	syncSemanticsEnd // validation bound
)

func (s SyncSemantics) String() string {
	switch s {
	case SyncDurable:
		return "durable"
	case SyncOnSeal:
		return "on-seal"
	}
	return fmt.Sprintf("SyncSemantics(%d)", uint8(s))
}

// OpProfile is a backend's first-order cost model for one operation
// class: a fixed per-request latency plus a streaming throughput. Zero
// fields mean "unknown"; consumers must treat the profile as advisory
// (planning input, never correctness input).
type OpProfile struct {
	// LatencySecs is the fixed per-request round-trip cost in seconds.
	LatencySecs float64
	// ThroughputBps is the streaming rate in bytes per second once a
	// request is established.
	ThroughputBps float64
}

// Capabilities is one backend's self-description. Decorators
// (Instrument, resil.Wrap, simfs.Flaky) do not implement it themselves;
// they expose Unwrap and CapabilitiesOf walks through them, so the
// descriptor survives any decorator stack.
type Capabilities struct {
	// Backend names the backend ("os", "sim", "objstore"); it doubles
	// as the metrics label. Must be non-empty, at most
	// MaxBackendNameLen bytes, printable ASCII.
	Backend string

	// AtomicRename reports whether the backend can atomically replace
	// one name with another (POSIX rename). Object stores cannot.
	AtomicRename bool

	// InPlaceUpdate reports whether written regions may be overwritten
	// cheaply. When false, rewriting an already-durable region (header
	// updates, chunk-header seals) costs a staged copy on the backend
	// and callers should batch such rewrites.
	InPlaceUpdate bool

	// PreferredRequestBytes is the request size the backend performs
	// best at (the dense-span target for the serve fetcher and the
	// span-gap default). 0 = no preference.
	PreferredRequestBytes int64

	// MinReadBytes is the smallest ranged read the backend serves
	// without padding the request up internally. 0 = byte-granular.
	MinReadBytes int64

	// MaxReadBytes is the largest single ranged read the backend
	// serves; larger logical reads must be split into several requests.
	// 0 = unbounded.
	MaxReadBytes int64

	// PartSizeFloor, when positive, declares multipart/append-only PUT
	// semantics with this minimum part size: writes become durable in
	// part-sized units and sub-part rewrites pay a staged copy. It is
	// the write-side staging alignment core.withDefaults tunes for.
	// 0 = plain in-place writes.
	PartSizeFloor int64

	// WriteFanout, when positive, is the backend's preferred number of
	// concurrently written physical files (object stores parallelize
	// across objects, not within one). core.withDefaults uses it to
	// auto-tune NFiles when the caller expressed no preference. 0 = no
	// preference.
	WriteFanout int64

	// Sync is the durability model of File.Sync.
	Sync SyncSemantics

	// Read and Write are advisory per-op cost profiles.
	Read, Write OpProfile
}

// MaxBackendNameLen bounds Capabilities.Backend in the wire encoding.
const MaxBackendNameLen = 64

// Validate checks the descriptor's internal consistency; Decode rejects
// anything Validate rejects, so an encoded descriptor round-trips.
func (c Capabilities) Validate() error {
	if len(c.Backend) > MaxBackendNameLen {
		return fmt.Errorf("fsio: backend name %d bytes (max %d)", len(c.Backend), MaxBackendNameLen)
	}
	for i := 0; i < len(c.Backend); i++ {
		if c.Backend[i] < 0x21 || c.Backend[i] > 0x7e {
			return fmt.Errorf("fsio: backend name contains non-printable byte %#x", c.Backend[i])
		}
	}
	for _, v := range []struct {
		name string
		v    int64
	}{
		{"PreferredRequestBytes", c.PreferredRequestBytes},
		{"MinReadBytes", c.MinReadBytes},
		{"MaxReadBytes", c.MaxReadBytes},
		{"PartSizeFloor", c.PartSizeFloor},
		{"WriteFanout", c.WriteFanout},
	} {
		if v.v < 0 {
			return fmt.Errorf("fsio: negative %s %d", v.name, v.v)
		}
	}
	if c.MaxReadBytes > 0 && c.MinReadBytes > c.MaxReadBytes {
		return fmt.Errorf("fsio: MinReadBytes %d > MaxReadBytes %d", c.MinReadBytes, c.MaxReadBytes)
	}
	if c.Sync >= syncSemanticsEnd {
		return fmt.Errorf("fsio: unknown SyncSemantics %d", c.Sync)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"Read.LatencySecs", c.Read.LatencySecs},
		{"Read.ThroughputBps", c.Read.ThroughputBps},
		{"Write.LatencySecs", c.Write.LatencySecs},
		{"Write.ThroughputBps", c.Write.ThroughputBps},
	} {
		if math.IsNaN(p.v) || math.IsInf(p.v, 0) || p.v < 0 {
			return fmt.Errorf("fsio: %s %v not a finite non-negative value", p.name, p.v)
		}
	}
	return nil
}

// Wire format of a Capabilities descriptor (see Encode): used to ship
// the descriptor between ranks of a parallel open, so every task tunes
// its geometry from the same bytes regardless of local wrapping.
const (
	capsMagic   = "SCAP"
	capsVersion = 1

	capsFlagRename  = 1 << 0
	capsFlagInPlace = 1 << 1

	// MaxEncodedCapsLen bounds Encode's output: magic+version+flags+
	// sync+namelen + name + 5 int64 + 4 float64.
	MaxEncodedCapsLen = 4 + 1 + 1 + 1 + 1 + MaxBackendNameLen + 5*8 + 4*8
)

// Encode serializes the descriptor into the fixed-layout wire format.
// It panics if Validate fails — an invalid descriptor is a programming
// error in the backend, not an input condition.
func (c Capabilities) Encode() []byte {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	buf := make([]byte, 0, MaxEncodedCapsLen)
	buf = append(buf, capsMagic...)
	buf = append(buf, capsVersion)
	var flags byte
	if c.AtomicRename {
		flags |= capsFlagRename
	}
	if c.InPlaceUpdate {
		flags |= capsFlagInPlace
	}
	buf = append(buf, flags, byte(c.Sync), byte(len(c.Backend)))
	buf = append(buf, c.Backend...)
	for _, v := range []int64{c.PreferredRequestBytes, c.MinReadBytes, c.MaxReadBytes, c.PartSizeFloor, c.WriteFanout} {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	for _, v := range []float64{c.Read.LatencySecs, c.Read.ThroughputBps, c.Write.LatencySecs, c.Write.ThroughputBps} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// DecodeCapabilities parses an Encode'd descriptor. Any truncated,
// mis-versioned, or invalid input returns a clean error; a successful
// decode always yields a descriptor that passes Validate.
func DecodeCapabilities(b []byte) (Capabilities, error) {
	var c Capabilities
	if len(b) < 8 {
		return c, fmt.Errorf("fsio: capabilities blob %d bytes, need at least 8", len(b))
	}
	if string(b[:4]) != capsMagic {
		return c, fmt.Errorf("fsio: bad capabilities magic %q", b[:4])
	}
	if b[4] != capsVersion {
		return c, fmt.Errorf("fsio: unsupported capabilities version %d", b[4])
	}
	flags, sync, nameLen := b[5], b[6], int(b[7])
	if flags&^(capsFlagRename|capsFlagInPlace) != 0 {
		return c, fmt.Errorf("fsio: unknown capability flags %#x", flags)
	}
	rest := b[8:]
	want := nameLen + 5*8 + 4*8
	if len(rest) != want {
		return c, fmt.Errorf("fsio: capabilities payload %d bytes, want %d", len(rest), want)
	}
	c.Backend = string(rest[:nameLen])
	rest = rest[nameLen:]
	c.AtomicRename = flags&capsFlagRename != 0
	c.InPlaceUpdate = flags&capsFlagInPlace != 0
	c.Sync = SyncSemantics(sync)
	ints := []*int64{&c.PreferredRequestBytes, &c.MinReadBytes, &c.MaxReadBytes, &c.PartSizeFloor, &c.WriteFanout}
	for _, p := range ints {
		*p = int64(binary.LittleEndian.Uint64(rest))
		rest = rest[8:]
	}
	floats := []*float64{&c.Read.LatencySecs, &c.Read.ThroughputBps, &c.Write.LatencySecs, &c.Write.ThroughputBps}
	for _, p := range floats {
		*p = math.Float64frombits(binary.LittleEndian.Uint64(rest))
		rest = rest[8:]
	}
	if err := c.Validate(); err != nil {
		return Capabilities{}, err
	}
	return c, nil
}

// CapabilityReporter is the optional FileSystem extension through which
// a backend publishes its descriptor.
type CapabilityReporter interface {
	Capabilities() Capabilities
}

// Unwrapper is implemented by pass-through decorators (Instrument,
// resil.Wrap, simfs.Flaky): Unwrap returns the decorated FileSystem so
// optional interfaces of the backend survive any decorator stack. A
// semantics-changing layer (a backend built on top of another backend,
// like the simulated object store) must NOT expose Unwrap — it answers
// optional interfaces itself or not at all.
type Unwrapper interface {
	Unwrap() FileSystem
}

// As walks fs down its Unwrap chain and returns the first layer that
// implements T. It is the shared forwarding helper every optional
// interface goes through, so a decorator only has to implement Unwrap
// once to forward all of them, present and future.
func As[T any](fs FileSystem) (T, bool) {
	for fs != nil {
		if t, ok := fs.(T); ok {
			return t, true
		}
		u, ok := fs.(Unwrapper)
		if !ok {
			break
		}
		fs = u.Unwrap()
	}
	var zero T
	return zero, false
}

// CapabilitiesOf returns the descriptor of the first capability-
// reporting layer of fs's decorator stack, or the zero (conservative
// POSIX-ish) descriptor when no layer reports one.
func CapabilitiesOf(fs FileSystem) Capabilities {
	if r, ok := As[CapabilityReporter](fs); ok {
		return r.Capabilities()
	}
	return Capabilities{}
}
