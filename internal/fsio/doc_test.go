package fsio_test

import (
	"fmt"
	"os"

	"repro/internal/fsio"
)

// ExampleOS demonstrates the file-system abstraction the SION library is
// written against: the same code runs on the real OS and on the simulated
// parallel file systems.
func ExampleOS() {
	dir, _ := os.MkdirTemp("", "fsio")
	defer os.RemoveAll(dir)
	fs := fsio.NewOS(dir)
	f, _ := fs.Create("demo.bin")
	f.WriteAt([]byte("multifile"), 0)
	f.Close()
	info, _ := fs.Stat("demo.bin")
	fmt.Println(info.Size)
	// Output: 9
}
