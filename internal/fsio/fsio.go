// Package fsio defines the file-system abstraction the SION library is
// written against, so the identical library code runs both on the real
// operating-system file system (see OS) and on the simulated parallel file
// systems of internal/simfs used to reproduce the paper's experiments.
package fsio

import (
	"errors"
	"io"
)

// ErrNotExist is returned when a file does not exist. Backends wrap their
// native not-exist errors so callers can test with errors.Is.
var ErrNotExist = errors.New("fsio: file does not exist")

// ErrExist is returned by Create when exclusive creation fails.
var ErrExist = errors.New("fsio: file already exists")

// ErrQuota is returned by write operations when a quota or space limit is
// exceeded (used by simfs failure injection; maps from ENOSPC on the OS).
var ErrQuota = errors.New("fsio: quota exceeded")

// ErrTransient marks an error as a transient backend condition: the
// operation failed because the file system misbehaved under load (an I/O
// timeout, EAGAIN/EINTR, a busy server, an injected flaky fault), not
// because the request was wrong. Backends wrap such failures so callers
// can test with errors.Is.
var ErrTransient = errors.New("fsio: transient backend failure")

// FileSystem is the minimal parallel-file-system surface SIONlib needs:
// create/open/stat/remove plus the file-system block size, which SIONlib
// auto-detects to align chunks (paper §3.1: "the block size of the target
// file system is determined automatically via the fstat() system call").
//
// Error contract (transient vs permanent): an operation that fails for a
// reason that may clear on its own returns an error wrapping ErrTransient.
// Every operation on this surface is idempotent — positional reads and
// writes, create/open/stat/remove, sync — so a caller may safely re-issue
// an attempt that failed transiently; internal/resil builds its retry,
// backoff-budget, and circuit-breaker machinery on exactly this property.
// An error that does not wrap ErrTransient is permanent for the attempted
// operation: retrying without changing the request is pointless
// (ErrNotExist, ErrExist, ErrQuota, corrupt data detected by a caller's
// parser, closed or removed handles). io.EOF from short reads is likewise
// not transient. The OS backend maps EAGAIN/EINTR/EBUSY/ETIMEDOUT/EIO to
// ErrTransient (an EIO from a parallel file system under load is the
// paper's canonical recoverable fault); simfs injects seeded transient
// faults through the same sentinel (see simfs flaky-fault injection).
type FileSystem interface {
	// Create creates (or truncates) the named file for read/write access.
	Create(name string) (File, error)
	// Open opens the named file. Write access is backend-defined; SIONlib
	// only writes to files it created, except when updating chunk headers,
	// for which it uses OpenRW.
	Open(name string) (File, error)
	// OpenRW opens an existing file for reading and writing.
	OpenRW(name string) (File, error)
	// Stat reports metadata for the named file.
	Stat(name string) (FileInfo, error)
	// Remove deletes the named file.
	Remove(name string) error
	// BlockSize reports the file-system block size governing the directory
	// that would contain name (fstat's st_blksize equivalent). The call
	// must work for names that do not exist yet — callers size a multifile
	// before creating it — and must never fail: backends answer from the
	// enclosing directory or from their configuration, falling back to a
	// sane default. Backends with multipart write semantics
	// (Capabilities.PartSizeFloor > 0) report the part size here, so
	// block-aligned chunk geometry is automatically part-aligned.
	BlockSize(name string) int64
}

// Backends may additionally implement CapabilityReporter (caps.go) to
// describe their contract beyond this minimal surface; decorators
// implement Unwrapper so such optional interfaces survive wrapping. Use
// CapabilitiesOf/As to query a possibly-decorated FileSystem.

// FileInfo is the subset of file metadata SIONlib consumes.
type FileInfo struct {
	Name string
	Size int64
}

// File is a random-access file handle.
//
// In addition to byte-accurate I/O, File carries two metered "synthetic"
// operations used by the at-scale benchmark harness: WriteZeroAt and
// ReadDiscardAt behave exactly like WriteAt/ReadAt of n bytes for cost and
// extent accounting, but the payload is all zeros and never materialized by
// the simulated backend, letting terabyte-scale experiments run in memory.
// The OS backend implements them faithfully with real zero bytes.
type File interface {
	io.ReaderAt
	io.WriterAt
	io.Closer

	// WriteZeroAt writes n synthetic zero bytes at off.
	WriteZeroAt(n, off int64) error
	// ReadDiscardAt reads and discards n bytes at off. It returns the
	// number of bytes that existed (reads past EOF are short, like ReadAt).
	ReadDiscardAt(n, off int64) (int64, error)

	// Size reports the current file size.
	Size() (int64, error)
	// Truncate changes the file size.
	Truncate(size int64) error
	// Sync makes the file's written data durable (no-op where
	// meaningless). Backends that model crash consistency (simfs with
	// volatile writes) guarantee that data written before a successful
	// Sync survives a crash, and order Syncs of different files: the
	// watermark commit protocol (internal/core) relies on "data sync
	// completed before commit record written" to keep committed bytes
	// untorn.
	Sync() error
}
