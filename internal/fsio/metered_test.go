package fsio_test

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/fsio"
	"repro/internal/obs"
)

// counterValue reads one family child's value out of the exposition text.
func counterValue(t *testing.T, reg *obs.Registry, sample string) int64 {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, sample+" ") {
			v, err := strconv.ParseInt(line[len(sample)+1:], 10, 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("sample %q not found in exposition:\n%s", sample, buf.String())
	return 0
}

func TestInstrumentCountsOps(t *testing.T) {
	reg := obs.NewRegistry()
	fs := fsio.Instrument(fsio.NewOS(t.TempDir()), fsio.NewMeter(reg, "os"))

	f, err := fs.Create(filepath.Join("a.dat"))
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("hello metered world")
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(payload))
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatalf("read back %q", buf)
	}
	// short read at EOF: counted as an op, bytes counted, NOT an error
	short := make([]byte, 64)
	if _, err := f.ReadAt(short, 0); err != io.EOF && err != nil {
		t.Fatalf("short read err = %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// a failing open IS an error
	if _, err := fs.Open("missing.dat"); !errors.Is(err, fsio.ErrNotExist) {
		t.Fatalf("open missing = %v", err)
	}

	if got := counterValue(t, reg, `fsio_ops_total{backend="os",op="read"}`); got != 2 {
		t.Errorf("read ops = %d, want 2", got)
	}
	if got := counterValue(t, reg, `fsio_ops_total{backend="os",op="write"}`); got != 1 {
		t.Errorf("write ops = %d, want 1", got)
	}
	if got := counterValue(t, reg, `fsio_ops_total{backend="os",op="sync"}`); got != 1 {
		t.Errorf("sync ops = %d, want 1", got)
	}
	wantBytes := int64(2 * len(payload)) // full read + short read both return len(payload)
	if got := counterValue(t, reg, `fsio_bytes_total{backend="os",op="read"}`); got != wantBytes {
		t.Errorf("read bytes = %d, want %d", got, wantBytes)
	}
	if got := counterValue(t, reg, `fsio_bytes_total{backend="os",op="write"}`); got != int64(len(payload)) {
		t.Errorf("write bytes = %d, want %d", got, len(payload))
	}
	if got := counterValue(t, reg, `fsio_errors_total{backend="os",op="read"}`); got != 0 {
		t.Errorf("read errors = %d, want 0 (EOF is not an error)", got)
	}
	if got := counterValue(t, reg, `fsio_errors_total{backend="os",op="meta"}`); got != 1 {
		t.Errorf("meta errors = %d, want 1 (failed open)", got)
	}

	var out bytes.Buffer
	if err := reg.WriteProm(&out); err != nil {
		t.Fatal(err)
	}
	if err := obs.CheckExposition(out.Bytes()); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
}

func TestInstrumentNilMeter(t *testing.T) {
	fs := fsio.Instrument(fsio.NewOS(t.TempDir()), nil)
	f, err := fs.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("ok"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
