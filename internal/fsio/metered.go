package fsio

import (
	"errors"
	"io"
	"sync/atomic"

	"repro/internal/obs"
)

// Meter holds the fsio instrument families for one backend, registered
// in an obs.Registry under a backend label. Operations are bucketed
// into four classes — read, write, meta (create/open/stat/remove/size/
// truncate), sync — which is the granularity the paper's analysis works
// at (§4 separates data transfer from metadata and sync cost) and keeps
// the family cardinality flat no matter how many call sites exist.
//
// Latency is sampled 1-in-latSample per op class rather than measured on
// every call: two clock reads per op would dominate the cost of a cached
// simfs read, and a sampled histogram answers the same p50/p95/p99
// questions.
type Meter struct {
	backend string

	ops    [opClasses]*obs.Counter
	errs   [opClasses]*obs.Counter
	bytes  [2]*obs.Counter // read, write only
	lat    [opClasses]*obs.Histogram
	ticks  [opClasses]atomic.Int64
	now    func() int64
	off    bool
	sample int64
}

// Op classes.
const (
	opRead = iota
	opWrite
	opMeta
	opSync
	opClasses
)

var opNames = [opClasses]string{"read", "write", "meta", "sync"}

// latSample is the default sampling interval for latency observations.
const latSample = 64

// NewMeter registers the fsio metric families for one backend (the
// backend label distinguishes e.g. "os" from "sim") and returns the
// meter. A nil registry yields an inert meter; metering against
// obs.Nop() is likewise free of atomic traffic beyond the op counters.
func NewMeter(reg *obs.Registry, backend string) *Meter {
	m := &Meter{backend: backend, sample: latSample}
	if reg == nil {
		reg = obs.Nop()
	}
	m.off = reg.Disabled()
	m.now = reg.Now
	for c := 0; c < opClasses; c++ {
		lbl := obs.L("backend", backend, "op", opNames[c])
		m.ops[c] = reg.Counter("fsio_ops_total",
			"fsio operations by backend and op class", lbl...)
		m.errs[c] = reg.Counter("fsio_errors_total",
			"failed fsio operations (io.EOF from short reads excluded)", lbl...)
		m.lat[c] = reg.Histogram("fsio_op_seconds",
			"sampled fsio operation latency", lbl...)
	}
	m.bytes[opRead] = reg.Counter("fsio_bytes_total",
		"bytes moved through fsio", obs.L("backend", backend, "op", "read")...)
	m.bytes[opWrite] = reg.Counter("fsio_bytes_total",
		"bytes moved through fsio", obs.L("backend", backend, "op", "write")...)
	return m
}

// begin starts an op: returns the clock reading to pass to done, or 0
// when this call is not latency-sampled. The first call of each class is
// always sampled so short-lived tools still get a latency point.
func (m *Meter) begin(class int) int64 {
	m.ops[class].Inc()
	if m.off {
		return 0
	}
	if m.ticks[class].Add(1)%m.sample != 1 {
		return 0
	}
	return m.now()
}

// done finishes an op begun with begin.
func (m *Meter) done(class int, start int64, err error) {
	if err != nil && !errors.Is(err, io.EOF) {
		m.errs[class].Inc()
	}
	if start != 0 {
		m.lat[class].Observe(m.now() - start)
	}
}

// Instrument wraps inner so every operation is counted in m. It layers
// anywhere in a decorator stack: outside resil.Wrap it sees the
// logical-operation rate; inside, the per-attempt rate (retries
// included). The serving stack wraps the innermost backend so
// fsio_ops_total{op="read"} counts physical attempts.
func Instrument(inner FileSystem, m *Meter) FileSystem {
	if m == nil {
		m = NewMeter(nil, "nop")
	}
	return &meteredFS{inner: inner, m: m}
}

type meteredFS struct {
	inner FileSystem
	m     *Meter
}

func (f *meteredFS) Create(name string) (File, error) {
	start := f.m.begin(opMeta)
	fh, err := f.inner.Create(name)
	f.m.done(opMeta, start, err)
	if err != nil {
		return nil, err
	}
	return &meteredFile{inner: fh, m: f.m}, nil
}

func (f *meteredFS) Open(name string) (File, error) {
	start := f.m.begin(opMeta)
	fh, err := f.inner.Open(name)
	f.m.done(opMeta, start, err)
	if err != nil {
		return nil, err
	}
	return &meteredFile{inner: fh, m: f.m}, nil
}

func (f *meteredFS) OpenRW(name string) (File, error) {
	start := f.m.begin(opMeta)
	fh, err := f.inner.OpenRW(name)
	f.m.done(opMeta, start, err)
	if err != nil {
		return nil, err
	}
	return &meteredFile{inner: fh, m: f.m}, nil
}

func (f *meteredFS) Stat(name string) (FileInfo, error) {
	start := f.m.begin(opMeta)
	fi, err := f.inner.Stat(name)
	f.m.done(opMeta, start, err)
	return fi, err
}

func (f *meteredFS) Remove(name string) error {
	start := f.m.begin(opMeta)
	err := f.inner.Remove(name)
	f.m.done(opMeta, start, err)
	return err
}

func (f *meteredFS) BlockSize(name string) int64 { return f.inner.BlockSize(name) }

// Unwrap exposes the decorated backend so optional interfaces
// (CapabilityReporter, future extensions) survive instrumentation; see
// fsio.As.
func (f *meteredFS) Unwrap() FileSystem { return f.inner }

type meteredFile struct {
	inner File
	m     *Meter
}

func (f *meteredFile) ReadAt(p []byte, off int64) (int, error) {
	start := f.m.begin(opRead)
	n, err := f.inner.ReadAt(p, off)
	f.m.bytes[opRead].Add(int64(n))
	f.m.done(opRead, start, err)
	return n, err
}

func (f *meteredFile) WriteAt(p []byte, off int64) (int, error) {
	start := f.m.begin(opWrite)
	n, err := f.inner.WriteAt(p, off)
	f.m.bytes[opWrite].Add(int64(n))
	f.m.done(opWrite, start, err)
	return n, err
}

func (f *meteredFile) WriteZeroAt(n, off int64) error {
	start := f.m.begin(opWrite)
	err := f.inner.WriteZeroAt(n, off)
	if err == nil {
		f.m.bytes[opWrite].Add(n)
	}
	f.m.done(opWrite, start, err)
	return err
}

func (f *meteredFile) ReadDiscardAt(n, off int64) (int64, error) {
	start := f.m.begin(opRead)
	got, err := f.inner.ReadDiscardAt(n, off)
	f.m.bytes[opRead].Add(got)
	f.m.done(opRead, start, err)
	return got, err
}

func (f *meteredFile) Size() (int64, error) {
	start := f.m.begin(opMeta)
	n, err := f.inner.Size()
	f.m.done(opMeta, start, err)
	return n, err
}

func (f *meteredFile) Truncate(size int64) error {
	start := f.m.begin(opMeta)
	err := f.inner.Truncate(size)
	f.m.done(opMeta, start, err)
	return err
}

func (f *meteredFile) Sync() error {
	start := f.m.begin(opSync)
	err := f.inner.Sync()
	f.m.done(opSync, start, err)
	return err
}

func (f *meteredFile) Close() error {
	start := f.m.begin(opMeta)
	err := f.inner.Close()
	f.m.done(opMeta, start, err)
	return err
}
