package fsio

import (
	"bytes"
	"errors"
	"testing"
)

func TestOSCreateWriteRead(t *testing.T) {
	o := NewOS(t.TempDir())
	f, err := o.Create("a.bin")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("hello, multifile")
	if _, err := f.WriteAt(data, 10); err != nil {
		t.Fatal(err)
	}
	if sz, _ := f.Size(); sz != int64(10+len(data)) {
		t.Fatalf("size = %d", sz)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 10); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and stat.
	if _, err := o.Stat("a.bin"); err != nil {
		t.Fatal(err)
	}
	g, err := o.Open("a.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	got2 := make([]byte, len(data))
	if _, err := g.ReadAt(got2, 10); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, data) {
		t.Fatalf("reopened got %q", got2)
	}
}

func TestOSNotExist(t *testing.T) {
	o := NewOS(t.TempDir())
	if _, err := o.Open("missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
	if _, err := o.Stat("missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("stat err = %v, want ErrNotExist", err)
	}
}

func TestOSBlockSizePositive(t *testing.T) {
	o := NewOS(t.TempDir())
	if bs := o.BlockSize("x"); bs <= 0 || bs%512 != 0 {
		t.Fatalf("block size = %d", bs)
	}
}

func TestOSWriteZeroAndDiscard(t *testing.T) {
	o := NewOS(t.TempDir())
	f, err := o.Create("z.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.WriteZeroAt(3000, 5); err != nil {
		t.Fatal(err)
	}
	if sz, _ := f.Size(); sz != 3005 {
		t.Fatalf("size = %d, want 3005", sz)
	}
	n, err := f.ReadDiscardAt(5000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3005 {
		t.Fatalf("discard read %d, want 3005", n)
	}
	// Content really is zeros.
	b := make([]byte, 10)
	if _, err := f.ReadAt(b, 100); err != nil {
		t.Fatal(err)
	}
	for _, c := range b {
		if c != 0 {
			t.Fatalf("non-zero byte in zero region: %v", b)
		}
	}
}

func TestOSTruncateAndRemove(t *testing.T) {
	o := NewOS(t.TempDir())
	f, _ := o.Create("t.bin")
	if err := f.WriteZeroAt(100, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(10); err != nil {
		t.Fatal(err)
	}
	if sz, _ := f.Size(); sz != 10 {
		t.Fatalf("size after truncate = %d", sz)
	}
	f.Close()
	if err := o.Remove("t.bin"); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Stat("t.bin"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("stat after remove = %v", err)
	}
}

func TestOSOpenRW(t *testing.T) {
	o := NewOS(t.TempDir())
	f, _ := o.Create("rw.bin")
	f.WriteAt([]byte("abcdef"), 0)
	f.Close()
	g, err := o.OpenRW("rw.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.WriteAt([]byte("XY"), 2); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 6)
	g.ReadAt(b, 0)
	if string(b) != "abXYef" {
		t.Fatalf("got %q", b)
	}
}

func TestErrorWrappingPreservesDetail(t *testing.T) {
	o := NewOS(t.TempDir())
	_, err := o.Open("missing-file")
	if err == nil {
		t.Fatal("expected error")
	}
	// The sentinel matches and the OS detail (path) is preserved.
	if !errors.Is(err, ErrNotExist) {
		t.Fatal("sentinel lost")
	}
	if want := "missing-file"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("detail lost: %v", err)
	}
}

func TestAbsolutePathBypassesRoot(t *testing.T) {
	dir := t.TempDir()
	o := NewOS(dir)
	f, err := o.Create(dir + "/abs.bin")
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := o.Stat("abs.bin"); err != nil {
		t.Fatal("absolute and relative views disagree:", err)
	}
}
