package fsio

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
)

// OS adapts the real operating-system file system to the FileSystem
// interface. Paths are interpreted relative to Root (or absolute when Root
// is empty). It is what the examples and command-line utilities use.
type OS struct {
	// Root, when non-empty, is prepended to all relative paths.
	Root string
}

// NewOS returns an OS file system rooted at root ("" = process cwd).
func NewOS(root string) *OS { return &OS{Root: root} }

func (o *OS) path(name string) string {
	if o.Root == "" || filepath.IsAbs(name) {
		return name
	}
	return filepath.Join(o.Root, name)
}

// Create implements FileSystem.
func (o *OS) Create(name string) (File, error) {
	f, err := os.OpenFile(o.path(name), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, mapOSErr(err)
	}
	return (*osFile)(f), nil
}

// Open implements FileSystem.
func (o *OS) Open(name string) (File, error) {
	f, err := os.Open(o.path(name))
	if err != nil {
		return nil, mapOSErr(err)
	}
	return (*osFile)(f), nil
}

// OpenRW implements FileSystem.
func (o *OS) OpenRW(name string) (File, error) {
	f, err := os.OpenFile(o.path(name), os.O_RDWR, 0)
	if err != nil {
		return nil, mapOSErr(err)
	}
	return (*osFile)(f), nil
}

// Stat implements FileSystem.
func (o *OS) Stat(name string) (FileInfo, error) {
	st, err := os.Stat(o.path(name))
	if err != nil {
		return FileInfo{}, mapOSErr(err)
	}
	return FileInfo{Name: name, Size: st.Size()}, nil
}

// Remove implements FileSystem.
func (o *OS) Remove(name string) error { return mapOSErr(os.Remove(o.path(name))) }

// Capabilities reports the POSIX contract of the OS backend: atomic
// rename, cheap in-place updates, durable fsync, byte-granular reads
// with no request-size ceiling. Request-geometry fields are zero — the
// local file system has no preference worth tuning for beyond the
// st_blksize alignment BlockSize already reports.
func (o *OS) Capabilities() Capabilities {
	return Capabilities{
		Backend:       "os",
		AtomicRename:  true,
		InPlaceUpdate: true,
		Sync:          SyncDurable,
	}
}

// BlockSize reports st_blksize for the directory containing name,
// mirroring SIONlib's fstat-based block-size autodetection. Because the
// stat targets the directory, the call works identically whether or not
// name itself exists yet (the common case: sizing a multifile about to
// be created); a missing directory falls back to 4096.
func (o *OS) BlockSize(name string) int64 {
	dir := filepath.Dir(o.path(name))
	var st syscall.Stat_t
	if err := syscall.Stat(dir, &st); err != nil {
		return 4096
	}
	if st.Blksize <= 0 {
		return 4096
	}
	return int64(st.Blksize)
}

func mapOSErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, fs.ErrNotExist):
		return errJoin(ErrNotExist, err)
	case errors.Is(err, fs.ErrExist):
		return errJoin(ErrExist, err)
	case errors.Is(err, syscall.ENOSPC), errors.Is(err, syscall.EDQUOT):
		return errJoin(ErrQuota, err)
	case errors.Is(err, syscall.EAGAIN), errors.Is(err, syscall.EINTR),
		errors.Is(err, syscall.EBUSY), errors.Is(err, syscall.ETIMEDOUT),
		errors.Is(err, syscall.EIO):
		return errJoin(ErrTransient, err)
	default:
		return err
	}
}

func errJoin(sentinel, err error) error { return joinedErr{sentinel, err} }

type joinedErr struct{ sentinel, err error }

func (j joinedErr) Error() string { return j.err.Error() }
func (j joinedErr) Unwrap() []error {
	return []error{j.sentinel, j.err}
}

// osFile adapts *os.File to the File interface.
type osFile os.File

func (f *osFile) std() *os.File { return (*os.File)(f) }

// Data-path errors run through mapOSErr too, so the FileSystem error
// contract (transient errno conditions wrap ErrTransient) holds for reads,
// writes, and syncs, not just for the namespace operations. io.EOF is
// passed through untouched: short reads are part of the ReadAt contract,
// not a failure.
func (f *osFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.std().ReadAt(p, off)
	if err == io.EOF {
		return n, err
	}
	return n, mapOSErr(err)
}

func (f *osFile) WriteAt(p []byte, off int64) (int, error) {
	n, err := f.std().WriteAt(p, off)
	return n, mapOSErr(err)
}

func (f *osFile) Close() error              { return mapOSErr(f.std().Close()) }
func (f *osFile) Truncate(size int64) error { return mapOSErr(f.std().Truncate(size)) }
func (f *osFile) Sync() error               { return mapOSErr(f.std().Sync()) }

func (f *osFile) Size() (int64, error) {
	st, err := f.std().Stat()
	if err != nil {
		return 0, mapOSErr(err)
	}
	return st.Size(), nil
}

// zeroBuf is a shared read-only block of zeros for WriteZeroAt.
var zeroBuf [1 << 20]byte

// WriteZeroAt writes n real zero bytes at off.
func (f *osFile) WriteZeroAt(n, off int64) error {
	for n > 0 {
		c := n
		if c > int64(len(zeroBuf)) {
			c = int64(len(zeroBuf))
		}
		w, err := f.std().WriteAt(zeroBuf[:c], off)
		if err != nil {
			return mapOSErr(err)
		}
		n -= int64(w)
		off += int64(w)
	}
	return nil
}

// ReadDiscardAt reads and discards n bytes at off.
func (f *osFile) ReadDiscardAt(n, off int64) (int64, error) {
	var buf [1 << 16]byte
	var total int64
	for n > 0 {
		c := n
		if c > int64(len(buf)) {
			c = int64(len(buf))
		}
		r, err := f.std().ReadAt(buf[:c], off)
		total += int64(r)
		n -= int64(r)
		off += int64(r)
		if err != nil {
			if err == io.EOF {
				return total, nil
			}
			return total, mapOSErr(err)
		}
		if r == 0 {
			break
		}
	}
	return total, nil
}
