package fsio

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func sampleCaps() Capabilities {
	return Capabilities{
		Backend:               "objstore",
		AtomicRename:          false,
		InPlaceUpdate:         false,
		PreferredRequestBytes: 8 << 20,
		MinReadBytes:          1 << 12,
		MaxReadBytes:          32 << 20,
		PartSizeFloor:         8 << 20,
		WriteFanout:           8,
		Sync:                  SyncOnSeal,
		Read:                  OpProfile{LatencySecs: 0.03, ThroughputBps: 100e6},
		Write:                 OpProfile{LatencySecs: 0.03, ThroughputBps: 80e6},
	}
}

func TestCapsRoundTrip(t *testing.T) {
	for _, c := range []Capabilities{
		{},
		{Backend: "os", AtomicRename: true, InPlaceUpdate: true},
		sampleCaps(),
	} {
		enc := c.Encode()
		if len(enc) > MaxEncodedCapsLen {
			t.Fatalf("encoded %d bytes > MaxEncodedCapsLen %d", len(enc), MaxEncodedCapsLen)
		}
		got, err := DecodeCapabilities(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, c) {
			t.Fatalf("round trip: got %+v want %+v", got, c)
		}
	}
}

func TestCapsValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Capabilities)
		want string
	}{
		{"long name", func(c *Capabilities) { c.Backend = strings.Repeat("x", MaxBackendNameLen+1) }, "backend name"},
		{"space in name", func(c *Capabilities) { c.Backend = "a b" }, "non-printable"},
		{"negative part", func(c *Capabilities) { c.PartSizeFloor = -1 }, "negative PartSizeFloor"},
		{"min over max", func(c *Capabilities) { c.MinReadBytes = 10; c.MaxReadBytes = 5 }, "MinReadBytes"},
		{"bad sync", func(c *Capabilities) { c.Sync = 99 }, "SyncSemantics"},
		{"nan latency", func(c *Capabilities) { c.Read.LatencySecs = math.NaN() }, "finite"},
		{"negative throughput", func(c *Capabilities) { c.Write.ThroughputBps = -1 }, "finite"},
	}
	for _, tc := range cases {
		c := sampleCaps()
		tc.mut(&c)
		err := c.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	if err := sampleCaps().Validate(); err != nil {
		t.Fatalf("sample descriptor invalid: %v", err)
	}
}

func TestDecodeCapabilitiesRejects(t *testing.T) {
	good := sampleCaps().Encode()
	cases := map[string][]byte{
		"empty":       nil,
		"short":       good[:6],
		"bad magic":   append([]byte("NOPE"), good[4:]...),
		"bad version": append(append([]byte(nil), good[:4]...), append([]byte{99}, good[5:]...)...),
		"truncated":   good[:len(good)-3],
		"trailing":    append(append([]byte(nil), good...), 0),
	}
	for name, b := range cases {
		if _, err := DecodeCapabilities(b); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}

// TestCapsForwarding pins the shared unwrap helper: a metered decorator
// forwards the backend's descriptor, and a backend with no descriptor
// yields the conservative zero value.
func TestCapsForwarding(t *testing.T) {
	base := NewOS(t.TempDir())
	wrapped := Instrument(base, NewMeter(nil, "os"))
	got := CapabilitiesOf(wrapped)
	if got != base.Capabilities() {
		t.Fatalf("Instrument dropped capabilities: got %+v", got)
	}
	if got.Backend != "os" || !got.AtomicRename || !got.InPlaceUpdate {
		t.Fatalf("OS capabilities unexpected: %+v", got)
	}
	// A FileSystem with neither reporter nor unwrapper → zero descriptor.
	if c := CapabilitiesOf(bareFS{base}); c != (Capabilities{}) {
		t.Fatalf("bare FS reported %+v, want zero", c)
	}
}

// bareFS hides the OS backend's optional interfaces.
type bareFS struct{ inner FileSystem }

func (b bareFS) Create(name string) (File, error)   { return b.inner.Create(name) }
func (b bareFS) Open(name string) (File, error)     { return b.inner.Open(name) }
func (b bareFS) OpenRW(name string) (File, error)   { return b.inner.OpenRW(name) }
func (b bareFS) Stat(name string) (FileInfo, error) { return b.inner.Stat(name) }
func (b bareFS) Remove(name string) error           { return b.inner.Remove(name) }
func (b bareFS) BlockSize(name string) int64        { return b.inner.BlockSize(name) }

// FuzzCapabilities drives the descriptor codec with arbitrary bytes:
// every input must either fail cleanly or decode to a descriptor that
// passes Validate and survives a re-encode byte-identically (the codec
// is canonical: one descriptor, one encoding).
func FuzzCapabilities(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(Capabilities{}.Encode())
	f.Add(sampleCaps().Encode())
	f.Add((&OS{}).Capabilities().Encode())
	f.Add([]byte("SCAP"))
	f.Add([]byte("SCAP\x01\x00\x00\xff"))
	f.Fuzz(func(t *testing.T, b []byte) {
		c, err := DecodeCapabilities(b)
		if err != nil {
			return
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("decoded descriptor fails Validate: %v", verr)
		}
		enc := c.Encode()
		if string(enc) != string(b) {
			t.Fatalf("re-encode not canonical:\n in: %x\nout: %x", b, enc)
		}
	})
}
