package sion

import (
	"fmt"
	"io"

	"repro/internal/fsio"
	"repro/internal/mpi"
)

// Message tag used to forward the global mapping from world rank 0 to the
// master of physical file 0 when they differ (custom mappings).
const tagMapping = 4097

// File is a handle to one task's logical task-local file inside a
// multifile. In parallel mode it is obtained collectively from ParOpen;
// OpenRank returns the same type for serial task-local access
// (paper Listing 4).
//
// File implements io.Reader and io.Writer over the logical file: Write
// corresponds to sion_fwrite (it transparently spans chunk boundaries) and
// Read to sion_fread. For ANSI-C-style access within one chunk, use
// EnsureFreeSpace/BytesAvailInChunk and the same Write/Read calls.
type File struct {
	fsys fsio.FileSystem
	fh   fsio.File
	name string // logical multifile name (not the physical segment name)
	mode Mode

	comm  *mpi.Comm // global communicator (nil for serial OpenRank)
	lcomm *mpi.Comm // tasks sharing this physical file (nil for serial)

	geo       geometry
	local     int // local rank within the physical file
	global    int // global task rank
	filenum   int
	nfiles    int
	fsblk     int64
	requested int64 // requested chunk size
	chunkHdrs bool
	closed    bool

	// Write state.
	curBlock   int
	pos        int64   // position within the current chunk's data area
	blockBytes []int64 // bytes written per block (index ≤ curBlock)

	// Chunk-commit watermark state (Options.Watermarks; see watermark.go).
	// wm is armed on every rank that touches the physical file (direct
	// writers and collective collectors); collective members publish
	// through their collector instead. wmSealedTo counts the blocks
	// already committed as sealed, wmOpenBytes the last committed byte
	// count of the open block.
	wm          *wmWriter
	wmSealedTo  int
	wmOpenBytes int64

	// Read state.
	readBytes []int64 // bytes available per block (from metablock 2)

	// Collective mode (see collective.go). coll is the write-side state
	// (nil = direct writes); collRead serves reads from the prefetched
	// stream a read-mode collector scattered (nil = direct reads).
	// collGroup/collLead describe the resolved group for both directions.
	coll      *collState
	collRead  *collReadState
	collGroup int
	collLead  bool

	// Buffered staging for the direct path (see buffer.go): write-behind
	// (wstage) and read-ahead (rstage); nil = unbuffered. stagingOff
	// records an explicit SetBufferSize(0) opt-out, which NewKeyReader's
	// automatic read-ahead respects.
	wstage     *writeStage
	rstage     *readStage
	stagingOff bool

	// fhShared marks a rank handle whose fh belongs to a container (a
	// MappedFile or a read-mode SerialFile) that shares one open physical
	// file among several rank views; Close then leaves fh to the container.
	fhShared bool
}

var (
	_ io.Writer = (*File)(nil)
	_ io.Reader = (*File)(nil)
)

// ParOpen collectively opens a multifile for parallel access
// (sion_paropen_mpi). Every task of comm must call it with the same name
// and mode; fsys is the task's file-system binding. In write mode,
// opts.ChunkSize is the maximum number of bytes the calling task writes in
// one piece (it may differ between tasks). In read mode opts may be nil;
// geometry and task placement are recovered from the multifile metadata.
func ParOpen(comm *mpi.Comm, fsys fsio.FileSystem, name string, mode Mode, opts *Options) (*File, error) {
	switch mode {
	case WriteMode:
		return parOpenWrite(comm, fsys, name, opts)
	case ReadMode:
		return parOpenRead(comm, fsys, name, opts)
	default:
		return nil, fmt.Errorf("sion: ParOpen %s: unsupported mode %v", name, mode)
	}
}

func parOpenWrite(comm *mpi.Comm, fsys fsio.FileSystem, name string, opts *Options) (*File, error) {
	// Backend capabilities drive the geometry defaults (NFiles fanout,
	// staging, flush units); rank 0's descriptor is broadcast so every
	// task resolves the same geometry (see caps.go).
	caps := bcastCapabilities(comm, fsys)
	o, err := opts.withDefaults(comm.Size(), caps)
	if err != nil {
		return nil, err
	}

	// Determine the FS block size once and share it (SIONlib: fstat on
	// the target file system, paper §3.1).
	var fsblk int64
	if comm.Rank() == 0 {
		fsblk = o.FSBlockSize
		if fsblk <= 0 {
			fsblk = fsys.BlockSize(name)
		}
	}
	fsblk = comm.BcastInt64s(0, []int64{fsblk})[0]
	if fsblk <= 0 {
		return nil, fmt.Errorf("sion: ParOpen %s: bad FS block size %d", name, fsblk)
	}

	// Task → physical file assignment and the per-file sub-communicator
	// (the paper's lcom, §3.2.1).
	filenum := o.Mapping(comm.Rank(), comm.Size(), o.NFiles)
	if filenum < 0 || filenum >= o.NFiles {
		filenum = 0 // collective safety: a broken MapFunc must not deadlock
	}
	lcomm := comm.Split(filenum, comm.Rank())

	// Collect the global mapping at world rank 0 and forward it to the
	// master of physical file 0, which stores it in its header.
	mapEnc := comm.GatherInt64Slice(0, []int64{int64(filenum), int64(lcomm.Rank())})
	var mapping []FileLoc
	file0Master := 0
	if comm.Rank() == 0 {
		mapping = make([]FileLoc, comm.Size())
		for r, fl := range mapEnc {
			mapping[r] = FileLoc{File: int32(fl[0]), LocalRank: int32(fl[1])}
			if fl[0] == 0 && fl[1] == 0 {
				file0Master = r
			}
		}
	}
	isFile0Master := filenum == 0 && lcomm.Rank() == 0
	if comm.Rank() == 0 && file0Master != 0 {
		comm.Send(file0Master, tagMapping, encodeMapping(mapping))
		mapping = nil
	}
	var mapErr error
	if isFile0Master && comm.Rank() != 0 {
		mapping, mapErr = decodeMapping(comm.Recv(0, tagMapping), comm.Size(), o.NFiles)
	}

	// Local master gathers requested chunk sizes (paper §3.1: "all tasks
	// send their requested chunk size to a master task").
	sizes := lcomm.GatherInt64Slice(0, []int64{int64(comm.Rank()), o.ChunkSize})

	f := &File{
		fsys: fsys, name: name, mode: WriteMode,
		comm: comm, lcomm: lcomm,
		local: lcomm.Rank(), global: comm.Rank(),
		filenum: filenum, nfiles: o.NFiles, fsblk: fsblk,
		requested: o.ChunkSize, chunkHdrs: o.ChunkHeaders,
	}

	// The master creates the physical file, writes metablock 1, and
	// scatters each task's chunk address (paper §3.1).
	physName := fileName(name, filenum)
	var geos [][]int64
	status := int64(0)
	if mapErr != nil {
		status = 4 // forwarded mapping failed validation at file 0's master
	}
	if f.local == 0 {
		h := &header{
			FSBlockSize:  fsblk,
			NTasksGlobal: int32(comm.Size()),
			NTasksLocal:  int32(lcomm.Size()),
			NFiles:       int32(o.NFiles),
			FileNum:      int32(filenum),
			Flags:        o.flags(),
			MaxChunks:    int32(o.MaxChunks),
			GlobalRanks:  make([]int64, lcomm.Size()),
			ChunkSizes:   make([]int64, lcomm.Size()),
			Mapping:      mapping,
		}
		for i, gs := range sizes {
			h.GlobalRanks[i] = gs[0]
			h.ChunkSizes[i] = gs[1]
			if gs[1] <= 0 {
				status = 1
			}
		}
		var fh fsio.File
		if status == 0 {
			fh, err = fsys.Create(physName)
			if err != nil {
				status = 2
			} else if _, werr := fh.WriteAt(h.encode(), 0); werr != nil {
				status = 3
				fh.Close()
			}
		}
		if status == 0 && o.Watermarks {
			// Tail readers parse the segment header while the file is still
			// being written, so it must be durable before any commit is; the
			// sidecar must exist (with a durable header) before the scatter
			// releases the other ranks to open it.
			if serr := fh.Sync(); serr != nil {
				status = 5
				fh.Close()
			} else if wfh, werr := createWM(fsys, name, filenum, lcomm.Size()); werr != nil {
				status = 5
				fh.Close()
			} else {
				f.wm = newWMWriter(wfh, lcomm.Size())
			}
		}
		if status == 0 {
			f.fh = fh
			f.geo = newGeometry(h)
			// Resolve the collector group size here, where the full chunk
			// table is known, so CollectorAuto is consistent across the
			// group even with per-task chunk sizes.
			group := int64(resolveCollectorGroup(o.CollectorGroup, lcomm.Size(), f.geo.stride, fsblk))
			geos = make([][]int64, lcomm.Size())
			for i := range geos {
				geos[i] = []int64{
					status,
					f.geo.start,
					f.geo.stride,
					f.geo.aligned[i],
					f.geo.prefix[i],
					group,
				}
			}
		} else {
			geos = make([][]int64, lcomm.Size())
			for i := range geos {
				geos[i] = []int64{status, 0, 0, 0, 0, 0}
			}
		}
	}
	mine := lcomm.ScatterInt64Slice(0, geos)
	if mine[0] != 0 {
		if f.fh != nil {
			f.fh.Close()
		}
		if f.wm != nil {
			f.wm.close()
			f.wm = nil
		}
		return nil, fmt.Errorf("sion: ParOpen %s for write failed (status %d; invalid chunk size or create error)", name, mine[0])
	}
	group := int(mine[5])
	if f.local != 0 {
		// Non-masters keep a single-entry geometry view (index 0); the
		// master holds the full per-task table, in which its own chunk is
		// also entry 0 (the master is always local rank 0).
		f.geo = geometry{
			fsblk:   fsblk,
			start:   mine[1],
			stride:  mine[2],
			aligned: []int64{mine[3]},
			prefix:  []int64{mine[4]},
			headers: o.ChunkHeaders,
		}
		// In collective mode only the collectors (group leads) touch the
		// physical file; other members route everything through frames.
		if group <= 1 || f.local%group == 0 {
			fh, err := fsys.OpenRW(physName)
			if err != nil {
				return nil, fmt.Errorf("sion: ParOpen %s: opening physical file: %w", name, err)
			}
			f.fh = fh
			if o.Watermarks {
				// The master created the sidecar before the scatter, so it
				// exists by the time any non-master gets here.
				wfh, err := fsys.OpenRW(wmName(name, filenum))
				if err != nil {
					return nil, fmt.Errorf("sion: ParOpen %s: opening watermark sidecar: %w", name, err)
				}
				f.wm = newWMWriter(wfh, lcomm.Size())
			}
		}
	}
	f.blockBytes = []int64{0}
	if err := f.enterBlock(0); err != nil {
		return nil, err
	}
	f.initCollective(group, o.AsyncCollective, o.AsyncFlushBytes)
	f.initStaging(o.BufferSize)
	return f, nil
}

// resolveCollectorGroup turns the CollectorGroup option into the effective
// group size for a physical file with ntasksLocal tasks and the given
// block stride (= sum of aligned chunk sizes).
func resolveCollectorGroup(opt, ntasksLocal int, stride, fsblk int64) int {
	switch {
	case opt == CollectorAuto:
		return autoCollectorGroup(ntasksLocal, stride/int64(ntasksLocal), fsblk)
	case opt > 1:
		return opt
	default:
		return 1
	}
}

// geoIndex is the index of this task's chunk in its geometry tables.
// It is always 0: non-masters and serial rank handles carry single-entry
// views, and the write-mode master (local rank 0) is entry 0 of the full
// table it keeps for writing metablock 2.
const geoIndex = 0

func parOpenRead(comm *mpi.Comm, fsys fsio.FileSystem, name string, opts *Options) (*File, error) {
	caps := bcastCapabilities(comm, fsys)
	o, err := opts.withDefaults(comm.Size(), caps)
	if err != nil {
		return nil, err
	}
	// World rank 0 reads file 0's header to learn the task placement.
	var placements [][]int64
	status := int64(0)
	var nfilesBC, fsblkBC, flagsBC int64
	if comm.Rank() == 0 {
		fh, err := fsys.Open(fileName(name, 0))
		if err != nil {
			status = 1
		} else {
			h, perr := parseHeader(fh)
			fh.Close()
			switch {
			case perr != nil:
				status = 2
			case int(h.NTasksGlobal) != comm.Size():
				status = 3
			default:
				nfilesBC = int64(h.NFiles)
				fsblkBC = h.FSBlockSize
				flagsBC = int64(h.Flags)
				placements = make([][]int64, comm.Size())
				for r := range placements {
					placements[r] = []int64{status, int64(h.Mapping[r].File), int64(h.Mapping[r].LocalRank), nfilesBC, fsblkBC, flagsBC}
				}
			}
		}
		if status != 0 {
			placements = make([][]int64, comm.Size())
			for r := range placements {
				placements[r] = []int64{status, 0, 0, 0, 0, 0}
			}
		}
	}
	place := comm.ScatterInt64Slice(0, placements)
	if place[0] != 0 {
		return nil, fmt.Errorf("sion: ParOpen %s for read failed (status %d: missing file, corrupt header, or task-count mismatch)", name, place[0])
	}
	filenum, localrank := int(place[1]), int(place[2])
	nfiles, fsblk, flags := int(place[3]), place[4], uint64(place[5])

	lcomm := comm.Split(filenum, localrank)

	f := &File{
		fsys: fsys, name: name, mode: ReadMode,
		comm: comm, lcomm: lcomm,
		local: lcomm.Rank(), global: comm.Rank(),
		filenum: filenum, nfiles: nfiles, fsblk: fsblk,
		chunkHdrs: flags&flagChunkHeaders != 0,
	}

	// Each file's master parses its metadata and scatters per-task
	// geometry plus the per-block byte counts from metablock 2.
	physName := fileName(name, filenum)
	var infos [][]int64
	lstatus := int64(0)
	if f.local == 0 {
		fh, err := fsys.Open(physName)
		var h *header
		var m2 *meta2
		if err != nil {
			lstatus = 4
		} else {
			if h, err = parseHeader(fh); err != nil {
				lstatus = 5
			} else if m2, err = readTail(fh, int(h.NTasksLocal)); err != nil {
				lstatus = 6
			}
			fh.Close()
		}
		infos = make([][]int64, lcomm.Size())
		if lstatus == 0 {
			if int(h.NTasksLocal) != lcomm.Size() {
				lstatus = 7
			}
		}
		for i := range infos {
			if lstatus != 0 {
				infos[i] = []int64{lstatus, 0, 0, 0, 0, 0, 0}
				continue
			}
			g := newGeometry(h)
			group := int64(resolveCollectorGroup(o.CollectorGroup, lcomm.Size(), g.stride, fsblk))
			rec := []int64{0, g.start, g.stride, g.aligned[i], g.prefix[i], h.ChunkSizes[i], group}
			rec = append(rec, m2.BlockBytes[i]...)
			infos[i] = rec
		}
	}
	mine := lcomm.ScatterInt64Slice(0, infos)
	if mine[0] != 0 {
		return nil, fmt.Errorf("sion: ParOpen %s for read failed (status %d: metadata error in %s)", name, mine[0], physName)
	}
	f.geo = geometry{
		fsblk:   fsblk,
		start:   mine[1],
		stride:  mine[2],
		aligned: []int64{mine[3]},
		prefix:  []int64{mine[4]},
		headers: f.chunkHdrs,
	}
	f.requested = mine[5]
	group := int(mine[6])
	f.readBytes = append([]int64(nil), mine[7:]...)
	if group > 1 {
		// Collective read: only the group collectors open the physical
		// file; they read each member's chunk regions in one pass and
		// scatter the logical streams (see collective.go, which also
		// handles a failed collector open by failing the members' opens
		// rather than leaving them blocked).
		if err := f.initCollectiveRead(group, physName); err != nil {
			if f.fh != nil {
				f.fh.Close()
			}
			return nil, err
		}
		return f, nil
	}
	fh, err := fsys.Open(physName)
	if err != nil {
		return nil, fmt.Errorf("sion: ParOpen %s: opening physical file: %w", name, err)
	}
	f.fh = fh
	f.initStaging(o.BufferSize)
	return f, nil
}

// --- Accessors -------------------------------------------------------------

// GlobalRank returns the task's rank in the global communicator
// (or the rank passed to OpenRank).
func (f *File) GlobalRank() int { return f.global }

// PhysicalFile returns the index of the physical file holding this task.
func (f *File) PhysicalFile() int { return f.filenum }

// NumFiles returns the number of physical files of the multifile.
func (f *File) NumFiles() int { return f.nfiles }

// FSBlockSize returns the block size chunks are aligned to.
func (f *File) FSBlockSize() int64 { return f.fsblk }

// ChunkCapacity returns the usable bytes per chunk for this task.
func (f *File) ChunkCapacity() int64 { return f.geo.capacity(geoIndex) }

// Blocks returns the number of blocks this task has data in (read mode)
// or has started (write mode).
func (f *File) Blocks() int {
	if f.mode == ReadMode {
		return len(f.readBytes)
	}
	return len(f.blockBytes)
}

// --- Write path -------------------------------------------------------------

func (f *File) checkOpen(want Mode) error {
	if f.closed {
		return fmt.Errorf("sion: %s: handle is closed", f.name)
	}
	if f.mode != want {
		return fmt.Errorf("sion: %s: operation requires %s mode, handle is %s", f.name, want, f.mode)
	}
	return nil
}

// EnsureFreeSpace guarantees that n bytes fit into the current chunk,
// allocating a new chunk (block) if necessary (sion_ensure_free_space).
// n must not exceed the chunk capacity; use Write for larger records.
func (f *File) EnsureFreeSpace(n int64) error {
	if err := f.checkOpen(WriteMode); err != nil {
		return err
	}
	cap := f.ChunkCapacity()
	if n < 0 || n > cap {
		return fmt.Errorf("sion: %s: EnsureFreeSpace(%d) exceeds chunk capacity %d (use Write to span chunks)", f.name, n, cap)
	}
	if f.pos+n > cap {
		if err := f.advanceBlock(); err != nil {
			return err
		}
	}
	return nil
}

// BytesAvailInChunk reports the bytes left in the current chunk
// (sion_bytes_avail_in_chunk): write mode counts remaining capacity, read
// mode counts unread bytes recorded in the metadata.
func (f *File) BytesAvailInChunk() int64 {
	if f.mode == WriteMode {
		return f.ChunkCapacity() - f.pos
	}
	if f.curBlock >= len(f.readBytes) {
		return 0
	}
	return f.readBytes[f.curBlock] - f.pos
}

// Write appends p to the task's logical file, transparently splitting the
// data across chunk boundaries (sion_fwrite).
func (f *File) Write(p []byte) (int, error) {
	if err := f.checkOpen(WriteMode); err != nil {
		return 0, err
	}
	if f.collectiveEnabled() {
		return f.collWrite(p)
	}
	if f.buffered() {
		return f.stagedWrite(p)
	}
	total := 0
	for len(p) > 0 {
		avail := f.ChunkCapacity() - f.pos
		if avail == 0 {
			if err := f.advanceBlock(); err != nil {
				return total, err
			}
			avail = f.ChunkCapacity()
		}
		w := int64(len(p))
		if w > avail {
			w = avail
		}
		off := f.dataOff() + f.pos
		if _, err := f.fh.WriteAt(p[:w], off); err != nil {
			return total, fmt.Errorf("sion: %s: chunk write: %w", f.name, err)
		}
		f.pos += w
		f.blockBytes[f.curBlock] = f.pos
		total += int(w)
		p = p[w:]
	}
	return total, nil
}

// WriteSynthetic writes n synthetic zero bytes through the identical chunk
// logic (used by the at-scale benchmark harness; see fsio.File). On a
// buffered handle it first flushes the staging buffer and then bypasses
// it: the synthetic path exists to avoid materializing payload bytes, and
// flushing first keeps the physical extents in write order (a stale stage
// would otherwise land behind the synthetic region later, at an offset
// that no longer matches the cursor).
func (f *File) WriteSynthetic(n int64) error {
	if err := f.checkOpen(WriteMode); err != nil {
		return err
	}
	if f.collectiveEnabled() {
		return fmt.Errorf("sion: %s: WriteSynthetic is unsupported in collective mode", f.name)
	}
	if err := f.stageFlush(); err != nil {
		return err
	}
	for n > 0 {
		avail := f.ChunkCapacity() - f.pos
		if avail == 0 {
			if err := f.advanceBlock(); err != nil {
				return err
			}
			avail = f.ChunkCapacity()
		}
		w := n
		if w > avail {
			w = avail
		}
		if err := f.fh.WriteZeroAt(w, f.dataOff()+f.pos); err != nil {
			return fmt.Errorf("sion: %s: chunk write: %w", f.name, err)
		}
		f.pos += w
		f.blockBytes[f.curBlock] = f.pos
		n -= w
	}
	return nil
}

// dataOff returns the file offset of the current position's chunk data.
func (f *File) dataOff() int64 { return f.geo.dataOff(geoIndex, f.curBlock) }

// enterBlock initializes the chunk of block b (writes the open chunk
// header when enabled).
func (f *File) enterBlock(b int) error {
	f.curBlock = b
	f.pos = 0
	if !f.chunkHdrs || f.mode != WriteMode {
		return nil
	}
	ch := chunkHeader{GlobalRank: int64(f.global), Block: int64(b), Bytes: -1}
	if _, err := f.fh.WriteAt(ch.encode(), f.geo.chunkOff(geoIndex, b)); err != nil {
		return fmt.Errorf("sion: %s: chunk header: %w", f.name, err)
	}
	return nil
}

// sealBlock finalizes block b's chunk header with the written byte count.
func (f *File) sealBlock(b int, bytes int64) error {
	if !f.chunkHdrs {
		return nil
	}
	ch := chunkHeader{GlobalRank: int64(f.global), Block: int64(b), Bytes: bytes}
	if _, err := f.fh.WriteAt(ch.encode(), f.geo.chunkOff(geoIndex, b)); err != nil {
		return fmt.Errorf("sion: %s: sealing chunk header: %w", f.name, err)
	}
	return nil
}

// advanceBlock moves the task to its chunk in the next block (paper §3.1:
// "if a task wants to write more bytes than left in the current chunk, it
// can request a new chunk of the same size" — a whole new block is
// allocated logically; unused chunks remain file-system holes).
func (f *File) advanceBlock() error {
	// Staged bytes of the finished chunk must land before the cursor moves
	// (they address the current block's data region).
	if err := f.stageFlush(); err != nil {
		return err
	}
	if err := f.sealBlock(f.curBlock, f.pos); err != nil {
		return err
	}
	f.blockBytes[f.curBlock] = f.pos
	f.blockBytes = append(f.blockBytes, 0)
	return f.enterBlock(f.curBlock + 1)
}

// --- Read path --------------------------------------------------------------

// Read fills p from the task's logical file, transparently continuing into
// subsequent chunks (sion_fread). It returns io.EOF after the last byte.
func (f *File) Read(p []byte) (int, error) {
	if err := f.checkOpen(ReadMode); err != nil {
		return 0, err
	}
	total := 0
	for len(p) > 0 {
		if f.curBlock >= len(f.readBytes) {
			break
		}
		avail := f.readBytes[f.curBlock] - f.pos
		if avail == 0 {
			f.curBlock++
			f.pos = 0
			continue
		}
		r := int64(len(p))
		if r > avail {
			r = avail
		}
		if err := f.readChunkAt(p[:r], f.curBlock, f.pos); err != nil {
			return total, fmt.Errorf("sion: %s: chunk read: %w", f.name, err)
		}
		f.pos += r
		total += int(r)
		p = p[r:]
	}
	if total == 0 && len(p) > 0 {
		return 0, io.EOF
	}
	return total, nil
}

// ReadSynthetic consumes n logical bytes without materializing them,
// returning the count actually consumed (benchmark path). It bypasses the
// read-ahead stage by design: populating a cache with discarded bytes
// would charge the fetch twice, and the stage (keyed by absolute chunk
// positions) stays valid regardless of where the cursor lands.
func (f *File) ReadSynthetic(n int64) (int64, error) {
	if err := f.checkOpen(ReadMode); err != nil {
		return 0, err
	}
	var total int64
	for n > 0 {
		if f.curBlock >= len(f.readBytes) {
			break
		}
		avail := f.readBytes[f.curBlock] - f.pos
		if avail == 0 {
			f.curBlock++
			f.pos = 0
			continue
		}
		r := n
		if r > avail {
			r = avail
		}
		// In collective read mode the data was already fetched (and
		// metered) by the collector; consuming it is a memory operation.
		if f.collRead == nil {
			if _, err := f.fh.ReadDiscardAt(r, f.dataOff()+f.pos); err != nil {
				return total, err
			}
		}
		f.pos += r
		total += r
		n -= r
	}
	return total, nil
}

// EOF reports whether the task's logical file is exhausted (sion_feof).
// Like sion_feof, it advances the cursor to the next non-empty chunk when
// the current one is used up, so a subsequent BytesAvailInChunk reports
// the new chunk's content (paper Listing 2's read loop).
func (f *File) EOF() bool {
	if f.mode != ReadMode {
		return false
	}
	for f.curBlock < len(f.readBytes) {
		if f.pos < f.readBytes[f.curBlock] {
			return false
		}
		f.curBlock++
		f.pos = 0
	}
	return true
}

// Seek positions the read cursor at (block, pos) within this task's
// logical file.
func (f *File) Seek(block int, pos int64) error {
	if err := f.checkOpen(ReadMode); err != nil {
		return err
	}
	if block < 0 || block >= len(f.readBytes) || pos < 0 || pos > f.readBytes[block] {
		return fmt.Errorf("sion: %s: Seek(%d,%d) outside recorded data", f.name, block, pos)
	}
	f.curBlock, f.pos = block, pos
	return nil
}

// --- Flush ------------------------------------------------------------------

// Flush forces written data toward the file system and surfaces deferred
// errors. Direct-mode handles sync the physical file. Asynchronous
// collective handles ship the member's partial staging buffer to its
// collector and, on a collector, report any background write error seen
// so far (the definitive status arrives at Close). Synchronous collective
// handles are a no-op: their data moves at Close by design.
func (f *File) Flush() error {
	if err := f.checkOpen(WriteMode); err != nil {
		return err
	}
	if f.collectiveEnabled() {
		if err := f.collFlush(); err != nil {
			return err
		}
		// A collector additionally publishes watermarks for the member
		// data its flusher has applied so far (no-op without Watermarks).
		return f.collCommitWatermarks(false)
	}
	if err := f.stageFlush(); err != nil {
		return err
	}
	if err := f.fh.Sync(); err != nil {
		return err
	}
	// Commit ordering: the data sync above precedes the watermark cells,
	// which precede the sidecar sync inside wmCommitProgress.
	return f.wmCommitProgress(false)
}

// --- Close ------------------------------------------------------------------

// Close is collective in parallel mode (sion_parclose_mpi): in write mode
// the local master gathers every task's per-block byte counts and writes
// metablock 2 plus the trailer (paper §3.1: "the close operation is again
// collective to avoid the inefficiency of having all tasks write to the
// metadata block concurrently").
func (f *File) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	var firstErr error
	if f.mode == WriteMode && f.collectiveEnabled() {
		// Ship buffered data to the collectors, which write it.
		if err := f.collClose(); err != nil {
			firstErr = err
		}
		if err := f.collCommitWatermarks(true); err != nil && firstErr == nil {
			firstErr = err
		}
	} else if f.mode == WriteMode {
		if err := f.stageFlush(); err != nil {
			firstErr = err
		}
		f.blockBytes[f.curBlock] = f.pos
		if err := f.sealBlock(f.curBlock, f.pos); err != nil && firstErr == nil {
			firstErr = err
		}
		if f.wm != nil {
			// Final sealed commit: data durable first, then the cells.
			if err := f.fh.Sync(); err != nil && firstErr == nil {
				firstErr = err
			}
			if err := f.wmCommitProgress(true); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	f.dropStaging()
	if f.lcomm == nil { // serial OpenRank or mapped rank handle
		if f.fhShared {
			return firstErr // the owning container closes the physical file
		}
		return closeKeep(f.fh, firstErr)
	}
	if f.mode == WriteMode {
		all := f.lcomm.GatherInt64Slice(0, f.blockBytes)
		if f.lcomm.Rank() == 0 {
			m2 := &meta2{BlockBytes: all}
			maxBlocks := 0
			for _, bb := range all {
				if len(bb) > maxBlocks {
					maxBlocks = len(bb)
				}
			}
			at := f.geo.start + f.geo.stride*int64(maxBlocks)
			if _, err := writeTail(f.fh, m2, at); err != nil && firstErr == nil {
				firstErr = err
			}
			if err := f.fh.Sync(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if f.wm != nil {
		if err := f.wm.close(); err != nil && firstErr == nil {
			firstErr = err
		}
		f.wm = nil
	}
	// Collective completion (both modes), plus a global barrier in write
	// mode matching sion_parclose_mpi's semantics: no task returns from a
	// write-mode Close until every physical file's data and metadata are
	// complete, so a subsequent read ParOpen (which starts at file 0's
	// header, wherever the caller's own data lives) can never observe a
	// half-written multifile. Read-mode Close stays file-local: it writes
	// nothing, and a global barrier there would hang groups whose peers
	// failed their open and hold no handle to close.
	f.lcomm.Barrier()
	if f.mode == WriteMode && f.comm != nil {
		f.comm.Barrier()
	}
	return closeKeep(f.fh, firstErr)
}

// closeKeep closes fh (nil for collective group members, which never open
// the physical file) keeping the first error.
func closeKeep(fh fsio.File, firstErr error) error {
	if fh == nil {
		return firstErr
	}
	if err := fh.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
