package sion

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"time"

	"repro/internal/fsio"
	"repro/internal/mpi"
	"repro/internal/resil"
	"repro/internal/simfs"
)

// bufSizeChoices are the staging-buffer classes the property test draws
// from: unbuffered, a tiny odd size (forces sub-block flushes), the
// auto-tuned size, and one far larger than any chunk.
func bufSizeChoices(rng *rand.Rand) int64 {
	switch rng.Intn(4) {
	case 0:
		return 0
	case 1:
		return int64(1 + rng.Intn(48)) // tiny
	case 2:
		return BufferAuto
	default:
		return 1 << 20 // huge
	}
}

// TestPropertyRoundTripModes is a property-style test over random
// configurations: for random task counts, physical-file counts, chunk
// sizes, mappings, and staging-buffer sizes, the direct,
// buffered-direct, synchronous-collective, and async-collective write
// paths must produce byte-identical multifiles (with Flush interleaved
// into the buffered writes), and direct, buffered (with Seek
// interleaving), and collective reads must return exactly the written
// payloads (sequentially and via ReadLogicalAt). A final mapped-reopen
// phase rescales the reader side: a random M ≠ N (including M = 1 and
// M > N) reopens the multifile through ParOpenMapped — balanced or with a
// random explicit partition, direct or collective, with random read
// buffering — and every writer rank's bytes must be recovered exactly
// once across the M readers, Seek interleaving included.
func TestPropertyRoundTripModes(t *testing.T) {
	rng := rand.New(rand.NewSource(20260730))
	maps := []struct {
		name string
		fn   MapFunc
	}{
		{"contig", ContiguousMap},
		{"rr", RoundRobinMap},
	}
	for iter := 0; iter < 12; iter++ {
		n := 2 + rng.Intn(9)      // 2..10 tasks
		nfiles := 1 + rng.Intn(3) // 1..3 physical files
		if nfiles > n {
			nfiles = n
		}
		chunk := int64(48 + rng.Intn(500))
		fsblk := int64(64 << rng.Intn(3)) // 64, 128, 256
		group := 2 + rng.Intn(n)          // may exceed a file's task count
		if rng.Intn(4) == 0 {
			group = CollectorAuto
		}
		flush := int64(0)
		if rng.Intn(2) == 0 {
			flush = int64(32 + rng.Intn(256))
		}
		bufSize := bufSizeChoices(rng)
		readBuf := bufSizeChoices(rng)
		m := maps[rng.Intn(len(maps))]

		// Per-rank payload sizes: empty, sub-chunk, multi-chunk, and
		// exact multiples of the capacity all occur.
		capacity := alignUp(chunk, fsblk)
		sizes := make([]int, n)
		for r := range sizes {
			switch rng.Intn(5) {
			case 0:
				sizes[r] = 0
			case 1:
				sizes[r] = int(capacity) * (1 + rng.Intn(3)) // exact multiple
			default:
				sizes[r] = rng.Intn(3 * int(capacity))
			}
		}

		name := fmt.Sprintf("iter%d n=%d files=%d chunk=%d fsblk=%d g=%d q=%d buf=%d rbuf=%d map=%s",
			iter, n, nfiles, chunk, fsblk, group, flush, bufSize, readBuf, m.name)
		t.Run(name, func(t *testing.T) {
			fsys := fsio.NewOS(t.TempDir())
			write := func(file string, g int, async bool, buf int64) {
				mpi.Run(n, func(c *mpi.Comm) {
					f, err := ParOpen(c, fsys, file, WriteMode, &Options{
						ChunkSize: chunk, FSBlockSize: fsblk, NFiles: nfiles,
						Mapping: m.fn, CollectorGroup: g,
						AsyncCollective: async, AsyncFlushBytes: flush,
						BufferSize: buf,
					})
					if err != nil {
						t.Error(err)
						return
					}
					payload := rankPayload(c.Rank(), sizes[c.Rank()])
					// Write in randomly sized pieces (deterministic per rank),
					// with Flush interleaved so partial staging buffers hit
					// the file mid-stream.
					prng := rand.New(rand.NewSource(int64(1000*iter + c.Rank())))
					for off := 0; off < len(payload); {
						end := off + 1 + prng.Intn(2*int(chunk))
						if end > len(payload) {
							end = len(payload)
						}
						if _, err := f.Write(payload[off:end]); err != nil {
							t.Error(err)
							return
						}
						if prng.Intn(3) == 0 {
							if err := f.Flush(); err != nil {
								t.Error(err)
								return
							}
						}
						off = end
					}
					if err := f.Close(); err != nil {
						t.Error(err)
					}
				})
			}
			write("direct.sion", 0, false, 0)
			write("buffered.sion", 0, false, bufSize)
			write("coll.sion", group, false, 0)
			write("async.sion", group, true, 0)
			for k := 0; k < nfiles; k++ {
				a := fileName("direct.sion", k)
				mustEqualFiles(t, fsys, a, fileName("buffered.sion", k))
				mustEqualFiles(t, fsys, a, fileName("coll.sion", k))
				mustEqualFiles(t, fsys, a, fileName("async.sion", k))
			}
			if err := Verify(fsys, "async.sion"); err != nil {
				t.Fatal(err)
			}

			// Read everything back: direct, buffered (read-ahead), and
			// collective.
			modes := []struct {
				rg  int
				buf int64
			}{{0, 0}, {0, readBuf}, {group, 0}}
			for _, mode := range modes {
				rg, rbuf := mode.rg, mode.buf
				mpi.Run(n, func(c *mpi.Comm) {
					var ropts *Options
					if rg != 0 {
						ropts = &Options{CollectorGroup: rg}
					} else if rbuf != 0 {
						ropts = &Options{BufferSize: rbuf}
					}
					r, err := ParOpen(c, fsys, "async.sion", ReadMode, ropts)
					if err != nil {
						t.Error(err)
						return
					}
					defer r.Close()
					payload := rankPayload(c.Rank(), sizes[c.Rank()])
					if got := r.LogicalSize(); got != int64(len(payload)) {
						t.Errorf("rank %d: LogicalSize %d, want %d", c.Rank(), got, len(payload))
					}
					got := make([]byte, len(payload))
					if len(got) > 0 {
						if _, err := io.ReadFull(r, got); err != nil {
							t.Errorf("rank %d: sequential read: %v", c.Rank(), err)
						}
					}
					if !bytes.Equal(got, payload) {
						t.Errorf("rank %d: payload mismatch (group %d)", c.Rank(), rg)
					}
					// Random-access probes.
					prng := rand.New(rand.NewSource(int64(7000*iter + c.Rank())))
					for p := 0; p < 4 && len(payload) > 0; p++ {
						off := prng.Intn(len(payload))
						ln := 1 + prng.Intn(len(payload)-off)
						probe := make([]byte, ln)
						if _, err := r.ReadLogicalAt(probe, int64(off)); err != nil && err != io.EOF {
							t.Errorf("rank %d: ReadLogicalAt(%d,%d): %v", c.Rank(), off, ln, err)
						} else if !bytes.Equal(probe, payload[off:off+ln]) {
							t.Errorf("rank %d: ReadLogicalAt(%d,%d) mismatch", c.Rank(), off, ln)
						}
					}
					// Seek interleaving: hop the cursor to random recorded
					// positions and re-read sequentially from there; the
					// read-ahead cache must stay coherent across hops. (The
					// same hops run below on the mapped rank handles.)
					for p := 0; p < 3 && len(payload) > 0; p++ {
						loff := prng.Intn(len(payload))
						block, pos, rest := 0, int64(loff), int64(0)
						for b := 0; b < r.Blocks(); b++ {
							if err := r.Seek(b, 0); err != nil {
								t.Errorf("rank %d: Seek(%d,0): %v", c.Rank(), b, err)
								return
							}
							if avail := r.BytesAvailInChunk(); pos < avail {
								block, rest = b, avail-pos
								break
							} else {
								pos -= avail
							}
						}
						if err := r.Seek(block, pos); err != nil {
							t.Errorf("rank %d: Seek(%d,%d): %v", c.Rank(), block, pos, err)
							return
						}
						ln := 1 + prng.Intn(int(rest))
						span := make([]byte, ln)
						if _, err := io.ReadFull(r, span); err != nil {
							t.Errorf("rank %d: post-Seek read: %v", c.Rank(), err)
						} else if !bytes.Equal(span, payload[loff:loff+ln]) {
							t.Errorf("rank %d: post-Seek read mismatch at %d+%d", c.Rank(), loff, ln)
						}
					}
				})
			}

			// Mapped reopen with a rescaled reader count M ≠ N.
			mOpts := []int{1, n / 2, n - 1, n, n + 1, 2*n + 3}
			M := mOpts[rng.Intn(len(mOpts))]
			if M < 1 {
				M = 1
			}
			explicit := rng.Intn(2) == 0
			var pieces [][]int
			if explicit {
				// Random partition: every rank assigned to a random reader
				// (non-contiguous sets, empty sets allowed).
				pieces = make([][]int, M)
				for _, g := range rng.Perm(n) {
					r := rng.Intn(M)
					pieces[r] = append(pieces[r], g)
				}
			}
			mGroup := 0
			if rng.Intn(2) == 0 {
				mGroup = 2 + rng.Intn(4)
			}
			mBuf := bufSizeChoices(rng)
			recovered := make([][]byte, n) // disjoint ownership: one writer per slot
			ownerOf := make([]int, n)
			for g := range ownerOf {
				ownerOf[g] = -1
			}
			mpi.Run(M, func(c *mpi.Comm) {
				var ropts *Options
				if mGroup != 0 {
					ropts = &Options{CollectorGroup: mGroup}
				} else if mBuf != 0 {
					ropts = &Options{BufferSize: mBuf}
				}
				owned := []int(nil)
				if explicit {
					owned = pieces[c.Rank()]
					if owned == nil {
						owned = []int{}
					}
				}
				mf, err := ParOpenMapped(c, fsys, "async.sion", ReadMode, owned, ropts)
				if err != nil {
					t.Errorf("reader %d/%d: %v", c.Rank(), M, err)
					return
				}
				defer mf.Close()
				if mf.NTasks() != n {
					t.Errorf("mapped NTasks = %d, want %d", mf.NTasks(), n)
				}
				prng := rand.New(rand.NewSource(int64(9000*iter + c.Rank())))
				for _, g := range mf.OwnedRanks() {
					h, err := mf.Rank(g)
					if err != nil {
						t.Error(err)
						continue
					}
					payload := rankPayload(g, sizes[g])
					got := make([]byte, len(payload))
					if len(got) > 0 {
						if _, err := io.ReadFull(h, got); err != nil {
							t.Errorf("reader %d rank %d: %v", c.Rank(), g, err)
							continue
						}
					}
					recovered[g] = got
					ownerOf[g] = c.Rank()
					if !h.EOF() {
						t.Errorf("reader %d rank %d: EOF not reached", c.Rank(), g)
					}
					// Seek interleaving on the mapped handle.
					for p := 0; p < 2 && len(payload) > 0; p++ {
						loff := prng.Intn(len(payload))
						block, pos, rest := 0, int64(loff), int64(0)
						for b := 0; b < h.Blocks(); b++ {
							if err := h.Seek(b, 0); err != nil {
								t.Errorf("reader %d rank %d: Seek(%d,0): %v", c.Rank(), g, b, err)
								return
							}
							if avail := h.BytesAvailInChunk(); pos < avail {
								block, rest = b, avail-pos
								break
							} else {
								pos -= avail
							}
						}
						if err := h.Seek(block, pos); err != nil {
							t.Errorf("reader %d rank %d: Seek(%d,%d): %v", c.Rank(), g, block, pos, err)
							return
						}
						ln := 1 + prng.Intn(int(rest))
						span := make([]byte, ln)
						if _, err := io.ReadFull(h, span); err != nil {
							t.Errorf("reader %d rank %d: post-Seek read: %v", c.Rank(), g, err)
						} else if !bytes.Equal(span, payload[loff:loff+ln]) {
							t.Errorf("reader %d rank %d: post-Seek mismatch at %d+%d", c.Rank(), g, loff, ln)
						}
					}
				}
			})
			for g := 0; g < n; g++ {
				if ownerOf[g] < 0 {
					t.Errorf("mapped reopen (M=%d explicit=%v): rank %d recovered by no reader", M, explicit, g)
					continue
				}
				if !bytes.Equal(recovered[g], rankPayload(g, sizes[g])) {
					t.Errorf("mapped reopen (M=%d explicit=%v): rank %d bytes differ", M, explicit, g)
				}
			}
		})
	}
}

// TestPropertyLiveTail extends the round-trip property to live-tail
// interleavings: writers with Options.Watermarks flush at random points
// and probe their own stream through Follow after every flush. A direct
// writer's committed frontier must equal exactly the bytes flushed (never
// uncommitted bytes); a collective writer's must never exceed the bytes
// written; and in both cases every committed byte must match the payload
// prefix. After Close, Follow must load finalized and return the whole
// payload with io.EOF.
func TestPropertyLiveTail(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for iter := 0; iter < 8; iter++ {
		n := 2 + rng.Intn(5)
		nfiles := 1 + rng.Intn(2)
		if nfiles > n {
			nfiles = n
		}
		chunk := int64(64 + rng.Intn(700))
		fsblk := int64(64 << rng.Intn(3))
		bufSize := bufSizeChoices(rng)
		group := 0
		async := false
		if rng.Intn(3) == 0 { // some iterations go collective
			group = 2 + rng.Intn(n)
			async = rng.Intn(2) == 0
			bufSize = 0
		}
		sizes := make([]int, n)
		for r := range sizes {
			sizes[r] = rng.Intn(3 * int(alignUp(chunk, fsblk)))
		}
		pieceSeed := rng.Int63()

		name := fmt.Sprintf("iter%d n=%d files=%d chunk=%d fsblk=%d g=%d async=%v buf=%d",
			iter, n, nfiles, chunk, fsblk, group, async, bufSize)
		t.Run(name, func(t *testing.T) {
			fsys := fsio.NewOS(t.TempDir())
			mpi.Run(n, func(c *mpi.Comm) {
				f, err := ParOpen(c, fsys, "live.sion", WriteMode, &Options{
					ChunkSize: chunk, FSBlockSize: fsblk, NFiles: nfiles,
					CollectorGroup: group, AsyncCollective: async,
					BufferSize: bufSize, Watermarks: true,
				})
				if err != nil {
					t.Error(err)
					return
				}
				// ParOpen only synchronizes within per-file sub-communicators,
				// but Follow opens every physical file: barrier so all
				// segments exist before any rank starts probing.
				c.Barrier()
				payload := rankPayload(c.Rank(), sizes[c.Rank()])
				prng := rand.New(rand.NewSource(pieceSeed + int64(c.Rank())))
				probe := func(flushed int64, written int64) {
					tr, err := Follow(fsys, "live.sion", c.Rank())
					if err != nil {
						t.Errorf("rank %d: Follow: %v", c.Rank(), err)
						return
					}
					defer tr.Close()
					committed := tr.Committed()
					if group == 0 {
						if committed != flushed {
							t.Errorf("rank %d: committed %d, want exactly the %d flushed bytes",
								c.Rank(), committed, flushed)
						}
					} else if committed > written {
						t.Errorf("rank %d: committed %d exceeds %d written bytes",
							c.Rank(), committed, written)
					}
					got := make([]byte, committed)
					for off := 0; off < len(got); {
						m, err := tr.Read(got[off:])
						if err != nil {
							t.Errorf("rank %d: tail read: %v", c.Rank(), err)
							return
						}
						off += m
					}
					if !bytes.Equal(got, payload[:committed]) {
						t.Errorf("rank %d: committed bytes differ from payload prefix", c.Rank())
					}
					// At the frontier a live multifile yields ErrAgain.
					if n2, err := tr.Read(make([]byte, 1)); n2 != 0 || err != ErrAgain {
						t.Errorf("rank %d: at frontier got (%d, %v), want (0, ErrAgain)", c.Rank(), n2, err)
					}
				}
				var flushed int64
				for off := 0; off < len(payload); {
					end := off + 1 + prng.Intn(2*int(chunk))
					if end > len(payload) {
						end = len(payload)
					}
					if _, err := f.Write(payload[off:end]); err != nil {
						t.Error(err)
						return
					}
					off = end
					if prng.Intn(2) == 0 {
						if err := f.Flush(); err != nil {
							t.Error(err)
							return
						}
						flushed = int64(off)
						probe(flushed, int64(off))
					} else if group == 0 && bufSize == 0 && prng.Intn(2) == 0 {
						// Between flushes nothing new may become visible.
						probe(flushed, int64(off))
					}
				}
				if err := f.Close(); err != nil {
					t.Error(err)
				}
			})
			// After Close every rank reads back in full, finalized.
			for r := 0; r < n; r++ {
				tr, err := Follow(fsys, "live.sion", r)
				if err != nil {
					t.Fatalf("rank %d: Follow after close: %v", r, err)
				}
				if !tr.Finalized() {
					t.Fatalf("rank %d: not finalized after Close", r)
				}
				got, err := io.ReadAll(tr)
				if err != nil {
					t.Fatalf("rank %d: draining: %v", r, err)
				}
				if !bytes.Equal(got, rankPayload(r, sizes[r])) {
					t.Fatalf("rank %d: finalized bytes differ", r)
				}
				tr.Close()
			}
			if err := Verify(fsys, "live.sion"); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPropertyRoundTripObjStore runs the round-trip property through the
// simulated object-store backend (internal/simfs ObjStore with a tiny
// part size, so multi-part objects and staged copies occur at test
// scale): for random geometries, every write mode (unbuffered direct,
// buffered direct, synchronous collective, async collective) must
// produce byte-identical multifiles, and every read mode must return
// exactly the written payloads. A final zero-option cycle lets the
// capability descriptor pick the geometry (part-sized FS blocks,
// fanout files, BufferAuto staging) and checks logical identity — the
// physical layout legitimately differs from the explicit arms.
func TestPropertyRoundTripObjStore(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	prof := simfs.ObjProfile{
		PartBytes: 8192, MaxGetBytes: 16384, PreferredGetBytes: 8192, WriteFanout: 3,
	}
	for iter := 0; iter < 6; iter++ {
		n := 2 + rng.Intn(6)
		nfiles := 1 + rng.Intn(3)
		if nfiles > n {
			nfiles = n
		}
		chunk := int64(48 + rng.Intn(500))
		fsblk := int64(64 << rng.Intn(3))
		group := 2 + rng.Intn(n)
		bufSize := bufSizeChoices(rng)
		readBuf := bufSizeChoices(rng)
		sizes := make([]int, n)
		for r := range sizes {
			sizes[r] = rng.Intn(3 * int(alignUp(chunk, fsblk)))
		}

		name := fmt.Sprintf("iter%d n=%d files=%d chunk=%d fsblk=%d g=%d buf=%d rbuf=%d",
			iter, n, nfiles, chunk, fsblk, group, bufSize, readBuf)
		t.Run(name, func(t *testing.T) {
			obj := simfs.NewObjStore(prof)
			fsys := obj.Wrap(fsio.NewOS(t.TempDir()), nil)
			if caps := fsio.CapabilitiesOf(fsys); caps.PartSizeFloor != prof.PartBytes {
				t.Fatalf("backend descriptor lost: %+v", caps)
			}
			write := func(file string, g int, async bool, buf int64) {
				mpi.Run(n, func(c *mpi.Comm) {
					f, err := ParOpen(c, fsys, file, WriteMode, &Options{
						ChunkSize: chunk, FSBlockSize: fsblk, NFiles: nfiles,
						CollectorGroup: g, AsyncCollective: async, BufferSize: buf,
					})
					if err != nil {
						t.Error(err)
						return
					}
					payload := rankPayload(c.Rank(), sizes[c.Rank()])
					prng := rand.New(rand.NewSource(int64(3000*iter + c.Rank())))
					for off := 0; off < len(payload); {
						end := off + 1 + prng.Intn(2*int(chunk))
						if end > len(payload) {
							end = len(payload)
						}
						if _, err := f.Write(payload[off:end]); err != nil {
							t.Error(err)
							return
						}
						off = end
					}
					if err := f.Close(); err != nil {
						t.Error(err)
					}
				})
			}
			// BufferOff pins the first arm to genuinely unbuffered small
			// writes (BufferSize 0 would auto-upgrade to BufferAuto on
			// this backend); the others take whatever staging they get.
			write("direct.sion", 0, false, BufferOff)
			write("buffered.sion", 0, false, bufSize)
			write("coll.sion", group, false, 0)
			write("async.sion", group, true, 0)
			for k := 0; k < nfiles; k++ {
				a := fileName("direct.sion", k)
				mustEqualFiles(t, fsys, a, fileName("buffered.sion", k))
				mustEqualFiles(t, fsys, a, fileName("coll.sion", k))
				mustEqualFiles(t, fsys, a, fileName("async.sion", k))
			}
			if err := Verify(fsys, "async.sion"); err != nil {
				t.Fatal(err)
			}
			// Staged copies must actually have occurred somewhere in the
			// sweep when chunks landed part-misaligned — otherwise the
			// backend model degenerated to plain POSIX counting.
			if st := obj.Stats(); st.Puts == 0 || st.Gets == 0 {
				t.Fatalf("object-store ledger did not move: %+v", st)
			}
			modes := []struct {
				rg  int
				buf int64
			}{{0, BufferOff}, {0, readBuf}, {group, 0}}
			for _, mode := range modes {
				rg, rbuf := mode.rg, mode.buf
				mpi.Run(n, func(c *mpi.Comm) {
					var ropts *Options
					if rg != 0 {
						ropts = &Options{CollectorGroup: rg}
					} else {
						ropts = &Options{BufferSize: rbuf}
					}
					r, err := ParOpen(c, fsys, "async.sion", ReadMode, ropts)
					if err != nil {
						t.Error(err)
						return
					}
					defer r.Close()
					payload := rankPayload(c.Rank(), sizes[c.Rank()])
					got := make([]byte, len(payload))
					if len(got) > 0 {
						if _, err := io.ReadFull(r, got); err != nil {
							t.Errorf("rank %d: %v", c.Rank(), err)
							return
						}
					}
					if !bytes.Equal(got, payload) {
						t.Errorf("rank %d: payload mismatch (group %d buf %d)", c.Rank(), rg, rbuf)
					}
				})
			}
			// Zero-option cycle: the descriptor picks the geometry.
			mpi.Run(n, func(c *mpi.Comm) {
				f, err := ParOpen(c, fsys, "auto.sion", WriteMode, &Options{ChunkSize: chunk})
				if err != nil {
					t.Error(err)
					return
				}
				if got := f.FSBlockSize(); got != prof.PartBytes {
					t.Errorf("auto FSBlockSize = %d, want the part size %d", got, prof.PartBytes)
				}
				if want := min(n, int(prof.WriteFanout)); f.NumFiles() != want {
					t.Errorf("auto NFiles = %d, want the fanout %d", f.NumFiles(), want)
				}
				if _, err := f.Write(rankPayload(c.Rank(), sizes[c.Rank()])); err != nil {
					t.Error(err)
					return
				}
				if err := f.Close(); err != nil {
					t.Error(err)
				}
			})
			mpi.Run(n, func(c *mpi.Comm) {
				r, err := ParOpen(c, fsys, "auto.sion", ReadMode, nil)
				if err != nil {
					t.Error(err)
					return
				}
				defer r.Close()
				payload := rankPayload(c.Rank(), sizes[c.Rank()])
				got := make([]byte, len(payload))
				if len(got) > 0 {
					if _, err := io.ReadFull(r, got); err != nil {
						t.Errorf("rank %d: %v", c.Rank(), err)
						return
					}
				}
				if !bytes.Equal(got, payload) {
					t.Errorf("rank %d: auto-geometry payload mismatch", c.Rank())
				}
			})
		})
	}
}

// TestPropertyRoundTripTransientFaults layers the resilience stack under
// the round-trip property: the OS file system is wrapped in the seeded
// flaky-fault lab (random per-op transient EIO/EAGAIN rate) and then in
// the resil retry decorator, and full write/read cycles across the direct
// and collective paths must still converge to byte identity — the library
// code above fsio never sees a transient fault, only the policy layer
// does. Also pins the overhead guard: the retry counters move only when
// injection is on.
func TestPropertyRoundTripTransientFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for iter := 0; iter < 6; iter++ {
		n := 2 + rng.Intn(5)
		nfiles := 1 + rng.Intn(2)
		if nfiles > n {
			nfiles = n
		}
		chunk := int64(64 + rng.Intn(400))
		fsblk := int64(64 << rng.Intn(3))
		rate := 0.02 + 0.13*rng.Float64() // 2%..15% per-op fault rate
		group := 0
		if rng.Intn(3) == 0 {
			group = 2 + rng.Intn(n)
		}
		sizes := make([]int, n)
		for r := range sizes {
			sizes[r] = rng.Intn(3 * int(alignUp(chunk, fsblk)))
		}
		seed := uint64(rng.Int63())

		name := fmt.Sprintf("iter%d n=%d files=%d chunk=%d rate=%.3f g=%d",
			iter, n, nfiles, chunk, rate, group)
		t.Run(name, func(t *testing.T) {
			fl := simfs.NewFlaky(simfs.FlakyConfig{
				Seed: seed, ReadErrProb: rate, WriteErrProb: rate, MetaErrProb: rate,
			})
			var ctrs resil.Counters
			// 12 attempts: even at the 15% ceiling a give-up is a
			// ~1e-10-per-op event, so the property is deterministic in
			// practice while the budget stays bounded.
			budget := resil.Budget{MaxAttempts: 12, Seed: seed, Sleep: func(time.Duration) {}}
			fsys := resil.Wrap(fl.Wrap(fsio.NewOS(t.TempDir()), nil), budget, &ctrs)

			mpi.Run(n, func(c *mpi.Comm) {
				f, err := ParOpen(c, fsys, "flaky.sion", WriteMode, &Options{
					ChunkSize: chunk, FSBlockSize: fsblk, NFiles: nfiles,
					CollectorGroup: group,
				})
				if err != nil {
					t.Error(err)
					return
				}
				payload := rankPayload(c.Rank(), sizes[c.Rank()])
				if _, err := f.Write(payload); err != nil {
					t.Error(err)
					return
				}
				if err := f.Close(); err != nil {
					t.Error(err)
				}
			})
			if t.Failed() {
				return
			}
			if err := Verify(fsys, "flaky.sion"); err != nil {
				t.Fatalf("Verify under faults: %v", err)
			}
			mpi.Run(n, func(c *mpi.Comm) {
				r, err := ParOpen(c, fsys, "flaky.sion", ReadMode, nil)
				if err != nil {
					t.Error(err)
					return
				}
				defer r.Close()
				payload := rankPayload(c.Rank(), sizes[c.Rank()])
				got := make([]byte, len(payload))
				if len(got) > 0 {
					if _, err := io.ReadFull(r, got); err != nil {
						t.Errorf("rank %d: %v", c.Rank(), err)
						return
					}
				}
				if !bytes.Equal(got, payload) {
					t.Errorf("rank %d: bytes differ under fault rate %.3f", c.Rank(), rate)
				}
			})
			s := ctrs.Snapshot()
			if s.GiveUps != 0 {
				t.Fatalf("12-attempt budget gave up %d times at rate %.3f", s.GiveUps, rate)
			}
			if fl.Stats().Injected > 0 && s.Retries == 0 {
				t.Fatalf("faults injected (%d) but nothing retried", fl.Stats().Injected)
			}

			// Overhead guard: injection off → the same cycle must record
			// zero additional retries.
			fl.SetEnabled(false)
			before := ctrs.Snapshot().Retries
			mpi.Run(n, func(c *mpi.Comm) {
				r, err := ParOpen(c, fsys, "flaky.sion", ReadMode, nil)
				if err != nil {
					t.Error(err)
					return
				}
				defer r.Close()
				payload := rankPayload(c.Rank(), sizes[c.Rank()])
				got := make([]byte, len(payload))
				if len(got) > 0 {
					if _, err := io.ReadFull(r, got); err != nil {
						t.Errorf("rank %d: %v", c.Rank(), err)
					}
				}
			})
			if after := ctrs.Snapshot().Retries; after != before {
				t.Fatalf("injection off but retries moved: %d -> %d", before, after)
			}
		})
	}
}
