package sion

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"repro/internal/fsio"
	"repro/internal/mpi"
)

// TestPropertyRoundTripModes is a property-style test over random
// configurations: for random task counts, physical-file counts, chunk
// sizes, and mappings, the direct, synchronous-collective, and
// async-collective write paths must produce byte-identical multifiles,
// and both direct and collective reads must return exactly the written
// payloads (sequentially and via ReadLogicalAt).
func TestPropertyRoundTripModes(t *testing.T) {
	rng := rand.New(rand.NewSource(20260730))
	maps := []struct {
		name string
		fn   MapFunc
	}{
		{"contig", ContiguousMap},
		{"rr", RoundRobinMap},
	}
	for iter := 0; iter < 12; iter++ {
		n := 2 + rng.Intn(9)             // 2..10 tasks
		nfiles := 1 + rng.Intn(3)        // 1..3 physical files
		if nfiles > n {
			nfiles = n
		}
		chunk := int64(48 + rng.Intn(500))
		fsblk := int64(64 << rng.Intn(3)) // 64, 128, 256
		group := 2 + rng.Intn(n)          // may exceed a file's task count
		if rng.Intn(4) == 0 {
			group = CollectorAuto
		}
		flush := int64(0)
		if rng.Intn(2) == 0 {
			flush = int64(32 + rng.Intn(256))
		}
		m := maps[rng.Intn(len(maps))]

		// Per-rank payload sizes: empty, sub-chunk, multi-chunk, and
		// exact multiples of the capacity all occur.
		capacity := alignUp(chunk, fsblk)
		sizes := make([]int, n)
		for r := range sizes {
			switch rng.Intn(5) {
			case 0:
				sizes[r] = 0
			case 1:
				sizes[r] = int(capacity) * (1 + rng.Intn(3)) // exact multiple
			default:
				sizes[r] = rng.Intn(3 * int(capacity))
			}
		}

		name := fmt.Sprintf("iter%d n=%d files=%d chunk=%d fsblk=%d g=%d q=%d map=%s",
			iter, n, nfiles, chunk, fsblk, group, flush, m.name)
		t.Run(name, func(t *testing.T) {
			fsys := fsio.NewOS(t.TempDir())
			write := func(file string, g int, async bool) {
				mpi.Run(n, func(c *mpi.Comm) {
					f, err := ParOpen(c, fsys, file, WriteMode, &Options{
						ChunkSize: chunk, FSBlockSize: fsblk, NFiles: nfiles,
						Mapping: m.fn, CollectorGroup: g,
						AsyncCollective: async, AsyncFlushBytes: flush,
					})
					if err != nil {
						t.Error(err)
						return
					}
					payload := rankPayload(c.Rank(), sizes[c.Rank()])
					// Write in randomly sized pieces (deterministic per rank).
					prng := rand.New(rand.NewSource(int64(1000*iter + c.Rank())))
					for off := 0; off < len(payload); {
						end := off + 1 + prng.Intn(2*int(chunk))
						if end > len(payload) {
							end = len(payload)
						}
						if _, err := f.Write(payload[off:end]); err != nil {
							t.Error(err)
							return
						}
						off = end
					}
					if err := f.Close(); err != nil {
						t.Error(err)
					}
				})
			}
			write("direct.sion", 0, false)
			write("coll.sion", group, false)
			write("async.sion", group, true)
			for k := 0; k < nfiles; k++ {
				a := fileName("direct.sion", k)
				mustEqualFiles(t, fsys, a, fileName("coll.sion", k))
				mustEqualFiles(t, fsys, a, fileName("async.sion", k))
			}
			if err := Verify(fsys, "async.sion"); err != nil {
				t.Fatal(err)
			}

			// Read everything back, direct and collective.
			for _, rg := range []int{0, group} {
				rg := rg
				mpi.Run(n, func(c *mpi.Comm) {
					var ropts *Options
					if rg != 0 {
						ropts = &Options{CollectorGroup: rg}
					}
					r, err := ParOpen(c, fsys, "async.sion", ReadMode, ropts)
					if err != nil {
						t.Error(err)
						return
					}
					defer r.Close()
					payload := rankPayload(c.Rank(), sizes[c.Rank()])
					if got := r.LogicalSize(); got != int64(len(payload)) {
						t.Errorf("rank %d: LogicalSize %d, want %d", c.Rank(), got, len(payload))
					}
					got := make([]byte, len(payload))
					if len(got) > 0 {
						if _, err := io.ReadFull(r, got); err != nil {
							t.Errorf("rank %d: sequential read: %v", c.Rank(), err)
						}
					}
					if !bytes.Equal(got, payload) {
						t.Errorf("rank %d: payload mismatch (group %d)", c.Rank(), rg)
					}
					// Random-access probes.
					prng := rand.New(rand.NewSource(int64(7000*iter + c.Rank())))
					for p := 0; p < 4 && len(payload) > 0; p++ {
						off := prng.Intn(len(payload))
						ln := 1 + prng.Intn(len(payload)-off)
						probe := make([]byte, ln)
						if _, err := r.ReadLogicalAt(probe, int64(off)); err != nil && err != io.EOF {
							t.Errorf("rank %d: ReadLogicalAt(%d,%d): %v", c.Rank(), off, ln, err)
						} else if !bytes.Equal(probe, payload[off:off+ln]) {
							t.Errorf("rank %d: ReadLogicalAt(%d,%d) mismatch", c.Rank(), off, ln)
						}
					}
				})
			}
		})
	}
}
