package sion

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"repro/internal/fsio"
	"repro/internal/mpi"
	"repro/internal/simfs"
	"repro/internal/vtime"
)

// wmImage builds a sidecar file image for tests: header plus explicit
// cells, each (li, block, slot, seq, bytes, sealed).
type wmCellSpec struct {
	li, block, slot int
	seq             uint64
	bytes           int64
	sealed          bool
}

func wmImage(nlocal, filenum int, cells []wmCellSpec) []byte {
	end := int64(wmHeaderSize)
	for _, c := range cells {
		if o := wmCellOff(nlocal, c.li, c.block, c.slot) + wmCellSize; o > end {
			end = o
		}
	}
	buf := make([]byte, end)
	copy(buf, encodeWMHeader(nlocal, filenum))
	for _, c := range cells {
		copy(buf[wmCellOff(nlocal, c.li, c.block, c.slot):], encodeWMCell(c.seq, c.bytes, c.sealed))
	}
	return buf
}

// TestWatermarkReplay exercises the decode rules: newest valid slot wins,
// a torn slot falls back to its partner, an unsealed block is the open
// frontier, and a gap ends the rank.
func TestWatermarkReplay(t *testing.T) {
	img := wmImage(3, 0, []wmCellSpec{
		// rank 0: block 0 sealed, block 1 open at 300 (two commits, newest wins).
		{0, 0, 1, 1, 1024, true},
		{0, 1, 1, 1, 100, false},
		{0, 1, 0, 2, 300, false},
		// rank 1: block 0 committed twice; the newer slot is then torn —
		// recovery is the partner's 500, not failure.
		{1, 0, 1, 1, 500, false},
		{1, 0, 0, 2, 700, false},
		// rank 2: nothing committed.
	})
	// Tear rank 1's newest slot mid-cell.
	tornAt := wmCellOff(3, 1, 0, 0) + 9
	img[tornAt] ^= 0xff
	nl, fn, states, err := decodeWatermarks(img)
	if err != nil {
		t.Fatal(err)
	}
	if nl != 3 || fn != 0 {
		t.Fatalf("header (%d, %d), want (3, 0)", nl, fn)
	}
	want := [][]TailCommit{
		{{Bytes: 1024, Sealed: true}, {Bytes: 300, Sealed: false}},
		{{Bytes: 500, Sealed: false}},
		nil,
	}
	for li, w := range want {
		if len(states[li]) != len(w) {
			t.Fatalf("rank %d: %d blocks, want %d (%+v)", li, len(states[li]), len(w), states[li])
		}
		for b, c := range w {
			if states[li][b] != c {
				t.Fatalf("rank %d block %d: %+v, want %+v", li, b, states[li][b], c)
			}
		}
	}
	if got := wmCommitted(states[0]); got != 1324 {
		t.Fatalf("rank 0 committed %d, want 1324", got)
	}

	// Structural damage is ErrCorrupt, unlike torn cells.
	bad := append([]byte(nil), img...)
	bad[0] = 'X'
	if _, _, _, err := decodeWatermarks(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestWatermarkTornFinalCommitRepair crashes a multifile write (no Close,
// so no metablock 2) and tears the newest slot of one rank's final commit
// record. Repair must recover that rank to its previous durable watermark
// — not fail the rank — and the result must pass Verify and read back
// byte-identically.
func TestWatermarkTornFinalCommitRepair(t *testing.T) {
	const n, chunk, fsblk = 3, int64(1 << 12), int64(256)
	fsys := fsio.NewOS(t.TempDir())
	payloads := make([][]byte, n)
	for r := range payloads {
		payloads[r] = rankPayload(r, 900)
	}
	mpi.Run(n, func(c *mpi.Comm) {
		f, err := ParOpen(c, fsys, "crash.sion", WriteMode, &Options{
			ChunkSize: chunk, FSBlockSize: fsblk, Watermarks: true,
		})
		if err != nil {
			t.Error(err)
			return
		}
		// Three flushes → three commits of the open block: 300, 600, 900.
		for i := 0; i < 3; i++ {
			if _, err := f.Write(payloads[c.Rank()][300*i : 300*(i+1)]); err != nil {
				t.Error(err)
			}
			if err := f.Flush(); err != nil {
				t.Error(err)
			}
		}
		// Crash: no Close, so no trailer and no metablock 2.
	})

	// Tear rank 0's newest commit slot (seq 3 lives in slot 1).
	wfh, err := fsys.OpenRW(wmName("crash.sion", 0))
	if err != nil {
		t.Fatal(err)
	}
	slotOff := wmCellOff(n, 0, 0, 1)
	probe := make([]byte, wmCellSize)
	if _, err := wfh.ReadAt(probe, slotOff); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if seq, bytes, _, ok := parseWMCell(probe); !ok || seq != 3 || bytes != 900 {
		t.Fatalf("expected seq-3 commit of 900 bytes in slot 1, got seq=%d bytes=%d ok=%v", seq, bytes, ok)
	}
	if _, err := wfh.WriteAt([]byte{0xde, 0xad}, slotOff+10); err != nil {
		t.Fatal(err)
	}
	wfh.Close()

	if _, err := Open(fsys, "crash.sion"); err == nil {
		t.Fatal("unclosed multifile should not open before Repair")
	}
	recovered, err := Repair(fsys, "crash.sion")
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if recovered == 0 {
		t.Fatal("Repair recovered nothing")
	}
	if err := Verify(fsys, "crash.sion"); err != nil {
		t.Fatalf("Verify after Repair: %v", err)
	}
	sf, err := Open(fsys, "crash.sion")
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	for r := 0; r < n; r++ {
		want := payloads[r]
		if r == 0 {
			want = want[:600] // recovered to the partner slot's watermark
		}
		if got := sf.RankBytes(r); got != int64(len(want)) {
			t.Fatalf("rank %d: %d bytes after repair, want %d", r, got, len(want))
		}
		if err := sf.Seek(r, 0, 0); err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(sf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("rank %d: recovered bytes differ", r)
		}
	}
}

// TestWatermarkCrashRecovery runs many simulated trials on a volatile
// simfs with a failure injected at a random operation count: writers
// flush at random points and die; the surviving (durable) state must
// decode, every committed byte must match the payload prefix (zero torn
// records), the committed total must be one the writer actually attempted
// to commit, and Repair+Verify must accept the remains.
func TestWatermarkCrashRecovery(t *testing.T) {
	const n, chunk, fsblk = 3, int64(600), int64(256)
	rng := rand.New(rand.NewSource(20260808))
	trials, ok := 20, 0
	for trial := 0; trial < trials; trial++ {
		fs := simfs.New(simfs.Jugene())
		fs.SetVolatileWrites(true)
		fs.FailWritesAfter(int64(3 + rng.Intn(220)))

		payloads := make([][]byte, n)
		for r := range payloads {
			payloads[r] = rankPayload(1000*trial+r, 400+rng.Intn(1200))
		}
		pieceSeed := rng.Int63()
		opened := make([]bool, n)
		attempts := make([][]int64, n) // totals at each Flush call
		e := vtime.NewEngine()
		mpi.RunSim(e, n, mpi.DefaultCost, func(c *mpi.Comm) {
			f, err := ParOpen(c, fs.View(c.Rank(), c.Proc()), "t.sion", WriteMode, &Options{
				ChunkSize: chunk, FSBlockSize: fsblk, Watermarks: true,
			})
			if err != nil {
				return // injected failure during open — trial skipped below
			}
			opened[c.Rank()] = true
			prng := rand.New(rand.NewSource(pieceSeed + int64(c.Rank())))
			payload := payloads[c.Rank()]
			var written int64
			for off := 0; off < len(payload); {
				end := off + 1 + prng.Intn(500)
				if end > len(payload) {
					end = len(payload)
				}
				if _, err := f.Write(payload[off:end]); err != nil {
					return // died mid-write
				}
				written = int64(end)
				if prng.Intn(2) == 0 {
					attempts[c.Rank()] = append(attempts[c.Rank()], written)
					if err := f.Flush(); err != nil {
						return // died mid-commit
					}
				}
				off = end
			}
			attempts[c.Rank()] = append(attempts[c.Rank()], written)
			f.Flush()
			// Crash before Close: no trailer is ever written.
		})
		allOpened := true
		for _, o := range opened {
			allOpened = allOpened && o
		}
		if !allOpened {
			continue // open died under injection; nothing to check
		}
		fs.Crash() // drop every unsynced write

		fsys := fs.View(0, nil)
		for r := 0; r < n; r++ {
			tr, err := Follow(fsys, "t.sion", r)
			if err != nil {
				t.Fatalf("trial %d: Follow(%d): %v", trial, r, err)
			}
			committed := tr.Committed()
			valid := committed == 0
			for _, a := range attempts[r] {
				valid = valid || committed == a
			}
			if !valid {
				t.Fatalf("trial %d rank %d: committed %d not among attempted commits %v",
					trial, r, committed, attempts[r])
			}
			got := make([]byte, committed)
			for off := 0; off < len(got); {
				m, err := tr.Read(got[off:])
				if err != nil {
					t.Fatalf("trial %d rank %d: reading committed bytes: %v", trial, r, err)
				}
				off += m
			}
			if !bytes.Equal(got, payloads[r][:committed]) {
				t.Fatalf("trial %d rank %d: committed bytes torn", trial, r)
			}
			tr.Close()
		}
		if _, err := Repair(fsys, "t.sion"); err != nil {
			t.Fatalf("trial %d: Repair: %v", trial, err)
		}
		if err := Verify(fsys, "t.sion"); err != nil {
			t.Fatalf("trial %d: Verify: %v", trial, err)
		}
		ok++
	}
	if ok == 0 {
		t.Fatal("every trial died before ParOpen completed — injection range too tight")
	}
	t.Logf("checked %d/%d trials (others died during open)", ok, trials)
}

// FuzzDecodeWatermark fuzzes the sidecar codec the same way
// FuzzDecodeMapping fuzzes the mapping codec: no input may panic, and any
// accepted input must yield in-bounds state.
func FuzzDecodeWatermark(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeWMHeader(2, 0))
	f.Add(wmImage(2, 0, []wmCellSpec{
		{0, 0, 1, 1, 256, true},
		{0, 1, 1, 1, 10, false},
		{1, 0, 1, 1, 256, false},
	}))
	torn := wmImage(1, 3, []wmCellSpec{{0, 0, 1, 1, 99, true}})
	torn[wmHeaderSize+wmCellSize+5] ^= 0x40
	f.Add(torn)
	badMagic := encodeWMHeader(1, 0)
	badMagic[3] = '?'
	f.Add(badMagic)
	hugeTasks := encodeWMHeader(1, 0)
	le().PutUint32(hugeTasks[12:], 1<<31-1)
	f.Add(hugeTasks)
	f.Add(wmImage(1, 0, nil)[:wmHeaderSize-1]) // truncated header
	f.Fuzz(func(t *testing.T, data []byte) {
		nl, fn, states, err := decodeWatermarks(data)
		if err != nil {
			return
		}
		if nl <= 0 || nl > maxTasks || fn < 0 || fn >= maxPhysFiles {
			t.Fatalf("accepted out-of-range header (%d, %d)", nl, fn)
		}
		if len(states) != nl {
			t.Fatalf("%d rank states for %d ranks", len(states), nl)
		}
		for li, blocks := range states {
			for b, c := range blocks {
				if c.Bytes < 0 || c.Bytes > maxChunkSize {
					t.Fatalf("rank %d block %d: implausible committed bytes %d", li, b, c.Bytes)
				}
				if !c.Sealed && b != len(blocks)-1 {
					t.Fatalf("rank %d: unsealed block %d is not the frontier", li, b)
				}
			}
		}
	})
}
