package sion

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/fsio"
)

// Dump prints the multifile metadata in human-readable form (the paper's
// §3.3 "dump" utility): global layout, per-physical-file geometry, and the
// per-task chunk table.
func Dump(fsys fsio.FileSystem, name string, w io.Writer) error {
	sf, err := Open(fsys, name)
	if err != nil {
		return err
	}
	defer sf.Close()
	loc := sf.Locations()
	fmt.Fprintf(w, "multifile:     %s\n", name)
	fmt.Fprintf(w, "tasks:         %d\n", loc.NTasks)
	fmt.Fprintf(w, "physical files:%d\n", loc.NFiles)
	fmt.Fprintf(w, "fs block size: %d\n", loc.FSBlockSize)
	fmt.Fprintf(w, "chunk headers: %v\n", sf.flags&flagChunkHeaders != 0)
	for k, pf := range sf.files {
		fmt.Fprintf(w, "segment %d: %s  local tasks %d  block stride %d  data start %d\n",
			k, fileName(name, k), pf.h.NTasksLocal, pf.geo.stride, pf.geo.start)
	}
	fmt.Fprintf(w, "%6s %6s %6s %12s %8s %14s\n", "task", "file", "lrank", "chunksize", "blocks", "bytes")
	for r := 0; r < loc.NTasks; r++ {
		var total int64
		for _, b := range loc.BlockBytes[r] {
			total += b
		}
		fmt.Fprintf(w, "%6d %6d %6d %12d %8d %14d\n",
			r, loc.Placement[r].File, loc.Placement[r].LocalRank,
			loc.ChunkSizes[r], len(loc.BlockBytes[r]), total)
	}
	return nil
}

// DumpMapping prints a multifile's global rank→(physical file, local
// rank) mapping table (siondump -mapping). It reads only file 0's header
// — the mapping bytes pass through the same hardened decodeMapping codec
// (format.go) the mapped open paths trust — so it works on multifiles
// whose other segments are missing or damaged.
func DumpMapping(fsys fsio.FileSystem, name string, w io.Writer) error {
	fh, err := fsys.Open(fileName(name, 0))
	if err != nil {
		return fmt.Errorf("sion: DumpMapping %s: %w", name, err)
	}
	h, err := parseHeader(fh)
	fh.Close()
	if err != nil {
		return fmt.Errorf("sion: DumpMapping %s: %w", name, err)
	}
	fmt.Fprintf(w, "multifile:     %s\n", name)
	fmt.Fprintf(w, "tasks:         %d\n", h.NTasksGlobal)
	fmt.Fprintf(w, "physical files:%d\n", h.NFiles)
	perFile := make([]int, h.NFiles)
	fmt.Fprintf(w, "%6s %6s %6s  %s\n", "task", "file", "lrank", "segment")
	for r, loc := range h.Mapping {
		perFile[loc.File]++
		fmt.Fprintf(w, "%6d %6d %6d  %s\n", r, loc.File, loc.LocalRank, fileName(name, int(loc.File)))
	}
	for k, n := range perFile {
		fmt.Fprintf(w, "segment %d: %d tasks\n", k, n)
	}
	return nil
}

// Split extracts the logical task-local files from a multifile and
// recreates them as physical files (the paper's §3.3 "split" utility).
// pattern must contain one "%d" verb receiving the task rank; out may be
// the same or a different file system. ranks selects a subset (nil = all).
func Split(fsys fsio.FileSystem, name string, out fsio.FileSystem, pattern string, ranks []int) error {
	if !strings.Contains(pattern, "%d") {
		return fmt.Errorf("sion: Split: pattern %q lacks %%d", pattern)
	}
	sf, err := Open(fsys, name)
	if err != nil {
		return err
	}
	defer sf.Close()
	if ranks == nil {
		ranks = make([]int, sf.ntasks)
		for i := range ranks {
			ranks[i] = i
		}
	}
	buf := make([]byte, 1<<20)
	for _, r := range ranks {
		if r < 0 || r >= sf.ntasks {
			return fmt.Errorf("sion: Split: rank %d outside 0..%d", r, sf.ntasks-1)
		}
		dst, err := out.Create(fmt.Sprintf(pattern, r))
		if err != nil {
			return fmt.Errorf("sion: Split rank %d: %w", r, err)
		}
		if err := sf.Seek(r, 0, 0); err != nil {
			dst.Close()
			return err
		}
		var off int64
		for {
			n, rerr := sf.Read(buf)
			if n > 0 {
				if _, werr := dst.WriteAt(buf[:n], off); werr != nil {
					dst.Close()
					return fmt.Errorf("sion: Split rank %d: %w", r, werr)
				}
				off += int64(n)
			}
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				dst.Close()
				return rerr
			}
		}
		if err := dst.Close(); err != nil {
			return err
		}
	}
	return nil
}

// Defrag rewrites a multifile so that each task's data occupies exactly one
// chunk in a single block, eliminating the logical gaps left by partially
// filled blocks (the paper's §3.3 "defragment" utility). The destination
// keeps the physical-file count and task placement of the source.
func Defrag(fsys fsio.FileSystem, name string, out fsio.FileSystem, dstName string) error {
	sf, err := Open(fsys, name)
	if err != nil {
		return err
	}
	defer sf.Close()

	chunkSizes := make([]int64, sf.ntasks)
	for r := range chunkSizes {
		if chunkSizes[r] = sf.RankBytes(r); chunkSizes[r] == 0 {
			chunkSizes[r] = 1 // a chunk must have positive capacity
		}
	}
	mapping := sf.mapping
	opts := &Options{
		FSBlockSize:  sf.fsblk,
		NFiles:       sf.nfiles,
		ChunkHeaders: sf.flags&flagChunkHeaders != 0,
		Mapping: func(rank, ntasks, nfiles int) int {
			return int(mapping[rank].File)
		},
	}
	dst, err := Create(out, dstName, chunkSizes, opts)
	if err != nil {
		return err
	}
	buf := make([]byte, 1<<20)
	for r := 0; r < sf.ntasks; r++ {
		if err := sf.Seek(r, 0, 0); err != nil {
			dst.abort()
			return err
		}
		if err := dst.Seek(r, 0, 0); err != nil {
			dst.abort()
			return err
		}
		for {
			n, rerr := sf.Read(buf)
			if n > 0 {
				if _, werr := dst.Write(buf[:n]); werr != nil {
					dst.abort()
					return werr
				}
			}
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				dst.abort()
				return rerr
			}
		}
	}
	return dst.Close()
}

// Verify checks the structural integrity of a multifile: parsable
// metablocks, consistent mapping, and per-block byte counts within chunk
// capacity. It returns the first problem found (nil = intact).
func Verify(fsys fsio.FileSystem, name string) error {
	sf, err := Open(fsys, name)
	if err != nil {
		return err
	}
	defer sf.Close()
	seen := make(map[[2]int32]bool)
	for r, loc := range sf.mapping {
		key := [2]int32{loc.File, loc.LocalRank}
		if seen[key] {
			return fmt.Errorf("%w: tasks share placement file=%d lrank=%d", ErrCorrupt, loc.File, loc.LocalRank)
		}
		seen[key] = true
		pf := sf.files[loc.File]
		li := int(loc.LocalRank)
		if li >= int(pf.h.NTasksLocal) {
			return fmt.Errorf("%w: task %d local rank %d beyond segment size %d", ErrCorrupt, r, li, pf.h.NTasksLocal)
		}
		if pf.h.GlobalRanks[li] != int64(r) {
			return fmt.Errorf("%w: segment %d lrank %d says global rank %d, mapping says %d",
				ErrCorrupt, loc.File, li, pf.h.GlobalRanks[li], r)
		}
		cap := pf.geo.capacity(li)
		for b, bytes := range pf.m2.BlockBytes[li] {
			if bytes < 0 || bytes > cap {
				return fmt.Errorf("%w: task %d block %d holds %d bytes, capacity %d", ErrCorrupt, r, b, bytes, cap)
			}
		}
	}
	// With watermarks enabled, cross-check the commit sidecars against
	// metablock 2: a watermark records bytes that were durable before the
	// commit, so metablock 2 claiming fewer bytes means metadata was lost.
	// A missing sidecar is fine (it may have been cleaned up after close);
	// a present-but-unparsable one is corruption.
	if sf.flags&flagWatermarks != 0 {
		for k, pf := range sf.files {
			states, werr := loadWMStates(sf.fsys, name, k, int(pf.h.NTasksLocal))
			if werr != nil {
				if wfh, oerr := sf.fsys.Open(wmName(name, k)); oerr != nil {
					continue // sidecar absent
				} else {
					wfh.Close()
				}
				return fmt.Errorf("sion: Verify %s: segment %d: %w", name, k, werr)
			}
			for li, blocks := range states {
				bb := pf.m2.BlockBytes[li]
				for b, c := range blocks {
					if b >= len(bb) || c.Bytes > bb[b] {
						got := int64(-1)
						if b < len(bb) {
							got = bb[b]
						}
						return fmt.Errorf("%w: segment %d task %d block %d: watermark committed %d bytes, metablock 2 records %d",
							ErrCorrupt, k, pf.h.GlobalRanks[li], b, c.Bytes, got)
					}
				}
			}
		}
	}
	// With chunk headers enabled, cross-check them against metablock 2.
	if sf.flags&flagChunkHeaders != 0 {
		for k, pf := range sf.files {
			hdr := make([]byte, chunkHeaderSize)
			for li := 0; li < int(pf.h.NTasksLocal); li++ {
				for b, bytes := range pf.m2.BlockBytes[li] {
					if _, err := pf.fh.ReadAt(hdr, pf.geo.chunkOff(li, b)); err != nil && err != io.EOF {
						return fmt.Errorf("%w: segment %d: reading chunk header: %v", ErrCorrupt, k, err)
					}
					ch, ok := parseChunkHeader(hdr)
					if !ok {
						return fmt.Errorf("%w: segment %d task %d block %d: bad chunk header", ErrCorrupt, k, pf.h.GlobalRanks[li], b)
					}
					if ch.GlobalRank != pf.h.GlobalRanks[li] || ch.Block != int64(b) || ch.Bytes != bytes {
						return fmt.Errorf("%w: segment %d: chunk header %+v disagrees with metablock 2 (%d bytes)",
							ErrCorrupt, k, *ch, bytes)
					}
				}
			}
		}
	}
	return nil
}
