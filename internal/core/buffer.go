package sion

import (
	"fmt"
	"io"
	"sync"
)

// Buffered staging I/O for the direct path (write-behind and read-ahead),
// the client-side analog of the paper's central lever: the multifile
// layout already guarantees that chunks are FS-block-aligned (§3.1,
// Table 1), but a small-record workload in direct mode still turns every
// application Write/Read into one file-system request. The staging layer
// coalesces those records in user space — exactly the aggregation that
// client-side buffering studies (Zhang et al., arXiv:0901.0134; TASIO,
// arXiv:2011.13823) show recovers bandwidth independent of collective
// mode — and flushes few, large, block-aligned extents instead:
//
//   - Write-behind: Write appends to a staging buffer; the buffer is
//     flushed in FS-block-aligned extents when it fills, and completely at
//     chunk boundaries, Flush, and Close. A flush triggered by a full
//     buffer retains the partial tail block so that the next flush starts
//     on an FS block boundary again.
//   - Read-ahead: a read miss fetches up to one whole chunk region (the
//     remaining used bytes of the current chunk, capped at the buffer
//     size) in a single request; subsequent Read/ReadLogicalAt calls are
//     served from memory. Seek never invalidates the cache — read-mode
//     data is immutable, so the cache stays valid wherever the cursor
//     moves.
//
// The cursor state (File.pos, SerialFile.curPos, blockBytes bookkeeping)
// always reflects the logical position including staged bytes, so
// EnsureFreeSpace, BytesAvailInChunk, EOF, and Seek keep their exact
// unbuffered semantics, and a multifile written through the staging layer
// is byte-identical to one written unbuffered.
//
// Staging buffers are recycled through a sync.Pool shared with the
// collective frame path (collective.go), so a job alternating between
// buffered-direct and collective handles reuses the same backing arrays.

// stagePool recycles staging buffers across direct-path stages and
// collective frames. Entries are *[]byte with length 0 and whatever
// capacity their previous user grew them to.
var stagePool = sync.Pool{New: func() any { return new([]byte) }}

// getStageBuf returns a zero-length buffer with capacity ≥ n.
func getStageBuf(n int64) []byte {
	b := *stagePool.Get().(*[]byte)
	if int64(cap(b)) < n {
		b = make([]byte, 0, n)
	}
	return b[:0]
}

// putStageBuf returns a buffer to the pool for reuse.
func putStageBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	stagePool.Put(&b)
}

// BufferAuto selects the staging-buffer size automatically
// (Options.BufferSize = -1): one chunk capacity, rounded up to a multiple
// of the FS block size and capped at bufferAutoCap.
const BufferAuto = -1

// BufferOff disables staging unconditionally (Options.BufferSize = -2):
// unlike 0, it is not upgraded to BufferAuto on backends whose
// capability descriptor declares a multipart part-size floor. The
// POSIX-tuned-geometry arms of the backend experiments use it to show
// what un-tuned defaults cost on an object store.
const BufferOff = -2

// bufferAutoCap bounds the auto-sized staging buffer, mirroring
// asyncFlushCap on the collective path: beyond a few MiB per task the
// request-count reduction has long saturated and the buffer only costs
// memory.
const bufferAutoCap = 4 << 20

// resolveBufferSize turns Options.BufferSize into an effective staging
// size for a chunk of the given capacity (0 = unbuffered).
func resolveBufferSize(opt, capacity, fsblk int64) int64 {
	switch {
	case opt == 0:
		return 0
	case opt == BufferAuto:
		b := capacity
		if b > bufferAutoCap {
			b = bufferAutoCap
		}
		b = alignUp(b, fsblk)
		if b < fsblk {
			b = fsblk
		}
		return b
	default:
		return opt
	}
}

// writeStage is the write-behind state of one direct-mode handle: buf
// holds the staged bytes of the current chunk range [pos-len(buf), pos),
// where pos is the handle's logical cursor.
type writeStage struct {
	size int64
	buf  []byte
}

// readStage caches one contiguous region of one chunk's used bytes:
// chunk-relative range [start, start+len(data)) of block `block`.
type readStage struct {
	size  int64
	block int
	start int64
	data  []byte
}

// covers reports whether the cached region contains [pos, pos+n) of block b.
func (rs *readStage) covers(b int, pos, n int64) bool {
	return b == rs.block && pos >= rs.start && pos+n <= rs.start+int64(len(rs.data))
}

// --- File (direct mode) ------------------------------------------------------

// buffered reports whether the direct write path of f stages data.
// Collective handles route data through frames (which already coalesce at
// the collector), so the stage is inert there.
func (f *File) buffered() bool { return f.wstage != nil && f.coll == nil }

// initStaging arms the staging layer on a freshly opened handle.
func (f *File) initStaging(bufSize int64) {
	n := resolveBufferSize(bufSize, f.geo.capacity(geoIndex), f.fsblk)
	if n <= 0 {
		return
	}
	if f.mode == WriteMode {
		if f.coll != nil {
			return // collective write: members never touch the file
		}
		f.wstage = &writeStage{size: n, buf: getStageBuf(n)}
		return
	}
	if f.collRead != nil {
		return // collective read: the stream is already in memory
	}
	f.rstage = &readStage{size: n, block: -1}
}

// SetBufferSize reconfigures the staging layer of an open handle
// (Options.BufferSize for handles opened without options, e.g. OpenRank):
// n > 0 is an explicit size, BufferAuto derives one from the chunk
// geometry, 0 disables staging — an explicit 0 also opts the handle out
// of NewKeyReader's automatic read-ahead. On a write handle any staged
// bytes are flushed first. Collective handles ignore the call (their
// data path does not issue per-record requests to begin with).
func (f *File) SetBufferSize(n int64) error {
	if n < BufferAuto {
		return fmt.Errorf("sion: %s: BufferSize %d (use 0, a positive size, or BufferAuto)", f.name, n)
	}
	if f.closed {
		return fmt.Errorf("sion: %s: handle is closed", f.name)
	}
	if err := f.stageFlush(); err != nil {
		return err
	}
	f.dropStaging()
	f.stagingOff = n == 0
	f.initStaging(n)
	return nil
}

// releaseStage returns the read-ahead stage's buffer to the pool while
// keeping the stage armed (the next miss refetches). The serial cursor
// calls this when it leaves a rank, so a global-view scan over many tasks
// holds at most one staging buffer at a time, as the pre-mapped serial
// read stage did.
func (f *File) releaseStage() {
	if f.rstage != nil {
		putStageBuf(f.rstage.data)
		f.rstage.data = nil
		f.rstage.block = -1
	}
}

// dropStaging releases the stage buffers back to the shared pool.
func (f *File) dropStaging() {
	if f.wstage != nil {
		putStageBuf(f.wstage.buf)
		f.wstage = nil
	}
	if f.rstage != nil {
		putStageBuf(f.rstage.data)
		f.rstage = nil
	}
}

// stagedWrite is the write-behind Write path: append to the staging
// buffer, flushing a block-aligned prefix when the buffer fills and the
// whole buffer at chunk boundaries.
func (f *File) stagedWrite(p []byte) (int, error) {
	ws := f.wstage
	total := 0
	for len(p) > 0 {
		capacity := f.ChunkCapacity()
		if capacity-f.pos == 0 {
			// advanceBlock flushes the stage before moving the cursor.
			if err := f.advanceBlock(); err != nil {
				return total, err
			}
		}
		w := int64(len(p))
		if avail := capacity - f.pos; w > avail {
			w = avail
		}
		// Large-write bypass: with nothing staged, a write of at least one
		// buffer is already a big request — issue it directly instead of
		// paying a copy through the stage.
		if len(ws.buf) == 0 && w >= ws.size {
			if _, err := f.fh.WriteAt(p[:w], f.dataOff()+f.pos); err != nil {
				return total, fmt.Errorf("sion: %s: chunk write: %w", f.name, err)
			}
		} else {
			if room := ws.size - int64(len(ws.buf)); w > room {
				w = room
			}
			ws.buf = append(ws.buf, p[:w]...)
		}
		f.pos += w
		f.blockBytes[f.curBlock] = f.pos
		total += int(w)
		p = p[w:]
		if f.pos == capacity {
			// The chunk is complete; staged bytes must not cross into the
			// next block's distant file offset.
			if err := f.stageFlush(); err != nil {
				return total, err
			}
		} else if int64(len(ws.buf)) >= ws.size {
			if err := f.stageFlushAligned(); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// stageFlush writes every staged byte (chunk boundary, Flush, Close, or a
// bypass such as WriteSynthetic).
func (f *File) stageFlush() error {
	if f.wstage == nil || len(f.wstage.buf) == 0 {
		return nil
	}
	ws := f.wstage
	start := f.pos - int64(len(ws.buf))
	if _, err := f.fh.WriteAt(ws.buf, f.dataOff()+start); err != nil {
		return fmt.Errorf("sion: %s: staged write: %w", f.name, err)
	}
	ws.buf = ws.buf[:0]
	return nil
}

// stageFlushAligned writes the staged prefix up to the last FS block
// boundary, keeping the partial tail block staged so the next flush
// begins block-aligned. When the whole buffer fits inside one block (or
// the region is misaligned by construction, e.g. chunk headers), it
// degrades to a full flush.
func (f *File) stageFlushAligned() error {
	ws := f.wstage
	start := f.pos - int64(len(ws.buf))
	abs := f.dataOff() + start
	end := abs + int64(len(ws.buf))
	n := end - end%f.fsblk - abs
	if n <= 0 || n == int64(len(ws.buf)) {
		return f.stageFlush()
	}
	if _, err := f.fh.WriteAt(ws.buf[:n], abs); err != nil {
		return fmt.Errorf("sion: %s: staged write: %w", f.name, err)
	}
	kept := copy(ws.buf, ws.buf[n:])
	ws.buf = ws.buf[:kept]
	return nil
}

// stagedReadAt serves [pos, pos+len(p)) of block b's data area from the
// read-ahead cache, fetching up to one whole chunk region (the block's
// remaining used bytes, capped at the stage size) on a miss. Callers
// clamp p to the block's recorded bytes, so the fetch always covers the
// request.
func (f *File) stagedReadAt(p []byte, block int, pos int64) error {
	rs := f.rstage
	if rs.covers(block, pos, int64(len(p))) {
		copy(p, rs.data[pos-rs.start:])
		return nil
	}
	// Large-read bypass, mirroring the write path: a request of at least
	// one buffer is already a big read — serve it directly instead of
	// growing the pooled cache and paying a second copy.
	if int64(len(p)) >= rs.size {
		if _, err := f.fh.ReadAt(p, f.geo.dataOff(geoIndex, block)+pos); err != nil && err != io.EOF {
			return err
		}
		return nil
	}
	fetch := rs.size
	if n := int64(len(p)); fetch < n {
		fetch = n
	}
	if rest := f.readBytes[block] - pos; fetch > rest {
		fetch = rest
	}
	if int64(cap(rs.data)) < fetch {
		putStageBuf(rs.data)
		rs.data = getStageBuf(fetch)
	}
	rs.data = rs.data[:fetch]
	rs.block, rs.start = block, pos
	n, err := f.fh.ReadAt(rs.data, f.geo.dataOff(geoIndex, block)+pos)
	if err != nil && err != io.EOF {
		rs.block, rs.data = -1, rs.data[:0]
		return err
	}
	// A short read (sparse tail) leaves the recycled buffer's stale bytes
	// behind; unwritten regions must read as zeros, like ReadAt's contract.
	zeroTail(rs.data, n)
	copy(p, rs.data)
	return nil
}

// zeroTail clears b[n:] (the unread remainder of a recycled buffer).
func zeroTail(b []byte, n int) {
	for i := n; i < len(b); i++ {
		b[i] = 0
	}
}

// --- SerialFile --------------------------------------------------------------

// serialWriteStage stages one contiguous run of a serial handle's writes:
// chunk-relative range [start, start+len(buf)) of (rank, block).
type serialWriteStage struct {
	size  int64
	rank  int
	block int
	start int64
	buf   []byte
}

// SetBufferSize configures write-behind/read-ahead staging for the serial
// handle (Create honors Options.BufferSize; Open has no options, so read
// tools call this). In write mode, BufferAuto derives the size from the
// largest aligned chunk of the multifile; 0 disables staging and flushes
// pending writes. In read mode the call is forwarded to the per-rank
// mapped handles (SerialFile is the M=1 mapped case), so each rank gets a
// read-ahead stage sized to its own chunk geometry.
func (sf *SerialFile) SetBufferSize(n int64) error {
	if n < BufferAuto {
		return fmt.Errorf("sion: %s: BufferSize %d (use 0, a positive size, or BufferAuto)", sf.name, n)
	}
	if sf.closed {
		return fmt.Errorf("sion: %s: handle is closed", sf.name)
	}
	if sf.mode == ReadMode {
		for r := 0; r < sf.ntasks; r++ {
			if err := sf.handles[r].SetBufferSize(n); err != nil {
				return err
			}
		}
		return nil
	}
	if err := sf.stageFlush(); err != nil {
		return err
	}
	if sf.wstage != nil {
		putStageBuf(sf.wstage.buf)
		sf.wstage = nil
	}
	var maxAligned int64
	for _, pf := range sf.files {
		for _, a := range pf.geo.aligned {
			if a > maxAligned {
				maxAligned = a
			}
		}
	}
	size := resolveBufferSize(n, maxAligned, sf.fsblk)
	if size <= 0 {
		return nil
	}
	sf.wstage = &serialWriteStage{size: size, rank: -1, buf: getStageBuf(size)}
	return nil
}

// stageFlush writes every staged byte of the serial write stage.
func (sf *SerialFile) stageFlush() error {
	ws := sf.wstage
	if ws == nil || len(ws.buf) == 0 {
		return nil
	}
	pf := sf.files[sf.mapping[ws.rank].File]
	li := int(sf.mapping[ws.rank].LocalRank)
	off := pf.geo.dataOff(li, ws.block) + ws.start
	if _, err := pf.fh.WriteAt(ws.buf, off); err != nil {
		return fmt.Errorf("sion: %s: staged serial write: %w", sf.name, err)
	}
	ws.start += int64(len(ws.buf))
	ws.buf = ws.buf[:0]
	return nil
}

// stageFlushAligned flushes the staged prefix down to an FS block
// boundary (buffer-full case), keeping the partial tail block staged.
func (sf *SerialFile) stageFlushAligned() error {
	ws := sf.wstage
	pf := sf.files[sf.mapping[ws.rank].File]
	li := int(sf.mapping[ws.rank].LocalRank)
	abs := pf.geo.dataOff(li, ws.block) + ws.start
	end := abs + int64(len(ws.buf))
	n := end - end%sf.fsblk - abs
	if n <= 0 || n == int64(len(ws.buf)) {
		return sf.stageFlush()
	}
	if _, err := pf.fh.WriteAt(ws.buf[:n], abs); err != nil {
		return fmt.Errorf("sion: %s: staged serial write: %w", sf.name, err)
	}
	ws.start += n
	kept := copy(ws.buf, ws.buf[n:])
	ws.buf = ws.buf[:kept]
	return nil
}

// stagedWrite is the serial write-behind path: contiguous writes at the
// cursor accumulate in the stage; a cursor that moved elsewhere (Seek, or
// a block advance) flushes first.
func (sf *SerialFile) stagedWrite(p []byte) (int, error) {
	ws := sf.wstage
	pf, li := sf.cursorFile()
	capacity := pf.geo.capacity(li)
	total := 0
	for len(p) > 0 {
		if sf.curPos == capacity {
			if err := sf.stageFlush(); err != nil {
				return total, err
			}
			sf.curBlock++
			sf.curPos = 0
		}
		if ws.rank != sf.curRank || ws.block != sf.curBlock || ws.start+int64(len(ws.buf)) != sf.curPos {
			if err := sf.stageFlush(); err != nil {
				return total, err
			}
			ws.rank, ws.block, ws.start = sf.curRank, sf.curBlock, sf.curPos
		}
		w := int64(len(p))
		if avail := capacity - sf.curPos; w > avail {
			w = avail
		}
		if len(ws.buf) == 0 && w >= ws.size {
			// Large-write bypass, as on the parallel path.
			off := pf.geo.dataOff(li, sf.curBlock) + sf.curPos
			if _, err := pf.fh.WriteAt(p[:w], off); err != nil {
				return total, fmt.Errorf("sion: %s: serial write: %w", sf.name, err)
			}
			ws.start = sf.curPos + w
		} else {
			if room := ws.size - int64(len(ws.buf)); w > room {
				w = room
			}
			ws.buf = append(ws.buf, p[:w]...)
		}
		sf.curPos += w
		sf.noteWritten(sf.curRank, sf.curBlock, sf.curPos)
		total += int(w)
		p = p[w:]
		if sf.curPos == capacity {
			if err := sf.stageFlush(); err != nil {
				return total, err
			}
		} else if int64(len(ws.buf)) >= ws.size {
			if err := sf.stageFlushAligned(); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}
