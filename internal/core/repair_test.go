package sion

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/fsio"
	"repro/internal/mpi"
)

// TestRepairTornFinalBlock simulates the hardest §6 failure: the writers
// die without Close (no metablock 2, no trailer) and the physical file is
// additionally torn inside the final block — truncated mid-chunk, as a
// node crash or quota hit leaves it. Repair must rebuild the metadata
// from the chunk headers, recovering every sealed block completely and
// the torn open block up to the bytes that physically survive.
func TestRepairTornFinalBlock(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	const (
		n     = 4
		chunk = 512
		fsblk = 256
	)
	cap := chunkDataCap(chunk, fsblk)
	perRank := 2*cap + 300 // two sealed blocks + a partial third
	payloads := make([][]byte, n)
	for r := range payloads {
		payloads[r] = testPattern(r, perRank)
	}
	mpi.Run(n, func(c *mpi.Comm) {
		f, err := ParOpen(c, fsys, "torn.sion", WriteMode, &Options{
			ChunkSize: chunk, FSBlockSize: fsblk, ChunkHeaders: true,
		})
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.Write(payloads[c.Rank()]); err != nil {
			t.Error(err)
			return
		}
		if err := f.Flush(); err != nil { // data reaches the file; Close never runs
			t.Error(err)
		}
	})

	// Tear the file: cut into the final block's data region so even the
	// crash-surviving bytes of the last chunks are partially gone.
	fh, err := fsys.OpenRW("torn.sion")
	if err != nil {
		t.Fatal(err)
	}
	size, err := fh.Size()
	if err != nil {
		t.Fatal(err)
	}
	torn := size - 700
	if err := fh.Truncate(torn); err != nil {
		t.Fatal(err)
	}
	fh.Close()

	// Without repair the multifile is unopenable (no trailer).
	if _, err := Open(fsys, "torn.sion"); err == nil {
		t.Fatal("torn multifile opened without repair")
	}

	rec, err := Repair(fsys, "torn.sion")
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if rec == 0 {
		t.Fatal("Repair recovered no chunks")
	}
	sf, err := Open(fsys, "torn.sion")
	if err != nil {
		t.Fatalf("open after repair: %v", err)
	}
	defer sf.Close()
	if err := Verify(fsys, "torn.sion"); err != nil {
		t.Fatalf("Verify after repair: %v", err)
	}
	for r := 0; r < n; r++ {
		got, err := sf.ReadRank(r)
		if err != nil && err != io.EOF {
			t.Fatalf("rank %d: %v", r, err)
		}
		want := payloads[r]
		// Everything the tear left on disk must come back intact: the two
		// sealed blocks completely, and the common prefix of the open
		// block byte-for-byte. An open chunk may be over-recovered up to
		// its capacity (Repair cannot know the writer's exact count
		// without metablock 2), but the surplus must read as zeros.
		if len(got) < 2*cap {
			t.Fatalf("rank %d: only %d bytes recovered, want ≥ the %d sealed bytes", r, len(got), 2*cap)
		}
		m := len(got)
		if len(want) < m {
			m = len(want)
		}
		if !bytes.Equal(got[:m], want[:m]) {
			t.Fatalf("rank %d: recovered prefix differs from the written payload", r)
		}
		for i := len(want); i < len(got); i++ {
			if got[i] != 0 {
				t.Fatalf("rank %d: over-recovered byte %d is %#x, want zero fill", r, i, got[i])
			}
		}
	}
}

// chunkDataCap is the usable data capacity of a chunk written with chunk
// headers enabled.
func chunkDataCap(chunk, fsblk int64) int {
	aligned := alignUp(chunk, fsblk)
	if aligned-chunkHeaderSize < chunk {
		aligned = alignUp(chunk+chunkHeaderSize, fsblk)
	}
	return int(aligned - chunkHeaderSize)
}

// testPattern is a deterministic payload distinct from rankPayload so a
// stale buffer cannot masquerade as recovered data.
func testPattern(rank, size int) []byte {
	out := make([]byte, size)
	x := uint32(rank*40503 + 9973)
	for i := range out {
		x = x*1103515245 + 12345
		out[i] = byte(x >> 16)
	}
	return out
}
