package sion

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"repro/internal/mpi"
	"repro/internal/simfs"
	"repro/internal/vtime"
)

// End-to-end workflow on the simulated parallel file system at moderate
// scale: parallel write → verify → dump → split → defrag → parallel read,
// crossing core × simfs × mpi in one scenario (the paper's full tool
// chain).
func TestWorkflowOnSimulatedFS(t *testing.T) {
	const (
		ntasks = 512
		nfiles = 8
	)
	fs := simfs.New(simfs.Jugene())
	e := vtime.NewEngine()
	var writeTime float64
	mpi.RunSim(e, ntasks, mpi.DefaultCost, func(c *mpi.Comm) {
		v := fs.View(c.Rank(), c.Proc())
		f, err := ParOpen(c, v, "wf/data.sion", WriteMode, &Options{
			ChunkSize: 4096, NFiles: nfiles, ChunkHeaders: true,
		})
		if err != nil {
			t.Error(err)
			return
		}
		// Several blocks per task, different sizes per rank.
		payload := rankPayload(c.Rank(), 6000+13*c.Rank())
		if _, err := f.Write(payload); err != nil {
			t.Error(err)
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
		if c.Rank() == 0 {
			writeTime = c.Now()
		}
	})
	if writeTime <= 0 {
		t.Fatal("no simulated time elapsed")
	}

	// Serial tools run offline against the same simulated FS.
	serial := fs.View(0, nil)
	if err := Verify(serial, "wf/data.sion"); err != nil {
		t.Fatalf("verify: %v", err)
	}
	var dump bytes.Buffer
	if err := Dump(serial, "wf/data.sion", &dump); err != nil {
		t.Fatalf("dump: %v", err)
	}
	if !bytes.Contains(dump.Bytes(), []byte(fmt.Sprintf("tasks:         %d", ntasks))) {
		t.Fatalf("dump lacks task count:\n%s", dump.String())
	}

	if err := Split(serial, "wf/data.sion", serial, "wf/x-%d", []int{0, 100, 511}); err != nil {
		t.Fatalf("split: %v", err)
	}
	fh, err := serial.Open("wf/x-511")
	if err != nil {
		t.Fatal(err)
	}
	want := rankPayload(511, 6000+13*511)
	got := make([]byte, len(want))
	fh.ReadAt(got, 0)
	fh.Close()
	if !bytes.Equal(got, want) {
		t.Fatal("split output mismatch on simulated FS")
	}

	if err := Defrag(serial, "wf/data.sion", serial, "wf/tight.sion"); err != nil {
		t.Fatalf("defrag: %v", err)
	}
	if err := Verify(serial, "wf/tight.sion"); err != nil {
		t.Fatalf("verify after defrag: %v", err)
	}

	// Parallel read of the defragmented multifile under a fresh engine.
	e2 := vtime.NewEngine()
	mpi.RunSim(e2, ntasks, mpi.DefaultCost, func(c *mpi.Comm) {
		v := fs.View(c.Rank(), c.Proc())
		r, err := ParOpen(c, v, "wf/tight.sion", ReadMode, nil)
		if err != nil {
			t.Error(err)
			return
		}
		want := rankPayload(c.Rank(), 6000+13*c.Rank())
		got := make([]byte, len(want))
		if _, err := io.ReadFull(r, got); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("rank %d: defragged content mismatch", c.Rank())
		}
		r.Close()
	})
}

// The gap behaviour the paper describes (§3.1): when only a subset of
// tasks allocates additional blocks, the holes stay logical — the
// simulated FS must account far less physical space than the file size.
func TestGapsStayLogical(t *testing.T) {
	const ntasks = 64
	fs := simfs.New(simfs.Jugene())
	e := vtime.NewEngine()
	mpi.RunSim(e, ntasks, mpi.DefaultCost, func(c *mpi.Comm) {
		v := fs.View(c.Rank(), c.Proc())
		f, err := ParOpen(c, v, "g/gaps.sion", WriteMode, &Options{ChunkSize: 1 << 20})
		if err != nil {
			t.Error(err)
			return
		}
		// Only task 0 spills into many extra blocks.
		n := int64(1 << 20)
		if c.Rank() == 0 {
			n = 10 << 20
		}
		if err := f.WriteSynthetic(n); err != nil {
			t.Error(err)
		}
		f.Close()
	})
	serial := fs.View(0, nil)
	info, err := serial.Stat("g/gaps.sion")
	if err != nil {
		t.Fatal(err)
	}
	alloc := fs.UsedBytes()
	// File size spans 10 blocks of 64 chunks; allocation is ~73 MB
	// (64 + 9 chunks) while the logical size is ~640 MB.
	if alloc >= info.Size/4 {
		t.Fatalf("gaps materialized: allocated %d of logical %d", alloc, info.Size)
	}

	// Defragmentation removes the gaps: the new multifile's logical size
	// shrinks to roughly the allocated data.
	if err := Defrag(serial, "g/gaps.sion", serial, "g/tight.sion"); err != nil {
		t.Fatal(err)
	}
	tightInfo, err := serial.Stat("g/tight.sion")
	if err != nil {
		t.Fatal(err)
	}
	if tightInfo.Size >= info.Size/4 {
		t.Fatalf("defrag left gaps: %d vs original %d", tightInfo.Size, info.Size)
	}
}
