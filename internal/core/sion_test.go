package sion

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/fsio"
	"repro/internal/mpi"
	"repro/internal/simfs"
	"repro/internal/vtime"
)

// runReal runs body on n ranks against a shared temp-dir OS file system.
func runReal(t *testing.T, n int, body func(c *mpi.Comm, fsys fsio.FileSystem)) {
	t.Helper()
	fsys := fsio.NewOS(t.TempDir())
	mpi.Run(n, func(c *mpi.Comm) { body(c, fsys) })
}

// runSim runs body on n simulated ranks against a simulated Jugene FS,
// each rank bound to its own view.
func runSim(t *testing.T, n int, body func(c *mpi.Comm, fsys fsio.FileSystem)) *simfs.FS {
	t.Helper()
	fs := simfs.New(simfs.Jugene())
	e := vtime.NewEngine()
	mpi.RunSim(e, n, mpi.DefaultCost, func(c *mpi.Comm) {
		body(c, fs.View(c.Rank(), c.Proc()))
	})
	return fs
}

// runBoth exercises both backends.
func runBoth(t *testing.T, n int, body func(c *mpi.Comm, fsys fsio.FileSystem)) {
	t.Helper()
	t.Run("osfs", func(t *testing.T) { runReal(t, n, body) })
	t.Run("simfs", func(t *testing.T) { runSim(t, n, body) })
}

// rankPayload generates a deterministic per-rank payload.
func rankPayload(rank, size int) []byte {
	out := make([]byte, size)
	x := uint32(rank*2654435761 + 12345)
	for i := range out {
		x = x*1664525 + 1013904223
		out[i] = byte(x >> 24)
	}
	return out
}

func TestParallelWriteReadRoundTrip(t *testing.T) {
	const n = 8
	runBoth(t, n, func(c *mpi.Comm, fsys fsio.FileSystem) {
		payload := rankPayload(c.Rank(), 1000+c.Rank()*137)
		f, err := ParOpen(c, fsys, "data.sion", WriteMode, &Options{ChunkSize: 4096, FSBlockSize: 512})
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.Write(payload); err != nil {
			t.Error(err)
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}

		r, err := ParOpen(c, fsys, "data.sion", ReadMode, nil)
		if err != nil {
			t.Error(err)
			return
		}
		got := make([]byte, len(payload))
		if _, err := io.ReadFull(r, got); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
		}
		if !bytes.Equal(got, payload) {
			t.Errorf("rank %d: payload mismatch", c.Rank())
		}
		if !r.EOF() {
			t.Errorf("rank %d: EOF not reached", c.Rank())
		}
		if err := r.Close(); err != nil {
			t.Error(err)
		}
	})
}

func TestMultiBlockSpanningWrites(t *testing.T) {
	const n = 4
	runBoth(t, n, func(c *mpi.Comm, fsys fsio.FileSystem) {
		// Chunk capacity 1024 (FSBlockSize 1024, ChunkSize 1000 → aligned
		// up); payload far larger forces many blocks via sion_fwrite.
		payload := rankPayload(c.Rank(), 10240+c.Rank()*511)
		f, err := ParOpen(c, fsys, "big.sion", WriteMode, &Options{ChunkSize: 1000, FSBlockSize: 1024})
		if err != nil {
			t.Error(err)
			return
		}
		// Write in awkward pieces.
		for off := 0; off < len(payload); off += 777 {
			end := off + 777
			if end > len(payload) {
				end = len(payload)
			}
			if _, err := f.Write(payload[off:end]); err != nil {
				t.Error(err)
				return
			}
		}
		if f.Blocks() < 10 {
			t.Errorf("rank %d: expected ≥10 blocks, got %d", c.Rank(), f.Blocks())
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}

		r, err := ParOpen(c, fsys, "big.sion", ReadMode, nil)
		if err != nil {
			t.Error(err)
			return
		}
		got := make([]byte, len(payload))
		if _, err := io.ReadFull(r, got); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, payload) {
			t.Errorf("rank %d: multi-block payload mismatch", c.Rank())
		}
		r.Close()
	})
}

func TestEnsureFreeSpaceSemantics(t *testing.T) {
	runBoth(t, 2, func(c *mpi.Comm, fsys fsio.FileSystem) {
		f, err := ParOpen(c, fsys, "efs.sion", WriteMode, &Options{ChunkSize: 512, FSBlockSize: 512})
		if err != nil {
			t.Error(err)
			return
		}
		if f.ChunkCapacity() != 512 {
			t.Errorf("capacity = %d", f.ChunkCapacity())
		}
		// ANSI-C style: ensure space, then write within the chunk.
		if err := f.EnsureFreeSpace(300); err != nil {
			t.Error(err)
		}
		f.Write(rankPayload(c.Rank(), 300))
		if got := f.BytesAvailInChunk(); got != 212 {
			t.Errorf("avail = %d, want 212", got)
		}
		// Needs a fresh chunk: 300 > 212 remaining.
		if err := f.EnsureFreeSpace(300); err != nil {
			t.Error(err)
		}
		if got := f.BytesAvailInChunk(); got != 512 {
			t.Errorf("avail after advance = %d, want 512", got)
		}
		if f.Blocks() != 2 {
			t.Errorf("blocks = %d, want 2", f.Blocks())
		}
		// Larger than the chunk itself must be rejected.
		if err := f.EnsureFreeSpace(513); err == nil {
			t.Error("EnsureFreeSpace beyond capacity succeeded")
		}
		f.Close()
	})
}

func TestPerTaskChunkSizes(t *testing.T) {
	const n = 5
	runBoth(t, n, func(c *mpi.Comm, fsys fsio.FileSystem) {
		size := int64(256 * (c.Rank() + 1))
		f, err := ParOpen(c, fsys, "vary.sion", WriteMode, &Options{ChunkSize: size, FSBlockSize: 256})
		if err != nil {
			t.Error(err)
			return
		}
		payload := rankPayload(c.Rank(), int(size))
		f.Write(payload)
		f.Close()

		r, err := ParOpen(c, fsys, "vary.sion", ReadMode, nil)
		if err != nil {
			t.Error(err)
			return
		}
		got := make([]byte, size)
		io.ReadFull(r, got)
		if !bytes.Equal(got, payload) {
			t.Errorf("rank %d: mismatch with per-task chunk sizes", c.Rank())
		}
		r.Close()
	})
}

func TestMultiplePhysicalFiles(t *testing.T) {
	const n = 9
	for _, nfiles := range []int{2, 3, 4} {
		nfiles := nfiles
		t.Run(fmt.Sprintf("nfiles=%d", nfiles), func(t *testing.T) {
			runBoth(t, n, func(c *mpi.Comm, fsys fsio.FileSystem) {
				payload := rankPayload(c.Rank(), 2048)
				f, err := ParOpen(c, fsys, "multi.sion", WriteMode,
					&Options{ChunkSize: 1024, FSBlockSize: 512, NFiles: nfiles})
				if err != nil {
					t.Error(err)
					return
				}
				if f.NumFiles() != nfiles {
					t.Errorf("NumFiles = %d", f.NumFiles())
				}
				f.Write(payload)
				f.Close()

				// The physical segments must exist.
				if c.Rank() == 0 {
					for k := 0; k < nfiles; k++ {
						if _, err := fsys.Stat(fileName("multi.sion", k)); err != nil {
							t.Errorf("segment %d missing: %v", k, err)
						}
					}
				}
				c.Barrier()

				r, err := ParOpen(c, fsys, "multi.sion", ReadMode, nil)
				if err != nil {
					t.Error(err)
					return
				}
				want := ContiguousMap(c.Rank(), n, nfiles)
				if r.PhysicalFile() != want {
					t.Errorf("rank %d in file %d, want %d", c.Rank(), r.PhysicalFile(), want)
				}
				got := make([]byte, len(payload))
				io.ReadFull(r, got)
				if !bytes.Equal(got, payload) {
					t.Errorf("rank %d: mismatch across %d files", c.Rank(), nfiles)
				}
				r.Close()
			})
		})
	}
}

// A custom mapping that puts global rank 0 into a file other than 0
// exercises the mapping forwarding to file 0's master.
func TestCustomMappingRank0NotInFile0(t *testing.T) {
	const n, nfiles = 6, 2
	shifted := func(rank, ntasks, nf int) int { return (rank + 3) / 3 % nf }
	runBoth(t, n, func(c *mpi.Comm, fsys fsio.FileSystem) {
		payload := rankPayload(c.Rank(), 500)
		f, err := ParOpen(c, fsys, "shift.sion", WriteMode,
			&Options{ChunkSize: 512, FSBlockSize: 512, NFiles: nfiles, Mapping: shifted})
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 && f.PhysicalFile() != 1 {
			t.Errorf("rank 0 placed in file %d, want 1", f.PhysicalFile())
		}
		f.Write(payload)
		f.Close()

		r, err := ParOpen(c, fsys, "shift.sion", ReadMode, nil)
		if err != nil {
			t.Error(err)
			return
		}
		got := make([]byte, len(payload))
		io.ReadFull(r, got)
		if !bytes.Equal(got, payload) {
			t.Errorf("rank %d: mismatch under custom mapping", c.Rank())
		}
		r.Close()
	})
}

func TestSerialGlobalViewAfterParallelWrite(t *testing.T) {
	const n = 6
	fsys := fsio.NewOS(t.TempDir())
	mpi.Run(n, func(c *mpi.Comm) {
		f, err := ParOpen(c, fsys, "g.sion", WriteMode, &Options{ChunkSize: 400, FSBlockSize: 256, NFiles: 2})
		if err != nil {
			t.Error(err)
			return
		}
		f.Write(rankPayload(c.Rank(), 900+10*c.Rank()))
		f.Close()
	})

	sf, err := Open(fsys, "g.sion")
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	loc := sf.Locations()
	if loc.NTasks != n || loc.NFiles != 2 {
		t.Fatalf("locations: %+v", loc)
	}
	for r := 0; r < n; r++ {
		want := rankPayload(r, 900+10*r)
		if sf.RankBytes(r) != int64(len(want)) {
			t.Fatalf("rank %d: RankBytes = %d, want %d", r, sf.RankBytes(r), len(want))
		}
		got, err := sf.ReadRank(r)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("rank %d: serial read mismatch", r)
		}
	}
	// Seek into the middle of a specific chunk (global view, Listing 5).
	if err := sf.Seek(3, 1, 5); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 16)
	if _, err := sf.Read(b); err != nil {
		t.Fatal(err)
	}
	wantAll := rankPayload(3, 930)
	// Block 0 holds 400... wait: capacity = alignUp(400,256)=512; block 0
	// holds 512 bytes, so (block 1, pos 5) is logical offset 517.
	if !bytes.Equal(b, wantAll[512+5:512+5+16]) {
		t.Fatal("seek+read returned wrong window")
	}
}

func TestSerialCreateThenParallelRead(t *testing.T) {
	const n = 5
	fsys := fsio.NewOS(t.TempDir())
	sizes := make([]int64, n)
	for i := range sizes {
		sizes[i] = int64(300 + 100*i)
	}
	sf, err := Create(fsys, "pre.sion", sizes, &Options{FSBlockSize: 256, NFiles: 2})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		if err := sf.Seek(r, 0, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := sf.Write(rankPayload(r, 200+50*r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sf.Close(); err != nil {
		t.Fatal(err)
	}

	mpi.Run(n, func(c *mpi.Comm) {
		r, err := ParOpen(c, fsys, "pre.sion", ReadMode, nil)
		if err != nil {
			t.Error(err)
			return
		}
		want := rankPayload(c.Rank(), 200+50*c.Rank())
		got := make([]byte, len(want))
		if _, err := io.ReadFull(r, got); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("rank %d: parallel read of serial file mismatch", c.Rank())
		}
		r.Close()
	})
}

func TestOpenRankLocalView(t *testing.T) {
	const n = 7
	fsys := fsio.NewOS(t.TempDir())
	mpi.Run(n, func(c *mpi.Comm) {
		f, _ := ParOpen(c, fsys, "lv.sion", WriteMode, &Options{ChunkSize: 600, FSBlockSize: 512, NFiles: 3})
		f.Write(rankPayload(c.Rank(), 1500))
		f.Close()
	})
	for r := 0; r < n; r++ {
		f, err := OpenRank(fsys, "lv.sion", r)
		if err != nil {
			t.Fatal(err)
		}
		want := rankPayload(r, 1500)
		got := make([]byte, len(want))
		if _, err := io.ReadFull(f, got); err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("rank %d: OpenRank mismatch", r)
		}
		if !f.EOF() {
			t.Fatalf("rank %d: EOF false after full read", r)
		}
		// Seek back within the rank view.
		if err := f.Seek(0, 0); err != nil {
			t.Fatal(err)
		}
		b := make([]byte, 10)
		io.ReadFull(f, b)
		if !bytes.Equal(b, want[:10]) {
			t.Fatalf("rank %d: Seek(0,0) reread mismatch", r)
		}
		f.Close()
	}
	if _, err := OpenRank(fsys, "lv.sion", n); err == nil {
		t.Fatal("OpenRank beyond task count succeeded")
	}
}

func TestEOFAndBytesAvailReadSide(t *testing.T) {
	runBoth(t, 3, func(c *mpi.Comm, fsys fsio.FileSystem) {
		f, _ := ParOpen(c, fsys, "eof.sion", WriteMode, &Options{ChunkSize: 128, FSBlockSize: 128})
		f.Write(rankPayload(c.Rank(), 300)) // 2 full chunks + 44 bytes
		f.Close()

		r, err := ParOpen(c, fsys, "eof.sion", ReadMode, nil)
		if err != nil {
			t.Error(err)
			return
		}
		reads := 0
		var total int
		for !r.EOF() {
			n := r.BytesAvailInChunk()
			if n == 0 {
				t.Errorf("BytesAvailInChunk 0 but not EOF")
				break
			}
			buf := make([]byte, n)
			m, err := r.Read(buf)
			if err != nil {
				t.Error(err)
				break
			}
			total += m
			reads++
		}
		if total != 300 {
			t.Errorf("rank %d: read %d bytes, want 300", c.Rank(), total)
		}
		if reads != 3 {
			t.Errorf("rank %d: %d chunk reads, want 3", c.Rank(), reads)
		}
		r.Close()
	})
}

func TestChunkHeadersVerify(t *testing.T) {
	runBoth(t, 4, func(c *mpi.Comm, fsys fsio.FileSystem) {
		f, err := ParOpen(c, fsys, "hdr.sion", WriteMode,
			&Options{ChunkSize: 256, FSBlockSize: 256, ChunkHeaders: true})
		if err != nil {
			t.Error(err)
			return
		}
		// Capacity shrinks by the 64-byte header but stays ≥ requested:
		// aligned = 512, capacity = 448 ≥ 256.
		if f.ChunkCapacity() < 256 {
			t.Errorf("capacity %d < requested 256", f.ChunkCapacity())
		}
		f.Write(rankPayload(c.Rank(), 1000))
		f.Close()

		if c.Rank() == 0 {
			if err := Verify(fsys, "hdr.sion"); err != nil {
				t.Errorf("Verify: %v", err)
			}
		}
		c.Barrier()
		r, _ := ParOpen(c, fsys, "hdr.sion", ReadMode, nil)
		got := make([]byte, 1000)
		io.ReadFull(r, got)
		if !bytes.Equal(got, rankPayload(c.Rank(), 1000)) {
			t.Errorf("rank %d: chunk-header file mismatch", c.Rank())
		}
		r.Close()
	})
}

func TestDump(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	mpi.Run(3, func(c *mpi.Comm) {
		f, _ := ParOpen(c, fsys, "d.sion", WriteMode, &Options{ChunkSize: 100, FSBlockSize: 64, NFiles: 2})
		f.Write(rankPayload(c.Rank(), 50))
		f.Close()
	})
	var buf bytes.Buffer
	if err := Dump(fsys, "d.sion", &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"tasks:         3", "physical files:2", "segment 1"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("dump output missing %q:\n%s", want, out)
		}
	}
}

func TestSplitRecreatesTaskLocalFiles(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	const n = 5
	mpi.Run(n, func(c *mpi.Comm) {
		f, _ := ParOpen(c, fsys, "s.sion", WriteMode, &Options{ChunkSize: 333, FSBlockSize: 256, NFiles: 2})
		f.Write(rankPayload(c.Rank(), 800+c.Rank()))
		f.Close()
	})
	if err := Split(fsys, "s.sion", fsys, "task-%d.bin", nil); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		fh, err := fsys.Open(fmt.Sprintf("task-%d.bin", r))
		if err != nil {
			t.Fatal(err)
		}
		want := rankPayload(r, 800+r)
		sz, _ := fh.Size()
		if sz != int64(len(want)) {
			t.Fatalf("task %d: size %d want %d", r, sz, len(want))
		}
		got := make([]byte, sz)
		fh.ReadAt(got, 0)
		fh.Close()
		if !bytes.Equal(got, want) {
			t.Fatalf("task %d: split content mismatch", r)
		}
	}
}

func TestDefragContractsBlocks(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	const n = 4
	mpi.Run(n, func(c *mpi.Comm) {
		f, _ := ParOpen(c, fsys, "frag.sion", WriteMode, &Options{ChunkSize: 100, FSBlockSize: 128})
		// Rank r writes r+1 chunks' worth → different block counts → gaps.
		f.Write(rankPayload(c.Rank(), 128*(c.Rank()+1)))
		f.Close()
	})
	if err := Defrag(fsys, "frag.sion", fsys, "tight.sion"); err != nil {
		t.Fatal(err)
	}
	sf, err := Open(fsys, "tight.sion")
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	loc := sf.Locations()
	for r := 0; r < n; r++ {
		if len(loc.BlockBytes[r]) != 1 {
			t.Fatalf("rank %d: %d blocks after defrag, want 1", r, len(loc.BlockBytes[r]))
		}
		got, _ := sf.ReadRank(r)
		if !bytes.Equal(got, rankPayload(r, 128*(r+1))) {
			t.Fatalf("rank %d: defrag content mismatch", r)
		}
	}
	if err := Verify(fsys, "tight.sion"); err != nil {
		t.Fatal(err)
	}
}

func TestRepairAfterLostMetablock(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	const n = 4
	mpi.Run(n, func(c *mpi.Comm) {
		f, _ := ParOpen(c, fsys, "r.sion", WriteMode,
			&Options{ChunkSize: 200, FSBlockSize: 256, ChunkHeaders: true})
		f.Write(rankPayload(c.Rank(), 700)) // multiple blocks each
		f.Close()
	})
	// Simulate the paper's failure: the trailer/metablock 2 is lost.
	fh, _ := fsys.OpenRW("r.sion")
	sz, _ := fh.Size()
	fh.Truncate(sz - tailSize - 8)
	fh.Close()
	if _, err := Open(fsys, "r.sion"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open after truncation: %v, want ErrCorrupt", err)
	}

	rec, err := Repair(fsys, "r.sion")
	if err != nil {
		t.Fatal(err)
	}
	if rec == 0 {
		t.Fatal("Repair recovered nothing")
	}
	sf, err := Open(fsys, "r.sion")
	if err != nil {
		t.Fatalf("open after repair: %v", err)
	}
	defer sf.Close()
	for r := 0; r < n; r++ {
		got, err := sf.ReadRank(r)
		if err != nil {
			t.Fatal(err)
		}
		want := rankPayload(r, 700)
		// The final, possibly partially recorded block may recover with
		// padding up to capacity; everything written must be present.
		if len(got) < len(want) || !bytes.Equal(got[:len(want)], want) {
			t.Fatalf("rank %d: repaired data mismatch (%d bytes)", r, len(got))
		}
	}
}

func TestRepairWithoutChunkHeadersFails(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	mpi.Run(2, func(c *mpi.Comm) {
		f, _ := ParOpen(c, fsys, "nh.sion", WriteMode, &Options{ChunkSize: 100, FSBlockSize: 128})
		f.Write([]byte("x"))
		f.Close()
	})
	if _, err := Repair(fsys, "nh.sion"); err == nil {
		t.Fatal("Repair without chunk headers succeeded")
	}
}

func TestZlibCompressionRoundTrip(t *testing.T) {
	const n = 3
	runBoth(t, n, func(c *mpi.Comm, fsys fsio.FileSystem) {
		// Highly compressible payload, as in trace data.
		payload := bytes.Repeat([]byte(fmt.Sprintf("event-from-rank-%d|", c.Rank())), 500)
		f, err := ParOpen(c, fsys, "z.sion", WriteMode, &Options{ChunkSize: 4096, FSBlockSize: 512})
		if err != nil {
			t.Error(err)
			return
		}
		zw, _ := NewZWriter(f)
		zw.Write(payload)
		if err := zw.Close(); err != nil {
			t.Error(err)
		}
		compressed := f.blockBytes[0]
		if compressed >= int64(len(payload))/2 {
			t.Errorf("rank %d: compression ineffective: %d of %d", c.Rank(), compressed, len(payload))
		}
		f.Close()

		r, _ := ParOpen(c, fsys, "z.sion", ReadMode, nil)
		zr, err := NewZReader(r)
		if err != nil {
			t.Error(err)
			return
		}
		got, err := io.ReadAll(zr)
		if err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, payload) {
			t.Errorf("rank %d: zlib round-trip mismatch", c.Rank())
		}
		zr.Close()
		r.Close()
	})
}

// --- Error handling ----------------------------------------------------------

func TestOpenMissingMultifile(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	if _, err := Open(fsys, "absent.sion"); err == nil {
		t.Fatal("Open of missing multifile succeeded")
	}
	mpi.Run(2, func(c *mpi.Comm) {
		if _, err := ParOpen(c, fsys, "absent.sion", ReadMode, nil); err == nil {
			t.Error("ParOpen of missing multifile succeeded")
		}
	})
}

func TestTaskCountMismatch(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	mpi.Run(4, func(c *mpi.Comm) {
		f, _ := ParOpen(c, fsys, "m.sion", WriteMode, &Options{ChunkSize: 64, FSBlockSize: 64})
		f.Write([]byte("data"))
		f.Close()
	})
	mpi.Run(3, func(c *mpi.Comm) {
		if _, err := ParOpen(c, fsys, "m.sion", ReadMode, nil); err == nil {
			t.Error("ParOpen with wrong task count succeeded")
		}
	})
}

func TestInvalidChunkSizeIsCollectiveError(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	mpi.Run(3, func(c *mpi.Comm) {
		size := int64(128)
		if c.Rank() == 1 {
			size = 0 // invalid on one rank only
		}
		_, err := ParOpen(c, fsys, "bad.sion", WriteMode, &Options{ChunkSize: size, FSBlockSize: 64})
		if err == nil {
			t.Errorf("rank %d: ParOpen with rank-1 zero chunk size succeeded", c.Rank())
		}
	})
}

func TestCorruptHeaderDetected(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	mpi.Run(2, func(c *mpi.Comm) {
		f, _ := ParOpen(c, fsys, "c.sion", WriteMode, &Options{ChunkSize: 64, FSBlockSize: 64})
		f.Write([]byte("ok"))
		f.Close()
	})
	fh, _ := fsys.OpenRW("c.sion")
	fh.WriteAt([]byte("XXXX"), 0) // clobber magic
	fh.Close()
	if _, err := Open(fsys, "c.sion"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestCorruptMetablock2CRC(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	mpi.Run(2, func(c *mpi.Comm) {
		f, _ := ParOpen(c, fsys, "crc.sion", WriteMode, &Options{ChunkSize: 64, FSBlockSize: 64})
		f.Write([]byte("ok"))
		f.Close()
	})
	fh, _ := fsys.OpenRW("crc.sion")
	sz, _ := fh.Size()
	fh.WriteAt([]byte{0xFF}, sz-tailSize-2) // flip a byte inside metablock 2
	fh.Close()
	if _, err := Open(fsys, "crc.sion"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestModeViolations(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	mpi.Run(2, func(c *mpi.Comm) {
		f, _ := ParOpen(c, fsys, "mv.sion", WriteMode, &Options{ChunkSize: 64, FSBlockSize: 64})
		if _, err := f.Read(make([]byte, 4)); err == nil {
			t.Error("Read on write handle succeeded")
		}
		f.Write([]byte("abcd"))
		f.Close()
		if _, err := f.Write([]byte("after close")); err == nil {
			t.Error("Write on closed handle succeeded")
		}

		r, _ := ParOpen(c, fsys, "mv.sion", ReadMode, nil)
		if _, err := r.Write([]byte("nope")); err == nil {
			t.Error("Write on read handle succeeded")
		}
		if err := r.EnsureFreeSpace(8); err == nil {
			t.Error("EnsureFreeSpace on read handle succeeded")
		}
		r.Close()
	})
}

func TestQuotaFailureSurfacesAndRepairRecovers(t *testing.T) {
	// Write with a quota that trips mid-run on the simulated FS (the
	// paper's §6 failure scenario), then repair from chunk headers.
	fs := simfs.New(simfs.Jugene())
	fs.SetQuota(1 << 20)
	e := vtime.NewEngine()
	const n = 4
	var quotaHit bool
	var mu sync.Mutex
	mpi.RunSim(e, n, mpi.DefaultCost, func(c *mpi.Comm) {
		fsys := fs.View(c.Rank(), c.Proc())
		f, err := ParOpen(c, fsys, "q.sion", WriteMode, &Options{ChunkSize: 4096, FSBlockSize: 4096, ChunkHeaders: true})
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 200; i++ {
			if _, err := f.Write(rankPayload(c.Rank(), 4096)); err != nil {
				if errors.Is(err, fsio.ErrQuota) {
					mu.Lock()
					quotaHit = true
					mu.Unlock()
				}
				break
			}
		}
		// The application dies before the collective close: no metablock 2.
		f.fh.Close()
	})
	if !quotaHit {
		t.Fatal("quota never tripped")
	}
	view := fs.View(0, nil)
	if _, err := Open(view, "q.sion"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open without close: %v, want ErrCorrupt", err)
	}
	if _, err := Repair(view, "q.sion"); err != nil {
		t.Fatal(err)
	}
	sf, err := Open(view, "q.sion")
	if err != nil {
		t.Fatalf("open after repair: %v", err)
	}
	sf.Close()
}

// --- Property-based tests -----------------------------------------------------

// Geometry invariants: chunks are block-aligned, non-overlapping, ordered,
// and capacity covers the requested size.
func TestGeometryProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		ntasks := 1 + rng.Intn(20)
		fsblk := int64(1) << (6 + rng.Intn(8)) // 64 .. 8192
		h := &header{
			FSBlockSize:  fsblk,
			NTasksGlobal: int32(ntasks),
			NTasksLocal:  int32(ntasks),
			NFiles:       1,
			GlobalRanks:  make([]int64, ntasks),
			ChunkSizes:   make([]int64, ntasks),
		}
		if rng.Intn(2) == 0 {
			h.Flags = flagChunkHeaders
		}
		for i := range h.ChunkSizes {
			h.GlobalRanks[i] = int64(i)
			h.ChunkSizes[i] = 1 + int64(rng.Intn(100000))
		}
		g := newGeometry(h)
		if g.start%fsblk != 0 {
			t.Fatalf("start %d not aligned to %d", g.start, fsblk)
		}
		if g.start < int64(h.encodedSize()) {
			t.Fatalf("start %d overlaps header %d", g.start, h.encodedSize())
		}
		var prev int64
		for i := 0; i < ntasks; i++ {
			if g.aligned[i]%fsblk != 0 {
				t.Fatalf("aligned[%d]=%d not a block multiple", i, g.aligned[i])
			}
			if g.capacity(i) < h.ChunkSizes[i] {
				t.Fatalf("capacity %d < requested %d", g.capacity(i), h.ChunkSizes[i])
			}
			off := g.chunkOff(i, 0)
			if off%fsblk != 0 {
				t.Fatalf("chunkOff(%d,0)=%d not block aligned", i, off)
			}
			if i > 0 && off < prev {
				t.Fatalf("chunk %d overlaps predecessor", i)
			}
			prev = off + g.aligned[i]
			// Block 1 of task i must start exactly stride later.
			if g.chunkOff(i, 1)-off != g.stride {
				t.Fatalf("stride violated for task %d", i)
			}
		}
		if prev != g.start+g.stride {
			t.Fatalf("stride %d != end of last chunk %d", g.stride, prev-g.start)
		}
	}
}

// Header and metablock-2 encode/parse round-trip over a memory file.
func TestMetadataEncodeParseProperty(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 50; iter++ {
		ntasks := 1 + rng.Intn(12)
		h := &header{
			FSBlockSize:  512,
			NTasksGlobal: int32(ntasks),
			NTasksLocal:  int32(ntasks),
			NFiles:       1,
			FileNum:      0,
			Flags:        uint64(rng.Intn(2)),
			MaxChunks:    int32(rng.Intn(10)),
			GlobalRanks:  make([]int64, ntasks),
			ChunkSizes:   make([]int64, ntasks),
			Mapping:      make([]FileLoc, ntasks),
		}
		for i := 0; i < ntasks; i++ {
			h.GlobalRanks[i] = int64(i)
			h.ChunkSizes[i] = 1 + int64(rng.Intn(1<<20))
			h.Mapping[i] = FileLoc{File: 0, LocalRank: int32(i)}
		}
		name := fmt.Sprintf("meta-%d.bin", iter)
		fh, _ := fsys.Create(name)
		fh.WriteAt(h.encode(), 0)
		got, err := parseHeader(fh)
		if err != nil {
			t.Fatal(err)
		}
		if got.NTasksLocal != h.NTasksLocal || got.FSBlockSize != h.FSBlockSize || got.Flags != h.Flags {
			t.Fatalf("header round-trip: %+v vs %+v", got, h)
		}
		for i := range h.ChunkSizes {
			if got.ChunkSizes[i] != h.ChunkSizes[i] || got.GlobalRanks[i] != h.GlobalRanks[i] {
				t.Fatalf("tables differ at %d", i)
			}
		}

		m2 := &meta2{BlockBytes: make([][]int64, ntasks)}
		for i := range m2.BlockBytes {
			bb := make([]int64, 1+rng.Intn(5))
			for b := range bb {
				bb[b] = int64(rng.Intn(1 << 20))
			}
			m2.BlockBytes[i] = bb
		}
		at := alignUp(int64(h.encodedSize()), 512)
		if _, err := writeTail(fh, m2, at); err != nil {
			t.Fatal(err)
		}
		gm, err := readTail(fh, ntasks)
		if err != nil {
			t.Fatal(err)
		}
		for i := range m2.BlockBytes {
			if len(gm.BlockBytes[i]) != len(m2.BlockBytes[i]) {
				t.Fatalf("m2 block count differs at %d", i)
			}
			for b := range m2.BlockBytes[i] {
				if gm.BlockBytes[i][b] != m2.BlockBytes[i][b] {
					t.Fatalf("m2 differs at %d/%d", i, b)
				}
			}
		}
		fh.Close()
	}
}

// Random write-pattern round trips: arbitrary piece sizes, chunk sizes,
// file counts, and backends must always reproduce each rank's stream.
func TestRandomRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 12; iter++ {
		n := 1 + rng.Intn(8)
		nfiles := 1 + rng.Intn(n)
		fsblk := int64(1) << (6 + rng.Intn(5))
		chunk := 1 + int64(rng.Intn(4000))
		sizes := make([]int, n)
		for i := range sizes {
			sizes[i] = rng.Intn(20000)
		}
		hdrs := rng.Intn(2) == 0
		fsys := fsio.NewOS(t.TempDir())
		ok := true
		mpi.Run(n, func(c *mpi.Comm) {
			f, err := ParOpen(c, fsys, "p.sion", WriteMode, &Options{
				ChunkSize: chunk, FSBlockSize: fsblk, NFiles: nfiles, ChunkHeaders: hdrs,
			})
			if err != nil {
				t.Error(err)
				ok = false
				return
			}
			payload := rankPayload(c.Rank(), sizes[c.Rank()])
			rest := payload
			pieceRng := rand.New(rand.NewSource(int64(iter*100 + c.Rank())))
			for len(rest) > 0 {
				k := 1 + pieceRng.Intn(1+len(rest)/2+1)
				if k > len(rest) {
					k = len(rest)
				}
				if _, err := f.Write(rest[:k]); err != nil {
					t.Error(err)
					ok = false
					break
				}
				rest = rest[k:]
			}
			f.Close()

			r, err := ParOpen(c, fsys, "p.sion", ReadMode, nil)
			if err != nil {
				t.Error(err)
				ok = false
				return
			}
			got := make([]byte, len(payload))
			if len(got) > 0 {
				if _, err := io.ReadFull(r, got); err != nil {
					t.Errorf("iter %d rank %d: %v", iter, c.Rank(), err)
					ok = false
				}
			}
			if !bytes.Equal(got, payload) {
				t.Errorf("iter %d rank %d: mismatch", iter, c.Rank())
				ok = false
			}
			if !r.EOF() {
				t.Errorf("iter %d rank %d: not EOF", iter, c.Rank())
				ok = false
			}
			r.Close()
		})
		if !ok {
			return
		}
		if err := Verify(fsys, "p.sion"); err != nil {
			t.Fatalf("iter %d: Verify: %v", iter, err)
		}
	}
}
