package sion

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/fsio"
	"repro/internal/mpi"
)

// Microbenchmarks of the library itself on the real file system, plus
// ablations of the design choices DESIGN.md calls out (chunk headers,
// physical-file counts, compression).

func benchmarkParallelWrite(b *testing.B, ntasks, nfiles int, chunk int64, hdrs bool) {
	b.Helper()
	fsys := fsio.NewOS(b.TempDir())
	payload := rankPayload(1, int(chunk))
	b.SetBytes(int64(ntasks) * chunk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("bench-%d.sion", i)
		mpi.Run(ntasks, func(c *mpi.Comm) {
			f, err := ParOpen(c, fsys, name, WriteMode, &Options{
				ChunkSize: chunk, NFiles: nfiles, ChunkHeaders: hdrs, FSBlockSize: 4096,
			})
			if err != nil {
				b.Error(err)
				return
			}
			f.Write(payload)
			f.Close()
		})
	}
}

func BenchmarkParallelWrite8Tasks1File(b *testing.B) {
	benchmarkParallelWrite(b, 8, 1, 64<<10, false)
}

func BenchmarkParallelWrite8Tasks4Files(b *testing.B) {
	benchmarkParallelWrite(b, 8, 4, 64<<10, false)
}

// Ablation: per-chunk headers buy recoverability for a small write cost.
func BenchmarkParallelWriteChunkHeaders(b *testing.B) {
	benchmarkParallelWrite(b, 8, 1, 64<<10, true)
}

func BenchmarkParallelRead8Tasks(b *testing.B) {
	fsys := fsio.NewOS(b.TempDir())
	const chunk = 64 << 10
	payload := rankPayload(1, chunk)
	mpi.Run(8, func(c *mpi.Comm) {
		f, _ := ParOpen(c, fsys, "r.sion", WriteMode, &Options{ChunkSize: chunk, FSBlockSize: 4096})
		f.Write(payload)
		f.Close()
	})
	b.SetBytes(8 * chunk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mpi.Run(8, func(c *mpi.Comm) {
			f, err := ParOpen(c, fsys, "r.sion", ReadMode, nil)
			if err != nil {
				b.Error(err)
				return
			}
			buf := make([]byte, chunk)
			io.ReadFull(f, buf)
			f.Close()
		})
	}
}

func BenchmarkSerialRankRead(b *testing.B) {
	fsys := fsio.NewOS(b.TempDir())
	const chunk = 256 << 10
	mpi.Run(4, func(c *mpi.Comm) {
		f, _ := ParOpen(c, fsys, "sr.sion", WriteMode, &Options{ChunkSize: chunk, FSBlockSize: 4096})
		f.Write(rankPayload(c.Rank(), chunk))
		f.Close()
	})
	buf := make([]byte, chunk)
	b.SetBytes(chunk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := OpenRank(fsys, "sr.sion", i%4)
		if err != nil {
			b.Fatal(err)
		}
		io.ReadFull(f, buf)
		f.Close()
	}
}

// Ablation: zlib-compressed logical streams vs raw.
func BenchmarkZlibWrite(b *testing.B) {
	fsys := fsio.NewOS(b.TempDir())
	payload := rankPayload(7, 256<<10)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("z-%d.sion", i)
		mpi.Run(1, func(c *mpi.Comm) {
			f, _ := ParOpen(c, fsys, name, WriteMode, &Options{ChunkSize: 512 << 10, FSBlockSize: 4096})
			zw, _ := NewZWriter(f)
			zw.Write(payload)
			zw.Close()
			f.Close()
		})
	}
}

func BenchmarkHeaderEncodeParse(b *testing.B) {
	fsys := fsio.NewOS(b.TempDir())
	h := &header{
		FSBlockSize: 4096, NTasksGlobal: 1024, NTasksLocal: 1024, NFiles: 1,
		GlobalRanks: make([]int64, 1024), ChunkSizes: make([]int64, 1024),
		Mapping: make([]FileLoc, 1024),
	}
	for i := range h.ChunkSizes {
		h.ChunkSizes[i] = 4096
		h.GlobalRanks[i] = int64(i)
		h.Mapping[i] = FileLoc{0, int32(i)}
	}
	fh, _ := fsys.Create("h.bin")
	defer fh.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fh.WriteAt(h.encode(), 0)
		if _, err := parseHeader(fh); err != nil {
			b.Fatal(err)
		}
	}
}
