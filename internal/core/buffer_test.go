package sion

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"repro/internal/fsio"
	"repro/internal/mpi"
	"repro/internal/simfs"
	"repro/internal/vtime"
)

// runSimOn runs body on n simulated ranks against an existing simulated FS
// (so request counters accumulate across phases).
func runSimOn(t *testing.T, fs *simfs.FS, n int, body func(c *mpi.Comm, v fsio.FileSystem)) {
	t.Helper()
	e := vtime.NewEngine()
	mpi.RunSim(e, n, mpi.DefaultCost, func(c *mpi.Comm) {
		body(c, fs.View(c.Rank(), c.Proc()))
	})
}

// TestBufferedWriteByteIdentity writes the same payloads through the
// direct path with several BufferSize settings (tiny, one block, auto,
// huge, and with chunk headers) and asserts the multifile segments are
// byte-identical to the unbuffered ones, with Flush interleaved.
func TestBufferedWriteByteIdentity(t *testing.T) {
	const n = 5
	const chunk = int64(700)
	const fsblk = int64(256)
	for _, hdrs := range []bool{false, true} {
		hdrs := hdrs
		t.Run(fmt.Sprintf("chunkHdrs=%v", hdrs), func(t *testing.T) {
			fsys := fsio.NewOS(t.TempDir())
			write := func(file string, bufSize int64) {
				mpi.Run(n, func(c *mpi.Comm) {
					f, err := ParOpen(c, fsys, file, WriteMode, &Options{
						ChunkSize: chunk, FSBlockSize: fsblk, NFiles: 2,
						ChunkHeaders: hdrs, BufferSize: bufSize,
					})
					if err != nil {
						t.Error(err)
						return
					}
					payload := rankPayload(c.Rank(), 1700+31*c.Rank())
					for off, i := 0, 0; off < len(payload); i++ {
						end := off + 37 + 13*(i%7)
						if end > len(payload) {
							end = len(payload)
						}
						if _, err := f.Write(payload[off:end]); err != nil {
							t.Error(err)
							return
						}
						if i%5 == 4 {
							if err := f.Flush(); err != nil {
								t.Error(err)
							}
						}
						off = end
					}
					if err := f.Close(); err != nil {
						t.Error(err)
					}
				})
			}
			write("plain.sion", 0)
			for _, bs := range []int64{17, fsblk, BufferAuto, 1 << 20} {
				file := fmt.Sprintf("buf%d.sion", bs)
				write(file, bs)
				for k := 0; k < 2; k++ {
					mustEqualFiles(t, fsys, fileName("plain.sion", k), fileName(file, k))
				}
			}
		})
	}
}

// TestBufferedWriteRequestReduction proves the write-behind claim on the
// simulated file system: the small-record workload issues at least 10×
// fewer write requests through an auto-sized staging buffer.
func TestBufferedWriteRequestReduction(t *testing.T) {
	const n = 4
	const chunk = int64(256 << 10)
	const record = 128
	run := func(file string, bufSize int64) int64 {
		fs := runSim(t, n, func(c *mpi.Comm, fsys fsio.FileSystem) {
			f, err := ParOpen(c, fsys, file, WriteMode, &Options{
				ChunkSize: chunk, BufferSize: bufSize,
			})
			if err != nil {
				panic(err)
			}
			rec := make([]byte, record)
			for i := 0; i < int(chunk)/record; i++ {
				if _, err := f.Write(rec); err != nil {
					panic(err)
				}
			}
			if err := f.Close(); err != nil {
				panic(err)
			}
		})
		st, ok := fs.Stats(file)
		if !ok {
			t.Fatalf("no stats for %s", file)
		}
		return st.WriteRequests
	}
	direct := run("direct.sion", 0)
	buffered := run("buffered.sion", BufferAuto)
	if buffered*10 > direct {
		t.Errorf("buffered write requests %d not ≥10× below direct %d", buffered, direct)
	}
}

// TestBufferedReadAhead asserts that a buffered read handle serves the
// sequential and random-access paths correctly (Seek included) and issues
// far fewer read requests than the unbuffered handle.
func TestBufferedReadAhead(t *testing.T) {
	const n = 4
	const chunk = int64(64 << 10)
	const record = 128
	nrec := int(chunk) / record

	write := func(fsys fsio.FileSystem) {
		mpi.Run(n, func(c *mpi.Comm) {
			f, err := ParOpen(c, fsys, "ra.sion", WriteMode, &Options{ChunkSize: chunk})
			if err != nil {
				panic(err)
			}
			if _, err := f.Write(rankPayload(c.Rank(), int(2*chunk))); err != nil {
				panic(err)
			}
			if err := f.Close(); err != nil {
				panic(err)
			}
		})
	}

	// Correctness on the OS backend: sequential reads, Seek replays, and
	// ReadLogicalAt probes against the expected payload.
	fsys := fsio.NewOS(t.TempDir())
	write(fsys)
	mpi.Run(n, func(c *mpi.Comm) {
		f, err := ParOpen(c, fsys, "ra.sion", ReadMode, &Options{BufferSize: 3 * record})
		if err != nil {
			t.Error(err)
			return
		}
		defer f.Close()
		payload := rankPayload(c.Rank(), int(2*chunk))
		got := make([]byte, len(payload))
		if _, err := io.ReadFull(f, got); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		if !bytes.Equal(got, payload) {
			t.Errorf("rank %d: buffered sequential read mismatch", c.Rank())
		}
		// Seek back into the middle of block 0 and re-read across the
		// chunk boundary; the cursor semantics must match the metadata.
		if err := f.Seek(0, chunk-int64(record)); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		span := make([]byte, 2*record)
		if _, err := io.ReadFull(f, span); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		if want := payload[chunk-int64(record) : chunk+int64(record)]; !bytes.Equal(span, want) {
			t.Errorf("rank %d: post-Seek read mismatch", c.Rank())
		}
		probe := make([]byte, 999)
		if _, err := f.ReadLogicalAt(probe, 777); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
		} else if !bytes.Equal(probe, payload[777:777+999]) {
			t.Errorf("rank %d: buffered ReadLogicalAt mismatch", c.Rank())
		}
	})

	// Request reduction on the simulated backend.
	reads := func(bufSize int64) int64 {
		fs := runSim(t, n, func(c *mpi.Comm, v fsio.FileSystem) {
			f, err := ParOpen(c, v, "ra.sion", WriteMode, &Options{ChunkSize: chunk})
			if err != nil {
				panic(err)
			}
			f.WriteSynthetic(2 * chunk)
			f.Close()
		})
		before, _ := fs.Stats("ra.sion")
		runSimOn(t, fs, n, func(c *mpi.Comm, v fsio.FileSystem) {
			var opts *Options
			if bufSize != 0 {
				opts = &Options{BufferSize: bufSize}
			}
			f, err := ParOpen(c, v, "ra.sion", ReadMode, opts)
			if err != nil {
				panic(err)
			}
			buf := make([]byte, record)
			for i := 0; i < 2*nrec; i++ {
				if _, err := f.Read(buf); err != nil {
					panic(err)
				}
			}
			f.Close()
		})
		after, _ := fs.Stats("ra.sion")
		return after.ReadRequests - before.ReadRequests
	}
	direct := reads(0)
	buffered := reads(BufferAuto)
	if buffered*10 > direct {
		t.Errorf("buffered read requests %d not ≥10× below direct %d", buffered, direct)
	}
}

// TestWriteSyntheticFlushesStage interleaves buffered Writes with
// WriteSynthetic and checks the final content: the staged bytes must land
// at their original offsets (before the synthetic region), not after it.
func TestWriteSyntheticFlushesStage(t *testing.T) {
	const chunk = int64(4096)
	fsys := fsio.NewOS(t.TempDir())
	mpi.Run(2, func(c *mpi.Comm) {
		f, err := ParOpen(c, fsys, "syn.sion", WriteMode, &Options{
			ChunkSize: chunk, BufferSize: 1024,
		})
		if err != nil {
			t.Error(err)
			return
		}
		head := rankPayload(c.Rank(), 300)
		tail := rankPayload(c.Rank()+100, 200)
		if _, err := f.Write(head); err != nil {
			t.Error(err)
		}
		if err := f.WriteSynthetic(500); err != nil {
			t.Error(err)
		}
		if _, err := f.Write(tail); err != nil {
			t.Error(err)
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	for r := 0; r < 2; r++ {
		f, err := OpenRank(fsys, "syn.sion", r)
		if err != nil {
			t.Fatal(err)
		}
		want := append(append(append([]byte{}, rankPayload(r, 300)...), make([]byte, 500)...), rankPayload(r+100, 200)...)
		got := make([]byte, len(want))
		if _, err := io.ReadFull(f, got); err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("rank %d: WriteSynthetic interleaving corrupted the stream", r)
		}
		f.Close()
	}
}

// TestSerialBufferedRoundTrip drives the serial handle through buffered
// writes with Seek interleaving (cursor hops between ranks) and buffered
// reads, asserting byte-identity with an unbuffered serial write.
func TestSerialBufferedRoundTrip(t *testing.T) {
	const ntasks = 3
	chunks := []int64{300, 500, 400}
	payloads := make([][]byte, ntasks)
	for r := range payloads {
		payloads[r] = rankPayload(r, 900+100*r)
	}
	write := func(fsys fsio.FileSystem, bufSize int64) {
		sf, err := Create(fsys, "s.sion", chunks, &Options{FSBlockSize: 128, BufferSize: bufSize})
		if err != nil {
			t.Fatal(err)
		}
		// Interleave: write each task's payload in pieces, round-robin,
		// so every piece forces a Seek away and back.
		offs := make([]int, ntasks)
		for done := 0; done < ntasks; {
			done = 0
			for r := 0; r < ntasks; r++ {
				if offs[r] >= len(payloads[r]) {
					done++
					continue
				}
				end := offs[r] + 111
				if end > len(payloads[r]) {
					end = len(payloads[r])
				}
				capr := alignUp(chunks[r], 128)
				block := int64(offs[r]) / capr
				pos := int64(offs[r]) % capr
				if err := sf.Seek(r, int(block), pos); err != nil {
					t.Fatal(err)
				}
				if _, err := sf.Write(payloads[r][offs[r]:end]); err != nil {
					t.Fatal(err)
				}
				offs[r] = end
			}
		}
		if err := sf.Close(); err != nil {
			t.Fatal(err)
		}
	}
	plain := fsio.NewOS(t.TempDir())
	write(plain, 0)
	for _, bs := range []int64{33, BufferAuto} {
		buffered := fsio.NewOS(t.TempDir())
		write(buffered, bs)
		// Compare the two trees' physical files byte-for-byte.
		for k := 0; k < 1; k++ {
			a, err := plain.Open(fileName("s.sion", k))
			if err != nil {
				t.Fatal(err)
			}
			b, err := buffered.Open(fileName("s.sion", k))
			if err != nil {
				t.Fatal(err)
			}
			as, _ := a.Size()
			bs2, _ := b.Size()
			if as != bs2 {
				t.Fatalf("buffer %d: sizes differ: %d vs %d", bs, as, bs2)
			}
			ab := make([]byte, as)
			bb := make([]byte, bs2)
			a.ReadAt(ab, 0)
			b.ReadAt(bb, 0)
			if !bytes.Equal(ab, bb) {
				t.Errorf("buffer %d: serial multifile not byte-identical", bs)
			}
			a.Close()
			b.Close()
		}
		// Buffered read-back through the serial global view.
		sf, err := Open(buffered, "s.sion")
		if err != nil {
			t.Fatal(err)
		}
		if err := sf.SetBufferSize(BufferAuto); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < ntasks; r++ {
			got, err := sf.ReadRank(r)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payloads[r]) {
				t.Errorf("buffer %d: rank %d buffered serial read mismatch", bs, r)
			}
		}
		sf.Close()
	}
}

// TestSetBufferSizeValidation covers the error paths of the staging
// configuration.
func TestSetBufferSizeValidation(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	mpi.Run(2, func(c *mpi.Comm) {
		f, err := ParOpen(c, fsys, "v.sion", WriteMode, &Options{ChunkSize: 512})
		if err != nil {
			t.Error(err)
			return
		}
		if err := f.SetBufferSize(-2); err == nil {
			t.Error("SetBufferSize(-2) did not fail")
		}
		if err := f.SetBufferSize(64); err != nil {
			t.Error(err)
		}
		if _, err := f.Write(make([]byte, 100)); err != nil {
			t.Error(err)
		}
		if err := f.SetBufferSize(0); err != nil { // flushes and disables
			t.Error(err)
		}
		f.Close()
	})
	if _, err := (&Options{ChunkSize: 1, BufferSize: -5}).withDefaults(1, fsio.Capabilities{}); err == nil {
		t.Error("Options.BufferSize=-5 accepted")
	}
}

// TestKeyReaderRespectsStagingOptOut: an explicit SetBufferSize(0) must
// keep NewKeyReader from arming its automatic read-ahead, while the
// default (no call) arms it.
func TestKeyReaderRespectsStagingOptOut(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	mpi.Run(1, func(c *mpi.Comm) {
		f, err := ParOpen(c, fsys, "k.sion", WriteMode, &Options{ChunkSize: 1024})
		if err != nil {
			t.Error(err)
			return
		}
		w, _ := NewKeyWriter(f)
		w.WriteKey(7, []byte("payload"))
		f.Close()
	})
	open := func(optOut bool) *File {
		f, err := OpenRank(fsys, "k.sion", 0)
		if err != nil {
			t.Fatal(err)
		}
		if optOut {
			if err := f.SetBufferSize(0); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := NewKeyReader(f); err != nil {
			t.Fatal(err)
		}
		return f
	}
	f := open(false)
	if f.rstage == nil {
		t.Error("NewKeyReader did not arm read-ahead by default")
	}
	f.Close()
	f = open(true)
	if f.rstage != nil {
		t.Error("NewKeyReader overrode an explicit SetBufferSize(0) opt-out")
	}
	f.Close()
}
