package sion

import (
	"encoding/binary"

	"repro/internal/fsio"
	"repro/internal/mpi"
)

// Capability distribution for parallel opens. Geometry decisions
// (NFiles, staging sizes, flush units — see Options.withDefaults) must
// be identical on every task of a collective open, but each task holds
// its own fsio binding whose decorator stack may differ. Rank 0's view
// is therefore authoritative: it encodes its backend descriptor with
// the fsio wire codec and broadcasts the bytes, so all ranks tune from
// one descriptor — the same single-source pattern the FS block size
// already follows.

// capsWireWords is the broadcast shape: one length word plus the padded
// descriptor payload (BcastInt64s requires every rank to pass the same
// shape, so the encoding is fixed-size).
const capsWireWords = 1 + (fsio.MaxEncodedCapsLen+7)/8

// bcastCapabilities distributes rank 0's backend capability descriptor
// across comm. Any decode problem degrades to the zero (conservative
// POSIX-ish) descriptor on every rank alike.
func bcastCapabilities(comm *mpi.Comm, fsys fsio.FileSystem) fsio.Capabilities {
	buf := make([]int64, capsWireWords)
	if comm.Rank() == 0 {
		enc := fsio.CapabilitiesOf(fsys).Encode()
		buf[0] = int64(len(enc))
		padded := make([]byte, (capsWireWords-1)*8)
		copy(padded, enc)
		for i := 1; i < capsWireWords; i++ {
			buf[i] = int64(binary.LittleEndian.Uint64(padded[(i-1)*8:]))
		}
	}
	got := comm.BcastInt64s(0, buf)
	n := int(got[0])
	if n <= 0 || n > (capsWireWords-1)*8 {
		return fsio.Capabilities{}
	}
	raw := make([]byte, (capsWireWords-1)*8)
	for i := 1; i < capsWireWords; i++ {
		binary.LittleEndian.PutUint64(raw[(i-1)*8:], uint64(got[i]))
	}
	caps, err := fsio.DecodeCapabilities(raw[:n])
	if err != nil {
		return fsio.Capabilities{}
	}
	return caps
}
