package sion

import (
	"compress/zlib"
	"fmt"
	"io"
)

// NewZWriter layers transparent zlib compression over a logical task-local
// file opened for writing, implementing the paper's §6 plan of integrating
// zlib "to avoid customizations such as the one described in the context of
// Scalasca". The returned writer must be closed (before the File) to flush
// the compressed stream.
//
// The compressed stream is stored through the ordinary chunk logic, so all
// multifile semantics (alignment, multiple blocks, serial access) are
// preserved; readers use NewZReader.
func NewZWriter(f io.Writer) (io.WriteCloser, error) {
	return zlib.NewWriter(f), nil
}

// NewZWriterLevel is NewZWriter with an explicit zlib compression level.
func NewZWriterLevel(f io.Writer, level int) (io.WriteCloser, error) {
	zw, err := zlib.NewWriterLevel(f, level)
	if err != nil {
		return nil, fmt.Errorf("sion: zlib writer: %w", err)
	}
	return zw, nil
}

// NewZReader layers zlib decompression over a logical task-local file
// opened for reading. Because File.Read reports io.EOF exactly at the end
// of the task's recorded data, the decompressor terminates cleanly at the
// chunk end — the two-line gzread customization the paper had to apply to
// Scalasca (§5.2) is unnecessary here.
func NewZReader(f io.Reader) (io.ReadCloser, error) {
	zr, err := zlib.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("sion: zlib reader: %w", err)
	}
	return zr, nil
}
