package sion

import "fmt"

// Collective write mode, modelled on SIONlib's collective I/O extension
// (sion_coll_fwrite): when chunks are small, having every task issue its
// own write requests wastes the file system's request path. In collective
// mode, groups of consecutive local tasks designate their first member as
// a collector; at close, members ship their buffered data to the
// collector, which issues one large write per member region. Only the
// collectors touch the file, cutting the number of writers by the group
// factor while the multifile layout stays identical — a multifile written
// collectively is indistinguishable from one written directly.
//
// Enabled via Options.CollectorGroup > 1. In collective mode, Write
// buffers in memory; the data moves at Close.

// Message tags for the collective exchange.
const (
	tagCollSize = 4201
	tagCollData = 4202
	tagCollDone = 4203
)

// collState holds a task's buffered data in collective mode.
type collState struct {
	group int // tasks per collector
	buf   []byte
}

// collectiveEnabled reports whether this handle buffers for collection.
func (f *File) collectiveEnabled() bool { return f.coll != nil }

// collWrite buffers p (collective-mode Write path).
func (f *File) collWrite(p []byte) (int, error) {
	f.coll.buf = append(f.coll.buf, p...)
	return len(p), nil
}

// collClose runs the collection exchange and the collectors' writes.
// Called from Close before the metadata gather; it fills f.blockBytes as
// a direct write would have.
func (f *File) collClose() error {
	g := f.coll.group
	lrank := f.lcomm.Rank()
	lead := lrank - lrank%g // collector of my group
	isLead := lrank == lead

	if !isLead {
		// Ship my buffered data and chunk arithmetic to the collector.
		f.lcomm.Send(lead, tagCollSize, encodeInt64s([]int64{
			int64(len(f.coll.buf)),
			f.geo.chunkOff(geoIndex, 0),
			f.geo.aligned[geoIndex],
			f.geo.stride,
		}))
		f.lcomm.Send(lead, tagCollData, f.coll.buf)
		// Receive my resulting per-block byte counts.
		f.blockBytes = decodeInt64s(f.lcomm.Recv(lead, tagCollDone))
		f.curBlock = len(f.blockBytes) - 1
		f.pos = f.blockBytes[f.curBlock]
		return nil
	}

	// Collector: write my own buffer first, then each member's.
	if err := f.writeRegion(f.geo.chunkOff(geoIndex, 0), f.geo.aligned[geoIndex], f.geo.stride, f.coll.buf, true); err != nil {
		return err
	}
	end := lead + g
	if end > f.lcomm.Size() {
		end = f.lcomm.Size()
	}
	for m := lead + 1; m < end; m++ {
		hdr := decodeInt64s(f.lcomm.Recv(m, tagCollSize))
		data := f.lcomm.Recv(m, tagCollData)
		if int64(len(data)) != hdr[0] {
			return fmt.Errorf("sion: %s: collector got %d bytes from member %d, announced %d",
				f.name, len(data), m, hdr[0])
		}
		bb, err := f.writeRegionFor(hdr[1], hdr[2], hdr[3], data)
		if err != nil {
			return err
		}
		f.lcomm.Send(m, tagCollDone, encodeInt64s(bb))
	}
	return nil
}

// writeRegion writes the collector's own buffered data through the normal
// chunk logic (self = true fills f.blockBytes directly).
func (f *File) writeRegion(chunk0, aligned, stride int64, data []byte, self bool) error {
	bb, err := f.writeRegionFor(chunk0, aligned, stride, data)
	if err != nil {
		return err
	}
	if self {
		f.blockBytes = bb
		f.curBlock = len(bb) - 1
		f.pos = bb[f.curBlock]
	}
	return nil
}

// writeRegionFor writes one member's logical stream into its chunk series
// (chunk 0 at chunk0, capacity `aligned` minus header, advancing by
// stride per block) and returns the per-block byte counts.
func (f *File) writeRegionFor(chunk0, aligned, stride int64, data []byte) ([]int64, error) {
	capacity := aligned
	if capacity <= 0 {
		return nil, fmt.Errorf("sion: %s: collective member chunk capacity %d", f.name, capacity)
	}
	bb := []int64{0}
	block := 0
	pos := int64(0)
	for len(data) > 0 || block == 0 {
		w := int64(len(data))
		if w > capacity-pos {
			w = capacity - pos
		}
		if w > 0 {
			off := chunk0 + int64(block)*stride + pos
			if _, err := f.fh.WriteAt(data[:w], off); err != nil {
				return nil, fmt.Errorf("sion: %s: collective write: %w", f.name, err)
			}
			pos += w
			bb[block] = pos
			data = data[w:]
		}
		if len(data) == 0 {
			break
		}
		block++
		pos = 0
		bb = append(bb, 0)
	}
	return bb, nil
}

// encodeInt64s / decodeInt64s: little-endian int64 slice codec for the
// collective exchange payloads.
func encodeInt64s(vals []int64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		le().PutUint64(out[8*i:], uint64(v))
	}
	return out
}

func decodeInt64s(b []byte) []int64 {
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(le().Uint64(b[8*i:]))
	}
	return out
}

// initCollective arms collective mode on a freshly opened write handle.
func (f *File) initCollective(group int) {
	if group <= 1 || f.lcomm == nil {
		return
	}
	f.coll = &collState{group: group}
}
