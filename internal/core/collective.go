package sion

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/fsio"
	"repro/internal/vtime"
)

// Collective I/O, modelled on SIONlib's collective extension
// (sion_coll_fwrite) and its read-side counterpart: when chunks are small,
// having every task issue its own file requests wastes the file system's
// request path. Groups of consecutive local tasks designate their first
// member as a collector; only the collectors open and touch the physical
// file, cutting the number of clients by the group factor while the
// multifile layout stays identical — a multifile written collectively is
// byte-identical to one written directly.
//
// Three modes build on the same frame protocol:
//
//   - Synchronous collective write (Options.CollectorGroup, the original
//     mode): members buffer everything and ship one final frame at Close;
//     the collector issues one large write per member region.
//   - Asynchronous collective write (Options.AsyncCollective): members
//     stage data in double buffers of Options.AsyncFlushBytes and ship
//     each full buffer immediately (sends are eager, so members never
//     stall). The collector flushes frames in the background — a flusher
//     goroutine with a bounded queue in real mode, opportunistic
//     arrival-time draining in simulated mode (the vtime engine runs one
//     process at a time, so background progress is made whenever the
//     collector itself enters Write/Flush) — overlapping member
//     computation with file I/O. Errors are deferred to Flush/Close.
//   - Collective read (CollectorGroup in read mode): at open, each member
//     sends its chunk geometry to its collector, which issues one large
//     read per member chunk region and scatters the concatenated logical
//     data; members then serve Read/ReadLogicalAt from memory without
//     ever opening the physical file.
//
// Group sizing: a fixed CollectorGroup > 1, or CollectorAuto (-1) which
// targets collector regions of autoCollectTargetBlocks FS blocks (see
// autoCollectorGroup in options.go). The resolved size is computed once at
// each physical file's master and scattered with the chunk geometry, so it
// is consistent across the group even with per-task chunk sizes.

// Message tags for the collective exchanges.
const (
	tagCollData = 4202 // write-side data frames (member → collector)
	tagCollDone = 4203 // write-side completion status (collector → member)
	tagCollReq  = 4204 // read-side region request (member → collector)
	tagCollRead = 4205 // read-side data (collector → member)
)

// asyncQueueDepth bounds the collector's local frame queue in real mode:
// the collector's own Write backpressures once this many staging buffers
// are waiting for the flusher.
const asyncQueueDepth = 4

// asyncFlushCap bounds the auto-sized staging buffer (Options.AsyncFlushBytes
// = 0): one chunk capacity, but never more than this.
const asyncFlushCap = 4 << 20

// collFrame is one unit of member data in flight to its collector. Frames
// carry the member's chunk arithmetic so the collector needs no per-member
// state: logical bytes [logicalOff, logicalOff+len(data)) of the member's
// stream land in its chunk series (capacity bytes per block, block b's
// chunk data starting at chunk0 + b*stride).
type collFrame struct {
	logicalOff int64
	final      bool
	member     int64 // local rank of the member that produced the data
	chunk0     int64
	capacity   int64
	stride     int64
	data       []byte
}

const collFrameHdr = 7 * 8

func (fr *collFrame) encode() []byte {
	fin := int64(0)
	if fr.final {
		fin = 1
	}
	buf := encodeInt64s([]int64{fr.logicalOff, fin, fr.member, fr.chunk0, fr.capacity, fr.stride, int64(len(fr.data))})
	return append(buf, fr.data...)
}

func decodeCollFrame(raw []byte) (collFrame, error) {
	if len(raw) < collFrameHdr {
		return collFrame{}, fmt.Errorf("sion: collective frame truncated (%d bytes)", len(raw))
	}
	v := decodeInt64s(raw[:collFrameHdr])
	if int64(len(raw)-collFrameHdr) != v[6] {
		return collFrame{}, fmt.Errorf("sion: collective frame announced %d bytes, carries %d", v[6], len(raw)-collFrameHdr)
	}
	return collFrame{
		logicalOff: v[0], final: v[1] != 0, member: v[2],
		chunk0: v[3], capacity: v[4], stride: v[5],
		data: raw[collFrameHdr:],
	}, nil
}

// collState holds a task's collective-write state.
type collState struct {
	group   int   // tasks per collector
	lead    int   // local rank of my group's collector
	members []int // collector only: local ranks of the other group members
	async   bool
	quantum int64 // async staging-buffer size

	// Member-side staging (every participant, the collector included).
	buf     []byte
	spare   []byte // double-buffer partner (members reuse; see collEmit)
	shipped int64  // logical bytes already emitted as frames

	// Collector-side flusher state.
	queue  chan collFrame // real-mode bounded hand-off to the flusher
	done   chan struct{}  // closed when the real-mode flusher exits
	simf   *simFlusher    // sim-mode background flusher process
	finals map[int]bool   // members whose final frame has been taken
	mu     sync.Mutex     // guards ferr and applied (flusher vs. collector)
	ferr   error          // first deferred write error

	// Watermark progress (Options.Watermarks, collector only): per member
	// local rank, logical bytes fully applied to the physical file and the
	// member's chunk capacity (from its frames). Updated by whichever
	// context applies frames (possibly the real-mode flusher goroutine),
	// snapshotted under mu by collCommitWatermarks. wmTotals tracks the
	// last committed totals so unchanged members skip cell writes; it is
	// touched only by the collector's own Flush/Close path.
	applied  map[int]collProgress
	wmTotals map[int]int64
}

// collProgress is one member's applied-bytes high-water mark.
type collProgress struct {
	bytes    int64
	capacity int64
}

// workerSpawner is implemented by file systems (simfs views) that can
// host a background worker with its own cost-accounting context.
type workerSpawner interface {
	SpawnWorker(func(fsio.FileSystem, *vtime.Proc)) *vtime.Proc
}

// simFrame is a frame handed to the sim-mode flusher, stamped with the
// virtual time of the hand-off (the flusher cannot write data before it
// existed).
type simFrame struct {
	fr collFrame
	at float64
}

// simFlusher is the simulated-mode analog of the real-mode flusher
// goroutine: a vtime process spawned per collector that applies frames on
// its own virtual clock, so collector file I/O overlaps the collector's
// computation exactly as the background goroutine overlaps it on a real
// machine. All fields are exchanged under the vtime engine's one-process-
// at-a-time execution model.
type simFlusher struct {
	proc      *vtime.Proc
	frames    []simFrame
	closed    bool // no more frames will be enqueued
	waiting   bool // flusher is blocked on an empty queue
	closeWait bool // collector is blocked waiting for the flusher to finish
	finished  bool
}

// collReadState serves a task's reads from the prefetched logical stream
// its collector scattered at open.
type collReadState struct {
	buf  []byte
	base []int64 // logical offset of each block's first byte (prefix sums)
}

// collectiveEnabled reports whether this write handle buffers for collection.
func (f *File) collectiveEnabled() bool { return f.coll != nil }

// Collective reports the collector group size in effect for this handle
// (0 = direct I/O) and whether the task acts as a collector.
func (f *File) Collective() (group int, collector bool) {
	return f.collGroup, f.collLead
}

// initCollective arms collective write mode on a freshly opened handle.
// group is the resolved size scattered by the file master.
func (f *File) initCollective(group int, async bool, flushBytes int64) {
	if group <= 1 || f.lcomm == nil {
		return
	}
	lrank := f.lcomm.Rank()
	lead := lrank - lrank%group
	c := &collState{group: group, lead: lead, async: async}
	f.coll = c
	f.collGroup = group
	f.collLead = lrank == lead
	if async {
		c.quantum = flushBytes
		if c.quantum == 0 {
			c.quantum = f.geo.capacity(geoIndex)
			if c.quantum > asyncFlushCap {
				c.quantum = asyncFlushCap
			}
		}
	}
	if !f.collLead {
		return
	}
	end := lead + group
	if end > f.lcomm.Size() {
		end = f.lcomm.Size()
	}
	for m := lead + 1; m < end; m++ {
		c.members = append(c.members, m)
	}
	c.finals = make(map[int]bool, len(c.members))
	c.applied = make(map[int]collProgress, len(c.members)+1)
	c.wmTotals = make(map[int]int64, len(c.members)+1)
	if async {
		if f.lcomm.Proc() == nil {
			// Real mode: background flusher goroutine per collector.
			c.done = make(chan struct{})
			c.queue = make(chan collFrame, asyncQueueDepth)
			go f.collFlusher()
		} else if ws, ok := f.fsys.(workerSpawner); ok {
			// Simulated mode: background flusher process per collector,
			// with its own clock and its own handle on the physical file,
			// so flushes overlap the collector's compute time.
			c.simf = &simFlusher{}
			c.simf.proc = ws.SpawnWorker(func(wfs fsio.FileSystem, p *vtime.Proc) {
				f.runSimFlusher(wfs, p)
			})
		}
		// Otherwise (sim mode on a file system without worker support):
		// frames are applied inline at emit/drain points.
	}
}

// runSimFlusher is the body of the sim-mode background flusher process.
func (f *File) runSimFlusher(wfs fsio.FileSystem, p *vtime.Proc) {
	c := f.coll
	sf := c.simf
	fh, err := wfs.OpenRW(fileName(f.name, f.filenum))
	if err != nil {
		f.collNote(fmt.Errorf("sion: %s: async flusher open: %w", f.name, err))
	}
	for {
		if len(sf.frames) == 0 {
			if sf.closed {
				break
			}
			sf.waiting = true
			p.Block()
			sf.waiting = false
			continue
		}
		s := sf.frames[0]
		sf.frames = sf.frames[1:]
		if s.at > p.Now() {
			p.AdvanceTo(s.at)
		}
		if fh != nil {
			f.collApply(fh, s.fr)
		}
		putStageBuf(s.fr.data)
	}
	if fh != nil {
		if cerr := fh.Close(); cerr != nil {
			f.collNote(cerr)
		}
	}
	sf.finished = true
	if sf.closeWait {
		p.WakeAt(f.lcomm.Proc(), p.Now())
	}
}

// simEnqueue hands a frame to the sim-mode flusher, waking it if idle.
func (f *File) simEnqueue(fr collFrame) {
	sf := f.coll.simf
	p := f.lcomm.Proc()
	sf.frames = append(sf.frames, simFrame{fr: fr, at: p.Now()})
	if sf.waiting {
		sf.waiting = false
		p.WakeAt(sf.proc, p.Now())
	}
}

// collWrite buffers p (collective-mode Write path). In async mode, full
// staging buffers are emitted as frames immediately.
func (f *File) collWrite(p []byte) (int, error) {
	c := f.coll
	total := len(p)
	if !c.async {
		c.buf = append(c.buf, p...)
		return total, nil
	}
	for len(p) > 0 {
		room := c.quantum - int64(len(c.buf))
		w := int64(len(p))
		if w > room {
			w = room
		}
		c.buf = append(c.buf, p[:w]...)
		p = p[w:]
		if int64(len(c.buf)) == c.quantum {
			if err := f.collEmit(false); err != nil {
				return total - len(p), err
			}
		}
	}
	// A collector in simulated mode makes background progress here: apply
	// any member frames that have already arrived in virtual time.
	if f.collLead && f.lcomm.Proc() != nil {
		f.collDrainArrived()
	}
	return total, nil
}

// collEmit ships the current staging buffer as one frame. Members hand the
// buffer to mpi.Send (which copies), so the two staging buffers can be
// swapped and reused — the double-buffering that lets a member keep
// writing while its previous buffer is in flight. The collector's own
// frames keep their backing array (the real-mode flusher writes from it
// concurrently), so the collector starts a fresh staging buffer instead.
func (f *File) collEmit(final bool) error {
	c := f.coll
	fr := collFrame{
		logicalOff: c.shipped,
		final:      final,
		member:     int64(f.local),
		chunk0:     f.geo.dataOff(geoIndex, 0),
		capacity:   f.geo.capacity(geoIndex),
		stride:     f.geo.stride,
		data:       c.buf,
	}
	c.shipped += int64(len(c.buf))
	if !f.collLead {
		f.lcomm.Send(c.lead, tagCollData, fr.encode())
		// Swap the staging buffers (on the first swap c.buf becomes nil,
		// which append simply materializes on the next Write).
		c.buf, c.spare = c.spare[:0], c.buf[:0]
		return nil
	}
	if c.async && c.queue != nil { // real mode: bounded flusher queue
		c.queue <- fr
		c.buf = getStageBuf(c.quantum) // the flusher recycles fr.data
		return nil
	}
	if c.async && c.simf != nil { // sim mode: background flusher process
		f.simEnqueue(fr)
		c.buf = getStageBuf(c.quantum)
		return nil
	}
	// Collector applying its own data inline (sync mode, or async without
	// a background worker).
	err := f.collApply(f.fh, fr)
	c.buf = c.buf[:0]
	return err
}

// collApply writes one frame through the given handle and records the
// member's applied high-water mark (the basis of the collector's watermark
// commits). Any write error is noted for the deferred status and returned.
func (f *File) collApply(fh fsio.File, fr collFrame) error {
	if err := applyCollFrame(fh, f.name, fr); err != nil {
		f.collNote(err)
		return err
	}
	c := f.coll
	c.mu.Lock()
	pr := c.applied[int(fr.member)]
	if end := fr.logicalOff + int64(len(fr.data)); end > pr.bytes {
		pr.bytes = end
	}
	pr.capacity = fr.capacity
	c.applied[int(fr.member)] = pr
	c.mu.Unlock()
	return nil
}

// applyCollFrame writes one frame into its member's chunk series through
// the given handle (the collector's own, or the sim flusher's).
func applyCollFrame(fh fsio.File, name string, fr collFrame) error {
	if fr.capacity <= 0 {
		return fmt.Errorf("sion: %s: collective member chunk capacity %d", name, fr.capacity)
	}
	data := fr.data
	block := fr.logicalOff / fr.capacity
	pos := fr.logicalOff % fr.capacity
	for len(data) > 0 {
		w := int64(len(data))
		if w > fr.capacity-pos {
			w = fr.capacity - pos
		}
		off := fr.chunk0 + block*fr.stride + pos
		if _, err := fh.WriteAt(data[:w], off); err != nil {
			return fmt.Errorf("sion: %s: collective write: %w", name, err)
		}
		data = data[w:]
		pos += w
		if pos == fr.capacity {
			block++
			pos = 0
		}
	}
	return nil
}

// collNote records a deferred flusher error (first one wins).
func (f *File) collNote(err error) {
	if err == nil {
		return
	}
	c := f.coll
	c.mu.Lock()
	if c.ferr == nil {
		c.ferr = err
	}
	c.mu.Unlock()
}

func (f *File) collErr() error {
	c := f.coll
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ferr
}

// collTake decodes one raw member frame and routes it to the active
// flusher (sim worker) or applies it in place (sync mode, real-mode
// flusher goroutine, or the no-worker fallback).
func (f *File) collTake(member int, raw []byte) {
	fr, err := decodeCollFrame(raw)
	if err != nil {
		f.collNote(err)
		f.coll.finals[member] = true // cannot resync with this member
		return
	}
	if fr.final {
		f.coll.finals[member] = true
	}
	if f.coll.simf != nil {
		f.simEnqueue(fr)
		return
	}
	f.collApply(f.fh, fr)
	putStageBuf(fr.data)
}

// collDrainArrived applies every member frame that is already available
// (sim mode: whose virtual arrival time has passed) without blocking.
func (f *File) collDrainArrived() {
	c := f.coll
	for _, m := range c.members {
		for !c.finals[m] {
			raw, ok := f.lcomm.TryRecv(m, tagCollData)
			if !ok {
				break
			}
			f.collTake(m, raw)
		}
	}
}

// collFlusher is the real-mode background flusher: one goroutine per
// collector consuming the bounded local queue and polling member frames.
// When the queue is closed (Close), it drains the remaining member frames
// with blocking receives and exits.
func (f *File) collFlusher() {
	c := f.coll
	defer close(c.done)
	idle := 0
	for {
		worked := false
		select {
		case fr, ok := <-c.queue:
			if !ok {
				for _, m := range c.members {
					for !c.finals[m] {
						f.collTake(m, f.lcomm.Recv(m, tagCollData))
					}
				}
				return
			}
			f.collApply(f.fh, fr)
			putStageBuf(fr.data)
			worked = true
		default:
		}
		for _, m := range c.members {
			if c.finals[m] {
				continue
			}
			if raw, ok := f.lcomm.TryRecv(m, tagCollData); ok {
				f.collTake(m, raw)
				worked = true
			}
		}
		if worked {
			idle = 0
			continue
		}
		// Nothing to do: back off exponentially (20 µs … ~2.5 ms) so an
		// idle flusher does not spin through mailbox locks during long
		// compute phases between writes.
		if idle < 7 {
			idle++
		}
		time.Sleep(time.Duration(20<<idle) * time.Microsecond)
	}
}

// collFlush implements Flush for collective write handles: async members
// ship their partial staging buffer; async collectors additionally make
// drain progress (sim mode) and surface any deferred error seen so far.
// Synchronous collective mode moves data only at Close by design.
func (f *File) collFlush() error {
	c := f.coll
	if !c.async {
		return nil
	}
	if len(c.buf) > 0 {
		if err := f.collEmit(false); err != nil {
			return err
		}
	}
	if f.collLead {
		if f.lcomm.Proc() != nil {
			f.collDrainArrived()
		}
		return f.collErr()
	}
	return nil
}

// collClose finishes the collective write exchange. Members ship their
// final frame and wait for the collector's status; the collector drains
// every member to its final frame, writes everything, and acknowledges.
// All participants then derive their per-block byte counts locally (the
// chunk layout is a pure function of the byte total), exactly matching
// what a direct writer would have recorded.
func (f *File) collClose() error {
	c := f.coll
	if !f.collLead {
		if err := f.collEmit(true); err != nil {
			return err
		}
		f.collFinishBytes(c.shipped)
		status := decodeInt64s(f.lcomm.Recv(c.lead, tagCollDone))[0]
		c.releaseBufs()
		if status != 0 {
			return fmt.Errorf("sion: %s: collective write failed at collector %d (deferred write error)", f.name, c.lead)
		}
		return nil
	}

	// Collector: finish own data, then drain the members.
	switch {
	case c.async && c.queue != nil:
		// Real mode: push the final frame, close the queue, and let the
		// flusher goroutine finish the member drain before exiting.
		fr := collFrame{
			logicalOff: c.shipped, final: true,
			member:   int64(f.local),
			chunk0:   f.geo.dataOff(geoIndex, 0),
			capacity: f.geo.capacity(geoIndex),
			stride:   f.geo.stride,
			data:     c.buf,
		}
		c.shipped += int64(len(c.buf))
		c.buf = nil // the frame owns the buffer now; the flusher recycles it
		c.queue <- fr
		close(c.queue)
		<-c.done
	case c.async && c.simf != nil:
		// Sim mode: enqueue the final frame and the remaining member
		// frames, then wait (in virtual time) for the flusher process.
		f.collEmit(true)
		for _, m := range c.members {
			for !c.finals[m] {
				f.collTake(m, f.lcomm.Recv(m, tagCollData))
			}
		}
		sf := c.simf
		sf.closed = true
		p := f.lcomm.Proc()
		if sf.waiting {
			sf.waiting = false
			p.WakeAt(sf.proc, p.Now())
		}
		if !sf.finished {
			sf.closeWait = true
			p.Block()
		}
	default:
		// Inline apply (sync mode, or async without a worker); a write
		// error is recorded by collEmit for the shared status, and the
		// members are drained regardless so nobody deadlocks.
		f.collEmit(true)
		for _, m := range c.members {
			for !c.finals[m] {
				f.collTake(m, f.lcomm.Recv(m, tagCollData))
			}
		}
	}
	f.collFinishBytes(c.shipped)
	err := f.collErr()
	status := []int64{0}
	if err != nil {
		status[0] = 1
	}
	for _, m := range c.members {
		f.lcomm.Send(m, tagCollDone, encodeInt64s(status))
	}
	c.releaseBufs()
	return err
}

// collCommitWatermarks publishes watermarks for the member data a
// collector has applied so far (Options.Watermarks). The collector is the
// only rank of its group that touches the physical file, so it is also the
// only one that can vouch for durability: it snapshots the applied
// high-water marks, syncs the data file, writes the commit cells, and
// syncs the sidecar — the same ordering a direct writer observes. With
// final=true (Close) every committed block is sealed. Members without wm
// state (non-collectors) and non-watermarked handles are a no-op.
func (f *File) collCommitWatermarks(final bool) error {
	if f.wm == nil || !f.collLead {
		return nil
	}
	c := f.coll
	c.mu.Lock()
	snap := make(map[int]collProgress, len(c.applied))
	for m, pr := range c.applied {
		snap[m] = pr
	}
	c.mu.Unlock()
	if final {
		// Members that never shipped payload bytes still close with one
		// empty sealed block (collFinishBytes semantics).
		for _, m := range append([]int{f.local}, c.members...) {
			if _, ok := snap[m]; !ok {
				snap[m] = collProgress{bytes: 0, capacity: f.geo.capacity(geoIndex)}
			}
		}
	}
	wrote := false
	synced := false
	for m, pr := range snap {
		if !final && pr.bytes == c.wmTotals[m] {
			continue
		}
		if !synced {
			// One data sync covers every cell of this commit round.
			if err := f.fh.Sync(); err != nil {
				return err
			}
			synced = true
		}
		w, err := f.wmCommitTotal(m, pr.bytes, pr.capacity, final)
		if err != nil {
			return err
		}
		c.wmTotals[m] = pr.bytes
		wrote = wrote || w
	}
	if !wrote {
		return nil
	}
	return f.wm.sync()
}

// wmCommitTotal derives a member's per-block commit cells from its applied
// logical byte total, mirroring collFinishBytes' chunk arithmetic: full
// blocks of `capacity` bytes, then the remainder. Only blocks at or past
// the previously committed total are rewritten. A block is sealed when it
// is full (no more bytes can enter it) or when the commit is final.
func (f *File) wmCommitTotal(member int, total, capacity int64, final bool) (bool, error) {
	if capacity <= 0 {
		return false, nil
	}
	prev := f.coll.wmTotals[member]
	start := int64(0)
	if prev > 0 {
		start = (prev - 1) / capacity // the previously open (or just-filled) block
	}
	wrote := false
	for b := start; ; b++ {
		bytes := total - b*capacity
		if bytes > capacity {
			bytes = capacity
		}
		if bytes < 0 {
			bytes = 0
		}
		if bytes == 0 && b > 0 && !(final && b == start) {
			break
		}
		sealed := bytes == capacity || final
		if err := f.wm.commit(member, int(b), bytes, sealed); err != nil {
			return wrote, err
		}
		wrote = true
		if bytes < capacity {
			break
		}
	}
	return wrote, nil
}

// releaseBufs returns the staging double-buffers to the shared pool once
// no frame can reference them anymore (after the flusher has finished).
func (c *collState) releaseBufs() {
	putStageBuf(c.buf)
	putStageBuf(c.spare)
	c.buf, c.spare = nil, nil
}

// collFinishBytes fills the write-side cursor state from the task's total
// logical byte count, reproducing the per-block counts of a direct writer:
// full chunks of `capacity` bytes, then the remainder (a task that wrote
// nothing holds a single empty block, and an exact multiple of the
// capacity leaves no trailing empty block).
func (f *File) collFinishBytes(total int64) {
	capacity := f.geo.capacity(geoIndex)
	bb := []int64{}
	for total > capacity {
		bb = append(bb, capacity)
		total -= capacity
	}
	bb = append(bb, total)
	f.blockBytes = bb
	f.curBlock = len(bb) - 1
	f.pos = bb[f.curBlock]
}

// --- Collective read --------------------------------------------------------

// collReadRequest is what a member sends its collector at open: where its
// chunk data lives and how many bytes each block holds.
func collReadRequest(dataOff0, stride int64, blockBytes []int64) []byte {
	vals := append([]int64{dataOff0, stride, int64(len(blockBytes))}, blockBytes...)
	return encodeInt64s(vals)
}

// collServeReads runs on a read-mode collector: for every group member,
// read the member's used chunk bytes — one large read per chunk region,
// concatenated in logical order — and ship the results behind a single
// group-wide status word. The status is shared deliberately: a partial
// failure (one member's region unreadable, or groupErr from the
// collector's own stream) must fail the whole group's ParOpen, because a
// member that succeeded while its peers error out would later hang in
// Close's collective barrier waiting for handles that never existed.
func (f *File) collServeReads(members []int, groupErr error) error {
	firstErr := groupErr
	replies := make([][]byte, len(members))
	for i, m := range members {
		req := decodeInt64s(f.lcomm.Recv(m, tagCollReq))
		dataOff0, stride, nblocks := req[0], req[1], int(req[2])
		bb := req[3 : 3+nblocks]
		data, err := f.collReadRegions(dataOff0, stride, bb)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		replies[i] = data
	}
	status := int64(0)
	if firstErr != nil {
		status = 1
	}
	for i, m := range members {
		f.lcomm.Send(m, tagCollRead, append(encodeInt64s([]int64{status}), replies[i]...))
	}
	return firstErr
}

// collReadRegions reads one task's logical stream: block b's used bytes
// start at dataOff0 + b*stride.
func (f *File) collReadRegions(dataOff0, stride int64, blockBytes []int64) ([]byte, error) {
	var total int64
	for _, n := range blockBytes {
		total += n
	}
	buf := make([]byte, total)
	var off int64
	for b, n := range blockBytes {
		if n == 0 {
			continue
		}
		if _, err := f.fh.ReadAt(buf[off:off+n], dataOff0+int64(b)*stride); err != nil {
			return buf, fmt.Errorf("sion: %s: collective read: %w", f.name, err)
		}
		off += n
	}
	return buf, nil
}

// initCollectiveRead wires the read-side exchange after the metadata
// scatter: collectors open the physical file and fan member data out;
// members receive their prefetched stream and never open the file.
// It is collective over the lcomm group members: a collector that cannot
// open or read the file answers every member with a failure status, so
// the whole group's ParOpen fails instead of members blocking forever or
// being handed fabricated zeros.
func (f *File) initCollectiveRead(group int, physName string) error {
	lrank := f.lcomm.Rank()
	lead := lrank - lrank%group
	f.collGroup = group
	f.collLead = lrank == lead

	if !f.collLead {
		f.lcomm.Send(lead, tagCollReq,
			collReadRequest(f.geo.dataOff(geoIndex, 0), f.geo.stride, f.readBytes))
		reply := f.lcomm.Recv(lead, tagCollRead)
		if status := decodeInt64s(reply[:8])[0]; status != 0 {
			return fmt.Errorf("sion: %s: collective read failed at collector %d", f.name, lead)
		}
		f.setCollRead(reply[8:])
		return nil
	}

	end := lead + group
	if end > f.lcomm.Size() {
		end = f.lcomm.Size()
	}
	var members []int
	for m := lead + 1; m < end; m++ {
		members = append(members, m)
	}
	fh, err := f.fsys.Open(physName)
	if err != nil {
		// Consume the members' requests and fail their opens.
		for _, m := range members {
			f.lcomm.Recv(m, tagCollReq)
			f.lcomm.Send(m, tagCollRead, encodeInt64s([]int64{1}))
		}
		return fmt.Errorf("sion: ParOpen %s: opening physical file: %w", f.name, err)
	}
	f.fh = fh
	// Read the collector's own stream first (one large read per chunk
	// region); its error, like any member region's, fails the whole group.
	own, ownErr := f.collReadRegions(f.geo.dataOff(geoIndex, 0), f.geo.stride, f.readBytes)
	f.setCollRead(own)
	return f.collServeReads(members, ownErr)
}

// setCollRead installs the prefetched stream and its per-block offsets.
func (f *File) setCollRead(buf []byte) {
	st := &collReadState{buf: buf, base: make([]int64, len(f.readBytes))}
	var off int64
	for b, n := range f.readBytes {
		st.base[b] = off
		off += n
	}
	f.collRead = st
}

// readChunkAt fills p from (block, pos) of this task's chunk data: from
// the collective-read prefetch buffer, the read-ahead stage (buffer.go),
// or the physical file directly.
func (f *File) readChunkAt(p []byte, block int, pos int64) error {
	if f.collRead != nil {
		off := f.collRead.base[block] + pos
		copy(p, f.collRead.buf[off:])
		return nil
	}
	if f.rstage != nil {
		return f.stagedReadAt(p, block, pos)
	}
	if _, err := f.fh.ReadAt(p, f.geo.dataOff(geoIndex, block)+pos); err != nil && err != io.EOF {
		return err
	}
	return nil
}

// encodeInt64s / decodeInt64s: little-endian int64 slice codec for the
// collective exchange payloads.
func encodeInt64s(vals []int64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		le().PutUint64(out[8*i:], uint64(v))
	}
	return out
}

func decodeInt64s(b []byte) []int64 {
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(le().Uint64(b[8*i:]))
	}
	return out
}
