package sion

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/fsio"
	"repro/internal/mpi"
	"repro/internal/simfs"
	"repro/internal/vtime"
)

// writeMultifile writes one multifile with n tasks and per-rank payload
// sizes, returning the sizes (payloads are rankPayload-deterministic).
func writeMultifile(t *testing.T, fsys fsio.FileSystem, name string, n, nfiles int, chunk, fsblk int64, m MapFunc, sizes []int) {
	t.Helper()
	mpi.Run(n, func(c *mpi.Comm) {
		f, err := ParOpen(c, fsys, name, WriteMode, &Options{
			ChunkSize: chunk, FSBlockSize: fsblk, NFiles: nfiles, Mapping: m,
		})
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.Write(rankPayload(c.Rank(), sizes[c.Rank()])); err != nil {
			t.Error(err)
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
}

func TestBalancedMappingPartitions(t *testing.T) {
	cases := []struct{ nreaders, ntasks int }{
		{1, 1}, {1, 7}, {3, 7}, {7, 3}, {4, 4}, {5, 20}, {64, 1024}, {4096, 1024},
	}
	for _, tc := range cases {
		seen := make([]int, tc.ntasks)
		for r := 0; r < tc.nreaders; r++ {
			prev := -1
			for _, g := range BalancedMapping(r, tc.nreaders, tc.ntasks) {
				if g < 0 || g >= tc.ntasks {
					t.Fatalf("M=%d N=%d: reader %d owns out-of-range %d", tc.nreaders, tc.ntasks, r, g)
				}
				if g <= prev {
					t.Fatalf("M=%d N=%d: reader %d ranks not ascending", tc.nreaders, tc.ntasks, r)
				}
				prev = g
				seen[g]++
				// The balanced mapping must be the inverse of ContiguousMap.
				if want := ContiguousMap(g, tc.ntasks, tc.nreaders); want != r {
					t.Fatalf("M=%d N=%d: rank %d owned by reader %d, ContiguousMap says %d", tc.nreaders, tc.ntasks, g, r, want)
				}
			}
		}
		for g, c := range seen {
			if c != 1 {
				t.Fatalf("M=%d N=%d: rank %d owned %d times", tc.nreaders, tc.ntasks, g, c)
			}
		}
	}
	if BalancedMapping(-1, 4, 8) != nil || BalancedMapping(4, 4, 8) != nil || BalancedMapping(0, 0, 8) != nil {
		t.Fatal("invalid reader coordinates must own nothing")
	}
}

// verifyMappedRank checks one rank handle's full semantics against the
// expected payload: sequential read, EOF, Seek, and ReadLogicalAt.
func verifyMappedRank(t *testing.T, h *File, g int, payload []byte, rng *rand.Rand) {
	t.Helper()
	if got := h.LogicalSize(); got != int64(len(payload)) {
		t.Errorf("rank %d: LogicalSize %d, want %d", g, got, len(payload))
		return
	}
	got := make([]byte, len(payload))
	if len(got) > 0 {
		if _, err := io.ReadFull(h, got); err != nil {
			t.Errorf("rank %d: sequential read: %v", g, err)
			return
		}
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("rank %d: payload mismatch", g)
		return
	}
	if !h.EOF() {
		t.Errorf("rank %d: EOF not reached", g)
	}
	if len(payload) == 0 {
		return
	}
	// Random-access probes without moving the cursor.
	for p := 0; p < 3; p++ {
		off := rng.Intn(len(payload))
		ln := 1 + rng.Intn(len(payload)-off)
		probe := make([]byte, ln)
		if _, err := h.ReadLogicalAt(probe, int64(off)); err != nil && err != io.EOF {
			t.Errorf("rank %d: ReadLogicalAt(%d,%d): %v", g, off, ln, err)
		} else if !bytes.Equal(probe, payload[off:off+ln]) {
			t.Errorf("rank %d: ReadLogicalAt(%d,%d) mismatch", g, off, ln)
		}
	}
	// Seek back to the start of a random block and re-read its bytes.
	if err := h.Seek(0, 0); err != nil {
		t.Errorf("rank %d: Seek(0,0): %v", g, err)
		return
	}
	b := rng.Intn(h.Blocks())
	if err := h.Seek(b, 0); err != nil {
		t.Errorf("rank %d: Seek(%d,0): %v", g, b, err)
		return
	}
	var base int64
	for i := 0; i < b; i++ {
		if err := h.Seek(i, 0); err != nil {
			t.Fatalf("rank %d: Seek(%d,0): %v", g, i, err)
		}
		base += h.BytesAvailInChunk()
	}
	if err := h.Seek(b, 0); err != nil {
		t.Fatalf("rank %d: Seek(%d,0): %v", g, b, err)
	}
	if avail := h.BytesAvailInChunk(); avail > 0 {
		span := make([]byte, avail)
		if _, err := io.ReadFull(h, span); err != nil {
			t.Errorf("rank %d: post-Seek read: %v", g, err)
		} else if !bytes.Equal(span, payload[base:base+avail]) {
			t.Errorf("rank %d: post-Seek read mismatch in block %d", g, b)
		}
	}
}

// TestMappedReopenRescaled covers the core N→M scenarios: fewer readers
// than writers, more readers than writers, one reader, and equal counts,
// in direct and collective mode, with both task→file mappings.
func TestMappedReopenRescaled(t *testing.T) {
	const n = 12
	maps := []struct {
		name string
		fn   MapFunc
	}{{"contig", ContiguousMap}, {"rr", RoundRobinMap}}
	for _, m := range maps {
		for _, M := range []int{1, 4, 5, 12, 19} {
			for _, group := range []int{0, 3} {
				name := fmt.Sprintf("%s/M=%d/g=%d", m.name, M, group)
				t.Run(name, func(t *testing.T) {
					fsys := fsio.NewOS(t.TempDir())
					sizes := make([]int, n)
					for r := range sizes {
						sizes[r] = 150*r + r%3 // includes rank 0 writing nothing
					}
					writeMultifile(t, fsys, "re.sion", n, 3, 256, 128, m.fn, sizes)
					covered := make([]bool, n)
					mpi.Run(M, func(c *mpi.Comm) {
						var opts *Options
						if group != 0 {
							opts = &Options{CollectorGroup: group}
						}
						mf, err := ParOpenMapped(c, fsys, "re.sion", ReadMode, nil, opts)
						if err != nil {
							t.Error(err)
							return
						}
						defer mf.Close()
						if mf.NTasks() != n {
							t.Errorf("NTasks = %d, want %d", mf.NTasks(), n)
						}
						rng := rand.New(rand.NewSource(int64(31*M + c.Rank())))
						for _, g := range mf.OwnedRanks() {
							h, err := mf.Rank(g)
							if err != nil {
								t.Error(err)
								continue
							}
							verifyMappedRank(t, h, g, rankPayload(g, sizes[g]), rng)
							covered[g] = true // disjoint ownership: no race
						}
						// An unowned rank must be rejected, not misread.
						if len(mf.OwnedRanks()) < n {
							for g := 0; g < n; g++ {
								if ContiguousMap(g, n, M) != c.Rank() {
									if _, err := mf.Rank(g); err == nil {
										t.Errorf("reader %d got handle for unowned rank %d", c.Rank(), g)
									}
									break
								}
							}
						}
					})
					for g, ok := range covered {
						if !ok {
							t.Errorf("rank %d not recovered by any reader", g)
						}
					}
				})
			}
		}
	}
}

// TestMappedExplicitOwnership passes explicit (non-contiguous) owned sets:
// reader r takes every rank ≡ r (mod M), the round-robin inverse.
func TestMappedExplicitOwnership(t *testing.T) {
	const n, M = 10, 3
	fsys := fsio.NewOS(t.TempDir())
	sizes := make([]int, n)
	for r := range sizes {
		sizes[r] = 100 + 70*r
	}
	writeMultifile(t, fsys, "ex.sion", n, 2, 200, 128, ContiguousMap, sizes)
	mpi.Run(M, func(c *mpi.Comm) {
		var owned []int
		for g := c.Rank(); g < n; g += M {
			owned = append(owned, g)
		}
		mf, err := ParOpenMapped(c, fsys, "ex.sion", ReadMode, owned, nil)
		if err != nil {
			t.Error(err)
			return
		}
		defer mf.Close()
		rng := rand.New(rand.NewSource(int64(c.Rank())))
		for _, g := range owned {
			h, err := mf.Rank(g)
			if err != nil {
				t.Error(err)
				continue
			}
			verifyMappedRank(t, h, g, rankPayload(g, sizes[g]), rng)
		}
	})
}

// TestMappedOwnershipErrors pins the collective failure modes: a rank
// claimed twice, a rank outside 0..N-1, and write mode are all rejected on
// every reader without deadlock.
func TestMappedOwnershipErrors(t *testing.T) {
	const n, M = 4, 2
	fsys := fsio.NewOS(t.TempDir())
	sizes := []int{10, 20, 30, 40}
	writeMultifile(t, fsys, "err.sion", n, 1, 64, 64, ContiguousMap, sizes)

	cases := []struct {
		name  string
		owned func(rank int) []int
	}{
		{"duplicate", func(rank int) []int { return []int{0, 1} }}, // both readers claim 0 and 1
		{"out-of-range", func(rank int) []int {
			if rank == 0 {
				return []int{0, n} // n is outside 0..n-1
			}
			return []int{1}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mpi.Run(M, func(c *mpi.Comm) {
				mf, err := ParOpenMapped(c, fsys, "err.sion", ReadMode, tc.owned(c.Rank()), nil)
				if err == nil {
					mf.Close()
					t.Errorf("reader %d: invalid ownership accepted", c.Rank())
				}
			})
		})
	}
	mpi.Run(M, func(c *mpi.Comm) {
		if _, err := ParOpenMapped(c, fsys, "err.sion", WriteMode, nil, nil); err == nil {
			t.Error("mapped write accepted")
		}
	})
	mpi.Run(M, func(c *mpi.Comm) {
		if _, err := ParOpenMapped(c, fsys, "missing.sion", ReadMode, nil, nil); err == nil {
			t.Error("missing multifile accepted")
		}
	})
}

// TestMappedCollectiveClientReduction proves the ⌈M/G⌉ claim on the
// simulated file system: with a collector group only the collectors (plus
// the metadata parsers) ever issue read requests.
func TestMappedCollectiveClientReduction(t *testing.T) {
	const n, M, group = 16, 8, 4
	fs := simfs.New(simfs.Jugene())
	sizes := make([]int, n)
	for r := range sizes {
		sizes[r] = 5000 + 100*r
	}
	e := vtime.NewEngine()
	mpi.RunSim(e, n, mpi.DefaultCost, func(c *mpi.Comm) {
		f, err := ParOpen(c, fs.View(c.Rank(), c.Proc()), "cl.sion", WriteMode, &Options{ChunkSize: 4096})
		if err != nil {
			t.Error(err)
			return
		}
		f.Write(rankPayload(c.Rank(), sizes[c.Rank()]))
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	before, _ := fs.Stats("cl.sion")

	e2 := vtime.NewEngine()
	mpi.RunSim(e2, M, mpi.DefaultCost, func(c *mpi.Comm) {
		mf, err := ParOpenMapped(c, fs.View(c.Rank(), c.Proc()), "cl.sion", ReadMode, nil, &Options{CollectorGroup: group})
		if err != nil {
			t.Error(err)
			return
		}
		defer mf.Close()
		if g, _ := mf.Collective(); g != group {
			t.Errorf("collective group = %d, want %d", g, group)
		}
		for _, g := range mf.OwnedRanks() {
			h, _ := mf.Rank(g)
			buf := make([]byte, sizes[g])
			if _, err := io.ReadFull(h, buf); err != nil {
				t.Errorf("rank %d: %v", g, err)
			} else if !bytes.Equal(buf, rankPayload(g, sizes[g])) {
				t.Errorf("rank %d: mismatch", g)
			}
		}
	})
	after, _ := fs.Stats("cl.sion")
	collectors := (M + group - 1) / group
	// Readers of the file: the collectors, plus rank 0 (header broadcast)
	// and the metadata parser of file 0.
	if got := after.ReaderTasks - before.ReaderTasks; got > collectors+2 {
		t.Errorf("%d reader tasks beyond the write phase, want ≤ %d collectors + 2 metadata readers",
			got, collectors)
	}
}

// TestMappedSparseOwnershipSplitsSpans: a collective group owning only
// the first and last writer rank must not fetch (and buffer) the whole
// stride between them — the span is split at gaps above maxSpanGap, at
// the cost of one extra read, while the recovered bytes stay exact.
func TestMappedSparseOwnershipSplitsSpans(t *testing.T) {
	const n = 8
	chunk := int64(1) << 20 // gap between first and last rank ≫ maxSpanGap
	fs := simfs.New(simfs.Jugene())
	size := int(chunk) / 2
	e := vtime.NewEngine()
	mpi.RunSim(e, n, mpi.DefaultCost, func(c *mpi.Comm) {
		f, err := ParOpen(c, fs.View(c.Rank(), c.Proc()), "sparse.sion", WriteMode, &Options{ChunkSize: chunk})
		if err != nil {
			t.Error(err)
			return
		}
		f.Write(rankPayload(c.Rank(), size))
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	before, _ := fs.Stats("sparse.sion")

	e2 := vtime.NewEngine()
	mpi.RunSim(e2, 2, mpi.DefaultCost, func(c *mpi.Comm) {
		owned := []int{0} // group of both readers owns only the extremes
		if c.Rank() == 1 {
			owned = []int{n - 1}
		}
		mf, err := ParOpenMapped(c, fs.View(c.Rank(), c.Proc()), "sparse.sion", ReadMode, owned, &Options{CollectorGroup: 2})
		if err != nil {
			t.Error(err)
			return
		}
		defer mf.Close()
		g := owned[0]
		h, _ := mf.Rank(g)
		got := make([]byte, size)
		if _, err := io.ReadFull(h, got); err != nil {
			t.Errorf("rank %d: %v", g, err)
		} else if !bytes.Equal(got, rankPayload(g, size)) {
			t.Errorf("rank %d: mismatch", g)
		}
	})
	after, _ := fs.Stats("sparse.sion")
	// One block, two distant regions: 2 data reads (split at the gap)
	// plus ≤ 6 metadata reads — far below the bytes of one full span.
	if got := after.ReadRequests - before.ReadRequests; got < 2 || got > 8 {
		t.Errorf("sparse collective reopen issued %d reads, want 2 split data reads + metadata", got)
	}
}

// TestMappedConcurrentRankReads pins the documented concurrency contract
// under -race: distinct rank handles of one MappedFile may be used
// concurrently (each has its own cursor, stage, and — in collective mode —
// prefetched stream; the shared physical file is only touched through
// offset reads). A single handle remains single-goroutine, like any *File.
func TestMappedConcurrentRankReads(t *testing.T) {
	const n, M = 12, 3
	for _, group := range []int{0, 2} {
		t.Run(fmt.Sprintf("group=%d", group), func(t *testing.T) {
			fsys := fsio.NewOS(t.TempDir())
			sizes := make([]int, n)
			for r := range sizes {
				sizes[r] = 4000 + 321*r
			}
			writeMultifile(t, fsys, "conc.sion", n, 2, 512, 256, ContiguousMap, sizes)
			mpi.Run(M, func(c *mpi.Comm) {
				opts := &Options{BufferSize: BufferAuto}
				if group != 0 {
					opts = &Options{CollectorGroup: group}
				}
				mf, err := ParOpenMapped(c, fsys, "conc.sion", ReadMode, nil, opts)
				if err != nil {
					t.Error(err)
					return
				}
				defer mf.Close()
				var wg sync.WaitGroup
				for _, g := range mf.OwnedRanks() {
					h, err := mf.Rank(g)
					if err != nil {
						t.Error(err)
						continue
					}
					wg.Add(1)
					go func(g int, h *File) {
						defer wg.Done()
						payload := rankPayload(g, sizes[g])
						rng := rand.New(rand.NewSource(int64(g)))
						for iter := 0; iter < 4; iter++ {
							if err := h.Seek(0, 0); err != nil {
								t.Errorf("rank %d: %v", g, err)
								return
							}
							got := make([]byte, len(payload))
							if _, err := io.ReadFull(h, got); err != nil {
								t.Errorf("rank %d: %v", g, err)
								return
							}
							if !bytes.Equal(got, payload) {
								t.Errorf("rank %d: concurrent read mismatch", g)
								return
							}
							off := rng.Intn(len(payload))
							probe := make([]byte, len(payload)-off)
							if _, err := h.ReadLogicalAt(probe, int64(off)); err != nil && err != io.EOF {
								t.Errorf("rank %d: %v", g, err)
							}
						}
					}(g, h)
				}
				wg.Wait()
			})
		})
	}
}

// TestMappedRankHandleCloseLeavesSiblings: closing one rank handle must
// not tear down the shared physical file other handles still read.
func TestMappedRankHandleCloseLeavesSiblings(t *testing.T) {
	const n = 6
	fsys := fsio.NewOS(t.TempDir())
	sizes := make([]int, n)
	for r := range sizes {
		sizes[r] = 500
	}
	writeMultifile(t, fsys, "sib.sion", n, 1, 256, 128, ContiguousMap, sizes)
	mpi.Run(1, func(c *mpi.Comm) {
		mf, err := ParOpenMapped(c, fsys, "sib.sion", ReadMode, nil, nil)
		if err != nil {
			t.Error(err)
			return
		}
		defer mf.Close()
		h0, _ := mf.Rank(0)
		if err := h0.Close(); err != nil {
			t.Error(err)
		}
		if _, err := h0.Read(make([]byte, 8)); err == nil {
			t.Error("read on closed rank handle accepted")
		}
		h1, err := mf.Rank(1)
		if err != nil {
			t.Error(err)
			return
		}
		got := make([]byte, sizes[1])
		if _, err := io.ReadFull(h1, got); err != nil {
			t.Errorf("sibling read after one handle closed: %v", err)
		} else if !bytes.Equal(got, rankPayload(1, sizes[1])) {
			t.Error("sibling data mismatch after one handle closed")
		}
	})
}

// TestMappedKeyValRead: KeyReader works on a mapped rank handle — the
// restart-tool path of reading another task's keyed streams.
func TestMappedKeyValRead(t *testing.T) {
	const n = 4
	fsys := fsio.NewOS(t.TempDir())
	mpi.Run(n, func(c *mpi.Comm) {
		f, err := ParOpen(c, fsys, "kv.sion", WriteMode, &Options{ChunkSize: 512, FSBlockSize: 256})
		if err != nil {
			t.Error(err)
			return
		}
		w, _ := NewKeyWriter(f)
		for rec := 0; rec < 5; rec++ {
			if err := w.WriteKey(uint64(c.Rank()), rankPayload(100*c.Rank()+rec, 60)); err != nil {
				t.Error(err)
			}
		}
		f.Close()
	})
	mpi.Run(2, func(c *mpi.Comm) {
		mf, err := ParOpenMapped(c, fsys, "kv.sion", ReadMode, nil, nil)
		if err != nil {
			t.Error(err)
			return
		}
		defer mf.Close()
		for _, g := range mf.OwnedRanks() {
			h, _ := mf.Rank(g)
			kr, err := NewKeyReader(h)
			if err != nil {
				t.Errorf("rank %d: %v", g, err)
				continue
			}
			if got := kr.NumRecords(uint64(g)); got != 5 {
				t.Errorf("rank %d: %d records, want 5", g, got)
				continue
			}
			rec, err := kr.Record(uint64(g), 3)
			if err != nil {
				t.Errorf("rank %d: %v", g, err)
			} else if !bytes.Equal(rec, rankPayload(100*g+3, 60)) {
				t.Errorf("rank %d: keyed record mismatch", g)
			}
		}
	})
}
