package sion

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/fsio"
	"repro/internal/mpi"
)

func TestAsyncCollectiveRoundTrip(t *testing.T) {
	for _, cfg := range []struct {
		n, group, nfiles int
		flush            int64
	}{
		{8, 4, 1, 0},   // auto flush quantum (= chunk capacity)
		{8, 3, 1, 64},  // tiny quantum: many frames per member
		{9, 4, 2, 128}, // two physical files
		{6, 6, 1, 256}, // one group spanning the whole file
		{5, 2, 1, 96},  // odd group split
	} {
		cfg := cfg
		t.Run(fmt.Sprintf("n=%d g=%d files=%d q=%d", cfg.n, cfg.group, cfg.nfiles, cfg.flush), func(t *testing.T) {
			fsys := fsio.NewOS(t.TempDir())
			mpi.Run(cfg.n, func(c *mpi.Comm) {
				f, err := ParOpen(c, fsys, "async.sion", WriteMode, &Options{
					ChunkSize: 300, FSBlockSize: 256,
					NFiles: cfg.nfiles, CollectorGroup: cfg.group,
					AsyncCollective: true, AsyncFlushBytes: cfg.flush,
				})
				if err != nil {
					t.Error(err)
					return
				}
				payload := rankPayload(c.Rank(), 1000+31*c.Rank())
				for off := 0; off < len(payload); off += 217 {
					end := off + 217
					if end > len(payload) {
						end = len(payload)
					}
					if _, err := f.Write(payload[off:end]); err != nil {
						t.Error(err)
						return
					}
				}
				if err := f.Flush(); err != nil {
					t.Errorf("rank %d: Flush: %v", c.Rank(), err)
				}
				if err := f.Close(); err != nil {
					t.Error(err)
					return
				}

				r, err := ParOpen(c, fsys, "async.sion", ReadMode, nil)
				if err != nil {
					t.Error(err)
					return
				}
				got := make([]byte, len(payload))
				if _, err := io.ReadFull(r, got); err != nil {
					t.Errorf("rank %d: %v", c.Rank(), err)
				}
				if !bytes.Equal(got, payload) {
					t.Errorf("rank %d: async collective round-trip mismatch", c.Rank())
				}
				r.Close()
			})
			if err := Verify(fsys, "async.sion"); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// An async-collective multifile must be byte-identical to direct and
// synchronous-collective ones.
func TestAsyncCollectiveEquivalentToDirect(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	const n = 6
	write := func(name string, group int, async bool) {
		mpi.Run(n, func(c *mpi.Comm) {
			f, err := ParOpen(c, fsys, name, WriteMode, &Options{
				ChunkSize: 200, FSBlockSize: 128, CollectorGroup: group,
				AsyncCollective: async, AsyncFlushBytes: 64,
			})
			if err != nil {
				t.Error(err)
				return
			}
			f.Write(rankPayload(c.Rank(), 500))
			f.Close()
		})
	}
	write("direct.sion", 0, false)
	write("async.sion", 3, true)
	mustEqualFiles(t, fsys, "direct.sion", "async.sion")
}

// mustEqualFiles asserts two multifile segments are byte-identical.
func mustEqualFiles(t *testing.T, fsys fsio.FileSystem, a, b string) {
	t.Helper()
	fa, err := fsys.Open(a)
	if err != nil {
		t.Fatal(err)
	}
	defer fa.Close()
	fb, err := fsys.Open(b)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	sa, _ := fa.Size()
	sb, _ := fb.Size()
	if sa != sb {
		t.Fatalf("%s and %s sizes differ: %d vs %d", a, b, sa, sb)
	}
	ba, bb := make([]byte, sa), make([]byte, sb)
	fa.ReadAt(ba, 0)
	fb.ReadAt(bb, 0)
	if !bytes.Equal(ba, bb) {
		t.Fatalf("%s and %s differ byte-wise", a, b)
	}
}

func TestCollectiveReadRoundTrip(t *testing.T) {
	for _, cfg := range []struct{ n, group, nfiles int }{
		{8, 4, 1}, {8, 3, 2}, {6, 6, 1}, {5, 2, 1}, {7, CollectorAuto, 1},
	} {
		cfg := cfg
		t.Run(fmt.Sprintf("n=%d g=%d files=%d", cfg.n, cfg.group, cfg.nfiles), func(t *testing.T) {
			fsys := fsio.NewOS(t.TempDir())
			mpi.Run(cfg.n, func(c *mpi.Comm) {
				f, err := ParOpen(c, fsys, "cread.sion", WriteMode, &Options{
					ChunkSize: 300, FSBlockSize: 256, NFiles: cfg.nfiles,
				})
				if err != nil {
					t.Error(err)
					return
				}
				payload := rankPayload(c.Rank(), 900+13*c.Rank())
				f.Write(payload)
				if err := f.Close(); err != nil {
					t.Error(err)
					return
				}

				r, err := ParOpen(c, fsys, "cread.sion", ReadMode,
					&Options{CollectorGroup: cfg.group})
				if err != nil {
					t.Error(err)
					return
				}
				group, lead := r.Collective()
				if group <= 1 {
					t.Errorf("rank %d: collective read not in effect (group %d)", c.Rank(), group)
				}
				_ = lead
				// Sequential read.
				got := make([]byte, len(payload))
				if _, err := io.ReadFull(r, got); err != nil {
					t.Errorf("rank %d: %v", c.Rank(), err)
				}
				if !bytes.Equal(got, payload) {
					t.Errorf("rank %d: collective read mismatch", c.Rank())
				}
				// Random logical access from the prefetched stream.
				probe := make([]byte, 100)
				if _, err := r.ReadLogicalAt(probe, 321); err != nil && err != io.EOF {
					t.Errorf("rank %d: ReadLogicalAt: %v", c.Rank(), err)
				} else if !bytes.Equal(probe, payload[321:421]) {
					t.Errorf("rank %d: ReadLogicalAt mismatch", c.Rank())
				}
				if !r.EOF() {
					t.Errorf("rank %d: EOF not reached", c.Rank())
				}
				r.Close()
			})
		})
	}
}

// Collective read must also serve multi-block streams (data spanning
// several chunks) and Seek.
func TestCollectiveReadMultiBlock(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	const n = 6
	mpi.Run(n, func(c *mpi.Comm) {
		f, err := ParOpen(c, fsys, "mb.sion", WriteMode, &Options{
			ChunkSize: 100, FSBlockSize: 64,
		})
		if err != nil {
			t.Error(err)
			return
		}
		payload := rankPayload(c.Rank(), 700) // several 128-byte chunks
		f.Write(payload)
		f.Close()

		r, err := ParOpen(c, fsys, "mb.sion", ReadMode, &Options{CollectorGroup: 3})
		if err != nil {
			t.Error(err)
			return
		}
		if err := r.Seek(2, 10); err != nil {
			t.Errorf("rank %d: Seek: %v", c.Rank(), err)
		}
		capacity := r.ChunkCapacity()
		want := payload[2*int(capacity)+10:]
		got := make([]byte, len(want))
		if _, err := io.ReadFull(r, got); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("rank %d: Seek+Read mismatch after collective prefetch", c.Rank())
		}
		r.Close()
	})
}

// --- Deferred-error surfacing ----------------------------------------------

// failFS wraps a FileSystem and makes every write fail once armed.
type failFS struct {
	fsio.FileSystem
	mu    sync.Mutex
	armed bool
}

var errInjected = errors.New("injected write failure")

func (ff *failFS) fail() bool {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	return ff.armed
}

func (ff *failFS) arm() {
	ff.mu.Lock()
	ff.armed = true
	ff.mu.Unlock()
}

type failFile struct {
	fsio.File
	ff *failFS
}

func (f *failFile) WriteAt(p []byte, off int64) (int, error) {
	if f.ff.fail() {
		return 0, errInjected
	}
	return f.File.WriteAt(p, off)
}

func (f *failFile) WriteZeroAt(n, off int64) error {
	if f.ff.fail() {
		return errInjected
	}
	return f.File.WriteZeroAt(n, off)
}

func (ff *failFS) Create(name string) (fsio.File, error) {
	f, err := ff.FileSystem.Create(name)
	if err != nil {
		return nil, err
	}
	return &failFile{File: f, ff: ff}, nil
}

func (ff *failFS) OpenRW(name string) (fsio.File, error) {
	f, err := ff.FileSystem.OpenRW(name)
	if err != nil {
		return nil, err
	}
	return &failFile{File: f, ff: ff}, nil
}

// A collector write failure in async mode must surface at Close on every
// group member, not just the collector.
func TestAsyncCollectiveDeferredError(t *testing.T) {
	ff := &failFS{FileSystem: fsio.NewOS(t.TempDir())}
	const n = 4
	var mu sync.Mutex
	closeErrs := make(map[int]error)
	mpi.Run(n, func(c *mpi.Comm) {
		f, err := ParOpen(c, ff, "fail.sion", WriteMode, &Options{
			ChunkSize: 128, FSBlockSize: 64, CollectorGroup: 4,
			AsyncCollective: true, AsyncFlushBytes: 32,
		})
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			ff.arm() // all subsequent collector writes fail
		}
		c.Barrier()
		f.Write(rankPayload(c.Rank(), 256))
		err = f.Close()
		mu.Lock()
		closeErrs[c.Rank()] = err
		mu.Unlock()
	})
	for r := 0; r < n; r++ {
		if closeErrs[r] == nil {
			t.Errorf("rank %d: Close returned nil, want deferred write error", r)
		}
	}
}

// Flush on an async collector must surface a deferred error without
// waiting for Close.
func TestAsyncCollectorFlushSurfacesError(t *testing.T) {
	ff := &failFS{FileSystem: fsio.NewOS(t.TempDir())}
	mpi.Run(1, func(c *mpi.Comm) {
		f, err := ParOpen(c, ff, "flusherr.sion", WriteMode, &Options{
			ChunkSize: 128, FSBlockSize: 64, CollectorGroup: 2,
			AsyncCollective: true, AsyncFlushBytes: 32,
		})
		if err != nil {
			t.Error(err)
			return
		}
		// Group of 1 (size clamp): still collective, rank 0 is collector.
		ff.arm()
		f.Write(rankPayload(0, 256)) // emits failing frames
		if err := f.Flush(); err == nil {
			// The flusher may not have applied the frame yet in real
			// mode; Close must surface it regardless.
			if cerr := f.Close(); cerr == nil {
				t.Error("neither Flush nor Close surfaced the deferred error")
			}
			return
		}
		f.Close()
	})
}

func TestAutoCollectorGroup(t *testing.T) {
	for _, tc := range []struct {
		nlocal  int
		aligned int64
		fsblk   int64
		want    int
	}{
		{16, 256, 256, 4},  // 4 blocks / 1-block chunks → 4 members
		{16, 64, 256, 16},  // tiny chunks → whole file, capped by size
		{2, 64, 256, 2},    // capped by the local task count
		{16, 4096, 256, 1}, // chunk already spans 16 blocks → direct
		{4096, 1, 256, 64}, // capped by maxAutoGroup
	} {
		if got := autoCollectorGroup(tc.nlocal, tc.aligned, tc.fsblk); got != tc.want {
			t.Errorf("autoCollectorGroup(%d, %d, %d) = %d, want %d",
				tc.nlocal, tc.aligned, tc.fsblk, got, tc.want)
		}
	}
}

// End-to-end CollectorAuto: the resolved group must be consistent and the
// data intact.
func TestCollectorAutoEndToEnd(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	const n = 8
	mpi.Run(n, func(c *mpi.Comm) {
		f, err := ParOpen(c, fsys, "auto.sion", WriteMode, &Options{
			ChunkSize: 64, FSBlockSize: 256, CollectorGroup: CollectorAuto,
			AsyncCollective: true,
		})
		if err != nil {
			t.Error(err)
			return
		}
		group, _ := f.Collective()
		// aligned = 256 = 1 block; target 4 blocks → groups of 4.
		if group != 4 {
			t.Errorf("rank %d: auto group = %d, want 4", c.Rank(), group)
		}
		payload := rankPayload(c.Rank(), 600)
		f.Write(payload)
		if err := f.Close(); err != nil {
			t.Error(err)
			return
		}
		r, err := ParOpen(c, fsys, "auto.sion", ReadMode, &Options{CollectorGroup: CollectorAuto})
		if err != nil {
			t.Error(err)
			return
		}
		got := make([]byte, len(payload))
		if _, err := io.ReadFull(r, got); err != nil || !bytes.Equal(got, payload) {
			t.Errorf("rank %d: auto-group round-trip mismatch (%v)", c.Rank(), err)
		}
		r.Close()
	})
	if err := Verify(fsys, "auto.sion"); err != nil {
		t.Fatal(err)
	}
}

// readFailFS fails large reads (data regions) once armed, while letting
// the small metadata reads through — isolating a collector-side region
// read failure during a collective-read open.
type readFailFS struct {
	fsio.FileSystem
	mu    sync.Mutex
	armed bool
}

func (ff *readFailFS) fail() bool {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	return ff.armed
}

type readFailFile struct {
	fsio.File
	ff *readFailFS
}

func (f *readFailFile) ReadAt(p []byte, off int64) (int, error) {
	if len(p) > 1000 && f.ff.fail() {
		return 0, errInjected
	}
	return f.File.ReadAt(p, off)
}

func (ff *readFailFS) Open(name string) (fsio.File, error) {
	f, err := ff.FileSystem.Open(name)
	if err != nil {
		return nil, err
	}
	return &readFailFile{File: f, ff: ff}, nil
}

// A collector whose region reads fail must fail the collective-read open
// on every group member — members must never be handed fabricated zeros.
func TestCollectiveReadCollectorFailureSurfaces(t *testing.T) {
	base := fsio.NewOS(t.TempDir())
	const n = 4
	mpi.Run(n, func(c *mpi.Comm) {
		f, err := ParOpen(c, base, "rfail.sion", WriteMode, &Options{
			ChunkSize: 4096, FSBlockSize: 512,
		})
		if err != nil {
			t.Error(err)
			return
		}
		f.Write(rankPayload(c.Rank(), 2000))
		f.Close()
	})
	ff := &readFailFS{FileSystem: base}
	ff.mu.Lock()
	ff.armed = true
	ff.mu.Unlock()
	var mu sync.Mutex
	errs := make(map[int]error)
	mpi.Run(n, func(c *mpi.Comm) {
		_, err := ParOpen(c, ff, "rfail.sion", ReadMode, &Options{CollectorGroup: n})
		mu.Lock()
		errs[c.Rank()] = err
		mu.Unlock()
	})
	for r := 0; r < n; r++ {
		if errs[r] == nil {
			t.Errorf("rank %d: collective-read open succeeded despite collector read failure", r)
		}
	}
}

// openFailAfterFS lets the first `allowed` Opens through, then fails:
// tuned so the metadata opens succeed and the collector's data open is
// the first casualty.
type openFailAfterFS struct {
	fsio.FileSystem
	mu      sync.Mutex
	allowed int
}

func (ff *openFailAfterFS) Open(name string) (fsio.File, error) {
	ff.mu.Lock()
	ff.allowed--
	ok := ff.allowed >= 0
	ff.mu.Unlock()
	if !ok {
		return nil, errInjected
	}
	return ff.FileSystem.Open(name)
}

// A collector that cannot open the physical file must fail every group
// member's ParOpen instead of leaving them blocked waiting for data.
func TestCollectiveReadCollectorOpenFailureFailsMembers(t *testing.T) {
	base := fsio.NewOS(t.TempDir())
	const n = 4
	mpi.Run(n, func(c *mpi.Comm) {
		f, err := ParOpen(c, base, "ofail.sion", WriteMode, &Options{
			ChunkSize: 512, FSBlockSize: 256,
		})
		if err != nil {
			t.Error(err)
			return
		}
		f.Write(rankPayload(c.Rank(), 300))
		f.Close()
	})
	// Reads: (1) world rank 0 header, (2) master metadata, then (3) the
	// collector's data open — which must be the one that fails.
	ff := &openFailAfterFS{FileSystem: base, allowed: 2}
	var mu sync.Mutex
	errs := make(map[int]error)
	mpi.Run(n, func(c *mpi.Comm) {
		_, err := ParOpen(c, ff, "ofail.sion", ReadMode, &Options{CollectorGroup: n})
		mu.Lock()
		errs[c.Rank()] = err
		mu.Unlock()
	})
	for r := 0; r < n; r++ {
		if errs[r] == nil {
			t.Errorf("rank %d: ParOpen succeeded despite the collector's open failing", r)
		}
	}
}
