package sion

import (
	"fmt"
	"io"

	"repro/internal/fsio"
)

// Repair reconstructs metablock 2 of every physical file of a multifile
// from the per-chunk headers and rewrites the trailer. It implements the
// paper's §6 robustness plan: "failures, such as premature application
// termination or file quota violation, may cause the second metadata block
// to be lost. [...] we plan to add small pieces of metadata to each chunk
// so that the full metadata can be restored if needed."
//
// The multifile must have been written with Options.ChunkHeaders. Chunks
// whose header still carries the "open" marker (the writer crashed inside
// the block) are recovered with the bytes that physically exist in the
// file, bounded by the chunk capacity. Repair returns the number of chunks
// recovered across all segments.
func Repair(fsys fsio.FileSystem, name string) (int, error) {
	// The first segment's header is enough to find the others.
	fh0, err := fsys.OpenRW(fileName(name, 0))
	if err != nil {
		return 0, fmt.Errorf("sion: Repair %s: %w", name, err)
	}
	h0, err := parseHeader(fh0)
	if err != nil {
		fh0.Close()
		return 0, fmt.Errorf("sion: Repair %s: %w", name, err)
	}
	if h0.Flags&flagChunkHeaders == 0 {
		fh0.Close()
		return 0, fmt.Errorf("sion: Repair %s: multifile was written without chunk headers", name)
	}
	total := 0
	for k := 0; k < int(h0.NFiles); k++ {
		var fh fsio.File
		var h *header
		if k == 0 {
			fh, h = fh0, h0
		} else {
			if fh, err = fsys.OpenRW(fileName(name, k)); err != nil {
				return total, fmt.Errorf("sion: Repair %s: segment %d: %w", name, k, err)
			}
			if h, err = parseHeader(fh); err != nil {
				fh.Close()
				return total, fmt.Errorf("sion: Repair %s: segment %d: %w", name, k, err)
			}
		}
		n, err := repairSegment(fh, h)
		fh.Close()
		fh0 = nil
		if err != nil {
			return total, fmt.Errorf("sion: Repair %s: segment %d: %w", name, k, err)
		}
		total += n
	}
	return total, nil
}

// repairSegment scans one physical file's chunk headers and rewrites its
// metablock 2 and trailer.
func repairSegment(fh fsio.File, h *header) (int, error) {
	g := newGeometry(h)
	size, err := fh.Size()
	if err != nil {
		return 0, err
	}
	nlocal := int(h.NTasksLocal)
	m2 := &meta2{BlockBytes: make([][]int64, nlocal)}
	recovered := 0
	maxBlocks := 0
	hdr := make([]byte, chunkHeaderSize)
	for li := 0; li < nlocal; li++ {
		var bb []int64
		for b := 0; ; b++ {
			off := g.chunkOff(li, b)
			if off+chunkHeaderSize > size {
				break
			}
			if _, err := fh.ReadAt(hdr, off); err != nil && err != io.EOF {
				return recovered, err
			}
			ch, ok := parseChunkHeader(hdr)
			if !ok || ch.GlobalRank != h.GlobalRanks[li] || ch.Block != int64(b) {
				// No valid header: this task never entered block b.
				break
			}
			bytes := ch.Bytes
			if bytes < 0 {
				// The writer crashed inside this block; recover what
				// physically fits in the file and seal the header with the
				// recovered count, so the repaired multifile is fully
				// self-consistent (Verify cross-checks headers against the
				// rebuilt metablock 2).
				bytes = size - g.dataOff(li, b)
				if bytes < 0 {
					bytes = 0
				}
				if c := g.capacity(li); bytes > c {
					bytes = c
				}
				seal := chunkHeader{GlobalRank: h.GlobalRanks[li], Block: int64(b), Bytes: bytes}
				if _, err := fh.WriteAt(seal.encode(), off); err != nil {
					return recovered, err
				}
			}
			bb = append(bb, bytes)
			recovered++
			if len(bb) > maxBlocks {
				maxBlocks = len(bb)
			}
		}
		if len(bb) == 0 {
			bb = []int64{0}
			if maxBlocks == 0 {
				maxBlocks = 1
			}
		}
		m2.BlockBytes[li] = bb
	}
	at := g.start + g.stride*int64(maxBlocks)
	if _, err := writeTail(fh, m2, at); err != nil {
		return recovered, err
	}
	return recovered, fh.Sync()
}
