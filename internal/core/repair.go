package sion

import (
	"fmt"
	"io"

	"repro/internal/fsio"
)

// Repair reconstructs metablock 2 of every physical file of a multifile
// and rewrites the trailer. It implements the paper's §6 robustness plan:
// "failures, such as premature application termination or file quota
// violation, may cause the second metadata block to be lost. [...] we plan
// to add small pieces of metadata to each chunk so that the full metadata
// can be restored if needed."
//
// Two sources of truth are supported, alone or combined:
//
//   - Per-chunk headers (Options.ChunkHeaders): chunks whose header still
//     carries the "open" marker (the writer crashed inside the block) are
//     recovered with the bytes that physically exist in the file, bounded
//     by the chunk capacity.
//   - Chunk-commit watermarks (Options.Watermarks): the per-segment
//     sidecar records the durable byte count of every block. Open chunks
//     recover to the committed watermark instead of the physical clamp,
//     and a multifile written without chunk headers (e.g. collectively) is
//     repairable from the watermarks alone. The sidecar codec tolerates a
//     torn final commit record by design — each cell is double-buffered,
//     so a crash mid-commit loses at most that one cell and the rank
//     recovers to its last durable watermark rather than failing.
//
// Repair returns the number of chunks recovered across all segments.
func Repair(fsys fsio.FileSystem, name string) (int, error) {
	// The first segment's header is enough to find the others.
	fh0, err := fsys.OpenRW(fileName(name, 0))
	if err != nil {
		return 0, fmt.Errorf("sion: Repair %s: %w", name, err)
	}
	h0, err := parseHeader(fh0)
	if err != nil {
		fh0.Close()
		return 0, fmt.Errorf("sion: Repair %s: %w", name, err)
	}
	hasCH := h0.Flags&flagChunkHeaders != 0
	hasWM := h0.Flags&flagWatermarks != 0
	if !hasCH && !hasWM {
		fh0.Close()
		return 0, fmt.Errorf("sion: Repair %s: multifile was written without chunk headers or watermarks", name)
	}
	total := 0
	for k := 0; k < int(h0.NFiles); k++ {
		var fh fsio.File
		var h *header
		if k == 0 {
			fh, h = fh0, h0
		} else {
			if fh, err = fsys.OpenRW(fileName(name, k)); err != nil {
				return total, fmt.Errorf("sion: Repair %s: segment %d: %w", name, k, err)
			}
			if h, err = parseHeader(fh); err != nil {
				fh.Close()
				return total, fmt.Errorf("sion: Repair %s: segment %d: %w", name, k, err)
			}
		}
		var wm [][]TailCommit
		if hasWM {
			wm, err = loadWMStates(fsys, name, k, int(h.NTasksLocal))
			if err != nil && !hasCH {
				// Watermarks are the only recovery source: a missing or
				// structurally corrupt sidecar is fatal. With chunk headers
				// present it is merely a lost refinement.
				fh.Close()
				return total, fmt.Errorf("sion: Repair %s: segment %d: %w", name, k, err)
			}
		}
		n, err := repairSegment(fh, h, wm)
		fh.Close()
		fh0 = nil
		if err != nil {
			return total, fmt.Errorf("sion: Repair %s: segment %d: %w", name, k, err)
		}
		total += n
	}
	return total, nil
}

// loadWMStates reads and validates segment k's watermark sidecar,
// cross-checking it against the segment header.
func loadWMStates(fsys fsio.FileSystem, name string, k, nlocal int) ([][]TailCommit, error) {
	wfh, err := fsys.Open(wmName(name, k))
	if err != nil {
		return nil, fmt.Errorf("watermark sidecar: %w", err)
	}
	defer wfh.Close()
	nl, fn, states, err := readWatermarkFile(wfh)
	if err != nil {
		return nil, err
	}
	if nl != nlocal || fn != k {
		return nil, fmt.Errorf("%w: watermark sidecar describes %d tasks of file %d, segment has %d tasks as file %d",
			ErrCorrupt, nl, fn, nlocal, k)
	}
	return states, nil
}

// repairSegment rebuilds one physical file's metablock 2 and trailer from
// its chunk headers, its watermark state (wm, may be nil), or both.
func repairSegment(fh fsio.File, h *header, wm [][]TailCommit) (int, error) {
	g := newGeometry(h)
	size, err := fh.Size()
	if err != nil {
		return 0, err
	}
	nlocal := int(h.NTasksLocal)
	m2 := &meta2{BlockBytes: make([][]int64, nlocal)}
	recovered := 0
	maxBlocks := 0
	hdr := make([]byte, chunkHeaderSize)
	for li := 0; li < nlocal; li++ {
		var bb []int64
		if h.Flags&flagChunkHeaders != 0 {
			for b := 0; ; b++ {
				off := g.chunkOff(li, b)
				if off+chunkHeaderSize > size {
					break
				}
				if _, err := fh.ReadAt(hdr, off); err != nil && err != io.EOF {
					return recovered, err
				}
				ch, ok := parseChunkHeader(hdr)
				if !ok || ch.GlobalRank != h.GlobalRanks[li] || ch.Block != int64(b) {
					// No valid header: this task never entered block b.
					break
				}
				bytes := ch.Bytes
				if bytes < 0 {
					// The writer crashed inside this block. With a durable
					// watermark for the block, recover exactly the committed
					// bytes (anything past them may be torn); otherwise
					// recover what physically fits in the file, bounded by
					// the chunk capacity. Seal the header with the recovered
					// count so the repaired multifile is fully
					// self-consistent (Verify cross-checks headers against
					// the rebuilt metablock 2).
					if wm != nil && b < len(wm[li]) {
						bytes = wm[li][b].Bytes
					} else {
						bytes = size - g.dataOff(li, b)
						if bytes < 0 {
							bytes = 0
						}
					}
					if c := g.capacity(li); bytes > c {
						bytes = c
					}
					seal := chunkHeader{GlobalRank: h.GlobalRanks[li], Block: int64(b), Bytes: bytes}
					if _, err := fh.WriteAt(seal.encode(), off); err != nil {
						return recovered, err
					}
				}
				bb = append(bb, bytes)
				recovered++
			}
		} else {
			// Watermark-only recovery: the committed per-block counts are
			// the durable truth (collective multifiles have no chunk
			// headers at all).
			for b, c := range wm[li] {
				bytes := c.Bytes
				if cp := g.capacity(li); bytes > cp {
					bytes = cp
				}
				_ = b
				bb = append(bb, bytes)
				recovered++
			}
		}
		if len(bb) == 0 {
			bb = []int64{0}
		}
		if len(bb) > maxBlocks {
			maxBlocks = len(bb)
		}
		m2.BlockBytes[li] = bb
	}
	if maxBlocks == 0 {
		maxBlocks = 1
	}
	at := g.start + g.stride*int64(maxBlocks)
	if _, err := writeTail(fh, m2, at); err != nil {
		return recovered, err
	}
	return recovered, fh.Sync()
}
