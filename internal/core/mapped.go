package sion

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/fsio"
	"repro/internal/mpi"
)

// Mapped open: reopening a multifile with a task count different from the
// one that wrote it (SIONlib's sion_paropen_mapped). The paper's model has
// every task read back its own chunks, but restart and post-processing
// workloads routinely rescale — a checkpoint written by N tasks is reopened
// by M readers, each taking over a set of original writer ranks (the same
// reader/worker decoupling CkIO, arXiv:2411.18593, argues for in
// over-decomposed systems). ParOpenMapped gives each of the M readers a
// full read handle per owned writer rank; the multifile layout makes this
// cheap because every chunk address is a pure function of the metadata, so
// no data moves when the task count changes.
//
// Two data paths mirror ParOpen's read side:
//
//   - Direct (CollectorGroup 0/1): a reader opens each physical file that
//     holds one of its ranks once, shares that handle among its rank views,
//     and serves reads on demand — with one read-ahead stage per owned rank
//     (buffer.go, pool-backed) when Options.BufferSize is set.
//   - Collective (CollectorGroup > 1 or CollectorAuto): groups of
//     consecutive reader ranks elect their first member as collector; only
//     the ⌈M/group⌉ collectors open physical files, and because ownership
//     spans are contiguous chunk runs, a collector fetches one whole span
//     per (file, block) — a few large reads — and scatters each rank's
//     logical stream to its member. Members never touch the file; their
//     handles serve reads from memory. Like ParOpen's collective read,
//     this prefetches complete streams at open, so it is meant for
//     restart-scale volumes, and a failure anywhere in a group fails the
//     whole group's open.
//
// SerialFile's read path and OpenRank are the no-communicator special
// cases of the same machinery (openMappedLocal): the serial global view is
// "one reader owns every rank", OpenRank is "one reader owns one rank".

// Message tags for the mapped-open exchanges.
const (
	tagMappedMeta = 4301 // parser → reader: per-file geometry records
	tagMappedReq  = 4302 // member → collector: owned-rank region requests
	tagMappedData = 4303 // collector → member: prefetched streams
)

// MappedFile is an M-task read view of a multifile written by N tasks.
// Each reader owns a disjoint set of original writer ranks and accesses
// them through per-rank handles (Rank) with full Read/Seek/ReadLogicalAt/
// EOF semantics. Distinct rank handles of one MappedFile may be used
// concurrently (each has its own cursor and stage, and the shared physical
// file is only accessed through offset reads); a single rank handle is not
// safe for concurrent use, like any *File.
type MappedFile struct {
	fsys fsio.FileSystem
	comm *mpi.Comm
	name string

	ntasks int // N: writer tasks recorded in the multifile
	nfiles int
	fsblk  int64

	owned   []int             // sorted original writer ranks owned by this reader
	handles map[int]*File     // per owned rank
	fhs     map[int]fsio.File // direct mode: one shared handle per physical file

	collGroup int
	collLead  bool
	closed    bool
}

// BalancedMapping returns the writer ranks owned by reader `reader` of
// `nreaders` under the auto-computed balanced mapping ParOpenMapped uses
// when owned == nil: contiguous spans chosen so that reader r owns exactly
// {g : ContiguousMap(g, ntasks, nreaders) == r}. With nreaders > ntasks
// the surplus readers own nothing.
func BalancedMapping(reader, nreaders, ntasks int) []int {
	if reader < 0 || nreaders <= 0 || reader >= nreaders || ntasks <= 0 {
		return nil
	}
	lo := (reader*ntasks + nreaders - 1) / nreaders
	hi := ((reader+1)*ntasks + nreaders - 1) / nreaders
	out := make([]int, 0, hi-lo)
	for g := lo; g < hi; g++ {
		out = append(out, g)
	}
	return out
}

// ParOpenMapped collectively reopens a multifile written by N tasks on an
// M-task communicator (sion_paropen_mapped). owned lists the original
// writer ranks this reader takes over (nil = the balanced contiguous
// partition of BalancedMapping); across the communicator the sets must be
// disjoint, but they need not cover all N ranks. Every task of comm must
// call it with the same name, mode, and options. Only ReadMode is
// supported: rescaling a multifile's writer side is a rewrite (Defrag),
// not a reopen.
//
// Unlike ParOpen, neither open nor Close performs a global barrier beyond
// the metadata exchange: in direct mode a reader whose metadata fails
// errors alone; in collective mode a failure fails the collector's whole
// group (whose members would otherwise hold handles served by nobody).
func ParOpenMapped(comm *mpi.Comm, fsys fsio.FileSystem, name string, mode Mode, owned []int, opts *Options) (*MappedFile, error) {
	if mode != ReadMode {
		return nil, fmt.Errorf("sion: ParOpenMapped %s: unsupported mode %v (mapped open reads an existing multifile)", name, mode)
	}
	o, err := opts.withDefaults(comm.Size(), fsio.CapabilitiesOf(fsys))
	if err != nil {
		return nil, err
	}

	// Rank 0 parses file 0's metablock 1 and broadcasts the layout basics,
	// the resolved collector group, and the full global mapping: with M≠N
	// no reader can assume its own placement exists, so everyone needs the
	// table (format.go's mapping codec, validated on every rank).
	hdr := make([]int64, 6)
	var mapEnc []byte
	if comm.Rank() == 0 {
		fh, oerr := fsys.Open(fileName(name, 0))
		if oerr != nil {
			hdr[0] = 1
		} else {
			h, perr := parseHeader(fh)
			fh.Close()
			if perr != nil {
				hdr[0] = 2
			} else {
				// CollectorAuto sizing: reuse the write-side heuristic with
				// file 0's average aligned chunk as the representative, so
				// the resolved group is identical on every reader.
				avg := newGeometry(h).stride / int64(h.NTasksLocal)
				group := resolveCollectorGroup(o.CollectorGroup, comm.Size(), avg*int64(comm.Size()), h.FSBlockSize)
				hdr = []int64{0, int64(h.NTasksGlobal), int64(h.NFiles), h.FSBlockSize, int64(h.Flags), int64(group)}
				mapEnc = encodeMapping(h.Mapping)
			}
		}
	}
	hdr = decodeInt64s(comm.Bcast(0, encodeInt64s(hdr)))
	mapEnc = comm.Bcast(0, mapEnc)
	if hdr[0] != 0 {
		return nil, fmt.Errorf("sion: ParOpenMapped %s failed (status %d: missing file or corrupt header)", name, hdr[0])
	}
	ntasks, nfiles, fsblk := int(hdr[1]), int(hdr[2]), hdr[3]
	flags, group := uint64(hdr[4]), int(hdr[5])
	mapping, err := decodeMapping(mapEnc, ntasks, nfiles)
	if err != nil {
		return nil, fmt.Errorf("sion: ParOpenMapped %s: %w", name, err)
	}

	// Ownership: gather every reader's claimed ranks at rank 0, which
	// validates range and global disjointness and broadcasts the owner
	// table (owner[g] = reader rank, -1 unowned).
	if owned == nil {
		owned = BalancedMapping(comm.Rank(), comm.Size(), ntasks)
	} else {
		owned = append([]int(nil), owned...)
		sort.Ints(owned)
	}
	claim := make([]int64, len(owned))
	for i, g := range owned {
		claim[i] = int64(g)
	}
	parts := comm.Gatherv(0, encodeInt64s(claim))
	var ownerEnc []byte
	if comm.Rank() == 0 {
		status := int64(0)
		owner := make([]int64, ntasks)
		for g := range owner {
			owner[g] = -1
		}
		for r, p := range parts {
			for _, gv := range decodeInt64s(p) {
				if gv < 0 || gv >= int64(ntasks) || owner[gv] != -1 {
					status = 1
					continue
				}
				owner[gv] = int64(r)
			}
		}
		ownerEnc = encodeInt64s(append([]int64{status}, owner...))
	}
	ownerVals := decodeInt64s(comm.Bcast(0, ownerEnc))
	if ownerVals[0] != 0 {
		return nil, fmt.Errorf("sion: ParOpenMapped %s: invalid ownership (a writer rank outside 0..%d, or owned by two readers)", name, ntasks-1)
	}
	owner := ownerVals[1:]

	// Deterministic work split every reader computes identically: which
	// readers need which physical file, and who parses it (file k's
	// metadata is parsed once, by reader k mod M, and fanned out).
	needs := make([][]int, nfiles)
	inNeed := make([]map[int]bool, nfiles)
	for g, w := range owner {
		if w < 0 {
			continue
		}
		k := int(mapping[g].File)
		if inNeed[k] == nil {
			inNeed[k] = make(map[int]bool)
		}
		if !inNeed[k][int(w)] {
			inNeed[k][int(w)] = true
			needs[k] = append(needs[k], int(w))
		}
	}
	mineByFile := make(map[int][]int)
	var myFiles []int
	for _, g := range owned {
		k := int(mapping[g].File)
		if len(mineByFile[k]) == 0 {
			myFiles = append(myFiles, k)
		}
		mineByFile[k] = append(mineByFile[k], g)
	}
	sort.Ints(myFiles)

	// Parse assigned files and fan the per-rank records out (sends are
	// eager, so all parsers send before anyone blocks in Recv below).
	for k := 0; k < nfiles; k++ {
		if len(needs[k]) == 0 || k%comm.Size() != comm.Rank() {
			continue
		}
		pf, lerr := loadSegment(fsys, name, k)
		if lerr == nil && int(pf.h.NTasksGlobal) != ntasks {
			lerr = fmt.Errorf("%w: segment %d disagrees on task count", ErrCorrupt, k)
		}
		sort.Ints(needs[k])
		for _, r := range needs[k] {
			comm.Send(r, tagMappedMeta, encodeInt64s(encodeMappedMeta(pf, lerr, k, owner, mapping, r)))
		}
		if pf != nil {
			pf.fh.Close()
		}
	}

	// Collect this reader's records; drain every expected message even
	// after a failure so no stray frame outlives the open.
	handles := make(map[int]*File, len(owned))
	metaFailed := false
	for _, k := range myFiles {
		vals := decodeInt64s(comm.Recv(k%comm.Size(), tagMappedMeta))
		recs, derr := decodeMappedMeta(vals, ntasks, k)
		if derr != nil {
			metaFailed = true
			continue
		}
		hdrs := flags&flagChunkHeaders != 0
		for _, rec := range recs {
			handles[rec.global] = &File{
				fsys: fsys, name: name, mode: ReadMode,
				local: rec.local, global: rec.global,
				filenum: k, nfiles: nfiles, fsblk: fsblk,
				requested: rec.chunkSize, chunkHdrs: hdrs,
				geo: geometry{
					fsblk: fsblk, start: rec.start, stride: rec.stride,
					aligned: []int64{rec.aligned}, prefix: []int64{rec.prefix},
					headers: hdrs,
				},
				readBytes: rec.blockBytes,
				fhShared:  true,
			}
		}
	}
	if !metaFailed {
		for _, g := range owned {
			if handles[g] == nil {
				metaFailed = true // parser omitted a rank we own
			}
		}
	}

	mf := &MappedFile{
		fsys: fsys, comm: comm, name: name,
		ntasks: ntasks, nfiles: nfiles, fsblk: fsblk,
		owned: owned, handles: handles,
	}
	if group > 1 {
		// The collective exchange runs even for a reader whose metadata
		// failed: its group must learn about the failure, or the collector
		// would block on a request that never comes.
		if err := mf.collectiveFetch(group, metaFailed); err != nil {
			return nil, err
		}
		return mf, nil
	}
	if metaFailed {
		return nil, fmt.Errorf("sion: ParOpenMapped %s: metadata exchange failed (corrupt or missing segment)", name)
	}
	mf.fhs = make(map[int]fsio.File, len(myFiles))
	for _, k := range myFiles {
		fh, oerr := fsys.Open(fileName(name, k))
		if oerr != nil {
			mf.Close()
			return nil, fmt.Errorf("sion: ParOpenMapped %s: opening physical file %d: %w", name, k, oerr)
		}
		mf.fhs[k] = fh
		for _, g := range mineByFile[k] {
			handles[g].fh = fh
		}
	}
	for _, g := range owned {
		handles[g].initStaging(o.BufferSize)
	}
	return mf, nil
}

// mappedRankMeta is one writer rank's geometry record in a parser→reader
// metadata message.
type mappedRankMeta struct {
	global, local int
	chunkSize     int64
	start, stride int64
	aligned       int64
	prefix        int64
	blockBytes    []int64
}

// encodeMappedMeta builds the metadata message parser of file k sends to
// one reader: [status, filenum, nrec, then per owned rank of that reader
// in file k: g, lrank, chunkSize, start, stride, aligned, prefix, nblocks,
// blockBytes...]. A load error becomes a bare failure status.
func encodeMappedMeta(pf *physFile, lerr error, k int, owner []int64, mapping []FileLoc, reader int) []int64 {
	if lerr != nil {
		return []int64{1, int64(k), 0}
	}
	vals := []int64{0, int64(k), 0}
	nrec := int64(0)
	for g := range owner {
		if int(owner[g]) != reader || int(mapping[g].File) != k {
			continue
		}
		li := int(mapping[g].LocalRank)
		if li >= int(pf.h.NTasksLocal) {
			return []int64{2, int64(k), 0} // mapping points outside the segment
		}
		bb := pf.m2.BlockBytes[li]
		vals = append(vals, int64(g), int64(li), pf.h.ChunkSizes[li],
			pf.geo.start, pf.geo.stride, pf.geo.aligned[li], pf.geo.prefix[li],
			int64(len(bb)))
		vals = append(vals, bb...)
		nrec++
	}
	vals[2] = nrec
	return vals
}

// decodeMappedMeta parses one metadata message, validating every field so
// a malformed frame yields ErrCorrupt instead of a panic or a handle with
// wild offsets.
func decodeMappedMeta(vals []int64, ntasks, wantFile int) ([]mappedRankMeta, error) {
	if len(vals) < 3 {
		return nil, fmt.Errorf("%w: mapped metadata message truncated (%d words)", ErrCorrupt, len(vals))
	}
	if vals[0] != 0 {
		return nil, fmt.Errorf("%w: mapped metadata status %d for segment %d", ErrCorrupt, vals[0], vals[1])
	}
	if int(vals[1]) != wantFile {
		return nil, fmt.Errorf("%w: mapped metadata for segment %d, want %d", ErrCorrupt, vals[1], wantFile)
	}
	nrec := vals[2]
	if nrec < 0 || nrec > int64(ntasks) {
		return nil, fmt.Errorf("%w: mapped metadata record count %d", ErrCorrupt, nrec)
	}
	out := make([]mappedRankMeta, 0, nrec)
	off := 3
	for i := int64(0); i < nrec; i++ {
		if off+8 > len(vals) {
			return nil, fmt.Errorf("%w: mapped metadata record %d truncated", ErrCorrupt, i)
		}
		rec := mappedRankMeta{
			global: int(vals[off]), local: int(vals[off+1]),
			chunkSize: vals[off+2], start: vals[off+3], stride: vals[off+4],
			aligned: vals[off+5], prefix: vals[off+6],
		}
		nb := vals[off+7]
		off += 8
		switch {
		case rec.global < 0 || rec.global >= ntasks,
			rec.local < 0 || rec.local >= ntasks,
			rec.chunkSize <= 0 || rec.chunkSize > maxChunkSize,
			rec.start < 0 || rec.stride <= 0 || rec.aligned <= 0 || rec.prefix < 0,
			nb < 0 || nb > 1<<24 || off+int(nb) > len(vals):
			return nil, fmt.Errorf("%w: mapped metadata record for rank %d implausible", ErrCorrupt, rec.global)
		}
		rec.blockBytes = append([]int64(nil), vals[off:off+int(nb)]...)
		for _, b := range rec.blockBytes {
			if b < 0 || b > rec.aligned {
				return nil, fmt.Errorf("%w: mapped metadata block bytes %d exceed chunk %d", ErrCorrupt, b, rec.aligned)
			}
		}
		off += int(nb)
		out = append(out, rec)
	}
	if off != len(vals) {
		return nil, fmt.Errorf("%w: mapped metadata message carries %d trailing words", ErrCorrupt, len(vals)-off)
	}
	return out, nil
}

// mappedRegion is one writer rank's chunk series on a collector: where its
// blocks live and, after the fetch, its assembled logical stream.
type mappedRegion struct {
	member   int // requesting group member's comm rank; -1 = the collector
	global   int
	file     int
	dataOff0 int64 // file offset of block 0's data
	stride   int64
	bb       []int64
	base     []int64 // logical offset of each block's first byte
	stream   []byte
}

func newMappedRegion(member, global, file int, dataOff0, stride int64, bb []int64) *mappedRegion {
	r := &mappedRegion{member: member, global: global, file: file,
		dataOff0: dataOff0, stride: stride, bb: bb}
	r.base = make([]int64, len(bb))
	var total int64
	for b, n := range bb {
		r.base[b] = total
		total += n
	}
	r.stream = make([]byte, total)
	return r
}

// collectiveFetch is the read-side collective exchange of a mapped open:
// members describe their owned ranks' chunk series to their group's
// collector, which prefetches everything with one span read per
// (file, block) and scatters the logical streams. The status is shared —
// any failure (a member's metadata, the collector's opens or reads) fails
// every open in the group.
func (mf *MappedFile) collectiveFetch(group int, localErr bool) error {
	comm := mf.comm
	rank := comm.Rank()
	lead := rank - rank%group
	mf.collGroup, mf.collLead = group, rank == lead

	failErr := func() error {
		return fmt.Errorf("sion: ParOpenMapped %s: collective mapped read failed in collector %d's group", mf.name, lead)
	}

	if !mf.collLead {
		// Request: [status, nranks, per rank: g, file, dataOff0, stride,
		// nblocks, blockBytes...] — same chunk arithmetic collReadRequest
		// ships on the same-cardinality path.
		req := []int64{0, int64(len(mf.owned))}
		if localErr {
			req = []int64{1, 0}
		} else {
			for _, g := range mf.owned {
				h := mf.handles[g]
				req = append(req, int64(g), int64(h.filenum),
					h.geo.dataOff(geoIndex, 0), h.geo.stride, int64(len(h.readBytes)))
				req = append(req, h.readBytes...)
			}
		}
		comm.Send(lead, tagMappedReq, encodeInt64s(req))
		reply := comm.Recv(lead, tagMappedData)
		if status := decodeInt64s(reply[:8])[0]; status != 0 || localErr {
			return failErr()
		}
		// Streams arrive concatenated in owned order.
		off := int64(8)
		for _, g := range mf.owned {
			h := mf.handles[g]
			n := h.LogicalSize()
			h.setCollRead(reply[off : off+n])
			off += n
		}
		return nil
	}

	// Collector: gather its own and every member's regions.
	end := lead + group
	if end > comm.Size() {
		end = comm.Size()
	}
	status := int64(0)
	if localErr {
		status = 1
	}
	var fetchErr error // the collector's own root cause, wrapped below
	var regions []*mappedRegion
	if !localErr {
		for _, g := range mf.owned {
			h := mf.handles[g]
			regions = append(regions, newMappedRegion(-1, g, h.filenum,
				h.geo.dataOff(geoIndex, 0), h.geo.stride, h.readBytes))
		}
	}
	var members []int
	memberRegions := make(map[int][]*mappedRegion)
	for m := lead + 1; m < end; m++ {
		members = append(members, m)
		vals := decodeInt64s(comm.Recv(m, tagMappedReq))
		if len(vals) < 2 || vals[0] != 0 {
			status = 1
			continue
		}
		off := 2
		for i := int64(0); i < vals[1]; i++ {
			if off+5 > len(vals) || off+5+int(vals[off+4]) > len(vals) || vals[off+4] < 0 {
				status = 1
				break
			}
			r := newMappedRegion(m, int(vals[off]), int(vals[off+1]),
				vals[off+2], vals[off+3], vals[off+5:off+5+int(vals[off+4])])
			off += 5 + int(vals[off+4])
			regions = append(regions, r)
			memberRegions[m] = append(memberRegions[m], r)
		}
	}
	if status == 0 {
		if err := mf.fetchRegions(regions); err != nil {
			status = 1
			fetchErr = err
		}
	}
	for _, m := range members {
		reply := encodeInt64s([]int64{status})
		if status == 0 {
			for _, r := range memberRegions[m] {
				reply = append(reply, r.stream...)
			}
		}
		comm.Send(m, tagMappedData, reply)
	}
	if status != 0 {
		if fetchErr != nil {
			// The collector knows the root cause; members only see the
			// status code (an error value cannot cross ranks), so only
			// here can callers errors.Is the backend sentinel.
			return fmt.Errorf("sion: ParOpenMapped %s: collective mapped read failed in collector %d's group: %w", mf.name, lead, fetchErr)
		}
		return failErr()
	}
	for _, r := range regions {
		if r.member == -1 {
			mf.handles[r.global].setCollRead(r.stream)
		}
	}
	return nil
}

// fetchRegions fills every region's stream with as few physical reads as
// the layout allows: regions are grouped by physical file, and each block
// is fetched as one span read covering every group-owned chunk in it —
// contiguous ownership makes the span dense, so a collector issues at most
// (files × blocks) reads however many ranks its group owns.
func (mf *MappedFile) fetchRegions(regions []*mappedRegion) error {
	byFile := make(map[int][]*mappedRegion)
	var files []int
	for _, r := range regions {
		if len(byFile[r.file]) == 0 {
			files = append(files, r.file)
		}
		byFile[r.file] = append(byFile[r.file], r)
	}
	sort.Ints(files)
	for _, k := range files {
		fh, err := mf.fsys.Open(fileName(mf.name, k))
		if err != nil {
			return fmt.Errorf("sion: ParOpenMapped %s: opening physical file %d: %w", mf.name, k, err)
		}
		err = fetchFileSpans(fh, byFile[k])
		fh.Close()
		if err != nil {
			return fmt.Errorf("sion: %s: collective mapped read: %w", mf.name, err)
		}
	}
	return nil
}

// fetchFileSpans reads one physical file's share of the regions, block by
// block: the block's owned chunk regions are merged into dense runs whose
// internal gaps stay below DefaultSpanGap (CoalesceExtents, span.go — the
// same gap-splitting logic internal/serve uses for cache-miss batching),
// one read per run.
func fetchFileSpans(fh fsio.File, regs []*mappedRegion) error {
	maxBlocks := 0
	for _, r := range regs {
		if len(r.bb) > maxBlocks {
			maxBlocks = len(r.bb)
		}
	}
	for b := 0; b < maxBlocks; b++ {
		var exts []Extent
		for i, r := range regs {
			if b < len(r.bb) && r.bb[b] > 0 {
				exts = append(exts, Extent{Off: r.dataOff0 + int64(b)*r.stride, Len: r.bb[b], Idx: i})
			}
		}
		for _, sp := range CoalesceExtents(exts, DefaultSpanGap) {
			buf := getStageBuf(sp.End - sp.Off)[:sp.End-sp.Off]
			n, err := fh.ReadAt(buf, sp.Off)
			if err != nil && err != io.EOF {
				putStageBuf(buf)
				return fmt.Errorf("span read at %d: %w", sp.Off, err)
			}
			zeroTail(buf, n)
			for _, e := range sp.Extents {
				r := regs[e.Idx]
				copy(r.stream[r.base[b]:r.base[b]+r.bb[b]], buf[e.Off-sp.Off:])
			}
			putStageBuf(buf)
		}
	}
	return nil
}

// --- Accessors and lifecycle -------------------------------------------------

// NTasks returns N, the writer task count recorded in the multifile.
func (mf *MappedFile) NTasks() int { return mf.ntasks }

// NumFiles returns the number of physical files of the multifile.
func (mf *MappedFile) NumFiles() int { return mf.nfiles }

// FSBlockSize returns the block size chunks are aligned to.
func (mf *MappedFile) FSBlockSize() int64 { return mf.fsblk }

// OwnedRanks returns the original writer ranks this reader owns, ascending.
func (mf *MappedFile) OwnedRanks() []int { return append([]int(nil), mf.owned...) }

// Collective reports the collector group size in effect (0 = direct) and
// whether this reader acts as a collector.
func (mf *MappedFile) Collective() (group int, collector bool) {
	return mf.collGroup, mf.collLead
}

// Rank returns the read handle for original writer rank g. The handle
// stays owned by the MappedFile: closing it individually is allowed and
// leaves the shared physical files open until (*MappedFile).Close.
func (mf *MappedFile) Rank(g int) (*File, error) {
	if mf.closed {
		return nil, fmt.Errorf("sion: %s: mapped handle is closed", mf.name)
	}
	h := mf.handles[g]
	if h == nil {
		return nil, fmt.Errorf("sion: %s: writer rank %d is not owned by reader %d", mf.name, g, mf.comm.Rank())
	}
	return h, nil
}

// Close releases every rank handle and the shared physical files. It is
// not collective: mapped handles are read-only, so no peer depends on this
// reader's close.
func (mf *MappedFile) Close() error {
	if mf.closed {
		return nil
	}
	mf.closed = true
	for _, g := range mf.owned {
		if h := mf.handles[g]; h != nil {
			h.closed = true
			h.dropStaging()
		}
	}
	var firstErr error
	var files []int
	for k := range mf.fhs {
		files = append(files, k)
	}
	sort.Ints(files)
	for _, k := range files {
		if err := mf.fhs[k].Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	mf.fhs = nil
	return firstErr
}

// --- Local (no-communicator) mapped core ------------------------------------

// mappedLocal is the single-process mapped view underlying OpenRank and
// the serial Open: parsed segments plus one read handle per owned rank,
// sharing one open file per segment.
type mappedLocal struct {
	ntasks, nfiles int
	fsblk          int64
	flags          uint64
	mapping        []FileLoc
	segs           map[int]*physFile
	handles        map[int]*File
}

// loadSegment opens one physical file and parses metablocks 1 and 2. The
// returned physFile keeps the file handle open; the caller owns it.
func loadSegment(fsys fsio.FileSystem, name string, k int) (*physFile, error) {
	fh, err := fsys.Open(fileName(name, k))
	if err != nil {
		return nil, fmt.Errorf("segment %d: %w", k, err)
	}
	h, err := parseHeader(fh)
	if err != nil {
		fh.Close()
		return nil, fmt.Errorf("segment %d: %w", k, err)
	}
	m2, err := readTail(fh, int(h.NTasksLocal))
	if err != nil {
		fh.Close()
		return nil, fmt.Errorf("segment %d: %w", k, err)
	}
	return &physFile{fh: fh, h: h, geo: newGeometry(h), m2: m2}, nil
}

// rankView builds a read-mode File over local rank li of a parsed segment
// k. The handle shares the segment's open file (fhShared), so the owning
// container closes it exactly once.
func (pf *physFile) rankView(fsys fsio.FileSystem, name string, k, li, global int) *File {
	return &File{
		fsys: fsys, fh: pf.fh, fhShared: true, name: name, mode: ReadMode,
		local: li, global: global,
		filenum: k, nfiles: int(pf.h.NFiles), fsblk: pf.h.FSBlockSize,
		requested: pf.h.ChunkSizes[li], chunkHdrs: pf.h.Flags&flagChunkHeaders != 0,
		geo: geometry{
			fsblk: pf.h.FSBlockSize, start: pf.geo.start, stride: pf.geo.stride,
			aligned: []int64{pf.geo.aligned[li]}, prefix: []int64{pf.geo.prefix[li]},
			headers: pf.geo.headers,
		},
		readBytes: append([]int64(nil), pf.m2.BlockBytes[li]...),
	}
}

// openMappedLocal parses the segments holding the owned ranks (nil = every
// rank, loading every segment — the serial global view) and builds the
// per-rank handles.
func openMappedLocal(fsys fsio.FileSystem, name string, owned []int) (*mappedLocal, error) {
	fh0, err := fsys.Open(fileName(name, 0))
	if err != nil {
		return nil, err
	}
	h0, err := parseHeader(fh0)
	if err != nil {
		fh0.Close()
		return nil, err
	}
	ml := &mappedLocal{
		ntasks: int(h0.NTasksGlobal), nfiles: int(h0.NFiles),
		fsblk: h0.FSBlockSize, flags: h0.Flags, mapping: h0.Mapping,
		segs:    make(map[int]*physFile),
		handles: make(map[int]*File),
	}
	all := owned == nil
	if all {
		owned = make([]int, ml.ntasks)
		for g := range owned {
			owned[g] = g
		}
	}
	var needed []int
	if all {
		needed = make([]int, ml.nfiles)
		for k := range needed {
			needed[k] = k
		}
	} else {
		seen := make(map[int]bool)
		for _, g := range owned {
			if g < 0 || g >= ml.ntasks {
				fh0.Close()
				return nil, fmt.Errorf("rank %d outside 0..%d", g, ml.ntasks-1)
			}
			if k := int(ml.mapping[g].File); !seen[k] {
				seen[k] = true
				needed = append(needed, k)
			}
		}
		sort.Ints(needed)
	}
	fail := func(err error) (*mappedLocal, error) {
		ml.closeAll()
		if ml.segs[0] == nil { // fh0 not yet owned by a segment entry
			fh0.Close()
		}
		return nil, err
	}
	for _, k := range needed {
		var pf *physFile
		if k == 0 {
			m2, terr := readTail(fh0, int(h0.NTasksLocal))
			if terr != nil {
				return fail(terr)
			}
			pf = &physFile{fh: fh0, h: h0, geo: newGeometry(h0), m2: m2}
		} else {
			var lerr error
			if pf, lerr = loadSegment(fsys, name, k); lerr != nil {
				return fail(lerr)
			}
		}
		ml.segs[k] = pf
	}
	if ml.segs[0] == nil {
		fh0.Close() // only the mapping was needed from file 0
	}
	for _, g := range owned {
		loc := ml.mapping[g]
		pf := ml.segs[int(loc.File)]
		if int(loc.LocalRank) >= int(pf.h.NTasksLocal) {
			ml.closeAll()
			return nil, fmt.Errorf("%w: task %d maps to local rank %d of segment %d (%d tasks)",
				ErrCorrupt, g, loc.LocalRank, loc.File, pf.h.NTasksLocal)
		}
		ml.handles[g] = pf.rankView(fsys, name, int(loc.File), int(loc.LocalRank), g)
	}
	return ml, nil
}

// closeAll closes every segment file handle (error cleanup).
func (ml *mappedLocal) closeAll() {
	for _, pf := range ml.segs {
		pf.fh.Close()
	}
}
