package sion

import (
	"testing"

	"repro/internal/fsio"
)

// TestMapFuncEdgeCases pins the task→file mapping functions on the shapes
// that historically break integer-division layouts: task counts not
// divisible by the file count, a single task, and nfiles == ntasks.
func TestMapFuncEdgeCases(t *testing.T) {
	cases := []struct {
		name           string
		ntasks, nfiles int
	}{
		{"single-task", 1, 1},
		{"indivisible", 10, 3},
		{"indivisible-large", 1000, 7},
		{"nfiles-equals-ntasks", 8, 8},
		{"two-to-one", 8, 4},
		{"prime-tasks", 13, 4},
	}
	maps := []struct {
		name string
		fn   MapFunc
	}{{"contig", ContiguousMap}, {"rr", RoundRobinMap}}
	for _, m := range maps {
		for _, tc := range cases {
			t.Run(m.name+"/"+tc.name, func(t *testing.T) {
				counts := make([]int, tc.nfiles)
				prev := 0
				for g := 0; g < tc.ntasks; g++ {
					fn := m.fn(g, tc.ntasks, tc.nfiles)
					if fn < 0 || fn >= tc.nfiles {
						t.Fatalf("task %d mapped to file %d of %d", g, fn, tc.nfiles)
					}
					counts[fn]++
					if m.name == "contig" && fn < prev {
						t.Fatalf("ContiguousMap not monotonic: task %d file %d after file %d", g, fn, prev)
					}
					prev = fn
				}
				// Balance: with ntasks ≥ nfiles every file holds ⌊N/F⌋ or
				// ⌈N/F⌉ tasks — a file with zero tasks would make Create and
				// ParOpen produce an unreadable segment.
				lo, hi := tc.ntasks/tc.nfiles, (tc.ntasks+tc.nfiles-1)/tc.nfiles
				for k, c := range counts {
					if c < lo || c > hi {
						t.Errorf("file %d holds %d tasks, want %d..%d", k, c, lo, hi)
					}
				}
			})
		}
	}
	// nfiles == ntasks must be a bijection for both mappings.
	for _, m := range maps {
		seen := make(map[int]bool)
		for g := 0; g < 8; g++ {
			fn := m.fn(g, 8, 8)
			if seen[fn] {
				t.Errorf("%s: nfiles==ntasks maps two tasks to file %d", m.name, fn)
			}
			seen[fn] = true
		}
	}
}

// TestWithDefaultsClamping pins the Options normalization: nfiles is
// clamped to the task count, the default mapping and file count are
// installed, and invalid combinations are rejected.
func TestWithDefaultsClamping(t *testing.T) {
	cases := []struct {
		name       string
		opts       *Options
		ntasks     int
		wantNFiles int
		wantErr    bool
	}{
		{"nil-options", nil, 4, 1, false},
		{"default-nfiles", &Options{ChunkSize: 64}, 4, 1, false},
		{"nfiles-exceeds-ntasks", &Options{NFiles: 9}, 4, 4, false},
		{"nfiles-exceeds-single-task", &Options{NFiles: 5}, 1, 1, false},
		{"nfiles-kept", &Options{NFiles: 3}, 7, 3, false},
		{"negative-maxchunks", &Options{MaxChunks: -1}, 4, 0, true},
		{"collector-below-auto", &Options{CollectorGroup: -2}, 4, 0, true},
		{"collector-with-chunk-headers", &Options{CollectorGroup: 2, ChunkHeaders: true}, 4, 0, true},
		{"async-without-collector", &Options{AsyncCollective: true}, 4, 0, true},
		{"negative-flush", &Options{CollectorGroup: 2, AsyncCollective: true, AsyncFlushBytes: -1}, 4, 0, true},
		{"buffer-off-accepted", &Options{BufferSize: BufferOff}, 4, 1, false},
		{"buffer-below-off", &Options{BufferSize: -3}, 4, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := tc.opts.withDefaults(tc.ntasks, fsio.Capabilities{})
			if tc.wantErr {
				if err == nil {
					t.Fatal("invalid options accepted")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if out.NFiles != tc.wantNFiles {
				t.Errorf("NFiles = %d, want %d", out.NFiles, tc.wantNFiles)
			}
			if out.Mapping == nil {
				t.Error("default mapping not installed")
			}
		})
	}
}

// TestWithDefaultsCapabilityTuning pins the backend-aware geometry
// auto-tuning: a multipart descriptor turns staging on by default,
// rounds the collective flush unit to whole parts, and spreads the
// physical files to the backend's write fanout — while the zero
// (POSIX-ish) descriptor reproduces the historical defaults exactly.
func TestWithDefaultsCapabilityTuning(t *testing.T) {
	objCaps := fsio.Capabilities{
		Backend:       "objstore",
		PartSizeFloor: 1 << 20,
		WriteFanout:   8,
		Sync:          fsio.SyncOnSeal,
	}

	// Zero descriptor: nothing changes.
	o, err := (&Options{ChunkSize: 64}).withDefaults(32, fsio.Capabilities{})
	if err != nil {
		t.Fatal(err)
	}
	if o.NFiles != 1 || o.BufferSize != 0 {
		t.Fatalf("posix defaults moved: NFiles=%d BufferSize=%d", o.NFiles, o.BufferSize)
	}

	// Multipart descriptor: fanout + staging defaults.
	o, err = (&Options{ChunkSize: 64}).withDefaults(32, objCaps)
	if err != nil {
		t.Fatal(err)
	}
	if o.NFiles != 8 {
		t.Errorf("NFiles = %d, want WriteFanout 8", o.NFiles)
	}
	if o.BufferSize != BufferAuto {
		t.Errorf("BufferSize = %d, want BufferAuto", o.BufferSize)
	}

	// Fanout clamps to the task count and never overrides the caller.
	o, _ = (&Options{ChunkSize: 64}).withDefaults(3, objCaps)
	if o.NFiles != 3 {
		t.Errorf("NFiles = %d, want clamp to 3 tasks", o.NFiles)
	}
	o, _ = (&Options{ChunkSize: 64, NFiles: 2}).withDefaults(32, objCaps)
	if o.NFiles != 2 {
		t.Errorf("NFiles = %d, want caller's 2", o.NFiles)
	}

	// BufferOff is the explicit opt-out; an explicit size is kept.
	o, _ = (&Options{ChunkSize: 64, BufferSize: BufferOff}).withDefaults(32, objCaps)
	if o.BufferSize != 0 {
		t.Errorf("BufferOff resolved to %d, want 0", o.BufferSize)
	}
	o, _ = (&Options{ChunkSize: 64, BufferSize: 4096}).withDefaults(32, objCaps)
	if o.BufferSize != 4096 {
		t.Errorf("explicit BufferSize resolved to %d, want 4096", o.BufferSize)
	}

	// Explicit flush units round up to whole parts.
	o, _ = (&Options{ChunkSize: 64, CollectorGroup: 4, AsyncCollective: true,
		AsyncFlushBytes: 100}).withDefaults(32, objCaps)
	if o.AsyncFlushBytes != 1<<20 {
		t.Errorf("AsyncFlushBytes = %d, want one part (%d)", o.AsyncFlushBytes, 1<<20)
	}
}
