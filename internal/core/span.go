package sion

import "sort"

// Span coalescing: the one primitive behind every "few dense reads instead
// of many small ones" path in this repository. The mapped collective open
// (mapped.go) uses it to fetch a collector group's owned chunk regions with
// one read per dense run, and the read-serving subsystem (internal/serve)
// uses it to merge concurrent cache-block misses into dense span reads.
// Both layers share this implementation so their gap-splitting semantics
// cannot drift apart.

// Extent is one caller-tagged byte range [Off, Off+Len) inside a physical
// file. Idx is an opaque caller tag (typically an index into a parallel
// slice) preserved through coalescing so the caller can route each span's
// bytes back to whoever asked for them.
type Extent struct {
	Off int64
	Len int64
	Idx int
}

// Span is one dense read request [Off, End) covering Extents, which are
// sorted by offset and lie fully inside the span.
type Span struct {
	Off, End int64
	Extents  []Extent
}

// DefaultSpanGap bounds the unwanted bytes a span read may fetch between
// two requested extents. Contiguous layouts (balanced mapped ownership,
// sequential cache blocks) leave only alignment slack between extents
// (well under one chunk), so dense runs still move in one read; a sparse
// request pattern (e.g. a collector group owning the first and last writer
// rank) is split at the gaps instead of fetching — and allocating — the
// whole distance between them.
const DefaultSpanGap = 1 << 20

// CoalesceExtents merges extents into dense spans whose internal gaps do
// not exceed maxGap: the result is the minimal set of reads that covers
// every extent without ever bridging a hole larger than maxGap bytes.
// Extents may overlap and arrive in any order; maxGap 0 merges only
// touching or overlapping extents.
func CoalesceExtents(exts []Extent, maxGap int64) []Span {
	if len(exts) == 0 {
		return nil
	}
	sorted := append([]Extent(nil), exts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Off < sorted[j].Off })
	spans := []Span{{Off: sorted[0].Off, End: sorted[0].Off + sorted[0].Len, Extents: sorted[:1:1]}}
	for _, e := range sorted[1:] {
		cur := &spans[len(spans)-1]
		if e.Off-cur.End <= maxGap {
			cur.Extents = append(cur.Extents, e)
			if end := e.Off + e.Len; end > cur.End {
				cur.End = end
			}
			continue
		}
		spans = append(spans, Span{Off: e.Off, End: e.Off + e.Len, Extents: []Extent{e}})
	}
	return spans
}
