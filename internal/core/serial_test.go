package sion

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/fsio"
	"repro/internal/mpi"
)

func TestSerialCreateSeekWriteReadBack(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	sizes := []int64{100, 200, 300}
	sf, err := Create(fsys, "sw.sion", sizes, &Options{FSBlockSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	// Write into specific (rank, block, pos) positions like Listing 3.
	if err := sf.Seek(1, 0, 0); err != nil {
		t.Fatal(err)
	}
	sf.Write([]byte("rank1-block0"))
	if err := sf.Seek(1, 2, 0); err != nil {
		t.Fatal(err)
	}
	sf.Write([]byte("rank1-block2"))
	if err := sf.Seek(2, 0, 10); err != nil {
		t.Fatal(err)
	}
	sf.Write([]byte("offset-write"))
	if err := sf.Close(); err != nil {
		t.Fatal(err)
	}

	rf, err := Open(fsys, "sw.sion")
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	loc := rf.Locations()
	if got := len(loc.BlockBytes[1]); got != 3 {
		t.Fatalf("rank 1 blocks = %d, want 3 (sparse middle block)", got)
	}
	if loc.BlockBytes[1][1] != 0 {
		t.Fatalf("rank 1 middle block bytes = %d, want 0", loc.BlockBytes[1][1])
	}
	rf.Seek(1, 2, 0)
	b := make([]byte, 12)
	if _, err := io.ReadFull(rf, b); err != nil {
		t.Fatal(err)
	}
	if string(b) != "rank1-block2" {
		t.Fatalf("got %q", b)
	}
	// Rank 2: 10 zero bytes then the payload (high-water semantics).
	if rf.RankBytes(2) != 22 {
		t.Fatalf("rank 2 bytes = %d, want 22", rf.RankBytes(2))
	}
	got, _ := rf.ReadRank(2)
	if !bytes.Equal(got[10:], []byte("offset-write")) {
		t.Fatalf("rank 2 data = %q", got)
	}
}

func TestSerialCreateWithChunkHeadersVerifies(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	sf, err := Create(fsys, "h.sion", []int64{64, 64}, &Options{FSBlockSize: 128, ChunkHeaders: true})
	if err != nil {
		t.Fatal(err)
	}
	sf.Seek(0, 0, 0)
	sf.Write([]byte("aaa"))
	sf.Seek(1, 0, 0)
	sf.Write([]byte("bbbb"))
	if err := sf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := Verify(fsys, "h.sion"); err != nil {
		t.Fatal(err)
	}
}

func TestSerialCreateErrors(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	if _, err := Create(fsys, "x", nil, nil); err == nil {
		t.Fatal("empty chunk sizes accepted")
	}
	if _, err := Create(fsys, "x", []int64{0}, nil); err == nil {
		t.Fatal("zero chunk size accepted")
	}
	if _, err := Create(fsys, "x", []int64{10, 10}, &Options{
		Mapping: func(rank, n, nf int) int { return 99 },
	}); err == nil {
		t.Fatal("out-of-range mapping accepted")
	}
}

func TestSerialSeekValidation(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	sf, _ := Create(fsys, "s.sion", []int64{100}, &Options{FSBlockSize: 64})
	defer sf.Close()
	if err := sf.Seek(5, 0, 0); err == nil {
		t.Fatal("seek to invalid rank accepted")
	}
	if err := sf.Seek(0, -1, 0); err == nil {
		t.Fatal("negative block accepted")
	}
	if err := sf.Seek(0, 0, 1<<20); err == nil {
		t.Fatal("pos beyond capacity accepted")
	}
	if err := sf.Seek(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sf.Write([]byte("x")); err != nil {
		t.Fatal("write after valid seek failed:", err)
	}
}

func TestSerialWriteBeforeSeekFails(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	sf, _ := Create(fsys, "b.sion", []int64{10}, nil)
	defer sf.Close()
	if _, err := sf.Write([]byte("x")); err == nil {
		t.Fatal("write before Seek accepted")
	}
}

func TestReadSeekOutsideRecordedData(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	mpi.Run(2, func(c *mpi.Comm) {
		f, _ := ParOpen(c, fsys, "r.sion", WriteMode, &Options{ChunkSize: 64, FSBlockSize: 64})
		f.Write([]byte("hello"))
		f.Close()
	})
	sf, err := Open(fsys, "r.sion")
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	if err := sf.Seek(0, 1, 0); err == nil {
		t.Fatal("seek beyond recorded blocks accepted")
	}
	if err := sf.Seek(0, 0, 6); err == nil {
		t.Fatal("seek beyond recorded bytes accepted")
	}
}

func TestPhysicalNames(t *testing.T) {
	names := PhysicalNames("a.sion", 3)
	want := []string{"a.sion", "a.sion.000001", "a.sion.000002"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v", names)
		}
	}
}

func TestSyntheticIOOnRealFS(t *testing.T) {
	// WriteSynthetic writes literal zeros on the OS backend, so a
	// multifile written synthetically must read back as zeros.
	fsys := fsio.NewOS(t.TempDir())
	mpi.Run(3, func(c *mpi.Comm) {
		f, err := ParOpen(c, fsys, "z.sion", WriteMode, &Options{ChunkSize: 1000, FSBlockSize: 512})
		if err != nil {
			t.Error(err)
			return
		}
		if err := f.WriteSynthetic(2500); err != nil { // spans 3 chunks
			t.Error(err)
		}
		f.Close()

		r, _ := ParOpen(c, fsys, "z.sion", ReadMode, nil)
		n, err := r.ReadSynthetic(10000)
		if err != nil {
			t.Error(err)
		}
		if n != 2500 {
			t.Errorf("rank %d: synthetic read %d, want 2500", c.Rank(), n)
		}
		r.Close()

		r2, _ := ParOpen(c, fsys, "z.sion", ReadMode, nil)
		buf := make([]byte, 2500)
		if _, err := io.ReadFull(r2, buf); err != nil {
			t.Error(err)
		}
		for _, b := range buf {
			if b != 0 {
				t.Errorf("rank %d: non-zero byte from synthetic write", c.Rank())
				break
			}
		}
		r2.Close()
	})
}

func TestDefragPreservesMultiFilePlacement(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	const n = 6
	mpi.Run(n, func(c *mpi.Comm) {
		f, _ := ParOpen(c, fsys, "m.sion", WriteMode, &Options{ChunkSize: 64, FSBlockSize: 64, NFiles: 3})
		f.Write(rankPayload(c.Rank(), 200)) // several blocks
		f.Close()
	})
	if err := Defrag(fsys, "m.sion", fsys, "m2.sion"); err != nil {
		t.Fatal(err)
	}
	src, _ := Open(fsys, "m.sion")
	dst, err := Open(fsys, "m2.sion")
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	defer dst.Close()
	ls, ld := src.Locations(), dst.Locations()
	if ld.NFiles != ls.NFiles {
		t.Fatalf("defrag changed file count: %d -> %d", ls.NFiles, ld.NFiles)
	}
	for r := 0; r < n; r++ {
		if ld.Placement[r].File != ls.Placement[r].File {
			t.Fatalf("rank %d moved from file %d to %d", r, ls.Placement[r].File, ld.Placement[r].File)
		}
		a, _ := src.ReadRank(r)
		b, _ := dst.ReadRank(r)
		if !bytes.Equal(a, b) {
			t.Fatalf("rank %d content differs after defrag", r)
		}
	}
}

func TestSplitSubsetAndBadPattern(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	mpi.Run(4, func(c *mpi.Comm) {
		f, _ := ParOpen(c, fsys, "s.sion", WriteMode, &Options{ChunkSize: 64, FSBlockSize: 64})
		f.Write(rankPayload(c.Rank(), 40))
		f.Close()
	})
	if err := Split(fsys, "s.sion", fsys, "no-verb", nil); err == nil {
		t.Fatal("pattern without a rank verb accepted")
	}
	if err := Split(fsys, "s.sion", fsys, "out-%d", []int{1, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Stat("out-1"); err != nil {
		t.Fatal("selected rank not extracted")
	}
	if _, err := fsys.Stat("out-0"); !errors.Is(err, fsio.ErrNotExist) {
		t.Fatal("unselected rank extracted")
	}
	if err := Split(fsys, "s.sion", fsys, "out-%d", []int{9}); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
}

func TestSerialFileDoubleCloseAndClosedOps(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	sf, _ := Create(fsys, "c.sion", []int64{10}, nil)
	if err := sf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sf.Close(); err != nil {
		t.Fatal("second close should be a no-op")
	}
	if err := sf.Seek(0, 0, 0); err == nil {
		t.Fatal("seek on closed file accepted")
	}
}

func TestOpenRankMultiSegment(t *testing.T) {
	// OpenRank for a task living in segment > 0 must only need that
	// segment plus the mapping from segment 0.
	fsys := fsio.NewOS(t.TempDir())
	const n = 6
	mpi.Run(n, func(c *mpi.Comm) {
		f, _ := ParOpen(c, fsys, "seg.sion", WriteMode, &Options{ChunkSize: 128, FSBlockSize: 128, NFiles: 3})
		f.Write(rankPayload(c.Rank(), 128))
		f.Close()
	})
	f, err := OpenRank(fsys, "seg.sion", n-1)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.PhysicalFile() != 2 {
		t.Fatalf("rank %d in file %d, want 2", n-1, f.PhysicalFile())
	}
	got := make([]byte, 128)
	io.ReadFull(f, got)
	if !bytes.Equal(got, rankPayload(n-1, 128)) {
		t.Fatal("content mismatch via OpenRank in segment 2")
	}
}
