package sion

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Key-value access mode: tagged records inside a task's logical file,
// mirroring SIONlib's sion_fwrite_key/sion_fread_key interface (added to
// SIONlib for exactly the multi-stream-per-task scenarios the paper's §6
// discusses for hybrid MPI/OpenMP codes: each thread writes under its own
// key into the task's chunks, and readers retrieve per-key streams).
//
// Wire format of one record: magic "SKV1", key u64, length u64, payload.

const keyRecMagic = "SKV1"
const keyRecHeader = 4 + 8 + 8

// KeyWriter writes tagged records into a logical task-local file.
type KeyWriter struct {
	f *File
}

// NewKeyWriter wraps a write-mode File.
func NewKeyWriter(f *File) (*KeyWriter, error) {
	if err := f.checkOpen(WriteMode); err != nil {
		return nil, err
	}
	return &KeyWriter{f: f}, nil
}

// WriteKey appends one record under the given key (sion_fwrite_key).
func (w *KeyWriter) WriteKey(key uint64, p []byte) error {
	hdr := make([]byte, keyRecHeader)
	copy(hdr, keyRecMagic)
	binary.LittleEndian.PutUint64(hdr[4:], key)
	binary.LittleEndian.PutUint64(hdr[12:], uint64(len(p)))
	if _, err := w.f.Write(hdr); err != nil {
		return err
	}
	_, err := w.f.Write(p)
	return err
}

// keyRef locates one record's payload inside the logical stream.
type keyRef struct {
	off int64 // logical offset of the payload
	len int64
}

// LogicalReaderAt is the logical-stream surface KeyReader indexes: random
// access into one task's logical file plus its total size. *File implements
// it over chunks; internal/serve's Handle implements it over the shared
// block cache, so both serve the identical key-value record format.
type LogicalReaderAt interface {
	// ReadLogicalAt fills p from the logical stream starting at off,
	// returning io.EOF on short reads past the end.
	ReadLogicalAt(p []byte, off int64) (int, error)
	// LogicalSize returns the total recorded bytes of the logical stream.
	LogicalSize() int64
}

// KeyReader indexes the tagged records of one task's logical file and
// serves per-key reads (sion_fread_key with seeking).
type KeyReader struct {
	f     LogicalReaderAt
	index map[uint64][]keyRef
}

// NewKeyReader scans a read-mode File (from ParOpen or OpenRank) and
// builds the key index. The scan reads one record header at a time, which
// would issue one file request per record without buffering, so NewKeyReader
// arms the read-ahead stage (buffer.go) with an auto-tuned size unless the
// handle already serves reads from memory (collective read), carries a
// stage of its own, or was explicitly opted out with SetBufferSize(0);
// per-record Record/ReadKey calls then hit the same cache.
func NewKeyReader(f *File) (*KeyReader, error) {
	if err := f.checkOpen(ReadMode); err != nil {
		return nil, err
	}
	if f.collRead == nil && f.rstage == nil && !f.stagingOff {
		f.initStaging(BufferAuto)
	}
	return NewKeyReaderFrom(f)
}

// NewKeyReaderFrom builds a key index over any logical stream reader —
// the generalization of NewKeyReader that internal/serve uses to serve
// key lookups through its block cache. It applies no staging of its own;
// the reader is responsible for whatever request coalescing it wants.
func NewKeyReaderFrom(f LogicalReaderAt) (*KeyReader, error) {
	r := &KeyReader{f: f, index: make(map[uint64][]keyRef)}
	var off int64
	total := f.LogicalSize()
	hdr := make([]byte, keyRecHeader)
	for off < total {
		if _, err := f.ReadLogicalAt(hdr, off); err != nil {
			return nil, fmt.Errorf("sion: key index at offset %d: %w", off, err)
		}
		if string(hdr[:4]) != keyRecMagic {
			return nil, fmt.Errorf("%w: bad key-record magic at logical offset %d", ErrCorrupt, off)
		}
		key := binary.LittleEndian.Uint64(hdr[4:])
		n := int64(binary.LittleEndian.Uint64(hdr[12:]))
		if n < 0 || off+keyRecHeader+n > total {
			return nil, fmt.Errorf("%w: key record at %d overruns stream (%d bytes)", ErrCorrupt, off, n)
		}
		r.index[key] = append(r.index[key], keyRef{off: off + keyRecHeader, len: n})
		off += keyRecHeader + n
	}
	return r, nil
}

// Keys lists the distinct keys present, ascending.
func (r *KeyReader) Keys() []uint64 {
	out := make([]uint64, 0, len(r.index))
	for k := range r.index {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumRecords reports how many records exist under key.
func (r *KeyReader) NumRecords(key uint64) int { return len(r.index[key]) }

// Record returns the i-th record written under key.
func (r *KeyReader) Record(key uint64, i int) ([]byte, error) {
	refs := r.index[key]
	if i < 0 || i >= len(refs) {
		return nil, fmt.Errorf("sion: key %d has %d records, requested %d", key, len(refs), i)
	}
	buf := make([]byte, refs[i].len)
	if _, err := r.f.ReadLogicalAt(buf, refs[i].off); err != nil {
		return nil, err
	}
	return buf, nil
}

// ReadKey returns the concatenation of all records under key, in write
// order (the per-key stream view).
func (r *KeyReader) ReadKey(key uint64) ([]byte, error) {
	refs := r.index[key]
	var total int64
	for _, ref := range refs {
		total += ref.len
	}
	out := make([]byte, 0, total)
	for i := range refs {
		rec, err := r.Record(key, i)
		if err != nil {
			return nil, err
		}
		out = append(out, rec...)
	}
	return out, nil
}

// --- Logical random access on File ------------------------------------------

// LogicalSize returns the total bytes recorded for this task across all
// its chunks (read mode).
func (f *File) LogicalSize() int64 {
	var total int64
	for _, b := range f.readBytes {
		total += b
	}
	return total
}

// ReadLogicalAt fills p from the task's logical stream starting at the
// given logical offset, spanning chunks as needed, without moving the
// sequential cursor. It returns io.EOF on short reads past the end.
func (f *File) ReadLogicalAt(p []byte, off int64) (int, error) {
	if err := f.checkOpen(ReadMode); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("sion: %s: negative logical offset", f.name)
	}
	// Locate the block containing off.
	block := 0
	for block < len(f.readBytes) && off >= f.readBytes[block] {
		off -= f.readBytes[block]
		block++
	}
	total := 0
	for len(p) > 0 && block < len(f.readBytes) {
		avail := f.readBytes[block] - off
		if avail == 0 {
			block++
			off = 0
			continue
		}
		n := int64(len(p))
		if n > avail {
			n = avail
		}
		if err := f.readChunkAt(p[:n], block, off); err != nil {
			return total, fmt.Errorf("sion: %s: logical read: %w", f.name, err)
		}
		p = p[n:]
		off += n
		total += int(n)
	}
	if len(p) > 0 {
		return total, io.EOF
	}
	return total, nil
}
