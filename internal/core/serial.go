package sion

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/fsio"
)

// SerialFile is a serial (single-process) view of a whole multifile: every
// task's logical file is addressable through Seek (paper §3.2.3/§3.2.4,
// Listings 3 and 5). It is the foundation of the command-line utilities
// and of postprocessing tools such as trace analyzers.
type SerialFile struct {
	fsys    fsio.FileSystem
	name    string
	mode    Mode
	ntasks  int
	nfiles  int
	fsblk   int64
	flags   uint64
	mapping []FileLoc
	files   []*physFile
	closed  bool

	// Cursor state (Seek/Read/Write).
	curRank  int
	curBlock int
	curPos   int64

	// Write mode: per global rank, per block: high-water byte counts.
	written [][]int64

	// Write mode: write-behind staging for the cursor's contiguous run
	// (see buffer.go); nil = unbuffered.
	wstage *serialWriteStage

	// Read mode: the M=1 mapped view — one read handle per task, sharing
	// one open file per segment (see mapped.go). The cursor operations
	// delegate to these handles, which also carry the per-rank read-ahead
	// stages.
	handles map[int]*File
}

// physFile is one physical file of the multifile in serial view.
type physFile struct {
	fh  fsio.File
	h   *header
	geo geometry
	m2  *meta2 // read mode only
}

// Create opens a multifile for serial writing (paper Listing 3: the serial
// open call receives the whole array of chunk sizes, one per task).
func Create(fsys fsio.FileSystem, name string, chunkSizes []int64, opts *Options) (*SerialFile, error) {
	if len(chunkSizes) == 0 {
		return nil, fmt.Errorf("sion: Create %s: no chunk sizes", name)
	}
	for i, cs := range chunkSizes {
		if cs <= 0 {
			return nil, fmt.Errorf("sion: Create %s: chunk size %d for task %d", name, cs, i)
		}
	}
	o, err := opts.withDefaults(len(chunkSizes), fsio.CapabilitiesOf(fsys))
	if err != nil {
		return nil, err
	}
	if o.Watermarks {
		// The serial writer has no Flush-time commit machinery; setting the
		// header flag without it would promise tail readers a sidecar that
		// never exists.
		return nil, fmt.Errorf("sion: Create %s: Watermarks require a parallel write handle (ParOpen)", name)
	}
	fsblk := o.FSBlockSize
	if fsblk <= 0 {
		fsblk = fsys.BlockSize(name)
	}
	ntasks := len(chunkSizes)

	// Place each task, grouping local ranks in global-rank order per file.
	mapping := make([]FileLoc, ntasks)
	counts := make([]int32, o.NFiles)
	for r := range mapping {
		fn := o.Mapping(r, ntasks, o.NFiles)
		if fn < 0 || fn >= o.NFiles {
			return nil, fmt.Errorf("sion: Create %s: mapping sent task %d to file %d of %d", name, r, fn, o.NFiles)
		}
		mapping[r] = FileLoc{File: int32(fn), LocalRank: counts[fn]}
		counts[fn]++
	}
	for k, c := range counts {
		if c == 0 {
			return nil, fmt.Errorf("sion: Create %s: physical file %d has no tasks", name, k)
		}
	}

	sf := &SerialFile{
		fsys: fsys, name: name, mode: WriteMode,
		ntasks: ntasks, nfiles: o.NFiles, fsblk: fsblk, flags: o.flags(),
		mapping: mapping,
		files:   make([]*physFile, o.NFiles),
		written: make([][]int64, ntasks),
		curRank: -1,
	}
	for k := 0; k < o.NFiles; k++ {
		h := &header{
			FSBlockSize:  fsblk,
			NTasksGlobal: int32(ntasks),
			NTasksLocal:  counts[k],
			NFiles:       int32(o.NFiles),
			FileNum:      int32(k),
			Flags:        o.flags(),
			MaxChunks:    int32(o.MaxChunks),
			GlobalRanks:  make([]int64, counts[k]),
			ChunkSizes:   make([]int64, counts[k]),
		}
		for r := range mapping {
			if int(mapping[r].File) == k {
				h.GlobalRanks[mapping[r].LocalRank] = int64(r)
				h.ChunkSizes[mapping[r].LocalRank] = chunkSizes[r]
			}
		}
		if k == 0 {
			h.Mapping = mapping
		}
		fh, err := fsys.Create(fileName(name, k))
		if err != nil {
			sf.abort()
			return nil, fmt.Errorf("sion: Create %s: %w", name, err)
		}
		if _, err := fh.WriteAt(h.encode(), 0); err != nil {
			fh.Close()
			sf.abort()
			return nil, fmt.Errorf("sion: Create %s: header: %w", name, err)
		}
		sf.files[k] = &physFile{fh: fh, h: h, geo: newGeometry(h)}
	}
	if o.BufferSize != 0 {
		if err := sf.SetBufferSize(o.BufferSize); err != nil {
			sf.abort()
			return nil, err
		}
	}
	return sf, nil
}

// Open opens a multifile for serial reading with the global view
// (paper Listing 5). It is the M=1 special case of mapped open
// (see mapped.go): one reader owning every task's logical file.
func Open(fsys fsio.FileSystem, name string) (*SerialFile, error) {
	ml, err := openMappedLocal(fsys, name, nil)
	if err != nil {
		return nil, fmt.Errorf("sion: Open %s: %w", name, err)
	}
	sf := &SerialFile{
		fsys: fsys, name: name, mode: ReadMode,
		ntasks: ml.ntasks, nfiles: ml.nfiles,
		fsblk: ml.fsblk, flags: ml.flags,
		mapping: ml.mapping,
		files:   make([]*physFile, ml.nfiles),
		handles: ml.handles,
		curRank: -1,
	}
	for k := range sf.files {
		sf.files[k] = ml.segs[k]
	}
	return sf, nil
}

// OpenRank opens the logical file of one task for serial reading
// (sion_open_rank, paper Listing 4): the mapped view of a single owned
// rank. It loads only the metadata of the physical file containing that
// task (plus the mapping from segment 0).
func OpenRank(fsys fsio.FileSystem, name string, rank int) (*File, error) {
	ml, err := openMappedLocal(fsys, name, []int{rank})
	if err != nil {
		return nil, fmt.Errorf("sion: OpenRank %s: %w", name, err)
	}
	// The single handle takes over its segment's file; no container stays
	// behind to close it.
	f := ml.handles[rank]
	f.fhShared = false
	return f, nil
}

func (sf *SerialFile) abort() {
	for _, pf := range sf.files {
		if pf != nil {
			pf.fh.Close()
		}
	}
	sf.closed = true
}

// --- Metadata ---------------------------------------------------------------

// Locations describes the multifile layout (sion_get_locations): per task,
// the physical placement, chunk sizes, and per-block byte counts.
type Locations struct {
	NTasks      int
	NFiles      int
	FSBlockSize int64
	ChunkSizes  []int64   // per task (requested)
	Placement   []FileLoc // per task
	BlockBytes  [][]int64 // per task, per block (read mode; nil when writing)
}

// Locations returns the multifile layout metadata.
func (sf *SerialFile) Locations() Locations {
	loc := Locations{
		NTasks:      sf.ntasks,
		NFiles:      sf.nfiles,
		FSBlockSize: sf.fsblk,
		ChunkSizes:  make([]int64, sf.ntasks),
		Placement:   append([]FileLoc(nil), sf.mapping...),
		BlockBytes:  make([][]int64, sf.ntasks),
	}
	for r := 0; r < sf.ntasks; r++ {
		pf := sf.files[sf.mapping[r].File]
		li := int(sf.mapping[r].LocalRank)
		loc.ChunkSizes[r] = pf.h.ChunkSizes[li]
		if sf.mode == ReadMode {
			loc.BlockBytes[r] = append([]int64(nil), pf.m2.BlockBytes[li]...)
		}
	}
	return loc
}

// NTasks returns the number of logical task-local files.
func (sf *SerialFile) NTasks() int { return sf.ntasks }

// NFiles returns the number of physical files.
func (sf *SerialFile) NFiles() int { return sf.nfiles }

// FSBlockSize returns the alignment block size.
func (sf *SerialFile) FSBlockSize() int64 { return sf.fsblk }

// RankBytes returns the total bytes stored for one task.
func (sf *SerialFile) RankBytes(rank int) int64 {
	if rank < 0 || rank >= sf.ntasks {
		return 0
	}
	if sf.mode == ReadMode {
		return sf.handles[rank].LogicalSize()
	}
	var total int64
	for _, b := range sf.written[rank] {
		total += b
	}
	return total
}

// --- Cursor I/O ---------------------------------------------------------------

// Seek positions the cursor at (rank, block, pos) within the multifile
// (sion_seek). In write mode, blocks beyond the currently allocated count
// are allowed and extend the task's logical file.
func (sf *SerialFile) Seek(rank, block int, pos int64) error {
	if sf.closed {
		return fmt.Errorf("sion: %s: seek on closed file", sf.name)
	}
	if rank < 0 || rank >= sf.ntasks || block < 0 || pos < 0 {
		return fmt.Errorf("sion: %s: Seek(%d,%d,%d) out of range", sf.name, rank, block, pos)
	}
	if sf.mode == ReadMode {
		// Delegate to the rank's mapped handle, which validates the
		// position against its recorded data and keeps its own cursor.
		// Leaving a rank releases its read-ahead buffer, so a scan over
		// many tasks holds at most one staging buffer at a time.
		if err := sf.handles[rank].Seek(block, pos); err != nil {
			return err
		}
		if sf.curRank >= 0 && sf.curRank != rank {
			sf.handles[sf.curRank].releaseStage()
		}
		sf.curRank = rank
		return nil
	}
	pf := sf.files[sf.mapping[rank].File]
	li := int(sf.mapping[rank].LocalRank)
	cap := pf.geo.capacity(li)
	if pos > cap {
		return fmt.Errorf("sion: %s: Seek pos %d beyond chunk capacity %d", sf.name, pos, cap)
	}
	// A moved cursor ends the write stage's contiguous run.
	if err := sf.stageFlush(); err != nil {
		return err
	}
	sf.curRank, sf.curBlock, sf.curPos = rank, block, pos
	return nil
}

func (sf *SerialFile) cursorFile() (*physFile, int) {
	pf := sf.files[sf.mapping[sf.curRank].File]
	return pf, int(sf.mapping[sf.curRank].LocalRank)
}

// Write stores p at the cursor, spanning into subsequent blocks of the
// same task as needed, and advances the cursor.
func (sf *SerialFile) Write(p []byte) (int, error) {
	if sf.closed || sf.mode != WriteMode {
		return 0, fmt.Errorf("sion: %s: serial write on %s handle", sf.name, sf.mode)
	}
	if sf.curRank < 0 {
		return 0, fmt.Errorf("sion: %s: Write before Seek", sf.name)
	}
	if sf.wstage != nil {
		return sf.stagedWrite(p)
	}
	pf, li := sf.cursorFile()
	cap := pf.geo.capacity(li)
	total := 0
	for len(p) > 0 {
		if sf.curPos == cap {
			sf.curBlock++
			sf.curPos = 0
		}
		w := int64(len(p))
		if w > cap-sf.curPos {
			w = cap - sf.curPos
		}
		off := pf.geo.dataOff(li, sf.curBlock) + sf.curPos
		if _, err := pf.fh.WriteAt(p[:w], off); err != nil {
			return total, fmt.Errorf("sion: %s: serial write: %w", sf.name, err)
		}
		sf.noteWritten(sf.curRank, sf.curBlock, sf.curPos+w)
		sf.curPos += w
		total += int(w)
		p = p[w:]
	}
	return total, nil
}

// noteWritten records the high-water mark of (rank, block).
func (sf *SerialFile) noteWritten(rank, block int, bytes int64) {
	bb := sf.written[rank]
	for len(bb) <= block {
		bb = append(bb, 0)
	}
	if bytes > bb[block] {
		bb[block] = bytes
	}
	sf.written[rank] = bb
}

// Read fills p from the cursor, spanning blocks of the current task, and
// advances the cursor. It returns io.EOF at the end of the task's data.
// The read itself is served by the task's mapped rank handle (including
// its read-ahead stage, when one is armed via SetBufferSize).
func (sf *SerialFile) Read(p []byte) (int, error) {
	if sf.closed || sf.mode != ReadMode {
		return 0, fmt.Errorf("sion: %s: serial read on %s handle", sf.name, sf.mode)
	}
	if sf.curRank < 0 {
		return 0, fmt.Errorf("sion: %s: Read before Seek", sf.name)
	}
	return sf.handles[sf.curRank].Read(p)
}

// ReadRank returns the complete logical file of one task (concatenation of
// all its chunks' used bytes) — a convenience built on Seek/Read used by
// the split utility and tests.
func (sf *SerialFile) ReadRank(rank int) ([]byte, error) {
	if err := sf.Seek(rank, 0, 0); err != nil {
		return nil, err
	}
	out := make([]byte, sf.RankBytes(rank))
	n, err := io.ReadFull(sf, out)
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, err
	}
	return out[:n], nil
}

// Close finishes the serial handle. In write mode it writes each physical
// file's metablock 2 and trailer.
func (sf *SerialFile) Close() error {
	if sf.closed {
		return nil
	}
	sf.closed = true
	var firstErr error
	firstErr = sf.stageFlush()
	if sf.wstage != nil {
		putStageBuf(sf.wstage.buf)
		sf.wstage = nil
	}
	for _, h := range sf.handles {
		h.closed = true
		h.dropStaging() // releases any per-rank read-ahead stages
	}
	if sf.mode == WriteMode {
		for k, pf := range sf.files {
			nlocal := int(pf.h.NTasksLocal)
			m2 := &meta2{BlockBytes: make([][]int64, nlocal)}
			maxBlocks := 0
			for r := range sf.mapping {
				if int(sf.mapping[r].File) != k {
					continue
				}
				bb := sf.written[r]
				if len(bb) == 0 {
					bb = []int64{0}
				}
				m2.BlockBytes[sf.mapping[r].LocalRank] = bb
				if len(bb) > maxBlocks {
					maxBlocks = len(bb)
				}
			}
			// Chunk headers for every touched block, sealed with counts.
			if sf.flags&flagChunkHeaders != 0 {
				if err := sf.sealAllChunks(k, m2); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			at := pf.geo.start + pf.geo.stride*int64(maxBlocks)
			if _, err := writeTail(pf.fh, m2, at); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	for _, pf := range sf.files {
		if err := pf.fh.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// sealAllChunks writes finalized chunk headers for every block recorded in
// m2 of physical file k.
func (sf *SerialFile) sealAllChunks(k int, m2 *meta2) error {
	pf := sf.files[k]
	for li, bb := range m2.BlockBytes {
		for b, bytes := range bb {
			ch := chunkHeader{GlobalRank: pf.h.GlobalRanks[li], Block: int64(b), Bytes: bytes}
			if _, err := pf.fh.WriteAt(ch.encode(), pf.geo.chunkOff(li, b)); err != nil {
				return fmt.Errorf("sion: %s: sealing chunk headers: %w", sf.name, err)
			}
		}
	}
	return nil
}

// PhysicalNames lists the physical file names of a multifile with n
// segments (helper for utilities).
func PhysicalNames(name string, nfiles int) []string {
	out := make([]string, nfiles)
	for k := range out {
		out[k] = fileName(name, k)
	}
	return out
}

// sortedRanksOf returns the global ranks stored in physical file k,
// ordered by local rank (utility helper).
func (sf *SerialFile) sortedRanksOf(k int) []int {
	var ranks []int
	for r, loc := range sf.mapping {
		if int(loc.File) == k {
			ranks = append(ranks, r)
		}
	}
	sort.Slice(ranks, func(i, j int) bool {
		return sf.mapping[ranks[i]].LocalRank < sf.mapping[ranks[j]].LocalRank
	})
	return ranks
}
