package sion

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/fsio"
)

// Chunk-commit watermarks: the durability protocol that turns a multifile
// that is still being written into something safe to read (tailing reads,
// see tail.go and internal/serve).
//
// Each physical segment gets a small sidecar file ("<segment>.wmk") holding
// one fixed-slot commit record per (block, local rank). Writers publish
// their progress there on every Flush, observing a strict ordering:
//
//	chunk data WriteAt  →  data fh.Sync()  →  commit cell WriteAt  →  wm fh.Sync()
//
// so a committed byte count never refers to bytes that could still be lost
// in a crash. Readers replay the cells and treat the committed frontier as
// the end of the visible stream; everything past it — including torn,
// half-flushed records — simply does not exist yet from their point of
// view.
//
// Every cell is double-buffered (two 32-byte slots, written alternately,
// seqlock style): a crash can tear at most the cell being written, and the
// partner slot still holds the previous durable commit. That is what lets
// Repair and tail readers recover to the last durable watermark instead of
// failing the whole rank when the final commit record is torn.
const (
	magicWatermark = "SIONWMK1"
	wmVersion      = 1

	// wmHeaderSize is the sidecar header: magic[8] + version u32 +
	// ntasksLocal u32 + filenum u32 + pad u32 + reserved[8].
	wmHeaderSize = 32

	// wmCellSize is one commit record slot: seq u64 + bytes u64 + flags
	// u64 + crc u32 + pad u32 (crc over the first 24 bytes).
	wmCellSize = 32
	wmPairSize = 2 * wmCellSize

	wmFlagSealed = uint64(1) << 0

	// maxWMBlocks caps the replay depth per rank, mirroring the metablock-2
	// block-count plausibility bound.
	maxWMBlocks = 1 << 24
)

// ErrAgain is returned by tailing reads that caught up with the committed
// watermark of a live multifile: no error occurred, there is just no
// committed data past the current position yet. Poll/Follow again later.
var ErrAgain = errors.New("sion: at the committed watermark (no new data yet)")

// TailCommit is the durable write progress of one block of one rank:
// Bytes committed bytes, and whether the block is sealed (the writer moved
// on — or closed — so the count is final).
type TailCommit struct {
	Bytes  int64
	Sealed bool
}

// wmName returns the watermark sidecar name of physical file k.
func wmName(base string, k int) string { return fileName(base, k) + ".wmk" }

func encodeWMHeader(ntasksLocal, filenum int) []byte {
	buf := make([]byte, wmHeaderSize)
	copy(buf, magicWatermark)
	le().PutUint32(buf[8:], wmVersion)
	le().PutUint32(buf[12:], uint32(ntasksLocal))
	le().PutUint32(buf[16:], uint32(filenum))
	return buf
}

func parseWMHeader(buf []byte) (ntasksLocal, filenum int, err error) {
	if len(buf) < wmHeaderSize {
		return 0, 0, fmt.Errorf("%w: watermark file too small for header (%d bytes)", ErrCorrupt, len(buf))
	}
	if string(buf[:8]) != magicWatermark {
		return 0, 0, fmt.Errorf("%w: bad watermark magic %q", ErrCorrupt, buf[:8])
	}
	if v := le().Uint32(buf[8:]); v != wmVersion {
		return 0, 0, fmt.Errorf("%w: unsupported watermark version %d", ErrCorrupt, v)
	}
	ntasksLocal = int(int32(le().Uint32(buf[12:])))
	filenum = int(int32(le().Uint32(buf[16:])))
	if ntasksLocal <= 0 || ntasksLocal > maxTasks {
		return 0, 0, fmt.Errorf("%w: watermark header claims %d local tasks", ErrCorrupt, ntasksLocal)
	}
	if filenum < 0 || filenum >= maxPhysFiles {
		return 0, 0, fmt.Errorf("%w: watermark header claims file number %d", ErrCorrupt, filenum)
	}
	return ntasksLocal, filenum, nil
}

// wmCellOff returns the offset of slot `slot` of the cell pair of
// (block b, local rank li) in a sidecar of ntasksLocal ranks.
func wmCellOff(ntasksLocal, li, b, slot int) int64 {
	return wmHeaderSize + (int64(b)*int64(ntasksLocal)+int64(li))*wmPairSize + int64(slot)*wmCellSize
}

func encodeWMCell(seq uint64, bytes int64, sealed bool) []byte {
	buf := make([]byte, wmCellSize)
	le().PutUint64(buf[0:], seq)
	le().PutUint64(buf[8:], uint64(bytes))
	var flags uint64
	if sealed {
		flags |= wmFlagSealed
	}
	le().PutUint64(buf[16:], flags)
	le().PutUint32(buf[24:], crc32.ChecksumIEEE(buf[:24]))
	return buf
}

// parseWMCell validates one slot. ok=false covers every damaged state —
// never-written (zero), torn mid-write, or implausible — because a torn
// cell is an expected crash artifact, not a structural error: the caller
// falls back to the partner slot.
func parseWMCell(buf []byte) (seq uint64, bytes int64, sealed bool, ok bool) {
	if len(buf) < wmCellSize {
		return 0, 0, false, false
	}
	if crc32.ChecksumIEEE(buf[:24]) != le().Uint32(buf[24:]) {
		return 0, 0, false, false
	}
	seq = le().Uint64(buf[0:])
	bytes = int64(le().Uint64(buf[8:]))
	if seq == 0 || bytes < 0 || bytes > maxChunkSize {
		return 0, 0, false, false
	}
	return seq, bytes, le().Uint64(buf[16:])&wmFlagSealed != 0, true
}

// decodeWatermarks parses a whole sidecar file image and replays every
// rank's commit cells into its durable per-block state. Replay per rank
// walks blocks from 0: the newest valid slot of each pair wins; a pair
// with no valid slot ends the rank (the block was never committed — or its
// only commit tore, in which case the rank recovers to the blocks before
// it); an unsealed block is the open frontier and also ends the rank.
// Structural damage (header, size caps) yields ErrCorrupt, exactly like
// decodeMapping; torn cells are data-level and recovered, not errors.
func decodeWatermarks(buf []byte) (ntasksLocal, filenum int, states [][]TailCommit, err error) {
	ntasksLocal, filenum, err = parseWMHeader(buf)
	if err != nil {
		return 0, 0, nil, err
	}
	if int64(len(buf)) > wmHeaderSize+int64(maxWMBlocks)*int64(ntasksLocal)*wmPairSize {
		return 0, 0, nil, fmt.Errorf("%w: watermark file implausibly large (%d bytes)", ErrCorrupt, len(buf))
	}
	states = make([][]TailCommit, ntasksLocal)
	for li := 0; li < ntasksLocal; li++ {
		for b := 0; ; b++ {
			off := wmCellOff(ntasksLocal, li, b, 0)
			if off+wmPairSize > int64(len(buf)) {
				break
			}
			var best TailCommit
			var bestSeq uint64
			for slot := 0; slot < 2; slot++ {
				so := off + int64(slot)*wmCellSize
				seq, bytes, sealed, ok := parseWMCell(buf[so : so+wmCellSize])
				if ok && seq > bestSeq {
					bestSeq = seq
					best = TailCommit{Bytes: bytes, Sealed: sealed}
				}
			}
			if bestSeq == 0 {
				break
			}
			states[li] = append(states[li], best)
			if !best.Sealed {
				break
			}
		}
	}
	return ntasksLocal, filenum, states, nil
}

// readWatermarkFile reads and decodes a segment's sidecar through an open
// handle (readers re-read it on every Poll; the file is tiny).
func readWatermarkFile(fh fsio.File) (ntasksLocal, filenum int, states [][]TailCommit, err error) {
	size, err := fh.Size()
	if err != nil {
		return 0, 0, nil, err
	}
	if size > wmHeaderSize+int64(maxWMBlocks)*wmPairSize*int64(maxTasks) {
		return 0, 0, nil, fmt.Errorf("%w: watermark file implausibly large (%d bytes)", ErrCorrupt, size)
	}
	buf := make([]byte, size)
	if size > 0 {
		// A concurrent Truncate cannot happen, but a short read past a
		// racing snapshot is harmless: missing tail cells parse as
		// never-written.
		if _, err := fh.ReadAt(buf, 0); err != nil && err != io.EOF {
			return 0, 0, nil, err
		}
	}
	return decodeWatermarks(buf)
}

// wmCommitted sums a rank's committed bytes across its blocks.
func wmCommitted(blocks []TailCommit) int64 {
	var total int64
	for _, c := range blocks {
		total += c.Bytes
	}
	return total
}

// --- Writer side -------------------------------------------------------------

// wmWriter publishes commit cells into one segment's sidecar. A direct
// writer commits its own local rank; a collective collector commits for
// every member of its group. Slot alternation per (rank, block) is keyed
// by the cell's sequence number.
type wmWriter struct {
	fh     fsio.File
	nlocal int
	seq    map[int64]uint64 // (block*nlocal + li) -> last written seq
}

func newWMWriter(fh fsio.File, nlocal int) *wmWriter {
	return &wmWriter{fh: fh, nlocal: nlocal, seq: make(map[int64]uint64)}
}

// createWM creates a segment's sidecar with a durable header (master only,
// before the geometry scatter, so every other rank can open it afterwards).
func createWM(fsys fsio.FileSystem, name string, k, nlocal int) (fsio.File, error) {
	fh, err := fsys.Create(wmName(name, k))
	if err != nil {
		return nil, err
	}
	if _, err := fh.WriteAt(encodeWMHeader(nlocal, k), 0); err != nil {
		fh.Close()
		return nil, err
	}
	if err := fh.Sync(); err != nil {
		fh.Close()
		return nil, err
	}
	return fh, nil
}

// commit writes the next cell for (li, block). The caller has already made
// the data bytes durable; the caller also syncs the sidecar afterwards
// (one sync may cover a batch of cells).
func (w *wmWriter) commit(li, block int, bytes int64, sealed bool) error {
	key := int64(block)*int64(w.nlocal) + int64(li)
	seq := w.seq[key] + 1
	w.seq[key] = seq
	slot := int(seq % 2)
	if _, err := w.fh.WriteAt(encodeWMCell(seq, bytes, sealed), wmCellOff(w.nlocal, li, block, slot)); err != nil {
		return fmt.Errorf("sion: watermark commit: %w", err)
	}
	return nil
}

func (w *wmWriter) sync() error { return w.fh.Sync() }

func (w *wmWriter) close() error { return w.fh.Close() }

// wmCommitProgress publishes a direct writer's progress: every block sealed
// since the last commit, then the open block's current byte count (or, on
// final=true, the last block sealed). The caller must have synced the data
// file first.
func (f *File) wmCommitProgress(final bool) error {
	if f.wm == nil {
		return nil
	}
	wrote := false
	for b := f.wmSealedTo; b < f.curBlock; b++ {
		if err := f.wm.commit(f.local, b, f.blockBytes[b], true); err != nil {
			return err
		}
		wrote = true
	}
	if f.wmSealedTo < f.curBlock {
		f.wmSealedTo = f.curBlock
	}
	switch {
	case final:
		if f.wmSealedTo == f.curBlock {
			if err := f.wm.commit(f.local, f.curBlock, f.pos, true); err != nil {
				return err
			}
			f.wmSealedTo = f.curBlock + 1
			wrote = true
		}
	case wrote || f.pos != f.wmOpenBytes:
		if err := f.wm.commit(f.local, f.curBlock, f.pos, false); err != nil {
			return err
		}
		f.wmOpenBytes = f.pos
		wrote = true
	}
	if !wrote {
		return nil
	}
	return f.wm.sync()
}
