package sion

import (
	"fmt"

	"repro/internal/fsio"
)

// Layout is an immutable, handle-free description of where every logical
// byte of a closed multifile lives: per global rank, the physical file and
// absolute offset of each of its block extents. It exists for layers that
// do their own physical I/O over a multifile instead of going through
// File handles — internal/serve builds its block cache on it — and for
// inspection tools. A Layout holds no open files; it is safe for
// concurrent use by any number of goroutines.
type Layout struct {
	name    string
	ntasks  int
	nfiles  int
	fsblk   int64
	mapping []FileLoc
	chunks  []int64         // requested chunk size per global rank
	blocks  [][]BlockExtent // per global rank, per block
	sizes   []int64         // logical bytes per global rank
}

// BlockExtent locates the used bytes of one block of one rank's logical
// file: Bytes bytes starting at absolute offset Off of physical file File.
type BlockExtent struct {
	File  int
	Off   int64
	Bytes int64
}

// LoadLayout parses a multifile's metadata (every segment's metablocks)
// and returns its layout. The multifile must be complete — written and
// closed; an in-progress multifile has no metablock 2 and fails with
// ErrCorrupt.
func LoadLayout(fsys fsio.FileSystem, name string) (*Layout, error) {
	ml, err := openMappedLocal(fsys, name, nil)
	if err != nil {
		return nil, fmt.Errorf("sion: LoadLayout %s: %w", name, err)
	}
	defer ml.closeAll()
	l := &Layout{
		name:    name,
		ntasks:  ml.ntasks,
		nfiles:  ml.nfiles,
		fsblk:   ml.fsblk,
		mapping: append([]FileLoc(nil), ml.mapping...),
		chunks:  make([]int64, ml.ntasks),
		blocks:  make([][]BlockExtent, ml.ntasks),
		sizes:   make([]int64, ml.ntasks),
	}
	for g := 0; g < ml.ntasks; g++ {
		loc := ml.mapping[g]
		pf := ml.segs[int(loc.File)]
		li := int(loc.LocalRank)
		l.chunks[g] = pf.h.ChunkSizes[li]
		bb := pf.m2.BlockBytes[li]
		exts := make([]BlockExtent, len(bb))
		for b, n := range bb {
			exts[b] = BlockExtent{File: int(loc.File), Off: pf.geo.dataOff(li, b), Bytes: n}
			l.sizes[g] += n
		}
		l.blocks[g] = exts
	}
	return l, nil
}

// Name returns the logical multifile name the layout was loaded from.
func (l *Layout) Name() string { return l.name }

// NTasks returns the number of logical task-local files.
func (l *Layout) NTasks() int { return l.ntasks }

// NumFiles returns the number of physical files.
func (l *Layout) NumFiles() int { return l.nfiles }

// FSBlockSize returns the block size chunks are aligned to.
func (l *Layout) FSBlockSize() int64 { return l.fsblk }

// PhysicalName returns the on-disk name of physical file k.
func (l *Layout) PhysicalName(k int) string { return fileName(l.name, k) }

// Mapping returns a copy of the global rank→(file, local rank) table.
func (l *Layout) Mapping() []FileLoc { return append([]FileLoc(nil), l.mapping...) }

// ChunkSize returns the requested chunk size of rank g (0 if out of range).
func (l *Layout) ChunkSize(g int) int64 {
	if g < 0 || g >= l.ntasks {
		return 0
	}
	return l.chunks[g]
}

// RankSize returns the total logical bytes of rank g (0 if out of range).
func (l *Layout) RankSize(g int) int64 {
	if g < 0 || g >= l.ntasks {
		return 0
	}
	return l.sizes[g]
}

// RankBlocks returns a copy of rank g's block extents in logical order:
// concatenating them yields the rank's logical stream.
func (l *Layout) RankBlocks(g int) []BlockExtent {
	if g < 0 || g >= l.ntasks {
		return nil
	}
	return append([]BlockExtent(nil), l.blocks[g]...)
}
