package sion

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"repro/internal/fsio"
	"repro/internal/mpi"
)

func TestCollectiveWriteRoundTrip(t *testing.T) {
	for _, cfg := range []struct{ n, group, nfiles int }{
		{8, 4, 1}, {8, 3, 1}, {9, 4, 2}, {6, 6, 1}, {5, 2, 1},
	} {
		cfg := cfg
		t.Run(fmt.Sprintf("n=%d g=%d files=%d", cfg.n, cfg.group, cfg.nfiles), func(t *testing.T) {
			fsys := fsio.NewOS(t.TempDir())
			mpi.Run(cfg.n, func(c *mpi.Comm) {
				f, err := ParOpen(c, fsys, "coll.sion", WriteMode, &Options{
					ChunkSize: 300, FSBlockSize: 256,
					NFiles: cfg.nfiles, CollectorGroup: cfg.group,
				})
				if err != nil {
					t.Error(err)
					return
				}
				// Multi-piece writes spanning several chunks.
				payload := rankPayload(c.Rank(), 1000+31*c.Rank())
				for off := 0; off < len(payload); off += 333 {
					end := off + 333
					if end > len(payload) {
						end = len(payload)
					}
					if _, err := f.Write(payload[off:end]); err != nil {
						t.Error(err)
						return
					}
				}
				if err := f.Close(); err != nil {
					t.Error(err)
					return
				}

				r, err := ParOpen(c, fsys, "coll.sion", ReadMode, nil)
				if err != nil {
					t.Error(err)
					return
				}
				got := make([]byte, len(payload))
				if _, err := io.ReadFull(r, got); err != nil {
					t.Errorf("rank %d: %v", c.Rank(), err)
				}
				if !bytes.Equal(got, payload) {
					t.Errorf("rank %d: collective round-trip mismatch", c.Rank())
				}
				r.Close()
			})
			// The collective multifile must be structurally identical to a
			// directly written one.
			if err := Verify(fsys, "coll.sion"); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// A multifile written collectively must be byte-identical to the same data
// written directly.
func TestCollectiveEquivalentToDirect(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	const n = 6
	write := func(name string, group int) {
		mpi.Run(n, func(c *mpi.Comm) {
			f, err := ParOpen(c, fsys, name, WriteMode, &Options{
				ChunkSize: 200, FSBlockSize: 128, CollectorGroup: group,
			})
			if err != nil {
				t.Error(err)
				return
			}
			f.Write(rankPayload(c.Rank(), 500))
			f.Close()
		})
	}
	write("direct.sion", 0)
	write("coll.sion", 3)
	a, _ := fsys.Open("direct.sion")
	b, _ := fsys.Open("coll.sion")
	defer a.Close()
	defer b.Close()
	sa, _ := a.Size()
	sb, _ := b.Size()
	if sa != sb {
		t.Fatalf("sizes differ: %d vs %d", sa, sb)
	}
	ba, bb := make([]byte, sa), make([]byte, sb)
	a.ReadAt(ba, 0)
	b.ReadAt(bb, 0)
	if !bytes.Equal(ba, bb) {
		t.Fatal("collective and direct multifiles differ byte-wise")
	}
}

func TestCollectiveRejectsChunkHeaders(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	mpi.Run(2, func(c *mpi.Comm) {
		_, err := ParOpen(c, fsys, "x.sion", WriteMode, &Options{
			ChunkSize: 64, FSBlockSize: 64, CollectorGroup: 2, ChunkHeaders: true,
		})
		if err == nil {
			t.Error("CollectorGroup+ChunkHeaders accepted")
		}
	})
}

func TestCollectiveSyntheticUnsupported(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	mpi.Run(2, func(c *mpi.Comm) {
		f, err := ParOpen(c, fsys, "y.sion", WriteMode, &Options{
			ChunkSize: 64, FSBlockSize: 64, CollectorGroup: 2,
		})
		if err != nil {
			t.Error(err)
			return
		}
		if err := f.WriteSynthetic(10); err == nil {
			t.Error("WriteSynthetic in collective mode accepted")
		}
		f.Close()
	})
}
