package sion

import (
	"reflect"
	"testing"
)

func TestCoalesceExtents(t *testing.T) {
	tests := []struct {
		name   string
		exts   []Extent
		maxGap int64
		want   []Span
	}{
		{name: "empty", exts: nil, maxGap: 10, want: nil},
		{
			name: "single",
			exts: []Extent{{Off: 100, Len: 50, Idx: 0}},
			want: []Span{{Off: 100, End: 150, Extents: []Extent{{Off: 100, Len: 50}}}},
		},
		{
			name:   "adjacent merge with zero gap",
			exts:   []Extent{{Off: 0, Len: 10, Idx: 0}, {Off: 10, Len: 10, Idx: 1}},
			maxGap: 0,
			want: []Span{{Off: 0, End: 20, Extents: []Extent{
				{Off: 0, Len: 10, Idx: 0}, {Off: 10, Len: 10, Idx: 1}}}},
		},
		{
			name:   "gap over budget splits",
			exts:   []Extent{{Off: 0, Len: 10}, {Off: 21, Len: 5, Idx: 1}},
			maxGap: 10,
			want: []Span{
				{Off: 0, End: 10, Extents: []Extent{{Off: 0, Len: 10}}},
				{Off: 21, End: 26, Extents: []Extent{{Off: 21, Len: 5, Idx: 1}}},
			},
		},
		{
			name:   "gap at budget merges",
			exts:   []Extent{{Off: 0, Len: 10}, {Off: 20, Len: 5, Idx: 1}},
			maxGap: 10,
			want: []Span{{Off: 0, End: 25, Extents: []Extent{
				{Off: 0, Len: 10}, {Off: 20, Len: 5, Idx: 1}}}},
		},
		{
			name:   "unsorted input with overlap keeps tags",
			exts:   []Extent{{Off: 50, Len: 20, Idx: 2}, {Off: 0, Len: 60, Idx: 1}},
			maxGap: 0,
			want: []Span{{Off: 0, End: 70, Extents: []Extent{
				{Off: 0, Len: 60, Idx: 1}, {Off: 50, Len: 20, Idx: 2}}}},
		},
		{
			name:   "contained extent does not shrink the span",
			exts:   []Extent{{Off: 0, Len: 100, Idx: 0}, {Off: 10, Len: 5, Idx: 1}, {Off: 200, Len: 1, Idx: 2}},
			maxGap: 50,
			want: []Span{
				{Off: 0, End: 100, Extents: []Extent{{Off: 0, Len: 100, Idx: 0}, {Off: 10, Len: 5, Idx: 1}}},
				{Off: 200, End: 201, Extents: []Extent{{Off: 200, Len: 1, Idx: 2}}},
			},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := CoalesceExtents(tc.exts, tc.maxGap)
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("CoalesceExtents(%v, %d)\n got %v\nwant %v", tc.exts, tc.maxGap, got, tc.want)
			}
		})
	}
	// The input slice must not be reordered in place.
	in := []Extent{{Off: 30, Len: 1}, {Off: 0, Len: 1}}
	CoalesceExtents(in, 100)
	if in[0].Off != 30 {
		t.Fatal("CoalesceExtents reordered the caller's slice")
	}
}
