package sion

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"repro/internal/fsio"
	"repro/internal/mpi"
)

// compressible returns rank r's highly repetitive payload (zlib must
// actually shrink it for the multi-chunk assertions below to bite).
func compressible(r, size int) []byte {
	out := make([]byte, size)
	for i := range out {
		out[i] = byte("sion-compress-"[i%14]) + byte(r)
	}
	return out
}

// TestCompressedRoundTripAcrossModes writes each rank's payload through
// NewZWriter and reads it back through NewZReader with every combination
// of write and read data path — direct, buffered staging, and collective
// — pinning that the compressed stream survives any path pairing (the
// stream is stored through the ordinary chunk logic, so the data path
// must be invisible to zlib).
func TestCompressedRoundTripAcrossModes(t *testing.T) {
	const (
		n       = 6
		chunk   = 512
		fsblk   = 256
		payload = 4000 // several chunks once compressed framing is added
		collGrp = 3
	)
	type mode struct {
		label string
		opts  Options
	}
	modes := []mode{
		{"direct", Options{ChunkSize: chunk, FSBlockSize: fsblk}},
		{"buffered", Options{ChunkSize: chunk, FSBlockSize: fsblk, BufferSize: BufferAuto}},
		{"collective", Options{ChunkSize: chunk, FSBlockSize: fsblk, CollectorGroup: collGrp}},
	}
	for _, wm := range modes {
		for _, rm := range modes {
			wm, rm := wm, rm
			t.Run(fmt.Sprintf("write-%s/read-%s", wm.label, rm.label), func(t *testing.T) {
				fsys := fsio.NewOS(t.TempDir())
				mpi.Run(n, func(c *mpi.Comm) {
					want := compressible(c.Rank(), payload+137*c.Rank())
					wopts := wm.opts
					f, err := ParOpen(c, fsys, "z.sion", WriteMode, &wopts)
					if err != nil {
						t.Error(err)
						return
					}
					zw, err := NewZWriter(f)
					if err != nil {
						t.Error(err)
						return
					}
					// Small writes so the staging/collective paths see many
					// sub-chunk pieces.
					for off := 0; off < len(want); off += 123 {
						end := off + 123
						if end > len(want) {
							end = len(want)
						}
						if _, err := zw.Write(want[off:end]); err != nil {
							t.Error(err)
							return
						}
					}
					if err := zw.Close(); err != nil {
						t.Error(err)
						return
					}
					if err := f.Close(); err != nil {
						t.Error(err)
						return
					}

					ropts := rm.opts
					r, err := ParOpen(c, fsys, "z.sion", ReadMode, &ropts)
					if err != nil {
						t.Error(err)
						return
					}
					defer r.Close()
					zr, err := NewZReader(r)
					if err != nil {
						t.Errorf("rank %d: %v", c.Rank(), err)
						return
					}
					got, err := io.ReadAll(zr)
					if err != nil {
						t.Errorf("rank %d: %v", c.Rank(), err)
						return
					}
					zr.Close()
					if !bytes.Equal(got, want) {
						t.Errorf("rank %d: compressed round-trip differs (%d vs %d bytes)", c.Rank(), len(got), len(want))
					}
				})
				if err := Verify(fsys, "z.sion"); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestCompressedSerialReadBack pins that a compressed stream written in
// parallel is readable through the serial global view and OpenRank (the
// post-processing path of the paper's §5.2 Scalasca use case).
func TestCompressedSerialReadBack(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	const n = 4
	mpi.Run(n, func(c *mpi.Comm) {
		f, err := ParOpen(c, fsys, "zs.sion", WriteMode, &Options{
			ChunkSize: 300, FSBlockSize: 128, BufferSize: BufferAuto,
		})
		if err != nil {
			t.Error(err)
			return
		}
		zw, _ := NewZWriter(f)
		zw.Write(compressible(c.Rank(), 2000))
		zw.Close()
		f.Close()
	})
	for r := 0; r < n; r++ {
		h, err := OpenRank(fsys, "zs.sion", r)
		if err != nil {
			t.Fatal(err)
		}
		zr, err := NewZReader(h)
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		got, err := io.ReadAll(zr)
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		zr.Close()
		h.Close()
		if !bytes.Equal(got, compressible(r, 2000)) {
			t.Fatalf("rank %d: serial read of compressed stream differs", r)
		}
	}
}
