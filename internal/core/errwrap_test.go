package sion

import (
	"errors"
	"io"
	"testing"

	"repro/internal/fsio"
	"repro/internal/mpi"
)

// errReadInjected is the backend sentinel the wrapping tests assert on: every
// layer between a backend ReadAt and the caller must wrap with %w so
// errors.Is still finds it (the fsio sentinel contract — callers match
// fsio.ErrNotExist/ErrQuota the same way).
var errReadInjected = errors.New("injected backend failure")

// armFailFS wraps a FileSystem; once armed, every ReadAt of every file it
// opened fails with errReadInjected.
type armFailFS struct {
	fsio.FileSystem
	armed bool
}

type armFailFile struct {
	fsio.File
	fs *armFailFS
}

func (f *armFailFS) Open(name string) (fsio.File, error) {
	fh, err := f.FileSystem.Open(name)
	if err != nil {
		return nil, err
	}
	return &armFailFile{File: fh, fs: f}, nil
}

func (f *armFailFile) ReadAt(p []byte, off int64) (int, error) {
	if f.fs.armed {
		return 0, errReadInjected
	}
	return f.File.ReadAt(p, off)
}

// TestBackendReadErrorsWrapThroughStaging pins that a backend read error
// surfaces errors.Is-able through every read path that can sit between
// the caller and the file: the direct chunk read, the read-ahead staging
// layer (buffer.go), and ReadLogicalAt.
func TestBackendReadErrorsWrapThroughStaging(t *testing.T) {
	base := fsio.NewOS(t.TempDir())
	mpi.Run(2, func(c *mpi.Comm) {
		f, err := ParOpen(c, base, "e.sion", WriteMode, &Options{ChunkSize: 256, FSBlockSize: 128})
		if err != nil {
			t.Error(err)
			return
		}
		f.Write(rankPayload(c.Rank(), 900))
		f.Close()
	})
	for _, mode := range []struct {
		label string
		buf   int64
	}{{"direct", 0}, {"buffered", BufferAuto}} {
		ffs := &armFailFS{FileSystem: base}
		h, err := OpenRank(ffs, "e.sion", 1)
		if err != nil {
			t.Fatalf("%s: %v", mode.label, err)
		}
		if err := h.SetBufferSize(mode.buf); err != nil {
			t.Fatal(err)
		}
		ffs.armed = true
		if _, err := h.Read(make([]byte, 64)); !errors.Is(err, errReadInjected) {
			t.Errorf("%s: Read error %v does not wrap the backend error", mode.label, err)
		}
		if _, err := h.ReadLogicalAt(make([]byte, 64), 10); !errors.Is(err, errReadInjected) {
			t.Errorf("%s: ReadLogicalAt error %v does not wrap the backend error", mode.label, err)
		}
		ffs.armed = false
		h.Close()
	}
}

// TestBackendReadErrorsWrapThroughMetadata pins the same contract for the
// metadata parse paths (parseHeader/readTail, used by Open, OpenRank,
// LoadLayout): a backend failure must surface both ErrCorrupt (the parse
// could not complete) and the underlying backend sentinel.
func TestBackendReadErrorsWrapThroughMetadata(t *testing.T) {
	base := fsio.NewOS(t.TempDir())
	mpi.Run(2, func(c *mpi.Comm) {
		f, err := ParOpen(c, base, "m.sion", WriteMode, &Options{ChunkSize: 256, FSBlockSize: 128})
		if err != nil {
			t.Error(err)
			return
		}
		f.Write(rankPayload(c.Rank(), 300))
		f.Close()
	})
	ffs := &armFailFS{FileSystem: base, armed: true}
	if _, err := LoadLayout(ffs, "m.sion"); !errors.Is(err, errReadInjected) || !errors.Is(err, ErrCorrupt) {
		t.Errorf("LoadLayout error %v lacks the backend sentinel or ErrCorrupt", err)
	}
	if _, err := Open(ffs, "m.sion"); !errors.Is(err, errReadInjected) {
		t.Errorf("Open error %v lacks the backend sentinel", err)
	}
	if _, err := OpenRank(ffs, "m.sion", 0); !errors.Is(err, errReadInjected) {
		t.Errorf("OpenRank error %v lacks the backend sentinel", err)
	}
}

// TestMappedSpanReadErrorWraps pins the collective mapped fetch path
// (fetchFileSpans): a span-read failure must fail every open in the
// collector's group, and on the collector itself — the rank that actually
// issued the backend read — the error must carry the backend sentinel.
// (Members only receive a status code over the wire; an error value
// cannot cross ranks.)
func TestMappedSpanReadErrorWraps(t *testing.T) {
	base := fsio.NewOS(t.TempDir())
	mpi.Run(4, func(c *mpi.Comm) {
		f, err := ParOpen(c, base, "s.sion", WriteMode, &Options{ChunkSize: 256, FSBlockSize: 128})
		if err != nil {
			t.Error(err)
			return
		}
		f.Write(rankPayload(c.Rank(), 500))
		f.Close()
	})
	// Fail only large reads: span reads cover whole chunk runs, metadata
	// reads stay small, so the open reaches the data fetch deterministically.
	ffs := &sizeFailFS{FileSystem: base, threshold: 256}
	errs := make([]error, 2)
	mpi.Run(2, func(c *mpi.Comm) {
		_, err := ParOpenMapped(c, ffs, "s.sion", ReadMode, nil, &Options{CollectorGroup: 2})
		errs[c.Rank()] = err
	})
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d: mapped open succeeded despite failing span reads", r)
		}
	}
	if !errors.Is(errs[0], errReadInjected) {
		t.Errorf("collector error %v does not wrap the backend error", errs[0])
	}
}

// sizeFailFS fails ReadAt calls at or above a size threshold (span reads)
// while letting small metadata reads through.
type sizeFailFS struct {
	fsio.FileSystem
	threshold int
}

type sizeFailFile struct {
	fsio.File
	fs *sizeFailFS
}

func (f *sizeFailFS) Open(name string) (fsio.File, error) {
	fh, err := f.FileSystem.Open(name)
	if err != nil {
		return nil, err
	}
	return &sizeFailFile{File: fh, fs: f}, nil
}

func (f *sizeFailFile) ReadAt(p []byte, off int64) (int, error) {
	if len(p) >= f.fs.threshold {
		return 0, errReadInjected
	}
	return f.File.ReadAt(p, off)
}

var _ io.ReaderAt = (*armFailFile)(nil)
