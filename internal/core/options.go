package sion

import "fmt"

// Mode selects the access mode of a multifile handle.
type Mode int

// Access modes.
const (
	WriteMode Mode = iota
	ReadMode
)

func (m Mode) String() string {
	switch m {
	case WriteMode:
		return "write"
	case ReadMode:
		return "read"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// MapFunc assigns a global task to a physical file (0 ≤ result < nfiles).
// The paper (§3.1) lets users influence the mapping, e.g. one physical
// file per I/O node on Blue Gene.
type MapFunc func(globalRank, ntasks, nfiles int) int

// ContiguousMap is the default task→file mapping: equal consecutive
// blocks of tasks per physical file.
func ContiguousMap(globalRank, ntasks, nfiles int) int {
	return globalRank * nfiles / ntasks
}

// RoundRobinMap spreads consecutive tasks over distinct files.
func RoundRobinMap(globalRank, ntasks, nfiles int) int {
	return globalRank % nfiles
}

// Options configures ParOpen (write mode) and the serial Create.
type Options struct {
	// ChunkSize is the maximum number of bytes this task writes in one
	// piece (paper §3.1). It may differ between tasks. Required in write
	// mode; SIONlib rounds the allocation up to a multiple of the FS
	// block size.
	ChunkSize int64

	// FSBlockSize overrides the auto-detected file-system block size
	// (0 = detect via the file system, like SIONlib's fstat call).
	// The alignment experiments (Table 1) set this explicitly.
	FSBlockSize int64

	// NFiles is the number of underlying physical files (default 1).
	NFiles int

	// MaxChunks is an informational hint for the expected number of
	// chunks per task (stored in the header).
	MaxChunks int

	// Mapping assigns tasks to physical files (default ContiguousMap).
	Mapping MapFunc

	// ChunkHeaders embeds a self-describing header in every chunk so
	// that metadata can be reconstructed by Repair after a failure
	// (paper §6 future work). Incompatible with CollectorGroup.
	ChunkHeaders bool

	// CollectorGroup enables collective write mode (SIONlib's
	// sion_coll_fwrite): groups of this many consecutive local tasks
	// buffer their data and ship it to the group's first member at close,
	// so only the collectors issue file writes. 0 or 1 disables.
	CollectorGroup int
}

func (o *Options) withDefaults(ntasks int) (Options, error) {
	var out Options
	if o != nil {
		out = *o
	}
	if out.NFiles <= 0 {
		out.NFiles = 1
	}
	if out.NFiles > ntasks {
		out.NFiles = ntasks
	}
	if out.Mapping == nil {
		out.Mapping = ContiguousMap
	}
	if out.MaxChunks < 0 {
		return out, fmt.Errorf("sion: negative MaxChunks %d", out.MaxChunks)
	}
	if out.CollectorGroup > 1 && out.ChunkHeaders {
		return out, fmt.Errorf("sion: CollectorGroup and ChunkHeaders are mutually exclusive (collectors cannot attribute chunk headers)")
	}
	return out, nil
}

func (o *Options) flags() uint64 {
	var f uint64
	if o.ChunkHeaders {
		f |= flagChunkHeaders
	}
	return f
}
