package sion

import (
	"fmt"

	"repro/internal/fsio"
)

// Mode selects the access mode of a multifile handle.
type Mode int

// Access modes.
const (
	WriteMode Mode = iota
	ReadMode
)

func (m Mode) String() string {
	switch m {
	case WriteMode:
		return "write"
	case ReadMode:
		return "read"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// MapFunc assigns a global task to a physical file (0 ≤ result < nfiles).
// The paper (§3.1) lets users influence the mapping, e.g. one physical
// file per I/O node on Blue Gene.
type MapFunc func(globalRank, ntasks, nfiles int) int

// ContiguousMap is the default task→file mapping: equal consecutive
// blocks of tasks per physical file.
func ContiguousMap(globalRank, ntasks, nfiles int) int {
	return globalRank * nfiles / ntasks
}

// RoundRobinMap spreads consecutive tasks over distinct files.
func RoundRobinMap(globalRank, ntasks, nfiles int) int {
	return globalRank % nfiles
}

// Options configures ParOpen (write mode) and the serial Create.
type Options struct {
	// ChunkSize is the maximum number of bytes this task writes in one
	// piece (paper §3.1). It may differ between tasks. Required in write
	// mode; SIONlib rounds the allocation up to a multiple of the FS
	// block size.
	ChunkSize int64

	// FSBlockSize overrides the auto-detected file-system block size
	// (0 = detect via the file system, like SIONlib's fstat call).
	// The alignment experiments (Table 1) set this explicitly.
	FSBlockSize int64

	// NFiles is the number of underlying physical files. 0 picks the
	// backend default: 1 on POSIX-ish backends, min(ntasks, WriteFanout)
	// on backends that declare a preferred write fanout (see
	// withDefaults).
	NFiles int

	// MaxChunks is an informational hint for the expected number of
	// chunks per task (stored in the header).
	MaxChunks int

	// Mapping assigns tasks to physical files (default ContiguousMap).
	Mapping MapFunc

	// ChunkHeaders embeds a self-describing header in every chunk so
	// that metadata can be reconstructed by Repair after a failure
	// (paper §6 future work). Incompatible with CollectorGroup.
	ChunkHeaders bool

	// CollectorGroup enables collective I/O (SIONlib's sion_coll_fwrite
	// and its collective-read extension): groups of this many consecutive
	// local tasks designate their first member as a collector, and only
	// the collectors touch the physical file.
	//
	// In write mode, members buffer their data and ship it to the
	// collector, which issues one large write per member chunk region; the
	// resulting multifile is byte-identical to one written directly. In
	// read mode, the collector issues one large read per member chunk
	// region and scatters the data, so at most ⌈ntasks/group⌉ tasks of a
	// physical file open it or issue read requests. Members never open the
	// physical file at all. ParOpenMapped honors the option the same way,
	// grouping consecutive reader ranks: its collectors fetch one dense
	// span per (file, block) covering the group's owned chunk runs.
	//
	// Memory: collective read prefetches each task's complete logical
	// stream into host memory at open (and the collector transiently
	// holds its whole group's streams). It is meant for the paper's
	// restart/trace read-back pattern with moderate per-task volumes; for
	// at-scale synthetic benchmarks (ReadSynthetic/WriteSynthetic, which
	// exist to avoid materializing payload bytes) use direct mode.
	//
	// Values: 0 or 1 disable (direct I/O); > 1 is a fixed group size;
	// CollectorAuto (-1) derives the group size from the chunk sizes and
	// the file-system block size, targeting collector regions of at least
	// autoCollectTargetBlocks FS blocks (the loosely-coupled aggregation
	// sizing of Zhang et al., arXiv:0901.0134). All tasks must pass the
	// same value (ParOpen is collective); the resolved size is computed at
	// the file master and distributed, so -1 is consistent even when chunk
	// sizes differ between tasks.
	CollectorGroup int

	// AsyncCollective upgrades collective write mode to double-buffered
	// asynchronous flushing: instead of holding all data until Close, a
	// member hands full staging buffers to its collector as it writes, and
	// the collector flushes them in the background (a flusher goroutine
	// per collector with a bounded queue in real mode; arrival-time-
	// ordered opportunistic draining in simulated mode), overlapping
	// computation with file I/O. Write errors detected by the flusher are
	// deferred and surfaced by Flush (collector-local) and Close (all
	// group members). Requires CollectorGroup != 0; ignored in read mode
	// (collective reads always complete at open).
	AsyncCollective bool

	// AsyncFlushBytes is the staging-buffer (flush-unit) size for
	// AsyncCollective. 0 picks one chunk capacity (which is always a
	// whole number of FS blocks), capped at asyncFlushCap to bound the
	// memory in flight per member.
	AsyncFlushBytes int64

	// Watermarks makes writers publish per-rank chunk-commit watermarks
	// into a per-segment sidecar file ("<segment>.wmk", see watermark.go):
	// on every Flush the data is synced first and a small commit record is
	// made durable afterwards, so readers can safely tail the multifile
	// while it is still being written (Follow, TailLayout, serve.NewTail)
	// without ever observing torn records. Close publishes a final sealed
	// commit. Only supported on parallel write handles (ParOpen); the
	// serial Create rejects it.
	Watermarks bool

	// BufferSize enables buffered staging I/O on the direct path (see
	// buffer.go): write-behind coalesces small Writes into a staging
	// buffer flushed in FS-block-aligned extents (at buffer-full, chunk
	// boundaries, Flush, and Close), and read-ahead fetches up to one
	// whole chunk region per file request, serving subsequent Reads from
	// memory. The multifile produced with any BufferSize is byte-identical
	// to the unbuffered one, and Seek/EOF/BytesAvailInChunk semantics are
	// unchanged.
	//
	// Values: 0 is the backend default — unbuffered one-request-per-call
	// behavior on POSIX-ish backends, upgraded to BufferAuto on backends
	// with a multipart part-size floor (see withDefaults; sub-part writes
	// pay staged copies there, so staging defaults on); a positive value
	// is the exact buffer size in bytes; BufferAuto (-1) derives the size
	// from the chunk geometry — one chunk capacity rounded up to a
	// multiple of the FS block size, capped at bufferAutoCap — so a
	// small-record checkpoint issues roughly one write request per chunk
	// instead of one per record; BufferOff (-2) disables staging
	// unconditionally on every backend.
	//
	// Collective handles ignore BufferSize: members route data through
	// frames that already coalesce at the collector, and collective reads
	// prefetch whole streams at open. Handles opened without options
	// (OpenRank, the serial Open) can enable staging afterwards with
	// SetBufferSize. A direct-mode ParOpenMapped arms one read-ahead
	// stage per owned rank handle.
	BufferSize int64
}

// CollectorAuto selects the collector group size automatically
// (Options.CollectorGroup = -1).
const CollectorAuto = -1

// autoCollectTargetBlocks is the auto-tuning target: each collector region
// (group size × aligned chunk) should cover at least this many FS blocks,
// so a collector write is large enough to amortize the request path.
const autoCollectTargetBlocks = 4

// maxAutoGroup bounds the auto-tuned group size: a collector holds up to
// group × chunk bytes in flight, so unbounded groups would trade request
// count for memory without further bandwidth benefit.
const maxAutoGroup = 64

// autoCollectorGroup derives the collector group size from the average
// aligned chunk size of a physical file: enough members that one
// collector region spans autoCollectTargetBlocks FS blocks.
func autoCollectorGroup(ntasksLocal int, avgAligned, fsblk int64) int {
	if avgAligned <= 0 {
		return 1
	}
	target := autoCollectTargetBlocks * fsblk
	g := int((target + avgAligned - 1) / avgAligned)
	if g < 1 {
		g = 1
	}
	if g > maxAutoGroup {
		g = maxAutoGroup
	}
	if g > ntasksLocal {
		g = ntasksLocal
	}
	return g
}

// withDefaults resolves the zero-value options against the task count
// and the backend's capability descriptor (fsio.CapabilitiesOf; the
// parallel opens broadcast rank 0's descriptor so all tasks resolve
// identically). A zero descriptor reproduces the historical POSIX
// defaults exactly; a backend that declares multipart write semantics
// (PartSizeFloor > 0) or a write fanout gets its geometry auto-tuned:
//
//   - NFiles defaults to min(ntasks, WriteFanout) instead of 1, because
//     such backends parallelize across objects, not within one.
//   - BufferSize 0 upgrades to BufferAuto — sub-part writes pay staged
//     copies there, so write-behind staging defaults ON, and because
//     such a backend reports its part size as the FS block size, the
//     auto-sized buffer is part-aligned. BufferOff is the explicit
//     opt-out that keeps staging disabled on any backend.
//   - An explicit AsyncFlushBytes rounds up to whole parts so the
//     collective flush unit never commits a partial part.
func (o *Options) withDefaults(ntasks int, caps fsio.Capabilities) (Options, error) {
	var out Options
	if o != nil {
		out = *o
	}
	if out.NFiles <= 0 {
		out.NFiles = 1
		if caps.WriteFanout > 1 {
			out.NFiles = int(caps.WriteFanout)
		}
	}
	if out.NFiles > ntasks {
		out.NFiles = ntasks
	}
	if out.Mapping == nil {
		out.Mapping = ContiguousMap
	}
	if out.MaxChunks < 0 {
		return out, fmt.Errorf("sion: negative MaxChunks %d", out.MaxChunks)
	}
	if out.CollectorGroup < CollectorAuto {
		return out, fmt.Errorf("sion: CollectorGroup %d (use 0/1 to disable, >1 fixed, CollectorAuto)", out.CollectorGroup)
	}
	if out.CollectorGroup != 0 && out.CollectorGroup != 1 && out.ChunkHeaders {
		return out, fmt.Errorf("sion: CollectorGroup and ChunkHeaders are mutually exclusive (collectors cannot attribute chunk headers)")
	}
	if out.AsyncCollective && (out.CollectorGroup == 0 || out.CollectorGroup == 1) {
		return out, fmt.Errorf("sion: AsyncCollective requires CollectorGroup (set it > 1 or CollectorAuto)")
	}
	if out.AsyncFlushBytes < 0 {
		return out, fmt.Errorf("sion: negative AsyncFlushBytes %d", out.AsyncFlushBytes)
	}
	if out.BufferSize < BufferOff {
		return out, fmt.Errorf("sion: BufferSize %d (use 0 for the backend default, BufferOff to disable, a positive size, or BufferAuto)", out.BufferSize)
	}
	if caps.PartSizeFloor > 0 {
		if out.BufferSize == 0 {
			out.BufferSize = BufferAuto
		}
		if out.AsyncFlushBytes > 0 {
			out.AsyncFlushBytes = alignUp(out.AsyncFlushBytes, caps.PartSizeFloor)
		}
	}
	if out.BufferSize == BufferOff {
		out.BufferSize = 0
	}
	return out, nil
}

func (o *Options) flags() uint64 {
	var f uint64
	if o.ChunkHeaders {
		f |= flagChunkHeaders
	}
	if o.Watermarks {
		f |= flagWatermarks
	}
	return f
}
