// Package sion implements the SIONlib multifile format and API from
// "Scalable Massively Parallel I/O to Task-Local Files" (Frings, Wolf,
// Petkov; SC09): a large number of logical task-local files is mapped onto
// one or a few physical files ("multifiles"), avoiding metadata contention
// during file creation and aligning per-task chunks to file-system block
// boundaries so that read/write bandwidth is not penalized.
//
// The programming interface mirrors the paper's ANSI-C extension in Go
// form:
//
//	C API                          Go API
//	sion_paropen_mpi               ParOpen (collective)
//	sion_paropen_mapped            ParOpenMapped (collective, M readers ≠ N writers)
//	sion_parclose_mpi              (*File).Close (collective)
//	sion_ensure_free_space         (*File).EnsureFreeSpace
//	sion_bytes_avail_in_chunk      (*File).BytesAvailInChunk
//	sion_feof                      (*File).EOF
//	sion_fwrite / fwrite           (*File).Write
//	sion_fread / fread             (*File).Read
//	sion_open / sion_close         Open / Create (serial, global view)
//	sion_open_rank                 OpenRank (serial, task-local view)
//	sion_seek                      (*SerialFile).Seek
//	sion_get_locations             (*SerialFile).Locations
//
// Extensions implemented from the paper's §6 future-work list: per-chunk
// headers enabling metadata reconstruction after failures (Repair), and
// transparent zlib stream compression (NewZWriter/NewZReader).
package sion

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/fsio"
)

// Format constants (all integers little-endian).
const (
	magicHeader = "SIONGO1\x00" // metablock 1
	magicMeta2  = "SIONMET2"    // metablock 2
	magicTail   = "SIONTAIL"    // trailer
	magicChunk  = "SIONCHNK"    // per-chunk header (optional)

	formatVersion = 1

	// tailSize is the fixed trailer at the end of each physical file:
	// magic[8] + metablock-2 offset i64 + crc32 u32 + pad u32.
	tailSize = 24

	// chunkHeaderSize is the self-describing header at the start of every
	// chunk when Options.ChunkHeaders is set.
	chunkHeaderSize = 64
)

// Flag bits stored in metablock 1.
const (
	flagChunkHeaders uint64 = 1 << 0
	flagWatermarks   uint64 = 1 << 1 // writers publish chunk-commit watermarks (watermark.go)
)

// ErrCorrupt is wrapped by parse errors on damaged multifiles. Besides the
// usual errors.Is identity, it carries a Corrupt() marker method so the
// resilience layer (internal/resil) can classify damage structurally —
// "the bytes arrived but fail validation, retrying re-reads the same
// bytes" — without this package and that one importing each other.
var ErrCorrupt error = corruptError{}

type corruptError struct{}

func (corruptError) Error() string { return "sion: corrupt multifile" }

// Corrupt marks the error as data damage for structural classification.
func (corruptError) Corrupt() bool { return true }

// Plausibility caps applied when parsing untrusted metadata, so corrupted
// or adversarial headers produce ErrCorrupt instead of absurd allocations
// or integer overflow in the chunk arithmetic.
const (
	maxTasks       = 1 << 21 // 2 Mi tasks (paper scale is 64 Ki)
	maxPhysFiles   = 1 << 20
	maxFSBlockSize = 1 << 30 // 1 GiB FS blocks
	maxChunkSize   = 1 << 40 // 1 TiB per chunk
)

// FileLoc places one global task inside the multifile collection.
type FileLoc struct {
	File      int32 // physical file number
	LocalRank int32 // rank within that file's task group
}

// header is metablock 1 of one physical file.
type header struct {
	FSBlockSize  int64
	NTasksGlobal int32
	NTasksLocal  int32
	NFiles       int32
	FileNum      int32
	Flags        uint64
	MaxChunks    int32
	GlobalRanks  []int64   // per local task
	ChunkSizes   []int64   // per local task, as requested
	Mapping      []FileLoc // file 0 only: per global task
}

const headerFixedSize = 8 + 4 + 8 + 4*4 + 8 + 4 + 4 // magic,ver,fsblk,counts,flags,maxchunks,pad

func (h *header) encodedSize() int {
	n := headerFixedSize + 16*int(h.NTasksLocal)
	if h.FileNum == 0 {
		n += 8 * int(h.NTasksGlobal)
	}
	return n
}

func (h *header) encode() []byte {
	buf := make([]byte, h.encodedSize())
	copy(buf, magicHeader)
	le := binary.LittleEndian
	le.PutUint32(buf[8:], formatVersion)
	le.PutUint64(buf[12:], uint64(h.FSBlockSize))
	le.PutUint32(buf[20:], uint32(h.NTasksGlobal))
	le.PutUint32(buf[24:], uint32(h.NTasksLocal))
	le.PutUint32(buf[28:], uint32(h.NFiles))
	le.PutUint32(buf[32:], uint32(h.FileNum))
	le.PutUint64(buf[36:], h.Flags)
	le.PutUint32(buf[44:], uint32(h.MaxChunks))
	off := headerFixedSize
	for i := 0; i < int(h.NTasksLocal); i++ {
		le.PutUint64(buf[off:], uint64(h.GlobalRanks[i]))
		le.PutUint64(buf[off+8:], uint64(h.ChunkSizes[i]))
		off += 16
	}
	if h.FileNum == 0 {
		for i := 0; i < int(h.NTasksGlobal); i++ {
			le.PutUint32(buf[off:], uint32(h.Mapping[i].File))
			le.PutUint32(buf[off+4:], uint32(h.Mapping[i].LocalRank))
			off += 8
		}
	}
	return buf
}

// parseHeader reads and validates metablock 1 from the start of f.
func parseHeader(f fsio.File) (*header, error) {
	fixed := make([]byte, headerFixedSize)
	if _, err := f.ReadAt(fixed, 0); err != nil {
		return nil, fmt.Errorf("%w: reading header: %w", ErrCorrupt, err)
	}
	if string(fixed[:8]) != magicHeader {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, fixed[:8])
	}
	le := binary.LittleEndian
	if v := le.Uint32(fixed[8:]); v != formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	h := &header{
		FSBlockSize:  int64(le.Uint64(fixed[12:])),
		NTasksGlobal: int32(le.Uint32(fixed[20:])),
		NTasksLocal:  int32(le.Uint32(fixed[24:])),
		NFiles:       int32(le.Uint32(fixed[28:])),
		FileNum:      int32(le.Uint32(fixed[32:])),
		Flags:        le.Uint64(fixed[36:]),
		MaxChunks:    int32(le.Uint32(fixed[44:])),
	}
	switch {
	case h.FSBlockSize <= 0 || h.FSBlockSize > maxFSBlockSize,
		h.NTasksGlobal <= 0 || h.NTasksGlobal > maxTasks,
		h.NTasksLocal <= 0 || h.NTasksLocal > h.NTasksGlobal,
		h.NFiles <= 0 || h.NFiles > maxPhysFiles,
		h.FileNum < 0 || h.FileNum >= h.NFiles:
		return nil, fmt.Errorf("%w: implausible header fields %+v", ErrCorrupt, *h)
	}
	rest := make([]byte, h.encodedSize()-headerFixedSize)
	if _, err := f.ReadAt(rest, int64(headerFixedSize)); err != nil {
		return nil, fmt.Errorf("%w: reading header tables: %w", ErrCorrupt, err)
	}
	off := 0
	h.GlobalRanks = make([]int64, h.NTasksLocal)
	h.ChunkSizes = make([]int64, h.NTasksLocal)
	for i := range h.GlobalRanks {
		h.GlobalRanks[i] = int64(le.Uint64(rest[off:]))
		h.ChunkSizes[i] = int64(le.Uint64(rest[off+8:]))
		if h.ChunkSizes[i] <= 0 || h.ChunkSizes[i] > maxChunkSize {
			return nil, fmt.Errorf("%w: chunk size %d for local task %d", ErrCorrupt, h.ChunkSizes[i], i)
		}
		off += 16
	}
	if h.FileNum == 0 {
		// The stored table goes through the same hardened codec the mapped
		// open paths use for the broadcast copy, so the validation rules
		// cannot drift between the two.
		mapping, err := decodeMapping(rest[off:], int(h.NTasksGlobal), int(h.NFiles))
		if err != nil {
			return nil, err
		}
		h.Mapping = mapping
	}
	return h, nil
}

// geometry is the derived chunk arithmetic of one physical file
// (paper §3.1, Fig. 2): chunk sizes are rounded up to a multiple of the FS
// block size; blocks of one chunk per task repeat with a fixed stride, so
// every task knows the address of every one of its chunks without
// communication.
type geometry struct {
	fsblk   int64
	start   int64   // offset of block 0 (header rounded up to fsblk)
	aligned []int64 // per local task: chunk size aligned up
	prefix  []int64 // per local task: offset of its chunk within a block
	stride  int64   // sum of aligned chunk sizes = block-to-block distance
	headers bool    // chunk headers present
}

func alignUp(n, align int64) int64 {
	if align <= 0 {
		return n
	}
	return (n + align - 1) / align * align
}

func newGeometry(h *header) geometry {
	g := geometry{
		fsblk:   h.FSBlockSize,
		start:   alignUp(int64(h.encodedSize()), h.FSBlockSize),
		aligned: make([]int64, h.NTasksLocal),
		prefix:  make([]int64, h.NTasksLocal),
		headers: h.Flags&flagChunkHeaders != 0,
	}
	var sum int64
	for i, cs := range h.ChunkSizes {
		a := alignUp(cs, h.FSBlockSize)
		if g.headers && a-chunkHeaderSize < cs {
			// Keep the requested capacity available despite the header.
			a = alignUp(cs+chunkHeaderSize, h.FSBlockSize)
		}
		g.aligned[i] = a
		g.prefix[i] = sum
		sum += a
	}
	g.stride = sum
	return g
}

// chunkOff returns the file offset of local task i's chunk in block b
// (the chunk header, if any, lives at this offset).
func (g *geometry) chunkOff(i, b int) int64 {
	return g.start + int64(b)*g.stride + g.prefix[i]
}

// dataOff returns the offset of usable data of local task i in block b.
func (g *geometry) dataOff(i, b int) int64 {
	off := g.chunkOff(i, b)
	if g.headers {
		off += chunkHeaderSize
	}
	return off
}

// capacity returns the usable bytes per chunk for local task i.
func (g *geometry) capacity(i int) int64 {
	c := g.aligned[i]
	if g.headers {
		c -= chunkHeaderSize
	}
	return c
}

// meta2 is metablock 2: what each task actually wrote (paper §3.1: chunk
// counts and the space occupied in each chunk, gathered at close).
type meta2 struct {
	BlockBytes [][]int64 // per local task, per block: bytes written
}

func (m *meta2) encode() []byte {
	n := 16 + 4*len(m.BlockBytes)
	for _, bb := range m.BlockBytes {
		n += 8 * len(bb)
	}
	buf := make([]byte, n)
	copy(buf, magicMeta2)
	le := binary.LittleEndian
	le.PutUint32(buf[8:], uint32(len(m.BlockBytes)))
	off := 16
	for _, bb := range m.BlockBytes {
		le.PutUint32(buf[off:], uint32(len(bb)))
		off += 4
	}
	for _, bb := range m.BlockBytes {
		for _, v := range bb {
			le.PutUint64(buf[off:], uint64(v))
			off += 8
		}
	}
	return buf
}

func parseMeta2(buf []byte, ntasks int) (*meta2, error) {
	if len(buf) < 16 || string(buf[:8]) != magicMeta2 {
		return nil, fmt.Errorf("%w: bad metablock-2 magic", ErrCorrupt)
	}
	le := binary.LittleEndian
	if got := int(le.Uint32(buf[8:])); got != ntasks {
		return nil, fmt.Errorf("%w: metablock 2 holds %d tasks, header says %d", ErrCorrupt, got, ntasks)
	}
	if len(buf) < 16+4*ntasks {
		return nil, fmt.Errorf("%w: metablock 2 truncated", ErrCorrupt)
	}
	counts := make([]int, ntasks)
	off := 16
	total := 0
	for i := range counts {
		counts[i] = int(le.Uint32(buf[off:]))
		if counts[i] < 0 || counts[i] > 1<<24 {
			return nil, fmt.Errorf("%w: task %d block count %d", ErrCorrupt, i, counts[i])
		}
		total += counts[i]
		off += 4
	}
	if len(buf) < off+8*total {
		return nil, fmt.Errorf("%w: metablock 2 truncated", ErrCorrupt)
	}
	m := &meta2{BlockBytes: make([][]int64, ntasks)}
	for i := range m.BlockBytes {
		bb := make([]int64, counts[i])
		for b := range bb {
			bb[b] = int64(le.Uint64(buf[off:]))
			off += 8
		}
		m.BlockBytes[i] = bb
	}
	return m, nil
}

// writeTail writes metablock 2 and the trailer at the end of the physical
// file, returning the metablock-2 offset.
func writeTail(f fsio.File, m *meta2, at int64) (int64, error) {
	enc := m.encode()
	if _, err := f.WriteAt(enc, at); err != nil {
		return 0, fmt.Errorf("sion: writing metablock 2: %w", err)
	}
	tail := make([]byte, tailSize)
	copy(tail, magicTail)
	le := binary.LittleEndian
	le.PutUint64(tail[8:], uint64(at))
	le.PutUint32(tail[16:], crc32.ChecksumIEEE(enc))
	if _, err := f.WriteAt(tail, at+int64(len(enc))); err != nil {
		return 0, fmt.Errorf("sion: writing trailer: %w", err)
	}
	return at, nil
}

// readTail locates, validates, and parses metablock 2.
func readTail(f fsio.File, ntasks int) (*meta2, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	if size < tailSize {
		return nil, fmt.Errorf("%w: file too small for trailer", ErrCorrupt)
	}
	tail := make([]byte, tailSize)
	if _, err := f.ReadAt(tail, size-tailSize); err != nil {
		return nil, fmt.Errorf("%w: reading trailer: %w", ErrCorrupt, err)
	}
	if string(tail[:8]) != magicTail {
		return nil, fmt.Errorf("%w: missing trailer (crash before close?)", ErrCorrupt)
	}
	le := binary.LittleEndian
	at := int64(le.Uint64(tail[8:]))
	want := le.Uint32(tail[16:])
	if at < 0 || at > size-tailSize {
		return nil, fmt.Errorf("%w: trailer points outside file", ErrCorrupt)
	}
	enc := make([]byte, size-tailSize-at)
	if _, err := f.ReadAt(enc, at); err != nil {
		return nil, fmt.Errorf("%w: reading metablock 2: %w", ErrCorrupt, err)
	}
	if crc32.ChecksumIEEE(enc) != want {
		return nil, fmt.Errorf("%w: metablock 2 checksum mismatch", ErrCorrupt)
	}
	return parseMeta2(enc, ntasks)
}

// encodeMapping serializes a global task placement table (8 bytes per
// task) for the header of physical file 0 and for the open-time exchanges
// (write-mode mapping forwarding, mapped-open broadcast).
func encodeMapping(m []FileLoc) []byte {
	buf := make([]byte, 8*len(m))
	for i, fl := range m {
		le().PutUint32(buf[8*i:], uint32(fl.File))
		le().PutUint32(buf[8*i+4:], uint32(fl.LocalRank))
	}
	return buf
}

// decodeMapping parses a placement table for ntasks tasks over nfiles
// physical files, validating exactly like parseHeader does for the stored
// copy: the byte count must match and every entry must point inside the
// multifile. Truncated buffers and out-of-range indices yield ErrCorrupt
// instead of a short or wild table — the mapped open path (where the
// reader count M differs from ntasks) trusts this table for every offset
// it computes.
func decodeMapping(buf []byte, ntasks, nfiles int) ([]FileLoc, error) {
	if ntasks < 0 || len(buf) != 8*ntasks {
		return nil, fmt.Errorf("%w: mapping table holds %d bytes for %d tasks", ErrCorrupt, len(buf), ntasks)
	}
	m := make([]FileLoc, ntasks)
	for i := range m {
		m[i] = FileLoc{
			File:      int32(le().Uint32(buf[8*i:])),
			LocalRank: int32(le().Uint32(buf[8*i+4:])),
		}
		if m[i].File < 0 || int(m[i].File) >= nfiles ||
			m[i].LocalRank < 0 || int(m[i].LocalRank) >= ntasks {
			return nil, fmt.Errorf("%w: mapping entry %d = %+v", ErrCorrupt, i, m[i])
		}
	}
	return m, nil
}

// chunkHeader is the optional 64-byte self-describing header at the start
// of each chunk (paper §6: "add small pieces of metadata to each chunk so
// that the full metadata can be restored if needed").
type chunkHeader struct {
	GlobalRank int64
	Block      int64
	Bytes      int64 // -1 while the chunk is open
}

func (c *chunkHeader) encode() []byte {
	buf := make([]byte, chunkHeaderSize)
	copy(buf, magicChunk)
	le := binary.LittleEndian
	le.PutUint64(buf[8:], uint64(c.GlobalRank))
	le.PutUint64(buf[16:], uint64(c.Block))
	le.PutUint64(buf[24:], uint64(c.Bytes))
	le.PutUint32(buf[32:], crc32.ChecksumIEEE(buf[:32]))
	return buf
}

func parseChunkHeader(buf []byte) (*chunkHeader, bool) {
	if len(buf) < chunkHeaderSize || string(buf[:8]) != magicChunk {
		return nil, false
	}
	le := binary.LittleEndian
	if crc32.ChecksumIEEE(buf[:32]) != le.Uint32(buf[32:]) {
		return nil, false
	}
	return &chunkHeader{
		GlobalRank: int64(le.Uint64(buf[8:])),
		Block:      int64(le.Uint64(buf[16:])),
		Bytes:      int64(le.Uint64(buf[24:])),
	}, true
}

// fileName returns the physical name of file k in an n-file multifile
// (file 0 keeps the user-visible name, like SIONlib's ".000001" suffixes).
func fileName(base string, k int) string {
	if k == 0 {
		return base
	}
	return fmt.Sprintf("%s.%06d", base, k)
}

// le returns the byte order used throughout the format.
func le() binary.ByteOrder { return binary.LittleEndian }
