package sion

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"repro/internal/fsio"
	"repro/internal/mpi"
)

func TestKeyValueRoundTrip(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	const n = 4
	mpi.Run(n, func(c *mpi.Comm) {
		f, err := ParOpen(c, fsys, "kv.sion", WriteMode, &Options{ChunkSize: 300, FSBlockSize: 256})
		if err != nil {
			t.Error(err)
			return
		}
		kw, err := NewKeyWriter(f)
		if err != nil {
			t.Error(err)
			return
		}
		// Interleave records of 3 "thread" keys, spanning many chunks.
		for i := 0; i < 30; i++ {
			key := uint64(i % 3)
			if err := kw.WriteKey(key, []byte(fmt.Sprintf("r%d-k%d-i%02d|", c.Rank(), key, i))); err != nil {
				t.Error(err)
				return
			}
		}
		f.Close()
	})

	for rank := 0; rank < n; rank++ {
		f, err := OpenRank(fsys, "kv.sion", rank)
		if err != nil {
			t.Fatal(err)
		}
		kr, err := NewKeyReader(f)
		if err != nil {
			t.Fatal(err)
		}
		keys := kr.Keys()
		if len(keys) != 3 || keys[0] != 0 || keys[2] != 2 {
			t.Fatalf("rank %d keys = %v", rank, keys)
		}
		for _, key := range keys {
			if kr.NumRecords(key) != 10 {
				t.Fatalf("rank %d key %d: %d records", rank, key, kr.NumRecords(key))
			}
			stream, err := kr.ReadKey(key)
			if err != nil {
				t.Fatal(err)
			}
			var want bytes.Buffer
			for i := 0; i < 30; i++ {
				if uint64(i%3) == key {
					fmt.Fprintf(&want, "r%d-k%d-i%02d|", rank, key, i)
				}
			}
			if !bytes.Equal(stream, want.Bytes()) {
				t.Fatalf("rank %d key %d stream mismatch:\n%q\n%q", rank, key, stream, want.Bytes())
			}
		}
		// Individual record access.
		rec, err := kr.Record(1, 4)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("r%d-k1-i13|", rank); string(rec) != want {
			t.Fatalf("record = %q want %q", rec, want)
		}
		if _, err := kr.Record(1, 99); err == nil {
			t.Fatal("out-of-range record accepted")
		}
		f.Close()
	}
}

func TestKeyReaderRejectsUntaggedStream(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	mpi.Run(1, func(c *mpi.Comm) {
		f, _ := ParOpen(c, fsys, "raw.sion", WriteMode, &Options{ChunkSize: 64, FSBlockSize: 64})
		f.Write([]byte("not a key-value stream"))
		f.Close()
	})
	f, _ := OpenRank(fsys, "raw.sion", 0)
	defer f.Close()
	if _, err := NewKeyReader(f); err == nil {
		t.Fatal("untagged stream accepted as key-value")
	}
}

func TestKeyWriterRequiresWriteMode(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	mpi.Run(1, func(c *mpi.Comm) {
		f, _ := ParOpen(c, fsys, "m.sion", WriteMode, &Options{ChunkSize: 64, FSBlockSize: 64})
		kw, _ := NewKeyWriter(f)
		kw.WriteKey(5, []byte("x"))
		f.Close()
		r, _ := ParOpen(c, fsys, "m.sion", ReadMode, nil)
		if _, err := NewKeyWriter(r); err == nil {
			t.Error("KeyWriter on read handle accepted")
		}
		r.Close()
	})
}

func TestReadLogicalAt(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	payload := rankPayload(3, 5000)
	mpi.Run(1, func(c *mpi.Comm) {
		f, _ := ParOpen(c, fsys, "la.sion", WriteMode, &Options{ChunkSize: 700, FSBlockSize: 512})
		f.Write(payload)
		f.Close()
	})
	f, _ := OpenRank(fsys, "la.sion", 0)
	defer f.Close()
	if f.LogicalSize() != 5000 {
		t.Fatalf("LogicalSize = %d", f.LogicalSize())
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		off := int64(rng.Intn(4900))
		n := 1 + rng.Intn(100)
		buf := make([]byte, n)
		if _, err := f.ReadLogicalAt(buf, off); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		end := off + int64(n)
		if end > 5000 {
			end = 5000
		}
		if !bytes.Equal(buf[:end-off], payload[off:end]) {
			t.Fatalf("ReadLogicalAt(%d,%d) mismatch", off, n)
		}
	}
	// Past-EOF read is short with io.EOF.
	buf := make([]byte, 10)
	if n, err := f.ReadLogicalAt(buf, 4995); n != 5 || err != io.EOF {
		t.Fatalf("n=%d err=%v", n, err)
	}
	// The sequential cursor must be untouched by ReadLogicalAt.
	seq := make([]byte, 8)
	io.ReadFull(f, seq)
	if !bytes.Equal(seq, payload[:8]) {
		t.Fatal("ReadLogicalAt moved the sequential cursor")
	}
}
