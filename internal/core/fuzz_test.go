package sion

import (
	"fmt"
	"io"
	"path"
	"testing"

	"repro/internal/fsio"
)

// memFile is a read-only in-memory fsio.File over raw multifile bytes,
// used to feed fuzz inputs through the metadata parsers without disk I/O.
type memFile struct{ b []byte }

var _ fsio.File = (*memFile)(nil)

func (m *memFile) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("memfile: negative offset %d", off)
	}
	if off >= int64(len(m.b)) {
		return 0, io.EOF
	}
	n := copy(p, m.b[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (m *memFile) WriteAt(p []byte, off int64) (int, error) {
	return 0, fmt.Errorf("memfile: read-only")
}
func (m *memFile) WriteZeroAt(n, off int64) error { return fmt.Errorf("memfile: read-only") }
func (m *memFile) ReadDiscardAt(n, off int64) (int64, error) {
	got, short := n, false
	if off >= int64(len(m.b)) {
		return 0, nil
	}
	if off+n > int64(len(m.b)) {
		got, short = int64(len(m.b))-off, true
	}
	_ = short
	return got, nil
}
func (m *memFile) Size() (int64, error)  { return int64(len(m.b)), nil }
func (m *memFile) Truncate(int64) error  { return fmt.Errorf("memfile: read-only") }
func (m *memFile) Sync() error           { return nil }
func (m *memFile) Close() error          { return nil }

// memFS exposes a set of raw byte images as a read-only fsio.FileSystem.
type memFS struct{ files map[string][]byte }

var _ fsio.FileSystem = (*memFS)(nil)

func (fs *memFS) Open(name string) (fsio.File, error) {
	b, ok := fs.files[path.Clean(name)]
	if !ok {
		return nil, fmt.Errorf("memfs: open %s: %w", name, fsio.ErrNotExist)
	}
	return &memFile{b: b}, nil
}
func (fs *memFS) OpenRW(name string) (fsio.File, error) { return fs.Open(name) }
func (fs *memFS) Create(name string) (fsio.File, error) {
	return nil, fmt.Errorf("memfs: read-only")
}
func (fs *memFS) Stat(name string) (fsio.FileInfo, error) {
	b, ok := fs.files[path.Clean(name)]
	if !ok {
		return fsio.FileInfo{}, fmt.Errorf("memfs: stat %s: %w", name, fsio.ErrNotExist)
	}
	return fsio.FileInfo{Name: name, Size: int64(len(b))}, nil
}
func (fs *memFS) Remove(name string) error { return fmt.Errorf("memfs: read-only") }
func (fs *memFS) BlockSize(string) int64   { return 256 }

// seedMultifile builds a small real multifile (serial path, 3 tasks, one
// physical file) and returns its raw bytes as fuzz seed material.
func seedMultifile(tb testing.TB, chunkHeaders bool) []byte {
	tb.Helper()
	dir := tb.TempDir()
	fsys := fsio.NewOS(dir)
	sf, err := Create(fsys, "seed.sion", []int64{100, 64, 200}, &Options{
		FSBlockSize: 128, ChunkHeaders: chunkHeaders,
	})
	if err != nil {
		tb.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		if err := sf.Seek(r, 0, 0); err != nil {
			tb.Fatal(err)
		}
		if _, err := sf.Write(rankPayload(r, 150+40*r)); err != nil {
			tb.Fatal(err)
		}
	}
	if err := sf.Close(); err != nil {
		tb.Fatal(err)
	}
	fh, err := fsys.Open("seed.sion")
	if err != nil {
		tb.Fatal(err)
	}
	defer fh.Close()
	size, _ := fh.Size()
	buf := make([]byte, size)
	if _, err := fh.ReadAt(buf, 0); err != nil && err != io.EOF {
		tb.Fatal(err)
	}
	return buf
}

// FuzzReadHeader feeds arbitrary bytes through the metablock-1 parser,
// the derived chunk geometry, and the trailer/metablock-2 locator. Any
// outcome but a clean error (or success on intact input) is a bug.
func FuzzReadHeader(f *testing.F) {
	seed := seedMultifile(f, false)
	f.Add(seed)
	f.Add(seed[:headerFixedSize])
	f.Add(seed[:len(seed)-tailSize/2])
	corrupt := append([]byte(nil), seed...)
	corrupt[20] ^= 0xff // NTasksGlobal
	f.Add(corrupt)
	f.Add([]byte(magicHeader))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		mf := &memFile{b: data}
		h, err := parseHeader(mf)
		if err != nil {
			return
		}
		// An accepted header must be safe to derive geometry from and to
		// locate metadata with.
		g := newGeometry(h)
		if len(g.aligned) != int(h.NTasksLocal) {
			t.Fatalf("geometry tables sized %d for %d tasks", len(g.aligned), h.NTasksLocal)
		}
		if m2, err := readTail(mf, int(h.NTasksLocal)); err == nil {
			for _, bb := range m2.BlockBytes {
				_ = bb
			}
		}
	})
}

// FuzzOpen feeds corrupted multifiles through the full serial open path
// used by siondump and the other utilities: Open, Locations, Dump,
// Verify, and OpenRank must all return errors instead of panicking.
func FuzzOpen(f *testing.F) {
	seed := seedMultifile(f, false)
	f.Add(seed)
	f.Add(seedMultifile(f, true)) // chunk-headered variant
	f.Add(seed[:len(seed)/2])     // crash before close
	truncTail := append([]byte(nil), seed...)
	f.Add(truncTail[:len(truncTail)-1])
	zeroed := append([]byte(nil), seed...)
	for i := headerFixedSize; i < headerFixedSize+32 && i < len(zeroed); i++ {
		zeroed[i] = 0
	}
	f.Add(zeroed)

	f.Fuzz(func(t *testing.T, data []byte) {
		fsys := &memFS{files: map[string][]byte{"f.sion": data}}
		if err := Dump(fsys, "f.sion", io.Discard); err != nil {
			return // rejected cleanly
		}
		// The image parsed: the utilities must keep working on it.
		if err := Verify(fsys, "f.sion"); err != nil {
			return
		}
		r, err := OpenRank(fsys, "f.sion", 0)
		if err != nil {
			return
		}
		buf := make([]byte, 64)
		for !r.EOF() {
			if _, err := r.Read(buf); err != nil {
				break
			}
		}
		r.Close()
	})
}
