package sion

import (
	"fmt"
	"io"
	"path"
	"testing"

	"repro/internal/fsio"
)

// memFile is a read-only in-memory fsio.File over raw multifile bytes,
// used to feed fuzz inputs through the metadata parsers without disk I/O.
type memFile struct{ b []byte }

var _ fsio.File = (*memFile)(nil)

func (m *memFile) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("memfile: negative offset %d", off)
	}
	if off >= int64(len(m.b)) {
		return 0, io.EOF
	}
	n := copy(p, m.b[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (m *memFile) WriteAt(p []byte, off int64) (int, error) {
	return 0, fmt.Errorf("memfile: read-only")
}
func (m *memFile) WriteZeroAt(n, off int64) error { return fmt.Errorf("memfile: read-only") }
func (m *memFile) ReadDiscardAt(n, off int64) (int64, error) {
	got, short := n, false
	if off >= int64(len(m.b)) {
		return 0, nil
	}
	if off+n > int64(len(m.b)) {
		got, short = int64(len(m.b))-off, true
	}
	_ = short
	return got, nil
}
func (m *memFile) Size() (int64, error) { return int64(len(m.b)), nil }
func (m *memFile) Truncate(int64) error { return fmt.Errorf("memfile: read-only") }
func (m *memFile) Sync() error          { return nil }
func (m *memFile) Close() error         { return nil }

// memFS exposes a set of raw byte images as a read-only fsio.FileSystem.
type memFS struct{ files map[string][]byte }

var _ fsio.FileSystem = (*memFS)(nil)

func (fs *memFS) Open(name string) (fsio.File, error) {
	b, ok := fs.files[path.Clean(name)]
	if !ok {
		return nil, fmt.Errorf("memfs: open %s: %w", name, fsio.ErrNotExist)
	}
	return &memFile{b: b}, nil
}
func (fs *memFS) OpenRW(name string) (fsio.File, error) { return fs.Open(name) }
func (fs *memFS) Create(name string) (fsio.File, error) {
	return nil, fmt.Errorf("memfs: read-only")
}
func (fs *memFS) Stat(name string) (fsio.FileInfo, error) {
	b, ok := fs.files[path.Clean(name)]
	if !ok {
		return fsio.FileInfo{}, fmt.Errorf("memfs: stat %s: %w", name, fsio.ErrNotExist)
	}
	return fsio.FileInfo{Name: name, Size: int64(len(b))}, nil
}
func (fs *memFS) Remove(name string) error { return fmt.Errorf("memfs: read-only") }
func (fs *memFS) BlockSize(string) int64   { return 256 }

// seedMultifile builds a small real multifile (serial path, 3 tasks, one
// physical file) and returns its raw bytes as fuzz seed material.
func seedMultifile(tb testing.TB, chunkHeaders bool) []byte {
	tb.Helper()
	dir := tb.TempDir()
	fsys := fsio.NewOS(dir)
	sf, err := Create(fsys, "seed.sion", []int64{100, 64, 200}, &Options{
		FSBlockSize: 128, ChunkHeaders: chunkHeaders,
	})
	if err != nil {
		tb.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		if err := sf.Seek(r, 0, 0); err != nil {
			tb.Fatal(err)
		}
		if _, err := sf.Write(rankPayload(r, 150+40*r)); err != nil {
			tb.Fatal(err)
		}
	}
	if err := sf.Close(); err != nil {
		tb.Fatal(err)
	}
	fh, err := fsys.Open("seed.sion")
	if err != nil {
		tb.Fatal(err)
	}
	defer fh.Close()
	size, _ := fh.Size()
	buf := make([]byte, size)
	if _, err := fh.ReadAt(buf, 0); err != nil && err != io.EOF {
		tb.Fatal(err)
	}
	return buf
}

// FuzzReadHeader feeds arbitrary bytes through the metablock-1 parser,
// the derived chunk geometry, and the trailer/metablock-2 locator. Any
// outcome but a clean error (or success on intact input) is a bug.
func FuzzReadHeader(f *testing.F) {
	seed := seedMultifile(f, false)
	f.Add(seed)
	f.Add(seed[:headerFixedSize])
	f.Add(seed[:len(seed)-tailSize/2])
	corrupt := append([]byte(nil), seed...)
	corrupt[20] ^= 0xff // NTasksGlobal
	f.Add(corrupt)
	f.Add([]byte(magicHeader))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		mf := &memFile{b: data}
		h, err := parseHeader(mf)
		if err != nil {
			return
		}
		// An accepted header must be safe to derive geometry from and to
		// locate metadata with.
		g := newGeometry(h)
		if len(g.aligned) != int(h.NTasksLocal) {
			t.Fatalf("geometry tables sized %d for %d tasks", len(g.aligned), h.NTasksLocal)
		}
		if m2, err := readTail(mf, int(h.NTasksLocal)); err == nil {
			for _, bb := range m2.BlockBytes {
				_ = bb
			}
		}
	})
}

// FuzzDecodeMapping feeds arbitrary bytes through the mapped-open metadata
// parsers: the global placement table codec (decodeMapping, which the
// mapped-open broadcast and the write-side mapping forwarding both trust
// for every offset they compute) and the parser→reader rank-record decoder
// (decodeMappedMeta). Truncated buffers, rank indices out of range, and
// reader/task counts far apart (M≫N) must yield ErrCorrupt-style errors —
// never a panic, and never a silently short or out-of-range table.
func FuzzDecodeMapping(f *testing.F) {
	valid := encodeMapping([]FileLoc{{0, 0}, {1, 0}, {0, 1}})
	f.Add(valid, 3, 2)
	f.Add(valid[:len(valid)-3], 3, 2)              // truncated mid-entry
	f.Add(valid, 2, 2)                             // too many entries for ntasks
	f.Add(valid, 4096, 2)                          // M≫N: far too few entries
	f.Add(encodeMapping([]FileLoc{{5, 0}}), 1, 2)  // file index out of range
	f.Add(encodeMapping([]FileLoc{{0, 9}}), 1, 2)  // local rank out of range
	f.Add(encodeMapping([]FileLoc{{-1, 0}}), 1, 2) // negative file index
	f.Add([]byte{}, 0, 1)
	f.Add([]byte{}, -3, -1)

	// Seeds for the rank-record decoder, fed from the same byte corpus.
	f.Add(encodeInt64s([]int64{0, 0, 1, 2, 0, 100, 256, 1024, 256, 0, 1, 40}), 4, 0)
	f.Add(encodeInt64s([]int64{0, 0, 1, 2, 0, 100, 256, 1024, 256, 3, 40}), 4, 0) // truncated blocks
	f.Add(encodeInt64s([]int64{0, 0, 7}), 4, 0)                                   // records missing

	f.Fuzz(func(t *testing.T, data []byte, ntasks, nfiles int) {
		if m, err := decodeMapping(data, ntasks, nfiles); err == nil {
			if len(m) != ntasks {
				t.Fatalf("accepted mapping holds %d entries for %d tasks", len(m), ntasks)
			}
			for i, fl := range m {
				if fl.File < 0 || int(fl.File) >= nfiles || fl.LocalRank < 0 || int(fl.LocalRank) >= ntasks {
					t.Fatalf("accepted mapping entry %d = %+v outside %d files / %d tasks", i, fl, nfiles, ntasks)
				}
			}
		}
		if ntasks >= 0 && ntasks <= maxTasks {
			if recs, err := decodeMappedMeta(decodeInt64s(data), ntasks, nfiles); err == nil {
				for _, rec := range recs {
					if rec.global < 0 || rec.global >= ntasks || rec.chunkSize <= 0 || rec.aligned <= 0 {
						t.Fatalf("accepted implausible mapped metadata record %+v", rec)
					}
					for _, b := range rec.blockBytes {
						if b < 0 || b > rec.aligned {
							t.Fatalf("accepted block bytes %d beyond chunk %d", b, rec.aligned)
						}
					}
				}
			}
		}
	})
}

// FuzzOpen feeds corrupted multifiles through the full serial open path
// used by siondump and the other utilities: Open, Locations, Dump,
// Verify, and OpenRank must all return errors instead of panicking.
func FuzzOpen(f *testing.F) {
	seed := seedMultifile(f, false)
	f.Add(seed)
	f.Add(seedMultifile(f, true)) // chunk-headered variant
	f.Add(seed[:len(seed)/2])     // crash before close
	truncTail := append([]byte(nil), seed...)
	f.Add(truncTail[:len(truncTail)-1])
	zeroed := append([]byte(nil), seed...)
	for i := headerFixedSize; i < headerFixedSize+32 && i < len(zeroed); i++ {
		zeroed[i] = 0
	}
	f.Add(zeroed)

	f.Fuzz(func(t *testing.T, data []byte) {
		fsys := &memFS{files: map[string][]byte{"f.sion": data}}
		if err := Dump(fsys, "f.sion", io.Discard); err != nil {
			return // rejected cleanly
		}
		// The image parsed: the utilities must keep working on it.
		if err := Verify(fsys, "f.sion"); err != nil {
			return
		}
		r, err := OpenRank(fsys, "f.sion", 0)
		if err != nil {
			return
		}
		buf := make([]byte, 64)
		for !r.EOF() {
			if _, err := r.Read(buf); err != nil {
				break
			}
		}
		r.Close()
	})
}
