package sion

import (
	"fmt"
	"io"

	"repro/internal/fsio"
)

// This file implements tailing reads over a live multifile: a reader opens
// a multifile that is still being written (Options.Watermarks) and walks
// each rank's logical stream up to the committed watermark, never past it.
// The commit-ordering contract (data WriteAt → data Sync → watermark cell
// WriteAt → watermark Sync, see watermark.go) guarantees every byte below
// a committed watermark is durable and untorn, so the reader needs no
// locks, leases, or writer cooperation beyond the sidecar.
//
// A TailLayout is the live analogue of Layout: instead of metablock 2
// (which only exists after Close) it carries the per-rank TailCommit state
// re-read from the sidecars by Refresh. Once every segment has a valid
// trailer the writer has closed; Refresh then switches to the final
// metablock-2 byte counts and the layout is Finalized — further Refresh
// calls are no-ops and readers drain to io.EOF.

// tailSeg is one physical file of a live multifile plus its watermark
// sidecar and last-observed commit state.
type tailSeg struct {
	fh    fsio.File
	wfh   fsio.File
	h     *header
	geo   geometry
	state [][]TailCommit // per local rank, per block; refreshed
}

// TailLayout is a read-only view of a multifile that may still be written.
// It is not safe for concurrent use; callers serialize access (serve wraps
// it in a mutex).
type TailLayout struct {
	fsys      fsio.FileSystem
	name      string
	mapping   []FileLoc
	segs      []*tailSeg
	finalized bool
}

// LoadTailLayout opens a multifile for tailing. The multifile must have
// been created with Options.Watermarks; a complete (closed) multifile is
// also accepted and loads directly in the finalized state. While the
// writer is still creating segments the open can fail with a not-exist
// error — callers poll until it succeeds.
func LoadTailLayout(fsys fsio.FileSystem, name string) (*TailLayout, error) {
	fh0, err := fsys.Open(fileName(name, 0))
	if err != nil {
		return nil, fmt.Errorf("sion: LoadTailLayout %s: %w", name, err)
	}
	h0, err := parseHeader(fh0)
	if err != nil {
		fh0.Close()
		return nil, fmt.Errorf("sion: LoadTailLayout %s: %w", name, err)
	}
	if h0.Flags&flagWatermarks == 0 {
		fh0.Close()
		return nil, fmt.Errorf("sion: LoadTailLayout %s: multifile was written without Options.Watermarks (nothing to tail)", name)
	}
	t := &TailLayout{
		fsys:    fsys,
		name:    name,
		mapping: append([]FileLoc(nil), h0.Mapping...),
	}
	for k := 0; k < int(h0.NFiles); k++ {
		var fh fsio.File
		var h *header
		if k == 0 {
			fh, h = fh0, h0
		} else {
			if fh, err = fsys.Open(fileName(name, k)); err != nil {
				t.Close()
				return nil, fmt.Errorf("sion: LoadTailLayout %s: segment %d: %w", name, k, err)
			}
			if h, err = parseHeader(fh); err != nil {
				fh.Close()
				t.Close()
				return nil, fmt.Errorf("sion: LoadTailLayout %s: segment %d: %w", name, k, err)
			}
		}
		wfh, err := fsys.Open(wmName(name, k))
		if err != nil {
			fh.Close()
			t.Close()
			return nil, fmt.Errorf("sion: LoadTailLayout %s: segment %d watermark sidecar: %w", name, k, err)
		}
		t.segs = append(t.segs, &tailSeg{
			fh:    fh,
			wfh:   wfh,
			h:     h,
			geo:   newGeometry(h),
			state: make([][]TailCommit, h.NTasksLocal),
		})
	}
	if err := t.Refresh(); err != nil {
		t.Close()
		return nil, err
	}
	return t, nil
}

// Refresh re-reads every segment's watermark sidecar, advancing the
// visible commit state. When all segments carry a valid trailer the
// multifile is complete: the state switches to the authoritative
// metablock-2 byte counts and the layout becomes Finalized (after which
// Refresh is a no-op).
func (t *TailLayout) Refresh() error {
	if t.finalized {
		return nil
	}
	for k, s := range t.segs {
		nl, fn, states, err := readWatermarkFile(s.wfh)
		if err != nil {
			return fmt.Errorf("sion: tail %s: segment %d watermark sidecar: %w", t.name, k, err)
		}
		if nl != int(s.h.NTasksLocal) || fn != k {
			return fmt.Errorf("%w: tail %s: watermark sidecar describes %d tasks of file %d, segment %d has %d tasks",
				ErrCorrupt, t.name, nl, fn, k, s.h.NTasksLocal)
		}
		s.state = states
	}
	// Finalization probe: the trailer (with its magic) is only written by
	// Close, after the final sealed commits. A mid-write file ends in data
	// bytes that fail the trailer parse, so a successful parse of every
	// segment means the writer is done.
	metas := make([]*meta2, len(t.segs))
	for i, s := range t.segs {
		m2, err := readTail(s.fh, int(s.h.NTasksLocal))
		if err != nil {
			return nil // not finalized yet
		}
		metas[i] = m2
	}
	for i, s := range t.segs {
		st := make([][]TailCommit, s.h.NTasksLocal)
		for li := range st {
			bb := metas[i].BlockBytes[li]
			cs := make([]TailCommit, len(bb))
			for b, bytes := range bb {
				cs[b] = TailCommit{Bytes: bytes, Sealed: true}
			}
			st[li] = cs
		}
		s.state = st
	}
	t.finalized = true
	return nil
}

// Finalized reports whether the writer has closed the multifile (as of the
// last Refresh). Once true, committed sizes are final.
func (t *TailLayout) Finalized() bool { return t.finalized }

// NTasks returns the number of writer tasks.
func (t *TailLayout) NTasks() int { return len(t.mapping) }

// NumFiles returns the number of physical files.
func (t *TailLayout) NumFiles() int { return len(t.segs) }

// FSBlockSize returns the file-system block size recorded in the header.
func (t *TailLayout) FSBlockSize() int64 { return t.segs[0].h.FSBlockSize }

// Name returns the multifile's base name.
func (t *TailLayout) Name() string { return t.name }

// PhysicalName returns the path of physical file k.
func (t *TailLayout) PhysicalName(k int) string { return fileName(t.name, k) }

// RankCommitted returns the committed extents of one rank's logical
// stream, in logical order, and whether the last extent is still open
// (unsealed — the writer may append more bytes to that same block).
func (t *TailLayout) RankCommitted(rank int) ([]BlockExtent, bool) {
	if rank < 0 || rank >= len(t.mapping) {
		return nil, false
	}
	loc := t.mapping[rank]
	s := t.segs[loc.File]
	li := int(loc.LocalRank)
	if li >= len(s.state) {
		return nil, false
	}
	blocks := s.state[li]
	ext := make([]BlockExtent, 0, len(blocks))
	for b, c := range blocks {
		bytes := c.Bytes
		if cp := s.geo.capacity(li); bytes > cp {
			bytes = cp // defensive: a sidecar never legitimately exceeds capacity
		}
		ext = append(ext, BlockExtent{File: int(loc.File), Off: s.geo.dataOff(li, b), Bytes: bytes})
	}
	open := false
	if n := len(blocks); n > 0 && !t.finalized {
		open = !blocks[n-1].Sealed
	}
	return ext, open
}

// CommittedSize returns the number of committed logical bytes of rank (as
// of the last Refresh).
func (t *TailLayout) CommittedSize(rank int) int64 {
	ext, _ := t.RankCommitted(rank)
	var total int64
	for _, e := range ext {
		total += e.Bytes
	}
	return total
}

// Close releases the layout's file handles.
func (t *TailLayout) Close() error {
	var firstErr error
	for _, s := range t.segs {
		if s.fh != nil {
			if err := s.fh.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			s.fh = nil
		}
		if s.wfh != nil {
			if err := s.wfh.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			s.wfh = nil
		}
	}
	return firstErr
}

// readCommittedAt copies committed bytes of rank's logical stream starting
// at logical offset pos into dst, stopping at the committed watermark. It
// returns the number of bytes copied (0 means pos is at the frontier).
func (t *TailLayout) readCommittedAt(rank int, dst []byte, pos int64) (int, error) {
	ext, _ := t.RankCommitted(rank)
	loc := t.mapping[rank]
	s := t.segs[loc.File]
	n := 0
	var logical int64
	for _, e := range ext {
		if n == len(dst) {
			break
		}
		cur := pos + int64(n)
		if cur >= logical && cur < logical+e.Bytes {
			off := cur - logical
			want := e.Bytes - off
			if max := int64(len(dst) - n); want > max {
				want = max
			}
			if _, err := s.fh.ReadAt(dst[n:n+int(want)], e.Off+off); err != nil && err != io.EOF {
				return n, err
			}
			n += int(want)
		}
		logical += e.Bytes
	}
	return n, nil
}

// TailReader reads one rank's logical stream from a live multifile, never
// past the committed watermark. At the frontier, Read returns ErrAgain
// while the writer is live and io.EOF once the multifile is finalized and
// drained. Call Poll (or TailLayout.Refresh) to observe new commits.
type TailReader struct {
	t    *TailLayout
	owns bool
	rank int
	pos  int64
}

// Follow opens a multifile for tailing and returns a reader over one
// rank's logical stream. The reader owns the underlying TailLayout; Close
// releases it.
func Follow(fsys fsio.FileSystem, name string, rank int) (*TailReader, error) {
	t, err := LoadTailLayout(fsys, name)
	if err != nil {
		return nil, err
	}
	r, err := t.Rank(rank)
	if err != nil {
		t.Close()
		return nil, err
	}
	r.owns = true
	return r, nil
}

// Rank returns a tail reader over one rank's logical stream, sharing this
// layout (the caller keeps ownership of the layout).
func (t *TailLayout) Rank(rank int) (*TailReader, error) {
	if rank < 0 || rank >= len(t.mapping) {
		return nil, fmt.Errorf("sion: tail %s: rank %d outside 0..%d", t.name, rank, len(t.mapping)-1)
	}
	return &TailReader{t: t, rank: rank}, nil
}

// Read copies committed bytes into p. A short read (n < len(p), err ==
// nil) means the reader caught up with the committed watermark mid-buffer;
// a (0, ErrAgain) means it is exactly at the watermark with the writer
// still live; (0, io.EOF) means the multifile is finalized and fully
// drained.
func (r *TailReader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	n, err := r.t.readCommittedAt(r.rank, p, r.pos)
	r.pos += int64(n)
	if err != nil {
		return n, err
	}
	if n == 0 {
		if r.t.finalized {
			return 0, io.EOF
		}
		return 0, ErrAgain
	}
	return n, nil
}

// Poll refreshes the underlying layout and reports whether this rank's
// committed frontier advanced (or the multifile finalized).
func (r *TailReader) Poll() (bool, error) {
	before := r.t.CommittedSize(r.rank)
	wasFinal := r.t.finalized
	if err := r.t.Refresh(); err != nil {
		return false, err
	}
	return r.t.CommittedSize(r.rank) > before || r.t.finalized != wasFinal, nil
}

// Committed returns the rank's committed logical size as of the last
// Refresh/Poll.
func (r *TailReader) Committed() int64 { return r.t.CommittedSize(r.rank) }

// Finalized reports whether the multifile is complete.
func (r *TailReader) Finalized() bool { return r.t.finalized }

// Close releases the underlying layout if this reader owns it (it does
// when built with Follow; readers from TailLayout.Rank share the caller's
// layout and their Close is a no-op).
func (r *TailReader) Close() error {
	if r.owns {
		r.owns = false
		return r.t.Close()
	}
	return nil
}
