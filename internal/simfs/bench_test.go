package simfs

import (
	"fmt"
	"testing"

	"repro/internal/vtime"
)

func BenchmarkParallelCreate4096(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fs := New(Jugene())
		e := vtime.NewEngine()
		for t := 0; t < 4096; t++ {
			t := t
			e.Spawn(0, func(p *vtime.Proc) {
				v := fs.View(t, p)
				if fh, err := v.Create(fmt.Sprintf("d/f%05d", t)); err == nil {
					fh.Close()
				}
			})
		}
		e.Run()
	}
}

func BenchmarkMeteredWrite(b *testing.B) {
	fs := New(Jugene())
	e := vtime.NewEngine()
	done := make(chan struct{})
	e.Spawn(0, func(p *vtime.Proc) {
		v := fs.View(0, p)
		fh, _ := v.Create("d/x")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fh.WriteZeroAt(1<<20, int64(i)<<20)
		}
		close(done)
	})
	e.Run()
	<-done
}
