package simfs

import (
	"fmt"
	"testing"

	"repro/internal/vtime"
)

func BenchmarkParallelCreate4096(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fs := New(Jugene())
		e := vtime.NewEngine()
		for t := 0; t < 4096; t++ {
			t := t
			e.Spawn(0, func(p *vtime.Proc) {
				v := fs.View(t, p)
				if fh, err := v.Create(fmt.Sprintf("d/f%05d", t)); err == nil {
					fh.Close()
				}
			})
		}
		e.Run()
	}
}

// BenchmarkExtentProbeFragmented measures the per-write extent probe on a
// heavily fragmented file (16 Ki disjoint extents): the binary-search
// probe is O(log n + k) where the old linear scan was O(n) per write.
func BenchmarkExtentProbeFragmented(b *testing.B) {
	f := &file{}
	const nExt = 16 << 10
	for i := int64(0); i < nExt; i++ {
		f.addExtent(i*128, i*128+64) // disjoint: a 64-byte gap after each
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := int64(i%nExt) * 128
		if got := f.addExtentProbe(e+32, e+96); got != 32 {
			b.Fatalf("probe = %d, want 32", got)
		}
	}
}

func BenchmarkMeteredWrite(b *testing.B) {
	fs := New(Jugene())
	e := vtime.NewEngine()
	done := make(chan struct{})
	e.Spawn(0, func(p *vtime.Proc) {
		v := fs.View(0, p)
		fh, _ := v.Create("d/x")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fh.WriteZeroAt(1<<20, int64(i)<<20)
		}
		close(done)
	})
	e.Run()
	<-done
}
