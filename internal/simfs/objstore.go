package simfs

// Simulated object store: the second storage backend of the capability
// model. Where the POSIX-ish backends (fsio.OS, simfs View) accept
// writes of any shape in place, an object store speaks a request
// protocol — ranged GET, multipart PUT with a part-size floor, HEAD,
// DELETE — with no rename and no in-place update: rewriting bytes
// inside an already-durable part region means copying the part through
// the client (staged copy). Request geometry, not bandwidth, is what
// changes between the backends, so the simulation keeps the data plane
// exact and models the control plane:
//
//   - Data plane: every operation delegates to the wrapped inner
//     FileSystem immediately, so the bytes on the backing store are
//     exactly what a POSIX backend would hold and byte identity across
//     backends is structural, not asserted into existence.
//   - Control plane: an ObjStore instance (shared by all of its Wraps,
//     like Flaky) keeps the gateway's request ledger — GETs, PUTs,
//     staged copies, HEADs, DELETEs — and the sealed-part map of every
//     object. A write handle runs a contiguous append window; completed
//     parts flush eagerly, seams and Sync/Close flush the rest, and a
//     flush touching a part region some earlier flush already sealed
//     pays a staged copy (GET + PUT) instead of a plain PUT.
//
// Latency rides the same hook convention as Flaky: Wrap takes a sleep
// function (proc-advancing in simulations, nil in property tests) and
// charges the profile's per-request round trip for every counted
// request, on top of whatever the inner backend charges for the bytes.

import (
	"path"
	"sync"

	"repro/internal/fsio"
)

// ObjProfile parameterizes the simulated object store's request
// geometry and latency.
type ObjProfile struct {
	// PartBytes is the multipart part size: the write durability unit,
	// the part-grid granularity of the sealed map, and the BlockSize the
	// backend reports (so block-aligned chunk geometry is part-aligned).
	PartBytes int64
	// MaxGetBytes is the largest single ranged GET; longer reads split.
	MaxGetBytes int64
	// PreferredGetBytes is the ranged-GET size the store performs best
	// at (the serve fetcher's dense-span target).
	PreferredGetBytes int64
	// WriteFanout is the store's preferred number of concurrently
	// written objects (parallelism lives across objects, not within
	// one).
	WriteFanout int64
	// RequestSecs is the fixed per-request round trip charged through
	// the sleep hook for every GET/PUT/HEAD/DELETE.
	RequestSecs float64
	// ThroughputBps is the advisory streaming rate reported in the
	// capability profiles (the data-plane cost itself is the inner
	// backend's business).
	ThroughputBps float64
}

// StockObjProfile is an S3-like profile: 8 MiB parts, 32 MiB GET
// ceiling, ~30 ms request round trips.
func StockObjProfile() ObjProfile {
	return ObjProfile{
		PartBytes:         8 << 20,
		MaxGetBytes:       32 << 20,
		PreferredGetBytes: 8 << 20,
		WriteFanout:       8,
		RequestSecs:       0.030,
		ThroughputBps:     100e6,
	}
}

// SmallPartObjProfile scales the stock profile down (1 MiB parts, 4 MiB
// GET ceiling) so experiments and tests exercise the same geometry
// effects on megabyte-scale files.
func SmallPartObjProfile() ObjProfile {
	return ObjProfile{
		PartBytes:         1 << 20,
		MaxGetBytes:       4 << 20,
		PreferredGetBytes: 1 << 20,
		WriteFanout:       8,
		RequestSecs:       0.030,
		ThroughputBps:     100e6,
	}
}

// ObjStats is the request ledger of one ObjStore: what an object-store
// gateway would bill for.
type ObjStats struct {
	Gets    int64 // ranged GETs (reads, plus the read half of staged copies)
	Puts    int64 // part PUTs (writes, plus the write half of staged copies)
	Copies  int64 // staged copies: flushes into an already-sealed part region
	Heads   int64 // HEAD requests (open/stat/size)
	Deletes int64 // DELETE requests
}

// Requests is the total request count.
func (s ObjStats) Requests() int64 {
	return s.Gets + s.Puts + s.Heads + s.Deletes
}

// ObjStore is the shared control-plane state of a simulated object
// store. All methods are safe for concurrent use; one instance may
// Wrap many inner file systems (one per simulated rank), which then
// share the request ledger and the sealed-part map, exactly like one
// gateway fronting all clients.
type ObjStore struct {
	mu     sync.Mutex
	prof   ObjProfile
	stats  ObjStats
	sealed map[string]map[int64]bool // object → sealed part indices
}

// NewObjStore builds an object store with the given profile. Zero or
// negative geometry fields fall back to the stock profile's values.
func NewObjStore(prof ObjProfile) *ObjStore {
	stock := StockObjProfile()
	if prof.PartBytes <= 0 {
		prof.PartBytes = stock.PartBytes
	}
	if prof.MaxGetBytes <= 0 {
		prof.MaxGetBytes = stock.MaxGetBytes
	}
	if prof.PreferredGetBytes <= 0 {
		prof.PreferredGetBytes = stock.PreferredGetBytes
	}
	return &ObjStore{prof: prof, sealed: make(map[string]map[int64]bool)}
}

// ObjProfileByName resolves a profile name for the -backend flag
// ("s3"/"stock", "smallpart"; "" = stock).
func ObjProfileByName(name string) (ObjProfile, bool) {
	switch name {
	case "", "s3", "stock":
		return StockObjProfile(), true
	case "smallpart":
		return SmallPartObjProfile(), true
	}
	return ObjProfile{}, false
}

// Profile returns the store's resolved profile.
func (o *ObjStore) Profile() ObjProfile { return o.prof }

// Stats returns a snapshot of the request ledger.
func (o *ObjStore) Stats() ObjStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.stats
}

// Wrap decorates inner with the object-store request model. sleep, when
// non-nil, delivers the per-request latency (pass a proc-advancing
// closure in simulations, nil to ignore latency). Unlike the
// pass-through decorators, the wrap is a backend in its own right: it
// reports its own capabilities and deliberately does NOT expose Unwrap
// (optional interfaces of the inner backend describe semantics this
// layer replaces).
func (o *ObjStore) Wrap(inner fsio.FileSystem, sleep func(seconds float64)) fsio.FileSystem {
	return &objFS{o: o, inner: inner, sleep: sleep}
}

// charge bills n requests of the given ledger field and sleeps the
// round trips.
func (o *ObjStore) charge(field *int64, n int64, sleep func(float64)) {
	o.mu.Lock()
	*field += n
	o.mu.Unlock()
	if sleep != nil && o.prof.RequestSecs > 0 && n > 0 {
		sleep(float64(n) * o.prof.RequestSecs)
	}
}

// getRange bills the GETs covering one logical read of [off, off+n).
func (o *ObjStore) getRange(n int64, sleep func(float64)) {
	if n <= 0 {
		o.charge(&o.stats.Gets, 1, sleep)
		return
	}
	reqs := (n + o.prof.MaxGetBytes - 1) / o.prof.MaxGetBytes
	o.charge(&o.stats.Gets, reqs, sleep)
}

// putRange commits [off, end) of the named object: one PUT per touched
// part-grid region, upgraded to a staged copy (GET + PUT) for regions
// some earlier flush already sealed. First touch seals the region.
func (o *ObjStore) putRange(name string, off, end int64, sleep func(float64)) {
	if end <= off {
		return
	}
	p := o.prof.PartBytes
	first, last := off/p, (end-1)/p
	var puts, copies int64
	o.mu.Lock()
	parts := o.sealed[name]
	if parts == nil {
		parts = make(map[int64]bool)
		o.sealed[name] = parts
	}
	for i := first; i <= last; i++ {
		if parts[i] {
			copies++
		} else {
			parts[i] = true
		}
		puts++
	}
	o.stats.Puts += puts
	o.stats.Gets += copies
	o.stats.Copies += copies
	o.mu.Unlock()
	if sleep != nil && o.prof.RequestSecs > 0 {
		sleep(float64(puts+copies) * o.prof.RequestSecs)
	}
}

// reset clears the sealed map of one object (Create = new object).
func (o *ObjStore) reset(name string) {
	o.mu.Lock()
	delete(o.sealed, name)
	o.mu.Unlock()
}

// objFS is one Wrap of an ObjStore around an inner backend.
type objFS struct {
	o     *ObjStore
	inner fsio.FileSystem
	sleep func(float64)
}

var _ fsio.FileSystem = (*objFS)(nil)
var _ fsio.CapabilityReporter = (*objFS)(nil)

// Capabilities reports the object-store contract derived from the
// profile: no rename, no in-place update, multipart PUT floor, ranged-
// GET geometry, on-seal durability.
func (w *objFS) Capabilities() fsio.Capabilities {
	p := w.o.prof
	prof := fsio.OpProfile{LatencySecs: p.RequestSecs, ThroughputBps: p.ThroughputBps}
	return fsio.Capabilities{
		Backend:               "objstore",
		AtomicRename:          false,
		InPlaceUpdate:         false,
		PreferredRequestBytes: p.PreferredGetBytes,
		MinReadBytes:          1,
		MaxReadBytes:          p.MaxGetBytes,
		PartSizeFloor:         p.PartBytes,
		WriteFanout:           p.WriteFanout,
		Sync:                  fsio.SyncOnSeal,
		Read:                  prof,
		Write:                 prof,
	}
}

// Create initiates a new object (multipart-upload initiation: one
// control request) and forgets any previous generation's sealed parts.
func (w *objFS) Create(name string) (fsio.File, error) {
	name = path.Clean(name)
	fh, err := w.inner.Create(name)
	if err != nil {
		return nil, err
	}
	w.o.reset(name)
	w.o.charge(&w.o.stats.Puts, 1, w.sleep)
	return &objFile{w: w, inner: fh, name: name, winOff: -1}, nil
}

// Open costs one HEAD (existence + size).
func (w *objFS) Open(name string) (fsio.File, error) {
	name = path.Clean(name)
	fh, err := w.inner.Open(name)
	if err != nil {
		return nil, err
	}
	w.o.charge(&w.o.stats.Heads, 1, w.sleep)
	return &objFile{w: w, inner: fh, name: name, winOff: -1}, nil
}

// OpenRW costs one HEAD. Writes through the handle follow the staged-
// copy rules for any region already sealed by a previous handle: this
// is the path header rewrites take.
func (w *objFS) OpenRW(name string) (fsio.File, error) {
	name = path.Clean(name)
	fh, err := w.inner.OpenRW(name)
	if err != nil {
		return nil, err
	}
	w.o.charge(&w.o.stats.Heads, 1, w.sleep)
	return &objFile{w: w, inner: fh, name: name, winOff: -1}, nil
}

func (w *objFS) Stat(name string) (fsio.FileInfo, error) {
	name = path.Clean(name)
	fi, err := w.inner.Stat(name)
	if err != nil {
		return fsio.FileInfo{}, err
	}
	w.o.charge(&w.o.stats.Heads, 1, w.sleep)
	return fi, nil
}

func (w *objFS) Remove(name string) error {
	name = path.Clean(name)
	if err := w.inner.Remove(name); err != nil {
		return err
	}
	w.o.reset(name)
	w.o.charge(&w.o.stats.Deletes, 1, w.sleep)
	return nil
}

// BlockSize reports the part size — the store's only meaningful
// alignment — for any name, existing or not (the descriptor, not the
// namespace, answers).
func (w *objFS) BlockSize(string) int64 { return w.o.prof.PartBytes }

// objFile is one open object handle. Writes run a contiguous append
// window [winOff, winEnd): appends extend it (completed parts flush
// eagerly), a non-contiguous write flushes the window first, and
// Sync/Close flush the remainder. winOff < 0 means no open window.
type objFile struct {
	w     *objFS
	inner fsio.File
	name  string

	mu             sync.Mutex
	winOff, winEnd int64
}

var _ fsio.File = (*objFile)(nil)

// flushWindowLocked commits the open window as parts.
func (h *objFile) flushWindowLocked() {
	if h.winOff >= 0 && h.winEnd > h.winOff {
		h.w.o.putRange(h.name, h.winOff, h.winEnd, h.w.sleep)
	}
	h.winOff, h.winEnd = -1, 0
}

// noteWrite accounts one write of [off, off+n) against the window.
func (h *objFile) noteWrite(off, n int64) {
	if n <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.winOff >= 0 && off != h.winEnd {
		h.flushWindowLocked()
	}
	if h.winOff < 0 {
		h.winOff, h.winEnd = off, off
	}
	h.winEnd = off + n
	// Flush the window's completed parts eagerly so request counts do
	// not depend on when the handle is closed.
	p := h.w.o.prof.PartBytes
	if cut := (h.winEnd / p) * p; cut > h.winOff {
		h.w.o.putRange(h.name, h.winOff, cut, h.w.sleep)
		h.winOff = cut
		if h.winEnd == cut {
			h.winOff, h.winEnd = -1, 0
		}
	}
}

func (h *objFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := h.inner.ReadAt(p, off)
	h.w.o.getRange(int64(len(p)), h.w.sleep)
	return n, err
}

func (h *objFile) ReadDiscardAt(n, off int64) (int64, error) {
	got, err := h.inner.ReadDiscardAt(n, off)
	h.w.o.getRange(n, h.w.sleep)
	return got, err
}

func (h *objFile) WriteAt(p []byte, off int64) (int, error) {
	n, err := h.inner.WriteAt(p, off)
	if err == nil {
		h.noteWrite(off, int64(len(p)))
	}
	return n, err
}

func (h *objFile) WriteZeroAt(n, off int64) error {
	err := h.inner.WriteZeroAt(n, off)
	if err == nil {
		h.noteWrite(off, n)
	}
	return err
}

// Truncate has no object-store analog; model it as a whole-object
// staged rewrite (GET + PUT) and forget sealed parts past the cut.
func (h *objFile) Truncate(size int64) error {
	if err := h.inner.Truncate(size); err != nil {
		return err
	}
	h.mu.Lock()
	h.flushWindowLocked()
	h.mu.Unlock()
	o := h.w.o
	o.mu.Lock()
	for i := range o.sealed[h.name] {
		if i*o.prof.PartBytes >= size {
			delete(o.sealed[h.name], i)
		}
	}
	o.stats.Gets++
	o.stats.Puts++
	o.stats.Copies++
	o.mu.Unlock()
	if h.w.sleep != nil && o.prof.RequestSecs > 0 {
		h.w.sleep(2 * o.prof.RequestSecs)
	}
	return nil
}

func (h *objFile) Size() (int64, error) {
	n, err := h.inner.Size()
	if err == nil {
		h.w.o.charge(&h.w.o.stats.Heads, 1, h.w.sleep)
	}
	return n, err
}

// Sync flushes the open window (sealing its parts); there is no
// further durability request to issue — parts are durable on seal.
func (h *objFile) Sync() error {
	h.mu.Lock()
	h.flushWindowLocked()
	h.mu.Unlock()
	return h.inner.Sync()
}

// Close flushes the open window and completes the handle.
func (h *objFile) Close() error {
	h.mu.Lock()
	h.flushWindowLocked()
	h.mu.Unlock()
	return h.inner.Close()
}
