package simfs

// Profile parameterizes the simulated parallel file system. The two stock
// profiles model the paper's test systems; every constant is calibrated so
// the reproduced experiments match the paper's *shapes* (who wins, by what
// factor, where saturation/crossover occurs), as documented in
// EXPERIMENTS.md. Absolute times are model outputs, not hardware
// measurements.
type Profile struct {
	Name string

	// FSBlockSize is the file-system block size (fstat st_blksize), the
	// granularity of SIONlib chunk alignment and of write locks.
	FSBlockSize int64

	// --- Metadata path -------------------------------------------------
	// Directory-entry creation serializes on the directory's metadata
	// server. The per-create cost grows mildly with the number of entries
	// (directory-block splits in extendible hashing, paper §2).
	CreateBase   float64 // seconds per create in an empty directory
	CreateGrowth float64 // extra fraction of CreateBase per log2(entries)
	// Opening an existing file pays OpenBase per open, plus InodeLoad the
	// first time a given file's inode is touched. This single mechanism
	// yields both Fig. 3's expensive "open existing" (N distinct inodes)
	// and the cheap shared open of one SIONlib multifile (one inode).
	OpenBase  float64
	InodeLoad float64
	StatCost  float64
	// RemoveCost is charged per unlink (serialized like create).
	RemoveCost float64
	// CloseUpdate is charged when a handle that wrote data is closed
	// (file-size attribute propagation to the metadata service).
	CloseUpdate float64

	// --- Data path -----------------------------------------------------
	NServers     int     // data servers (GPFS NSDs / Lustre OSTs)
	ServerBW     float64 // per-server write bandwidth, bytes/s
	ReadBWFactor float64 // read bandwidth = ServerBW * ReadBWFactor
	// DefaultStripeCount servers hold each file, chosen pseudo-randomly by
	// file-name hash (GPFS-like). Lustre profiles allow overriding per
	// file via SetStriping before Create.
	DefaultStripeCount int
	DefaultStripeSize  int64
	// ObjInit is paid on a file's first write to each stripe server
	// (object/allocation-map initialization). It is what makes tens of
	// thousands of task-local files marginally slower than one multifile
	// at equal aggregate bandwidth (Fig. 5).
	ObjInit float64

	// --- Client path ---------------------------------------------------
	// Tasks are grouped onto I/O clients (Blue Gene I/O nodes; Cray
	// compute-node NICs): TasksPerClient tasks share one client link of
	// ClientBW bytes/s. Aggregate bandwidth therefore grows with task
	// count until the servers saturate (Fig. 5 shape).
	TasksPerClient int
	ClientBW       float64
	WriteLatency   float64 // per write RPC
	ReadLatency    float64 // per read RPC

	// --- Write locks (GPFS block-granular tokens) ----------------------
	// Writing an FS block whose previous writer is a different task steals
	// the block's write token through the (serialized) token manager.
	// Aligned SIONlib chunks never share blocks, so they never pay this;
	// misaligned chunks pay it on every shared boundary block (Table 1).
	LockRevokeWrite float64
	LockRevokeRead  float64

	// --- Client read cache (Lustre/XT, Fig. 5b) ------------------------
	// A fraction f = min(1, aggregate client cache / bytes written) of
	// read traffic is served without consuming server time, scaling the
	// effective read bandwidth by 1/(1 - CacheBoost*f): with everything
	// cached, reads exceed the file-system maximum as in Fig. 5b.
	ClientCacheBytes float64 // per client
	CacheBoost       float64 // 0 disables; <1

	// ExclusiveReadFactor scales server read time for files read by the
	// single task that owns them (per-file readahead): <1 helps dedicated
	// task-local files at low concurrency; crowding (many files per
	// server) erodes it via ReadCrowdPenalty per log2(files/server).
	ExclusiveReadFactor float64
	ReadCrowdPenalty    float64
}

// Jugene models the paper's IBM Blue Gene/P with GPFS 3.2.1:
// 6 GB/s scratch file system, 2 MB blocks, 152 I/O nodes, distributed
// metadata with block-granular write locks (paper §4, Table 1 caption).
func Jugene() *Profile {
	return &Profile{
		Name:        "jugene",
		FSBlockSize: 2 << 20,

		// Fig. 3a: creating 64K files ≈ 370 s, opening them ≈ 60 s.
		CreateBase:   3.45e-3,
		CreateGrowth: 0.045,
		OpenBase:     3.0e-5,
		InodeLoad:    8.7e-4,
		StatCost:     2.0e-4,
		RemoveCost:   2.0e-3,
		CloseUpdate:  4.5e-4,

		// 32 NSD-like servers × 187.5 MB/s = 6 GB/s aggregate.
		NServers:           32,
		ServerBW:           187.5e6,
		ReadBWFactor:       0.87, // Table 1: read ≈ 0.86 × write when aligned
		DefaultStripeCount: 12,   // → Fig. 4a saturation between 8 and 32 files
		DefaultStripeSize:  2 << 20,
		ObjInit:            1.2e-3,

		// 152 I/O nodes; 64K tasks → 432 tasks/ION; ~620 MB/s effective
		// per 10GigE ION link → saturation at ≈ 8K tasks (Fig. 5a).
		TasksPerClient: 432,
		ClientBW:       620e6,
		WriteLatency:   2.5e-4,
		ReadLatency:    2.0e-4,

		// Table 1: token-manager revocation; calibrated for ≈2.5×/1.8×.
		LockRevokeWrite: 3.7e-3,
		LockRevokeRead:  2.65e-3,

		CacheBoost:          0, // GPFS path shows no cache inflation in the paper
		ExclusiveReadFactor: 1.0,
		ReadCrowdPenalty:    0,
	}
}

// Jaguar models the paper's Cray XT4 with Lustre 1.6.5: 40 GB/s aggregate,
// 72 OSTs, dedicated metadata servers, per-file stripe configuration
// (default 4 OSTs × 1 MB; optimized 64 OSTs × 8 MB), and client-side read
// caching that can push read bandwidth beyond the file-system maximum.
func Jaguar() *Profile {
	return &Profile{
		Name:        "jaguar",
		FSBlockSize: 2 << 20, // paper: SIONlib detected 2 MB on both systems

		// Fig. 3b: creating 12K files ≈ 300 s, opening them ≈ 20 s.
		CreateBase:   1.55e-2,
		CreateGrowth: 0.045,
		OpenBase:     5.5e-4,
		InodeLoad:    1.1e-3,
		StatCost:     4.0e-4,
		RemoveCost:   8.0e-3,
		CloseUpdate:  4.0e-4,

		// 72 OSTs × 556 MB/s = 40 GB/s aggregate.
		NServers:           72,
		ServerBW:           556e6,
		ReadBWFactor:       1.0,
		DefaultStripeCount: 4, // Lustre default in the paper
		DefaultStripeSize:  1 << 20,
		ObjInit:            2.0e-3,

		// Quad-core nodes: 4 tasks share a ~480 MB/s effective NIC.
		TasksPerClient: 4,
		ClientBW:       480e6,
		WriteLatency:   1.5e-4,
		ReadLatency:    1.2e-4,

		// Paper: preliminary tests did NOT confirm the alignment effect on
		// Jaguar → no revocation cost.
		LockRevokeWrite: 0,
		LockRevokeRead:  0,

		// Fig. 5b: reads exceed 40 GB/s once the aggregate client cache
		// covers the data set.
		ClientCacheBytes: 2 << 30,
		CacheBoost:       0.13,

		ExclusiveReadFactor: 0.90,
		ReadCrowdPenalty:    0.05,
	}
}

// clientOf maps a task id to its I/O client id.
func (p *Profile) clientOf(task int) int {
	if p.TasksPerClient <= 1 {
		return task
	}
	return task / p.TasksPerClient
}

// createCost returns the serialized cost of creating the (n+1)-th entry in
// a directory that already holds n entries.
func (p *Profile) createCost(entries int) float64 {
	g := 0.0
	for n := entries; n > 0; n >>= 1 {
		g++
	}
	return p.CreateBase * (1 + p.CreateGrowth*g)
}
