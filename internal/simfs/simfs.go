// Package simfs is a simulated parallel file system used to reproduce the
// paper's experiments at full scale (up to 64K tasks, terabytes of I/O) on a
// single machine.
//
// It implements the fsio interfaces over in-memory files and charges every
// operation virtual time on a discrete-event model (internal/vtime) with the
// contention mechanisms that drive the paper's results:
//
//   - directory-entry creation and inode loads serialize on a metadata
//     server (file-creation scalability, Fig. 3);
//   - file data is striped over a set of data servers chosen per file, so
//     aggregate bandwidth depends on how many servers a workload engages
//     (bandwidth vs number of physical files, Fig. 4);
//   - tasks share per-client (I/O-node) links, so bandwidth also grows with
//     task count until the servers saturate (Fig. 5);
//   - writes steal block-granular lock tokens when chunks of different
//     tasks share a file-system block (alignment, Table 1);
//   - a client read cache can push read bandwidth beyond the server
//     maximum (Fig. 5b).
//
// Real byte content is stored page-sparsely for ordinary WriteAt calls
// (metadata blocks, tests); the synthetic WriteZeroAt/ReadDiscardAt path is
// metered through the identical cost model without materializing data, so
// terabyte experiments fit in memory.
//
// simfs is single-threaded by design: in simulations the vtime engine runs
// one process at a time, and the serial utilities run outside any engine
// with a nil process (no time accounting).
package simfs

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"path"
	"sort"

	"repro/internal/fsio"
	"repro/internal/vtime"
)

const pageSize = 1 << 16

// FS is one simulated file system instance.
type FS struct {
	prof    *Profile
	dirs    map[string]*dir
	files   map[string]*file
	servers []*vtime.Server // data servers
	token   *vtime.Server   // lock/token manager
	clients map[int]*vtime.Server
	quota   int64 // bytes; 0 = unlimited
	used    int64 // allocated bytes
	active  int   // files that have received writes (sets per-file token rate)

	// Crash-consistency modelling (the watermark durability experiments):
	// with volatile writes on, written content and size growth live in a
	// per-file overlay that only Sync merges into the durable state, and
	// reads see the durable state only (what another node would observe).
	// failWrites injects a hard failure after that many further
	// write/sync operations (-1 = disabled).
	volatile   bool
	failWrites int64

	striping map[string]stripeCfg // per-directory override
}

type stripeCfg struct {
	count int
	size  int64
}

type dir struct {
	srv     *vtime.Server
	entries int
}

type extent struct{ off, end int64 }

type file struct {
	name        string
	size        int64
	pages       map[int64][]byte
	extents     []extent // sorted, merged allocated ranges
	stripeCount int      // configured stripe width (Lustre-style)
	stripeSize  int64
	token       *vtime.Server // per-file allocation/token pipe (see meter)
	inodeLoaded bool
	objInit     bool           // first-write allocation done
	chargedW    map[int64]bool // FS blocks already paid for on the write path
	chargedR    map[int64]bool // FS blocks already paid for on the read path
	blockOwner  map[int64]int  // FS block index -> last writer task
	written     int64          // total bytes ever written
	dirtySize   bool           // size attribute not yet propagated (see Close)
	vpages      map[int64][]byte // volatile-mode overlay pages (merged by Sync)
	vsize       int64            // volatile-mode size high-water (≤ durable after Crash)
	writerCli   map[int]bool   // client ids that wrote
	soleWriter  int            // task id, -1 = none yet, -2 = multiple
	removed     bool

	// Request accounting (see FileStats): how many open/read/write
	// requests the file ever received and from which tasks. The
	// collective-I/O experiments use these to prove the client-reduction
	// claim (only ⌈ntasks/group⌉ collectors touch a file).
	opens     int
	readReqs  int64
	writeReqs int64
	readerSet map[int]bool
	writerSet map[int]bool
}

// FileStats counts a file's lifetime request traffic per kind.
type FileStats struct {
	Opens         int   // Create + Open + OpenRW calls
	ReadRequests  int64 // ReadAt + ReadDiscardAt calls
	WriteRequests int64 // WriteAt + WriteZeroAt calls
	ReaderTasks   int   // distinct tasks that issued read requests
	WriterTasks   int   // distinct tasks that issued write requests
}

// Stats reports the request counters of the named file (false if it does
// not exist). Counters are cumulative over the file's lifetime; a
// truncating re-Create keeps them (the entry is the same), Remove drops
// them with the file.
func (fs *FS) Stats(name string) (FileStats, bool) {
	f, ok := fs.files[path.Clean(name)]
	if !ok {
		return FileStats{}, false
	}
	return FileStats{
		Opens:         f.opens,
		ReadRequests:  f.readReqs,
		WriteRequests: f.writeReqs,
		ReaderTasks:   len(f.readerSet),
		WriterTasks:   len(f.writerSet),
	}, true
}

// New creates a file system with the given profile.
func New(p *Profile) *FS {
	fs := &FS{
		prof:     p,
		dirs:     make(map[string]*dir),
		files:    make(map[string]*file),
		token:    vtime.NewServer(p.Name + "/token"),
		clients:  make(map[int]*vtime.Server),
		striping: make(map[string]stripeCfg),

		failWrites: -1,
	}
	fs.servers = make([]*vtime.Server, p.NServers)
	for i := range fs.servers {
		fs.servers[i] = vtime.NewServer(fmt.Sprintf("%s/srv%d", p.Name, i))
	}
	return fs
}

// Profile returns the file system's profile.
func (fs *FS) Profile() *Profile { return fs.prof }

// SetQuota limits total allocated bytes; writes beyond it fail with
// fsio.ErrQuota (failure injection for the paper's §6 robustness scenario).
func (fs *FS) SetQuota(bytes int64) { fs.quota = bytes }

// SetVolatileWrites toggles crash-consistency modelling: while on, WriteAt
// content and size growth go into a volatile per-file overlay that becomes
// durable only when some handle of the file calls Sync (an OS page cache:
// one task's fsync flushes the whole file, including other tasks'
// unsynced writes). Reads and Size always see the durable state only —
// what a different node, or a post-crash mount, would observe. Extent
// allocation, quota, and time metering stay eager; only content
// durability is affected. Used by the watermark crash experiments (tab7).
func (fs *FS) SetVolatileWrites(on bool) { fs.volatile = on }

// Crash discards every unsynced volatile write, modelling a node failure:
// files revert to their last-synced content and size. It also clears any
// pending FailWritesAfter injection.
func (fs *FS) Crash() {
	for _, f := range fs.files {
		f.vpages = nil
		f.vsize = 0
	}
	fs.failWrites = -1
}

// FailWritesAfter makes the n+1-th subsequent write or sync operation (and
// every one after it) fail with an injected error, modelling a writer
// dying mid-operation at an arbitrary point. n < 0 disables injection.
func (fs *FS) FailWritesAfter(n int64) {
	if n < 0 {
		n = -1
	}
	fs.failWrites = n
}

// SetStriping overrides the stripe count/size for files subsequently
// created in directory dirName (Lustre per-directory striping, Fig. 4b).
func (fs *FS) SetStriping(dirName string, count int, size int64) {
	if count < 1 {
		count = 1
	}
	if count > fs.prof.NServers {
		count = fs.prof.NServers
	}
	if size <= 0 {
		size = fs.prof.DefaultStripeSize
	}
	fs.striping[path.Clean(dirName)] = stripeCfg{count, size}
}

// DropCaches forgets inode and block-token state, modelling a fresh job on
// a production system (used between experiment phases).
func (fs *FS) DropCaches() {
	for _, f := range fs.files {
		f.inodeLoaded = false
		f.blockOwner = make(map[int64]int)
	}
}

// ResetServers returns all queueing servers to idle (a new measurement
// window starting at virtual time ~0 for procs created afterwards).
func (fs *FS) ResetServers() {
	for _, s := range fs.servers {
		s.Reset()
	}
	fs.token.Reset()
	for _, c := range fs.clients {
		c.Reset()
	}
	for _, d := range fs.dirs {
		d.srv.Reset()
	}
	for _, f := range fs.files {
		f.token.Reset()
	}
}

// NumFiles reports the number of existing files.
func (fs *FS) NumFiles() int { return len(fs.files) }

// UsedBytes reports allocated bytes (quota accounting).
func (fs *FS) UsedBytes() int64 { return fs.used }

func (fs *FS) dirOf(name string) *dir {
	d := path.Dir(path.Clean(name))
	if dd, ok := fs.dirs[d]; ok {
		return dd
	}
	dd := &dir{srv: vtime.NewServer(fs.prof.Name + "/meta:" + d)}
	fs.dirs[d] = dd
	return dd
}

func (fs *FS) client(task int) *vtime.Server {
	id := fs.prof.clientOf(task)
	c, ok := fs.clients[id]
	if !ok {
		c = vtime.NewServer(fmt.Sprintf("%s/client%d", fs.prof.Name, id))
		fs.clients[id] = c
	}
	return c
}

// homeServer deterministically assigns a file a "home" data server (used
// to charge per-file first-write allocation overhead somewhere balanced).
func (fs *FS) homeServer(name string) int {
	h := fnv.New64a()
	io.WriteString(h, name)
	return int(h.Sum64() % uint64(fs.prof.NServers))
}

// View binds the file system to one task: all operations through the view
// are attributed to the task's client link and advance proc's virtual
// clock. A nil proc performs the data operations with no time accounting
// (used by serial, offline tools).
func (fs *FS) View(task int, proc *vtime.Proc) *View {
	return &View{fs: fs, task: task, proc: proc}
}

// View is a per-task fsio.FileSystem over a shared FS.
type View struct {
	fs   *FS
	task int
	proc *vtime.Proc
}

var _ fsio.FileSystem = (*View)(nil)

// SpawnWorker starts a background worker process at the view's current
// virtual time, bound to the same task (and therefore the same client
// link) but carrying its own virtual clock, and returns that process.
// The async collective flusher of internal/core runs on such a worker:
// it is the discrete-event analog of the real-mode flusher goroutine, so
// collector file I/O genuinely overlaps the collector's computation in
// simulated time while every byte is still metered through the task's
// client link and the shared servers.
func (v *View) SpawnWorker(body func(fs fsio.FileSystem, p *vtime.Proc)) *vtime.Proc {
	fs, task := v.fs, v.task
	return v.proc.Engine().Spawn(v.proc.Now(), func(p *vtime.Proc) {
		body(fs.View(task, p), p)
	})
}

// Create implements fsio.FileSystem: it creates or truncates name, paying
// the serialized directory-creation cost.
func (v *View) Create(name string) (fsio.File, error) {
	name = path.Clean(name)
	fs := v.fs
	d := fs.dirOf(name)
	f, exists := fs.files[name]
	// Price and reserve the directory entry before queueing on the
	// metadata server: concurrent creates are all in flight together, so
	// each is priced by its enqueue position in the growing directory.
	var cost float64
	if exists {
		cost = fs.prof.OpenBase // truncating create of an existing entry
	} else {
		cost = fs.prof.createCost(d.entries)
		d.entries++
	}
	if v.proc != nil {
		d.srv.Use(v.proc, cost)
	}
	if !exists {
		cfg, ok := fs.striping[path.Dir(name)]
		if !ok {
			cfg = stripeCfg{fs.prof.DefaultStripeCount, fs.prof.DefaultStripeSize}
		}
		f = &file{
			name:        name,
			stripeCount: cfg.count,
			stripeSize:  cfg.size,
			token:       vtime.NewServer(fs.prof.Name + "/tok:" + name),
			soleWriter:  -1,
			readerSet:   make(map[int]bool),
			writerSet:   make(map[int]bool),
		}
		fs.files[name] = f
	} else {
		fs.used -= f.allocated()
		f.truncateTo(0)
		if f.written > 0 {
			fs.active--
			f.written = 0
		}
		f.soleWriter = -1
	}
	f.inodeLoaded = true
	f.pages = make(map[int64][]byte)
	f.objInit = false
	f.chargedW = make(map[int64]bool)
	f.chargedR = make(map[int64]bool)
	f.blockOwner = make(map[int64]int)
	f.writerCli = make(map[int]bool)
	f.removed = false
	f.opens++
	return &handle{v: v, f: f}, nil
}

// Open implements fsio.FileSystem (read access).
func (v *View) Open(name string) (fsio.File, error) { return v.open(name) }

// OpenRW implements fsio.FileSystem.
func (v *View) OpenRW(name string) (fsio.File, error) { return v.open(name) }

func (v *View) open(name string) (fsio.File, error) {
	name = path.Clean(name)
	fs := v.fs
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("simfs: open %s: %w", name, fsio.ErrNotExist)
	}
	cost := fs.prof.OpenBase
	if !f.inodeLoaded {
		cost += fs.prof.InodeLoad
	}
	// Mark the inode loaded before queueing on the metadata server: the
	// load is in flight, and concurrent opens of the same file just queue
	// behind it instead of each paying the load again.
	f.inodeLoaded = true
	f.opens++
	if v.proc != nil {
		fs.dirOf(name).srv.Use(v.proc, cost)
	}
	return &handle{v: v, f: f}, nil
}

// Stat implements fsio.FileSystem.
func (v *View) Stat(name string) (fsio.FileInfo, error) {
	name = path.Clean(name)
	f, ok := v.fs.files[name]
	if !ok {
		return fsio.FileInfo{}, fmt.Errorf("simfs: stat %s: %w", name, fsio.ErrNotExist)
	}
	if v.proc != nil {
		v.fs.dirOf(name).srv.Use(v.proc, v.fs.prof.StatCost)
	}
	return fsio.FileInfo{Name: name, Size: f.size}, nil
}

// Remove implements fsio.FileSystem.
func (v *View) Remove(name string) error {
	name = path.Clean(name)
	fs := v.fs
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("simfs: remove %s: %w", name, fsio.ErrNotExist)
	}
	if v.proc != nil {
		fs.dirOf(name).srv.Use(v.proc, fs.prof.RemoveCost)
	}
	fs.used -= f.allocated()
	if f.written > 0 {
		fs.active--
	}
	f.removed = true
	delete(fs.files, name)
	fs.dirOf(name).entries--
	return nil
}

// BlockSize implements fsio.FileSystem.
func (v *View) BlockSize(string) int64 { return v.fs.prof.FSBlockSize }

// allocated returns the physically allocated byte count (merged extents).
func (f *file) allocated() int64 {
	var n int64
	for _, e := range f.extents {
		n += e.end - e.off
	}
	return n
}

func (f *file) truncateTo(size int64) {
	f.size = size
	var kept []extent
	for _, e := range f.extents {
		if e.off >= size {
			continue
		}
		if e.end > size {
			e.end = size
		}
		kept = append(kept, e)
	}
	f.extents = kept
	for idx := range f.pages {
		if idx*pageSize >= size {
			delete(f.pages, idx)
		}
	}
}

// addExtent records [off,end) as allocated and returns newly allocated bytes.
func (f *file) addExtent(off, end int64) int64 {
	if end <= off {
		return 0
	}
	// Find overlap window.
	es := f.extents
	i := sort.Search(len(es), func(i int) bool { return es[i].end >= off })
	j := i
	newOff, newEnd := off, end
	var overlap int64
	for j < len(es) && es[j].off <= end {
		if es[j].off < newOff {
			newOff = es[j].off
		}
		if es[j].end > newEnd {
			newEnd = es[j].end
		}
		lo, hi := max64(es[j].off, off), min64(es[j].end, end)
		if hi > lo {
			overlap += hi - lo
		}
		j++
	}
	merged := append(es[:i:i], extent{newOff, newEnd})
	f.extents = append(merged, es[j:]...)
	return (end - off) - overlap
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// handle is an open file bound to a task view.
type handle struct {
	v      *View
	f      *file
	wrote  bool // this handle wrote (close then updates file metadata)
	closed bool
}

var _ fsio.File = (*handle)(nil)

func (h *handle) check() error {
	if h.closed {
		return fmt.Errorf("simfs: %s: use of closed file", h.f.name)
	}
	if h.f.removed {
		return fmt.Errorf("simfs: %s: file was removed", h.f.name)
	}
	return nil
}

// WriteAt stores p at off (page-sparse) and meters the operation.
func (h *handle) WriteAt(p []byte, off int64) (int, error) {
	if err := h.check(); err != nil {
		return 0, err
	}
	if err := h.writeCommon(int64(len(p)), off); err != nil {
		return 0, err
	}
	h.storePages(p, off)
	return len(p), nil
}

// WriteZeroAt meters an n-byte write without materializing content.
func (h *handle) WriteZeroAt(n, off int64) error {
	if err := h.check(); err != nil {
		return err
	}
	return h.writeCommon(n, off)
}

func (h *handle) writeCommon(n, off int64) error {
	if n < 0 || off < 0 {
		return fmt.Errorf("simfs: %s: negative write", h.f.name)
	}
	if n == 0 {
		return nil
	}
	fs, f := h.v.fs, h.f
	if fs.failWrites == 0 {
		return fmt.Errorf("simfs: %s: injected write failure", f.name)
	}
	if fs.failWrites > 0 {
		fs.failWrites--
	}
	f.writeReqs++
	if f.writerSet == nil {
		f.writerSet = make(map[int]bool)
	}
	f.writerSet[h.v.task] = true
	grow := f.addExtentProbe(off, off+n)
	if fs.quota > 0 && fs.used+grow > fs.quota {
		return fmt.Errorf("simfs: %s: %w", f.name, fsio.ErrQuota)
	}
	fs.used += f.addExtent(off, off+n)
	if fs.volatile {
		if off+n > f.vsize {
			f.vsize = off + n
		}
	} else if off+n > f.size {
		f.size = off + n
	}
	if f.written == 0 {
		fs.active++
	}
	f.dirtySize = true
	f.written += n
	f.writerCli[fs.prof.clientOf(h.v.task)] = true
	switch f.soleWriter {
	case -1:
		f.soleWriter = h.v.task
	case h.v.task:
	default:
		f.soleWriter = -2
	}
	h.wrote = true
	h.meter(n, off, true)
	return nil
}

// ReadAt fills p from off; unwritten regions read as zeros, reads past EOF
// are short with io.EOF (os.File semantics).
func (h *handle) ReadAt(p []byte, off int64) (int, error) {
	if err := h.check(); err != nil {
		return 0, err
	}
	h.noteRead()
	n, short := h.clampRead(int64(len(p)), off)
	h.meter(n, off, false)
	h.loadPages(p[:n], off)
	if short {
		return int(n), io.EOF
	}
	return int(n), nil
}

// ReadDiscardAt meters an n-byte read without touching content.
func (h *handle) ReadDiscardAt(n, off int64) (int64, error) {
	if err := h.check(); err != nil {
		return 0, err
	}
	h.noteRead()
	got, _ := h.clampRead(n, off)
	h.meter(got, off, false)
	return got, nil
}

// noteRead counts a read request against the file and its issuing task.
func (h *handle) noteRead() {
	h.f.readReqs++
	if h.f.readerSet == nil {
		h.f.readerSet = make(map[int]bool)
	}
	h.f.readerSet[h.v.task] = true
}

func (h *handle) clampRead(n, off int64) (int64, bool) {
	if off >= h.f.size {
		return 0, true
	}
	if off+n > h.f.size {
		return h.f.size - off, true
	}
	return n, false
}

func (h *handle) Size() (int64, error) {
	if err := h.check(); err != nil {
		return 0, err
	}
	return h.f.size, nil
}

func (h *handle) Truncate(size int64) error {
	if err := h.check(); err != nil {
		return err
	}
	fs, f := h.v.fs, h.f
	fs.used -= f.allocated()
	f.truncateTo(size)
	fs.used += f.allocated()
	return nil
}

// Sync makes this file's pending volatile writes durable (whole-file, like
// an OS page-cache flush: it also promotes other handles' unsynced writes
// to the same file). Subject to FailWritesAfter injection.
func (h *handle) Sync() error {
	if err := h.check(); err != nil {
		return err
	}
	fs, f := h.v.fs, h.f
	if fs.failWrites == 0 {
		return fmt.Errorf("simfs: %s: injected sync failure", f.name)
	}
	if fs.failWrites > 0 {
		fs.failWrites--
	}
	if fs.volatile {
		for idx, pg := range f.vpages {
			f.pages[idx] = pg
		}
		f.vpages = nil
		if f.vsize > f.size {
			f.size = f.vsize
		}
	}
	return nil
}

func (h *handle) Close() error {
	if h.closed {
		return nil
	}
	h.closed = true
	// The first writer to close a dirty file flushes its size/attribute
	// update through the metadata service — once per file, so tens of
	// thousands of task-local files pay tens of thousands of updates while
	// a few multifile segments pay a handful (Table 2's bandwidth edge).
	if h.wrote && h.f.dirtySize && h.v.proc != nil && !h.f.removed {
		h.f.dirtySize = false
		h.v.fs.dirOf(h.f.name).srv.Use(h.v.proc, h.v.fs.prof.CloseUpdate)
	}
	return nil
}

// addExtentProbe returns how many bytes addExtent would newly allocate.
// The extent list is sorted and disjoint, so a binary search locates the
// first extent that can overlap [off, end) and the scan stops at the
// first one past it — O(log n + k) for k overlapping extents, where the
// old full scan was O(n) per write and dominated long simulated runs.
func (f *file) addExtentProbe(off, end int64) int64 {
	es := f.extents
	i := sort.Search(len(es), func(i int) bool { return es[i].end > off })
	var overlap int64
	for ; i < len(es) && es[i].off < end; i++ {
		lo, hi := max64(es[i].off, off), min64(es[i].end, end)
		if hi > lo {
			overlap += hi - lo
		}
	}
	return (end - off) - overlap
}

// storePages writes real content into the sparse page map — or, in
// volatile mode, into the file's overlay (copy-on-first-touch from the
// durable page) so the bytes become visible to readers only after Sync.
func (h *handle) storePages(p []byte, off int64) {
	f := h.f
	volatile := h.v.fs.volatile
	for len(p) > 0 {
		idx := off / pageSize
		po := off % pageSize
		c := int64(len(p))
		if c > pageSize-po {
			c = pageSize - po
		}
		var pg []byte
		if volatile {
			if f.vpages == nil {
				f.vpages = make(map[int64][]byte)
			}
			if pg = f.vpages[idx]; pg == nil {
				pg = make([]byte, pageSize)
				if dp := f.pages[idx]; dp != nil {
					copy(pg, dp)
				}
				f.vpages[idx] = pg
			}
		} else {
			if pg = f.pages[idx]; pg == nil {
				pg = make([]byte, pageSize)
				f.pages[idx] = pg
			}
		}
		copy(pg[po:po+c], p[:c])
		p = p[c:]
		off += c
	}
}

// loadPages reads real content from the sparse page map (zeros elsewhere).
func (h *handle) loadPages(p []byte, off int64) {
	f := h.f
	for len(p) > 0 {
		idx := off / pageSize
		po := off % pageSize
		c := int64(len(p))
		if c > pageSize-po {
			c = pageSize - po
		}
		if pg := f.pages[idx]; pg != nil {
			copy(p[:c], pg[po:po+c])
		} else {
			for i := int64(0); i < c; i++ {
				p[i] = 0
			}
		}
		p = p[c:]
		off += c
	}
}

// meter charges virtual time for an n-byte transfer at off.
func (h *handle) meter(n, off int64, isWrite bool) {
	p := h.v.proc
	if p == nil || n == 0 {
		return
	}
	fs, f, prof := h.v.fs, h.f, h.v.fs.prof
	now := p.Now()
	bs := prof.FSBlockSize

	// 1. Block lock tokens (GPFS-style): stealing a block whose previous
	// writer/reader owner differs serializes through the token manager.
	revoke := prof.LockRevokeWrite
	if !isWrite {
		revoke = prof.LockRevokeRead
	}
	if revoke > 0 {
		first, last := off/bs, (off+n-1)/bs
		for b := first; b <= last; b++ {
			owner, owned := f.blockOwner[b]
			if owned && owner != h.v.task {
				fs.token.Use(p, revoke)
			}
			if isWrite {
				f.blockOwner[b] = h.v.task
			} else if owned && owner != h.v.task {
				// The read token demotes the previous writer's exclusive
				// hold; later reads of the block by others are free.
				f.blockOwner[b] = h.v.task
			}
		}
		now = p.Now()
	}

	// Data moves at file-system block granularity (GPFS-style whole-block
	// write-behind / readahead): the first touch of a block pays the whole
	// block, later touches ride the cached copy. A 52-byte-per-task
	// checkpoint therefore still costs one block per task (the floor the
	// paper observes in Fig. 6), while small sequential appends coalesce
	// as in a real page cache.
	charged := f.chargedW
	if !isWrite {
		charged = f.chargedR
	}
	var costBytes float64
	for b := off / bs; b <= (off+n-1)/bs; b++ {
		if !charged[b] {
			charged[b] = true
			costBytes += float64(bs)
		}
	}
	if costBytes == 0 {
		costBytes = float64(n) // rewrite/reread of already-charged blocks
	}

	// 2. Client link (I/O node / NIC shared by TasksPerClient tasks).
	lat := prof.WriteLatency
	if !isWrite {
		lat = prof.ReadLatency
	}
	cliEnd := fs.client(h.v.task).Reserve(now, costBytes/prof.ClientBW)

	srvBW := prof.ServerBW
	if !isWrite {
		srvBW *= prof.ReadBWFactor
		srvBW /= f.readScale(fs)
	}

	// 3. Per-file allocation/token pipe. A single file cannot drive the
	// whole server array: its achievable rate follows the stripe-coverage
	// curve Btot·(1−(1−w/S)ⁿ)/n for n active files of stripe width w over
	// S servers (the paper's Fig. 4 shapes; the paper itself attributes
	// the single-file limit to "the striping layout used by the GPFS file
	// server" without a deeper mechanism, so we model the observed curve).
	end := cliEnd
	nact := fs.active
	if nact < 1 {
		nact = 1
	}
	cfrac := float64(f.stripeCount) / float64(prof.NServers)
	if cfrac > 1 {
		cfrac = 1
	}
	coverage := 1 - math.Pow(1-cfrac, float64(nact))
	fileRate := float64(prof.NServers) * srvBW * coverage / float64(nact)
	if e := f.token.Reserve(now, costBytes/fileRate); e > end {
		end = e
	}

	// 4. Data servers: blocks are spread round-robin over the whole array
	// (balanced, GPFS-like); the array is the 6/40 GB/s aggregate cap.
	perSrv := costBytes / float64(prof.NServers) / srvBW
	for si, srv := range fs.servers {
		dur := perSrv
		if isWrite && !f.objInit && si == fs.homeServer(f.name) {
			dur += prof.ObjInit
		}
		if e := srv.Reserve(now, dur); e > end {
			end = e
		}
	}
	if isWrite {
		f.objInit = true
	}
	p.AdvanceTo(end + lat)
}

// readScale returns the divisor applied to server read bandwidth:
// >1 speeds reads up (cache, dedicated-file readahead), <1 slows them.
func (f *file) readScale(fs *FS) float64 {
	prof := fs.prof
	scale := 1.0
	// Client read cache: fraction of the data set resident in the
	// aggregate cache of the clients that wrote it.
	if prof.CacheBoost > 0 && f.written > 0 && len(f.writerCli) > 0 {
		agg := float64(len(f.writerCli)) * prof.ClientCacheBytes
		frac := agg / float64(f.written)
		if frac > 1 {
			frac = 1
		}
		scale *= 1 - prof.CacheBoost*frac
	}
	// Dedicated-file readahead: helps at low file-per-server counts,
	// thrashes at high ones.
	if prof.ExclusiveReadFactor != 0 && prof.ExclusiveReadFactor != 1 && f.soleWriter >= 0 {
		crowd := float64(fs.NumFiles()) / float64(prof.NServers)
		fct := prof.ExclusiveReadFactor
		if crowd > 1 {
			fct += prof.ReadCrowdPenalty * math.Log2(crowd)
		}
		scale *= fct
	}
	if scale <= 0.05 {
		scale = 0.05
	}
	return scale
}
