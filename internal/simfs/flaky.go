package simfs

// Flaky-fault injection: the transient half of the failure lab. The crash
// lab (SetVolatileWrites / FailWritesAfter / Crash) models a node dying;
// Flaky models the parallel file system *misbehaving under load* — the
// paper's premise at 10^5–10^6 ranks is that sporadic EIO/EAGAIN, busy
// metadata servers, and latency spikes are normal operating conditions the
// I/O layer must absorb, not surface to every client at once.
//
// Flaky is an fsio.FileSystem decorator, not an FS feature: one seeded
// Flaky instance carries all injection state and wraps any backend — a
// metered simfs View, a serial nil-proc View, or the real OS file system
// in property tests. Every injected failure wraps fsio.ErrTransient, so
// the classification contract documented on fsio.FileSystem holds and
// internal/resil retries exactly the injected faults.
//
// Determinism: every injection decision is a pure function of the seed and
// the global operation index (a splitmix64 stream), so a single-threaded
// run — every simulation, every experiment — replays bit-identically from
// its seed. Under real concurrency (e.g. wrapping the OS file system in a
// property test) the decision stream is still seeded but the assignment of
// decisions to operations follows the goroutine schedule.

import (
	"fmt"
	"path"
	"sync"

	"repro/internal/fsio"
)

// FlakyConfig parameterizes a Flaky fault model. Probabilities are per
// operation in [0, 1]; zero values inject nothing.
type FlakyConfig struct {
	// Seed drives the deterministic decision stream.
	Seed uint64

	// ReadErrProb is the transient-failure probability of one read
	// operation (ReadAt, ReadDiscardAt).
	ReadErrProb float64
	// WriteErrProb is the transient-failure probability of one write-side
	// operation (WriteAt, WriteZeroAt, Sync, Truncate).
	WriteErrProb float64
	// MetaErrProb is the transient-failure probability of one namespace
	// operation (Create, Open, OpenRW, Stat, Remove, Size).
	MetaErrProb float64

	// LatencyProb is the probability that an operation additionally pays a
	// latency spike of LatencySecs (delivered through the Wrap sleep hook;
	// wraps with a nil hook count spikes but do not sleep).
	LatencyProb float64
	// LatencySecs is the spike duration in seconds (virtual seconds when
	// the sleep hook advances a vtime clock).
	LatencySecs float64
}

// FlakyStats counts what a Flaky instance has done so far.
type FlakyStats struct {
	Ops      int64 // operations that consulted the fault model
	Injected int64 // operations failed with a transient error
	Spikes   int64 // latency spikes delivered
}

// flakyWindow is one per-file deterministic fail window: operations on the
// file whose per-file op index falls in [from, to) fail transiently.
type flakyWindow struct{ from, to int64 }

// Flaky is a seeded transient-fault model shared by every file system it
// wraps. All methods are safe for concurrent use.
type Flaky struct {
	mu      sync.Mutex
	cfg     FlakyConfig
	enabled bool
	ctr     uint64           // global op index (the decision stream position)
	fileOps map[string]int64 // per-file op index (fail-window clock)
	windows map[string][]flakyWindow
	stats   FlakyStats
}

// NewFlaky builds an enabled fault model with the given configuration.
func NewFlaky(cfg FlakyConfig) *Flaky {
	return &Flaky{
		cfg:     cfg,
		enabled: true,
		fileOps: make(map[string]int64),
		windows: make(map[string][]flakyWindow),
	}
}

// SetEnabled toggles all injection (probabilities, windows, and spikes)
// without losing counters or window definitions.
func (f *Flaky) SetEnabled(on bool) {
	f.mu.Lock()
	f.enabled = on
	f.mu.Unlock()
}

// FailWindow makes operations on the named file fail transiently while the
// file's own operation counter is in [from, to) — a deterministic per-file
// outage regardless of the probability knobs. Windows accumulate; see
// ClearWindows.
func (f *Flaky) FailWindow(name string, from, to int64) {
	name = path.Clean(name)
	f.mu.Lock()
	f.windows[name] = append(f.windows[name], flakyWindow{from, to})
	f.mu.Unlock()
}

// FileOps reports how many operations the named file has performed against
// the fault model (the clock FailWindow is expressed in).
func (f *Flaky) FileOps(name string) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fileOps[path.Clean(name)]
}

// ClearWindows removes every fail window (the outage ends immediately).
func (f *Flaky) ClearWindows() {
	f.mu.Lock()
	f.windows = make(map[string][]flakyWindow)
	f.mu.Unlock()
}

// Stats returns a snapshot of the injection counters.
func (f *Flaky) Stats() FlakyStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Wrap decorates inner with this fault model. sleep, when non-nil, is
// called to deliver latency spikes (pass a proc-advancing closure in
// simulations, time.Sleep-based in real deployments, nil to ignore
// spikes). Several Wraps may share one Flaky: they draw from the same
// decision stream and the same per-file window clocks.
func (f *Flaky) Wrap(inner fsio.FileSystem, sleep func(seconds float64)) fsio.FileSystem {
	return &flakyFS{f: f, inner: inner, sleep: sleep}
}

// splitmix64 is the decision-stream generator (same constants as the
// reference implementation); one output per operation.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

type opKind int

const (
	opRead opKind = iota
	opWrite
	opMeta
)

// decide consumes one decision-stream position for an operation on the
// named file and returns the spike to sleep (seconds) and the error to
// inject, if any.
func (f *Flaky) decide(kind opKind, name string) (spike float64, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.enabled {
		return 0, nil
	}
	f.stats.Ops++
	fops := f.fileOps[name]
	f.fileOps[name] = fops + 1
	r := splitmix64(f.cfg.Seed + f.ctr)
	f.ctr++

	inWindow := false
	for _, w := range f.windows[name] {
		if fops >= w.from && fops < w.to {
			inWindow = true
			break
		}
	}
	prob := 0.0
	switch kind {
	case opRead:
		prob = f.cfg.ReadErrProb
	case opWrite:
		prob = f.cfg.WriteErrProb
	case opMeta:
		prob = f.cfg.MetaErrProb
	}
	// Two independent draws from one 64-bit output: the low 52 bits pick
	// the failure, the spike draw reuses the word shifted (cheap, and the
	// stream position stays one-per-op so runs replay from the seed).
	u := float64(r&((1<<52)-1)) / float64(uint64(1)<<52)
	if inWindow || u < prob {
		f.stats.Injected++
		flavor := "EIO"
		if r&(1<<52) != 0 {
			flavor = "EAGAIN"
		}
		return 0, fmt.Errorf("simfs: %s: injected transient %s (flaky op %d): %w",
			name, flavor, fops, fsio.ErrTransient)
	}
	if f.cfg.LatencyProb > 0 {
		us := float64(splitmix64(r)&((1<<52)-1)) / float64(uint64(1)<<52)
		if us < f.cfg.LatencyProb {
			f.stats.Spikes++
			return f.cfg.LatencySecs, nil
		}
	}
	return 0, nil
}

// check runs one operation's fault decision, delivering any spike through
// the wrap's sleep hook.
func (w *flakyFS) check(kind opKind, name string) error {
	spike, err := w.f.decide(kind, name)
	if spike > 0 && w.sleep != nil {
		w.sleep(spike)
	}
	return err
}

// flakyFS is one Wrap of a Flaky around a backend.
type flakyFS struct {
	f     *Flaky
	inner fsio.FileSystem
	sleep func(float64)
}

var _ fsio.FileSystem = (*flakyFS)(nil)

func (w *flakyFS) Create(name string) (fsio.File, error) {
	name = path.Clean(name)
	if err := w.check(opMeta, name); err != nil {
		return nil, err
	}
	fh, err := w.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &flakyFile{w: w, inner: fh, name: name}, nil
}

func (w *flakyFS) Open(name string) (fsio.File, error) {
	name = path.Clean(name)
	if err := w.check(opMeta, name); err != nil {
		return nil, err
	}
	fh, err := w.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &flakyFile{w: w, inner: fh, name: name}, nil
}

func (w *flakyFS) OpenRW(name string) (fsio.File, error) {
	name = path.Clean(name)
	if err := w.check(opMeta, name); err != nil {
		return nil, err
	}
	fh, err := w.inner.OpenRW(name)
	if err != nil {
		return nil, err
	}
	return &flakyFile{w: w, inner: fh, name: name}, nil
}

func (w *flakyFS) Stat(name string) (fsio.FileInfo, error) {
	name = path.Clean(name)
	if err := w.check(opMeta, name); err != nil {
		return fsio.FileInfo{}, err
	}
	return w.inner.Stat(name)
}

func (w *flakyFS) Remove(name string) error {
	name = path.Clean(name)
	if err := w.check(opMeta, name); err != nil {
		return err
	}
	return w.inner.Remove(name)
}

// BlockSize has no error path and is never flaky.
func (w *flakyFS) BlockSize(name string) int64 { return w.inner.BlockSize(name) }

// Unwrap exposes the decorated backend so optional interfaces
// (fsio.CapabilityReporter, future extensions) survive fault injection;
// see fsio.As.
func (w *flakyFS) Unwrap() fsio.FileSystem { return w.inner }

// flakyFile intercepts the data path of one open handle. Close is never
// flaky: a transient Close failure is not meaningfully retryable (the
// handle is gone either way), so injecting there would only test the
// injector.
type flakyFile struct {
	w     *flakyFS
	inner fsio.File
	name  string
}

var _ fsio.File = (*flakyFile)(nil)

func (h *flakyFile) ReadAt(p []byte, off int64) (int, error) {
	if err := h.w.check(opRead, h.name); err != nil {
		return 0, err
	}
	return h.inner.ReadAt(p, off)
}

func (h *flakyFile) ReadDiscardAt(n, off int64) (int64, error) {
	if err := h.w.check(opRead, h.name); err != nil {
		return 0, err
	}
	return h.inner.ReadDiscardAt(n, off)
}

func (h *flakyFile) WriteAt(p []byte, off int64) (int, error) {
	if err := h.w.check(opWrite, h.name); err != nil {
		return 0, err
	}
	return h.inner.WriteAt(p, off)
}

func (h *flakyFile) WriteZeroAt(n, off int64) error {
	if err := h.w.check(opWrite, h.name); err != nil {
		return err
	}
	return h.inner.WriteZeroAt(n, off)
}

func (h *flakyFile) Truncate(size int64) error {
	if err := h.w.check(opWrite, h.name); err != nil {
		return err
	}
	return h.inner.Truncate(size)
}

func (h *flakyFile) Sync() error {
	if err := h.w.check(opWrite, h.name); err != nil {
		return err
	}
	return h.inner.Sync()
}

func (h *flakyFile) Size() (int64, error) {
	if err := h.w.check(opMeta, h.name); err != nil {
		return 0, err
	}
	return h.inner.Size()
}

func (h *flakyFile) Close() error { return h.inner.Close() }
