package simfs

import "testing"

func TestProfilesInternallyConsistent(t *testing.T) {
	for _, p := range []*Profile{Jugene(), Jaguar()} {
		if p.FSBlockSize <= 0 || p.NServers <= 0 || p.ServerBW <= 0 {
			t.Fatalf("%s: degenerate data path %+v", p.Name, p)
		}
		if p.DefaultStripeCount < 1 || p.DefaultStripeCount > p.NServers {
			t.Fatalf("%s: stripe count %d outside 1..%d", p.Name, p.DefaultStripeCount, p.NServers)
		}
		if p.CreateBase <= p.OpenBase {
			t.Fatalf("%s: creating must cost more than opening", p.Name)
		}
		if p.TasksPerClient < 1 || p.ClientBW <= 0 {
			t.Fatalf("%s: degenerate client path", p.Name)
		}
	}
}

func TestJugeneMatchesPaperHardware(t *testing.T) {
	p := Jugene()
	if p.FSBlockSize != 2<<20 {
		t.Fatalf("GPFS block size %d, paper says 2 MB", p.FSBlockSize)
	}
	// 6 GB/s aggregate (paper §4: "maximum bandwidth ... is 6 GB/s").
	agg := float64(p.NServers) * p.ServerBW
	if agg < 5.9e9 || agg > 6.1e9 {
		t.Fatalf("aggregate bandwidth %.2e, want ≈6 GB/s", agg)
	}
	if p.LockRevokeWrite <= 0 {
		t.Fatal("GPFS block-lock revocation must cost time (Table 1)")
	}
}

func TestJaguarMatchesPaperHardware(t *testing.T) {
	p := Jaguar()
	if p.NServers != 72 {
		t.Fatalf("OST count %d, paper says 72", p.NServers)
	}
	agg := float64(p.NServers) * p.ServerBW
	if agg < 39e9 || agg > 41e9 {
		t.Fatalf("aggregate bandwidth %.2e, want ≈40 GB/s", agg)
	}
	if p.DefaultStripeCount != 4 {
		t.Fatalf("default stripe count %d, paper says 4", p.DefaultStripeCount)
	}
	if p.LockRevokeWrite != 0 {
		t.Fatal("paper: alignment effect not confirmed on Lustre")
	}
	if p.CacheBoost <= 0 {
		t.Fatal("Jaguar reads must be cache-boostable (Fig. 5b)")
	}
}

func TestCreateCostGrowsWithDirectorySize(t *testing.T) {
	p := Jugene()
	if p.createCost(100000) <= p.createCost(10) {
		t.Fatal("create cost must grow with directory size")
	}
	if p.createCost(0) != p.CreateBase {
		t.Fatal("empty directory must cost the base")
	}
}

func TestClientOf(t *testing.T) {
	p := Jugene()
	if p.clientOf(0) != 0 || p.clientOf(p.TasksPerClient) != 1 {
		t.Fatal("client mapping broken")
	}
	q := &Profile{TasksPerClient: 1}
	if q.clientOf(17) != 17 {
		t.Fatal("1 task/client must map identity")
	}
}
