package simfs

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/fsio"
)

// flakyTrace runs a fixed op script against a fresh Flaky-wrapped FS and
// returns a replayable transcript of which ops failed.
func flakyTrace(t *testing.T, cfg FlakyConfig, ops int) string {
	t.Helper()
	fs := New(Jugene())
	fl := NewFlaky(cfg)
	w := fl.Wrap(fs.View(1, nil), nil)
	out := ""
	f, err := w.Create("a")
	for f == nil {
		if !errors.Is(err, fsio.ErrTransient) {
			t.Fatalf("Create: %v", err)
		}
		out += "C!"
		f, err = w.Create("a")
	}
	buf := []byte("payload")
	for i := 0; i < ops; i++ {
		var err error
		if i%2 == 0 {
			_, err = f.WriteAt(buf, int64(i))
		} else {
			_, err = f.ReadAt(buf, 0)
		}
		if err == nil {
			out += "."
		} else if errors.Is(err, fsio.ErrTransient) {
			out += "!"
		} else {
			t.Fatalf("op %d: unexpected permanent error %v", i, err)
		}
	}
	return out
}

func TestFlakyDeterministicFromSeed(t *testing.T) {
	cfg := FlakyConfig{Seed: 42, ReadErrProb: 0.3, WriteErrProb: 0.3, MetaErrProb: 0.3}
	a := flakyTrace(t, cfg, 200)
	b := flakyTrace(t, cfg, 200)
	if a != b {
		t.Fatalf("same seed produced different fault schedules:\n%s\n%s", a, b)
	}
	c := flakyTrace(t, FlakyConfig{Seed: 43, ReadErrProb: 0.3, WriteErrProb: 0.3, MetaErrProb: 0.3}, 200)
	if a == c {
		t.Fatalf("different seeds produced identical 200-op fault schedules")
	}
	wantFails := 0
	for _, ch := range a {
		if ch == '!' {
			wantFails++
		}
	}
	if wantFails == 0 {
		t.Fatalf("p=0.3 over 200 ops injected nothing: %s", a)
	}
}

func TestFlakyZeroProbInjectsNothing(t *testing.T) {
	fl := NewFlaky(FlakyConfig{Seed: 7})
	fs := New(Jugene())
	w := fl.Wrap(fs.View(1, nil), nil)
	f, err := w.Create("clean")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < 500; i++ {
		if _, err := f.WriteAt([]byte{1, 2, 3}, int64(3*i)); err != nil {
			t.Fatalf("WriteAt %d: %v", i, err)
		}
	}
	st := fl.Stats()
	if st.Injected != 0 || st.Spikes != 0 {
		t.Fatalf("zero-prob config injected: %+v", st)
	}
	if st.Ops == 0 {
		t.Fatalf("fault model was never consulted")
	}
}

func TestFlakyDisabled(t *testing.T) {
	fl := NewFlaky(FlakyConfig{Seed: 1, ReadErrProb: 1, WriteErrProb: 1, MetaErrProb: 1})
	fl.SetEnabled(false)
	fs := New(Jugene())
	w := fl.Wrap(fs.View(1, nil), nil)
	f, err := w.Create("off")
	if err != nil {
		t.Fatalf("Create with injection disabled: %v", err)
	}
	if _, err := f.WriteAt([]byte("x"), 0); err != nil {
		t.Fatalf("WriteAt with injection disabled: %v", err)
	}
	fl.SetEnabled(true)
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, fsio.ErrTransient) {
		t.Fatalf("p=1 write after re-enable: got %v, want transient", err)
	}
}

func TestFlakyFailWindow(t *testing.T) {
	fl := NewFlaky(FlakyConfig{Seed: 9})
	fs := New(Jugene())
	w := fl.Wrap(fs.View(1, nil), nil)

	fa, err := w.Create("a") // a: op 0
	if err != nil {
		t.Fatalf("Create a: %v", err)
	}
	fb, err := w.Create("b") // b: op 0
	if err != nil {
		t.Fatalf("Create b: %v", err)
	}

	// Ops 3..6 on "a" fail; "b" is untouched throughout.
	fl.FailWindow("a", 3, 6)
	for i := 1; ; i++ {
		_, errA := fa.WriteAt([]byte("A"), int64(i))
		if _, errB := fb.WriteAt([]byte("B"), int64(i)); errB != nil {
			t.Fatalf("window on a leaked to b at op %d: %v", i, errB)
		}
		inWin := i >= 3 && i < 6
		if inWin && !errors.Is(errA, fsio.ErrTransient) {
			t.Fatalf("a op %d inside window succeeded (err=%v)", i, errA)
		}
		if !inWin && errA != nil {
			t.Fatalf("a op %d outside window failed: %v", i, errA)
		}
		if i >= 8 {
			break
		}
	}
	if got := fl.FileOps("a"); got != 9 {
		t.Fatalf("FileOps(a) = %d, want 9", got)
	}

	// ClearWindows lifts an active outage immediately.
	fl.FailWindow("a", 0, 1<<40)
	if _, err := fa.WriteAt([]byte("A"), 99); !errors.Is(err, fsio.ErrTransient) {
		t.Fatalf("open-ended window did not fail op: %v", err)
	}
	fl.ClearWindows()
	if _, err := fa.WriteAt([]byte("A"), 100); err != nil {
		t.Fatalf("write after ClearWindows: %v", err)
	}
}

func TestFlakyLatencySpikes(t *testing.T) {
	fl := NewFlaky(FlakyConfig{Seed: 11, LatencyProb: 1, LatencySecs: 0.25})
	fs := New(Jugene())
	var slept float64
	w := fl.Wrap(fs.View(1, nil), func(s float64) { slept += s })
	f, err := w.Create("slow")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < 4; i++ {
		if _, err := f.WriteAt([]byte("z"), int64(i)); err != nil {
			t.Fatalf("WriteAt: %v", err)
		}
	}
	// Create + 4 writes = 5 ops, each spiking 0.25s.
	if want := 5 * 0.25; slept != want {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	if st := fl.Stats(); st.Spikes != 5 {
		t.Fatalf("Spikes = %d, want 5", st.Spikes)
	}
}

// TestFlakyErrorsAreTransient pins the classification contract: every
// injected error — probability or window, any op kind — wraps
// fsio.ErrTransient and mentions an errno flavor.
func TestFlakyErrorsAreTransient(t *testing.T) {
	fl := NewFlaky(FlakyConfig{Seed: 3, ReadErrProb: 1, WriteErrProb: 1, MetaErrProb: 1})
	fs := New(Jugene())
	w := fl.Wrap(fs.View(1, nil), nil)
	if _, err := w.Create("x"); !errors.Is(err, fsio.ErrTransient) {
		t.Fatalf("Create: %v not transient", err)
	}
	fl.SetEnabled(false)
	f, err := w.Create("x")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	fl.SetEnabled(true)
	cases := []struct {
		op  string
		err func() error
	}{
		{"ReadAt", func() error { _, e := f.ReadAt(make([]byte, 1), 0); return e }},
		{"ReadDiscardAt", func() error { _, e := f.ReadDiscardAt(1, 0); return e }},
		{"WriteAt", func() error { _, e := f.WriteAt([]byte("y"), 0); return e }},
		{"WriteZeroAt", func() error { return f.WriteZeroAt(1, 0) }},
		{"Truncate", func() error { return f.Truncate(4) }},
		{"Sync", func() error { return f.Sync() }},
		{"Size", func() error { _, e := f.Size(); return e }},
		{"Stat", func() error { _, e := w.Stat("x"); return e }},
		{"Remove", func() error { return w.Remove("x") }},
	}
	for _, tc := range cases {
		err := tc.err()
		if !errors.Is(err, fsio.ErrTransient) {
			t.Errorf("%s: %v does not wrap ErrTransient", tc.op, err)
			continue
		}
		msg := fmt.Sprint(err)
		if !contains(msg, "EIO") && !contains(msg, "EAGAIN") {
			t.Errorf("%s: error %q names no errno flavor", tc.op, msg)
		}
	}
	// Close is exempt by design.
	if err := f.Close(); err != nil {
		t.Fatalf("Close must not be flaky: %v", err)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
