package simfs

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fsio"
	"repro/internal/vtime"
)

// serialView returns a cost-free view for data-correctness tests.
func serialView(fs *FS) *View { return fs.View(0, nil) }

func TestCreateWriteReadRoundTrip(t *testing.T) {
	fs := New(Jugene())
	v := serialView(fs)
	f, err := v.Create("dir/a.sion")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("the quick brown fox")
	if _, err := f.WriteAt(data, 12345); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 12345); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
	if sz, _ := f.Size(); sz != 12345+int64(len(data)) {
		t.Fatalf("size = %d", sz)
	}
}

func TestReadUnwrittenIsZero(t *testing.T) {
	fs := New(Jugene())
	f, _ := serialView(fs).Create("x")
	f.WriteZeroAt(1, 999999) // extend size without content
	b := []byte{1, 2, 3}
	if _, err := f.ReadAt(b, 100); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0 || b[1] != 0 || b[2] != 0 {
		t.Fatalf("unwritten read = %v", b)
	}
}

func TestReadPastEOF(t *testing.T) {
	fs := New(Jugene())
	f, _ := serialView(fs).Create("x")
	f.WriteAt([]byte("abc"), 0)
	b := make([]byte, 10)
	n, err := f.ReadAt(b, 1)
	if n != 2 || err != io.EOF {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if string(b[:2]) != "bc" {
		t.Fatalf("got %q", b[:2])
	}
	n2, err := f.ReadDiscardAt(100, 0)
	if n2 != 3 || err != nil {
		t.Fatalf("discard n=%d err=%v", n2, err)
	}
}

func TestOpenMissing(t *testing.T) {
	fs := New(Jugene())
	if _, err := serialView(fs).Open("nope"); !errors.Is(err, fsio.ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
}

func TestCreateTruncatesExisting(t *testing.T) {
	fs := New(Jugene())
	v := serialView(fs)
	f, _ := v.Create("x")
	f.WriteAt([]byte("hello"), 0)
	f.Close()
	g, _ := v.Create("x")
	if sz, _ := g.Size(); sz != 0 {
		t.Fatalf("size after truncating create = %d", sz)
	}
	if fs.NumFiles() != 1 {
		t.Fatalf("NumFiles = %d", fs.NumFiles())
	}
}

func TestRemove(t *testing.T) {
	fs := New(Jugene())
	v := serialView(fs)
	f, _ := v.Create("x")
	f.WriteZeroAt(1000, 0)
	if err := v.Remove("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Open("x"); !errors.Is(err, fsio.ErrNotExist) {
		t.Fatalf("open after remove: %v", err)
	}
	if fs.UsedBytes() != 0 {
		t.Fatalf("used = %d after remove", fs.UsedBytes())
	}
	if _, err := f.ReadAt(make([]byte, 1), 0); err == nil {
		t.Fatal("read through removed file's handle succeeded")
	}
}

func TestQuota(t *testing.T) {
	fs := New(Jugene())
	fs.SetQuota(1000)
	f, _ := serialView(fs).Create("x")
	if err := f.WriteZeroAt(900, 0); err != nil {
		t.Fatal(err)
	}
	// Overlapping rewrite allocates nothing new.
	if err := f.WriteZeroAt(900, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteZeroAt(200, 900); !errors.Is(err, fsio.ErrQuota) {
		t.Fatalf("err = %v, want ErrQuota", err)
	}
}

func TestExtentAccounting(t *testing.T) {
	fs := New(Jugene())
	f, _ := serialView(fs).Create("x")
	f.WriteZeroAt(100, 0)
	f.WriteZeroAt(100, 1000) // gap between 100 and 1000
	if fs.UsedBytes() != 200 {
		t.Fatalf("used = %d, want 200 (gap must stay logical)", fs.UsedBytes())
	}
	f.WriteZeroAt(950, 50) // bridges the gap: [0,1100)
	if fs.UsedBytes() != 1100 {
		t.Fatalf("used = %d, want 1100", fs.UsedBytes())
	}
	if err := f.Truncate(500); err != nil {
		t.Fatal(err)
	}
	if fs.UsedBytes() != 500 {
		t.Fatalf("used after truncate = %d, want 500", fs.UsedBytes())
	}
}

// Property: extent bookkeeping equals a brute-force bitmap model.
func TestExtentProperty(t *testing.T) {
	f := func(ops []struct {
		Off  uint16
		Len  uint8
		Trim bool
	}) bool {
		fs := New(Jugene())
		fl, _ := serialView(fs).Create("x")
		model := make(map[int64]bool)
		size := int64(0)
		for _, op := range ops {
			off, n := int64(op.Off), int64(op.Len)
			if op.Trim {
				cut := off % (size + 1)
				fl.Truncate(cut)
				for k := range model {
					if k >= cut {
						delete(model, k)
					}
				}
				size = cut
				continue
			}
			fl.WriteZeroAt(n, off)
			for i := int64(0); i < n; i++ {
				model[off+i] = true
			}
			if n > 0 && off+n > size {
				size = off + n
			}
		}
		sz, _ := fl.Size()
		return fs.UsedBytes() == int64(len(model)) && sz == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: page-sparse content matches a reference byte map under random
// writes and reads.
func TestContentProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	fs := New(Jugene())
	f, _ := serialView(fs).Create("x")
	ref := make([]byte, 1<<18)
	var size int64
	for i := 0; i < 300; i++ {
		off := int64(rng.Intn(len(ref) - 300))
		n := 1 + rng.Intn(299)
		buf := make([]byte, n)
		rng.Read(buf)
		f.WriteAt(buf, off)
		copy(ref[off:], buf)
		if off+int64(n) > size {
			size = off + int64(n)
		}
	}
	for i := 0; i < 300; i++ {
		off := int64(rng.Intn(len(ref) - 300))
		n := 1 + rng.Intn(299)
		got := make([]byte, n)
		r, _ := f.ReadAt(got, off)
		want := ref[off:min64(off+int64(n), size)]
		if !bytes.Equal(got[:r], want) {
			t.Fatalf("mismatch at off=%d n=%d", off, n)
		}
	}
}

// --- Cost-model behaviour ------------------------------------------------

// runTasks runs n simulated tasks against fs and returns the makespan.
func runTasks(fs *FS, n int, body func(task int, v *View, p *vtime.Proc)) float64 {
	e := vtime.NewEngine()
	var end float64
	for i := 0; i < n; i++ {
		i := i
		e.Spawn(0, func(p *vtime.Proc) {
			body(i, fs.View(i, p), p)
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	e.Run()
	return end
}

func TestCreateSerializesInDirectory(t *testing.T) {
	prof := Jugene()
	fs := New(prof)
	t1 := runTasks(fs, 1, func(i int, v *View, p *vtime.Proc) {
		v.Create("d/f0")
	})
	fs2 := New(prof)
	t256 := runTasks(fs2, 256, func(i int, v *View, p *vtime.Proc) {
		v.Create("d/f" + itoa(i))
	})
	if t256 < 200*t1 {
		t.Fatalf("256 parallel creates took %.4fs vs single %.4fs: not serialized", t256, t1)
	}
}

func itoa(i int) string {
	return string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
}

func TestOpenExistingCheaperThanCreate(t *testing.T) {
	prof := Jugene()
	fs := New(prof)
	n := 512
	tCreate := runTasks(fs, n, func(i int, v *View, p *vtime.Proc) {
		v.Create("d/f" + itoa(i))
	})
	fs.DropCaches()
	fs.ResetServers()
	tOpen := runTasks(fs, n, func(i int, v *View, p *vtime.Proc) {
		if _, err := v.Open("d/f" + itoa(i)); err != nil {
			t.Error(err)
		}
	})
	if tOpen >= tCreate/2 {
		t.Fatalf("open %0.3fs not clearly cheaper than create %0.3fs", tOpen, tCreate)
	}
}

func TestSharedOpenCheaperThanDistinctOpens(t *testing.T) {
	prof := Jugene()
	fs := New(prof)
	n := 1024
	runTasks(fs, 1, func(i int, v *View, p *vtime.Proc) {
		v.Create("d/shared")
		for k := 0; k < n; k++ {
			v.Create("d/f" + itoa(k))
		}
	})
	fs.DropCaches()
	fs.ResetServers()
	tShared := runTasks(fs, n, func(i int, v *View, p *vtime.Proc) {
		v.Open("d/shared")
	})
	fs.DropCaches()
	fs.ResetServers()
	tDistinct := runTasks(fs, n, func(i int, v *View, p *vtime.Proc) {
		v.Open("d/f" + itoa(i))
	})
	if tShared > tDistinct/3 {
		t.Fatalf("shared open %0.3fs vs distinct opens %0.3fs: shared should be far cheaper", tShared, tDistinct)
	}
}

// phaseStart is a virtual time safely after all setup (creates/opens) has
// completed; timed I/O phases in the cost-model tests start here so that
// every task begins the measured phase simultaneously, like a barrier.
const phaseStart = 1000.0

// More physical files engage more servers: writing the same volume through
// 16 files must be faster than through 1 file (Fig. 4 mechanism).
func TestMoreFilesMoreBandwidth(t *testing.T) {
	const total = 8 << 30
	prof := Jugene()
	prof.TasksPerClient = 1 // keep the test server-limited, not NIC-limited
	elapsed := func(nfiles int) float64 {
		fs := New(prof)
		ntasks := 64
		var maxEnd float64
		runTasks(fs, ntasks, func(i int, v *View, p *vtime.Proc) {
			name := "d/phys" + itoa(i%nfiles)
			var f fsio.File
			var err error
			if i < nfiles {
				f, err = v.Create(name)
			} else {
				p.Advance(1.0) // let creators go first
				f, err = v.OpenRW(name)
			}
			if err != nil {
				t.Error(err)
				return
			}
			p.AdvanceTo(phaseStart)
			per := int64(total / ntasks)
			f.WriteZeroAt(per, int64(i)*per)
			if e := p.Now() - phaseStart; e > maxEnd {
				maxEnd = e
			}
		})
		return maxEnd
	}
	t1, t16 := elapsed(1), elapsed(16)
	if t16 > t1/1.8 {
		t.Fatalf("16 files %.2fs vs 1 file %.2fs: want ≥1.8x speedup", t16, t1)
	}
}

// Unaligned writers sharing FS blocks must pay lock revocations (Table 1).
func TestBlockLockContention(t *testing.T) {
	prof := Jugene()
	prof.TasksPerClient = 1 // keep the test server-limited, not NIC-limited
	run := func(aligned bool) float64 {
		fs := New(prof)
		const ntasks = 64
		// Contiguous per-task chunks; the unaligned variant is not a
		// multiple of the 2 MB FS block, so neighbours share blocks and
		// every task pays a serialized token revocation, which at this
		// chunk size dominates the data-path time (as in Table 1).
		chunk := int64(2 << 20)
		if !aligned {
			chunk += 16384
		}
		stride := chunk
		var maxEnd float64
		runTasks(fs, ntasks, func(i int, v *View, p *vtime.Proc) {
			var f fsio.File
			var err error
			if i == 0 {
				f, err = v.Create("d/one")
			} else {
				p.Advance(1.0)
				f, err = v.OpenRW("d/one")
			}
			if err != nil {
				t.Error(err)
				return
			}
			p.AdvanceTo(phaseStart)
			f.WriteZeroAt(chunk, int64(i)*stride)
			if e := p.Now() - phaseStart; e > maxEnd {
				maxEnd = e
			}
		})
		return maxEnd
	}
	ta, tu := run(true), run(false)
	if tu < ta*1.2 {
		t.Fatalf("unaligned %.3fs vs aligned %.3fs: contention missing", tu, ta)
	}
}

// The Jaguar profile must not penalize misalignment (paper: effect not
// confirmed on Lustre).
func TestJaguarNoLockPenalty(t *testing.T) {
	if Jaguar().LockRevokeWrite != 0 {
		t.Fatal("Jaguar profile has write-lock revocation cost")
	}
}

func TestStripingOverride(t *testing.T) {
	fs := New(Jaguar())
	fs.SetStriping("d", 64, 8<<20)
	v := serialView(fs)
	v.Create("d/wide")
	v.Create("e/narrow")
	if got := fs.files["d/wide"].stripeCount; got != 64 {
		t.Fatalf("wide stripes = %d", got)
	}
	if got := fs.files["e/narrow"].stripeCount; got != 4 {
		t.Fatalf("narrow stripes = %d (want default 4)", got)
	}
}

// Wider striping must buy a single file more bandwidth (Fig. 4b mechanism).
func TestWiderStripingFasterSingleFile(t *testing.T) {
	elapsed := func(stripe int) float64 {
		prof := Jaguar()
		prof.TasksPerClient = 1
		fs := New(prof)
		fs.SetStriping("d", stripe, 0)
		const ntasks = 32
		var maxEnd float64
		runTasks(fs, ntasks, func(i int, v *View, p *vtime.Proc) {
			var f fsio.File
			var err error
			if i == 0 {
				f, err = v.Create("d/one")
			} else {
				p.Advance(1.0)
				f, err = v.OpenRW("d/one")
			}
			if err != nil {
				t.Error(err)
				return
			}
			p.AdvanceTo(phaseStart)
			per := int64(256 << 20)
			f.WriteZeroAt(per, int64(i)*per)
			if e := p.Now() - phaseStart; e > maxEnd {
				maxEnd = e
			}
		})
		return maxEnd
	}
	narrow, wide := elapsed(4), elapsed(64)
	if wide > narrow/4 {
		t.Fatalf("64-OST stripe %.2fs vs 4-OST %.2fs: want ≥4x speedup", wide, narrow)
	}
}

// Reading data you just wrote on Jaguar must be faster once cached
// (Fig. 5b mechanism). The configuration is server-limited (64 tasks on 16
// client links vs a 4-OST file), where the cache boost is visible.
func TestJaguarReadCacheBoost(t *testing.T) {
	prof := Jaguar()
	const ntasks = 64
	aggReadBW := func(perTask int64) float64 {
		fs := New(prof)
		var maxEnd float64
		runTasks(fs, ntasks, func(i int, v *View, p *vtime.Proc) {
			var f fsio.File
			var err error
			if i == 0 {
				f, err = v.Create("d/x")
			} else {
				p.Advance(1.0)
				f, err = v.OpenRW("d/x")
			}
			if err != nil {
				t.Error(err)
				return
			}
			f.WriteZeroAt(perTask, int64(i)*perTask)
			p.AdvanceTo(phaseStart) // all reads start together
			f.ReadDiscardAt(perTask, int64(i)*perTask)
			if e := p.Now() - phaseStart; e > maxEnd {
				maxEnd = e
			}
		})
		return float64(perTask*ntasks) / maxEnd
	}
	// Small total volume → fully cached; huge volume → mostly uncached.
	small := aggReadBW(64 << 20) // 4 GB total < 32 GB aggregate cache
	big := aggReadBW(4 << 30)    // 256 GB total >> cache
	if small < big*1.05 {
		t.Fatalf("cached read bw %.0f not clearly above uncached %.0f", small, big)
	}
}
