package simfs

import (
	"bytes"
	"testing"

	"repro/internal/fsio"
	"repro/internal/resil"
)

// testObjProfile keeps part/GET sizes tiny so tests exercise the grid.
func testObjProfile() ObjProfile {
	return ObjProfile{
		PartBytes:         1024,
		MaxGetBytes:       4096,
		PreferredGetBytes: 1024,
		WriteFanout:       4,
	}
}

func TestObjStoreWriteLedger(t *testing.T) {
	obj := NewObjStore(testObjProfile())
	fs := obj.Wrap(fsio.NewOS(t.TempDir()), nil)

	fh, err := fs.Create("o")
	if err != nil {
		t.Fatal(err)
	}
	if got := obj.Stats(); got.Puts != 1 {
		t.Fatalf("create: %+v, want 1 initiation PUT", got)
	}

	// Sequential small appends across 4 parts: parts flush eagerly as
	// they complete, 1 PUT per part, no staged copies.
	base := obj.Stats()
	buf := make([]byte, 256)
	for off := int64(0); off < 4096; off += 256 {
		if _, err := fh.WriteAt(buf, off); err != nil {
			t.Fatal(err)
		}
	}
	if err := fh.Sync(); err != nil {
		t.Fatal(err)
	}
	got := obj.Stats()
	if got.Puts-base.Puts != 4 || got.Copies != 0 {
		t.Fatalf("sequential append: %+v (base %+v), want 4 part PUTs, 0 copies", got, base)
	}

	// Rewriting inside a sealed part is a staged copy: GET + PUT.
	base = got
	if _, err := fh.WriteAt(buf, 512); err != nil {
		t.Fatal(err)
	}
	if err := fh.Sync(); err != nil {
		t.Fatal(err)
	}
	got = obj.Stats()
	if got.Copies-base.Copies != 1 || got.Gets-base.Gets != 1 || got.Puts-base.Puts != 1 {
		t.Fatalf("sealed-region rewrite: %+v (base %+v), want 1 staged copy", got, base)
	}

	// A non-contiguous jump flushes the open window at the seam.
	base = got
	if _, err := fh.WriteAt(buf[:100], 8000); err != nil {
		t.Fatal(err)
	}
	if _, err := fh.WriteAt(buf[:100], 9000); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}
	got = obj.Stats()
	// Both writes land in unsealed parts 7 and 8: seam flush + close
	// flush = 2 PUTs, no copies.
	if got.Puts-base.Puts != 2 || got.Copies != base.Copies {
		t.Fatalf("seam flush: %+v (base %+v), want 2 PUTs", got, base)
	}
}

func TestObjStoreReadLedger(t *testing.T) {
	obj := NewObjStore(testObjProfile())
	fs := obj.Wrap(fsio.NewOS(t.TempDir()), nil)
	fh, err := fs.Create("o")
	if err != nil {
		t.Fatal(err)
	}
	if err := fh.WriteZeroAt(10240, 0); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}

	rh, err := fs.Open("o")
	if err != nil {
		t.Fatal(err)
	}
	defer rh.Close()
	base := obj.Stats()
	if base.Heads == 0 {
		t.Fatalf("open issued no HEAD: %+v", base)
	}
	// One 10 KiB read splits into ceil(10240/4096) = 3 ranged GETs.
	if _, err := rh.ReadDiscardAt(10240, 0); err != nil {
		t.Fatal(err)
	}
	if got := obj.Stats(); got.Gets-base.Gets != 3 {
		t.Fatalf("ranged read: %+v (base %+v), want 3 GETs", got, base)
	}
}

// TestObjStoreByteIdentity pins the data-plane contract: bytes written
// through the object-store wrap are exactly the bytes of the inner
// backend.
func TestObjStoreByteIdentity(t *testing.T) {
	dir := t.TempDir()
	inner := fsio.NewOS(dir)
	obj := NewObjStore(testObjProfile())
	fs := obj.Wrap(inner, nil)

	payload := make([]byte, 5000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	fh, err := fs.Create("o")
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(payload); off += 300 {
		end := off + 300
		if end > len(payload) {
			end = len(payload)
		}
		if _, err := fh.WriteAt(payload[off:end], int64(off)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := inner.Open("o")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	got := make([]byte, len(payload))
	if _, err := raw.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("inner backend bytes differ from written payload")
	}
}

// TestStackedDecoratorCaps pins the decorator interface-forwarding fix:
// the backend's capability descriptor must survive every decorator
// stack order (Instrument, resil.Wrap, Flaky, in any nesting), because
// each pass-through decorator exposes Unwrap and fsio.As walks the
// chain.
func TestStackedDecoratorCaps(t *testing.T) {
	dir := t.TempDir()
	obj := NewObjStore(testObjProfile())
	backend := obj.Wrap(fsio.NewOS(dir), nil)
	want := fsio.CapabilitiesOf(backend)
	if want.Backend != "objstore" || want.PartSizeFloor != 1024 {
		t.Fatalf("backend descriptor unexpected: %+v", want)
	}

	fl := NewFlaky(FlakyConfig{Seed: 1})
	fl.SetEnabled(false)
	stacks := map[string]fsio.FileSystem{
		"instrument(resil(flaky(obj)))": fsio.Instrument(
			resil.Wrap(fl.Wrap(backend, nil), resil.Budget{}, nil), fsio.NewMeter(nil, "objstore")),
		"resil(instrument(obj))": resil.Wrap(
			fsio.Instrument(backend, fsio.NewMeter(nil, "objstore")), resil.Budget{}, nil),
		"flaky(resil(obj))": fl.Wrap(resil.Wrap(backend, resil.Budget{}, nil), nil),
	}
	for name, fs := range stacks {
		if got := fsio.CapabilitiesOf(fs); got != want {
			t.Errorf("%s: capabilities %+v, want %+v", name, got, want)
		}
	}

	// The object store is a backend boundary, not a pass-through: the
	// POSIX descriptor of the inner OS backend must NOT leak through it.
	if _, ok := fsio.As[fsio.Unwrapper](backend); ok {
		t.Error("object-store wrap exposes Unwrap; it must answer optional interfaces itself")
	}
}
