// Package mp2c is a miniature stand-in for the paper's MP2C code (§5.1):
// a mesoscopic particle-dynamics simulation with MPI-style domain
// decomposition whose production bottleneck was checkpoint/restart I/O.
//
// Particles carry exactly the paper's record size — 52 bytes each
// (3×float64 position + 3×float64 velocity + uint32 id) — and checkpoints
// can be written three ways, mirroring the paper's comparison:
//
//   - single-file sequential (the original MP2C approach: one designated
//     I/O task gathers batches from all tasks and writes one file),
//   - task-local files (one physical file per task), and
//   - a SIONlib multifile.
package mp2c

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/mpi"
)

// ParticleBytes is the checkpoint record size of one particle; it matches
// the paper's Fig. 6 workload ("52 bytes per particle").
const ParticleBytes = 52

// Particle is one mesoscale particle.
type Particle struct {
	Pos [3]float64
	Vel [3]float64
	ID  uint32
}

// Encode appends the particle's 52-byte checkpoint record to dst.
func (p *Particle) Encode(dst []byte) []byte {
	var buf [ParticleBytes]byte
	le := binary.LittleEndian
	for i := 0; i < 3; i++ {
		le.PutUint64(buf[8*i:], floatBits(p.Pos[i]))
		le.PutUint64(buf[24+8*i:], floatBits(p.Vel[i]))
	}
	le.PutUint32(buf[48:], p.ID)
	return append(dst, buf[:]...)
}

// DecodeParticle parses one 52-byte record.
func DecodeParticle(src []byte) (Particle, error) {
	if len(src) < ParticleBytes {
		return Particle{}, fmt.Errorf("mp2c: short particle record (%d bytes)", len(src))
	}
	var p Particle
	le := binary.LittleEndian
	for i := 0; i < 3; i++ {
		p.Pos[i] = floatFromBits(le.Uint64(src[8*i:]))
		p.Vel[i] = floatFromBits(le.Uint64(src[24+8*i:]))
	}
	p.ID = le.Uint32(src[48:])
	return p, nil
}

// System is the per-task state of a domain-decomposed particle simulation.
// The global domain [0,L)³ is split into equal boxes along a 3-D task
// grid, like MP2C's equal-volume geometrical domains.
type System struct {
	comm      *mpi.Comm
	grid      [3]int
	coord     [3]int
	L         float64 // global edge length
	box       [3][2]float64
	Particles []Particle
	dt        float64
}

// NewSystem creates a system of nPerTask particles per task on a task grid
// derived from the communicator size, deterministically seeded.
func NewSystem(comm *mpi.Comm, nPerTask int, seed int64) *System {
	g := factor3(comm.Size())
	s := &System{comm: comm, grid: g, L: 1.0, dt: 0.01}
	r := comm.Rank()
	s.coord = [3]int{r % g[0], r / g[0] % g[1], r / (g[0] * g[1])}
	for d := 0; d < 3; d++ {
		w := s.L / float64(g[d])
		s.box[d][0] = float64(s.coord[d]) * w
		s.box[d][1] = s.box[d][0] + w
	}
	rng := rand.New(rand.NewSource(seed + int64(r)*7919))
	s.Particles = make([]Particle, nPerTask)
	for i := range s.Particles {
		p := &s.Particles[i]
		for d := 0; d < 3; d++ {
			p.Pos[d] = s.box[d][0] + rng.Float64()*(s.box[d][1]-s.box[d][0])
			p.Vel[d] = rng.NormFloat64() * 0.1
		}
		p.ID = uint32(r*nPerTask + i)
	}
	return s
}

// factor3 splits n into a near-cubic 3-D grid.
func factor3(n int) [3]int {
	best := [3]int{n, 1, 1}
	bestScore := n
	for a := 1; a*a*a <= n; a++ {
		if n%a != 0 {
			continue
		}
		m := n / a
		for b := a; b*b <= m; b++ {
			if m%b != 0 {
				continue
			}
			c := m / b
			if c-a < bestScore {
				bestScore = c - a
				best = [3]int{a, b, c}
			}
		}
	}
	return best
}

// Step advances the simulation: streaming (position update with periodic
// wrap), a cell-local collision step (velocity relaxation toward the cell
// mean, a simplified multi-particle-collision update), and migration of
// particles that left the local box to their new owner task.
func (s *System) Step() {
	for i := range s.Particles {
		p := &s.Particles[i]
		for d := 0; d < 3; d++ {
			p.Pos[d] += p.Vel[d] * s.dt
			for p.Pos[d] < 0 {
				p.Pos[d] += s.L
			}
			for p.Pos[d] >= s.L {
				p.Pos[d] -= s.L
			}
		}
	}
	s.collide()
	s.migrate()
}

// collide relaxes velocities toward the local mean (momentum-conserving).
func (s *System) collide() {
	if len(s.Particles) == 0 {
		return
	}
	var mean [3]float64
	for i := range s.Particles {
		for d := 0; d < 3; d++ {
			mean[d] += s.Particles[i].Vel[d]
		}
	}
	for d := 0; d < 3; d++ {
		mean[d] /= float64(len(s.Particles))
	}
	const alpha = 0.1
	for i := range s.Particles {
		for d := 0; d < 3; d++ {
			v := &s.Particles[i].Vel[d]
			*v = *v + alpha*(mean[d]-*v)
		}
	}
}

// owner returns the rank owning a position.
func (s *System) owner(pos [3]float64) int {
	var c [3]int
	for d := 0; d < 3; d++ {
		c[d] = int(pos[d] / s.L * float64(s.grid[d]))
		if c[d] >= s.grid[d] {
			c[d] = s.grid[d] - 1
		}
		if c[d] < 0 {
			c[d] = 0
		}
	}
	return c[0] + s.grid[0]*(c[1]+s.grid[1]*c[2])
}

// migrate sends particles that left the local box to their owners via an
// all-to-all exchange.
func (s *System) migrate() {
	n := s.comm.Size()
	if n == 1 {
		return
	}
	outgoing := make([][]byte, n)
	kept := s.Particles[:0]
	for i := range s.Particles {
		o := s.owner(s.Particles[i].Pos)
		if o == s.comm.Rank() {
			kept = append(kept, s.Particles[i])
		} else {
			outgoing[o] = s.Particles[i].Encode(outgoing[o])
		}
	}
	s.Particles = kept
	for peer, in := range s.comm.Alltoallv(outgoing) {
		if peer == s.comm.Rank() {
			continue
		}
		for len(in) >= ParticleBytes {
			p, _ := DecodeParticle(in)
			s.Particles = append(s.Particles, p)
			in = in[ParticleBytes:]
		}
	}
}

// EncodeAll serializes the task's particles as checkpoint records.
func (s *System) EncodeAll() []byte {
	out := make([]byte, 0, len(s.Particles)*ParticleBytes)
	for i := range s.Particles {
		out = s.Particles[i].Encode(out)
	}
	return out
}

// DecodeAll replaces the task's particles from checkpoint records.
func (s *System) DecodeAll(data []byte) error {
	if len(data)%ParticleBytes != 0 {
		return fmt.Errorf("mp2c: checkpoint length %d not a record multiple", len(data))
	}
	s.Particles = s.Particles[:0]
	for len(data) > 0 {
		p, err := DecodeParticle(data)
		if err != nil {
			return err
		}
		s.Particles = append(s.Particles, p)
		data = data[ParticleBytes:]
	}
	return nil
}

// --- Checkpoint back-ends -----------------------------------------------------

// CheckpointSION writes the restart file through a SIONlib multifile
// (collective; the paper's integration needed ~50 changed lines).
func CheckpointSION(comm *mpi.Comm, fsys fsio.FileSystem, name string, s *System, nfiles int) error {
	data := s.EncodeAll()
	chunk := int64(len(data))
	if chunk == 0 {
		chunk = ParticleBytes
	}
	f, err := sion.ParOpen(comm, fsys, name, sion.WriteMode, &sion.Options{ChunkSize: chunk, NFiles: nfiles})
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RestartSION reads the restart file back (collective).
func RestartSION(comm *mpi.Comm, fsys fsio.FileSystem, name string, s *System) error {
	f, err := sion.ParOpen(comm, fsys, name, sion.ReadMode, nil)
	if err != nil {
		return err
	}
	defer f.Close()
	var data []byte
	buf := make([]byte, 1<<16)
	for !f.EOF() {
		n, err := f.Read(buf)
		if n > 0 {
			data = append(data, buf[:n]...)
		}
		if err != nil {
			break
		}
	}
	return s.DecodeAll(data)
}

// CheckpointSingleSequential writes the restart file the original MP2C
// way (paper §1, §5.1): a designated I/O task alternates gathering a batch
// of data from the tasks and writing it, bounded by the I/O task's memory
// (batchBytes). The file layout is rank-ordered concatenation.
func CheckpointSingleSequential(comm *mpi.Comm, fsys fsio.FileSystem, name string, s *System, batchBytes int) error {
	const tag = 7100
	data := s.EncodeAll()
	if batchBytes < ParticleBytes {
		batchBytes = ParticleBytes
	}
	if comm.Rank() != 0 {
		// Announce size, then stream batches on request.
		comm.Send(0, tag, encodeI64(int64(len(data))))
		for off := 0; off < len(data); off += batchBytes {
			end := off + batchBytes
			if end > len(data) {
				end = len(data)
			}
			comm.Recv(0, tag+1) // flow control: master asks for the batch
			comm.Send(0, tag+2, data[off:end])
		}
		return nil
	}
	fh, err := fsys.Create(name)
	if err != nil {
		return err
	}
	var off int64
	write := func(b []byte) error {
		if len(b) == 0 {
			return nil
		}
		if _, err := fh.WriteAt(b, off); err != nil {
			return err
		}
		off += int64(len(b))
		return nil
	}
	// Rank 0's own data first, then each task in rank order, batch by
	// batch (gather and write alternate, serializing all I/O).
	if err := write(data); err != nil {
		fh.Close()
		return err
	}
	for r := 1; r < comm.Size(); r++ {
		sz := decodeI64(comm.Recv(r, tag))
		for got := int64(0); got < sz; {
			comm.Send(r, tag+1, nil)
			b := comm.Recv(r, tag+2)
			if err := write(b); err != nil {
				fh.Close()
				return err
			}
			got += int64(len(b))
		}
	}
	return fh.Close()
}

// RestartSingleSequential reads a rank-ordered single file and scatters
// each task's records (the read-side mirror of the original approach).
func RestartSingleSequential(comm *mpi.Comm, fsys fsio.FileSystem, name string, s *System) error {
	const tag = 7200
	mine := int64(len(s.Particles) * ParticleBytes)
	counts := comm.GatherInt64(0, mine)
	if comm.Rank() != 0 {
		return s.DecodeAll(comm.Recv(0, tag))
	}
	fh, err := fsys.Open(name)
	if err != nil {
		return err
	}
	defer fh.Close()
	var off int64
	for r := 0; r < comm.Size(); r++ {
		b := make([]byte, counts[r])
		if _, err := fh.ReadAt(b, off); err != nil {
			return err
		}
		off += counts[r]
		if r == 0 {
			if err := s.DecodeAll(b); err != nil {
				return err
			}
			continue
		}
		comm.Send(r, tag, b)
	}
	return nil
}

// CheckpointTaskLocal writes one physical file per task (the paper's
// "multiple-file parallel" method); pattern must contain %d for the rank.
func CheckpointTaskLocal(comm *mpi.Comm, fsys fsio.FileSystem, pattern string, s *System) error {
	fh, err := fsys.Create(fmt.Sprintf(pattern, comm.Rank()))
	if err != nil {
		return err
	}
	data := s.EncodeAll()
	if _, err := fh.WriteAt(data, 0); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}

// RestartTaskLocal reads one physical file per task.
func RestartTaskLocal(comm *mpi.Comm, fsys fsio.FileSystem, pattern string, s *System) error {
	fh, err := fsys.Open(fmt.Sprintf(pattern, comm.Rank()))
	if err != nil {
		return err
	}
	defer fh.Close()
	sz, err := fh.Size()
	if err != nil {
		return err
	}
	data := make([]byte, sz)
	if _, err := fh.ReadAt(data, 0); err != nil {
		return err
	}
	return s.DecodeAll(data)
}

func encodeI64(v int64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

func decodeI64(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
