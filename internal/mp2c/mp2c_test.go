package mp2c

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/fsio"
	"repro/internal/mpi"
)

func TestParticleEncodeDecodeRoundTrip(t *testing.T) {
	f := func(px, py, pz, vx, vy, vz float64, id uint32) bool {
		p := Particle{Pos: [3]float64{px, py, pz}, Vel: [3]float64{vx, vy, vz}, ID: id}
		enc := p.Encode(nil)
		if len(enc) != ParticleBytes {
			return false
		}
		q, err := DecodeParticle(enc)
		return err == nil && q == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecordSizeMatchesPaper(t *testing.T) {
	if ParticleBytes != 52 {
		t.Fatalf("record size %d, paper says 52 bytes/particle", ParticleBytes)
	}
	var p Particle
	if got := len(p.Encode(nil)); got != 52 {
		t.Fatalf("encoded size %d", got)
	}
}

func TestFactor3(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8, 12, 27, 64, 1000} {
		g := factor3(n)
		if g[0]*g[1]*g[2] != n {
			t.Fatalf("factor3(%d) = %v", n, g)
		}
	}
	if g := factor3(8); g != [3]int{2, 2, 2} {
		t.Fatalf("factor3(8) = %v, want cubic", g)
	}
}

func TestDomainDecompositionOwnership(t *testing.T) {
	mpi.Run(8, func(c *mpi.Comm) {
		s := NewSystem(c, 100, 1)
		for _, p := range s.Particles {
			if s.owner(p.Pos) != c.Rank() {
				t.Errorf("rank %d owns foreign particle at %v", c.Rank(), p.Pos)
			}
		}
	})
}

// Particle count and momentum must be conserved across steps (migration
// must neither lose nor duplicate particles).
func TestStepConservation(t *testing.T) {
	const n, per = 8, 50
	mpi.Run(n, func(c *mpi.Comm) {
		s := NewSystem(c, per, 2)
		var p0 [3]float64
		for _, p := range s.Particles {
			for d := 0; d < 3; d++ {
				p0[d] += p.Vel[d]
			}
		}
		sum0 := c.AllreduceInt64(mpi.OpSum, int64(len(s.Particles)))
		for i := 0; i < 5; i++ {
			s.Step()
		}
		sum1 := c.AllreduceInt64(mpi.OpSum, int64(len(s.Particles)))
		if sum0 != sum1 || sum0 != n*per {
			t.Errorf("particles not conserved: %d -> %d", sum0, sum1)
		}
		// All particles must sit in their owner's box after migration.
		for _, p := range s.Particles {
			if s.owner(p.Pos) != c.Rank() {
				t.Errorf("rank %d holds particle owned by %d", c.Rank(), s.owner(p.Pos))
			}
		}
	})
}

// checkpointRestartIdentical verifies a write+read cycle restores every
// particle exactly, for one back-end pair.
func checkpointRestartIdentical(t *testing.T, name string,
	write func(c *mpi.Comm, fsys fsio.FileSystem, s *System) error,
	read func(c *mpi.Comm, fsys fsio.FileSystem, s *System) error) {
	t.Helper()
	fsys := fsio.NewOS(t.TempDir())
	const n = 6
	mpi.Run(n, func(c *mpi.Comm) {
		s := NewSystem(c, 37+c.Rank(), 3)
		s.Step()
		before := append([]Particle(nil), s.Particles...)
		if err := write(c, fsys, s); err != nil {
			t.Errorf("%s write: %v", name, err)
			return
		}
		s.Particles = nil
		// Restart requires the pre-checkpoint particle counts only for
		// the single-file layout; re-derive state sizes.
		s.Particles = make([]Particle, len(before))
		if err := read(c, fsys, s); err != nil {
			t.Errorf("%s read: %v", name, err)
			return
		}
		if len(s.Particles) != len(before) {
			t.Errorf("%s: %d particles restored, want %d", name, len(s.Particles), len(before))
			return
		}
		sort.Slice(s.Particles, func(i, j int) bool { return s.Particles[i].ID < s.Particles[j].ID })
		sort.Slice(before, func(i, j int) bool { return before[i].ID < before[j].ID })
		for i := range before {
			if s.Particles[i] != before[i] {
				t.Errorf("%s: particle %d differs", name, i)
				return
			}
		}
	})
}

func TestCheckpointRestartSION(t *testing.T) {
	for _, nfiles := range []int{1, 2} {
		nfiles := nfiles
		t.Run(fmt.Sprintf("nfiles=%d", nfiles), func(t *testing.T) {
			checkpointRestartIdentical(t, "sion",
				func(c *mpi.Comm, fsys fsio.FileSystem, s *System) error {
					return CheckpointSION(c, fsys, "restart.sion", s, nfiles)
				},
				func(c *mpi.Comm, fsys fsio.FileSystem, s *System) error {
					return RestartSION(c, fsys, "restart.sion", s)
				})
		})
	}
}

func TestCheckpointRestartSingleSequential(t *testing.T) {
	checkpointRestartIdentical(t, "single-file",
		func(c *mpi.Comm, fsys fsio.FileSystem, s *System) error {
			return CheckpointSingleSequential(c, fsys, "restart.bin", s, 1024)
		},
		func(c *mpi.Comm, fsys fsio.FileSystem, s *System) error {
			return RestartSingleSequential(c, fsys, "restart.bin", s)
		})
}

func TestCheckpointRestartTaskLocal(t *testing.T) {
	checkpointRestartIdentical(t, "task-local",
		func(c *mpi.Comm, fsys fsio.FileSystem, s *System) error {
			return CheckpointTaskLocal(c, fsys, "restart-%d.bin", s)
		},
		func(c *mpi.Comm, fsys fsio.FileSystem, s *System) error {
			return RestartTaskLocal(c, fsys, "restart-%d.bin", s)
		})
}

// The three back-ends must produce byte-identical logical content.
func TestBackendsAgree(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	const n = 4
	mpi.Run(n, func(c *mpi.Comm) {
		s := NewSystem(c, 25, 4)
		if err := CheckpointSION(c, fsys, "a.sion", s, 1); err != nil {
			t.Error(err)
		}
		if err := CheckpointSingleSequential(c, fsys, "b.bin", s, 512); err != nil {
			t.Error(err)
		}
		r1 := NewSystem(c, 25, 99)
		if err := RestartSION(c, fsys, "a.sion", r1); err != nil {
			t.Error(err)
		}
		r2 := NewSystem(c, 25, 98)
		if err := RestartSingleSequential(c, fsys, "b.bin", r2); err != nil {
			t.Error(err)
		}
		for i := range r1.Particles {
			if r1.Particles[i] != r2.Particles[i] {
				t.Errorf("rank %d: backend disagreement at particle %d", c.Rank(), i)
				return
			}
		}
	})
}

func TestCollideConservesMomentum(t *testing.T) {
	mpi.Run(1, func(c *mpi.Comm) {
		s := NewSystem(c, 500, 5)
		var before [3]float64
		for _, p := range s.Particles {
			for d := 0; d < 3; d++ {
				before[d] += p.Vel[d]
			}
		}
		s.collide()
		var after [3]float64
		for _, p := range s.Particles {
			for d := 0; d < 3; d++ {
				after[d] += p.Vel[d]
			}
		}
		for d := 0; d < 3; d++ {
			if math.Abs(before[d]-after[d]) > 1e-9 {
				t.Fatalf("momentum changed: %v -> %v", before, after)
			}
		}
	})
}

func TestSystemDeterministicInit(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		a := NewSystem(c, 20, 7)
		b := NewSystem(c, 20, 7)
		for i := range a.Particles {
			if a.Particles[i] != b.Particles[i] {
				t.Errorf("rank %d: init not deterministic at particle %d", c.Rank(), i)
				return
			}
		}
	})
}

func TestDecodeRejectsBadLengths(t *testing.T) {
	mpi.Run(1, func(c *mpi.Comm) {
		s := NewSystem(c, 1, 1)
		if err := s.DecodeAll(make([]byte, ParticleBytes+1)); err == nil {
			t.Error("odd-length checkpoint accepted")
		}
		if _, err := DecodeParticle(make([]byte, 10)); err == nil {
			t.Error("short record accepted")
		}
	})
}
