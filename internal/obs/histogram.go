package obs

import (
	"math/bits"
	"sync/atomic"
)

// Histogram bucket geometry: powers of two from 2^histMinShift ns (~1µs)
// to 2^histMaxShift ns (~137s), plus an overflow (+Inf) bucket. Log
// spacing keeps the bucket count small (28) while resolving everything
// from a cache-hit memcpy to a backend outage; the scheme is the same
// power-of-two binning HdrHistogram-style recorders use.
const (
	histMinShift = 10 // first bucket upper bound: 2^10 ns = 1.024µs
	histMaxShift = 37 // last finite bound: 2^37 ns ≈ 137.4s
	histBuckets  = histMaxShift - histMinShift + 1
)

// bucketFor returns the index of the bucket whose upper bound is the
// smallest power of two >= ns, clamped to the finite range; values above
// the last finite bound land in the overflow bucket (histBuckets).
func bucketFor(ns int64) int {
	if ns <= 1<<histMinShift {
		return 0
	}
	// smallest s with 2^s >= ns
	s := bits.Len64(uint64(ns - 1))
	if s > histMaxShift {
		return histBuckets
	}
	return s - histMinShift
}

// bucketBound returns the upper bound (in nanoseconds) of finite bucket i.
func bucketBound(i int) int64 { return 1 << (histMinShift + i) }

// Histogram is a fixed-geometry latency histogram. Observations are in
// nanoseconds; exposition converts bounds to seconds. Observe is one
// atomic add per call plus two for the sum/count, safe for concurrent
// use. The zero and nil Histograms are inert.
type Histogram struct {
	off    bool
	counts [histBuckets + 1]atomic.Int64 // per-bucket (non-cumulative); last is overflow
	count  atomic.Int64
	sumNs  atomic.Int64
}

// Observe records one latency in nanoseconds. Negative values clamp to 0.
func (h *Histogram) Observe(ns int64) {
	if h == nil || h.off {
		return
	}
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketFor(ns)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
}

// HistSnapshot is a point-in-time copy of a histogram. Buckets are
// non-cumulative; Bounds[i] is the upper bound of Buckets[i] in
// nanoseconds, and Buckets[len(Bounds)] (the last element) is the
// overflow bucket.
type HistSnapshot struct {
	Buckets [histBuckets + 1]int64
	Count   int64
	SumNs   int64
}

// Snapshot copies the histogram counters. Concurrent observers may land
// between bucket reads, so the sum of Buckets can momentarily trail
// Count by in-flight observations; exposition re-derives count from the
// buckets to keep the output internally consistent.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.SumNs = h.sumNs.Load()
	return s
}

// Quantile estimates the q-th quantile (0 <= q <= 1) in nanoseconds by
// walking the cumulative distribution and interpolating linearly inside
// the winning bucket (between its lower and upper bound; the overflow
// bucket reports the last finite bound). Returns 0 on an empty histogram.
func (s HistSnapshot) Quantile(q float64) int64 {
	total := int64(0)
	for _, c := range s.Buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := int64(0)
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			if i >= histBuckets {
				return bucketBound(histBuckets - 1)
			}
			lo := int64(0)
			if i > 0 {
				lo = bucketBound(i - 1)
			}
			hi := bucketBound(i)
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + int64(frac*float64(hi-lo))
		}
		cum += c
	}
	return bucketBound(histBuckets - 1)
}

// P50 is Quantile(0.50), in nanoseconds.
func (s HistSnapshot) P50() int64 { return s.Quantile(0.50) }

// P95 is Quantile(0.95), in nanoseconds.
func (s HistSnapshot) P95() int64 { return s.Quantile(0.95) }

// P99 is Quantile(0.99), in nanoseconds.
func (s HistSnapshot) P99() int64 { return s.Quantile(0.99) }
