// Package obs is the operational observability core of the serving stack:
// a dependency-free metrics registry (atomic counters, gauges, log-spaced
// latency histograms), a request-scoped trace context with breadcrumbs,
// and a leveled key=value structured logger. Every hot layer — the fsio
// backends, the read-serving tier (internal/serve), and the cluster router
// (internal/cluster) — registers its instrument families here, and the
// HTTP front ends (cmd/sionserve, cmd/sionrouter) expose one registry per
// process as Prometheus text exposition on GET /metrics.
//
// obs is deliberately distinct from internal/trace, which reproduces the
// paper's *artifact*: the Scalasca-style event traces that §5.2 writes
// through SIONlib are application data. obs, by contrast, measures the
// serving system itself — cache hit rates, backend read latencies, retry
// budgets — the way CkIO and TASIO instrument their I/O stacks to make
// per-layer behavior credible.
//
// Design constraints:
//
//   - Dependency-free (standard library only), so every layer down to
//     fsio can import it without cycles.
//   - Cheap on the hot path: counters are single atomic adds behind a
//     nil/off check, and latency observations are sampled (the callers
//     decide the rate). Nop() hands out a registry whose instruments do
//     nothing, which the serve overhead-guard benchmark compares against.
//   - Deterministic when asked: the registry clock is pluggable
//     (SetClock), so simulation runs can freeze or script time and keep
//     their exposition output reproducible.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one key=value pair attached to an instrument. Families are
// identified by metric name; every instrument of a family must carry the
// same label keys in the same order.
type Label struct {
	Key, Value string
}

// L builds a label list from alternating key, value strings:
// obs.L("node", "n1", "shard", "3"). It panics on an odd argument count
// (a programming error, like a malformed format string).
func L(kv ...string) []Label {
	if len(kv)%2 != 0 {
		panic("obs: L called with an odd key/value count")
	}
	out := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		out = append(out, Label{Key: kv[i], Value: kv[i+1]})
	}
	return out
}

// procStart anchors the default monotonic clock; only differences of
// clock readings are meaningful.
var procStart = time.Now()

// Registry holds metric families and hands out instruments. All methods
// are safe for concurrent use. Instruments are created on first request
// and shared afterwards: asking twice for the same name and label values
// returns the same counter.
type Registry struct {
	disabled bool

	clock atomic.Pointer[func() int64]

	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty, enabled registry with the default
// monotonic clock.
func NewRegistry() *Registry {
	r := &Registry{families: make(map[string]*family)}
	now := func() int64 { return int64(time.Since(procStart)) }
	r.clock.Store(&now)
	return r
}

// Nop returns a disabled registry: instruments created from it are inert
// (Add/Observe do nothing) and exposition writes no families. It is the
// reference point of the serve overhead-guard benchmark.
func Nop() *Registry {
	r := NewRegistry()
	r.disabled = true
	return r
}

// Disabled reports whether the registry was built with Nop.
func (r *Registry) Disabled() bool { return r.disabled }

// SetClock replaces the registry clock. The clock returns nanoseconds on
// a scale of its own choosing; only differences are meaningful.
// Simulation runs install a deterministic clock so latency observations
// (and therefore the exposition output) are reproducible.
func (r *Registry) SetClock(now func() int64) {
	if now == nil {
		panic("obs: SetClock(nil)")
	}
	r.clock.Store(&now)
}

// Now reads the registry clock (nanoseconds).
func (r *Registry) Now() int64 { return (*r.clock.Load())() }

// family is one metric name: its metadata plus all instruments (children)
// by label values.
type family struct {
	name, help string
	typ        string // "counter", "gauge", "histogram"
	keys       []string

	mu       sync.Mutex
	order    []string // insertion order of child keys (exposition sorts)
	children map[string]*child
}

// child is one instrument of a family: exactly one of ctr, gauge, hist,
// or fn is set. ctr/gauge/hist are assigned under the family lock before
// the child is published and never change; fn is atomic because
// re-registering a Func instrument replaces it while exposition may be
// reading it.
type child struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	fn     atomic.Pointer[func() float64]
}

// validName reports whether name is a legal Prometheus metric name.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// childKey joins label values into a map key (0xff never appears in
// well-formed label values' UTF-8).
func childKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	n := 0
	for _, l := range labels {
		n += len(l.Value) + 1
	}
	b := make([]byte, 0, n)
	for _, l := range labels {
		b = append(b, l.Value...)
		b = append(b, 0xff)
	}
	return string(b)
}

// instrument finds or creates the child for (name, labels), enforcing
// the family invariants: a metric name maps to one type, one help string,
// and one label-key set. Violations panic — they are wiring bugs, caught
// in tests, never data-dependent.
func (r *Registry) instrument(name, help, typ string, isFn bool, labels []Label) *child {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	f, ok := r.families[name]
	if !ok {
		keys := make([]string, len(labels))
		for i, l := range labels {
			if !validName(l.Key) {
				panic(fmt.Sprintf("obs: %s: invalid label key %q", name, l.Key))
			}
			keys[i] = l.Key
		}
		f = &family{name: name, help: help, typ: typ, keys: keys, children: make(map[string]*child)}
		r.families[name] = f
	}
	r.mu.Unlock()

	if f.typ != typ {
		panic(fmt.Sprintf("obs: %s registered as %s, requested as %s", name, f.typ, typ))
	}
	if len(labels) != len(f.keys) {
		panic(fmt.Sprintf("obs: %s: %d labels, family has %d", name, len(labels), len(f.keys)))
	}
	for i, l := range labels {
		if l.Key != f.keys[i] {
			panic(fmt.Sprintf("obs: %s: label %d is %q, family key is %q", name, i, l.Key, f.keys[i]))
		}
	}

	key := childKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{labels: append([]Label(nil), labels...)}
		if !isFn {
			// The concrete instrument is created here, under the family
			// lock, so concurrent first requests for the same (name,
			// labels) cannot race a lazy assignment after publication.
			switch typ {
			case "counter":
				c.ctr = &Counter{off: r.disabled}
			case "gauge":
				c.gauge = &Gauge{off: r.disabled}
			case "histogram":
				c.hist = &Histogram{off: r.disabled}
			}
		}
		f.children[key] = c
		f.order = append(f.order, key)
	}
	return c
}

// Counter returns the counter for (name, labels), creating the family on
// first use. Counters only go up.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.instrument(name, help, "counter", false, labels).ctr
}

// Gauge returns the gauge for (name, labels), creating the family on
// first use. Gauges go up and down.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.instrument(name, help, "gauge", false, labels).gauge
}

// Histogram returns the log-spaced latency histogram for (name, labels),
// creating the family on first use. Name the metric *_seconds: values are
// observed in nanoseconds and exposed in seconds.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.instrument(name, help, "histogram", false, labels).hist
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time. It is the bridge for pre-existing counters (resil
// retry budgets, breaker open counts) that already live in their own
// atomics: the registry stays the single exposition surface without
// double-counting. Re-registering (same name and labels) replaces fn.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.instrument(name, help, "counter", true, labels).fn.Store(&fn)
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time (resident cache bytes, breaker states, membership counts).
// Re-registering (same name and labels) replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.instrument(name, help, "gauge", true, labels).fn.Store(&fn)
}

// snapshotFamilies returns the families sorted by name, for exposition.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Counter is a monotonically increasing value. The zero Counter and the
// nil Counter are inert; counters from Nop registries are inert too.
type Counter struct {
	off bool
	v   atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n < 0 panics: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || c.off {
		return
	}
	if n < 0 {
		panic("obs: counter decremented")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that goes up and down. The zero Gauge and the nil
// Gauge are inert.
type Gauge struct {
	off bool
	v   atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil || g.off {
		return
	}
	g.v.Store(v)
}

// Add adjusts the value by n (n may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil || g.off {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
