package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// escapeLabelValue escapes a label value per the Prometheus text format:
// backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// labelString renders {k="v",...}; extra labels are appended after the
// child's own (used for the histogram "le" label).
func labelString(labels []Label, extra ...Label) string {
	if len(labels)+len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, l := range append(append([]Label(nil), labels...), extra...) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a sample value. Integral values print without an
// exponent or trailing zeros so counter output stays byte-stable.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm writes the registry contents in Prometheus text exposition
// format (version 0.0.4): families sorted by name, children in creation
// order, histograms as cumulative le-bucketed series with _sum and
// _count. A Nop registry writes nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	if r.disabled {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFamilies() {
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		children := make([]*child, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()

		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, c := range children {
			switch {
			case c.fn.Load() != nil:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, labelString(c.labels), formatFloat((*c.fn.Load())()))
			case c.ctr != nil:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, labelString(c.labels), c.ctr.Value())
			case c.gauge != nil:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, labelString(c.labels), c.gauge.Value())
			case c.hist != nil:
				writeHist(bw, f.name, c.labels, c.hist.Snapshot())
			}
		}
	}
	return bw.Flush()
}

// writeHist renders one histogram child: cumulative buckets (le is the
// bound in seconds), then _sum (seconds) and _count. Count is re-derived
// from the buckets so the +Inf bucket always equals _count even while
// observers are in flight.
func writeHist(w io.Writer, name string, labels []Label, s HistSnapshot) {
	cum := int64(0)
	for i := 0; i < histBuckets; i++ {
		cum += s.Buckets[i]
		le := strconv.FormatFloat(float64(bucketBound(i))/1e9, 'g', -1, 64)
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(labels, Label{"le", le}), cum)
	}
	cum += s.Buckets[histBuckets]
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(labels, Label{"le", "+Inf"}), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labelString(labels), formatFloat(float64(s.SumNs)/1e9))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(labels), cum)
}

// Handler returns an http.Handler serving the registry as text
// exposition — the body of GET /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
}

// CheckExposition validates Prometheus text output structurally: every
// sample belongs to a declared family, family names are unique and
// declared before use, histogram buckets have strictly increasing le
// bounds with non-decreasing cumulative counts, and the +Inf bucket
// matches _count. The CI /metrics smoke test and the cmd exposition
// tests share this.
func CheckExposition(data []byte) error {
	type famInfo struct{ typ string }
	families := map[string]famInfo{}
	// per histogram child (name+labels): last le bound, last cumulative
	// count, +Inf total, and declared _count
	type histState struct {
		lastLe   float64
		lastCum  int64
		started  bool
		infTotal int64
		hasInf   bool
	}
	hists := map[string]*histState{}
	counts := map[string]int64{}
	hasCount := map[string]bool{}

	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line[len("# TYPE "):])
			if len(fields) != 2 {
				return fmt.Errorf("line %d: malformed TYPE line", lineNo)
			}
			name, typ := fields[0], fields[1]
			if _, dup := families[name]; dup {
				return fmt.Errorf("line %d: duplicate family %q", lineNo, name)
			}
			families[name] = famInfo{typ: typ}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}

		// sample line: name[{labels}] value
		nameEnd := strings.IndexAny(line, "{ ")
		if nameEnd < 0 {
			return fmt.Errorf("line %d: malformed sample %q", lineNo, line)
		}
		name := line[:nameEnd]
		rest := line[nameEnd:]
		labels := ""
		if rest[0] == '{' {
			end := strings.LastIndexByte(rest, '}')
			if end < 0 {
				return fmt.Errorf("line %d: unterminated labels", lineNo)
			}
			labels = rest[1:end]
			rest = rest[end+1:]
		}
		valStr := strings.TrimSpace(rest)
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return fmt.Errorf("line %d: bad value %q: %v", lineNo, valStr, err)
		}

		base, suffix := name, ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, s) {
				if f, ok := families[strings.TrimSuffix(name, s)]; ok && f.typ == "histogram" {
					base, suffix = strings.TrimSuffix(name, s), s
				}
				break
			}
		}
		fam, ok := families[base]
		if !ok {
			return fmt.Errorf("line %d: sample %q has no TYPE declaration", lineNo, name)
		}
		if fam.typ != "histogram" {
			continue
		}
		if suffix == "" {
			return fmt.Errorf("line %d: bare sample %q for histogram family %q", lineNo, name, base)
		}

		// strip le from labels to key the child
		childLabels := labels
		le := ""
		if suffix == "_bucket" {
			parts := splitLabels(labels)
			kept := parts[:0]
			for _, p := range parts {
				if strings.HasPrefix(p, `le="`) {
					le = strings.TrimSuffix(strings.TrimPrefix(p, `le="`), `"`)
				} else {
					kept = append(kept, p)
				}
			}
			if le == "" {
				return fmt.Errorf("line %d: bucket sample missing le label", lineNo)
			}
			childLabels = strings.Join(kept, ",")
		}
		key := base + "\xff" + childLabels

		switch suffix {
		case "_bucket":
			h := hists[key]
			if h == nil {
				h = &histState{}
				hists[key] = h
			}
			cumCount := int64(val)
			if le == "+Inf" {
				h.infTotal = cumCount
				h.hasInf = true
				if h.started && cumCount < h.lastCum {
					return fmt.Errorf("%s: +Inf bucket %d below previous cumulative %d", key, cumCount, h.lastCum)
				}
				break
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("%s: bad le %q: %v", base, le, err)
			}
			if h.started {
				if bound <= h.lastLe {
					return fmt.Errorf("%s: le %g not greater than previous %g", base, bound, h.lastLe)
				}
				if cumCount < h.lastCum {
					return fmt.Errorf("%s: cumulative count decreased (%d after %d)", base, cumCount, h.lastCum)
				}
			}
			h.started, h.lastLe, h.lastCum = true, bound, cumCount
		case "_count":
			counts[key] = int64(val)
			hasCount[key] = true
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for key, h := range hists {
		if !h.hasInf {
			return fmt.Errorf("%s: histogram has no +Inf bucket", key)
		}
		if !hasCount[key] {
			return fmt.Errorf("%s: histogram has no _count", key)
		}
		if counts[key] != h.infTotal {
			return fmt.Errorf("%s: _count %d != +Inf bucket %d", key, counts[key], h.infTotal)
		}
	}
	return nil
}

// splitLabels splits a label body on commas that sit outside quoted
// values.
func splitLabels(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	inQuotes := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			inQuotes = !inQuotes
		case ',':
			if !inQuotes {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// FamilyNames returns the sorted names of all registered families —
// handy for tests asserting coverage.
func (r *Registry) FamilyNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.families))
	for name := range r.families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
