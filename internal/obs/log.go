package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// Record is one log event, as delivered to a test hook.
type Record struct {
	Time  time.Time
	Level Level
	Msg   string
	KV    []any // alternating key (string), value
}

// Logger is the leveled key=value logger shared by cmd/sionserve and
// cmd/sionrouter (it replaces their duplicated swappable logf hooks).
// Output lines look like:
//
//	2026-08-08T12:00:00Z info msg="serving" addr=:8080 req=ab12cd34ef567890
//
// A test hook (SetHook) captures Records instead of writing, so tests
// assert on structured fields rather than scraping formatted text.
// Methods are safe for concurrent use.
type Logger struct {
	min  atomic.Int32
	hook atomic.Pointer[func(Record)]

	mu sync.Mutex
	w  io.Writer
}

// NewLogger returns a Logger writing to w at LevelInfo.
func NewLogger(w io.Writer) *Logger {
	l := &Logger{w: w}
	l.min.Store(int32(LevelInfo))
	return l
}

// SetLevel sets the minimum level that is emitted.
func (l *Logger) SetLevel(min Level) { l.min.Store(int32(min)) }

// SetHook diverts records to fn instead of the writer (nil restores
// writer output). Tests install a hook to capture records; the previous
// hook is returned so nested captures can restore it.
func (l *Logger) SetHook(fn func(Record)) (prev func(Record)) {
	var p *func(Record)
	if fn != nil {
		p = &fn
	}
	old := l.hook.Swap(p)
	if old == nil {
		return nil
	}
	return *old
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lv Level, msg string, kv []any) {
	if int32(lv) < l.min.Load() {
		return
	}
	rec := Record{Time: time.Now(), Level: lv, Msg: msg, KV: kv}
	if h := l.hook.Load(); h != nil {
		(*h)(rec)
		return
	}
	line := formatRecord(rec)
	l.mu.Lock()
	fmt.Fprintln(l.w, line)
	l.mu.Unlock()
}

// formatRecord renders one record as a key=value line.
func formatRecord(r Record) string {
	var b strings.Builder
	b.WriteString(r.Time.UTC().Format(time.RFC3339))
	b.WriteByte(' ')
	b.WriteString(r.Level.String())
	b.WriteString(` msg=`)
	b.WriteString(quoteVal(r.Msg))
	for i := 0; i+1 < len(r.KV); i += 2 {
		b.WriteByte(' ')
		key, ok := r.KV[i].(string)
		if !ok {
			key = fmt.Sprint(r.KV[i])
		}
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(quoteVal(fmt.Sprint(r.KV[i+1])))
	}
	if len(r.KV)%2 != 0 {
		b.WriteString(" !ODDKV=")
		b.WriteString(quoteVal(fmt.Sprint(r.KV[len(r.KV)-1])))
	}
	return b.String()
}

// quoteVal quotes a value only when it contains whitespace, '=' or '"',
// keeping common lines readable.
func quoteVal(s string) string {
	if s == "" || strings.ContainsAny(s, " \t\n=\"") {
		return fmt.Sprintf("%q", s)
	}
	return s
}
