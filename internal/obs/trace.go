package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Span is a request-scoped breadcrumb trail: one per HTTP request (or
// any unit of work), threaded down through serve → cluster → fetcher →
// backend so the layers can record what actually happened to the request
// — cache hits, peer fills, backend reads, retries. The slow-request log
// in the HTTP front ends prints the trail when a request exceeds its
// latency budget, answering "why was this one slow?" without sampling
// profilers.
//
// Spans are cheap (a mutex and a small map) but not free; they are
// per-request, never per-block. All methods are nil-safe so unthreaded
// code paths (background fetch batches, internal maintenance) can pass a
// nil *Span without guards.
type Span struct {
	id string

	mu     sync.Mutex
	counts map[string]int64
}

// NewSpan returns a span with the given request ID (empty is fine —
// StartSpan generates one).
func NewSpan(id string) *Span { return &Span{id: id} }

// StartSpan returns a span with a fresh request ID.
func StartSpan() *Span { return NewSpan(NewRequestID()) }

// NewRequestID returns a 16-hex-digit random request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is effectively impossible on supported
		// platforms; a fixed ID keeps the request serviceable.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ID returns the span's request ID ("" for a nil span).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// Add accumulates n into the named breadcrumb counter. Nil-safe.
func (s *Span) Add(crumb string, n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counts == nil {
		s.counts = make(map[string]int64, 8)
	}
	s.counts[crumb] += n
	s.mu.Unlock()
}

// Get returns the named breadcrumb count (0 for a nil span).
func (s *Span) Get(crumb string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[crumb]
}

// Counts returns a copy of all breadcrumb counters.
func (s *Span) Counts() map[string]int64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.counts))
	for k, v := range s.counts {
		out[k] = v
	}
	return out
}

// String renders the trail as "crumb=n" pairs sorted by crumb name —
// the slow-request log line body.
func (s *Span) String() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	keys := make([]string, 0, len(s.counts))
	for k := range s.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, s.counts[k])
	}
	s.mu.Unlock()
	return b.String()
}

// spanKey is the context key type for spans.
type spanKey struct{}

// WithSpan attaches a span to a context.
func WithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom extracts the span from a context (nil when absent — safe to
// use directly, all Span methods tolerate nil).
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// Crumb names recorded by the serving stack. Shared constants so the
// layers and the tests agree on spelling.
const (
	CrumbCacheHit    = "cache_hit"
	CrumbCacheMiss   = "cache_miss"
	CrumbFlightHit   = "flight_hit"
	CrumbBackendRead = "backend_read"
	CrumbPeerFill    = "peer_fill"
	CrumbRetry       = "retry"
	CrumbFailover    = "failover"
)
