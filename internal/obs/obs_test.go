package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// same name+labels returns the same instrument
	if r.Counter("x_total", "help") != c {
		t.Fatal("second Counter call returned a different instrument")
	}
	g := r.Gauge("g", "help")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}

	var nilC *Counter
	nilC.Add(1) // must not panic
	var nilG *Gauge
	nilG.Set(1)
}

func TestNopRegistryInert(t *testing.T) {
	r := Nop()
	c := r.Counter("x_total", "help")
	c.Add(10)
	if c.Value() != 0 {
		t.Fatal("Nop counter accumulated")
	}
	h := r.Histogram("h_seconds", "help")
	h.Observe(123)
	if h.Snapshot().Count != 0 {
		t.Fatal("Nop histogram accumulated")
	}
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("Nop exposition nonempty: %q", buf.String())
	}
}

func TestLabelConsistencyPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "h", Label{"k", "v"})
	mustPanic(t, "label key mismatch", func() {
		r.Counter("a_total", "h", Label{"other", "v"})
	})
	mustPanic(t, "label count mismatch", func() {
		r.Counter("a_total", "h")
	})
	mustPanic(t, "type mismatch", func() {
		r.Gauge("a_total", "h", Label{"k", "v"})
	})
	mustPanic(t, "bad name", func() { r.Counter("9bad", "h") })
	mustPanic(t, "odd L", func() { L("a", "b", "c") })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := &Histogram{}
	// bucket 0 covers (..2^10]; exact bound must land in its own bucket
	if b := bucketFor(1 << 10); b != 0 {
		t.Fatalf("bucketFor(2^10) = %d, want 0", b)
	}
	if b := bucketFor(1<<10 + 1); b != 1 {
		t.Fatalf("bucketFor(2^10+1) = %d, want 1", b)
	}
	if b := bucketFor(1 << 40); b != histBuckets {
		t.Fatalf("bucketFor(2^40) = %d, want overflow %d", b, histBuckets)
	}
	if b := bucketFor(0); b != 0 {
		t.Fatalf("bucketFor(0) = %d, want 0", b)
	}

	// 100 observations at ~1ms, 10 at ~100ms: p50 ~1ms bucket, p99 in
	// the tail
	for i := 0; i < 100; i++ {
		h.Observe(int64(time.Millisecond))
	}
	for i := 0; i < 10; i++ {
		h.Observe(int64(100 * time.Millisecond))
	}
	s := h.Snapshot()
	if s.Count != 110 {
		t.Fatalf("count = %d, want 110", s.Count)
	}
	p50, p99 := s.P50(), s.P99()
	if p50 > int64(2*time.Millisecond) {
		t.Fatalf("p50 = %v, want <= ~2ms", time.Duration(p50))
	}
	if p99 < int64(50*time.Millisecond) {
		t.Fatalf("p99 = %v, want >= ~50ms", time.Duration(p99))
	}
	if q := (HistSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %d, want 0", q)
	}
}

func TestExpositionAndChecker(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "requests", Label{"node", "n1"}).Add(3)
	r.Counter("reqs_total", "requests", Label{"node", `we"ird\`}).Add(1)
	r.Gauge("depth", "queue depth").Set(-2)
	r.GaugeFunc("fn_gauge", "from fn", func() float64 { return 1.5 })
	r.CounterFunc("fn_total", "from fn", func() float64 { return 9 })
	h := r.Histogram("lat_seconds", "latency", Label{"op", "read"})
	h.Observe(int64(3 * time.Microsecond))
	h.Observe(int64(2 * time.Second))

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`reqs_total{node="n1"} 3`,
		`reqs_total{node="we\"ird\\"} 1`,
		"depth -2",
		"fn_gauge 1.5",
		"fn_total 9",
		`lat_seconds_count{op="read"} 2`,
		`le="+Inf"`,
		"# TYPE lat_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := CheckExposition(buf.Bytes()); err != nil {
		t.Fatalf("CheckExposition rejected valid output: %v\n%s", err, out)
	}

	// corrupt cases
	if err := CheckExposition([]byte("# TYPE a counter\n# TYPE a counter\na 1\n")); err == nil {
		t.Error("duplicate family not caught")
	}
	if err := CheckExposition([]byte("undeclared 4\n")); err == nil {
		t.Error("undeclared sample not caught")
	}
	bad := strings.Replace(out, `lat_seconds_count{op="read"} 2`, `lat_seconds_count{op="read"} 7`, 1)
	if err := CheckExposition([]byte(bad)); err == nil {
		t.Error("count/+Inf mismatch not caught")
	}
}

func TestSetClock(t *testing.T) {
	r := NewRegistry()
	now := int64(1000)
	r.SetClock(func() int64 { return now })
	if r.Now() != 1000 {
		t.Fatalf("Now = %d, want 1000", r.Now())
	}
	now = 2500
	if r.Now() != 2500 {
		t.Fatalf("Now = %d, want 2500", r.Now())
	}
	mustPanic(t, "nil clock", func() { r.SetClock(nil) })
}

func TestSpan(t *testing.T) {
	sp := StartSpan()
	if len(sp.ID()) != 16 {
		t.Fatalf("request id %q, want 16 hex chars", sp.ID())
	}
	sp.Add(CrumbCacheHit, 3)
	sp.Add(CrumbBackendRead, 1)
	sp.Add(CrumbCacheHit, 2)
	if got := sp.Get(CrumbCacheHit); got != 5 {
		t.Fatalf("cache_hit = %d, want 5", got)
	}
	if s := sp.String(); s != "backend_read=1 cache_hit=5" {
		t.Fatalf("String() = %q", s)
	}

	var nilSpan *Span
	nilSpan.Add("x", 1)
	if nilSpan.Get("x") != 0 || nilSpan.ID() != "" || nilSpan.String() != "" {
		t.Fatal("nil span not inert")
	}

	ctx := WithSpan(context.Background(), sp)
	if SpanFrom(ctx) != sp {
		t.Fatal("SpanFrom lost the span")
	}
	if SpanFrom(context.Background()) != nil {
		t.Fatal("SpanFrom on empty context should be nil")
	}
}

func TestSpanConcurrent(t *testing.T) {
	sp := StartSpan()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				sp.Add(CrumbRetry, 1)
			}
		}()
	}
	wg.Wait()
	if got := sp.Get(CrumbRetry); got != 8000 {
		t.Fatalf("retry = %d, want 8000", got)
	}
}

func TestLogger(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	l.Debug("hidden")
	l.Info("served", "rank", 3, "bytes", 1024)
	l.Error("boom", "err", `disk "full"`)
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Error("debug line emitted at info level")
	}
	if !strings.Contains(out, "info msg=served rank=3 bytes=1024") {
		t.Errorf("info line malformed: %q", out)
	}
	if !strings.Contains(out, `err="disk \"full\""`) {
		t.Errorf("error line quoting wrong: %q", out)
	}

	l.SetLevel(LevelDebug)
	buf.Reset()
	l.Debug("now visible")
	if !strings.Contains(buf.String(), "debug msg=\"now visible\"") {
		t.Errorf("debug line missing: %q", buf.String())
	}
}

func TestLoggerHook(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	var mu sync.Mutex
	var recs []Record
	prev := l.SetHook(func(r Record) {
		mu.Lock()
		recs = append(recs, r)
		mu.Unlock()
	})
	if prev != nil {
		t.Fatal("unexpected previous hook")
	}
	l.Warn("careful", "k", "v")
	if buf.Len() != 0 {
		t.Fatalf("hooked logger still wrote: %q", buf.String())
	}
	if len(recs) != 1 || recs[0].Level != LevelWarn || recs[0].Msg != "careful" {
		t.Fatalf("hook records = %+v", recs)
	}
	if len(recs[0].KV) != 2 || recs[0].KV[0] != "k" || recs[0].KV[1] != "v" {
		t.Fatalf("hook KV = %+v", recs[0].KV)
	}
	l.SetHook(nil)
	l.Info("back to writer")
	if !strings.Contains(buf.String(), "back to writer") {
		t.Fatal("writer output not restored after SetHook(nil)")
	}
}

func TestConcurrentRegistryAndInstruments(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c_total", "h")
			h := r.Histogram("h_seconds", "h")
			for j := 0; j < 500; j++ {
				c.Inc()
				h.Observe(int64(j))
			}
		}()
	}
	// concurrent exposition
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			var buf bytes.Buffer
			if err := r.WriteProm(&buf); err != nil {
				t.Error(err)
				return
			}
			if err := CheckExposition(buf.Bytes()); err != nil {
				t.Errorf("mid-flight exposition invalid: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if got := r.Counter("c_total", "h").Value(); got != 4000 {
		t.Fatalf("counter = %d, want 4000", got)
	}
	if got := r.Histogram("h_seconds", "h").Snapshot().Count; got != 4000 {
		t.Fatalf("hist count = %d, want 4000", got)
	}
}
