package obs

import (
	"net/http"
	"net/http/pprof"
	"time"
)

// RequestIDHeader carries the request ID between client and server. An
// incoming value is adopted (so a caller's ID follows the request through
// the slow-request log); otherwise a fresh one is generated. Either way
// the response echoes it.
const RequestIDHeader = "X-Request-ID"

// HTTPMiddleware wraps next with the request-scoped observability both
// HTTP front ends (sionserve, sionrouter) share:
//
//   - assigns or adopts an X-Request-ID and echoes it on the response,
//   - attaches a Span to the request context so handlers can thread it
//     down the read path (Handle.SetSpan) and the layers below record
//     breadcrumbs — cache hits, backend reads, peer fills, retries,
//   - logs requests slower than slow to log with the span's breadcrumb
//     trail, answering "why was this one slow?" from the log alone.
//
// A zero slow (or nil log) disables the slow-request log; the ID and span
// plumbing still run.
func HTTPMiddleware(next http.Handler, log *Logger, slow time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = NewRequestID()
		}
		sp := NewSpan(id)
		w.Header().Set(RequestIDHeader, id)
		start := time.Now()
		next.ServeHTTP(w, r.WithContext(WithSpan(r.Context(), sp)))
		if d := time.Since(start); log != nil && slow > 0 && d >= slow {
			log.Warn("slow request", "req", id, "path", r.URL.Path,
				"ms", d.Milliseconds(), "crumbs", sp.String())
		}
	})
}

// MountPprof registers the net/http/pprof handlers on mux under
// /debug/pprof/. The cmds gate this behind their -pprof flag: profiling
// endpoints expose goroutine stacks and heap contents, so they stay off
// unless explicitly requested.
func MountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
