package vtime

import "testing"

func BenchmarkEngine10kProcsOneHop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		s := NewServer("x")
		for p := 0; p < 10000; p++ {
			e.Spawn(0, func(p *Proc) { s.Use(p, 0.001) })
		}
		e.Run()
	}
}

func BenchmarkAdvanceYield(b *testing.B) {
	e := NewEngine()
	e.Spawn(0, func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(0.001)
		}
	})
	e.Run()
}
