// Package vtime implements a deterministic, process-oriented discrete-event
// simulation engine.
//
// Simulated processes (Proc) are backed by goroutines, but the engine lets
// exactly one process run at a time and always resumes the process with the
// smallest virtual clock (ties broken by process id). This yields fully
// deterministic simulations regardless of Go scheduling, and it guarantees
// the causality property resources rely on: when a process executes, its
// clock is globally minimal, so no other process can later act "in its past".
//
// The engine is the substrate for the simulated parallel file system
// (internal/simfs) and for the simulated mode of the message-passing runtime
// (internal/mpi).
package vtime

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"
)

// Engine coordinates a set of simulated processes.
// Create one with NewEngine, add processes with Spawn, then call Run.
type Engine struct {
	mu      sync.Mutex
	ready   procHeap // runnable processes, ordered by (wake time, id)
	nlive   int      // processes that have not finished
	nprocs  int      // total processes ever spawned (id source)
	blocked map[*Proc]struct{}
	started bool
	done    chan struct{} // closed when Run finishes
	failure string        // deadlock diagnostic, reported by Run
}

// Proc is a simulated process with its own virtual clock.
// All Proc methods must be called from the goroutine running the process
// body, except Wake/WakeAt, which are called by other processes.
type Proc struct {
	e    *Engine
	id   int
	now  float64
	wake float64 // scheduled wake time while in the ready heap
	run  chan struct{}
	dead bool
}

// NewEngine returns an empty engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{blocked: make(map[*Proc]struct{}), done: make(chan struct{})}
}

// Spawn registers a new process whose body is fn, starting at virtual time
// start. fn runs in its own goroutine once Run is called. Spawn may also be
// called from inside a running process.
func (e *Engine) Spawn(start float64, fn func(p *Proc)) *Proc {
	e.mu.Lock()
	p := &Proc{e: e, id: e.nprocs, now: start, wake: start, run: make(chan struct{}, 1)}
	e.nprocs++
	e.nlive++
	heap.Push(&e.ready, p)
	e.mu.Unlock()
	go func() {
		<-p.run // wait until scheduled for the first time
		fn(p)
		p.exit()
	}()
	return p
}

// Run executes the simulation until every spawned process has finished.
// It panics with a diagnostic if the simulation deadlocks (all live
// processes blocked with nobody to wake them).
func (e *Engine) Run() {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		panic("vtime: Run called twice")
	}
	e.started = true
	e.scheduleNextLocked()
	e.mu.Unlock()
	<-e.done
	if e.failure != "" {
		panic(e.failure)
	}
}

// scheduleNextLocked hands the execution token to the runnable process with
// the smallest (wake, id), or finishes/deadlock-panics when none is runnable.
func (e *Engine) scheduleNextLocked() {
	if e.ready.Len() == 0 {
		if e.nlive > 0 {
			// Deadlock: report through Run rather than crashing this
			// process's goroutine (the blocked goroutines are leaked,
			// but the simulation is unrecoverable anyway).
			e.failure = fmt.Sprintf("vtime: deadlock: %d processes blocked, none runnable: %s",
				len(e.blocked), e.describeBlockedLocked())
		}
		close(e.done)
		return
	}
	p := heap.Pop(&e.ready).(*Proc)
	p.now = p.wake
	p.run <- struct{}{}
}

func (e *Engine) describeBlockedLocked() string {
	ids := make([]int, 0, len(e.blocked))
	for p := range e.blocked {
		ids = append(ids, p.id)
	}
	sort.Ints(ids)
	if len(ids) > 16 {
		ids = ids[:16]
	}
	return fmt.Sprintf("blocked ids (first 16): %v", ids)
}

// Now returns the process's current virtual time in seconds.
func (p *Proc) Now() float64 { return p.now }

// Engine returns the engine running this process, so running processes
// can spawn peers (e.g. background I/O workers) mid-simulation.
func (p *Proc) Engine() *Engine { return p.e }

// ID returns the process id (spawn order, starting at 0).
func (p *Proc) ID() int { return p.id }

// Advance moves the process's clock forward by dt seconds, yielding to any
// other process whose wake time is earlier. dt must be non-negative.
func (p *Proc) Advance(dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("vtime: Advance(%g) negative", dt))
	}
	p.AdvanceTo(p.now + dt)
}

// AdvanceTo moves the process's clock to time t (a no-op reschedule if
// t <= now; the clock never moves backwards).
func (p *Proc) AdvanceTo(t float64) {
	if t < p.now {
		t = p.now
	}
	e := p.e
	e.mu.Lock()
	p.wake = t
	heap.Push(&e.ready, p)
	e.scheduleNextLocked()
	e.mu.Unlock()
	<-p.run
}

// Yield reschedules the process at its current time, letting equal-time
// processes with smaller ids (or earlier processes) run first.
func (p *Proc) Yield() { p.AdvanceTo(p.now) }

// Block suspends the process until another process calls Wake/WakeAt on it.
// It returns the (possibly advanced) current time.
func (p *Proc) Block() float64 {
	e := p.e
	e.mu.Lock()
	e.blocked[p] = struct{}{}
	e.scheduleNextLocked()
	e.mu.Unlock()
	<-p.run
	return p.now
}

// WakeAt makes blocked process q runnable at virtual time t (or at q's
// current time if t is in q's past). It must be called by a running process
// (or before Run). Waking a process that is not blocked panics.
func (p *Proc) WakeAt(q *Proc, t float64) {
	e := p.e
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.blocked[q]; !ok {
		panic(fmt.Sprintf("vtime: WakeAt(%d) but process is not blocked", q.id))
	}
	delete(e.blocked, q)
	if t < q.now {
		t = q.now
	}
	q.wake = t
	heap.Push(&e.ready, q)
	// The caller keeps running; q will be scheduled when it has minimal time.
}

// exit marks the process finished and passes control on.
func (p *Proc) exit() {
	e := p.e
	e.mu.Lock()
	p.dead = true
	e.nlive--
	e.scheduleNextLocked()
	e.mu.Unlock()
}

// procHeap orders processes by (wake, id).
type procHeap []*Proc

func (h procHeap) Len() int { return len(h) }
func (h procHeap) Less(i, j int) bool {
	if h[i].wake != h[j].wake {
		return h[i].wake < h[j].wake
	}
	return h[i].id < h[j].id
}
func (h procHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *procHeap) Push(x interface{}) { *h = append(*h, x.(*Proc)) }
func (h *procHeap) Pop() interface{} {
	old := *h
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return p
}
