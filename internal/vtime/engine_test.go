package vtime

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSingleProcAdvance(t *testing.T) {
	e := NewEngine()
	var end float64
	e.Spawn(0, func(p *Proc) {
		p.Advance(1.5)
		p.Advance(2.5)
		end = p.Now()
	})
	e.Run()
	if end != 4.0 {
		t.Fatalf("end time = %g, want 4.0", end)
	}
}

func TestSpawnStartTime(t *testing.T) {
	e := NewEngine()
	var got float64
	e.Spawn(3.25, func(p *Proc) { got = p.Now() })
	e.Run()
	if got != 3.25 {
		t.Fatalf("start time = %g, want 3.25", got)
	}
}

// Processes must interleave strictly in virtual-time order.
func TestDeterministicOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	// Proc 0 acts at t=0,2,4; proc 1 at t=1,3,5.
	e.Spawn(0, func(p *Proc) {
		for i := 0; i < 3; i++ {
			order = append(order, 0)
			p.Advance(2)
		}
	})
	e.Spawn(1, func(p *Proc) {
		for i := 0; i < 3; i++ {
			order = append(order, 1)
			p.Advance(2)
		}
	})
	e.Run()
	want := []int{0, 1, 0, 1, 0, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// Equal wake times must be broken by process id.
func TestTieBreakByID(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		e.Spawn(1.0, func(p *Proc) { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("order = %v, want ascending ids", order)
		}
	}
}

func TestBlockWake(t *testing.T) {
	e := NewEngine()
	var consumer *Proc
	var got float64
	consumer = e.Spawn(0, func(p *Proc) {
		got = p.Block()
	})
	e.Spawn(0, func(p *Proc) {
		p.Advance(5)
		p.WakeAt(consumer, 7) // message arrives at t=7
	})
	e.Run()
	if got != 7 {
		t.Fatalf("consumer resumed at %g, want 7", got)
	}
}

// WakeAt in the waker's past must not move the sleeper backwards.
func TestWakePastClampsToNow(t *testing.T) {
	e := NewEngine()
	var sleeper *Proc
	var got float64
	sleeper = e.Spawn(10, func(p *Proc) { got = p.Block() })
	e.Spawn(0, func(p *Proc) {
		p.Advance(20)
		p.WakeAt(sleeper, 3) // in sleeper's past
	})
	e.Run()
	if got != 10 {
		t.Fatalf("sleeper resumed at %g, want its own time 10", got)
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	e := NewEngine()
	panicked := make(chan bool, 1)
	e.Spawn(0, func(p *Proc) {
		defer func() {
			panicked <- recover() != nil
			// Re-panic is swallowed; the proc exits via the deferred return.
		}()
		p.Advance(-1)
	})
	e.Run()
	if !<-panicked {
		t.Fatal("Advance(-1) did not panic")
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("deadlocked Run did not panic")
		}
	}()
	e := NewEngine()
	e.Spawn(0, func(p *Proc) { p.Block() }) // nobody will wake it
	e.Run()
}

func TestSpawnFromRunningProc(t *testing.T) {
	e := NewEngine()
	var childTime float64
	e.Spawn(0, func(p *Proc) {
		p.Advance(2)
		p.e.Spawn(p.Now()+1, func(c *Proc) { childTime = c.Now() })
		p.Advance(10)
	})
	e.Run()
	if childTime != 3 {
		t.Fatalf("child started at %g, want 3", childTime)
	}
}

func TestServerFIFOSerialization(t *testing.T) {
	e := NewEngine()
	s := NewServer("disk")
	ends := make([]float64, 3)
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(0, func(p *Proc) {
			s.Use(p, 2.0)
			ends[i] = p.Now()
		})
	}
	e.Run()
	want := []float64{2, 4, 6}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
	if s.BusyTime() != 6 {
		t.Fatalf("busy = %g, want 6", s.BusyTime())
	}
	if s.Uses() != 3 {
		t.Fatalf("uses = %d, want 3", s.Uses())
	}
}

func TestServerIdleGap(t *testing.T) {
	e := NewEngine()
	s := NewServer("disk")
	var end float64
	e.Spawn(0, func(p *Proc) {
		s.Use(p, 1)
		p.Advance(10) // server idle from t=1 to t=11
		s.Use(p, 1)
		end = p.Now()
	})
	e.Run()
	if end != 12 {
		t.Fatalf("end = %g, want 12", end)
	}
}

func TestServerUseNoWaitFor(t *testing.T) {
	e := NewEngine()
	s := NewServer("nsd")
	var t1, t2 float64
	e.Spawn(0, func(p *Proc) {
		s.UseNoWaitFor(p, 10, 0.5) // hand off, server busy to t=10
		t1 = p.Now()
		s.Use(p, 1) // must queue behind the in-flight work
		t2 = p.Now()
	})
	e.Run()
	if t1 != 0.5 {
		t.Fatalf("t1 = %g, want 0.5", t1)
	}
	if t2 != 11 {
		t.Fatalf("t2 = %g, want 11", t2)
	}
}

// Property: clocks never decrease, and total busy time equals the sum of
// service demands regardless of arrival pattern.
func TestServerBusyConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		e := NewEngine()
		s := NewServer("x")
		var total float64
		demands := make([][]float64, n)
		for i := range demands {
			k := 1 + rng.Intn(5)
			demands[i] = make([]float64, k)
			for j := range demands[i] {
				demands[i][j] = rng.Float64() * 3
				total += demands[i][j]
			}
		}
		ok := true
		for i := 0; i < n; i++ {
			i := i
			e.Spawn(rng.Float64(), func(p *Proc) {
				last := p.Now()
				for _, d := range demands[i] {
					s.Use(p, d)
					if p.Now() < last {
						ok = false
					}
					last = p.Now()
				}
			})
		}
		e.Run()
		return ok && abs(s.BusyTime()-total) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: with simultaneous arrivals, completion time of the k-th request
// equals the running sum of service times (strict FIFO by id).
func TestServerStrictFIFOProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 32 {
			return true
		}
		e := NewEngine()
		s := NewServer("y")
		ends := make([]float64, len(raw))
		for i, b := range raw {
			i, d := i, float64(b%17)+1
			e.Spawn(0, func(p *Proc) {
				s.Use(p, d)
				ends[i] = p.Now()
			})
		}
		e.Run()
		sum := 0.0
		for i, b := range raw {
			sum += float64(b%17) + 1
			if abs(ends[i]-sum) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestManyProcsScale(t *testing.T) {
	const n = 20000
	e := NewEngine()
	var count int64
	s := NewServer("meta")
	for i := 0; i < n; i++ {
		e.Spawn(0, func(p *Proc) {
			s.Use(p, 0.001)
			atomic.AddInt64(&count, 1)
		})
	}
	e.Run()
	if count != n {
		t.Fatalf("count = %d, want %d", count, n)
	}
	if abs(s.Avail()-n*0.001) > 1e-6 {
		t.Fatalf("avail = %g, want %g", s.Avail(), n*0.001)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestServerReserveParallelFanout(t *testing.T) {
	// One operation fanned over three servers completes at the max of the
	// per-server completion times, not their sum.
	e := NewEngine()
	s1, s2, s3 := NewServer("a"), NewServer("b"), NewServer("c")
	var end float64
	e.Spawn(0, func(p *Proc) {
		t1 := s1.Reserve(p.Now(), 1.0)
		t2 := s2.Reserve(p.Now(), 3.0)
		t3 := s3.Reserve(p.Now(), 2.0)
		max := t1
		if t2 > max {
			max = t2
		}
		if t3 > max {
			max = t3
		}
		p.AdvanceTo(max)
		end = p.Now()
	})
	e.Run()
	if end != 3.0 {
		t.Fatalf("fan-out completion = %g, want 3.0", end)
	}
}

func TestServerReset(t *testing.T) {
	e := NewEngine()
	s := NewServer("x")
	e.Spawn(0, func(p *Proc) {
		s.Use(p, 5)
	})
	e.Run()
	if s.Avail() != 5 || s.Uses() != 1 {
		t.Fatalf("pre-reset state: avail=%g uses=%d", s.Avail(), s.Uses())
	}
	s.Reset()
	if s.Avail() != 0 || s.BusyTime() != 0 || s.Uses() != 0 {
		t.Fatal("Reset did not clear the server")
	}
}

func TestRunTwicePanics(t *testing.T) {
	e := NewEngine()
	e.Spawn(0, func(p *Proc) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	e.Run()
}
