package vtime

import "fmt"

// Server is a FIFO queueing resource: each Use occupies the server
// exclusively for a service duration, and requests issued while the server
// is busy wait their turn. Because the engine only runs the process with the
// globally minimal clock, the simple availability-time update below is
// causally correct: no process can later issue a request in the past.
type Server struct {
	Name  string
	avail float64 // next time the server is free
	busy  float64 // accumulated busy time (for utilization reporting)
	uses  int64
}

// NewServer returns an idle server.
func NewServer(name string) *Server { return &Server{Name: name} }

// Use occupies the server for dur seconds starting no earlier than p's
// current time, advancing p past any queueing delay plus the service time.
// It returns the total delay experienced (wait + service).
func (s *Server) Use(p *Proc, dur float64) float64 {
	if dur < 0 {
		panic(fmt.Sprintf("vtime: Server %q Use(%g) negative", s.Name, dur))
	}
	start := p.Now()
	if s.avail > start {
		start = s.avail
	}
	end := start + dur
	s.avail = end
	s.busy += dur
	s.uses++
	delay := end - p.Now()
	p.Advance(delay)
	return delay
}

// UseNoWaitFor occupies the server for dur seconds but advances p only to
// the start of service plus latency lat (the request is handed off; the
// server remains busy behind the scenes). Used for write-behind style
// operations where the client does not wait for media completion.
func (s *Server) UseNoWaitFor(p *Proc, dur, lat float64) float64 {
	if dur < 0 || lat < 0 {
		panic(fmt.Sprintf("vtime: Server %q UseNoWaitFor(%g,%g) negative", s.Name, dur, lat))
	}
	start := p.Now()
	if s.avail > start {
		start = s.avail
	}
	s.avail = start + dur
	s.busy += dur
	s.uses++
	delay := start + lat - p.Now()
	if delay < 0 {
		delay = 0
	}
	p.Advance(delay)
	return delay
}

// Reserve books dur seconds of service starting no earlier than `at` and
// returns the completion time, without advancing any process clock. It lets
// a caller fan one logical operation out over several servers in parallel
// (e.g. a striped write) and then advance its own clock to the maximum
// completion time. `at` must not precede the calling process's clock
// (callers pass p.Now()), which preserves the engine's causality guarantee.
func (s *Server) Reserve(at, dur float64) float64 {
	if dur < 0 {
		panic(fmt.Sprintf("vtime: Server %q Reserve(%g) negative", s.Name, dur))
	}
	start := at
	if s.avail > start {
		start = s.avail
	}
	end := start + dur
	s.avail = end
	s.busy += dur
	s.uses++
	return end
}

// Avail reports the next time the server becomes free.
func (s *Server) Avail() float64 { return s.avail }

// BusyTime reports the accumulated service time.
func (s *Server) BusyTime() float64 { return s.busy }

// Uses reports the number of Use calls served.
func (s *Server) Uses() int64 { return s.uses }

// Reset returns the server to the idle state at time zero.
func (s *Server) Reset() { s.avail, s.busy, s.uses = 0, 0, 0 }
