package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/mpi"
)

// Additional post-mortem analyses in the spirit of Scalasca's pattern
// search: a profile summary per rank, a global (reduced) profile, and a
// late-receiver search complementing the late-sender one.

// Profile summarizes one rank's trace.
type Profile struct {
	Rank       int
	Events     int
	Regions    map[uint32]float64 // inclusive time per region
	BytesSent  uint64
	BytesRecvd uint64
	Sends      int
	Recvs      int
	Span       float64 // last timestamp - first timestamp
}

// BuildProfile computes one rank's profile from its events.
func BuildProfile(rank int, events []Event) *Profile {
	p := &Profile{Rank: rank, Events: len(events), Regions: RegionTime(events)}
	if len(events) > 0 {
		p.Span = events[len(events)-1].Time - events[0].Time
	}
	for _, e := range events {
		switch e.Kind {
		case KindSend:
			p.Sends++
			p.BytesSent += e.Bytes
		case KindRecv:
			p.Recvs++
			p.BytesRecvd += e.Bytes
		}
	}
	return p
}

// GlobalProfile is the reduction of all ranks' profiles (the "global
// analysis result" of the paper's Fig. 7 workflow).
type GlobalProfile struct {
	Ranks      int
	Events     int64
	Sends      int64
	BytesSent  uint64
	RegionTime map[uint32]float64 // summed over ranks
	MaxSpan    float64
}

// ReduceProfiles gathers every rank's profile at rank 0 of comm and
// returns the global profile there (nil elsewhere).
func ReduceProfiles(comm *mpi.Comm, p *Profile) *GlobalProfile {
	// Flatten the per-rank profile into int64s for the gather.
	flat := []int64{
		int64(p.Events), int64(p.Sends), int64(p.BytesSent),
		int64(p.Span * 1e9),
		int64(len(p.Regions)),
	}
	regs := make([]uint32, 0, len(p.Regions))
	for r := range p.Regions {
		regs = append(regs, r)
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
	for _, r := range regs {
		flat = append(flat, int64(r), int64(p.Regions[r]*1e9))
	}
	all := comm.GatherInt64Slice(0, flat)
	if all == nil {
		return nil
	}
	g := &GlobalProfile{Ranks: comm.Size(), RegionTime: make(map[uint32]float64)}
	for _, f := range all {
		g.Events += f[0]
		g.Sends += f[1]
		g.BytesSent += uint64(f[2])
		if span := float64(f[3]) / 1e9; span > g.MaxSpan {
			g.MaxSpan = span
		}
		nreg := int(f[4])
		for i := 0; i < nreg; i++ {
			g.RegionTime[uint32(f[5+2*i])] += float64(f[6+2*i]) / 1e9
		}
	}
	return g
}

// Format renders the global profile as text.
func (g *GlobalProfile) Format(w io.Writer) {
	fmt.Fprintf(w, "ranks:       %d\n", g.Ranks)
	fmt.Fprintf(w, "events:      %d\n", g.Events)
	fmt.Fprintf(w, "sends:       %d (%d bytes)\n", g.Sends, g.BytesSent)
	fmt.Fprintf(w, "max span:    %.3fs\n", g.MaxSpan)
	regs := make([]uint32, 0, len(g.RegionTime))
	for r := range g.RegionTime {
		regs = append(regs, r)
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
	for _, r := range regs {
		fmt.Fprintf(w, "region %4d: %.3fs inclusive (summed over ranks)\n", r, g.RegionTime[r])
	}
}

// AnalyzeLateReceivers is the mirror image of AnalyzeLateSenders: it
// reports sends that had to wait because the matching receive was posted
// late (relevant for synchronous/rendezvous sends).
func AnalyzeLateReceivers(comm *mpi.Comm, load func(rank int) ([]Event, error)) ([]WaitState, error) {
	events, err := load(comm.Rank())
	if err != nil {
		return nil, err
	}
	const tag = 8400
	// Forward my receive events to the senders.
	bySrc := make(map[int][]byte)
	for _, e := range events {
		if e.Kind == KindRecv {
			rec := e
			bySrc[int(e.Peer)] = rec.Encode(bySrc[int(e.Peer)])
		}
	}
	for peer := 0; peer < comm.Size(); peer++ {
		if peer == comm.Rank() {
			continue
		}
		comm.Send(peer, tag, bySrc[peer])
	}
	incoming := map[int][]Event{}
	self := bySrc[comm.Rank()]
	for len(self) > 0 {
		e, _ := DecodeEvent(self)
		incoming[comm.Rank()] = append(incoming[comm.Rank()], e)
		self = self[EventBytes:]
	}
	for peer := 0; peer < comm.Size(); peer++ {
		if peer == comm.Rank() {
			continue
		}
		buf := comm.Recv(peer, tag)
		for len(buf) > 0 {
			e, err := DecodeEvent(buf)
			if err != nil {
				return nil, err
			}
			incoming[peer] = append(incoming[peer], e)
			buf = buf[EventBytes:]
		}
	}
	cursor := map[[2]uint32]int{}
	var waits []WaitState
	for _, e := range events {
		if e.Kind != KindSend {
			continue
		}
		recvs := incoming[int(e.Peer)]
		key := [2]uint32{e.Peer, e.Tag}
		idx := cursor[key]
		seen := 0
		var match *Event
		for i := range recvs {
			if recvs[i].Tag == e.Tag {
				if seen == idx {
					match = &recvs[i]
					break
				}
				seen++
			}
		}
		cursor[key] = idx + 1
		if match == nil {
			continue
		}
		if wait := match.Time - e.Time; wait > 0 {
			waits = append(waits, WaitState{
				Recver: int(e.Peer), Sender: comm.Rank(), Tag: e.Tag, WaitTime: wait,
			})
		}
	}
	sort.Slice(waits, func(i, j int) bool { return waits[i].WaitTime > waits[j].WaitTime })
	return waits, nil
}
