// Package trace is a miniature stand-in for the Scalasca measurement
// system of the paper's §5.2: each task records local events (region
// enter/leave, message send/receive) into a collection buffer, compresses
// them with zlib (as Scalasca's tracing module does), and writes them at
// measurement finalization either to physical task-local files or into a
// SIONlib multifile. A post-mortem analyzer reads the traces back — the
// SIONlib path uses the serial task-local view, exactly like the paper's
// trace analyzer — and searches for late-sender wait states.
package trace

import (
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/mpi"
)

// Kind enumerates event record types.
type Kind uint8

// Event kinds.
const (
	KindEnter Kind = iota + 1
	KindLeave
	KindSend
	KindRecv
)

// EventBytes is the fixed encoded size of one event record.
const EventBytes = 29

// Event is one trace record. Time is the task-local timestamp; Region
// identifies the code region for Enter/Leave; Peer/Tag/Bytes describe the
// message for Send/Recv.
type Event struct {
	Kind   Kind
	Time   float64
	Region uint32
	Peer   uint32
	Tag    uint32
	Bytes  uint64
}

// Encode appends the record to dst.
func (e *Event) Encode(dst []byte) []byte {
	var buf [EventBytes]byte
	buf[0] = byte(e.Kind)
	le := binary.LittleEndian
	le.PutUint64(buf[1:], math.Float64bits(e.Time))
	le.PutUint32(buf[9:], e.Region)
	le.PutUint32(buf[13:], e.Peer)
	le.PutUint32(buf[17:], e.Tag)
	le.PutUint64(buf[21:], e.Bytes)
	return append(dst, buf[:]...)
}

// DecodeEvent parses one record.
func DecodeEvent(src []byte) (Event, error) {
	if len(src) < EventBytes {
		return Event{}, fmt.Errorf("trace: short event record (%d bytes)", len(src))
	}
	le := binary.LittleEndian
	e := Event{
		Kind:   Kind(src[0]),
		Time:   math.Float64frombits(le.Uint64(src[1:])),
		Region: le.Uint32(src[9:]),
		Peer:   le.Uint32(src[13:]),
		Tag:    le.Uint32(src[17:]),
		Bytes:  le.Uint64(src[21:]),
	}
	if e.Kind < KindEnter || e.Kind > KindRecv {
		return Event{}, fmt.Errorf("trace: bad event kind %d", e.Kind)
	}
	return e, nil
}

// Tracer collects one task's events in memory (Scalasca's collection
// buffer) and flushes them, zlib-compressed, at finalization.
type Tracer struct {
	rank   int
	events []Event
	clock  float64
}

// NewTracer creates a tracer for one task.
func NewTracer(rank int) *Tracer { return &Tracer{rank: rank} }

// Advance moves the task-local clock (models compute time between events).
func (t *Tracer) Advance(dt float64) { t.clock += dt }

// Enter records entering a region.
func (t *Tracer) Enter(region uint32) {
	t.events = append(t.events, Event{Kind: KindEnter, Time: t.clock, Region: region})
}

// Leave records leaving a region.
func (t *Tracer) Leave(region uint32) {
	t.events = append(t.events, Event{Kind: KindLeave, Time: t.clock, Region: region})
}

// Send records a message send.
func (t *Tracer) Send(peer, tag uint32, bytes uint64) {
	t.events = append(t.events, Event{Kind: KindSend, Time: t.clock, Peer: peer, Tag: tag, Bytes: bytes})
}

// Recv records a message receive completing at the current clock.
func (t *Tracer) Recv(peer, tag uint32, bytes uint64) {
	t.events = append(t.events, Event{Kind: KindRecv, Time: t.clock, Peer: peer, Tag: tag, Bytes: bytes})
}

// Events returns the collected events (for tests).
func (t *Tracer) Events() []Event { return t.events }

// EncodedSize returns the uncompressed byte size of the buffer.
func (t *Tracer) EncodedSize() int64 { return int64(len(t.events) * EventBytes) }

// encode serializes and compresses the buffer.
func (t *Tracer) encode() ([]byte, error) {
	raw := make([]byte, 0, len(t.events)*EventBytes)
	for i := range t.events {
		raw = t.events[i].Encode(raw)
	}
	var z bytes.Buffer
	zw := zlib.NewWriter(&z)
	if _, err := zw.Write(raw); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return z.Bytes(), nil
}

func decodeStream(r io.Reader) ([]Event, error) {
	zr, err := zlib.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("trace: opening compressed stream: %w", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("trace: decompressing: %w", err)
	}
	zr.Close()
	if len(raw)%EventBytes != 0 {
		return nil, fmt.Errorf("trace: stream length %d not a record multiple", len(raw))
	}
	out := make([]Event, 0, len(raw)/EventBytes)
	for len(raw) > 0 {
		e, err := DecodeEvent(raw)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		raw = raw[EventBytes:]
	}
	return out, nil
}

// --- Back-ends ----------------------------------------------------------------

// FlushSION writes the compressed buffer into a SIONlib multifile
// (collective). Like the paper's Scalasca integration, the chunk size is
// set to the buffer size so a single block suffices.
func FlushSION(comm *mpi.Comm, fsys fsio.FileSystem, name string, t *Tracer, nfiles int) error {
	enc, err := t.encode()
	if err != nil {
		return err
	}
	chunk := int64(len(enc))
	if chunk == 0 {
		chunk = 1
	}
	f, err := sion.ParOpen(comm, fsys, name, sion.WriteMode, &sion.Options{ChunkSize: chunk, NFiles: nfiles})
	if err != nil {
		return err
	}
	if _, err := f.Write(enc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// FlushTaskLocal writes the compressed buffer to a per-task physical file
// (pattern contains %d for the rank).
func FlushTaskLocal(fsys fsio.FileSystem, pattern string, t *Tracer) error {
	fh, err := fsys.Create(fmt.Sprintf(pattern, t.rank))
	if err != nil {
		return err
	}
	enc, err := t.encode()
	if err != nil {
		fh.Close()
		return err
	}
	if _, err := fh.WriteAt(enc, 0); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}

// ReadSION loads one rank's events from a multifile via the serial
// task-local view (paper §5.2: the analyzer "makes parallel use of the
// serial interface in the task-local view mode").
func ReadSION(fsys fsio.FileSystem, name string, rank int) ([]Event, error) {
	f, err := sion.OpenRank(fsys, name, rank)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return decodeStream(f)
}

// ReadTaskLocal loads one rank's events from its physical trace file.
func ReadTaskLocal(fsys fsio.FileSystem, pattern string, rank int) ([]Event, error) {
	fh, err := fsys.Open(fmt.Sprintf(pattern, rank))
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	sz, err := fh.Size()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, sz)
	if _, err := fh.ReadAt(buf, 0); err != nil && err != io.EOF {
		return nil, err
	}
	return decodeStream(bytes.NewReader(buf))
}

// --- Analysis -----------------------------------------------------------------

// WaitState is one detected late-sender inefficiency: the receiver posted
// its receive before the matching send left the sender (Scalasca's
// flagship wait-state pattern).
type WaitState struct {
	Recver   int
	Sender   int
	Tag      uint32
	WaitTime float64
}

// RegionTime aggregates inclusive time per region for one rank.
func RegionTime(events []Event) map[uint32]float64 {
	out := make(map[uint32]float64)
	open := make(map[uint32][]float64)
	for _, e := range events {
		switch e.Kind {
		case KindEnter:
			open[e.Region] = append(open[e.Region], e.Time)
		case KindLeave:
			st := open[e.Region]
			if len(st) == 0 {
				continue
			}
			out[e.Region] += e.Time - st[len(st)-1]
			open[e.Region] = st[:len(st)-1]
		}
	}
	return out
}

// AnalyzeLateSenders runs the parallel wait-state search: every rank loads
// its own trace (via load), forwards its send events to the receivers, and
// matches them with its receive events in order, like Scalasca's parallel
// trace analyzer replaying the communication.
func AnalyzeLateSenders(comm *mpi.Comm, load func(rank int) ([]Event, error)) ([]WaitState, error) {
	events, err := load(comm.Rank())
	if err != nil {
		return nil, err
	}
	const tag = 8300
	// Group my send timestamps by destination.
	byDst := make(map[int][]byte)
	for _, e := range events {
		if e.Kind == KindSend {
			rec := e
			byDst[int(e.Peer)] = rec.Encode(byDst[int(e.Peer)])
		}
	}
	for peer := 0; peer < comm.Size(); peer++ {
		if peer == comm.Rank() {
			continue
		}
		comm.Send(peer, tag, byDst[peer])
	}
	// Collect send events destined to me (including my self-sends).
	incoming := map[int][]Event{}
	selfSends := byDst[comm.Rank()]
	for len(selfSends) > 0 {
		e, _ := DecodeEvent(selfSends)
		incoming[comm.Rank()] = append(incoming[comm.Rank()], e)
		selfSends = selfSends[EventBytes:]
	}
	for peer := 0; peer < comm.Size(); peer++ {
		if peer == comm.Rank() {
			continue
		}
		buf := comm.Recv(peer, tag)
		for len(buf) > 0 {
			e, err := DecodeEvent(buf)
			if err != nil {
				return nil, err
			}
			incoming[peer] = append(incoming[peer], e)
			buf = buf[EventBytes:]
		}
	}
	// Match my receives with the sends, in (peer, tag) FIFO order.
	cursor := map[[2]uint32]int{} // (peer,tag) -> next unmatched send
	var waits []WaitState
	for _, e := range events {
		if e.Kind != KindRecv {
			continue
		}
		sends := incoming[int(e.Peer)]
		key := [2]uint32{e.Peer, e.Tag}
		idx := cursor[key]
		// Find the idx-th send with this tag.
		seen := 0
		var match *Event
		for i := range sends {
			if sends[i].Tag == e.Tag {
				if seen == idx {
					match = &sends[i]
					break
				}
				seen++
			}
		}
		cursor[key] = idx + 1
		if match == nil {
			continue
		}
		if wait := match.Time - e.Time; wait > 0 {
			waits = append(waits, WaitState{
				Recver: comm.Rank(), Sender: int(e.Peer), Tag: e.Tag, WaitTime: wait,
			})
		}
	}
	sort.Slice(waits, func(i, j int) bool { return waits[i].WaitTime > waits[j].WaitTime })
	return waits, nil
}

// --- Workload generation --------------------------------------------------------

// SMGWorkload fills the tracer with an SMG2000-like event stream: nested
// solver regions with halo-exchange communication to grid neighbours,
// sized so the uncompressed buffer reaches approximately targetBytes.
func SMGWorkload(t *Tracer, rank, size int, targetBytes int64) {
	const (
		regionSolve  = 1
		regionSmooth = 2
		regionComm   = 3
	)
	iterations := int(targetBytes / EventBytes / 8)
	if iterations < 1 {
		iterations = 1
	}
	left := uint32((rank + size - 1) % size)
	right := uint32((rank + 1) % size)
	for it := 0; it < iterations; it++ {
		t.Enter(regionSolve)
		t.Advance(0.001)
		t.Enter(regionSmooth)
		t.Advance(0.003)
		t.Leave(regionSmooth)
		t.Enter(regionComm)
		t.Send(right, uint32(it), 4096)
		t.Advance(0.0005)
		t.Recv(left, uint32(it), 4096)
		t.Leave(regionComm)
		t.Advance(0.0005)
		t.Leave(regionSolve)
	}
}
