package trace

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fsio"
	"repro/internal/mpi"
)

func TestEventEncodeDecodeRoundTrip(t *testing.T) {
	f := func(kind uint8, time float64, region, peer, tag uint32, bytes uint64) bool {
		k := Kind(kind%4) + KindEnter
		e := Event{Kind: k, Time: time, Region: region, Peer: peer, Tag: tag, Bytes: bytes}
		enc := e.Encode(nil)
		if len(enc) != EventBytes {
			return false
		}
		got, err := DecodeEvent(enc)
		if err != nil {
			return false
		}
		if math.IsNaN(time) {
			return got.Kind == e.Kind
		}
		return got == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsBadKind(t *testing.T) {
	e := Event{Kind: KindEnter}
	enc := e.Encode(nil)
	enc[0] = 99
	if _, err := DecodeEvent(enc); err == nil {
		t.Fatal("bad kind accepted")
	}
}

func TestTracerCollectsAndSizes(t *testing.T) {
	tr := NewTracer(0)
	tr.Enter(1)
	tr.Advance(0.5)
	tr.Send(1, 7, 100)
	tr.Recv(1, 8, 100)
	tr.Leave(1)
	if got := len(tr.Events()); got != 4 {
		t.Fatalf("events = %d", got)
	}
	if tr.EncodedSize() != 4*EventBytes {
		t.Fatalf("EncodedSize = %d", tr.EncodedSize())
	}
	if tr.Events()[3].Time != 0.5 {
		t.Fatalf("clock not applied: %v", tr.Events()[3])
	}
}

func TestFlushReadSIONAndTaskLocal(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	const n = 4
	mpi.Run(n, func(c *mpi.Comm) {
		tr := NewTracer(c.Rank())
		SMGWorkload(tr, c.Rank(), n, 8192)
		if err := FlushSION(c, fsys, "trace.sion", tr, 2); err != nil {
			t.Error(err)
			return
		}
		if err := FlushTaskLocal(fsys, "trace-%d.z", tr); err != nil {
			t.Error(err)
			return
		}
	})
	for r := 0; r < n; r++ {
		a, err := ReadSION(fsys, "trace.sion", r)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ReadTaskLocal(fsys, "trace-%d.z", r)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) == 0 || len(a) != len(b) {
			t.Fatalf("rank %d: SION %d events, task-local %d", r, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("rank %d: event %d differs between back-ends", r, i)
			}
		}
	}
}

func TestRegionTime(t *testing.T) {
	tr := NewTracer(0)
	tr.Enter(1)
	tr.Advance(2)
	tr.Enter(2)
	tr.Advance(3)
	tr.Leave(2)
	tr.Advance(1)
	tr.Leave(1)
	rt := RegionTime(tr.Events())
	if math.Abs(rt[1]-6) > 1e-12 || math.Abs(rt[2]-3) > 1e-12 {
		t.Fatalf("region times = %v", rt)
	}
}

// A deliberately late sender must be detected by the parallel analysis.
func TestAnalyzeLateSenders(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	const n = 2
	mpi.Run(n, func(c *mpi.Comm) {
		tr := NewTracer(c.Rank())
		if c.Rank() == 0 {
			// Sender dawdles: send happens at t=5.
			tr.Advance(5)
			tr.Send(1, 1, 64)
		} else {
			// Receiver posts the receive at t=1 → 4s late-sender wait.
			tr.Advance(1)
			tr.Recv(0, 1, 64)
		}
		if err := FlushSION(c, fsys, "ls.sion", tr, 1); err != nil {
			t.Error(err)
			return
		}
	})
	mpi.Run(n, func(c *mpi.Comm) {
		waits, err := AnalyzeLateSenders(c, func(rank int) ([]Event, error) {
			return ReadSION(fsys, "ls.sion", rank)
		})
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 1 {
			if len(waits) != 1 {
				t.Errorf("rank 1: %d wait states, want 1", len(waits))
				return
			}
			w := waits[0]
			if w.Sender != 0 || w.Recver != 1 || math.Abs(w.WaitTime-4) > 1e-9 {
				t.Errorf("wait state = %+v", w)
			}
		} else if len(waits) != 0 {
			t.Errorf("rank 0: unexpected wait states %v", waits)
		}
	})
}

// SMG workload ring communication: every receive eventually matches, and
// the analyzer completes on all ranks without error.
func TestAnalyzeSMGWorkload(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	const n = 5
	mpi.Run(n, func(c *mpi.Comm) {
		tr := NewTracer(c.Rank())
		SMGWorkload(tr, c.Rank(), n, 4096)
		if err := FlushSION(c, fsys, "smg.sion", tr, 1); err != nil {
			t.Error(err)
		}
	})
	mpi.Run(n, func(c *mpi.Comm) {
		if _, err := AnalyzeLateSenders(c, func(rank int) ([]Event, error) {
			return ReadSION(fsys, "smg.sion", rank)
		}); err != nil {
			t.Error(err)
		}
	})
}

func TestCompressionIsEffective(t *testing.T) {
	tr := NewTracer(0)
	SMGWorkload(tr, 0, 4, 1<<16)
	enc, err := tr.encode()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(enc))*3 > tr.EncodedSize() {
		t.Fatalf("zlib compressed %d of %d bytes: ineffective", len(enc), tr.EncodedSize())
	}
}

func TestBuildProfileAndReduce(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	const n = 4
	mpi.Run(n, func(c *mpi.Comm) {
		tr := NewTracer(c.Rank())
		SMGWorkload(tr, c.Rank(), n, 4096)
		if err := FlushSION(c, fsys, "p.sion", tr, 1); err != nil {
			t.Error(err)
		}
	})
	mpi.Run(n, func(c *mpi.Comm) {
		events, err := ReadSION(fsys, "p.sion", c.Rank())
		if err != nil {
			t.Error(err)
			return
		}
		p := BuildProfile(c.Rank(), events)
		if p.Sends == 0 || p.Recvs == 0 || p.Events != len(events) {
			t.Errorf("rank %d: profile %+v", c.Rank(), p)
		}
		g := ReduceProfiles(c, p)
		if c.Rank() == 0 {
			if g == nil || g.Ranks != n {
				t.Fatalf("global profile %+v", g)
			}
			if g.Events != int64(n*p.Events) {
				t.Errorf("global events %d, want %d", g.Events, n*p.Events)
			}
			if g.Sends != int64(n*p.Sends) {
				t.Errorf("global sends %d", g.Sends)
			}
			if len(g.RegionTime) == 0 {
				t.Error("no region times in global profile")
			}
			var buf bytes.Buffer
			g.Format(&buf)
			if !bytes.Contains(buf.Bytes(), []byte("ranks:")) {
				t.Error("Format output incomplete")
			}
		} else if g != nil {
			t.Errorf("rank %d: non-root got global profile", c.Rank())
		}
	})
}

func TestAnalyzeLateReceivers(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	const n = 2
	mpi.Run(n, func(c *mpi.Comm) {
		tr := NewTracer(c.Rank())
		if c.Rank() == 0 {
			// Send posted at t=1; receiver not ready until t=6.
			tr.Advance(1)
			tr.Send(1, 3, 128)
		} else {
			tr.Advance(6)
			tr.Recv(0, 3, 128)
		}
		if err := FlushSION(c, fsys, "lr.sion", tr, 1); err != nil {
			t.Error(err)
		}
	})
	mpi.Run(n, func(c *mpi.Comm) {
		waits, err := AnalyzeLateReceivers(c, func(rank int) ([]Event, error) {
			return ReadSION(fsys, "lr.sion", rank)
		})
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			if len(waits) != 1 || math.Abs(waits[0].WaitTime-5) > 1e-9 {
				t.Errorf("late-receiver waits = %+v", waits)
			}
		} else if len(waits) != 0 {
			t.Errorf("rank 1: unexpected waits %+v", waits)
		}
	})
}
