package expt

import (
	"fmt"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/mpi"
	"repro/internal/simfs"
)

// bwPair measures the write and read bandwidth of one multifile
// configuration: total bytes spread over ntasks tasks and nfiles physical
// files, chunks equal to the per-task share. The timed windows exclude the
// collective opens (the paper reports pure transfer bandwidth).
func bwPair(fs *simfs.FS, ntasks, nfiles int, total int64, fsblk int64) (write, read float64) {
	perTask := total / int64(ntasks)
	var tw, tr float64
	simRun(fs, ntasks, func(c *mpi.Comm, v fsio.FileSystem) {
		f, err := sion.ParOpen(c, v, "data/bench.sion", sion.WriteMode,
			&sion.Options{ChunkSize: perTask, NFiles: nfiles, FSBlockSize: fsblk})
		if err != nil {
			panic(err)
		}
		t0 := syncStart(c)
		if err := f.WriteSynthetic(perTask); err != nil {
			panic(err)
		}
		if t := allMaxTime(c) - t0; c.Rank() == 0 {
			tw = t
		}
		f.Close()

		r, err := sion.ParOpen(c, v, "data/bench.sion", sion.ReadMode, nil)
		if err != nil {
			panic(err)
		}
		t1 := syncStart(c)
		if _, err := r.ReadSynthetic(perTask); err != nil {
			panic(err)
		}
		if t := allMaxTime(c) - t1; c.Rank() == 0 {
			tr = t
		}
		r.Close()
	})
	return float64(total) / tw / 1e6, float64(total) / tr / 1e6
}

// Fig4a regenerates Figure 4(a): bandwidth vs number of underlying
// physical files on Jugene (64K tasks, 1 TB).
func Fig4a(scale int) *Result {
	res := &Result{
		Name:   "fig4a",
		Title:  "Fig. 4a: bandwidth vs #physical files (Jugene, 64k tasks, 1 TB)",
		Header: []string{"files", "write(MB/s)", "read(MB/s)"},
	}
	ntasks := scaleDown(65536, scale, 64)
	total := int64(1<<40) / int64(scale)
	for _, nf := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		if nf > ntasks {
			break
		}
		fs := simfs.New(simfs.Jugene())
		w, r := bwPair(fs, ntasks, nf, total, 0)
		res.Rows = append(res.Rows, []string{fmt.Sprintf("%d", nf),
			fmt.Sprintf("%.0f", w), fmt.Sprintf("%.0f", r)})
	}
	res.Notes = append(res.Notes,
		"paper shape: rises from ≈2–2.5 GB/s at 1 file, saturates between 8 and 32 files near the 6 GB/s system peak")
	return res
}

// Fig4b regenerates Figure 4(b): bandwidth vs number of physical files on
// Jaguar (2K tasks, 1 TB) under the default Lustre striping (4 OSTs, 1 MB)
// and the optimized striping (64 OSTs, 8 MB).
func Fig4b(scale int) *Result {
	res := &Result{
		Name:  "fig4b",
		Title: "Fig. 4b: bandwidth vs #physical files, default vs optimized striping (Jaguar, 2k tasks, 1 TB)",
		Header: []string{"files", "write-opt(MB/s)", "read-opt(MB/s)",
			"write-def(MB/s)", "read-def(MB/s)"},
	}
	ntasks := scaleDown(2048, scale, 64)
	total := int64(1<<40) / int64(scale)
	for _, nf := range []int{1, 2, 4, 8, 16, 32, 64} {
		if nf > ntasks {
			break
		}
		fsOpt := simfs.New(simfs.Jaguar())
		fsOpt.SetStriping("data", 64, 8<<20)
		wo, ro := bwPair(fsOpt, ntasks, nf, total, 0)

		fsDef := simfs.New(simfs.Jaguar()) // default: 4 OSTs × 1 MB
		wd, rd := bwPair(fsDef, ntasks, nf, total, 0)

		res.Rows = append(res.Rows, []string{fmt.Sprintf("%d", nf),
			fmt.Sprintf("%.0f", wo), fmt.Sprintf("%.0f", ro),
			fmt.Sprintf("%.0f", wd), fmt.Sprintf("%.0f", rd)})
	}
	res.Notes = append(res.Notes,
		"paper shape: default striping climbs steadily to ≈32 files; optimized is good from 2 files on and always superior")
	return res
}
