package expt

import (
	"bytes"
	"fmt"
	"sort"

	sion "repro/internal/core"
	"repro/internal/cluster"
	"repro/internal/fsio"
	"repro/internal/mpi"
	"repro/internal/serve"
	"repro/internal/simfs"
)

// Table 9 (extension): scale-out of the serving tier (internal/cluster).
// tab6 showed one serve node amortizing a zipfian client storm through
// its block cache; tab9 asks what N nodes buy. The naive scale-out — N
// independent caches behind a round-robin balancer — multiplies backend
// traffic by ~N, because every node faults the same hot working set in
// separately. The cluster router instead consistent-hashes blocks across
// the ring (each block cached on exactly one node), peer-fills remapped
// blocks from surviving caches across join/leave, and replicates the
// hottest blocks for load spreading: the working set is read from the
// backend once per cluster, not once per node.
//
// The experiment replays the identical zipfian trace (same LCG seed as
// tab6's generator) through three arrangements of the same per-node
// cache budget: 3 independent serve nodes round-robined, the 3-node
// cluster, and the 3-node cluster with a node joining and another
// leaving mid-storm. It asserts, in-run (panics abort the table):
//
//   - every window and full-stream read is byte-identical to the written
//     payload, in every mode, including mid-churn;
//   - the 3-node cluster issues at least 2× fewer backend read requests
//     than the 3 independent caches on the same trace;
//   - the per-client backend-request tail stays bounded across the
//     join/leave churn (p99 ≤ tab9P99Bound — the latency proxy in a
//     request-counting simulation: a client's stall is the backend
//     requests its reads must wait on);
//   - a replay of the cluster run from the same seed reproduces the
//     request counters exactly.
const (
	tab9Writers   = 256
	tab9Chunk     = int64(64) << 10 // one 64 KiB FS block per chunk
	tab9NFiles    = 2
	tab9Clients   = 8192 // 32 clients per writer: reuse-dominated at every scale
	tab9Reads     = 4    // random windows per client
	tab9ReadLen   = 2048 // bytes per window
	tab9Nodes     = 3
	tab9Seed      = uint64(0x5107a) // tab6's client-trace seed
	tab9P99Bound  = int64(8)        // max backend requests per client, churn mode
	tab9HotEvery  = 64              // clients between RebalanceHot calls
)

// tab9CacheBytes is each node's cache budget: half the storm's working
// set, at every scale. The 3-node aggregate (1.5× the working set) holds
// everything; any single node cannot — the provisioning a partitioned
// cluster exists for. Independent nodes, each serving the whole zipfian
// population from half-sized caches, churn their LRU tails; the cluster
// gives every node only its ring share (~1/3) and never evicts.
func tab9CacheBytes(nwriters int) int64 {
	var ws int64
	for g := 0; g < nwriters; g++ {
		ws += int64(tab9Size(g))
	}
	return ws / 2
}

// tab9NodeConfig is every node's serve configuration, identical in all
// modes. Span merging is adjacent-only (MaxSpanGap -1): gap merging
// trades a fat over-fetch for one request, which deflates the request
// counter the comparison is about — with it off, both modes pay one
// request per cold block and the table isolates the cache economics.
func tab9NodeConfig(nwriters int) *serve.Config {
	// One shard: the scaled-down cache is a few dozen blocks, and split
	// over the default 16 shards each shard holds one or two — eviction
	// would be governed by shard collisions, not by the LRU order the
	// comparison reasons about.
	return &serve.Config{CacheBytes: tab9CacheBytes(nwriters), MaxSpanGap: -1, Shards: 1}
}

// tab9Size is writer g's payload size: ~3.5 chunks, varied per rank —
// fatter than tab6's so the storm's economics are dominated by data
// blocks, not by the fixed per-node layout parse, and so the full-scale
// working set overflows one node's cache but fits the cluster's
// aggregate.
func tab9Size(g int) int {
	return 3*int(tab9Chunk) + int(tab9Chunk)/2 + g%251
}

// tab9Client replays one client of the zipfian storm: a zipfian rank,
// tab9Reads random windows, every 16th client streams its whole rank —
// every byte verified against the written payload.
func tab9Client(c int, rng *tab6Rand, zipf *tab6Zipf, open func(g int) sion.LogicalReaderAt) {
	g := zipf.sample(rng)
	want := taskPayload(g, tab9Size(g))
	h := open(g)
	for i := 0; i < tab9Reads; i++ {
		off := int64(rng.next() % uint64(len(want)-tab9ReadLen))
		buf := make([]byte, tab9ReadLen)
		if _, err := h.ReadLogicalAt(buf, off); err != nil {
			panic(fmt.Sprintf("tab9: client %d rank %d window at %d: %v", c, g, off, err))
		}
		if !bytes.Equal(buf, want[off:off+tab9ReadLen]) {
			panic(fmt.Sprintf("tab9: client %d rank %d window at %d: bytes differ", c, g, off))
		}
	}
	if c%16 == 0 {
		buf := make([]byte, len(want))
		if _, err := h.ReadLogicalAt(buf, 0); err != nil {
			panic(fmt.Sprintf("tab9: client %d rank %d full stream: %v", c, g, err))
		}
		if !bytes.Equal(buf, want) {
			panic(fmt.Sprintf("tab9: client %d rank %d: full stream differs", c, g))
		}
	}
}

// tab9Run is one mode's measurement: write the multifile fresh, replay
// the zipfian trace through `storm`, and return the read-phase backend
// request count plus the per-client backend-request tail.
type tab9Run struct {
	readReqs int64
	p99      int64
	cl       cluster.Stats // zero for the independent mode
}

// tab9Storm drives the client loop, measuring each client's backend
// request cost, with a hook before each client (membership churn).
func tab9Storm(fs *simfs.FS, nwriters, nclients int, before func(c int), open func(g int) sion.LogicalReaderAt) []int64 {
	rng := &tab6Rand{x: tab9Seed}
	zipf := newTab6Zipf(nwriters)
	costs := make([]int64, 0, nclients)
	prev := tab6Stats(fs, "tab9.sion", tab9NFiles).ReadRequests
	for c := 0; c < nclients; c++ {
		if before != nil {
			before(c)
		}
		tab9Client(c, rng, zipf, open)
		now := tab6Stats(fs, "tab9.sion", tab9NFiles).ReadRequests
		costs = append(costs, now-prev)
		prev = now
	}
	return costs
}

// tab9P99 is the 99th percentile of the per-client cost samples.
func tab9P99(costs []int64) int64 {
	if len(costs) == 0 {
		return 0
	}
	s := append([]int64(nil), costs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := len(s) * 99 / 100
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// tab9Write builds a fresh simulated machine with the multifile written
// and caches dropped, returning the fs and the write-phase stats.
func tab9Write(nwriters int) (*simfs.FS, simfs.FileStats) {
	fs := simfs.New(tab6Profile())
	simRun(fs, nwriters, func(c *mpi.Comm, v fsio.FileSystem) {
		f, err := sion.ParOpen(c, v, "tab9.sion", sion.WriteMode, &sion.Options{
			ChunkSize: tab9Chunk, NFiles: tab9NFiles,
		})
		if err != nil {
			panic(err)
		}
		if _, err := f.Write(taskPayload(c.Rank(), tab9Size(c.Rank()))); err != nil {
			panic(err)
		}
		if err := f.Close(); err != nil {
			panic(err)
		}
	})
	wst := tab6Stats(fs, "tab9.sion", tab9NFiles)
	fs.ResetServers()
	fs.DropCaches()
	return fs, wst
}

// tab9Independent is the naive scale-out: three independent serve nodes,
// each with the per-node cache budget, clients round-robined across them.
func tab9Independent(nwriters, nclients int) tab9Run {
	fs, wst := tab9Write(nwriters)
	nodes := make([]*serve.Server, tab9Nodes)
	for i := range nodes {
		srv, err := serve.New(fs.View(nwriters+1+i, nil), "tab9.sion", tab9NodeConfig(nwriters))
		if err != nil {
			panic(err)
		}
		nodes[i] = srv
	}
	cur := 0
	costs := tab9Storm(fs, nwriters, nclients, func(c int) { cur = c % tab9Nodes }, func(g int) sion.LogicalReaderAt {
		h, err := nodes[cur].Open(g)
		if err != nil {
			panic(err)
		}
		return h
	})
	for _, srv := range nodes {
		if err := srv.Close(); err != nil {
			panic(err)
		}
	}
	st := tab6Stats(fs, "tab9.sion", tab9NFiles)
	return tab9Run{readReqs: st.ReadRequests - wst.ReadRequests, p99: tab9P99(costs)}
}

// tab9Cluster is the router: tab9Nodes nodes on the hash ring with hot
// replication, periodic RebalanceHot, and — when churn is set — a node
// joining a third of the way through the storm and another leaving at
// two thirds, with serving (and byte identity) uninterrupted.
func tab9Cluster(nwriters, nclients int, churn bool) tab9Run {
	fs, wst := tab9Write(nwriters)
	cl := cluster.New(&cluster.Config{VNodes: 64, ReplicateHot: 2, HotMinHits: 8})
	join := func(i int) {
		id := fmt.Sprintf("n%d", i)
		if _, err := cl.Join(id, fs.View(nwriters+1+i, nil), "tab9.sion", tab9NodeConfig(nwriters)); err != nil {
			panic(fmt.Sprintf("tab9: join %s: %v", id, err))
		}
	}
	for i := 0; i < tab9Nodes; i++ {
		join(i)
	}
	before := func(c int) {
		if c > 0 && c%tab9HotEvery == 0 {
			cl.RebalanceHot()
		}
		if churn {
			switch c {
			case nclients / 3:
				join(tab9Nodes) // a fresh node takes over ~1/4 of the blocks
			case 2 * nclients / 3:
				if err := cl.Leave("n1"); err != nil {
					panic(fmt.Sprintf("tab9: leave n1: %v", err))
				}
			}
		}
	}
	costs := tab9Storm(fs, nwriters, nclients, before, func(g int) sion.LogicalReaderAt {
		h, err := cl.Open(g)
		if err != nil {
			panic(err)
		}
		return h
	})
	run := tab9Run{cl: cl.Stats(), p99: tab9P99(costs)}
	if err := cl.Close(); err != nil {
		panic(err)
	}
	st := tab6Stats(fs, "tab9.sion", tab9NFiles)
	run.readReqs = st.ReadRequests - wst.ReadRequests
	return run
}

// Table9 regenerates the serving-tier scale-out table. See the package
// comment above the tab9 constants for the asserted claims.
func Table9(scale int) *Result {
	res := &Result{
		Name:   "tab9",
		Title:  "Table 9 (ext): clustered serving tier (internal/cluster), zipfian storm over 3-5 nodes, jugene, 64 KiB blocks",
		Header: []string{"read mode", "writers", "clients", "rd reqs", "peer fills", "failovers", "p99/client", "redux"},
	}
	// Floors keep the scaled-down storm hot: with too many ranks per
	// client the zipf tail is read on only one of the independent nodes
	// and the duplication the cluster removes never builds up.
	nwriters := scaleDown(tab9Writers, scale, 16)
	nclients := scaleDown(tab9Clients, scale, 512)

	ind := tab9Independent(nwriters, nclients)
	clu := tab9Cluster(nwriters, nclients, false)
	chu := tab9Cluster(nwriters, nclients, true)
	replay := tab9Cluster(nwriters, nclients, false)

	// The claims, asserted where the numbers are born so every consumer
	// (sionbench, go test, CI) trips on a regression.
	redux := float64(ind.readReqs) / float64(clu.readReqs)
	if redux < 2 {
		panic(fmt.Sprintf("tab9: cluster reduced backend reads only %.2fx over independent caches (%d vs %d), want >= 2x",
			redux, clu.readReqs, ind.readReqs))
	}
	if chu.p99 > tab9P99Bound {
		panic(fmt.Sprintf("tab9: churn p99 backend requests per client = %d, bound %d", chu.p99, tab9P99Bound))
	}
	if chu.cl.AllReplicasDown != 0 {
		panic(fmt.Sprintf("tab9: %d reads exhausted all replicas during churn", chu.cl.AllReplicasDown))
	}
	if replay.readReqs != clu.readReqs || replay.cl.Requests != clu.cl.Requests ||
		replay.cl.Serve.PeerFills != clu.cl.Serve.PeerFills || replay.cl.Serve.BackendReads != clu.cl.Serve.BackendReads {
		panic(fmt.Sprintf("tab9: replay diverged: reads %d vs %d, routed %d vs %d, peer fills %d vs %d, backend %d vs %d",
			replay.readReqs, clu.readReqs, replay.cl.Requests, clu.cl.Requests,
			replay.cl.Serve.PeerFills, clu.cl.Serve.PeerFills, replay.cl.Serve.BackendReads, clu.cl.Serve.BackendReads))
	}

	row := func(label string, r tab9Run, redux string) {
		pf, fo := "-", "-"
		if r.cl.Nodes > 0 || r.cl.Requests > 0 {
			pf = fmt.Sprintf("%d", r.cl.Serve.PeerFills)
			fo = fmt.Sprintf("%d", r.cl.Failovers)
		}
		res.Rows = append(res.Rows, []string{
			label, kfmt(nwriters), kfmt(nclients),
			fmt.Sprintf("%d", r.readReqs), pf, fo,
			fmt.Sprintf("%d", r.p99), redux,
		})
	}
	row(fmt.Sprintf("independent-%d", tab9Nodes), ind, "1.0x")
	row(fmt.Sprintf("cluster-%d", tab9Nodes), clu, fmt.Sprintf("%.1fx", redux))
	row("cluster-join/leave", chu, fmt.Sprintf("%.1fx", float64(ind.readReqs)/float64(chu.readReqs)))
	row("cluster-replay", replay, "identical")

	res.Notes = append(res.Notes,
		fmt.Sprintf("identical zipf(1.2) trace (seed %#x) in every mode; %d windows of %d B per client, every 16th client streams its rank; byte identity asserted in-run",
			tab9Seed, tab9Reads, tab9ReadLen),
		fmt.Sprintf("independent: %d serve nodes round-robined, each faulting the zipfian working set into its own half-working-set cache (%d KiB here)", tab9Nodes, tab9CacheBytes(nwriters)>>10),
		"cluster: blocks consistent-hashed across the ring (cached once cluster-wide), hottest blocks replicated 2x with reads rotating across replicas",
		fmt.Sprintf("join/leave: a 4th node joins at storm third, node n1 leaves at two thirds; remapped blocks peer-fill from surviving caches; p99 backend requests per client bounded at %d", tab9P99Bound),
		"replay: rerunning the cluster mode from the seed reproduces request counters exactly (asserted)")
	return res
}
