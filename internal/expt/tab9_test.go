package expt

import (
	"strings"
	"testing"
)

// TestTable9Findings asserts the serving-tier scale-out claims on the
// generated table. The hard guarantees — byte identity in every mode
// (including mid-churn), the ≥2× backend-read reduction, the bounded
// churn tail, and the exact replay — are asserted inside Table9 itself
// (it panics), so this test mostly pins the table's shape and the
// secondary signals.
func TestTable9Findings(t *testing.T) {
	r := Table9(testScale)
	if len(r.Rows) != 4 {
		t.Fatalf("tab9 has %d rows, want 4", len(r.Rows))
	}
	const (
		colRdReqs    = 3
		colPeerFills = 4
		colFailovers = 5
		colP99       = 6
		colRedux     = 7
	)
	ind := cell(t, r, 0, colRdReqs)
	clu := cell(t, r, 1, colRdReqs)
	chu := cell(t, r, 2, colRdReqs)
	if clu*2 > ind {
		t.Errorf("cluster backend reads %.0f not ≥2× below independent %.0f", clu, ind)
	}
	// Churn costs something (the departed node's cache is lost) but must
	// stay the same order as the steady cluster — nowhere near the
	// independent baseline.
	if chu*1.5 > ind {
		t.Errorf("churn backend reads %.0f lost the cluster's reduction (independent %.0f)", chu, ind)
	}
	// Join/leave remapping is served by peer fills, and more of them than
	// the steady run's hot replication alone.
	if pfSteady, pfChurn := cell(t, r, 1, colPeerFills), cell(t, r, 2, colPeerFills); pfChurn <= pfSteady {
		t.Errorf("churn peer fills %.0f not above steady %.0f — remapped blocks did not fill from peers", pfChurn, pfSteady)
	}
	// No replica exhaustion, no failover churn in a healthy storm.
	for row := 1; row <= 2; row++ {
		if fo := cell(t, r, row, colFailovers); fo != 0 {
			t.Errorf("row %d: %f failovers in a storm with no injected faults", row, fo)
		}
	}
	// The bounded-tail claim, re-checked on the table.
	if p99 := cell(t, r, 2, colP99); p99 > float64(tab9P99Bound) {
		t.Errorf("churn p99 %.0f above bound %d", p99, tab9P99Bound)
	}
	// The replay row is literally identical to the steady cluster row.
	if rep := cell(t, r, 3, colRdReqs); rep != clu {
		t.Errorf("replay reads %.0f differ from cluster %.0f", rep, clu)
	}
	if got := r.Rows[3][colRedux]; got != "identical" {
		t.Errorf("replay redux cell = %q, want \"identical\"", got)
	}
}

// TestTable9Registered pins the experiment's registration in the runner
// tables (sionbench -exp tab9, All, Names).
func TestTable9Registered(t *testing.T) {
	if ByName("tab9") == nil || ByName("table9") == nil {
		t.Fatal("tab9 not resolvable via ByName")
	}
	found := false
	for _, n := range Names() {
		if n == "tab9" {
			found = true
		}
	}
	if !found {
		t.Fatalf("tab9 missing from Names(): %v", Names())
	}
	if !strings.HasPrefix(Names()[len(Names())-1], "tab") {
		t.Fatalf("Names() tail unexpected: %v", Names())
	}
}
