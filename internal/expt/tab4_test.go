package expt

import (
	"bytes"
	"fmt"
	"testing"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/mpi"
	"repro/internal/simfs"
)

// TestTable4Findings asserts the buffered-staging claims the experiment
// was built to prove: on the small-record direct-path workload the
// auto-buffered run issues at least 10× fewer simfs write requests than
// the unbuffered run, its simulated wall time is no worse, and the reads
// collapse the same way.
func TestTable4Findings(t *testing.T) {
	r := Table4(testScale)
	if len(r.Rows) != 3 {
		t.Fatalf("tab4 has %d rows, want 3", len(r.Rows))
	}
	const (
		colWrReqs = 2
		colWriteT = 3
		colRdReqs = 4
		colReadT  = 5
	)
	directWr := cell(t, r, 0, colWrReqs)
	autoWr := cell(t, r, 2, colWrReqs)
	if autoWr*10 > directWr {
		t.Errorf("buffered-auto write requests %.0f not ≥10× below direct %.0f", autoWr, directWr)
	}
	directRd := cell(t, r, 0, colRdReqs)
	autoRd := cell(t, r, 2, colRdReqs)
	if autoRd*10 > directRd {
		t.Errorf("buffered-auto read requests %.0f not ≥10× below direct %.0f", autoRd, directRd)
	}
	// The single-block buffer sits between the extremes.
	oneBlkWr := cell(t, r, 1, colWrReqs)
	if !(autoWr <= oneBlkWr && oneBlkWr < directWr) {
		t.Errorf("write requests not ordered: auto %.0f ≤ 1blk %.0f < direct %.0f", autoWr, oneBlkWr, directWr)
	}
	// Simulated wall time: buffered must not lose to unbuffered.
	directT := cell(t, r, 0, colWriteT)
	autoT := cell(t, r, 2, colWriteT)
	if autoT > directT {
		t.Errorf("buffered-auto write time %.3f worse than direct %.3f", autoT, directT)
	}
	if dr, ar := cell(t, r, 0, colReadT), cell(t, r, 2, colReadT); ar > dr {
		t.Errorf("buffered-auto read time %.3f worse than direct %.3f", ar, dr)
	}
}

// TestTable4ByteIdentity writes real payloads through the direct path on
// the simulated file system with every BufferSize class (unbuffered,
// tiny, one block, auto, huge) and asserts the physical multifile
// segments are byte-identical to the unbuffered ones.
func TestTable4ByteIdentity(t *testing.T) {
	const ntasks = 8
	const chunk = int64(96 << 10) // 1.5 FS blocks: exercises aligned flush tails
	fs := simfs.New(tab4Profile())

	write := func(file string, bufSize int64) {
		simRun(fs, ntasks, func(c *mpi.Comm, v fsio.FileSystem) {
			f, err := sion.ParOpen(c, v, file, sion.WriteMode, &sion.Options{
				ChunkSize: chunk, NFiles: 2, BufferSize: bufSize,
			})
			if err != nil {
				panic(err)
			}
			payload := taskBytes(c.Rank(), int(2*chunk)+37*c.Rank())
			for off := 0; off < len(payload); {
				end := off + 200 + 77*(off%3)
				if end > len(payload) {
					end = len(payload)
				}
				if _, err := f.Write(payload[off:end]); err != nil {
					panic(err)
				}
				off = end
			}
			if err := f.Close(); err != nil {
				panic(err)
			}
		})
	}

	write("plain.sion", 0)
	for _, bs := range []int64{129, tab4Profile().FSBlockSize, sion.BufferAuto, 8 << 20} {
		file := fmt.Sprintf("buf%d.sion", bs)
		write(file, bs)
		for k := 0; k < 2; k++ {
			mustSameBytes(t, fs, segName("plain.sion", k), segName(file, k), bs)
		}
	}
}

// taskBytes generates a deterministic per-task payload.
func taskBytes(task, size int) []byte {
	out := make([]byte, size)
	x := uint32(task*2654435761 + 97)
	for i := range out {
		x = x*1664525 + 1013904223
		out[i] = byte(x >> 24)
	}
	return out
}

// segName mirrors the multifile physical naming (base, base.000001, …).
func segName(base string, k int) string {
	if k == 0 {
		return base
	}
	return fmt.Sprintf("%s.%06d", base, k)
}

// mustSameBytes compares two simulated files byte-for-byte through
// offline (nil-proc) views.
func mustSameBytes(t *testing.T, fs *simfs.FS, a, b string, bufSize int64) {
	t.Helper()
	v := fs.View(0, nil)
	fa, err := v.Open(a)
	if err != nil {
		t.Fatalf("buffer %d: %v", bufSize, err)
	}
	defer fa.Close()
	fb, err := v.Open(b)
	if err != nil {
		t.Fatalf("buffer %d: %v", bufSize, err)
	}
	defer fb.Close()
	sa, _ := fa.Size()
	sb, _ := fb.Size()
	if sa != sb {
		t.Fatalf("buffer %d: %s and %s sizes differ: %d vs %d", bufSize, a, b, sa, sb)
	}
	ba := make([]byte, sa)
	bb := make([]byte, sb)
	fa.ReadAt(ba, 0)
	fb.ReadAt(bb, 0)
	if !bytes.Equal(ba, bb) {
		t.Errorf("buffer %d: %s is not byte-identical to %s", bufSize, b, a)
	}
}
