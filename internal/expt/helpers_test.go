package expt

import (
	"math"
	"testing"

	"repro/internal/fsio"
	"repro/internal/mpi"
	"repro/internal/simfs"
	"repro/internal/vtime"
)

type fsioFS = fsio.FileSystem

func TestKfmt(t *testing.T) {
	cases := map[int]string{512: "512", 1024: "1k", 4096: "4k", 65536: "64k", 1000: "1000"}
	for n, want := range cases {
		if got := kfmt(n); got != want {
			t.Errorf("kfmt(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestScaleDown(t *testing.T) {
	if got := scaleDown(65536, 16, 2); got != 4096 {
		t.Errorf("scaleDown = %d", got)
	}
	if got := scaleDown(100, 1000, 7); got != 7 {
		t.Errorf("min not enforced: %d", got)
	}
	if got := scaleDown(64, 0, 1); got != 64 {
		t.Errorf("scale<1 not clamped: %d", got)
	}
}

func TestProfileByName(t *testing.T) {
	if profileByName("jugene").Name != "jugene" || profileByName("jaguar").Name != "jaguar" {
		t.Fatal("profile lookup broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown profile did not panic")
		}
	}()
	profileByName("bluewaters")
}

// allMaxTime must return the true maximum clock across ranks.
func TestAllMaxTime(t *testing.T) {
	e := vtime.NewEngine()
	mpi.RunSim(e, 5, mpi.DefaultCost, func(c *mpi.Comm) {
		c.Advance(float64(c.Rank()) * 1.5)
		got := allMaxTime(c)
		if got < 6.0 {
			t.Errorf("rank %d: allMaxTime = %g, want ≥ 6.0", c.Rank(), got)
		}
	})
}

// syncStart must leave every rank at the same virtual time.
func TestSyncStart(t *testing.T) {
	e := vtime.NewEngine()
	times := make([]float64, 4)
	mpi.RunSim(e, 4, mpi.DefaultCost, func(c *mpi.Comm) {
		c.Advance(float64(3 - c.Rank()))
		times[c.Rank()] = syncStart(c)
	})
	for r := 1; r < 4; r++ {
		if math.Abs(times[r]-times[0]) > 1e-9 {
			t.Fatalf("ranks not aligned: %v", times)
		}
	}
}

// simRun returns the makespan (max across ranks).
func TestSimRunMakespan(t *testing.T) {
	fs := simfs.New(simfs.Jugene())
	end := simRun(fs, 3, func(c *mpi.Comm, _ fsioFS) {
		c.Advance(float64(c.Rank()))
	})
	if end != 2.0 {
		t.Fatalf("makespan = %g, want 2", end)
	}
}
