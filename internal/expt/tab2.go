package expt

import (
	"fmt"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/mpi"
	"repro/internal/simfs"
)

// Table 2 constants: the Scalasca/SMG2000 measurement on 32K cores of
// Jugene with an aggregate trace volume of 1470 GB over 16 physical files.
const (
	tab2Tasks      = 32768
	tab2TraceBytes = int64(1470) << 30
	tab2NFiles     = 16
	// Measurement-system initialization that is unrelated to file I/O
	// (buffer allocation, instrumentation bring-up); the paper's SIONlib
	// activation of 28.1 s contains "pure file creation consuming roughly
	// 1 s", putting this at ≈27 s.
	tab2InitSecs = 27.0
	// Scalasca's EPIK archive creates two per-task files (definitions +
	// event trace) in the task-local mode.
	tab2FilesPerTask = 2
	// Effective per-task trace emission rate: compressed trace data is
	// produced while Scalasca drains and orders its buffers, which is what
	// holds the paper's write bandwidth at ≈2.2 GB/s, far under the 6 GB/s
	// file-system peak.
	tab2SourceRate = 108e3
)

// Table2 regenerates Table 2: Scalasca trace measurement activation time
// and write bandwidth with and without SIONlib for a 32K-core SMG2000 run.
func Table2(scale int) *Result {
	res := &Result{
		Name:   "tab2",
		Title:  "Table 2: Scalasca trace activation and write bandwidth, SMG2000 on 32k cores (Jugene, 1470 GB)",
		Header: []string{"I/O type", "tasks", "trace size", "activation(s)", "write BW(MB/s)"},
	}
	ntasks := scaleDown(tab2Tasks, scale, 64)
	total := tab2TraceBytes / int64(scale)
	perTask := total / int64(ntasks)

	// --- Task-local files ---------------------------------------------
	fs := simfs.New(simfs.Jugene())
	var actTL, bwTL float64
	simRun(fs, ntasks, func(c *mpi.Comm, v fsio.FileSystem) {
		t0 := syncStart(c)
		c.Advance(tab2InitSecs) // measurement-system init, fully parallel
		var defs, trc fsio.File
		var err error
		if defs, err = v.Create(fmt.Sprintf("epik/defs-%06d", c.Rank())); err != nil {
			panic(err)
		}
		if tab2FilesPerTask > 1 {
			if trc, err = v.Create(fmt.Sprintf("epik/trace-%06d", c.Rank())); err != nil {
				panic(err)
			}
		}
		if t := allMaxTime(c) - t0; c.Rank() == 0 {
			actTL = t
		}

		// Measurement phase: the tracer emits its compressed buffer at the
		// source-limited rate, into the task's own file.
		t1 := syncStart(c)
		c.Advance(float64(perTask) / tab2SourceRate / wallCompress)
		if err := trc.WriteZeroAt(perTask, 0); err != nil {
			panic(err)
		}
		defs.Close()
		trc.Close()
		if t := allMaxTime(c) - t1; c.Rank() == 0 {
			bwTL = float64(total) / t / 1e6
		}
	})
	res.Rows = append(res.Rows, []string{"Task-local", kfmt(ntasks),
		gbfmt(total), fmt.Sprintf("%.1f", actTL), fmt.Sprintf("%.0f", bwTL)})

	// --- SIONlib --------------------------------------------------------
	fs2 := simfs.New(simfs.Jugene())
	var actS, bwS float64
	simRun(fs2, ntasks, func(c *mpi.Comm, v fsio.FileSystem) {
		t0 := syncStart(c)
		c.Advance(tab2InitSecs)
		// Chunk size equal to the trace buffer: one block of chunks, as in
		// the paper's Scalasca integration (§5.2).
		f, err := sion.ParOpen(c, v, "epik/traces.sion", sion.WriteMode,
			&sion.Options{ChunkSize: perTask, NFiles: tab2NFiles})
		if err != nil {
			panic(err)
		}
		if t := allMaxTime(c) - t0; c.Rank() == 0 {
			actS = t
		}

		t1 := syncStart(c)
		c.Advance(float64(perTask) / tab2SourceRate / wallCompress)
		if err := f.WriteSynthetic(perTask); err != nil {
			panic(err)
		}
		f.Close()
		if t := allMaxTime(c) - t1; c.Rank() == 0 {
			bwS = float64(total) / t / 1e6
		}
	})
	res.Rows = append(res.Rows, []string{"SIONlib", kfmt(ntasks),
		gbfmt(total), fmt.Sprintf("%.1f", actS), fmt.Sprintf("%.0f", bwS)})
	res.Rows = append(res.Rows, []string{"speedup", "", "",
		fmt.Sprintf("%.1fx", actTL/actS), ""})
	res.Notes = append(res.Notes,
		"paper: activation 369.1 s → 28.1 s (13.1x); write BW 2153 → 2194 MB/s")
	return res
}

// wallCompress converts the per-task source rate into wall time shared by
// all tasks of a client (they emit concurrently).
const wallCompress = 1.0

func gbfmt(b int64) string { return fmt.Sprintf("%d GB", b>>30) }
