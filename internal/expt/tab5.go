package expt

import (
	"bytes"
	"fmt"
	"io"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/mpi"
	"repro/internal/simfs"
)

// Table 5 (extension): rescaled reopen through mapped open. The paper's
// read-back experiments keep the task count fixed, but restart and
// post-processing jobs routinely reopen a checkpoint with a different
// number of tasks — the scenario SIONlib serves with sion_paropen_mapped
// and that CkIO (arXiv:2411.18593) decouples readers from workers for.
// This experiment writes one multifile with tab5Writers tasks and reopens
// it with M ∈ tab5Readers readers (fewer, more, and far more than the
// writers), in two mapped read modes:
//
//   - direct: every reader with owned ranks opens the file and issues one
//     read per owned (rank, block) chunk region;
//   - collective: groups of tab5Group consecutive readers route all reads
//     through their collector, which — because balanced ownership spans
//     are contiguous chunk runs — fetches one dense span per block of the
//     physical file, so at most ⌈M/group⌉ readers touch the file and the
//     data moves in ≤ ⌈M/group⌉ · blocks large reads (plus the handful of
//     metadata reads at open).
//
// Every reader verifies its owned ranks byte-for-byte against the written
// payloads, so the table doubles as an end-to-end N→M restart correctness
// check at scale.
const (
	tab5Writers = 1024
	tab5Chunk   = int64(64) << 10 // one 64 KiB FS block per chunk
	tab5BlocksN = 2               // blocks each writer fills (1.5 chunks used)
	tab5Group   = 16
)

// tab5Readers are the reopen task counts (before scaling): rescaling down
// 32×, down 4×, and up 4× relative to the 1024 writers.
var tab5Readers = [3]int{32, 256, 4096}

// tab5Profile is tab3's machine (Jugene, 64 KiB blocks), so chunks stay
// block-aligned and per-request costs are visible.
func tab5Profile() *simfs.Profile {
	p := tab3Profile()
	p.Name = "jugene-64k-tab5"
	return p
}

// tab5Size is writer g's payload: about 1.5 chunks, varied per rank so
// byte-identity failures cannot hide behind uniform sizes.
func tab5Size(g int) int {
	return int(tab5Chunk) + int(tab5Chunk)/2 + g%251
}

// tab5Mode writes the multifile with nwriters tasks and reopens it with
// nreaders mapped readers (group 0 = direct), verifying every writer
// rank's bytes exactly once and reporting the read-phase wall time and
// request counters.
func tab5Mode(nwriters, nreaders, group int) (readT float64, rst simfs.FileStats) {
	fs := simfs.New(tab5Profile())

	simRun(fs, nwriters, func(c *mpi.Comm, v fsio.FileSystem) {
		f, err := sion.ParOpen(c, v, "tab5.sion", sion.WriteMode, &sion.Options{
			ChunkSize: tab5Chunk,
		})
		if err != nil {
			panic(err)
		}
		if _, err := f.Write(taskPayload(c.Rank(), tab5Size(c.Rank()))); err != nil {
			panic(err)
		}
		if err := f.Close(); err != nil {
			panic(err)
		}
	})
	wst, _ := fs.Stats("tab5.sion")

	// Fresh measurement window and cold caches for the rescaled reopen.
	fs.ResetServers()
	fs.DropCaches()

	recovered := make([]bool, nwriters) // balanced ownership: disjoint slots
	simRun(fs, nreaders, func(c *mpi.Comm, v fsio.FileSystem) {
		t0 := syncStart(c)
		var opts *sion.Options
		if group != 0 {
			opts = &sion.Options{CollectorGroup: group}
		}
		mf, err := sion.ParOpenMapped(c, v, "tab5.sion", sion.ReadMode, nil, opts)
		if err != nil {
			panic(err)
		}
		for _, g := range mf.OwnedRanks() {
			h, err := mf.Rank(g)
			if err != nil {
				panic(err)
			}
			want := taskPayload(g, tab5Size(g))
			got := make([]byte, len(want))
			if _, err := io.ReadFull(h, got); err != nil {
				panic(fmt.Sprintf("tab5: rank %d: %v", g, err))
			}
			if !bytes.Equal(got, want) {
				panic(fmt.Sprintf("tab5: rank %d: bytes differ after rescaled reopen", g))
			}
			recovered[g] = true
		}
		if err := mf.Close(); err != nil {
			panic(err)
		}
		if t := allMaxTime(c) - t0; c.Rank() == 0 {
			readT = t
		}
	})
	for g, ok := range recovered {
		if !ok {
			panic(fmt.Sprintf("tab5: rank %d not recovered by any reader", g))
		}
	}
	st, _ := fs.Stats("tab5.sion")
	rst = simfs.FileStats{
		Opens:        st.Opens - wst.Opens,
		ReadRequests: st.ReadRequests - wst.ReadRequests,
		ReaderTasks:  st.ReaderTasks,
	}
	return readT, rst
}

// taskPayload is the deterministic per-writer payload (a copy of the test
// suite's generator, so experiments stay self-contained).
func taskPayload(rank, size int) []byte {
	out := make([]byte, size)
	x := uint32(rank*2654435761 + 12345)
	for i := range out {
		x = x*1664525 + 1013904223
		out[i] = byte(x >> 24)
	}
	return out
}

// Table5 regenerates the rescaled-reopen table: one multifile written by N
// tasks, reopened by M ∈ {N/32, N/4, 4N} mapped readers in direct and
// collective mode, with request counters proving the ⌈M/group⌉ collector
// bound and byte-identity asserted in-run.
func Table5(scale int) *Result {
	res := &Result{
		Name:  "tab5",
		Title: "Table 5 (ext): rescaled reopen (N writers -> M mapped readers), jugene, 64 KiB blocks",
		Header: []string{"read mode", "writers", "readers", "rd tasks", "rd reqs", "read(s)"},
	}
	nwriters := scaleDown(tab5Writers, scale, 64)
	for _, mr := range tab5Readers {
		nreaders := scaleDown(mr, scale, 2)
		for _, m := range []struct {
			label string
			group int
		}{
			{"direct", 0},
			{fmt.Sprintf("collective-%d", tab5Group), tab5Group},
		} {
			readT, rst := tab5Mode(nwriters, nreaders, m.group)
			res.Rows = append(res.Rows, []string{
				m.label, kfmt(nwriters), kfmt(nreaders),
				fmt.Sprintf("%d", rst.ReaderTasks),
				fmt.Sprintf("%d", rst.ReadRequests),
				fmt.Sprintf("%.3f", readT),
			})
		}
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("%d KiB chunks, %d blocks per writer, ~1.5 chunks of payload per writer; balanced contiguous ownership",
			tab5Chunk>>10, tab5BlocksN),
		"byte identity of every writer rank asserted in-run for every (M, mode) cell",
		fmt.Sprintf("collective bound: ≤ ⌈M/%d⌉ collectors touch the file, issuing ≤ ⌈M/%d⌉·%d span reads + ~6 metadata reads at open",
			tab5Group, tab5Group, tab5BlocksN),
		"direct mode issues one read per owned (rank, block) region: ~N·blocks requests overall, from min(M,N) readers")
	return res
}
