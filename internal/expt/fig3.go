package expt

import (
	"fmt"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/mpi"
	"repro/internal/simfs"
)

// Fig3a regenerates Figure 3(a): time to create new and to open existing
// task-local files in parallel in one directory on Jugene, against the
// creation of a SIONlib multifile, for 4K–64K tasks.
func Fig3a(scale int) *Result {
	return fig3("fig3a", "jugene", []int{4096, 8192, 16384, 32768, 65536}, scale,
		"Fig. 3a: parallel create/open of task-local files vs SION create (Jugene)")
}

// Fig3b regenerates Figure 3(b) on Jaguar for 256–12K tasks.
func Fig3b(scale int) *Result {
	return fig3("fig3b", "jaguar", []int{256, 1024, 2048, 4096, 8192, 12288}, scale,
		"Fig. 3b: parallel create/open of task-local files vs SION create (Jaguar)")
}

func fig3(name, machine string, counts []int, scale int, title string) *Result {
	res := &Result{
		Name:   name,
		Title:  title,
		Header: []string{"tasks", "create(s)", "open(s)", "SION create(s)"},
	}
	for _, n0 := range counts {
		n := scaleDown(n0, scale, 2)
		prof := profileByName(machine)

		// Phase 1: every task creates its own file in one directory.
		fs := simfs.New(prof)
		tCreate := simRun(fs, n, func(c *mpi.Comm, v fsio.FileSystem) {
			fh, err := v.Create(taskFileName(c.Rank()))
			if err == nil {
				fh.Close()
			}
		})

		// Phase 2: reopen the now-existing files (cold caches, fresh job).
		fs.DropCaches()
		fs.ResetServers()
		tOpen := simRun(fs, n, func(c *mpi.Comm, v fsio.FileSystem) {
			fh, err := v.Open(taskFileName(c.Rank()))
			if err == nil {
				fh.Close()
			}
		})

		// Phase 3: one SIONlib multifile instead (collective create+close).
		fs2 := simfs.New(prof)
		tSion := simRun(fs2, n, func(c *mpi.Comm, v fsio.FileSystem) {
			f, err := sion.ParOpen(c, v, "data/all.sion", sion.WriteMode,
				&sion.Options{ChunkSize: 2 << 20})
			if err == nil {
				f.Close()
			}
		})

		res.Rows = append(res.Rows, []string{kfmt(n), secs(tCreate), secs(tOpen), secs(tSion)})
	}
	res.Notes = append(res.Notes,
		"paper anchors: Jugene 64k create ≈ 370 s, open ≈ 60 s, SION < 3 s; Jaguar 12k create ≈ 300 s, open ≈ 20 s, SION < 10 s")
	return res
}

func taskFileName(rank int) string { return fmt.Sprintf("data/task-%07d.bin", rank) }
