package expt

import "testing"

// TestTable3Findings asserts the collective-I/O claims the experiment was
// built to prove: only ⌈ntasks/group⌉ tasks touch the physical file in
// the collective modes (verified by the simfs request counters), the
// request counts collapse accordingly, and the simulated wall times order
// async-collective ≤ collective ≤ direct.
func TestTable3Findings(t *testing.T) {
	r := Table3(testScale)
	if len(r.Rows) != 3 {
		t.Fatalf("tab3 has %d rows, want 3", len(r.Rows))
	}
	const (
		colOpens   = 2
		colWrTasks = 3
		colWrReqs  = 4
		colWriteT  = 5
		colRdTasks = 6
		colRdReqs  = 7
		colReadT   = 8
	)
	ntasks := scaleDown(tab3Tasks, testScale, 64)
	group := tab3Group
	if group > ntasks {
		group = ntasks
	}
	collectors := (ntasks + group - 1) / group

	// Direct mode: every task opens, writes, and reads the file.
	if got := int(cell(t, r, 0, colWrTasks)); got != ntasks {
		t.Errorf("direct writer tasks = %d, want %d", got, ntasks)
	}
	if got := int(cell(t, r, 0, colRdTasks)); got != ntasks {
		t.Errorf("direct reader tasks = %d, want %d", got, ntasks)
	}

	// Collective modes: at most ⌈ntasks/group⌉ tasks issue requests.
	for row := 1; row <= 2; row++ {
		label := r.Rows[row][0]
		if got := int(cell(t, r, row, colWrTasks)); got > collectors {
			t.Errorf("%s: %d writer tasks, want ≤ %d", label, got, collectors)
		}
		if got := int(cell(t, r, row, colRdTasks)); got > collectors {
			t.Errorf("%s: %d reader tasks, want ≤ %d", label, got, collectors)
		}
		if d, c := cell(t, r, 0, colWrReqs), cell(t, r, row, colWrReqs); c*50 > d {
			t.Errorf("%s: write requests %.0f not ≪ direct %.0f", label, c, d)
		}
		if d, c := cell(t, r, 0, colRdReqs), cell(t, r, row, colRdReqs); c*50 > d {
			t.Errorf("%s: read requests %.0f not ≪ direct %.0f", label, c, d)
		}
		if d, c := cell(t, r, 0, colOpens), cell(t, r, row, colOpens); c*2 > d {
			t.Errorf("%s: opens %.0f not well below direct %.0f", label, c, d)
		}
	}

	// Wall-time ordering: async-collective ≤ collective ≤ direct.
	directW := cell(t, r, 0, colWriteT)
	collW := cell(t, r, 1, colWriteT)
	asyncW := cell(t, r, 2, colWriteT)
	if !(asyncW <= collW && collW <= directW) {
		t.Errorf("write times not ordered: async %.3f ≤ coll %.3f ≤ direct %.3f", asyncW, collW, directW)
	}
	// The async overlap should be a real win, not a rounding artifact.
	if asyncW > 0.9*collW {
		t.Errorf("async write %.3f not clearly below collective %.3f", asyncW, collW)
	}
	directR := cell(t, r, 0, colReadT)
	collR := cell(t, r, 1, colReadT)
	asyncR := cell(t, r, 2, colReadT)
	if !(asyncR <= collR*1.001 && collR <= directR) {
		t.Errorf("read times not ordered: async %.3f ≤ coll %.3f ≤ direct %.3f", asyncR, collR, directR)
	}
}
