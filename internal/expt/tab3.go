package expt

import (
	"fmt"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/mpi"
	"repro/internal/simfs"
)

// Table 3 (extension): request reduction and overlap from collective I/O.
// The paper's central lever is coalescing many small per-task requests
// into few large aligned ones; SIONlib's later collective extension and
// CkIO (arXiv:2411.18593) push the same lever further by routing all file
// traffic through designated collector tasks and, in the asynchronous
// variant, overlapping aggregation with computation. This experiment
// quantifies both effects on the simulated machine with the per-file
// request counters of simfs:
//
//   - direct:           every task opens the multifile and issues one
//                       request per record (the paper's baseline SIONlib
//                       mode, already aligned and metadata-cheap);
//   - collective:       only ⌈ntasks/group⌉ collectors open the file;
//                       members ship buffered data at close and the
//                       collector issues one large write per member chunk;
//                       reads are prefetched by the collectors the same
//                       way;
//   - async-collective: same request pattern as collective, but members
//                       stream full staging buffers to their collector
//                       during the compute phase, so collector writes
//                       overlap computation instead of queueing after it.
//
// The workload is a small-record emitter (tab3Record bytes per call, the
// Fig. 6 checkpoint regime where per-request latency dominates), with
// tab3Compute seconds of computation between records.
const (
	tab3Tasks   = 128
	tab3Group   = 16
	tab3Chunk   = int64(1) << 20 // 16 FS blocks per chunk on tab3's profile
	tab3BlocksN = 2              // chunks (blocks) of data per task
	tab3Record  = 128            // bytes per write/read call
	tab3Compute = 20e-6          // seconds of computation per record
	// Async staging buffers are half a chunk: four flushes per member
	// spread the collectors' shared-link traffic across the compute phase
	// instead of queueing it all after the last record, which is where
	// the async mode's wall-time win comes from.
	tab3FlushBytes = tab3Chunk / 2
)

// tab3Profile is Jugene with 64 KiB file-system blocks: small-chunk
// workloads stay block-aligned (no token stealing, as in the paper's
// aligned runs) while the first-touch block charges do not drown the
// per-request costs this experiment isolates.
func tab3Profile() *simfs.Profile {
	p := simfs.Jugene()
	p.Name = "jugene-64k"
	p.FSBlockSize = 64 << 10
	return p
}

// tab3Mode runs one write+read cycle in the given mode and reports the
// simulated wall times and the multifile's request counters.
func tab3Mode(ntasks, group int, async bool) (writeT, readT float64, wst, rst simfs.FileStats) {
	fs := simfs.New(tab3Profile())
	perTask := tab3BlocksN * tab3Chunk
	nrec := int(perTask / tab3Record)

	simRun(fs, ntasks, func(c *mpi.Comm, v fsio.FileSystem) {
		t0 := syncStart(c)
		f, err := sion.ParOpen(c, v, "tab3.sion", sion.WriteMode, &sion.Options{
			ChunkSize: tab3Chunk, CollectorGroup: group,
			AsyncCollective: async, AsyncFlushBytes: tab3FlushBytes,
		})
		if err != nil {
			panic(err)
		}
		rec := make([]byte, tab3Record)
		for i := 0; i < nrec; i++ {
			c.Advance(tab3Compute)
			if _, err := f.Write(rec); err != nil {
				panic(err)
			}
		}
		if err := f.Close(); err != nil {
			panic(err)
		}
		if t := allMaxTime(c) - t0; c.Rank() == 0 {
			writeT = t
		}
	})
	wst, _ = fs.Stats("tab3.sion")

	// Fresh measurement window and cold caches for the read-back phase.
	fs.ResetServers()
	fs.DropCaches()

	simRun(fs, ntasks, func(c *mpi.Comm, v fsio.FileSystem) {
		t0 := syncStart(c)
		var opts *sion.Options
		if group != 0 {
			opts = &sion.Options{CollectorGroup: group}
		}
		f, err := sion.ParOpen(c, v, "tab3.sion", sion.ReadMode, opts)
		if err != nil {
			panic(err)
		}
		buf := make([]byte, tab3Record)
		for !f.EOF() {
			if _, err := f.Read(buf); err != nil {
				panic(err)
			}
		}
		f.Close()
		if t := allMaxTime(c) - t0; c.Rank() == 0 {
			readT = t
		}
	})
	st, _ := fs.Stats("tab3.sion")
	rst = simfs.FileStats{
		Opens:        st.Opens - wst.Opens,
		ReadRequests: st.ReadRequests - wst.ReadRequests,
		ReaderTasks:  st.ReaderTasks,
	}
	return writeT, readT, wst, rst
}

// Table3 regenerates the collective-I/O request-reduction table: direct
// vs. collective vs. async-collective writes and reads of a small-record
// workload, with per-file open/request/client counts from the simulated
// file system proving that only ⌈ntasks/group⌉ tasks touch the file in
// the collective modes.
func Table3(scale int) *Result {
	res := &Result{
		Name:  "tab3",
		Title: "Table 3 (ext): request reduction with (async) collective I/O, small-record workload (jugene, 64 KiB blocks)",
		Header: []string{"I/O mode", "tasks", "opens", "wr tasks", "wr reqs",
			"write(s)", "rd tasks", "rd reqs", "read(s)"},
	}
	ntasks := scaleDown(tab3Tasks, scale, 64)
	group := tab3Group
	if group > ntasks {
		group = ntasks
	}

	type mode struct {
		label string
		group int
		async bool
	}
	for _, m := range []mode{
		{"direct", 0, false},
		{"collective", group, false},
		{"async-collective", group, true},
	} {
		writeT, readT, wst, rst := tab3Mode(ntasks, m.group, m.async)
		res.Rows = append(res.Rows, []string{
			m.label, kfmt(ntasks),
			fmt.Sprintf("%d", wst.Opens+rst.Opens),
			fmt.Sprintf("%d", wst.WriterTasks),
			fmt.Sprintf("%d", wst.WriteRequests),
			fmt.Sprintf("%.3f", writeT),
			fmt.Sprintf("%d", rst.ReaderTasks),
			fmt.Sprintf("%d", rst.ReadRequests),
			fmt.Sprintf("%.3f", readT),
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("collector group %d (⌈%d/%d⌉ = %d collectors); %d B records, %d × %d KiB chunks per task, %.0f µs compute per record",
			group, ntasks, group, (ntasks+group-1)/group, tab3Record, tab3BlocksN, tab3Chunk>>10, tab3Compute*1e6),
		"expected ordering: async-collective ≤ collective ≤ direct in simulated wall time",
		"async-collective ships full staging buffers during computation (double-buffered members, background collector flush)")
	return res
}
