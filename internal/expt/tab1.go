package expt

import (
	"fmt"

	"repro/internal/simfs"
)

// Table1 regenerates Table 1: bandwidth to a 16-segment multifile on
// Jugene (32K tasks, 256 GB) with chunks aligned to the true 2 MB GPFS
// block size versus a misconfigured 16 KB alignment, which makes chunks of
// different tasks share file-system blocks and triggers block-token
// contention (paper: 2.53× write, 1.78× read degradation).
func Table1(scale int) *Result {
	res := &Result{
		Name:   "tab1",
		Title:  "Table 1: block alignment vs bandwidth (Jugene, 32k tasks, 256 GB, 16 files)",
		Header: []string{"blksize", "write(MB/s)", "read(MB/s)"},
	}
	ntasks := scaleDown(32768, scale, 64)
	total := int64(256<<30) / int64(scale)

	type cfg struct {
		label string
		align int64
	}
	var aligned, misaligned [2]float64
	for i, c := range []cfg{{"2MB", 2 << 20}, {"16KB", 16 << 10}} {
		fs := simfs.New(simfs.Jugene())
		w, r := bwPair(fs, ntasks, 16, total, c.align)
		res.Rows = append(res.Rows, []string{c.label, fmt.Sprintf("%.1f", w), fmt.Sprintf("%.1f", r)})
		if i == 0 {
			aligned = [2]float64{w, r}
		} else {
			misaligned = [2]float64{w, r}
		}
	}
	res.Rows = append(res.Rows, []string{"ratio",
		fmt.Sprintf("%.2fx", aligned[0]/misaligned[0]),
		fmt.Sprintf("%.2fx", aligned[1]/misaligned[1])})
	res.Notes = append(res.Notes,
		"paper: 5381.8/4630.6 MB/s aligned vs 2125.8/2603.0 MB/s misaligned → 2.53x / 1.78x")
	return res
}
