package expt

import "testing"

// TestTable5Findings asserts the rescaled-reopen claims tab5 was built to
// prove: every (M, mode) cell recovers all writer bytes (asserted in-run —
// tab5Mode panics on a mismatch), at most ⌈M/group⌉ collectors plus the
// two metadata readers touch the file in collective mode, and the
// collective data path issues no more than ⌈M/group⌉ · blocks span reads
// on top of the open-time metadata reads.
func TestTable5Findings(t *testing.T) {
	r := Table5(testScale)
	if len(r.Rows) != 2*len(tab5Readers) {
		t.Fatalf("tab5 has %d rows, want %d", len(r.Rows), 2*len(tab5Readers))
	}
	const (
		colRdTasks = 3
		colRdReqs  = 4
	)
	// Metadata reads at open: rank 0's header parse (2 requests) plus the
	// file-0 parser's header+metablock-2 parse (4 requests).
	const metaReads = 6

	nwriters := scaleDown(tab5Writers, testScale, 64)
	sawMoreReadersThanWriters := false
	for i, mr := range tab5Readers {
		nreaders := scaleDown(mr, testScale, 2)
		if nreaders > nwriters {
			sawMoreReadersThanWriters = true
		}
		collectors := (nreaders + tab5Group - 1) / tab5Group
		direct, coll := r.Rows[2*i], r.Rows[2*i+1]

		// Direct mode: the min(M, N) readers holding owned ranks all touch
		// the file, issuing about blocks reads per writer rank.
		minMN := nreaders
		if nwriters < minMN {
			minMN = nwriters
		}
		if got := int(cell(t, r, 2*i, colRdTasks)); got < minMN || got > minMN+2 {
			t.Errorf("M=%d direct: %d reader tasks, want ≈ %d", nreaders, got, minMN)
		}
		if got := int(cell(t, r, 2*i, colRdReqs)); got < nwriters*tab5BlocksN {
			t.Errorf("M=%d direct: %d read requests, want ≥ %d (one per rank and block)",
				nreaders, got, nwriters*tab5BlocksN)
		}

		// Collective mode: the ⌈M/G⌉ bound on clients and span reads.
		if got := int(cell(t, r, 2*i+1, colRdTasks)); got > collectors+2 {
			t.Errorf("M=%d collective: %d reader tasks, want ≤ %d collectors + 2 metadata readers",
				nreaders, got, collectors)
		}
		budget := collectors*tab5BlocksN + metaReads
		if got := int(cell(t, r, 2*i+1, colRdReqs)); got > budget {
			t.Errorf("M=%d collective: %d read requests, want ≤ ⌈M/G⌉·blocks + metadata = %d",
				nreaders, got, budget)
		}
		// The request reduction must be substantial, not incidental (3× is
		// the worst case: M≫N at test scale, where a collector group holds
		// few writer ranks and the metadata reads weigh relatively more).
		if d, c := cell(t, r, 2*i, colRdReqs), cell(t, r, 2*i+1, colRdReqs); c*3 > d {
			t.Errorf("M=%d: collective reads %.0f not well below direct %.0f (%s vs %s)",
				nreaders, c, d, coll[0], direct[0])
		}
	}
	if !sawMoreReadersThanWriters {
		t.Errorf("scaled reader counts %v never exceed %d writers; the M>N case went untested",
			tab5Readers, nwriters)
	}
}
