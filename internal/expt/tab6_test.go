package expt

import (
	"strconv"
	"strings"
	"testing"
)

// TestTable6Findings asserts the read-serving claims the experiment was
// built to prove: on the zipfian client workload the served mode issues
// at least 10× fewer backend read requests than uncached per-handle
// reads (the acceptance bar), the tiny-cache mode still wins clearly,
// the server performs a constant number of opens, and the zipfian reuse
// shows up as a high cache hit rate. Byte identity of every served
// window against the written payloads is asserted in-run by Table6
// itself (tab6Client panics on a mismatch).
func TestTable6Findings(t *testing.T) {
	r := Table6(testScale)
	if len(r.Rows) != 3 {
		t.Fatalf("tab6 has %d rows, want 3", len(r.Rows))
	}
	const (
		colOpens  = 3
		colRdReqs = 4
		colHit    = 5
	)
	uncached := cell(t, r, 0, colRdReqs)
	servedBig := cell(t, r, 1, colRdReqs)
	servedSml := cell(t, r, 2, colRdReqs)
	if servedBig*10 > uncached {
		t.Errorf("served (big cache) backend reads %.0f not ≥10× below uncached %.0f", servedBig, uncached)
	}
	if servedSml*2 > uncached {
		t.Errorf("served (1 MiB cache) backend reads %.0f not ≥2× below uncached %.0f", servedSml, uncached)
	}
	if servedBig > servedSml {
		t.Errorf("bigger cache issued more backend reads (%.0f) than the tiny one (%.0f)", servedBig, servedSml)
	}
	// The server opens each physical file once plus the layout parse;
	// uncached opens grow with the client count.
	if opens := cell(t, r, 1, colOpens); opens > 8 {
		t.Errorf("served mode opened files %.0f times, want a small constant", opens)
	}
	if opens := cell(t, r, 0, colOpens); opens < cell(t, r, 1, colOpens)*4 {
		t.Errorf("uncached opens %.0f suspiciously low", opens)
	}
	// Zipfian reuse must show up as cache hits.
	hit, err := strconv.ParseFloat(strings.TrimSpace(r.Rows[1][colHit]), 64)
	if err != nil {
		t.Fatalf("hit%% cell %q: %v", r.Rows[1][colHit], err)
	}
	if hit < 50 {
		t.Errorf("big-cache hit rate %.1f%% below 50%%", hit)
	}
}

// TestTable6Deterministic pins that the experiment is replayable: two
// runs of the served mode produce identical request counters (the LCG
// client sequence and the cache behavior are deterministic), so the
// tab6 assertions cannot flake.
func TestTable6Deterministic(t *testing.T) {
	nwriters := scaleDown(tab6Writers, testScale, 32)
	nclients := scaleDown(tab6Clients, testScale, 256)
	r1, s1 := tab6Mode(nwriters, nclients, tab6CacheBig)
	r2, s2 := tab6Mode(nwriters, nclients, tab6CacheBig)
	if r1 != r2 {
		t.Fatalf("request counters differ between runs: %+v vs %+v", r1, r2)
	}
	if s1 != s2 {
		t.Fatalf("server stats differ between runs: %+v vs %+v", s1, s2)
	}
}
