// Package expt reproduces every table and figure of the paper's evaluation
// (§4 Figs. 3–5, Table 1) and use cases (§5 Fig. 6, Table 2) on the
// simulated Jugene (Blue Gene/P + GPFS) and Jaguar (Cray XT4 + Lustre)
// machines. Each runner returns a Result whose rows mirror the data series
// the paper reports; cmd/sionbench prints them and bench_test.go wraps them
// as Go benchmarks.
//
// A scale divisor shrinks task counts and data volumes proportionally for
// quick runs; scale=1 is the paper's full configuration.
package expt

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/fsio"
	"repro/internal/mpi"
	"repro/internal/simfs"
	"repro/internal/vtime"
)

// Result is one experiment's regenerated data.
type Result struct {
	Name   string   // experiment id, e.g. "fig3a"
	Title  string   // paper caption summary
	Header []string // column names
	Rows   [][]string
	Notes  []string // deviations, calibration remarks
}

// Print renders the result as an aligned text table.
func (r *Result) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", r.Name, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// simRun executes body on n simulated ranks bound to fs and returns the
// maximum end time across ranks.
func simRun(fs *simfs.FS, n int, body func(c *mpi.Comm, v fsio.FileSystem)) float64 {
	e := vtime.NewEngine()
	var maxEnd float64
	mpi.RunSim(e, n, mpi.DefaultCost, func(c *mpi.Comm) {
		body(c, fs.View(c.Rank(), c.Proc()))
		if t := c.Now(); t > maxEnd {
			maxEnd = t
		}
	})
	return maxEnd
}

// syncStart aligns every rank on a common start time and returns it.
func syncStart(c *mpi.Comm) float64 {
	c.Barrier()
	t := allMaxTime(c)
	c.Proc().AdvanceTo(t)
	return t
}

// allMaxTime returns the maximum virtual clock across ranks (exploiting
// that positive IEEE-754 doubles order like their bit patterns).
func allMaxTime(c *mpi.Comm) float64 {
	bits := c.AllreduceInt64(mpi.OpMax, int64(math.Float64bits(c.Now())))
	return math.Float64frombits(uint64(bits))
}

// scaleDown divides n by scale, keeping at least min.
func scaleDown(n, scale, min int) int {
	if scale < 1 {
		scale = 1
	}
	n /= scale
	if n < min {
		n = min
	}
	return n
}

func secs(t float64) string { return fmt.Sprintf("%.1f", t) }

func mbs(bytes int64, t float64) string {
	if t <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.0f", float64(bytes)/t/1e6)
}

func profileByName(name string) *simfs.Profile {
	switch name {
	case "jugene":
		return simfs.Jugene()
	case "jaguar":
		return simfs.Jaguar()
	}
	panic("expt: unknown machine profile " + name)
}

// kfmt formats a task count the way the paper labels its axes (4k, 64k…).
func kfmt(n int) string {
	if n >= 1024 && n%1024 == 0 {
		return fmt.Sprintf("%dk", n/1024)
	}
	return fmt.Sprintf("%d", n)
}

// All runs every experiment at the given scale, in paper order.
func All(scale int) []*Result {
	return []*Result{
		Fig3a(scale), Fig3b(scale),
		Fig4a(scale), Fig4b(scale),
		Table1(scale),
		Fig5a(scale), Fig5b(scale),
		Fig6(scale),
		Table2(scale),
		Table3(scale),
		Table4(scale),
		Table5(scale),
		Table6(scale),
		Table7(scale),
		Table8(scale),
		Table9(scale),
		Table10(scale),
	}
}

// ByName returns the named experiment's runner (nil if unknown).
func ByName(name string) func(scale int) *Result {
	switch name {
	case "fig3a":
		return Fig3a
	case "fig3b":
		return Fig3b
	case "fig4a":
		return Fig4a
	case "fig4b":
		return Fig4b
	case "tab1", "table1":
		return Table1
	case "fig5a":
		return Fig5a
	case "fig5b":
		return Fig5b
	case "fig6":
		return Fig6
	case "tab2", "table2":
		return Table2
	case "tab3", "table3":
		return Table3
	case "tab4", "table4":
		return Table4
	case "tab5", "table5":
		return Table5
	case "tab6", "table6":
		return Table6
	case "tab7", "table7":
		return Table7
	case "tab8", "table8":
		return Table8
	case "tab9", "table9":
		return Table9
	case "tab10", "table10":
		return Table10
	}
	return nil
}

// Names lists the experiment ids in paper order.
func Names() []string {
	return []string{"fig3a", "fig3b", "fig4a", "fig4b", "tab1", "fig5a", "fig5b", "fig6", "tab2", "tab3", "tab4", "tab5", "tab6", "tab7", "tab8", "tab9", "tab10"}
}
