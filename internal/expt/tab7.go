package expt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/mpi"
	"repro/internal/resil"
	"repro/internal/serve"
	"repro/internal/simfs"
	"repro/internal/vtime"
)

// Table 7 (extension): checkpoint shipping over live multifiles — the
// chunk-commit watermark subsystem (Options.Watermarks, internal/core
// watermark.go + tail.go, internal/serve tail.go) under its intended
// workload. The paper's multifiles are written, closed, and only then
// read; streaming consumers (checkpoint shippers, in-transit analysis,
// live trace dashboards) cannot wait for Close. Watermarks give them a
// torn-record-free frontier: every Flush publishes a durable per-rank
// commit record after the data it covers is durable, and tailing readers
// never observe bytes past it.
//
// Two phases, both asserted in-run (panic on violation):
//
//   - stream: N writers append CRC-framed records to a live multifile on
//     one simulated machine, flushing every tab7Flush records and
//     computing for tab7Step sim-seconds between batches. M serve-backed
//     readers (serve.NewTail sessions) follow the writers mid-write,
//     polling every tab7Poll sim-seconds, parse complete frames, and ship
//     them into a second multifile on another machine through per-writer
//     key streams (KeyWriter). Asserted: every frame parses (magic, seq
//     order, CRC), nothing is ever read past a watermark the writer did
//     not publish, the reader lag never exceeds tab7LagBound flush
//     batches, and the shipped archive is byte-identical to the source
//     payloads.
//
//   - crash: tab7Trials independent trials on a volatile simfs. Writers
//     stream framed records with a write/sync failure injected at a
//     random operation count (arming only after ParOpen, so every trial
//     is a mid-stream writer crash), then the machine loses all unsynced
//     state (fs.Crash); a third of the trials additionally tear one slot
//     of a commit record in the watermark sidecar. Asserted: the
//     committed bytes of every rank decode to whole frames (zero torn
//     records), the committed total is one the writer actually attempted
//     to commit (or zero), Repair recovers the remains, Verify accepts
//     them, and the repaired multifile reads back byte-identically to the
//     committed prefix.
const (
	tab7Writers  = 64 // streaming phase: writer tasks
	tab7Readers  = 8  // streaming phase: serve-backed shipper tasks
	tab7Records  = 24 // framed records per writer
	tab7Flush    = 4  // records per flush batch (the watermark interval)
	tab7Chunk    = int64(16) << 10
	tab7FSBlk    = int64(1) << 10
	tab7Step     = 1.0  // sim-seconds of compute between flush batches
	tab7Poll     = 0.25 // reader poll interval, sim-seconds
	tab7LagBound = 4    // max tolerated reader lag, in flush batches

	tab7Trials     = 130 // crash phase: independent injected-crash trials
	tab7CrashRanks = 3
	tab7CrashChunk = int64(4096) // one FS-block-aligned block per rank
	tab7CrashFSBlk = int64(256)
)

// tab7Profile is tab3's machine (Jugene, 64 KiB blocks); the in-file
// layout uses the smaller tab7FSBlk alignment so the frontier moves
// through many cache blocks even at test scale.
func tab7Profile(name string) *simfs.Profile {
	p := tab3Profile()
	p.Name = name
	return p
}

// Frame format of one shipped record: magic, writer rank, sequence
// number, payload length (u32 LE each), payload, CRC-32 (IEEE) of the
// payload. Writers flush only at frame boundaries, so a committed
// watermark must always parse into whole frames — a torn frame anywhere
// is a commit-ordering bug.
const (
	tab7FrameMagic = 0x53494F4E // "SION"
	tab7FrameHdr   = 16
)

// tab7Payload is the deterministic payload of record (salt, w, seq);
// salt 0 is the streaming phase, salt 1+trial the crash trials.
func tab7Payload(salt, w, seq int) []byte {
	x := uint64(salt)*0x9E3779B97F4A7C15 + uint64(w)*2654435761 + uint64(seq) + 1
	n := 64 + int(x*6364136223846793005%193)
	p := make([]byte, n)
	for i := range p {
		x = x*6364136223846793005 + 1442695040888963407
		p[i] = byte(x >> 56)
	}
	return p
}

func tab7Frame(salt, w, seq int) []byte {
	payload := tab7Payload(salt, w, seq)
	fr := make([]byte, tab7FrameHdr+len(payload)+4)
	binary.LittleEndian.PutUint32(fr[0:], tab7FrameMagic)
	binary.LittleEndian.PutUint32(fr[4:], uint32(w))
	binary.LittleEndian.PutUint32(fr[8:], uint32(seq))
	binary.LittleEndian.PutUint32(fr[12:], uint32(len(payload)))
	copy(fr[tab7FrameHdr:], payload)
	binary.LittleEndian.PutUint32(fr[tab7FrameHdr+len(payload):], crc32.ChecksumIEEE(payload))
	return fr
}

// tab7Stream is one reader's state for one followed writer.
type tab7Stream struct {
	w       int
	sess    *serve.Session
	pending []byte // received bytes not yet forming a whole frame
	nextSeq int
	got     int64 // total bytes delivered by the session
	done    bool
}

// parse consumes whole frames from the pending buffer, verifying magic,
// writer id, sequence order, and CRC, and ships each payload under the
// writer's key.
func (ts *tab7Stream) parse(salt int, kw *sion.KeyWriter) {
	for len(ts.pending) >= tab7FrameHdr {
		magic := binary.LittleEndian.Uint32(ts.pending[0:])
		w := binary.LittleEndian.Uint32(ts.pending[4:])
		seq := binary.LittleEndian.Uint32(ts.pending[8:])
		plen := binary.LittleEndian.Uint32(ts.pending[12:])
		if magic != tab7FrameMagic || int(w) != ts.w || int(seq) != ts.nextSeq {
			panic(fmt.Sprintf("tab7: writer %d: bad frame header (magic %#x, w %d, seq %d, want seq %d)",
				ts.w, magic, w, seq, ts.nextSeq))
		}
		total := tab7FrameHdr + int(plen) + 4
		if len(ts.pending) < total {
			return // frame continues past the watermark; finish it next poll
		}
		payload := ts.pending[tab7FrameHdr : tab7FrameHdr+int(plen)]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(ts.pending[tab7FrameHdr+int(plen):]) {
			panic(fmt.Sprintf("tab7: writer %d seq %d: CRC mismatch (torn record)", ts.w, seq))
		}
		if !bytes.Equal(payload, tab7Payload(salt, ts.w, int(seq))) {
			panic(fmt.Sprintf("tab7: writer %d seq %d: payload differs from source", ts.w, seq))
		}
		if kw != nil {
			if err := kw.WriteKey(uint64(ts.w), payload); err != nil {
				panic(fmt.Sprintf("tab7: shipping writer %d seq %d: %v", ts.w, seq, err))
			}
		}
		ts.pending = ts.pending[total:]
		ts.nextSeq++
	}
}

// tab7StreamPhase runs the live shipping scenario: nw writers and nr
// serve-backed readers on one virtual-time engine, source machine fsA,
// archive machine fsB. It returns the maximum observed reader lag in
// flush batches, the shipped byte total, and the simulated end time.
func tab7StreamPhase(nw, nr, records int) (maxLag int, shipped int64, simEnd float64) {
	fsA := simfs.New(tab7Profile("jugene-64k-tab7src"))
	fsB := simfs.New(tab7Profile("jugene-64k-tab7dst"))

	// Shared cross-rank state. The vtime engine runs one proc at a time
	// (context switches are channel handoffs), so plain variables are safe.
	flushTotals := make([][]int64, nw) // committed totals per writer, per flush
	var srv *serve.Server
	lagMax := 0

	e := vtime.NewEngine()
	mpi.RunSim(e, nw+nr, mpi.DefaultCost, func(c *mpi.Comm) {
		if c.Rank() < nw {
			wc := c.Split(0, c.Rank())
			tab7Writer(c, wc, fsA.View(c.Rank(), c.Proc()), records, flushTotals)
		} else {
			rc := c.Split(1, c.Rank()-nw)
			tab7Reader(c, rc, fsA, fsB, nw, nr, records, flushTotals, &srv, &lagMax)
		}
		if t := c.Now(); t > simEnd {
			simEnd = t
		}
	})

	// Serial read-back of the archive: every shipped record stream must be
	// byte-identical to the source payloads.
	vB := fsB.View(0, nil)
	for rr := 0; rr < nr; rr++ {
		f, err := sion.OpenRank(vB, "ship.sion", rr)
		if err != nil {
			panic(fmt.Sprintf("tab7: opening archive rank %d: %v", rr, err))
		}
		kr, err := sion.NewKeyReaderFrom(f)
		if err != nil {
			panic(fmt.Sprintf("tab7: indexing archive rank %d: %v", rr, err))
		}
		for w := rr * nw / nr; w < (rr+1)*nw/nr; w++ {
			got, err := kr.ReadKey(uint64(w))
			if err != nil {
				panic(fmt.Sprintf("tab7: archive read of writer %d: %v", w, err))
			}
			var want []byte
			for seq := 1; seq <= records; seq++ {
				want = append(want, tab7Payload(0, w, seq)...)
			}
			if !bytes.Equal(got, want) {
				panic(fmt.Sprintf("tab7: archive of writer %d differs from source (%d bytes, want %d)",
					w, len(got), len(want)))
			}
			shipped += int64(len(got))
		}
		f.Close()
	}
	return lagMax, shipped, simEnd
}

// tab7Writer streams framed records into the live multifile, flushing
// (and so publishing a watermark) every tab7Flush records, with
// tab7Step sim-seconds of compute between batches.
func tab7Writer(c, wc *mpi.Comm, v fsio.FileSystem, records int, flushTotals [][]int64) {
	w := c.Rank()
	f, err := sion.ParOpen(wc, v, "live.sion", sion.WriteMode, &sion.Options{
		ChunkSize: tab7Chunk, FSBlockSize: tab7FSBlk, Watermarks: true,
	})
	if err != nil {
		panic(fmt.Sprintf("tab7: writer %d: ParOpen: %v", w, err))
	}
	var total int64
	for seq := 1; seq <= records; seq++ {
		fr := tab7Frame(0, w, seq)
		if _, err := f.Write(fr); err != nil {
			panic(fmt.Sprintf("tab7: writer %d seq %d: %v", w, seq, err))
		}
		total += int64(len(fr))
		if seq%tab7Flush == 0 || seq == records {
			if err := f.Flush(); err != nil {
				panic(fmt.Sprintf("tab7: writer %d: Flush: %v", w, err))
			}
			flushTotals[w] = append(flushTotals[w], total)
			c.Proc().AdvanceTo(c.Now() + tab7Step)
		}
	}
	if err := f.Close(); err != nil {
		panic(fmt.Sprintf("tab7: writer %d: Close: %v", w, err))
	}
}

// tab7Reader follows a contiguous band of writers through one shared
// tail server, ships complete frames into the archive multifile, and
// tracks the worst flushed-but-undelivered lag it ever observes.
func tab7Reader(c, rc *mpi.Comm, fsA, fsB *simfs.FS, nw, nr, records int,
	flushTotals [][]int64, srvp **serve.Server, lagMax *int) {
	rr := rc.Rank()
	if rr == 0 {
		// The live multifile appears when the writers' ParOpen completes;
		// retry under a bounded budget whose backoff is the poll cadence in
		// virtual time. Any open error counts as "not servable yet" here —
		// mid-ParOpen the reader can race file creation and see either a
		// not-exist or a truncated header.
		b := resil.Budget{
			MaxAttempts: 1 << 16,
			Sleep:       func(time.Duration) { c.Proc().AdvanceTo(c.Now() + tab7Poll) },
		}
		err := resil.DoWhile(b, nil, func(error) bool { return true }, func() error {
			s, err := serve.NewTail(fsA.View(nw, nil), "live.sion", &serve.Config{CacheBytes: 1 << 20})
			if err == nil {
				*srvp = s
			}
			return err
		})
		if err != nil {
			panic(fmt.Sprintf("tab7: live multifile never appeared: %v", err))
		}
	}
	for *srvp == nil {
		c.Proc().AdvanceTo(c.Now() + tab7Poll)
	}
	srv := *srvp

	sf, err := sion.ParOpen(rc, fsB.View(c.Rank(), c.Proc()), "ship.sion", sion.WriteMode, &sion.Options{
		ChunkSize: tab7Chunk, FSBlockSize: tab7FSBlk,
	})
	if err != nil {
		panic(fmt.Sprintf("tab7: reader %d: archive ParOpen: %v", rr, err))
	}
	kw, err := sion.NewKeyWriter(sf)
	if err != nil {
		panic(fmt.Sprintf("tab7: reader %d: %v", rr, err))
	}

	var streams []*tab7Stream
	for w := rr * nw / nr; w < (rr+1)*nw/nr; w++ {
		sess, err := srv.Tail(w)
		if err != nil {
			panic(fmt.Sprintf("tab7: reader %d: Tail(%d): %v", rr, w, err))
		}
		streams = append(streams, &tab7Stream{w: w, sess: sess, nextSeq: 1})
	}

	live := len(streams)
	buf := make([]byte, 4096)
	for live > 0 {
		for _, ts := range streams {
			if ts.done {
				continue
			}
			for {
				n, rerr := ts.sess.Read(buf)
				if n > 0 {
					ts.pending = append(ts.pending, buf[:n]...)
					ts.got += int64(n)
					ts.parse(0, kw)
				}
				if rerr == sion.ErrAgain {
					break
				}
				if rerr == io.EOF {
					if len(ts.pending) != 0 {
						panic(fmt.Sprintf("tab7: writer %d: %d dangling bytes at EOF (torn record)",
							ts.w, len(ts.pending)))
					}
					if ts.nextSeq != records+1 {
						panic(fmt.Sprintf("tab7: writer %d: drained at seq %d, want %d records",
							ts.w, ts.nextSeq-1, records))
					}
					ts.done = true
					live--
					break
				}
				if rerr != nil {
					panic(fmt.Sprintf("tab7: reader %d following writer %d: %v", rr, ts.w, rerr))
				}
			}
			if !ts.done {
				// Drained to the last watermark this server has seen; any
				// flush the writer has published beyond ts.got is lag.
				lag := 0
				for _, tot := range flushTotals[ts.w] {
					if tot > ts.got {
						lag++
					}
				}
				if lag > *lagMax {
					*lagMax = lag
				}
				if lag > tab7LagBound {
					panic(fmt.Sprintf("tab7: reader %d lags writer %d by %d flush batches (bound %d)",
						rr, ts.w, lag, tab7LagBound))
				}
			}
		}
		if live > 0 {
			c.Proc().AdvanceTo(c.Now() + tab7Poll)
			if _, err := srv.Poll(); err != nil {
				panic(fmt.Sprintf("tab7: reader %d: Poll: %v", rr, err))
			}
		}
	}
	if err := sf.Close(); err != nil {
		panic(fmt.Sprintf("tab7: reader %d: archive Close: %v", rr, err))
	}
	rc.Barrier()
	if rr == 0 {
		if err := srv.Close(); err != nil {
			panic(fmt.Sprintf("tab7: closing tail server: %v", err))
		}
	}
}

// tab7CrashPhase runs the injected-crash trials. Returns the number of
// verified trials, how many had a sidecar commit record additionally
// torn, how many ranks across all trials recovered to less than their
// last attempted commit (i.e. the crash actually cost them data), and
// the total committed bytes that survived.
func tab7CrashPhase(trials int) (verified, torn, lostRanks int, recovered int64) {
	const nw = tab7CrashRanks
	for trial := 0; trial < trials; trial++ {
		rng := &tab6Rand{x: 0x7AB7 + uint64(trial+1)*0x9E3779B97F4A7C15}
		salt := 1 + trial

		// Pre-generate each rank's frames so the expected committed prefix
		// can be regenerated after the crash. Everything fits in one block
		// (tab7CrashChunk) so a torn sidecar slot always falls back to the
		// partner slot's earlier frame-aligned commit.
		frames := make([][][]byte, nw)
		for w := 0; w < nw; w++ {
			nrec := 4 + int(rng.next()%5)
			for seq := 1; seq <= nrec; seq++ {
				frames[w] = append(frames[w], tab7Frame(salt, w, seq))
			}
		}
		inject := int64(3 + rng.next()%90)

		fs := simfs.New(simfs.Jugene())
		fs.SetVolatileWrites(true)
		attempts := make([][]int64, nw)
		e := vtime.NewEngine()
		mpi.RunSim(e, nw, mpi.DefaultCost, func(c *mpi.Comm) {
			r := c.Rank()
			f, err := sion.ParOpen(c, fs.View(r, c.Proc()), "c.sion", sion.WriteMode, &sion.Options{
				ChunkSize: tab7CrashChunk, FSBlockSize: tab7CrashFSBlk, Watermarks: true,
			})
			if err != nil {
				panic(fmt.Sprintf("tab7: trial %d rank %d: ParOpen: %v", trial, r, err))
			}
			// Arm the failure only after every rank holds an open handle, so
			// each trial is a mid-stream crash, not a failed open.
			c.Barrier()
			if r == 0 {
				fs.FailWritesAfter(inject)
			}
			c.Barrier()
			var total int64
			for _, fr := range frames[r] {
				if _, err := f.Write(fr); err != nil {
					return // died mid-write
				}
				total += int64(len(fr))
				attempts[r] = append(attempts[r], total)
				if err := f.Flush(); err != nil {
					return // died mid-commit
				}
			}
			// Crash before Close: no trailer, no metablock 2.
		})
		fs.Crash() // lose every unsynced write
		fs.SetVolatileWrites(false)

		v := fs.View(0, nil)
		if trial%3 == 0 {
			// Additionally tear one slot of one rank's commit record in the
			// watermark sidecar (32-byte header, then a 64-byte slot pair per
			// (rank, block); see internal/core watermark.go).
			wname := sion.PhysicalNames("c.sion", 1)[0] + ".wmk"
			cr, slot := int(rng.next())%nw, int64(rng.next())%2
			wfh, err := v.OpenRW(wname)
			if err != nil {
				panic(fmt.Sprintf("tab7: trial %d: opening sidecar: %v", trial, err))
			}
			if _, err := wfh.WriteAt([]byte{0xde, 0xad}, int64(32+cr*64)+slot*32+10); err != nil {
				panic(fmt.Sprintf("tab7: trial %d: tearing sidecar: %v", trial, err))
			}
			wfh.Close()
			torn++
		}

		for r := 0; r < nw; r++ {
			tr, err := sion.Follow(v, "c.sion", r)
			if err != nil {
				panic(fmt.Sprintf("tab7: trial %d rank %d: Follow: %v", trial, r, err))
			}
			committed := tr.Committed()
			valid := committed == 0
			for _, a := range attempts[r] {
				valid = valid || committed == a
			}
			if !valid {
				panic(fmt.Sprintf("tab7: trial %d rank %d: committed %d not among attempted commits %v",
					trial, r, committed, attempts[r]))
			}
			got := make([]byte, committed)
			for off := 0; off < len(got); {
				m, err := tr.Read(got[off:])
				if err != nil {
					panic(fmt.Sprintf("tab7: trial %d rank %d: reading committed bytes: %v", trial, r, err))
				}
				off += m
			}
			tr.Close()
			var want []byte
			for _, fr := range frames[r] {
				want = append(want, fr...)
			}
			if !bytes.Equal(got, want[:committed]) {
				panic(fmt.Sprintf("tab7: trial %d rank %d: committed bytes differ from source", trial, r))
			}
			// Zero torn records: the committed prefix must parse into whole
			// frames (parse panics on any malformed or truncated frame).
			ck := &tab7Stream{w: r, pending: got, nextSeq: 1}
			ck.parse(salt, nil)
			if len(ck.pending) != 0 {
				panic(fmt.Sprintf("tab7: trial %d rank %d: %d committed bytes beyond the last whole frame",
					trial, r, len(ck.pending)))
			}
			if len(attempts[r]) > 0 && committed < attempts[r][len(attempts[r])-1] {
				lostRanks++
			}
			recovered += committed
		}

		if _, err := sion.Repair(v, "c.sion"); err != nil {
			panic(fmt.Sprintf("tab7: trial %d: Repair: %v", trial, err))
		}
		if err := sion.Verify(v, "c.sion"); err != nil {
			panic(fmt.Sprintf("tab7: trial %d: Verify after Repair: %v", trial, err))
		}
		for r := 0; r < nw; r++ {
			f, err := sion.OpenRank(v, "c.sion", r)
			if err != nil {
				panic(fmt.Sprintf("tab7: trial %d rank %d: OpenRank after Repair: %v", trial, r, err))
			}
			buf := make([]byte, f.LogicalSize())
			if len(buf) > 0 {
				if _, err := f.ReadLogicalAt(buf, 0); err != nil {
					panic(fmt.Sprintf("tab7: trial %d rank %d: reading repaired stream: %v", trial, r, err))
				}
			}
			var want []byte
			for _, fr := range frames[r] {
				want = append(want, fr...)
			}
			if !bytes.Equal(buf, want[:len(buf)]) {
				panic(fmt.Sprintf("tab7: trial %d rank %d: repaired bytes differ from source", trial, r))
			}
			f.Close()
		}
		verified++
	}
	return verified, torn, lostRanks, recovered
}

// Table7 regenerates the streaming table: the live checkpoint-shipping
// scenario (N writers, M serve-backed tailing shippers, bounded lag,
// byte-identical archive) and the crash sweep (≥100 injected writer
// crashes plus torn sidecar records, zero torn records recovered). All
// bounds are asserted in-run; the rows report what was observed.
func Table7(scale int) *Result {
	res := &Result{
		Name:   "tab7",
		Title:  "Table 7 (ext): live tailing over chunk-commit watermarks — streaming shipment and crash sweep, jugene",
		Header: []string{"phase", "writers", "readers", "trials", "bytes", "max lag", "torn", "verified"},
	}
	nw := scaleDown(tab7Writers, scale, 8)
	nr := scaleDown(tab7Readers, scale, 2)

	maxLag, shipped, simEnd := tab7StreamPhase(nw, nr, tab7Records)
	res.Rows = append(res.Rows, []string{
		"stream", kfmt(nw), kfmt(nr), "1",
		fmt.Sprintf("%d", shipped),
		fmt.Sprintf("%d/%d fl", maxLag, tab7LagBound),
		"0", "identical",
	})

	verified, torn, lostRanks, recovered := tab7CrashPhase(tab7Trials)
	res.Rows = append(res.Rows, []string{
		"crash", kfmt(tab7CrashRanks), "-", fmt.Sprintf("%d", tab7Trials),
		fmt.Sprintf("%d", recovered),
		"-",
		fmt.Sprintf("%d torn cells", torn),
		fmt.Sprintf("%d/%d", verified, tab7Trials),
	})

	res.Notes = append(res.Notes,
		fmt.Sprintf("stream: %d flush batches/writer (%d records, watermark every %d), readers poll each %.2fs of simulated time; run ends at t=%.1fs",
			(tab7Records+tab7Flush-1)/tab7Flush, tab7Records, tab7Flush, tab7Poll, simEnd),
		"commit ordering: record data is durable (Sync) before its watermark cell is written and synced, so a tailing reader can never observe a torn record",
		fmt.Sprintf("crash: write/sync failure injected mid-stream, then total loss of unsynced state; %d/%d trials also tore one sidecar commit slot (recovered via the partner slot)", torn, tab7Trials),
		fmt.Sprintf("%d writer-ranks lost flushed-but-uncommitted or unflushed bytes to the crash; every survivor decoded to whole frames and passed Repair+Verify+read-back", lostRanks),
	)
	return res
}
