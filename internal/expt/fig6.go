package expt

import (
	"fmt"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/mp2c"
	"repro/internal/mpi"
	"repro/internal/simfs"
)

// Fig. 6 runs MP2C's restart I/O on 1000 cores of Jugene: 52 bytes per
// particle, 1000 task-local files mapped onto a single physical file, vs
// the original single-file-sequential implementation (one designated I/O
// task alternating gathers and writes, one pass per particle field).
const (
	fig6Tasks = 1000
	// The original code gathers and writes each of MP2C's per-particle
	// fields separately (3 position + 3 velocity components + id).
	fig6Fields = 7
	// Effective gather rate into the designated I/O task (strided pack +
	// tree network), and per-round software overhead.
	fig6GatherBW = 60e6
	fig6RoundLat = 5e-5
)

// Fig6 regenerates Figure 6: times for writing and reading MP2C restart
// files with and without SIONlib, 1–10000 million particles.
func Fig6(scale int) *Result {
	res := &Result{
		Name:  "fig6",
		Title: "Fig. 6: MP2C restart write/read times on 1000 cores of Jugene (52 B/particle)",
		Header: []string{"Mio particles", "write SION(s)", "read SION(s)",
			"write(s)", "read(s)"},
	}
	ntasks := scaleDown(fig6Tasks, scale, 50)
	for _, mio := range []float64{1, 3.3, 10, 33, 100, 330, 1000, 3300, 10000} {
		particles := int64(mio * 1e6 / float64(scale))
		perTask := particles / int64(ntasks) * mp2c.ParticleBytes
		if perTask < mp2c.ParticleBytes {
			perTask = mp2c.ParticleBytes
		}

		// SIONlib: all task-local files in one physical file.
		fs := simfs.New(simfs.Jugene())
		var tWrite, tRead float64
		simRun(fs, ntasks, func(c *mpi.Comm, v fsio.FileSystem) {
			t0 := syncStart(c)
			f, err := sion.ParOpen(c, v, "restart.sion", sion.WriteMode,
				&sion.Options{ChunkSize: perTask, NFiles: 1})
			if err != nil {
				panic(err)
			}
			if err := f.WriteSynthetic(perTask); err != nil {
				panic(err)
			}
			f.Close()
			if t := allMaxTime(c) - t0; c.Rank() == 0 {
				tWrite = t
			}

			t1 := syncStart(c)
			r, err := sion.ParOpen(c, v, "restart.sion", sion.ReadMode, nil)
			if err != nil {
				panic(err)
			}
			if _, err := r.ReadSynthetic(perTask); err != nil {
				panic(err)
			}
			r.Close()
			if t := allMaxTime(c) - t1; c.Rank() == 0 {
				tRead = t
			}
		})

		row := []string{fmt.Sprintf("%.0f", mio),
			secsf(tWrite), secsf(tRead)}

		// The single-file sequential baseline was limited to small problem
		// sizes (paper: ≈10 M particles usable; measurements end at 33 M).
		if mio <= 33 {
			fs2 := simfs.New(simfs.Jugene())
			bw, br := fig6Baseline(fs2, ntasks, perTask)
			row = append(row, secsf(bw), secsf(br))
		} else {
			row = append(row, "-", "-")
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"paper: 1–2 orders of magnitude improvement at 33 Mio particles; SIONlib pays a 1-FS-block/task floor (≈2 GB at 1000 tasks), so its advantage appears only beyond small problem sizes",
		"baseline rows stop at 33 Mio: the original implementation could not run larger problems (paper §5.1)")
	return res
}

// fig6Baseline models the original MP2C checkpoint path: for every
// particle field, the designated I/O task gathers each task's share and
// appends it to a single file (strictly alternating gather and write, as
// the paper describes), then the mirror-image read+scatter.
func fig6Baseline(fs *simfs.FS, ntasks int, perTask int64) (write, read float64) {
	fieldBytes := perTask / fig6Fields
	if fieldBytes < 1 {
		fieldBytes = 1
	}
	var tw, tr float64
	simRun(fs, ntasks, func(c *mpi.Comm, v fsio.FileSystem) {
		if c.Rank() != 0 {
			// Workers only feed the designated I/O task; their cost is
			// subsumed in the gather rate. They wait for completion.
			c.Barrier()
			c.Barrier()
			return
		}
		p := c.Proc()
		fh, err := v.Create("restart-seq.bin")
		if err != nil {
			panic(err)
		}
		t0 := p.Now()
		var off int64
		for field := 0; field < fig6Fields; field++ {
			for task := 0; task < ntasks; task++ {
				// Gather this task's field slice, then write it.
				p.Advance(fig6RoundLat + float64(fieldBytes)/fig6GatherBW)
				if err := fh.WriteZeroAt(fieldBytes, off); err != nil {
					panic(err)
				}
				off += fieldBytes
			}
		}
		tw = p.Now() - t0
		fh.Close()
		c.Barrier()

		rh, err := v.Open("restart-seq.bin")
		if err != nil {
			panic(err)
		}
		t1 := p.Now()
		off = 0
		for field := 0; field < fig6Fields; field++ {
			for task := 0; task < ntasks; task++ {
				if _, err := rh.ReadDiscardAt(fieldBytes, off); err != nil {
					panic(err)
				}
				p.Advance(fig6RoundLat + float64(fieldBytes)/fig6GatherBW)
				off += fieldBytes
			}
		}
		tr = p.Now() - t1
		rh.Close()
		c.Barrier()
	})
	return tw, tr
}

func secsf(t float64) string {
	if t < 10 {
		return fmt.Sprintf("%.2f", t)
	}
	return fmt.Sprintf("%.1f", t)
}
