package expt

import (
	"bytes"
	"fmt"
	"math"
	"sort"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/mpi"
	"repro/internal/serve"
	"repro/internal/simfs"
)

// Table 6 (extension): backend request reduction from the read-serving
// subsystem (internal/serve). The paper solves writing task-local data at
// scale; serving that data back to large, loosely coupled client
// populations is the read-side mirror image: without a serving layer,
// every logical read walks the multifile through its own handle (metadata
// parse at open, one backend request per record), with zero reuse across
// clients. internal/serve fronts the multifile with a sharded block cache
// and per-file fetchers that coalesce misses into dense span reads — the
// CkIO-style decoupling of many logical readers from few aggregated file
// requests (arXiv:2411.18593), with the cache-and-broadcast amortization
// of collective-buffering models (arXiv:0901.0134).
//
// Workload: one multifile written by tab6Writers tasks, then read by
// tab6Clients sequential logical clients. Each client picks a rank from a
// zipfian popularity distribution (a hot-set read pattern: the restart of
// a popular checkpoint, a dashboard over fresh trace data), opens a
// session, and reads a few random windows of that rank — verified
// byte-for-byte against the written payload in every mode. The uncached
// baseline gives every client its own OpenRank handle; the served modes
// route all clients through one serve.Server with a large and a small
// cache budget. simfs.FileStats counts every backend request.
const (
	tab6Writers  = 256
	tab6Chunk    = int64(64) << 10 // one 64 KiB FS block per chunk
	tab6NFiles   = 2
	tab6Clients  = 2048
	tab6Reads    = 4    // random windows per client
	tab6ReadLen  = 2048 // bytes per window
	tab6CacheBig = int64(64) << 20
	tab6CacheSml = int64(1) << 20 // 16 cache blocks: forces eviction churn
)

// tab6Profile is tab3's machine (Jugene, 64 KiB blocks).
func tab6Profile() *simfs.Profile {
	p := tab3Profile()
	p.Name = "jugene-64k-tab6"
	return p
}

// tab6Size is writer g's payload size: about 1.5 chunks, varied per rank.
func tab6Size(g int) int {
	return int(tab6Chunk) + int(tab6Chunk)/2 + g%251
}

// tab6Rand is a deterministic LCG so the access pattern is identical
// across modes and Go versions (math/rand's zipf stream is not pinned).
type tab6Rand struct{ x uint64 }

func (r *tab6Rand) next() uint64 {
	r.x = r.x*6364136223846793005 + 1442695040888963407
	return r.x >> 11
}

func (r *tab6Rand) float() float64 {
	return float64(r.next()%(1<<52)) / float64(uint64(1)<<52)
}

// tab6Zipf samples ranks with popularity ∝ 1/(k+1)^1.2 via the cumulative
// distribution.
type tab6Zipf struct{ cum []float64 }

func newTab6Zipf(n int) *tab6Zipf {
	z := &tab6Zipf{cum: make([]float64, n)}
	var total float64
	for k := 0; k < n; k++ {
		total += 1 / math.Pow(float64(k+1), 1.2)
		z.cum[k] = total
	}
	for k := range z.cum {
		z.cum[k] /= total
	}
	return z
}

func (z *tab6Zipf) sample(r *tab6Rand) int {
	u := r.float()
	return sort.SearchFloat64s(z.cum, u)
}

// tab6Stats sums the request counters over every physical file of the
// multifile.
func tab6Stats(fs *simfs.FS, name string, nfiles int) simfs.FileStats {
	var tot simfs.FileStats
	for _, pn := range sion.PhysicalNames(name, nfiles) {
		st, ok := fs.Stats(pn)
		if !ok {
			continue
		}
		tot.Opens += st.Opens
		tot.ReadRequests += st.ReadRequests
		tot.WriteRequests += st.WriteRequests
		if st.ReaderTasks > tot.ReaderTasks {
			tot.ReaderTasks = st.ReaderTasks
		}
	}
	return tot
}

// tab6Client is one logical client's reads: a zipfian rank, tab6Reads
// random windows (every 16th client additionally streams the whole rank),
// every byte verified against the written payload.
func tab6Client(c int, rng *tab6Rand, zipf *tab6Zipf, open func(g int) (sion.LogicalReaderAt, func())) {
	g := zipf.sample(rng)
	want := taskPayload(g, tab6Size(g))
	h, done := open(g)
	defer done()
	for i := 0; i < tab6Reads; i++ {
		off := int64(rng.next() % uint64(len(want)-tab6ReadLen))
		buf := make([]byte, tab6ReadLen)
		if _, err := h.ReadLogicalAt(buf, off); err != nil {
			panic(fmt.Sprintf("tab6: client %d rank %d window at %d: %v", c, g, off, err))
		}
		if !bytes.Equal(buf, want[off:off+tab6ReadLen]) {
			panic(fmt.Sprintf("tab6: client %d rank %d window at %d: bytes differ", c, g, off))
		}
	}
	if c%16 == 0 {
		buf := make([]byte, len(want))
		if _, err := h.ReadLogicalAt(buf, 0); err != nil {
			panic(fmt.Sprintf("tab6: client %d rank %d full stream: %v", c, g, err))
		}
		if !bytes.Equal(buf, want) {
			panic(fmt.Sprintf("tab6: client %d rank %d: full stream differs", c, g))
		}
	}
}

// tab6Mode writes the multifile once per call and replays the identical
// zipfian client sequence, uncached (cacheBytes 0: per-client OpenRank
// handles) or through a serve.Server with the given cache budget. It
// returns the read-phase request counters and, for served modes, the
// server's own stats.
func tab6Mode(nwriters, nclients int, cacheBytes int64) (rst simfs.FileStats, sst serve.Stats) {
	fs := simfs.New(tab6Profile())

	simRun(fs, nwriters, func(c *mpi.Comm, v fsio.FileSystem) {
		f, err := sion.ParOpen(c, v, "tab6.sion", sion.WriteMode, &sion.Options{
			ChunkSize: tab6Chunk, NFiles: tab6NFiles,
		})
		if err != nil {
			panic(err)
		}
		if _, err := f.Write(taskPayload(c.Rank(), tab6Size(c.Rank()))); err != nil {
			panic(err)
		}
		if err := f.Close(); err != nil {
			panic(err)
		}
	})
	wst := tab6Stats(fs, "tab6.sion", tab6NFiles)
	fs.ResetServers()
	fs.DropCaches()

	// The clients run sequentially on unmetered views (the serving layer
	// is a concurrent subsystem, not a set of vtime processes; tab6 proves
	// the request-count claim, which is time-independent).
	rng := &tab6Rand{x: 0x5107a}
	zipf := newTab6Zipf(nwriters)
	if cacheBytes == 0 {
		for c := 0; c < nclients; c++ {
			v := fs.View(nwriters+1+c, nil)
			tab6Client(c, rng, zipf, func(g int) (sion.LogicalReaderAt, func()) {
				h, err := sion.OpenRank(v, "tab6.sion", g)
				if err != nil {
					panic(err)
				}
				return h, func() { h.Close() }
			})
		}
	} else {
		srv, err := serve.New(fs.View(nwriters, nil), "tab6.sion", &serve.Config{CacheBytes: cacheBytes})
		if err != nil {
			panic(err)
		}
		for c := 0; c < nclients; c++ {
			tab6Client(c, rng, zipf, func(g int) (sion.LogicalReaderAt, func()) {
				h, err := srv.Open(g)
				if err != nil {
					panic(err)
				}
				return h, func() {}
			})
		}
		sst = srv.Stats()
		if err := srv.Close(); err != nil {
			panic(err)
		}
	}
	st := tab6Stats(fs, "tab6.sion", tab6NFiles)
	rst = simfs.FileStats{
		Opens:        st.Opens - wst.Opens,
		ReadRequests: st.ReadRequests - wst.ReadRequests,
		ReaderTasks:  st.ReaderTasks,
	}
	return rst, sst
}

// Table6 regenerates the read-serving table: the zipfian client workload
// against per-handle uncached reads and against the serving subsystem
// with a large and a deliberately tiny cache, with simfs request counters
// proving the order-of-magnitude backend reduction and byte identity
// asserted in-run for every mode.
func Table6(scale int) *Result {
	res := &Result{
		Name:   "tab6",
		Title:  "Table 6 (ext): read-serving subsystem (internal/serve), zipfian client workload, jugene, 64 KiB blocks",
		Header: []string{"read mode", "writers", "clients", "opens", "rd reqs", "hit%", "redux"},
	}
	nwriters := scaleDown(tab6Writers, scale, 32)
	nclients := scaleDown(tab6Clients, scale, 256)

	type mode struct {
		label string
		cache int64
	}
	var baseline float64
	for _, m := range []mode{
		{"uncached", 0},
		{fmt.Sprintf("served-%dMiB", tab6CacheBig>>20), tab6CacheBig},
		{fmt.Sprintf("served-%dMiB", tab6CacheSml>>20), tab6CacheSml},
	} {
		rst, sst := tab6Mode(nwriters, nclients, m.cache)
		hit, redux := "-", "1.0x"
		if m.cache == 0 {
			baseline = float64(rst.ReadRequests)
		} else {
			if lookups := sst.Hits + sst.Misses; lookups > 0 {
				hit = fmt.Sprintf("%.1f", 100*float64(sst.Hits)/float64(lookups))
			}
			redux = fmt.Sprintf("%.1fx", baseline/float64(rst.ReadRequests))
		}
		res.Rows = append(res.Rows, []string{
			m.label, kfmt(nwriters), kfmt(nclients),
			fmt.Sprintf("%d", rst.Opens),
			fmt.Sprintf("%d", rst.ReadRequests),
			hit, redux,
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("zipf(1.2) rank popularity; %d windows of %d B per client, every 16th client streams its whole rank; byte identity asserted in-run",
			tab6Reads, tab6ReadLen),
		"uncached: every client pays its own OpenRank metadata walk plus one backend request per window",
		"served: one layout snapshot at serve.New; misses fill the sharded block cache via dense span reads, so backend requests approach the distinct-block count of the working set",
		"request counters are simfs.FileStats sums over both physical files; the client sequence is identical in every mode")
	return res
}
