package expt

import "testing"

// TestTable10Findings asserts the backend auto-tuning claims on the
// generated table. The hard guarantees — per-rank byte identity on every
// arm and the ≥2× object-store request reduction — are asserted inside
// Table10 itself (it panics), so this test pins the table's shape and
// the geometry the tuning is supposed to have picked.
func TestTable10Findings(t *testing.T) {
	r := Table10(testScale)
	if len(r.Rows) != 3 {
		t.Fatalf("tab10 has %d rows, want 3", len(r.Rows))
	}
	const (
		colFiles  = 2
		colFSBlk  = 3
		colRdReqs = 5
		colCopies = 6
		colTotal  = 7
	)
	// The auto arm's geometry must come from the capability descriptor:
	// part-sized FS blocks (smallpart = 1 MiB) and the declared fanout.
	if got := cell(t, r, 2, colFSBlk); got != 1024 {
		t.Errorf("auto arm fsblk = %.0f KiB, want 1024 (the part size)", got)
	}
	if got := cell(t, r, 2, colFiles); got != 8 {
		t.Errorf("auto arm files = %.0f, want the fanout 8", got)
	}
	// POSIX-tuned geometry on the posix backend stays the historical
	// default: one file, the machine's 64 KiB blocks.
	if got := cell(t, r, 0, colFiles); got != 1 {
		t.Errorf("posix arm files = %.0f, want 1", got)
	}
	if got := cell(t, r, 0, colFSBlk); got != 64 {
		t.Errorf("posix arm fsblk = %.0f KiB, want 64", got)
	}
	// Part-misaligned chunks pay staged copies; part-aligned ones none.
	if got := cell(t, r, 1, colCopies); got == 0 {
		t.Error("POSIX-tuned objstore arm paid no staged copies — misalignment not modeled")
	}
	if got := cell(t, r, 2, colCopies); got != 0 {
		t.Errorf("auto-tuned objstore arm paid %.0f staged copies, want 0 (part-aligned chunks)", got)
	}
	// Unbuffered reads cost ~one GET per record; BufferAuto collapses
	// them by orders of magnitude. Re-check the headline bound on the
	// table (Table10 already panics if it fails).
	tuned, auto := cell(t, r, 1, colTotal), cell(t, r, 2, colTotal)
	if auto*2 > tuned {
		t.Errorf("auto-tuned requests %.0f not ≥2× below POSIX-tuned %.0f", auto, tuned)
	}
	if rdTuned, rdAuto := cell(t, r, 1, colRdReqs), cell(t, r, 2, colRdReqs); rdAuto*10 > rdTuned {
		t.Errorf("auto-tuned read GETs %.0f not well below unbuffered %.0f", rdAuto, rdTuned)
	}
}

// TestTable10Registered pins the experiment's registration in the runner
// tables (sionbench -exp tab10, All, Names).
func TestTable10Registered(t *testing.T) {
	if ByName("tab10") == nil || ByName("table10") == nil {
		t.Fatal("tab10 not resolvable via ByName")
	}
	found := false
	for _, n := range Names() {
		if n == "tab10" {
			found = true
		}
	}
	if !found {
		t.Fatalf("tab10 missing from Names(): %v", Names())
	}
}
