package expt

import (
	"fmt"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/mpi"
	"repro/internal/simfs"
)

// Table 4 (extension): request reduction from buffered staging I/O on the
// direct path. Table 3 shows what routing traffic through collector tasks
// buys; this experiment isolates the orthogonal, purely client-local
// lever: write-behind and read-ahead staging (internal/core/buffer.go)
// coalesce a small-record workload's per-call requests into few large
// FS-block-aligned ones without any extra communication — every task
// still opens the multifile itself, so this is the mode of choice when
// collective exchange is unwanted (e.g. task-asynchronous checkpointing).
// The multifile written through the staging layer is byte-identical to
// the unbuffered one (asserted by tab4_test).
//
// Workload: the Fig. 6 small-record checkpoint regime of tab3 —
// tab4Record bytes per Write/Read with tab4Compute seconds of compute
// between records, tab4BlocksN chunks of tab4Chunk bytes per task.
const (
	tab4Tasks   = 128
	tab4Chunk   = int64(1) << 20 // 16 FS blocks per chunk on tab3's profile
	tab4BlocksN = 2              // chunks (blocks) of data per task
	tab4Record  = 128            // bytes per write/read call
	tab4Compute = 20e-6          // seconds of computation per record
)

// tab4Mode runs one write+read cycle in direct mode with the given
// staging-buffer size (0 = unbuffered) and reports the simulated wall
// times and the multifile's request counters.
func tab4Mode(ntasks int, bufSize int64) (writeT, readT float64, wst, rst simfs.FileStats) {
	fs := simfs.New(tab4Profile())
	perTask := tab4BlocksN * tab4Chunk
	nrec := int(perTask / tab4Record)

	simRun(fs, ntasks, func(c *mpi.Comm, v fsio.FileSystem) {
		t0 := syncStart(c)
		f, err := sion.ParOpen(c, v, "tab4.sion", sion.WriteMode, &sion.Options{
			ChunkSize: tab4Chunk, BufferSize: bufSize,
		})
		if err != nil {
			panic(err)
		}
		rec := make([]byte, tab4Record)
		for i := 0; i < nrec; i++ {
			c.Advance(tab4Compute)
			if _, err := f.Write(rec); err != nil {
				panic(err)
			}
		}
		if err := f.Close(); err != nil {
			panic(err)
		}
		if t := allMaxTime(c) - t0; c.Rank() == 0 {
			writeT = t
		}
	})
	wst, _ = fs.Stats("tab4.sion")

	// Fresh measurement window and cold caches for the read-back phase.
	fs.ResetServers()
	fs.DropCaches()

	simRun(fs, ntasks, func(c *mpi.Comm, v fsio.FileSystem) {
		t0 := syncStart(c)
		var opts *sion.Options
		if bufSize != 0 {
			opts = &sion.Options{BufferSize: bufSize}
		}
		f, err := sion.ParOpen(c, v, "tab4.sion", sion.ReadMode, opts)
		if err != nil {
			panic(err)
		}
		buf := make([]byte, tab4Record)
		for !f.EOF() {
			if _, err := f.Read(buf); err != nil {
				panic(err)
			}
		}
		f.Close()
		if t := allMaxTime(c) - t0; c.Rank() == 0 {
			readT = t
		}
	})
	st, _ := fs.Stats("tab4.sion")
	rst = simfs.FileStats{
		Opens:        st.Opens - wst.Opens,
		ReadRequests: st.ReadRequests - wst.ReadRequests,
		ReaderTasks:  st.ReaderTasks,
	}
	return writeT, readT, wst, rst
}

// tab4Profile is tab3's machine: Jugene with 64 KiB file-system blocks,
// so the per-request costs this experiment isolates are not drowned by
// first-touch block charges.
func tab4Profile() *simfs.Profile {
	p := tab3Profile()
	p.Name = "jugene-64k-tab4"
	return p
}

// Table4 regenerates the buffered-staging request-reduction table: the
// small-record workload written and read back unbuffered, with a
// one-FS-block staging buffer, and with the auto-tuned buffer
// (BufferAuto = one chunk capacity), with per-file request counts from
// the simulated file system proving the coalescing claim.
func Table4(scale int) *Result {
	res := &Result{
		Name:  "tab4",
		Title: "Table 4 (ext): request reduction with buffered staging I/O, direct path, small-record workload (jugene, 64 KiB blocks)",
		Header: []string{"I/O mode", "tasks", "wr reqs", "write(s)", "rd reqs", "read(s)"},
	}
	ntasks := scaleDown(tab4Tasks, scale, 64)
	fsblk := tab4Profile().FSBlockSize

	type mode struct {
		label   string
		bufSize int64
	}
	for _, m := range []mode{
		{"direct", 0},
		{"buffered-1blk", fsblk},
		{"buffered-auto", sion.BufferAuto},
	} {
		writeT, readT, wst, rst := tab4Mode(ntasks, m.bufSize)
		res.Rows = append(res.Rows, []string{
			m.label, kfmt(ntasks),
			fmt.Sprintf("%d", wst.WriteRequests),
			fmt.Sprintf("%.3f", writeT),
			fmt.Sprintf("%d", rst.ReadRequests),
			fmt.Sprintf("%.3f", readT),
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("%d B records, %d × %d KiB chunks per task, %.0f µs compute per record; auto buffer = one chunk capacity",
			tab4Record, tab4BlocksN, tab4Chunk>>10, tab4Compute*1e6),
		"expected: buffered-auto ≤ buffered-1blk ≤ direct in request counts, and both buffered modes well below direct in simulated wall time",
		"unlike tab3's collective modes, every task still opens the file itself: the reduction is purely client-local coalescing")
	return res
}
