package expt

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// These tests assert that each regenerated experiment reproduces the
// paper's qualitative findings (who wins, where saturation and crossovers
// fall) at a reduced scale, so the reproduction claims are continuously
// verified by `go test`.

const testScale = 16

func cell(t *testing.T, r *Result, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(strings.TrimSpace(r.Rows[row][col]), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s row %d col %d: %q not numeric", r.Name, row, col, r.Rows[row][col])
	}
	return v
}

func TestFig3aFindings(t *testing.T) {
	r := Fig3a(testScale)
	last := len(r.Rows) - 1
	create, open, sionT := cell(t, r, last, 1), cell(t, r, last, 2), cell(t, r, last, 3)
	if sionT*20 > create {
		t.Errorf("SION create %.2fs not ≫ faster than %d-file create %.2fs (paper: orders of magnitude)", sionT, 1<<12, create)
	}
	if open >= create {
		t.Errorf("open existing (%.2fs) should be cheaper than create (%.2fs)", open, create)
	}
	if sionT*5 > open {
		t.Errorf("SION create %.2fs should beat even opening existing files %.2fs", sionT, open)
	}
	// Creation time grows with task count.
	if cell(t, r, 0, 1) >= create {
		t.Errorf("creation time not increasing with task count")
	}
}

func TestFig3bFindings(t *testing.T) {
	r := Fig3b(testScale)
	last := len(r.Rows) - 1
	create, sionT := cell(t, r, last, 1), cell(t, r, last, 3)
	if sionT*10 > create {
		t.Errorf("Jaguar: SION create %.2fs not far faster than task-local create %.2fs", sionT, create)
	}
}

func TestFig4aFindings(t *testing.T) {
	r := Fig4a(testScale)
	w1 := cell(t, r, 0, 1)
	wLast := cell(t, r, len(r.Rows)-1, 1)
	if wLast < 1.8*w1 {
		t.Errorf("bandwidth does not grow with file count: 1 file %.0f, many %.0f", w1, wLast)
	}
	// Monotone non-decreasing (within 2%) and saturating: the last two
	// configurations should be within 5% of each other.
	prev := 0.0
	for i := range r.Rows {
		w := cell(t, r, i, 1)
		if w < prev*0.98 {
			t.Errorf("write bandwidth dropped at row %d: %.0f after %.0f", i, w, prev)
		}
		prev = w
	}
	w2nd := cell(t, r, len(r.Rows)-2, 1)
	if wLast > w2nd*1.05 {
		t.Errorf("no saturation: %.0f -> %.0f at the largest file counts", w2nd, wLast)
	}
}

func TestFig4bFindings(t *testing.T) {
	r := Fig4b(4) // larger tasks counts so the client links don't dominate
	for i := range r.Rows {
		wo, wd := cell(t, r, i, 1), cell(t, r, i, 3)
		if wo < wd*0.999 {
			t.Errorf("row %d: optimized striping (%.0f) not ≥ default (%.0f)", i, wo, wd)
		}
	}
	// Optimized is near-saturated by 2 files (paper: "no benefits of using
	// more than two files"); default keeps climbing.
	wo2 := cell(t, r, 1, 1)
	woLast := cell(t, r, len(r.Rows)-1, 1)
	if woLast > wo2*1.15 {
		t.Errorf("optimized striping should saturate at 2 files: %.0f vs %.0f", wo2, woLast)
	}
	wd2 := cell(t, r, 1, 3)
	wdLast := cell(t, r, len(r.Rows)-1, 3)
	if wdLast < wd2*2 {
		t.Errorf("default striping should keep climbing well past 2 files: %.0f vs %.0f", wd2, wdLast)
	}
}

func TestTable1Findings(t *testing.T) {
	r := Table1(8)
	wAligned, rAligned := cell(t, r, 0, 1), cell(t, r, 0, 2)
	wMis, rMis := cell(t, r, 1, 1), cell(t, r, 1, 2)
	if wAligned < wMis*1.2 {
		t.Errorf("alignment must help writes: %.0f vs %.0f", wAligned, wMis)
	}
	if rAligned < rMis*1.05 {
		t.Errorf("alignment must help reads: %.0f vs %.0f", rAligned, rMis)
	}
	// Write degradation exceeds read degradation (paper: 2.53x vs 1.78x).
	if wAligned/wMis < rAligned/rMis {
		t.Errorf("write degradation (%.2f) should exceed read degradation (%.2f)",
			wAligned/wMis, rAligned/rMis)
	}
}

func TestFig5aFindings(t *testing.T) {
	r := Fig5a(testScale)
	last := len(r.Rows) - 1
	sw, tw := cell(t, r, last, 1), cell(t, r, last, 3)
	if sw < tw*0.97 {
		t.Errorf("SION write %.0f clearly worse than task-local %.0f (paper: marginally better)", sw, tw)
	}
	// Bandwidth grows with task count up to saturation.
	if cell(t, r, 0, 1) > sw {
		t.Errorf("bandwidth should not shrink with more tasks")
	}
}

func TestFig5bFindings(t *testing.T) {
	r := Fig5b(8)
	last := len(r.Rows) - 1
	// SION write at least on par at the largest configuration.
	sw, tw := cell(t, r, last, 1), cell(t, r, last, 3)
	if sw < tw*0.97 {
		t.Errorf("Jaguar: SION write %.0f clearly worse than task-local %.0f", sw, tw)
	}
	// Read crossover: task-local reads win at the smallest configuration
	// where the servers are engaged, SION reads win at the largest
	// (paper: SION read better only ≥1k tasks).
	srLast, trLast := cell(t, r, last, 2), cell(t, r, last, 4)
	if srLast < trLast {
		t.Errorf("SION read (%.0f) should win at large task counts (task-local %.0f)", srLast, trLast)
	}
}

func TestFig6Findings(t *testing.T) {
	r := Fig6(4)
	var at33, at1 []float64
	for i := range r.Rows {
		switch r.Rows[i][0] {
		case "33":
			at33 = []float64{cell(t, r, i, 1), cell(t, r, i, 3)}
		case "1":
			at1 = []float64{cell(t, r, i, 1), cell(t, r, i, 3)}
		}
	}
	if at33 == nil || at1 == nil {
		t.Fatal("missing rows")
	}
	if at33[1] < 5*at33[0] {
		t.Errorf("at 33 Mio particles SION (%.2fs) should be ≫ faster than baseline (%.2fs)", at33[0], at33[1])
	}
	// At 1 Mio the one-FS-block-per-task floor erases SIONlib's advantage
	// (paper: advantage only for larger problem sizes).
	if at1[1] > 3*at1[0] {
		t.Errorf("at 1 Mio particles SION (%.2fs) vs baseline (%.2fs): advantage should be small", at1[0], at1[1])
	}
	// SION times must be flat at small sizes (block floor), then grow.
	if cell(t, r, 0, 1)*1.5 > cell(t, r, len(r.Rows)-1, 1) {
		t.Errorf("SION write time should grow for huge particle counts")
	}
	// Baseline rows stop after 33 Mio.
	for i := range r.Rows {
		if r.Rows[i][0] == "100" && r.Rows[i][3] != "-" {
			t.Errorf("baseline must not have rows beyond 33 Mio (paper: limited to small problems)")
		}
	}
}

func TestTable2Findings(t *testing.T) {
	r := Table2(8)
	actTL, actS := cell(t, r, 0, 3), cell(t, r, 1, 3)
	if actTL < 2*actS {
		t.Errorf("activation speedup too small: %.1f vs %.1f", actTL, actS)
	}
	bwTL, bwS := cell(t, r, 0, 4), cell(t, r, 1, 4)
	if bwS < bwTL*0.995 {
		t.Errorf("SION write bandwidth (%.0f) should not trail task-local (%.0f)", bwS, bwTL)
	}
}

func TestResultPrinting(t *testing.T) {
	r := &Result{
		Name:   "x",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"n1"},
	}
	var buf bytes.Buffer
	r.Print(&buf)
	out := buf.String()
	for _, want := range []string{"== x: demo", "333", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("printed result missing %q:\n%s", want, out)
		}
	}
}

func TestByNameAndAll(t *testing.T) {
	for _, n := range Names() {
		if ByName(n) == nil {
			t.Fatalf("ByName(%q) = nil", n)
		}
	}
	if ByName("nope") != nil {
		t.Fatal("ByName(nope) should be nil")
	}
}
