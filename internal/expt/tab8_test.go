package expt

import (
	"reflect"
	"strconv"
	"testing"
)

// TestTable8Findings asserts the chaos claims the experiment was built to
// prove. The hard invariants — ≥99% request success under the retry
// budget, byte identity on every successful read, zero give-ups in the
// writer storm, the full breaker lifecycle, zero counters without
// injection — are panics inside Table8 itself, so completing is most of
// the assertion; this test additionally pins the reported outcomes.
func TestTable8Findings(t *testing.T) {
	r := Table8(testScale)
	if len(r.Rows) != 5 {
		t.Fatalf("tab8 has %d rows, want 5", len(r.Rows))
	}
	const (
		colOkPct    = 3
		colRetries  = 4
		colGiveUps  = 5
		colDegraded = 6
		colOpens    = 7
	)
	num := func(row []string, col int) float64 {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			t.Fatalf("row %v col %d %q: %v", row, col, row[col], err)
		}
		return v
	}
	noRetry, retry, writer, drill, clean := r.Rows[0], r.Rows[1], r.Rows[2], r.Rows[3], r.Rows[4]

	// The storm is real: without retries some requests fail, and the
	// budget absorbs all of them.
	if num(noRetry, colGiveUps) == 0 {
		t.Errorf("no-retry storm rode out p=%.2f faults with zero give-ups: %v", tab8ReadErr, noRetry)
	}
	if pct := num(retry, colOkPct); pct < 100*tab8SuccessFloor {
		t.Errorf("retry storm ok%% = %v, want >= %v", pct, 100*tab8SuccessFloor)
	}
	if num(retry, colRetries) == 0 {
		t.Errorf("retry storm absorbed faults without retrying: %v", retry)
	}

	// The writer storm retried and never gave up.
	if num(writer, colRetries) == 0 || num(writer, colGiveUps) != 0 {
		t.Errorf("writer storm row %v, want retries > 0 and zero give-ups", writer)
	}

	// The drill opened exactly one circuit and fast-failed some requests.
	if num(drill, colOpens) != 1 || num(drill, colDegraded) == 0 {
		t.Errorf("breaker drill row %v, want opens 1 and degraded > 0", drill)
	}

	// Zero overhead without injection.
	for _, col := range []int{colRetries, colGiveUps, colDegraded, colOpens} {
		if num(clean, col) != 0 {
			t.Errorf("no-injection row moved a resilience counter: %v", clean)
		}
	}
	if num(clean, colOkPct) != 100 {
		t.Errorf("no-injection ok%% = %v, want 100", num(clean, colOkPct))
	}
}

// TestTable8Deterministic: the chaos table must be replayable — two runs
// at the same scale produce identical rows (the fault storm, the retry
// jitter, and the client access pattern are all seeded).
func TestTable8Deterministic(t *testing.T) {
	a, b := Table8(testScale), Table8(testScale)
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Fatalf("tab8 rows differ across runs:\n%v\n%v", a.Rows, b.Rows)
	}
}
