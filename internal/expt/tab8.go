package expt

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/mpi"
	"repro/internal/resil"
	"repro/internal/serve"
	"repro/internal/simfs"
)

// Table 8 (extension): transient-fault resilience under a seeded fault
// storm — the flaky-FS model (simfs.Flaky), the retry/backoff budgets
// (internal/resil), and the per-physical-file circuit breakers
// (internal/serve) exercised together as a chaos experiment. The paper's
// machines hide most storage faults behind GPFS/Lustre retry layers, but
// at 64k tasks even a 1e-4 per-op transient rate hits every collective;
// the resilience layers make those faults invisible to the paper's
// workloads. Four phases, every assertion checked in-run (panic on
// violation), everything deterministic from tab8Seed:
//
//   - serve-storm: a zipfian client population (tab6's access pattern)
//     reads a multifile through serve.Server while every backend read
//     fails transiently with probability tab8ReadErr. Without retries the
//     storm surfaces as failed requests; under the bounded backoff budget
//     at least tab8SuccessFloor of requests succeed (in practice all of
//     them), and every successful read is verified byte-identical to the
//     written payload.
//
//   - writer-storm: tab8Writers vtime-metered ranks stream a watermarked
//     multifile through resil-wrapped flaky views (write, sync, and
//     metadata ops all fault-injected; latency spikes and backoff delays
//     advance the ranks' virtual clocks). The storm must be fully
//     absorbed: zero give-ups, and the multifile reads back
//     byte-identically once the injection is off.
//
//   - breaker-drill: a deterministic hard outage (FailWindow) on one
//     physical file walks its circuit through closed → open → half-open
//     → closed. While the circuit is open, cache hits keep serving and
//     misses fail fast with serve.ErrDegraded (no backend retries are
//     burned); when the outage lifts, the cooldown admits a probe whose
//     success restores full byte-identical service.
//
//   - no-injection: the same serve configuration with injection disabled
//     must leave every resilience counter at exactly zero — the fault
//     machinery costs nothing when the backend is healthy.
const (
	tab8Writers = 64
	tab8Chunk   = int64(16) << 10
	tab8FSBlk   = int64(1) << 10
	tab8NFiles  = 2
	tab8Clients = 512
	tab8Reads   = 4    // random windows per client
	tab8ReadLen = 1024 // bytes per window: one cache block

	tab8Seed     = 0x7ab80001
	tab8ReadErr  = 0.08 // serve-storm per-read transient fault probability
	tab8Attempts = 8    // bounded backoff budget in the storm phases

	tab8Threshold = 3 // breaker-drill: consecutive give-ups to open
	tab8Cooldown  = 6 // breaker-drill: rejects before the half-open probe

	tab8SuccessFloor = 0.99 // asserted request success rate under retries
)

// tab8Profile is tab3's machine (Jugene, 64 KiB blocks); the in-file
// layout uses tab8FSBlk so the client windows land on many distinct cache
// blocks even at test scale.
func tab8Profile() *simfs.Profile {
	p := tab3Profile()
	p.Name = "jugene-64k-tab8"
	return p
}

// tab8Size is writer g's payload size: about 1.5 chunks, varied per rank.
func tab8Size(g int) int {
	return int(tab8Chunk) + int(tab8Chunk)/2 + g%251
}

// tab8Budget is the no-real-sleep bounded backoff budget the serve phases
// run under (the serving layer is outside vtime, exactly as in tab6; the
// backoff delays are therefore not metered, only counted).
func tab8Budget(attempts int) *resil.Budget {
	return &resil.Budget{MaxAttempts: attempts, Seed: tab8Seed, Sleep: func(time.Duration) {}}
}

// tab8Write writes the multifile the serve phases read: tab8Writers ranks,
// watermark-free, on a clean (un-injected) machine.
func tab8Write(fs *simfs.FS, nwriters int, name string) {
	simRun(fs, nwriters, func(c *mpi.Comm, v fsio.FileSystem) {
		f, err := sion.ParOpen(c, v, name, sion.WriteMode, &sion.Options{
			ChunkSize: tab8Chunk, FSBlockSize: tab8FSBlk, NFiles: tab8NFiles,
		})
		if err != nil {
			panic(fmt.Sprintf("tab8: writer %d: ParOpen: %v", c.Rank(), err))
		}
		if _, err := f.Write(taskPayload(c.Rank(), tab8Size(c.Rank()))); err != nil {
			panic(fmt.Sprintf("tab8: writer %d: Write: %v", c.Rank(), err))
		}
		if err := f.Close(); err != nil {
			panic(fmt.Sprintf("tab8: writer %d: Close: %v", c.Rank(), err))
		}
	})
}

// tab8ServeStorm replays the zipfian client workload against a serve
// stack whose backend fails transiently with probability tab8ReadErr
// (inject=true) or not at all (inject=false). Breakers are disabled so
// the phase isolates the retry budget; the drill phase owns the breaker.
// Every successful read is byte-verified. Returns the request/success
// counts and the server's resilience counters.
func tab8ServeStorm(nwriters, nclients, attempts int, inject bool) (requests, ok int, st serve.Stats, injected int64) {
	fs := simfs.New(tab8Profile())
	tab8Write(fs, nwriters, "tab8.sion")
	fl := simfs.NewFlaky(simfs.FlakyConfig{Seed: tab8Seed, ReadErrProb: tab8ReadErr})
	fl.SetEnabled(false) // the metadata load in New is not under the retry path
	srv, err := serve.New(fl.Wrap(fs.View(nwriters, nil), nil), "tab8.sion", &serve.Config{
		CacheBytes:       1 << 20,
		Retry:            tab8Budget(attempts),
		BreakerThreshold: -1,
	})
	if err != nil {
		panic(fmt.Sprintf("tab8: serve.New: %v", err))
	}
	fl.SetEnabled(inject)

	rng := &tab6Rand{x: tab8Seed}
	zipf := newTab6Zipf(nwriters)
	for c := 0; c < nclients; c++ {
		g := zipf.sample(rng)
		want := taskPayload(g, tab8Size(g))
		h, err := srv.Open(g)
		if err != nil {
			panic(fmt.Sprintf("tab8: client %d: Open(%d): %v", c, g, err))
		}
		for i := 0; i < tab8Reads; i++ {
			off := int64(rng.next() % uint64(len(want)-tab8ReadLen))
			buf := make([]byte, tab8ReadLen)
			requests++
			if _, err := h.ReadLogicalAt(buf, off); err != nil {
				// Only a retry-exhausted transient fault is an acceptable
				// failure under the storm; anything else is a bug.
				if resil.Classify(err) != resil.ClassTransient {
					panic(fmt.Sprintf("tab8: client %d rank %d: non-transient failure: %v", c, g, err))
				}
				continue
			}
			if !bytes.Equal(buf, want[off:off+tab8ReadLen]) {
				panic(fmt.Sprintf("tab8: client %d rank %d window at %d: bytes differ under faults", c, g, off))
			}
			ok++
		}
	}
	st = srv.Stats()
	injected = fl.Stats().Injected
	if err := srv.Close(); err != nil {
		panic(fmt.Sprintf("tab8: serve.Close: %v", err))
	}
	return requests, ok, st, injected
}

// tab8WriterStorm streams a watermarked multifile from vtime-metered
// ranks whose views inject transient faults on every op kind plus latency
// spikes; the resil wrapper's backoff delays and the spikes both advance
// the writing rank's virtual clock. Returns the fault-model op/injection
// counts and the retry counters; panics unless the storm is fully
// absorbed (zero give-ups, byte-identical read-back).
func tab8WriterStorm(nwriters int) (flst simfs.FlakyStats, rst resil.CounterSnapshot) {
	fs := simfs.New(tab8Profile())
	fl := simfs.NewFlaky(simfs.FlakyConfig{
		Seed:         tab8Seed + 1,
		ReadErrProb:  0.04,
		WriteErrProb: 0.04,
		MetaErrProb:  0.02,
		LatencyProb:  0.05,
		LatencySecs:  0.02,
	})
	var ctrs resil.Counters
	simRun(fs, nwriters, func(c *mpi.Comm, v fsio.FileSystem) {
		spike := func(secs float64) { c.Proc().AdvanceTo(c.Now() + secs) }
		b := resil.Budget{
			MaxAttempts: tab8Attempts,
			Seed:        tab8Seed + uint64(c.Rank()),
			Sleep:       func(d time.Duration) { c.Proc().AdvanceTo(c.Now() + d.Seconds()) },
		}
		rv := resil.Wrap(fl.Wrap(v, spike), b, &ctrs)
		f, err := sion.ParOpen(c, rv, "storm.sion", sion.WriteMode, &sion.Options{
			ChunkSize: tab8Chunk, FSBlockSize: tab8FSBlk, NFiles: tab8NFiles, Watermarks: true,
		})
		if err != nil {
			panic(fmt.Sprintf("tab8: storm writer %d: ParOpen: %v", c.Rank(), err))
		}
		payload := taskPayload(c.Rank(), tab8Size(c.Rank()))
		// Stream in four flush batches so the watermark machinery (sync +
		// sidecar commit) runs inside the storm too.
		for i := 0; i < 4; i++ {
			lo, hi := i*len(payload)/4, (i+1)*len(payload)/4
			if _, err := f.Write(payload[lo:hi]); err != nil {
				panic(fmt.Sprintf("tab8: storm writer %d batch %d: %v", c.Rank(), i, err))
			}
			if err := f.Flush(); err != nil {
				panic(fmt.Sprintf("tab8: storm writer %d: Flush: %v", c.Rank(), err))
			}
		}
		if err := f.Close(); err != nil {
			panic(fmt.Sprintf("tab8: storm writer %d: Close: %v", c.Rank(), err))
		}
	})
	if g := ctrs.GiveUps.Load(); g != 0 {
		panic(fmt.Sprintf("tab8: writer storm was not absorbed: %d give-ups", g))
	}
	// Injection off: the multifile must read back byte-identically.
	fl.SetEnabled(false)
	v := fs.View(nwriters, nil)
	for g := 0; g < nwriters; g++ {
		h, err := sion.OpenRank(v, "storm.sion", g)
		if err != nil {
			panic(fmt.Sprintf("tab8: read-back OpenRank(%d): %v", g, err))
		}
		want := taskPayload(g, tab8Size(g))
		got := make([]byte, len(want))
		if _, err := h.ReadLogicalAt(got, 0); err != nil {
			panic(fmt.Sprintf("tab8: read-back rank %d: %v", g, err))
		}
		if !bytes.Equal(got, want) {
			panic(fmt.Sprintf("tab8: rank %d differs after writer storm", g))
		}
		h.Close()
	}
	return fl.Stats(), ctrs.Snapshot()
}

// tab8BreakerDrill drives one physical file's circuit through its full
// lifecycle under a deterministic outage and asserts every transition:
// give-ups open it, cache hits survive it, misses fail fast with
// ErrDegraded while it is open, and the post-outage cooldown probe closes
// it again. Returns the request/success counts and final server stats.
func tab8BreakerDrill(nwriters int) (requests, ok int, st serve.Stats) {
	fs := simfs.New(tab8Profile())
	tab8Write(fs, nwriters, "tab8.sion")
	fl := simfs.NewFlaky(simfs.FlakyConfig{Seed: tab8Seed + 2}) // windows only
	srv, err := serve.New(fl.Wrap(fs.View(nwriters, nil), nil), "tab8.sion", &serve.Config{
		CacheBytes:       1 << 20,
		Retry:            tab8Budget(2),
		BreakerThreshold: tab8Threshold,
		BreakerCooldown:  tab8Cooldown,
	})
	if err != nil {
		panic(fmt.Sprintf("tab8: serve.New: %v", err))
	}
	defer srv.Close()

	read := func(g int, verify bool) error {
		want := taskPayload(g, tab8Size(g))
		h, err := srv.Open(g)
		if err != nil {
			panic(fmt.Sprintf("tab8: drill Open(%d): %v", g, err))
		}
		buf := make([]byte, len(want))
		requests++
		if _, err := h.ReadLogicalAt(buf, 0); err != nil {
			return err
		}
		if verify && !bytes.Equal(buf, want) {
			panic(fmt.Sprintf("tab8: drill rank %d: bytes differ", g))
		}
		ok++
		return nil
	}
	state := func() string { return srv.Health()[0].StateName }

	// Warm rank 0 (physical file 0 under the contiguous mapping), then
	// start a hard outage on that file.
	if err := read(0, true); err != nil {
		panic(fmt.Sprintf("tab8: drill warm read: %v", err))
	}
	phys := srv.Health()[0].Path
	fl.FailWindow(phys, fl.FileOps(phys), 1<<40)

	// Uncached reads of a neighbor rank give up after retries; after
	// tab8Threshold consecutive give-ups the circuit is open.
	for i := 0; i < tab8Threshold; i++ {
		err := read(1, false)
		if err == nil {
			panic(fmt.Sprintf("tab8: drill outage read %d succeeded", i))
		}
		if errors.Is(err, serve.ErrDegraded) {
			panic(fmt.Sprintf("tab8: drill degraded before the threshold (read %d)", i))
		}
	}
	if s := state(); s != "open" {
		panic(fmt.Sprintf("tab8: after %d give-ups the circuit is %q, want open", tab8Threshold, s))
	}
	if !srv.Degraded() {
		panic("tab8: server does not report degraded with an open circuit")
	}
	// Open circuit: cache hits still serve byte-identically, misses fail
	// fast with the typed error and burn no backend retries.
	if err := read(0, true); err != nil {
		panic(fmt.Sprintf("tab8: cached read with open circuit: %v", err))
	}
	retriesOpen := srv.Stats().Retries
	fl.ClearWindows() // the outage ends, but the circuit is still open
	for tries := 0; state() != "half-open"; tries++ {
		if err := read(1, false); !errors.Is(err, serve.ErrDegraded) {
			panic(fmt.Sprintf("tab8: open-circuit read: %v, want ErrDegraded", err))
		}
		if tries > 2*tab8Cooldown {
			panic("tab8: cooldown never reached half-open")
		}
	}
	if r := srv.Stats().Retries; r != retriesOpen {
		panic(fmt.Sprintf("tab8: retries advanced during fail-fast: %d -> %d", retriesOpen, r))
	}
	// The half-open probe succeeds and closes the circuit; full service
	// is restored byte-identically.
	if err := read(1, true); err != nil {
		panic(fmt.Sprintf("tab8: half-open probe failed: %v", err))
	}
	if s := state(); s != "closed" {
		panic(fmt.Sprintf("tab8: after the probe the circuit is %q, want closed", s))
	}
	for g := 0; g < nwriters; g++ {
		if err := read(g, true); err != nil {
			panic(fmt.Sprintf("tab8: rank %d after recovery: %v", g, err))
		}
	}
	st = srv.Stats()
	if st.BreakerOpens != 1 {
		panic(fmt.Sprintf("tab8: BreakerOpens = %d, want 1", st.BreakerOpens))
	}
	if st.Degraded == 0 || st.GiveUps == 0 {
		panic(fmt.Sprintf("tab8: drill left no degraded/give-up trace: %+v", st))
	}
	return requests, ok, st
}

// tab8Pct formats ok/requests as a percentage.
func tab8Pct(ok, requests int) string {
	if requests == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", 100*float64(ok)/float64(requests))
}

// Table8 regenerates the chaos table: the zipfian serve workload and a
// streaming writer under a seeded transient-fault storm, the circuit
// breaker's outage lifecycle, and the zero-overhead guard, with the
// retry/give-up/degraded counters as evidence.
func Table8(scale int) *Result {
	res := &Result{
		Name:   "tab8",
		Title:  "Table 8 (ext): transient-fault resilience (simfs.Flaky + internal/resil + serve breakers), seeded chaos storm, jugene",
		Header: []string{"phase", "mode", "requests", "ok%", "retries", "giveups", "degraded", "opens"},
	}
	nwriters := scaleDown(tab8Writers, scale, 16)
	nclients := scaleDown(tab8Clients, scale, 96)

	// Serve storm, without and with the retry budget.
	req0, ok0, st0, inj0 := tab8ServeStorm(nwriters, nclients, 1, true)
	if inj0 == 0 || st0.Retries != 0 {
		panic(fmt.Sprintf("tab8: no-retry storm: injected %d, retries %d", inj0, st0.Retries))
	}
	res.Rows = append(res.Rows, []string{"serve-storm", "no-retry",
		fmt.Sprint(req0), tab8Pct(ok0, req0), fmt.Sprint(st0.Retries), fmt.Sprint(st0.GiveUps),
		fmt.Sprint(st0.Degraded), "-"})

	req1, ok1, st1, inj1 := tab8ServeStorm(nwriters, nclients, tab8Attempts, true)
	if inj1 == 0 {
		panic("tab8: retry storm injected nothing")
	}
	if frac := float64(ok1) / float64(req1); frac < tab8SuccessFloor {
		panic(fmt.Sprintf("tab8: retry storm success %.4f < %.2f floor", frac, tab8SuccessFloor))
	}
	res.Rows = append(res.Rows, []string{"serve-storm", fmt.Sprintf("retry x%d", tab8Attempts),
		fmt.Sprint(req1), tab8Pct(ok1, req1), fmt.Sprint(st1.Retries), fmt.Sprint(st1.GiveUps),
		fmt.Sprint(st1.Degraded), "-"})

	// Writer storm: requests are backend ops seen by the fault model.
	flst, rst := tab8WriterStorm(nwriters)
	if flst.Injected == 0 || rst.Retries == 0 {
		panic(fmt.Sprintf("tab8: writer storm injected %d / retried %d", flst.Injected, rst.Retries))
	}
	res.Rows = append(res.Rows, []string{"writer-storm", "retry+vtime",
		fmt.Sprint(flst.Ops), "100.0", fmt.Sprint(rst.Retries), fmt.Sprint(rst.GiveUps), "-", "-"})

	// Breaker drill.
	reqD, okD, stD := tab8BreakerDrill(nwriters)
	res.Rows = append(res.Rows, []string{"breaker-drill", "outage",
		fmt.Sprint(reqD), tab8Pct(okD, reqD), fmt.Sprint(stD.Retries), fmt.Sprint(stD.GiveUps),
		fmt.Sprint(stD.Degraded), fmt.Sprint(stD.BreakerOpens)})

	// Zero-overhead guard: injection off, counters must be exactly zero.
	reqC, okC, stC, injC := tab8ServeStorm(nwriters, nclients, tab8Attempts, false)
	if injC != 0 || okC != reqC {
		panic(fmt.Sprintf("tab8: clean run injected %d, ok %d/%d", injC, okC, reqC))
	}
	if stC.Retries != 0 || stC.GiveUps != 0 || stC.Degraded != 0 || stC.BreakerOpens != 0 {
		panic(fmt.Sprintf("tab8: clean run moved resilience counters: %+v", stC))
	}
	res.Rows = append(res.Rows, []string{"no-injection", fmt.Sprintf("retry x%d", tab8Attempts),
		fmt.Sprint(reqC), tab8Pct(okC, reqC), "0", "0", "0", "0"})

	res.Notes = append(res.Notes,
		fmt.Sprintf("seeded storm: p(read fault)=%.2f, budget %d attempts, seed %#x; byte identity asserted on every successful read",
			tab8ReadErr, tab8Attempts, tab8Seed),
		fmt.Sprintf("breaker drill asserts closed->open->half-open->closed (threshold %d, cooldown %d) with cache hits served throughout",
			tab8Threshold, tab8Cooldown),
	)
	return res
}
