package expt

import (
	"bytes"
	"fmt"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/mpi"
	"repro/internal/simfs"
)

// Table 10 (extension): capability-driven geometry auto-tuning across
// storage backends. The same small-record checkpoint workload (write a
// per-task payload in records, read it all back) runs on three
// backend/geometry arms:
//
//   - posix: the plain simulated POSIX file system with the historical
//     defaults (one physical file, unbuffered direct writes) — the
//     baseline every earlier table used.
//   - objstore-posixtune: the simulated object store (internal/simfs
//     ObjStore, smallpart profile) driven with POSIX-tuned geometry —
//     64 KiB "FS blocks", one physical file, staging explicitly off
//     (sion.BufferOff). Chunks land part-misaligned, so neighbor ranks
//     share part regions and every sharing flush pays a staged copy;
//     unbuffered reads cost one ranged GET per record.
//   - objstore-auto: the identical workload with zero-value geometry
//     options. The open broadcasts the backend's capability descriptor
//     and withDefaults auto-tunes from it: the part size becomes the FS
//     block size (chunks part-aligned), BufferSize upgrades to
//     BufferAuto (whole parts per PUT, whole buffers per GET), and
//     NFiles follows the declared write fanout.
//
// The experiment asserts in-run (panicking on violation) that every arm
// reads back each rank's exact payload — the backends hold logically
// identical multifiles — and that the auto-tuned arm issues at most half
// the object-store requests of the POSIX-tuned arm. tab10_test pins the
// same bound at test scale; BenchmarkTable10Backends gates the request
// total itself (lower-better) in CI.
const (
	tab10Tasks   = 64
	tab10Chunk   = int64(2) << 20 // two smallpart parts per task
	tab10Record  = 4 << 10        // bytes per Write/Read call
	tab10Compute = 10e-6          // seconds of compute per record
)

// tab10Profile is the inner machine the object store gateways to:
// tab3's Jugene with 64 KiB file-system blocks.
func tab10Profile() *simfs.Profile {
	p := tab3Profile()
	p.Name = "jugene-64k-tab10"
	return p
}

// tab10Arm is one backend/geometry configuration of the sweep.
type tab10Arm struct {
	label string
	obj   bool
	wopts func() *sion.Options
	ropts func() *sion.Options
}

// tab10Row is one arm's measured outcome.
type tab10Row struct {
	writeT, readT  float64
	wrReqs, rdReqs int64 // backend requests (simfs counters or PUT/GET ledger)
	copies         int64 // staged copies (objstore arms)
	total          int64 // total object-store requests (0 for posix)
	nfiles         int
	fsblk          int64
}

// tab10Run executes the write+read-back cycle on one arm. Byte identity
// is asserted inline: every rank's read-back must equal its generator
// payload exactly.
func tab10Run(ntasks int, arm tab10Arm) tab10Row {
	fs := simfs.New(tab10Profile())
	var obj *simfs.ObjStore
	if arm.obj {
		obj = simfs.NewObjStore(simfs.SmallPartObjProfile())
	}
	// Each rank binds its own wrap of the shared gateway so request
	// latency advances that rank's virtual clock.
	bind := func(c *mpi.Comm, v fsio.FileSystem) fsio.FileSystem {
		if obj == nil {
			return v
		}
		return obj.Wrap(v, func(s float64) { c.Advance(s) })
	}
	perTask := int(tab10Chunk)
	nrec := perTask / tab10Record

	var row tab10Row
	simRun(fs, ntasks, func(c *mpi.Comm, v fsio.FileSystem) {
		t0 := syncStart(c)
		f, err := sion.ParOpen(c, bind(c, v), "tab10.sion", sion.WriteMode, arm.wopts())
		if err != nil {
			panic(err)
		}
		payload := taskPayload(c.Rank(), perTask)
		for i := 0; i < nrec; i++ {
			c.Advance(tab10Compute)
			if _, err := f.Write(payload[i*tab10Record : (i+1)*tab10Record]); err != nil {
				panic(err)
			}
		}
		if c.Rank() == 0 {
			row.nfiles, row.fsblk = f.NumFiles(), f.FSBlockSize()
		}
		if err := f.Close(); err != nil {
			panic(err)
		}
		if t := allMaxTime(c) - t0; c.Rank() == 0 {
			row.writeT = t
		}
	})
	wst, _ := fs.Stats("tab10.sion")
	var wLedger simfs.ObjStats
	if obj != nil {
		wLedger = obj.Stats()
	}

	// Fresh measurement window and cold caches for the read-back phase.
	fs.ResetServers()
	fs.DropCaches()

	simRun(fs, ntasks, func(c *mpi.Comm, v fsio.FileSystem) {
		t0 := syncStart(c)
		f, err := sion.ParOpen(c, bind(c, v), "tab10.sion", sion.ReadMode, arm.ropts())
		if err != nil {
			panic(err)
		}
		payload := taskPayload(c.Rank(), perTask)
		got := make([]byte, 0, perTask)
		buf := make([]byte, tab10Record)
		for !f.EOF() {
			n, err := f.Read(buf)
			if err != nil {
				panic(err)
			}
			got = append(got, buf[:n]...)
		}
		if !bytes.Equal(got, payload) {
			panic(fmt.Sprintf("tab10 %s: rank %d read %d bytes, payload differs", arm.label, c.Rank(), len(got)))
		}
		f.Close()
		if t := allMaxTime(c) - t0; c.Rank() == 0 {
			row.readT = t
		}
	})

	if obj != nil {
		st := obj.Stats()
		row.wrReqs = wLedger.Puts
		row.rdReqs = st.Gets - wLedger.Gets
		row.copies = st.Copies
		row.total = st.Requests()
	} else {
		st, _ := fs.Stats("tab10.sion")
		row.wrReqs = wst.WriteRequests
		row.rdReqs = st.ReadRequests - wst.ReadRequests
	}
	return row
}

// tab10Arms returns the sweep's arms in table order.
func tab10Arms() []tab10Arm {
	return []tab10Arm{
		{
			label: "posix",
			wopts: func() *sion.Options { return &sion.Options{ChunkSize: tab10Chunk} },
			ropts: func() *sion.Options { return nil },
		},
		{
			label: "objstore-posixtune",
			obj:   true,
			wopts: func() *sion.Options {
				return &sion.Options{
					ChunkSize: tab10Chunk, FSBlockSize: 64 << 10,
					NFiles: 1, BufferSize: sion.BufferOff,
				}
			},
			ropts: func() *sion.Options { return &sion.Options{BufferSize: sion.BufferOff} },
		},
		{
			label: "objstore-auto",
			obj:   true,
			wopts: func() *sion.Options { return &sion.Options{ChunkSize: tab10Chunk} },
			ropts: func() *sion.Options { return nil },
		},
	}
}

// tab10Requests runs the two object-store arms and returns their request
// totals (shared by Table10 and the tests).
func tab10Requests(ntasks int) (posixTuned, auto int64) {
	arms := tab10Arms()
	return tab10Run(ntasks, arms[1]).total, tab10Run(ntasks, arms[2]).total
}

// Table10 regenerates the backend geometry-auto-tuning table.
func Table10(scale int) *Result {
	res := &Result{
		Name:   "tab10",
		Title:  "Table 10 (ext): capability-driven geometry auto-tuning, posix vs object-store backends, small-record workload",
		Header: []string{"backend", "tasks", "files", "fsblk(KiB)", "wr reqs", "rd reqs", "copies", "obj reqs", "write(s)", "read(s)"},
	}
	ntasks := scaleDown(tab10Tasks, scale, 16)

	var totals []int64
	for _, arm := range tab10Arms() {
		row := tab10Run(ntasks, arm)
		objCells := []string{"-", "-"}
		if arm.obj {
			objCells = []string{
				fmt.Sprintf("%d", row.copies),
				fmt.Sprintf("%d", row.total),
			}
			totals = append(totals, row.total)
		}
		res.Rows = append(res.Rows, []string{
			arm.label, kfmt(ntasks),
			fmt.Sprintf("%d", row.nfiles),
			fmt.Sprintf("%d", row.fsblk>>10),
			fmt.Sprintf("%d", row.wrReqs),
			fmt.Sprintf("%d", row.rdReqs),
			objCells[0], objCells[1],
			fmt.Sprintf("%.3f", row.writeT),
			fmt.Sprintf("%.3f", row.readT),
		})
	}
	posixTuned, auto := totals[0], totals[1]
	if auto*2 > posixTuned {
		panic(fmt.Sprintf("tab10: auto-tuned geometry issued %d object-store requests, want ≤ half of the POSIX-tuned %d",
			auto, posixTuned))
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("%d KiB records, %d MiB per task; objstore smallpart profile: 1 MiB parts, 4 MiB GET ceiling, %.0f ms/request",
			tab10Record>>10, tab10Chunk>>20, simfs.SmallPartObjProfile().RequestSecs*1e3),
		"every arm's read-back is byte-compared to the generator payload in-run: the backends hold logically identical multifiles",
		fmt.Sprintf("auto-tuned geometry (part-aligned chunks, BufferAuto staging, fanout files) issues %.1fx fewer object-store requests than POSIX-tuned geometry (asserted ≥ 2x)",
			float64(posixTuned)/float64(auto)),
		"posix arm request counts are the simulated POSIX file system's counters; object-store arms count gateway requests (PUT/GET/HEAD/DELETE, staged copies billed as GET+PUT)")
	return res
}
