package expt

import (
	"strconv"
	"strings"
	"testing"
)

// TestTable7Findings asserts the streaming claims the experiment was
// built to prove. The hard invariants — no torn records, lag under the
// bound, byte identity of the shipped archive, committed totals the
// writer actually attempted — are panics inside Table7 itself, so merely
// completing is most of the assertion; this test additionally pins the
// reported outcomes: the crash sweep covers at least the 100 injected
// interleavings the acceptance bar demands and verifies every one, a
// meaningful fraction of trials exercised the torn-sidecar path, and the
// crash sweep actually destroyed data somewhere (otherwise it proves
// nothing about recovery).
func TestTable7Findings(t *testing.T) {
	r := Table7(testScale)
	if len(r.Rows) != 2 {
		t.Fatalf("tab7 has %d rows, want 2", len(r.Rows))
	}
	const (
		colTrials   = 3
		colLag      = 5
		colTorn     = 6
		colVerified = 7
	)
	stream, crash := r.Rows[0], r.Rows[1]

	lag, err := strconv.Atoi(strings.TrimSpace(strings.Split(stream[colLag], "/")[0]))
	if err != nil {
		t.Fatalf("stream lag cell %q: %v", stream[colLag], err)
	}
	if lag > tab7LagBound {
		t.Errorf("reader lag %d flush batches exceeds the bound %d", lag, tab7LagBound)
	}
	if stream[colVerified] != "identical" {
		t.Errorf("stream archive not byte-identical: %q", stream[colVerified])
	}

	trials, err := strconv.Atoi(crash[colTrials])
	if err != nil {
		t.Fatalf("crash trials cell %q: %v", crash[colTrials], err)
	}
	if trials < 100 {
		t.Errorf("crash sweep ran %d trials, acceptance demands ≥ 100", trials)
	}
	if crash[colVerified] != strconv.Itoa(trials)+"/"+strconv.Itoa(trials) {
		t.Errorf("crash sweep verified %q of %d trials", crash[colVerified], trials)
	}
	torn, err := strconv.Atoi(strings.Fields(crash[colTorn])[0])
	if err != nil {
		t.Fatalf("crash torn cell %q: %v", crash[colTorn], err)
	}
	if torn < trials/4 {
		t.Errorf("only %d/%d trials tore a sidecar commit record; want a meaningful fraction", torn, trials)
	}
	lost := false
	for _, n := range r.Notes {
		if strings.Contains(n, "writer-ranks lost") && !strings.HasPrefix(n, "0 writer-ranks") {
			lost = true
		}
	}
	if !lost {
		t.Error("crash sweep never destroyed any data — the recovery claim is vacuous")
	}
}

// TestTable7Deterministic pins that the experiment is replayable: the
// vtime interleaving, the LCG injection points, and the recovered totals
// are identical across runs, so the tab7 assertions cannot flake.
func TestTable7Deterministic(t *testing.T) {
	lag1, shipped1, end1 := tab7StreamPhase(8, 2, tab7Records)
	lag2, shipped2, end2 := tab7StreamPhase(8, 2, tab7Records)
	if lag1 != lag2 || shipped1 != shipped2 || end1 != end2 {
		t.Fatalf("stream phase differs between runs: (%d,%d,%f) vs (%d,%d,%f)",
			lag1, shipped1, end1, lag2, shipped2, end2)
	}
	v1, t1, l1, r1 := tab7CrashPhase(20)
	v2, t2, l2, r2 := tab7CrashPhase(20)
	if v1 != v2 || t1 != t2 || l1 != l2 || r1 != r2 {
		t.Fatalf("crash phase differs between runs: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			v1, t1, l1, r1, v2, t2, l2, r2)
	}
}
