package expt

import (
	"fmt"

	"repro/internal/fsio"
	"repro/internal/mpi"
	"repro/internal/simfs"
)

// taskLocalBW measures write and read bandwidth of the traditional
// multiple-file-parallel method: one physical file per task. File creation
// happens before the timed window (the paper reports transfer bandwidth;
// creation cost is Fig. 3's subject).
func taskLocalBW(fs *simfs.FS, ntasks int, total int64) (write, read float64) {
	perTask := total / int64(ntasks)
	var tw, tr float64
	simRun(fs, ntasks, func(c *mpi.Comm, v fsio.FileSystem) {
		fh, err := v.Create(taskFileName(c.Rank()))
		if err != nil {
			panic(err)
		}
		t0 := syncStart(c)
		if err := fh.WriteZeroAt(perTask, 0); err != nil {
			panic(err)
		}
		if t := allMaxTime(c) - t0; c.Rank() == 0 {
			tw = t
		}
		fh.Close()

		rh, err := v.Open(taskFileName(c.Rank()))
		if err != nil {
			panic(err)
		}
		t1 := syncStart(c)
		if _, err := rh.ReadDiscardAt(perTask, 0); err != nil {
			panic(err)
		}
		if t := allMaxTime(c) - t1; c.Rank() == 0 {
			tr = t
		}
		rh.Close()
	})
	return float64(total) / tw / 1e6, float64(total) / tr / 1e6
}

// Fig5a regenerates Figure 5(a): SIONlib (32 physical files) vs parallel
// I/O to physical task-local files on Jugene, 1K–64K tasks, 1 TB.
func Fig5a(scale int) *Result {
	res := &Result{
		Name:  "fig5a",
		Title: "Fig. 5a: SION (32 files) vs task-local files bandwidth (Jugene, 1 TB)",
		Header: []string{"tasks", "SION write", "SION read",
			"task-local write", "task-local read", "(MB/s)"},
	}
	total := int64(1<<40) / int64(scale)
	for _, n0 := range []int{1024, 2048, 4096, 8192, 16384, 32768, 65536} {
		n := scaleDown(n0, scale, 64)
		nfiles := 32
		if nfiles > n {
			nfiles = n
		}
		fs := simfs.New(simfs.Jugene())
		sw, sr := bwPair(fs, n, nfiles, total, 0)
		fs2 := simfs.New(simfs.Jugene())
		tw, tr := taskLocalBW(fs2, n, total)
		res.Rows = append(res.Rows, []string{kfmt(n),
			fmt.Sprintf("%.0f", sw), fmt.Sprintf("%.0f", sr),
			fmt.Sprintf("%.0f", tw), fmt.Sprintf("%.0f", tr), ""})
	}
	res.Notes = append(res.Notes,
		"paper shape: both saturate at ≥8k tasks near 6 GB/s, SIONlib marginally better")
	return res
}

// Fig5b regenerates Figure 5(b) on Jaguar, 128–12K tasks, 2 TB, with the
// optimized striping for the multifile (the configuration §4.2.1 selects)
// and Lustre's default striping for the task-local files.
func Fig5b(scale int) *Result {
	res := &Result{
		Name:  "fig5b",
		Title: "Fig. 5b: SION (32 files) vs task-local files bandwidth (Jaguar, 2 TB)",
		Header: []string{"tasks", "SION write", "SION read",
			"task-local write", "task-local read", "(MB/s)"},
	}
	total := int64(2<<40) / int64(scale)
	for _, n0 := range []int{128, 256, 512, 1024, 2048, 4096, 8192, 12288} {
		n := scaleDown(n0, scale, 32)
		nfiles := 32
		if nfiles > n {
			nfiles = n
		}
		fs := simfs.New(simfs.Jaguar())
		fs.SetStriping("data", 64, 8<<20)
		sw, sr := bwPair(fs, n, nfiles, total, 0)
		fs2 := simfs.New(simfs.Jaguar())
		tw, tr := taskLocalBW(fs2, n, total)
		res.Rows = append(res.Rows, []string{kfmt(n),
			fmt.Sprintf("%.0f", sw), fmt.Sprintf("%.0f", sr),
			fmt.Sprintf("%.0f", tw), fmt.Sprintf("%.0f", tr), ""})
	}
	res.Notes = append(res.Notes,
		"paper shape: SION write better in most cases; SION read better only ≥1k tasks; reads exceed the 40 GB/s peak via client caching")
	return res
}
