package resil

import (
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/fsio"
)

type corruptErr struct{ bad bool }

func (e corruptErr) Error() string { return "test: corrupt" }
func (e corruptErr) Corrupt() bool { return e.bad }

func TestClassify(t *testing.T) {
	transient := fmt.Errorf("backend: %w", fsio.ErrTransient)
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"nil", nil, ClassNone},
		{"transient sentinel", fsio.ErrTransient, ClassTransient},
		{"wrapped transient", transient, ClassTransient},
		{"deeply wrapped transient", fmt.Errorf("a: %w", fmt.Errorf("b: %w", transient)), ClassTransient},
		{"not exist", fsio.ErrNotExist, ClassPermanent},
		{"wrapped not exist", fmt.Errorf("open: %w", fsio.ErrNotExist), ClassPermanent},
		{"exists", fsio.ErrExist, ClassPermanent},
		{"quota", fsio.ErrQuota, ClassPermanent},
		{"eof", io.EOF, ClassPermanent},
		{"unexpected eof", io.ErrUnexpectedEOF, ClassPermanent},
		{"plain", errors.New("boom"), ClassPermanent},
		{"corrupt marker", corruptErr{bad: true}, ClassCorrupt},
		{"wrapped corrupt", fmt.Errorf("parse: %w", corruptErr{bad: true}), ClassCorrupt},
		{"corrupt marker false", corruptErr{bad: false}, ClassPermanent},
		{"corrupt beats transient", fmt.Errorf("%w: %w", corruptErr{bad: true}, fsio.ErrTransient), ClassCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Classify(tc.err); got != tc.want {
				t.Fatalf("Classify(%v) = %v, want %v", tc.err, got, tc.want)
			}
		})
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		ClassNone: "none", ClassTransient: "transient",
		ClassPermanent: "permanent", ClassCorrupt: "corrupt",
	} {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(c), got, want)
		}
	}
}

// instrumentedSleep collects the backoff schedule instead of sleeping.
func instrumentedSleep(delays *[]time.Duration) func(time.Duration) {
	return func(d time.Duration) { *delays = append(*delays, d) }
}

func TestDoSucceedsAfterTransients(t *testing.T) {
	var delays []time.Duration
	var ctrs Counters
	calls := 0
	err := Do(Budget{Seed: 1, Sleep: instrumentedSleep(&delays)}, &ctrs, func() error {
		calls++
		if calls < 3 {
			return fmt.Errorf("flap %d: %w", calls, fsio.ErrTransient)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 || len(delays) != 2 {
		t.Fatalf("calls=%d delays=%v; want 3 calls, 2 delays", calls, delays)
	}
	s := ctrs.Snapshot()
	if s.Ops != 1 || s.Retries != 2 || s.GiveUps != 0 {
		t.Fatalf("counters %+v; want Ops=1 Retries=2 GiveUps=0", s)
	}
	// Backoff grows: second delay larger than first (jitter is ±20%,
	// multiplier 2, so growth dominates).
	if delays[1] <= delays[0] {
		t.Fatalf("backoff did not grow: %v", delays)
	}
}

func TestDoGivesUpAfterBudget(t *testing.T) {
	var ctrs Counters
	calls := 0
	base := errors.New("still down")
	err := Do(Budget{MaxAttempts: 3, Seed: 2, Sleep: func(time.Duration) {}}, &ctrs, func() error {
		calls++
		return fmt.Errorf("%w: %w", fsio.ErrTransient, base)
	})
	if err == nil || !errors.Is(err, fsio.ErrTransient) || !errors.Is(err, base) {
		t.Fatalf("give-up error %v must keep the cause chain", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	s := ctrs.Snapshot()
	if s.GiveUps != 1 || s.Retries != 2 {
		t.Fatalf("counters %+v; want GiveUps=1 Retries=2", s)
	}
}

func TestDoPermanentErrorNotRetried(t *testing.T) {
	var ctrs Counters
	calls := 0
	err := Do(Budget{Seed: 3}, &ctrs, func() error {
		calls++
		return fsio.ErrNotExist
	})
	if !errors.Is(err, fsio.ErrNotExist) {
		t.Fatalf("Do: %v", err)
	}
	if calls != 1 {
		t.Fatalf("permanent error retried %d times", calls-1)
	}
	s := ctrs.Snapshot()
	if s.Retries != 0 || s.GiveUps != 0 {
		t.Fatalf("counters %+v; permanent failure is not a give-up", s)
	}
}

func TestDoCorruptErrorNotRetried(t *testing.T) {
	calls := 0
	err := Do(Budget{Seed: 4}, nil, func() error {
		calls++
		return fmt.Errorf("frame: %w", corruptErr{bad: true})
	})
	var cm interface{ Corrupt() bool }
	if !errors.As(err, &cm) {
		t.Fatalf("Do: %v", err)
	}
	if calls != 1 {
		t.Fatalf("corrupt error retried %d times", calls-1)
	}
}

func TestDoTotalDeadline(t *testing.T) {
	var delays []time.Duration
	var ctrs Counters
	calls := 0
	// Base 10ms doubling with 100 attempts allowed, but only 25ms total:
	// sleeps 10ms, 20ms would breach 25ms → give up after 2 calls.
	err := Do(Budget{
		MaxAttempts: 100, BaseDelay: 10 * time.Millisecond, Jitter: -1,
		Total: 25 * time.Millisecond, Sleep: instrumentedSleep(&delays),
	}, &ctrs, func() error {
		calls++
		return fsio.ErrTransient
	})
	if err == nil {
		t.Fatal("Do succeeded under permanent transient failure")
	}
	if calls != 2 || len(delays) != 1 || delays[0] != 10*time.Millisecond {
		t.Fatalf("calls=%d delays=%v; want 2 calls, one 10ms delay", calls, delays)
	}
	if ctrs.GiveUps.Load() != 1 {
		t.Fatalf("GiveUps = %d, want 1", ctrs.GiveUps.Load())
	}
}

func TestDoJitterDeterministicFromSeed(t *testing.T) {
	run := func(seed uint64) []time.Duration {
		var delays []time.Duration
		_ = Do(Budget{MaxAttempts: 6, Seed: seed, Sleep: instrumentedSleep(&delays)}, nil, func() error {
			return fsio.ErrTransient
		})
		return delays
	}
	a, b, c := run(7), run(7), run(8)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed, different schedules: %v vs %v", a, b)
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatalf("different seeds, identical schedules: %v", a)
	}
	// Delays stay within the configured cap (+jitter headroom).
	for _, d := range a {
		if d > time.Duration(float64(DefaultMaxDelay)*(1+DefaultJitter)) {
			t.Fatalf("delay %v exceeds jittered cap", d)
		}
	}
}

func TestDoWhileCustomPredicate(t *testing.T) {
	// tab7's shape: wait for a file another task will create. ErrNotExist
	// is permanent for Do but retryable for this wait.
	calls := 0
	err := DoWhile(Budget{MaxAttempts: 10, Seed: 5, Sleep: func(time.Duration) {}}, nil,
		func(err error) bool { return errors.Is(err, fsio.ErrNotExist) },
		func() error {
			calls++
			if calls < 4 {
				return fsio.ErrNotExist
			}
			return nil
		})
	if err != nil || calls != 4 {
		t.Fatalf("err=%v calls=%d; want success on 4th call", err, calls)
	}
}

func TestBudgetDefaults(t *testing.T) {
	var b Budget
	if b.maxAttempts() != DefaultMaxAttempts || b.baseDelay() != DefaultBaseDelay ||
		b.maxDelay() != DefaultMaxDelay || b.multiplier() != DefaultMultiplier ||
		b.jitter() != DefaultJitter {
		t.Fatalf("zero Budget does not resolve to documented defaults")
	}
	if (Budget{Jitter: -1}).jitter() != 0 {
		t.Fatalf("negative Jitter must disable jitter")
	}
	if (Budget{Jitter: 2}).jitter() != 1 {
		t.Fatalf("Jitter must clamp to 1")
	}
}
