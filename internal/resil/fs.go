package resil

import (
	"repro/internal/fsio"
)

// Wrap decorates inner so every FileSystem and File operation runs under
// the retry budget. Call sites in core and the tools keep their plain
// fsio code; resilience is layered on at mount time, which is exactly the
// decorator split the flaky lab uses on the injection side. Close is the
// one exempt operation: the handle is unusable after a failed Close either
// way, and retrying a close can double-release backend state.
//
// All retried operations are idempotent per the fsio.FileSystem contract,
// so a retry after an ambiguous failure (error after partial effect)
// converges to the same state.
func Wrap(inner fsio.FileSystem, b Budget, ctrs *Counters) *FS {
	return &FS{inner: inner, b: b, ctrs: ctrs}
}

// FS is a resilient fsio.FileSystem decorator; see Wrap.
type FS struct {
	inner fsio.FileSystem
	b     Budget
	ctrs  *Counters
}

var _ fsio.FileSystem = (*FS)(nil)

// Counters returns the counter set this FS reports into (may be nil).
func (r *FS) Counters() *Counters { return r.ctrs }

// Unwrap returns the decorated file system.
func (r *FS) Unwrap() fsio.FileSystem { return r.inner }

func (r *FS) file(fh fsio.File) fsio.File { return &file{inner: fh, fs: r} }

// Create implements fsio.FileSystem.
func (r *FS) Create(name string) (fsio.File, error) {
	var fh fsio.File
	err := Do(r.b, r.ctrs, func() error {
		var e error
		fh, e = r.inner.Create(name)
		return e
	})
	if err != nil {
		return nil, err
	}
	return r.file(fh), nil
}

// Open implements fsio.FileSystem.
func (r *FS) Open(name string) (fsio.File, error) {
	var fh fsio.File
	err := Do(r.b, r.ctrs, func() error {
		var e error
		fh, e = r.inner.Open(name)
		return e
	})
	if err != nil {
		return nil, err
	}
	return r.file(fh), nil
}

// OpenRW implements fsio.FileSystem.
func (r *FS) OpenRW(name string) (fsio.File, error) {
	var fh fsio.File
	err := Do(r.b, r.ctrs, func() error {
		var e error
		fh, e = r.inner.OpenRW(name)
		return e
	})
	if err != nil {
		return nil, err
	}
	return r.file(fh), nil
}

// Stat implements fsio.FileSystem.
func (r *FS) Stat(name string) (fsio.FileInfo, error) {
	var fi fsio.FileInfo
	err := Do(r.b, r.ctrs, func() error {
		var e error
		fi, e = r.inner.Stat(name)
		return e
	})
	return fi, err
}

// Remove implements fsio.FileSystem.
func (r *FS) Remove(name string) error {
	return Do(r.b, r.ctrs, func() error { return r.inner.Remove(name) })
}

// BlockSize implements fsio.FileSystem (no error path, no retries).
func (r *FS) BlockSize(name string) int64 { return r.inner.BlockSize(name) }

// file is the handle-side decorator.
type file struct {
	inner fsio.File
	fs    *FS
}

var _ fsio.File = (*file)(nil)

func (f *file) ReadAt(p []byte, off int64) (int, error) {
	var n int
	err := Do(f.fs.b, f.fs.ctrs, func() error {
		var e error
		n, e = f.inner.ReadAt(p, off)
		return e
	})
	return n, err
}

func (f *file) WriteAt(p []byte, off int64) (int, error) {
	var n int
	err := Do(f.fs.b, f.fs.ctrs, func() error {
		var e error
		n, e = f.inner.WriteAt(p, off)
		return e
	})
	return n, err
}

func (f *file) WriteZeroAt(n, off int64) error {
	return Do(f.fs.b, f.fs.ctrs, func() error { return f.inner.WriteZeroAt(n, off) })
}

func (f *file) ReadDiscardAt(n, off int64) (int64, error) {
	var got int64
	err := Do(f.fs.b, f.fs.ctrs, func() error {
		var e error
		got, e = f.inner.ReadDiscardAt(n, off)
		return e
	})
	return got, err
}

func (f *file) Size() (int64, error) {
	var sz int64
	err := Do(f.fs.b, f.fs.ctrs, func() error {
		var e error
		sz, e = f.inner.Size()
		return e
	})
	return sz, err
}

func (f *file) Truncate(size int64) error {
	return Do(f.fs.b, f.fs.ctrs, func() error { return f.inner.Truncate(size) })
}

func (f *file) Sync() error {
	return Do(f.fs.b, f.fs.ctrs, func() error { return f.inner.Sync() })
}

// Close is never retried; see Wrap.
func (f *file) Close() error { return f.inner.Close() }
