package resil

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/fsio"
	"repro/internal/simfs"
)

// noSleep is the unit-test budget: deterministic, no real delays.
func noSleep(maxAttempts int) Budget {
	return Budget{MaxAttempts: maxAttempts, Seed: 99, Sleep: func(time.Duration) {}}
}

// TestFSRetriesOverFlaky drives the resilient decorator over the flaky lab:
// with p=0.25 faults and a 6-attempt budget, a full write+read cycle must
// converge to byte identity, and the counters must show the retries.
func TestFSRetriesOverFlaky(t *testing.T) {
	sim := simfs.New(simfs.Jugene())
	fl := simfs.NewFlaky(simfs.FlakyConfig{
		Seed: 2026, ReadErrProb: 0.25, WriteErrProb: 0.25, MetaErrProb: 0.25,
	})
	var ctrs Counters
	rfs := Wrap(fl.Wrap(sim.View(0, nil), nil), noSleep(6), &ctrs)

	payload := bytes.Repeat([]byte("resilient!"), 1000)
	f, err := rfs.Create("data")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	// Chunked writes: ~100 distinct operations so the p=0.25 stream is
	// guaranteed to inject many faults for the budget to absorb.
	for off := 0; off < len(payload); off += 100 {
		if _, err := f.WriteAt(payload[off:off+100], int64(off)); err != nil {
			t.Fatalf("WriteAt @%d: %v", off, err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if sz, err := f.Size(); err != nil || sz != int64(len(payload)) {
		t.Fatalf("Size = %d, %v; want %d", sz, err, len(payload))
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	g, err := rfs.Open("data")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	got := make([]byte, len(payload))
	for off := 0; off < len(got); off += 100 {
		if _, err := g.ReadAt(got[off:off+100], int64(off)); err != nil {
			t.Fatalf("ReadAt @%d: %v", off, err)
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("read-back bytes differ")
	}
	if err := g.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s := ctrs.Snapshot()
	if s.Retries == 0 {
		t.Fatalf("p=0.25 injection produced zero retries: %+v (injected %d)",
			s, fl.Stats().Injected)
	}
	if s.GiveUps != 0 {
		t.Fatalf("6-attempt budget gave up under p=0.25: %+v", s)
	}
	if fl.Stats().Injected == 0 {
		t.Fatalf("flaky lab injected nothing; test proves nothing")
	}
}

// TestFSGivesUpUnderOutage pins the bounded side: a hard fail window longer
// than any budget must surface a transient give-up, not hang.
func TestFSGivesUpUnderOutage(t *testing.T) {
	sim := simfs.New(simfs.Jugene())
	fl := simfs.NewFlaky(simfs.FlakyConfig{Seed: 5})
	var ctrs Counters
	rfs := Wrap(fl.Wrap(sim.View(0, nil), nil), noSleep(4), &ctrs)

	f, err := rfs.Create("out")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	fl.FailWindow("out", 0, 1<<40)
	_, err = f.WriteAt([]byte("x"), 0)
	if !errors.Is(err, fsio.ErrTransient) {
		t.Fatalf("outage write error %v must stay classified transient", err)
	}
	if ctrs.GiveUps.Load() != 1 || ctrs.Retries.Load() != 3 {
		t.Fatalf("counters %+v; want 3 retries then 1 give-up", ctrs.Snapshot())
	}
	// Permanent errors pass through untouched and unretried.
	before := ctrs.Retries.Load()
	if _, err := rfs.Open("never-created"); !errors.Is(err, fsio.ErrNotExist) {
		t.Fatalf("Open missing: %v", err)
	}
	if ctrs.Retries.Load() != before {
		t.Fatalf("ErrNotExist was retried")
	}
}

// TestFSZeroOverheadPath: with no injection every op succeeds first try and
// the retry counters stay zero — the overhead guard tab8 also asserts.
func TestFSZeroOverheadPath(t *testing.T) {
	sim := simfs.New(simfs.Jugene())
	var ctrs Counters
	rfs := Wrap(sim.View(0, nil), noSleep(4), &ctrs)
	f, err := rfs.Create("quiet")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := f.WriteAt(make([]byte, 4096), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if _, err := f.ReadAt(make([]byte, 4096), 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s := ctrs.Snapshot()
	if s.Retries != 0 || s.GiveUps != 0 {
		t.Fatalf("clean backend produced retries: %+v", s)
	}
	if s.Ops == 0 {
		t.Fatalf("ops not counted")
	}
	if rfs.Counters() != &ctrs || rfs.Unwrap() == nil {
		t.Fatalf("accessors broken")
	}
}
