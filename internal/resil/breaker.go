package resil

import (
	"fmt"
	"sync"
)

// BreakerState is the circuit-breaker state machine position.
type BreakerState int

const (
	// Closed: requests flow; consecutive transient failures are counted.
	Closed BreakerState = iota
	// Open: requests are rejected immediately (fail fast) for a cooldown.
	Open
	// HalfOpen: exactly one probe request is allowed through; its outcome
	// decides between Closed and re-Open.
	HalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(s))
}

// Breaker is a circuit breaker for one downstream resource (serve keys one
// per physical multifile). Closed until Threshold consecutive failures,
// then Open: Allow fails fast for the next Cooldown requests, after which
// the breaker turns HalfOpen and admits a single probe. The probe's
// Success closes the circuit; its Failure re-opens it for another
// cooldown.
//
// The cooldown is counted in *rejected requests*, not wall-clock time:
// request count is the only clock every deployment mode shares (real
// serving, vtime simulation, unit tests), so breaker traces replay
// deterministically from a request schedule — the same property the flaky
// lab and the jitter stream guarantee on their sides. Under sustained
// traffic the two notions coincide; with no traffic there is nothing to
// protect. All methods are safe for concurrent use.
type Breaker struct {
	mu        sync.Mutex
	threshold int // consecutive failures to trip
	cooldown  int // rejects in Open before the HalfOpen probe
	state     BreakerState
	fails     int  // consecutive failures while Closed
	rejects   int  // rejects since the circuit opened
	probing   bool // HalfOpen probe currently outstanding
	opens     int64
}

// Default breaker knobs, used when NewBreaker gets non-positive values.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 16
)

// NewBreaker builds a closed breaker tripping after threshold consecutive
// failures and probing after cooldown rejected requests (non-positive
// arguments select the defaults).
func NewBreaker(threshold, cooldown int) *Breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a request may proceed. A false return is a
// fail-fast rejection that also advances the cooldown clock. A true return
// in HalfOpen marks the caller as the probe: it MUST report Success or
// Failure, or the circuit stays half-open rejecting everyone else.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		b.rejects++
		if b.rejects >= b.cooldown {
			b.state = HalfOpen
		}
		return false
	case HalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return true
}

// Success records a request that completed. In HalfOpen it is the probe
// succeeding: the circuit closes. In Closed it resets the consecutive-
// failure count.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	if b.state == HalfOpen {
		b.state = Closed
		b.probing = false
		b.rejects = 0
	}
}

// Failure records a request that failed transiently after exhausting its
// retry budget. Only classified-transient failures should be fed here: a
// permanent error (not-exist, corrupt) says nothing about backend health,
// and opening the circuit on it would turn one bad request into an outage
// for the good ones.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.fails++
		if b.fails >= b.threshold {
			b.trip()
		}
	case HalfOpen:
		// The probe failed; back to Open for another cooldown.
		b.trip()
	}
}

// trip opens the circuit; callers hold b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.fails = 0
	b.rejects = 0
	b.probing = false
	b.opens++
}

// State returns the current state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerSnapshot is a point-in-time view of a breaker for health
// reporting.
type BreakerSnapshot struct {
	State BreakerState
	// Fails is the current consecutive-failure count (Closed only).
	Fails int
	// Opens counts how many times the circuit has opened over its life.
	Opens int64
}

// Snapshot returns the breaker's reportable state.
func (b *Breaker) Snapshot() BreakerSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerSnapshot{State: b.state, Fails: b.fails, Opens: b.opens}
}
