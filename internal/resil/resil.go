// Package resil is the transient-fault policy layer: it decides which
// errors are worth retrying (Classify), how hard to retry them (Budget,
// Do), and when to stop trying altogether and degrade instead (Breaker).
// The mechanisms are deliberately split from the injection side (simfs's
// flaky-fault lab) and from the serving integration (internal/serve): this
// package only consumes the error contract documented on fsio.FileSystem —
// transient failures wrap fsio.ErrTransient, everything else is permanent —
// and never imports core or serve.
//
// At the paper's target scale (10^5–10^6 tasks over a shared parallel file
// system) transient EIO/EAGAIN and latency spikes are routine, so the rule
// of thumb encoded here is: retry transient failures within a small bounded
// budget, give up cleanly when the budget is spent, and count both so a
// retry storm is visible in benchmarks rather than silently absorbed.
package resil

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/fsio"
)

// Class is the retryability classification of an error.
type Class int

const (
	// ClassNone is the classification of a nil error.
	ClassNone Class = iota
	// ClassTransient errors may clear on their own; retrying the identical
	// operation is sensible (the fsio.ErrTransient contract).
	ClassTransient
	// ClassPermanent errors will not clear without changing the request
	// (not-exist, exists, quota, closed handles, io.EOF, plain errors).
	ClassPermanent
	// ClassCorrupt errors mean the bytes were read fine but failed
	// validation (bad magic, checksum, torn frame). Never retried here:
	// re-reading returns the same bytes; recovery needs a different replica
	// or a rewrite, which is the caller's decision.
	ClassCorrupt
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassTransient:
		return "transient"
	case ClassPermanent:
		return "permanent"
	case ClassCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// corruptMarker is implemented by errors that indicate validation failure
// on successfully-read bytes (internal/core's ErrCorrupt). Detected
// structurally so this package does not import the packages it serves.
type corruptMarker interface{ Corrupt() bool }

// Classify maps an error to its retryability class. Corrupt takes
// precedence over transient: an error chain that both carries a corrupt
// marker and wraps ErrTransient is data damage first.
func Classify(err error) Class {
	if err == nil {
		return ClassNone
	}
	var cm corruptMarker
	if errors.As(err, &cm) && cm.Corrupt() {
		return ClassCorrupt
	}
	if errors.Is(err, fsio.ErrTransient) {
		return ClassTransient
	}
	return ClassPermanent
}

// Budget bounds one logical operation's retries: how many attempts, how the
// delay between them grows, and an optional total-time ceiling. The zero
// value is usable and means "default small budget" (see the field docs).
// A Budget is immutable in use; one value may drive any number of
// concurrent Do calls.
type Budget struct {
	// MaxAttempts is the total number of tries including the first
	// (default 4; 1 disables retries).
	MaxAttempts int
	// BaseDelay is the sleep before the first retry (default 2ms).
	BaseDelay time.Duration
	// MaxDelay caps the grown delay (default 100ms).
	MaxDelay time.Duration
	// Multiplier grows the delay per retry (default 2).
	Multiplier float64
	// Jitter spreads each delay uniformly over [d·(1−J), d·(1+J)] to
	// de-synchronize retrying clients (default 0.2; 0 disables — but note
	// the zero value of Budget still gets 0.2 via defaults; set a negative
	// Jitter for "explicitly none").
	Jitter float64
	// Total, when positive, caps the cumulative delay Do will spend
	// sleeping for one logical operation; an attempt whose backoff would
	// exceed it gives up instead.
	Total time.Duration
	// Seed makes the jitter stream deterministic. Two Do calls over equal
	// Budgets replay identical delay schedules, which keeps simulated
	// experiments bit-reproducible.
	Seed uint64
	// Sleep delivers the backoff delay. nil means time.Sleep. Simulations
	// pass a virtual-clock advancer so retries cost simulated, not real,
	// time.
	Sleep func(time.Duration)
}

// Default knobs for zero-valued Budget fields.
const (
	DefaultMaxAttempts = 4
	DefaultBaseDelay   = 2 * time.Millisecond
	DefaultMaxDelay    = 100 * time.Millisecond
	DefaultMultiplier  = 2.0
	DefaultJitter      = 0.2
)

func (b Budget) maxAttempts() int {
	if b.MaxAttempts <= 0 {
		return DefaultMaxAttempts
	}
	return b.MaxAttempts
}

func (b Budget) baseDelay() time.Duration {
	if b.BaseDelay <= 0 {
		return DefaultBaseDelay
	}
	return b.BaseDelay
}

func (b Budget) maxDelay() time.Duration {
	if b.MaxDelay <= 0 {
		return DefaultMaxDelay
	}
	return b.MaxDelay
}

func (b Budget) multiplier() float64 {
	if b.Multiplier <= 1 {
		return DefaultMultiplier
	}
	return b.Multiplier
}

func (b Budget) jitter() float64 {
	switch {
	case b.Jitter < 0:
		return 0
	case b.Jitter == 0:
		return DefaultJitter
	case b.Jitter > 1:
		return 1
	}
	return b.Jitter
}

// Counters tallies retry activity across any number of concurrent Do
// calls. All fields are updated atomically; read them with the Snapshot
// method or atomic loads.
type Counters struct {
	// Ops is the number of logical operations attempted (Do calls).
	Ops atomic.Int64
	// Retries is the number of re-attempts after a retryable failure.
	Retries atomic.Int64
	// GiveUps is the number of logical operations that exhausted their
	// budget and returned a retryable error anyway.
	GiveUps atomic.Int64
}

// CounterSnapshot is a point-in-time copy of Counters.
type CounterSnapshot struct {
	Ops, Retries, GiveUps int64
}

// Snapshot returns a consistent-enough copy for reporting (fields are
// loaded individually; totals may skew by in-flight ops).
func (c *Counters) Snapshot() CounterSnapshot {
	return CounterSnapshot{
		Ops:     c.Ops.Load(),
		Retries: c.Retries.Load(),
		GiveUps: c.GiveUps.Load(),
	}
}

// splitmix64 drives deterministic jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Do runs op under the budget, retrying while Classify reports the failure
// transient. It returns nil on the first success, the last error when the
// budget is exhausted (counted as a give-up), and immediately on the first
// permanent or corrupt error (not a give-up: retrying was never on the
// table). ctrs may be nil.
func Do(b Budget, ctrs *Counters, op func() error) error {
	return DoWhile(b, ctrs, func(err error) bool {
		return Classify(err) == ClassTransient
	}, op)
}

// DoWhile is Do with a caller-chosen retry predicate, for waits whose
// "transient" condition is not an fsio transient error — e.g. polling for
// a file another task is about to create retries ErrNotExist, which
// Classify correctly calls permanent for a single request but which here
// is the expected not-yet state. The backoff, budget, and counter
// semantics are identical to Do.
func DoWhile(b Budget, ctrs *Counters, retryable func(error) bool, op func() error) error {
	if ctrs != nil {
		ctrs.Ops.Add(1)
	}
	sleep := b.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	maxAtt := b.maxAttempts()
	delay := b.baseDelay()
	var slept time.Duration
	rng := b.Seed
	var err error
	attempts := 0
	for attempt := 1; ; attempt++ {
		attempts = attempt
		err = op()
		if err == nil {
			return nil
		}
		if !retryable(err) {
			return err
		}
		if attempt >= maxAtt {
			break
		}
		d := delay
		if j := b.jitter(); j > 0 {
			rng = splitmix64(rng)
			// u in [-1, 1) from the low 52 bits.
			u := float64(rng&((1<<52)-1))/float64(uint64(1)<<51) - 1
			d = time.Duration(float64(d) * (1 + j*u))
			if d <= 0 {
				d = 1
			}
		}
		if b.Total > 0 && slept+d > b.Total {
			break
		}
		if ctrs != nil {
			ctrs.Retries.Add(1)
		}
		sleep(d)
		slept += d
		delay = time.Duration(float64(delay) * b.multiplier())
		if md := b.maxDelay(); delay > md {
			delay = md
		}
	}
	if ctrs != nil {
		ctrs.GiveUps.Add(1)
	}
	return fmt.Errorf("resil: budget exhausted after %d attempts: %w", attempts, err)
}
