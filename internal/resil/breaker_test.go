package resil

import (
	"sync"
	"testing"
)

func TestBreakerStateMachine(t *testing.T) {
	b := NewBreaker(3, 4)
	if b.State() != Closed {
		t.Fatalf("new breaker state %v, want closed", b.State())
	}

	// Interleaved success resets the consecutive count.
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatalf("2 consecutive failures tripped a threshold-3 breaker")
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("3rd consecutive failure did not open the circuit")
	}

	// Open: fail fast for cooldown requests, counting each reject.
	for i := 0; i < 4; i++ {
		if b.Allow() {
			t.Fatalf("open breaker allowed request %d", i)
		}
	}
	if b.State() != HalfOpen {
		t.Fatalf("after cooldown rejects state is %v, want half-open", b.State())
	}

	// HalfOpen: exactly one probe goes through.
	if !b.Allow() {
		t.Fatalf("half-open breaker rejected the probe")
	}
	if b.Allow() {
		t.Fatalf("half-open breaker allowed a second concurrent probe")
	}

	// Probe fails → re-open, full cooldown again.
	b.Failure()
	if b.State() != Open {
		t.Fatalf("failed probe left state %v, want open", b.State())
	}
	for i := 0; i < 4; i++ {
		if b.Allow() {
			t.Fatalf("re-opened breaker allowed request %d", i)
		}
	}
	if !b.Allow() {
		t.Fatalf("second half-open rejected the probe")
	}

	// Probe succeeds → closed, counters reset.
	b.Success()
	if b.State() != Closed {
		t.Fatalf("successful probe left state %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatalf("closed breaker rejected a request")
	}
	snap := b.Snapshot()
	if snap.Opens != 2 {
		t.Fatalf("Opens = %d, want 2 (initial trip + failed probe)", snap.Opens)
	}
	if snap.State != Closed || snap.Fails != 0 {
		t.Fatalf("snapshot %+v, want closed with zero fails", snap)
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(0, -1)
	if b.threshold != DefaultBreakerThreshold || b.cooldown != DefaultBreakerCooldown {
		t.Fatalf("NewBreaker(0,-1) = threshold %d cooldown %d, want defaults %d/%d",
			b.threshold, b.cooldown, DefaultBreakerThreshold, DefaultBreakerCooldown)
	}
}

// TestBreakerConcurrent hammers one breaker from many goroutines under the
// race detector: the invariants are "no panic, no race, at most one probe
// admitted per half-open episode, and the state is always a legal value".
func TestBreakerConcurrent(t *testing.T) {
	b := NewBreaker(3, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if b.Allow() {
					if (g+i)%3 == 0 {
						b.Failure()
					} else {
						b.Success()
					}
				}
				switch s := b.State(); s {
				case Closed, Open, HalfOpen:
				default:
					panic("illegal breaker state")
				}
				_ = b.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	// The breaker must still function after the storm.
	for b.State() != Closed {
		if b.Allow() {
			b.Success()
		}
	}
	if !b.Allow() {
		t.Fatalf("breaker wedged after concurrent storm")
	}
}
