// Package backendflag is the shared -backend flag of the command-line
// tools: every cmd that binds a file system (sionserve, sionrouter,
// siondefrag, sionsplit, sionverify) selects its storage backend through
// one spec syntax and one stack builder, instead of hard-coding
// fsio.NewOS per command.
//
// Spec syntax: "posix" (the OS file system) or "objstore[,profile]"
// (the simulated object-store request model over the OS file system;
// profiles: "s3" — the stock 8 MiB-part profile — and "smallpart").
// The objstore backend keeps real bytes on the local file system while
// modeling the gateway's request ledger and capability descriptor, so
// the tools exercise the backend-aware geometry paths end to end.
package backendflag

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/fsio"
	"repro/internal/obs"
	"repro/internal/simfs"
)

// Usage is the shared help text of the -backend flag.
const Usage = "storage backend: posix, or objstore[,profile] (profiles: s3, smallpart)"

// Default is the spec Build treats as "posix".
const Default = "posix"

// Flag registers the shared -backend flag on the default flag set.
func Flag() *string {
	return flag.String("backend", Default, Usage)
}

// Stack is one built backend stack.
type Stack struct {
	// FS is the file system to mount (instrumented when Build got a
	// registry).
	FS fsio.FileSystem
	// Label is the backend's metrics label ("os", "objstore"), as
	// reported by its capability descriptor.
	Label string
	// Obj is the object store's request ledger; nil for posix.
	Obj *simfs.ObjStore
}

// Build turns a -backend spec into a backend stack. A non-nil registry
// wraps the stack with a backend-labeled fsio meter, so every fsio_*
// family the command exposes carries the backend label.
func Build(spec string, reg *obs.Registry) (*Stack, error) {
	kind, profile := spec, ""
	if i := strings.IndexByte(spec, ','); i >= 0 {
		kind, profile = spec[:i], spec[i+1:]
	}
	var st Stack
	switch kind {
	case "", "posix":
		if profile != "" {
			return nil, fmt.Errorf("backendflag: posix takes no profile (got %q)", profile)
		}
		st = Stack{FS: fsio.NewOS(""), Label: "os"}
	case "objstore":
		prof, ok := simfs.ObjProfileByName(profile)
		if !ok {
			return nil, fmt.Errorf("backendflag: unknown objstore profile %q (use s3 or smallpart)", profile)
		}
		obj := simfs.NewObjStore(prof)
		st = Stack{FS: obj.Wrap(fsio.NewOS(""), nil), Label: "objstore", Obj: obj}
	default:
		return nil, fmt.Errorf("backendflag: unknown backend %q (use posix or objstore[,profile])", kind)
	}
	if lbl := fsio.CapabilitiesOf(st.FS).Backend; lbl != "" {
		st.Label = lbl
	}
	if reg != nil {
		st.FS = fsio.Instrument(st.FS, fsio.NewMeter(reg, st.Label))
	}
	return &st, nil
}
