package backendflag

import (
	"strings"
	"testing"

	"repro/internal/fsio"
	"repro/internal/obs"
)

func TestBuildSpecs(t *testing.T) {
	cases := []struct {
		spec      string
		label     string
		wantObj   bool
		wantError string
	}{
		{spec: "posix", label: "os"},
		{spec: "", label: "os"},
		{spec: "objstore", label: "objstore", wantObj: true},
		{spec: "objstore,s3", label: "objstore", wantObj: true},
		{spec: "objstore,smallpart", label: "objstore", wantObj: true},
		{spec: "objstore,bogus", wantError: "unknown objstore profile"},
		{spec: "posix,s3", wantError: "takes no profile"},
		{spec: "tape", wantError: "unknown backend"},
	}
	for _, tc := range cases {
		st, err := Build(tc.spec, nil)
		if tc.wantError != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantError) {
				t.Errorf("Build(%q) err = %v, want %q", tc.spec, err, tc.wantError)
			}
			continue
		}
		if err != nil {
			t.Errorf("Build(%q): %v", tc.spec, err)
			continue
		}
		if st.Label != tc.label {
			t.Errorf("Build(%q) label = %q, want %q", tc.spec, st.Label, tc.label)
		}
		if (st.Obj != nil) != tc.wantObj {
			t.Errorf("Build(%q) Obj = %v, want present=%v", tc.spec, st.Obj, tc.wantObj)
		}
	}
}

// TestBuildCapsAndLabelAgree pins the label/descriptor contract: the
// metrics backend label is the descriptor's Backend name, and the
// descriptor survives the instrumentation Build adds.
func TestBuildCapsAndLabelAgree(t *testing.T) {
	for _, spec := range []string{"posix", "objstore,smallpart"} {
		st, err := Build(spec, obs.NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		caps := fsio.CapabilitiesOf(st.FS)
		if caps.Backend != st.Label {
			t.Errorf("%s: descriptor backend %q != label %q", spec, caps.Backend, st.Label)
		}
		if spec != "posix" && caps.PartSizeFloor <= 0 {
			t.Errorf("%s: descriptor lost through instrumentation: %+v", spec, caps)
		}
	}
}
