package cluster

import (
	"repro/internal/obs"
)

// clusterMetrics is the router's instrument set. The cluster shares one
// registry with its nodes: each node's serve families carry a node=<id>
// label (injected at Join), while the router's own families below are
// unlabeled, so one /metrics scrape shows the whole topology — routing
// totals next to every node's cache behavior.
type clusterMetrics struct {
	reg *obs.Registry

	requests  *obs.Counter
	failovers *obs.Counter
	allDown   *obs.Counter
	handles   *obs.Counter
	// rotations counts hot-block reads served through the replica
	// rotation (rather than pinned to the primary); rebalanceMoves the
	// replica pre-materializations RebalanceHot attempted.
	rotations      *obs.Counter
	rebalanceMoves *obs.Counter
}

func newClusterMetrics(reg *obs.Registry, c *Cluster) *clusterMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &clusterMetrics{reg: reg}
	m.requests = reg.Counter("cluster_requests_total",
		"block-granular reads routed through the ring")
	m.failovers = reg.Counter("cluster_failovers_total",
		"extra replica attempts after a failed one")
	m.allDown = reg.Counter("cluster_all_replicas_down_total",
		"reads that exhausted every replica")
	m.handles = reg.Counter("cluster_handles_opened_total",
		"client sessions opened through the router")
	m.rotations = reg.Counter("cluster_hot_rotations_total",
		"hot-block reads served through the replica rotation")
	m.rebalanceMoves = reg.Counter("cluster_rebalance_moves_total",
		"hot-block replica fills attempted by RebalanceHot")
	reg.GaugeFunc("cluster_nodes",
		"serve nodes currently on the ring",
		func() float64 {
			c.mu.RLock()
			defer c.mu.RUnlock()
			return float64(len(c.nodes))
		})
	reg.GaugeFunc("cluster_hot_tracked",
		"blocks in the tracked hot set",
		func() float64 { return float64(c.HotTracked()) })
	return m
}
