package cluster

import (
	"sort"
)

// Consistent-hash ring: every node contributes VNodes virtual points,
// hashed from its id, and a (physical file, block) key is owned by the
// first point clockwise from the key's hash. Virtual points smooth the
// load split, and consistency is the scale-out property the router needs:
// a node joining or leaving remaps only the ~1/N of blocks adjacent to
// its points, so the surviving nodes' caches stay hot across membership
// churn (the same argument CkIO makes for over-decomposing its reader
// layer: ownership moves in small pieces, not wholesale).

// ringPoint is one virtual point: a position on the 64-bit ring and the
// index (into the router's node slice) of the node that owns it.
type ringPoint struct {
	hash uint64
	node int
}

type ring struct {
	points []ringPoint // sorted by hash
	nodes  int
}

// fnv1a hashes a string (FNV-1a, 64 bit).
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 finalizes an integer key (splitmix64 finalizer) so consecutive
// blocks scatter uniformly around the ring.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// blockHash is the ring position of cache block (file, block).
func blockHash(file int, block int64) uint64 {
	return mix64(uint64(file)*0x9e3779b97f4a7c15 + uint64(block) + 0x632be59bd9b4e019)
}

// buildRing places vnodes points per node. ids is the router's node slice
// order; point hashes depend only on the node ids, so the same membership
// always yields the same ring regardless of join order.
func buildRing(ids []string, vnodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, len(ids)*vnodes), nodes: len(ids)}
	for n, id := range ids {
		base := fnv1a(id)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: mix64(base + uint64(v)*0x9e3779b97f4a7c15), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// lookup returns every node index in ring order starting from the first
// point clockwise of key: index 0 is the block's primary, the rest are
// its failover (and hot-replica) successors. The slice is freshly
// allocated and never empty for a non-empty ring.
func (r *ring) lookup(key uint64) []int {
	if len(r.points) == 0 {
		return nil
	}
	out := make([]int, 0, r.nodes)
	seen := make([]bool, r.nodes)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	for i := 0; i < len(r.points) && len(out) < r.nodes; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}
