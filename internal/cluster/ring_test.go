package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func ringIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("node-%d", i)
	}
	return ids
}

// TestRingLookupCoversAllNodes pins lookup's contract: for any key it
// returns every node exactly once, deterministically, with the same
// primary on repeated calls.
func TestRingLookupCoversAllNodes(t *testing.T) {
	r := buildRing(ringIDs(5), 64)
	for k := 0; k < 1000; k++ {
		key := blockHash(k%3, int64(k))
		order := r.lookup(key)
		if len(order) != 5 {
			t.Fatalf("key %d: lookup returned %d nodes, want 5", k, len(order))
		}
		seen := make(map[int]bool)
		for _, ni := range order {
			if ni < 0 || ni >= 5 || seen[ni] {
				t.Fatalf("key %d: bad or duplicate node index %d in %v", k, ni, order)
			}
			seen[ni] = true
		}
		if again := r.lookup(key); !reflect.DeepEqual(order, again) {
			t.Fatalf("key %d: lookup not deterministic: %v then %v", k, order, again)
		}
	}
}

// TestRingEmptyAndSingle covers the degenerate memberships.
func TestRingEmptyAndSingle(t *testing.T) {
	if got := buildRing(nil, 64).lookup(12345); got != nil {
		t.Fatalf("empty ring lookup = %v, want nil", got)
	}
	one := buildRing([]string{"solo"}, 64)
	for k := 0; k < 100; k++ {
		if got := one.lookup(blockHash(0, int64(k))); len(got) != 1 || got[0] != 0 {
			t.Fatalf("single-node ring lookup = %v, want [0]", got)
		}
	}
}

// TestRingConsistency pins the property the router exists for: removing
// one node only remaps the blocks that node owned. Every block whose
// primary survives keeps it.
func TestRingConsistency(t *testing.T) {
	ids := ringIDs(5)
	full := buildRing(ids, 64)
	const gone = 3 // drop node-3
	var rest []string
	for i, id := range ids {
		if i != gone {
			rest = append(rest, id)
		}
	}
	small := buildRing(rest, 64)
	// Map small's node indexes back to full's.
	backMap := make([]int, len(rest))
	for i := range rest {
		if i < gone {
			backMap[i] = i
		} else {
			backMap[i] = i + 1
		}
	}
	keys, moved := 0, 0
	for f := 0; f < 2; f++ {
		for b := int64(0); b < 4096; b++ {
			key := blockHash(f, b)
			before := full.lookup(key)[0]
			after := backMap[small.lookup(key)[0]]
			keys++
			if before == gone {
				moved++
				continue // had to move somewhere
			}
			if after != before {
				t.Fatalf("block (%d,%d): primary moved %d -> %d though node %d left",
					f, b, before, after, gone)
			}
		}
	}
	// The departed node owned roughly 1/5 of the keys; demand it owned
	// some, and not a wildly disproportionate share.
	if moved == 0 {
		t.Fatal("departed node owned no blocks at all")
	}
	if frac := float64(moved) / float64(keys); frac > 0.45 {
		t.Fatalf("departed node owned %.0f%% of blocks — ring badly unbalanced", 100*frac)
	}
}

// TestRingBalance demands a roughly even block split across nodes — the
// property virtual nodes buy.
func TestRingBalance(t *testing.T) {
	const nodes = 4
	r := buildRing(ringIDs(nodes), 64)
	counts := make([]int, nodes)
	const blocks = 1 << 15
	for b := int64(0); b < blocks; b++ {
		counts[r.lookup(blockHash(0, b))[0]]++
	}
	for n, c := range counts {
		frac := float64(c) / blocks
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("node %d owns %.1f%% of %d blocks (counts %v) — want a rough 25%% split",
				n, 100*frac, blocks, counts)
		}
	}
}
