// Package cluster scales the read-serving tier (internal/serve)
// horizontally: a Cluster is a router that consistent-hashes
// (physical file, cache block) across N serve nodes on a hash ring,
// replicates the hottest blocks to K nodes, and lets nodes fill their
// caches from each other before falling back to the backend — so a block
// is read from the file system once per cluster, not once per node. This
// is the aggregator/broadcast structure of collective-buffering models
// (Zhang et al., arXiv:0901.0134) and CkIO's over-decomposed reader layer
// (arXiv:2411.18593) applied to the serving tier: the tab6 zipfian
// workload that melts one node spreads across the ring, and the working
// set is cached once cluster-wide instead of once per node.
//
// Four mechanisms do the work:
//
//   - Consistent-hash routing (ring.go): every cache block has a primary
//     node and a deterministic successor order. A node joining or leaving
//     remaps only the blocks adjacent to its ring points, so the
//     surviving caches stay hot across membership churn.
//   - Peer cache fill: each node's serve.Config.PeerFill hook asks the
//     other nodes' Peek (a passive cache-only lookup) before its fetcher
//     touches the backend. A block that any node already holds spreads
//     through the cluster without another backend read.
//   - Hot-block replication: RebalanceHot merges the nodes' shard-LRU hit
//     reports (serve.HotBlocks), tracks the hottest blocks, and
//     pre-materializes them on the first ReplicateHot ring successors
//     (cheap, via peer fill). Reads of a hot block rotate across its
//     replicas instead of hammering the primary.
//   - Failure routing: nodes expose their breaker state (serve.Health,
//     serve.Degraded); the router tries healthy replicas first and fails
//     over past open-circuit, closed, or transiently failing nodes. Only
//     when every replica is down does a read fail, with a typed
//     serve.ErrDegraded so front ends can answer 503 + Retry-After.
//
// Clients call Open and get an ordinary serve.Handle (Read, Seek,
// ReadLogicalAt, KeyReader): the Handle reads through the Cluster's
// FileReaderAt, which routes block by block. All methods are safe for
// concurrent use.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/obs"
	"repro/internal/resil"
	"repro/internal/serve"
)

// ErrNoNodes is returned (wrapped) by reads routed while the cluster has
// no serving nodes (never joined, or every node has left).
var ErrNoNodes = errors.New("cluster: no serving nodes")

// ErrClusterClosed is returned (wrapped) by operations after Close.
var ErrClusterClosed = errors.New("cluster: cluster is closed")

// Config tunes a Cluster. The zero value (or nil) picks the defaults.
type Config struct {
	// VNodes is the number of virtual ring points per node (default 64).
	// More points smooth the block split across nodes at the cost of a
	// larger ring.
	VNodes int

	// ReplicateHot is the number of ring successors a hot block is
	// replicated to, including its primary (default 2; 1 disables
	// replication). Reads of a hot block rotate across its replicas.
	ReplicateHot int

	// HotMinHits is the per-entry cache hit count at which a block counts
	// as hot when RebalanceHot merges the nodes' shard-LRU reports
	// (default 64).
	HotMinHits int64

	// MaxHot caps the tracked hot set (default 256 blocks).
	MaxHot int

	// Metrics, when non-nil, is the obs registry the cluster and every
	// node joined to it register their instruments in (nil gives the
	// cluster a private registry, reachable via Metrics()). Nodes'
	// serve families are labeled node=<id>; the router's cluster_*
	// families are unlabeled. Don't register unlabeled serve.Servers in
	// the same registry — the family label-key check panics.
	Metrics *obs.Registry
}

func resolveConfig(cfg *Config) Config {
	var c Config
	if cfg != nil {
		c = *cfg
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.ReplicateHot <= 0 {
		c.ReplicateHot = 2
	}
	if c.HotMinHits <= 0 {
		c.HotMinHits = 64
	}
	if c.MaxHot <= 0 {
		c.MaxHot = 256
	}
	return c
}

// Node is one serve instance on the ring.
type Node struct {
	ID  string
	srv *serve.Server
}

// Server returns the node's underlying serve.Server (its stats, health,
// and cache surface).
func (n *Node) Server() *serve.Server { return n.srv }

type hotKey struct {
	file  int
	block int64
}

// Cluster routes reads across serve nodes on a consistent-hash ring. See
// the package documentation for the mechanism.
type Cluster struct {
	cfg Config

	mu         sync.RWMutex // guards membership and the snapshot below
	closed     bool
	name       string // multifile base name (set by the first Join)
	layout     *sion.Layout
	blockBytes int64
	nodes      []*Node // sorted by ID
	ring       *ring

	hotMu sync.RWMutex
	hot   map[hotKey]struct{}

	rr atomic.Uint64 // rotates reads across hot-block replicas

	// m holds the routing counters as obs instruments (Stats() reads
	// them); the same registry carries every node's serve families,
	// labeled node=<id>.
	m *clusterMetrics
}

var _ serve.SpanFileReaderAt = (*Cluster)(nil)

// New builds an empty cluster; Join adds serve nodes to it.
func New(cfg *Config) *Cluster {
	c := &Cluster{cfg: resolveConfig(cfg), hot: make(map[hotKey]struct{})}
	c.m = newClusterMetrics(c.cfg.Metrics, c)
	return c
}

// Metrics returns the registry the cluster's (and its nodes')
// instruments live in.
func (c *Cluster) Metrics() *obs.Registry { return c.m.reg }

// Join opens the multifile `name` on fsys as a new serve node `id` and
// adds it to the ring. The node's serve.Config (nil for defaults) is
// taken over with two adjustments: its PeerFill hook is wired to the
// other nodes' caches, and its cache-block size is forced to the
// cluster's, which the first Join establishes (routing and peer fill are
// block-granular, so every node must agree). All nodes of one cluster
// must front the same multifile.
func (c *Cluster) Join(id string, fsys fsio.FileSystem, name string, scfg *serve.Config) (*Node, error) {
	c.mu.RLock()
	closed, curName, blockBytes := c.closed, c.name, c.blockBytes
	c.mu.RUnlock()
	if closed {
		return nil, fmt.Errorf("cluster: join %s: %w", id, ErrClusterClosed)
	}
	if curName != "" && name != curName {
		return nil, fmt.Errorf("cluster: join %s: multifile %q differs from the cluster's %q", id, name, curName)
	}
	var cfg serve.Config
	if scfg != nil {
		cfg = *scfg
	}
	cfg.BlockBytes = blockBytes // 0 on the first join: serve resolves the default
	cfg.PeerFill = func(file int, block int64) ([]byte, bool) { return c.peerFill(id, file, block) }
	// Every node's serve instruments land in the cluster's registry under
	// a node label, so one scrape covers the whole topology. (A node that
	// re-joins under a departed id resumes that id's counters — counters
	// are cumulative per label set, the Prometheus restart semantics.)
	cfg.Metrics = c.m.reg
	cfg.MetricLabels = obs.L("node", id)
	srv, err := serve.New(fsys, name, &cfg)
	if err != nil {
		return nil, fmt.Errorf("cluster: join %s: %w", id, err)
	}
	n := &Node{ID: id, srv: srv}

	c.mu.Lock()
	switch {
	case c.closed:
		err = fmt.Errorf("cluster: join %s: %w", id, ErrClusterClosed)
	case c.blockBytes != 0 && srv.BlockBytes() != c.blockBytes:
		err = fmt.Errorf("cluster: join %s: block size %d differs from the cluster's %d",
			id, srv.BlockBytes(), c.blockBytes)
	default:
		for _, other := range c.nodes {
			if other.ID == id {
				err = fmt.Errorf("cluster: join %s: node id already on the ring", id)
				break
			}
		}
	}
	if err != nil {
		c.mu.Unlock()
		srv.Close()
		return nil, err
	}
	if c.name == "" {
		c.name = name
		c.layout = srv.Layout()
		c.blockBytes = srv.BlockBytes()
	}
	// Copy-on-write: readers iterate snapshots of c.nodes outside the
	// lock, so membership changes must never mutate the old backing array.
	nodes := make([]*Node, 0, len(c.nodes)+1)
	nodes = append(nodes, c.nodes...)
	nodes = append(nodes, n)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	c.nodes = nodes
	c.rebuildRing()
	c.mu.Unlock()
	return n, nil
}

// Leave removes node `id` from the ring and closes its serve instance.
// Blocks whose primary departs remap to their ring successors; reads that
// raced the departure fail over the same way they fail over a degraded
// node, so serving continues uninterrupted as long as one node remains.
func (c *Cluster) Leave(id string) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("cluster: leave %s: %w", id, ErrClusterClosed)
	}
	var gone *Node
	nodes := make([]*Node, 0, len(c.nodes)) // copy-on-write, like Join
	for _, n := range c.nodes {
		if n.ID == id {
			gone = n
			continue
		}
		nodes = append(nodes, n)
	}
	if gone == nil {
		c.mu.Unlock()
		return fmt.Errorf("cluster: leave %s: no such node", id)
	}
	c.nodes = nodes
	c.rebuildRing()
	c.mu.Unlock()
	return gone.srv.Close()
}

// rebuildRing recomputes the ring from the current membership (caller
// holds mu.W). Point positions depend only on node ids, so the same
// membership always yields the same ring regardless of join order.
func (c *Cluster) rebuildRing() {
	ids := make([]string, len(c.nodes))
	for i, n := range c.nodes {
		ids[i] = n.ID
	}
	c.ring = buildRing(ids, c.cfg.VNodes)
}

// Close shuts down every node. It is idempotent; reads issued after Close
// fail with ErrClusterClosed.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	nodes := c.nodes
	c.nodes = nil
	c.ring = nil
	c.mu.Unlock()
	var firstErr error
	for _, n := range nodes {
		if err := n.srv.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Name returns the multifile base name ("" before the first Join).
func (c *Cluster) Name() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.name
}

// Layout returns the multifile layout (nil before the first Join).
func (c *Cluster) Layout() *sion.Layout {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.layout
}

// BlockBytes returns the cluster's routing block size (0 before the first
// Join).
func (c *Cluster) BlockBytes() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.blockBytes
}

// NodeIDs lists the current membership, sorted.
func (c *Cluster) NodeIDs() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids := make([]string, len(c.nodes))
	for i, n := range c.nodes {
		ids[i] = n.ID
	}
	return ids
}

// Open starts a read session on the logical file of writer rank `rank`.
// The returned Handle carries the full serve.Handle semantics (Read,
// Seek, ReadLogicalAt, KeyReader); every block it touches is routed
// through the ring.
func (c *Cluster) Open(rank int) (*serve.Handle, error) {
	c.mu.RLock()
	closed, layout := c.closed, c.layout
	c.mu.RUnlock()
	if closed {
		return nil, fmt.Errorf("cluster: open rank %d: %w", rank, ErrClusterClosed)
	}
	if layout == nil {
		return nil, fmt.Errorf("cluster: open rank %d: %w", rank, ErrNoNodes)
	}
	h, err := serve.NewHandle(layout, rank, c)
	if err != nil {
		return nil, err
	}
	c.m.handles.Inc()
	return h, nil
}

// peerFill answers node selfID's fetcher: scan the other nodes' caches
// (in ring order for the block, most likely holders first) for the block,
// without triggering any fetch. This is the hook behind
// serve.Config.PeerFill.
func (c *Cluster) peerFill(selfID string, file int, block int64) ([]byte, bool) {
	c.mu.RLock()
	nodes, rg := c.nodes, c.ring
	c.mu.RUnlock()
	if rg == nil {
		return nil, false
	}
	for _, ni := range rg.lookup(blockHash(file, block)) {
		n := nodes[ni]
		if n.ID == selfID {
			continue
		}
		if data, ok := n.srv.Peek(file, block); ok {
			return data, true
		}
	}
	return nil, false
}

// isHot reports whether (file, block) is in the tracked hot set.
func (c *Cluster) isHot(file int, block int64) bool {
	c.hotMu.RLock()
	defer c.hotMu.RUnlock()
	_, ok := c.hot[hotKey{file, block}]
	return ok
}

// HotTracked returns the size of the tracked hot set.
func (c *Cluster) HotTracked() int {
	c.hotMu.RLock()
	defer c.hotMu.RUnlock()
	return len(c.hot)
}

// RebalanceHot merges the nodes' shard-LRU hit reports into the hot set
// (the hottest MaxHot blocks with at least HotMinHits hits) and
// pre-materializes each hot block on its first ReplicateHot ring
// successors — cheaply, because the replicas fill from the primary's
// cache via peer fill, not from the backend. Reads of hot blocks then
// rotate across the replicas. Call it periodically (cmd/sionrouter does;
// tab9 calls it every few dozen clients); it returns the tracked hot-set
// size. Safe for concurrent use with reads and membership changes.
func (c *Cluster) RebalanceHot() int {
	c.mu.RLock()
	nodes, rg, bs := c.nodes, c.ring, c.blockBytes
	c.mu.RUnlock()
	if len(nodes) == 0 {
		c.hotMu.Lock()
		c.hot = make(map[hotKey]struct{})
		c.hotMu.Unlock()
		return 0
	}
	merged := make(map[hotKey]int64)
	for _, n := range nodes {
		for _, hb := range n.srv.HotBlocks(c.cfg.HotMinHits) {
			merged[hotKey{hb.File, hb.Block}] += hb.Hits
		}
	}
	list := make([]serve.HotBlock, 0, len(merged))
	for k, hits := range merged {
		list = append(list, serve.HotBlock{File: k.file, Block: k.block, Hits: hits})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].Hits != list[j].Hits {
			return list[i].Hits > list[j].Hits
		}
		if list[i].File != list[j].File {
			return list[i].File < list[j].File
		}
		return list[i].Block < list[j].Block
	})
	if len(list) > c.cfg.MaxHot {
		list = list[:c.cfg.MaxHot]
	}
	newHot := make(map[hotKey]struct{}, len(list))
	for _, hb := range list {
		newHot[hotKey{hb.File, hb.Block}] = struct{}{}
	}
	c.hotMu.Lock()
	c.hot = newHot
	c.hotMu.Unlock()

	if k := c.cfg.ReplicateHot; k > 1 {
		for _, hb := range list {
			cands := rg.lookup(blockHash(hb.File, hb.Block))
			for i := 0; i < k && i < len(cands); i++ {
				n := nodes[cands[i]]
				if _, ok := n.srv.Peek(hb.File, hb.Block); ok {
					continue
				}
				// Best-effort: a degraded or racing-departed replica just
				// stays cold until the next rebalance.
				c.m.rebalanceMoves.Inc()
				buf := make([]byte, bs)
				_ = n.srv.ReadFileAt(hb.File, buf, hb.Block*bs)
			}
		}
	}
	return len(list)
}

// ReadFileAt routes [off, off+len(p)) of physical file `file` block by
// block across the ring: each block goes to its primary (or rotates
// across its replicas when hot), failing over along the ring past
// degraded, closed, or transiently failing nodes. It fails with a typed
// serve.ErrDegraded only when every replica of a block is down; a
// permanent error (the backend answering wrongly) is returned as-is,
// since every node would fail identically.
func (c *Cluster) ReadFileAt(file int, p []byte, off int64) error {
	return c.ReadFileAtSpan(file, p, off, nil)
}

// ReadFileAtSpan is ReadFileAt with a breadcrumb trail: sp (nil is fine)
// additionally records each failover hop, and the node that serves each
// block records its cache/backend crumbs on the same span (see
// serve.ReadFileAtSpan).
func (c *Cluster) ReadFileAtSpan(file int, p []byte, off int64, sp *obs.Span) error {
	c.mu.RLock()
	closed, name := c.closed, c.name
	nodes, rg, bs := c.nodes, c.ring, c.blockBytes
	c.mu.RUnlock()
	if closed {
		return fmt.Errorf("cluster: %s: %w", name, ErrClusterClosed)
	}
	if len(nodes) == 0 {
		return fmt.Errorf("cluster: %s: %w", name, ErrNoNodes)
	}
	if off < 0 {
		return fmt.Errorf("cluster: %s: negative physical offset %d", name, off)
	}
	end := off + int64(len(p))
	for b := off / bs; b*bs < end; b++ {
		lo, hi := b*bs, (b+1)*bs
		if lo < off {
			lo = off
		}
		if hi > end {
			hi = end
		}
		if err := c.readBlock(nodes, rg, file, b, p[lo-off:hi-off], lo, sp); err != nil {
			return err
		}
	}
	return nil
}

// readBlock serves one block-contained window through the ring.
func (c *Cluster) readBlock(nodes []*Node, rg *ring, file int, b int64, p []byte, off int64, sp *obs.Span) error {
	c.m.requests.Inc()
	cands := rg.lookup(blockHash(file, b))
	// Rotate reads of a hot block across its replicas so the primary is
	// not the only node paying for popularity.
	order := cands
	if k := c.cfg.ReplicateHot; k > 1 && len(cands) > 1 && c.isHot(file, b) {
		if k > len(cands) {
			k = len(cands)
		}
		rot := int(c.rr.Add(1) % uint64(k))
		order = make([]int, 0, len(cands))
		for i := 0; i < k; i++ {
			order = append(order, cands[(rot+i)%k])
		}
		order = append(order, cands[k:]...)
		c.m.rotations.Inc()
	}
	// Healthy replicas first: a node with any open circuit is tried last
	// (its cache may still answer, but it must not absorb primary load).
	try := make([]*Node, 0, len(order))
	var degraded []*Node
	for _, ni := range order {
		if n := nodes[ni]; n.srv.Degraded() {
			degraded = append(degraded, n)
		} else {
			try = append(try, n)
		}
	}
	try = append(try, degraded...)

	var lastErr error
	for i, n := range try {
		err := n.srv.ReadFileAtSpan(file, p, off, sp)
		if err == nil {
			if i > 0 {
				c.m.failovers.Add(int64(i))
				sp.Add(obs.CrumbFailover, int64(i))
			}
			return nil
		}
		lastErr = err
		if !failoverWorthy(err) {
			return err
		}
	}
	c.m.allDown.Inc()
	return fmt.Errorf("cluster: %s: file %d block %d: all %d replicas down (last: %v): %w",
		c.Name(), file, b, len(try), lastErr, serve.ErrDegraded)
}

// failoverWorthy reports whether another replica might answer where this
// node did not: open circuits, closed (departed) nodes, and transient
// backend faults fail over; permanent errors are the backend answering
// and would repeat identically on every node.
func failoverWorthy(err error) bool {
	return errors.Is(err, serve.ErrDegraded) ||
		errors.Is(err, serve.ErrServerClosed) ||
		resil.Classify(err) == resil.ClassTransient
}

// NodeStats is one node's identity and serve counters.
type NodeStats struct {
	ID       string
	Degraded bool
	Serve    serve.Stats
}

// Stats is a snapshot of the cluster's routing counters plus the
// element-wise sum (and per-node breakdown) of the nodes' serve stats.
type Stats struct {
	Nodes           int
	Requests        int64 // block-granular routed reads
	Failovers       int64 // extra replica attempts after a failed one
	AllReplicasDown int64 // reads that exhausted every replica
	HotTracked      int   // tracked hot blocks
	HandlesOpened   int64
	Serve           serve.Stats // sum over nodes
	PerNode         []NodeStats
}

// Stats returns a snapshot of the routing and node counters.
func (c *Cluster) Stats() Stats {
	c.mu.RLock()
	nodes := c.nodes
	c.mu.RUnlock()
	st := Stats{
		Nodes:           len(nodes),
		Requests:        c.m.requests.Value(),
		Failovers:       c.m.failovers.Value(),
		AllReplicasDown: c.m.allDown.Value(),
		HotTracked:      c.HotTracked(),
		HandlesOpened:   c.m.handles.Value(),
	}
	for _, n := range nodes {
		ns := NodeStats{ID: n.ID, Degraded: n.srv.Degraded(), Serve: n.srv.Stats()}
		st.Serve = addStats(st.Serve, ns.Serve)
		st.PerNode = append(st.PerNode, ns)
	}
	return st
}

// addStats sums two serve stat snapshots element-wise.
func addStats(a, b serve.Stats) serve.Stats {
	return serve.Stats{
		Hits:          a.Hits + b.Hits,
		Misses:        a.Misses + b.Misses,
		FlightHits:    a.FlightHits + b.FlightHits,
		BackendReads:  a.BackendReads + b.BackendReads,
		BackendBytes:  a.BackendBytes + b.BackendBytes,
		ServedBytes:   a.ServedBytes + b.ServedBytes,
		Evictions:     a.Evictions + b.Evictions,
		CachedBytes:   a.CachedBytes + b.CachedBytes,
		HandlesOpened: a.HandlesOpened + b.HandlesOpened,
		TailPolls:     a.TailPolls + b.TailPolls,
		PeerFills:     a.PeerFills + b.PeerFills,
		Retries:       a.Retries + b.Retries,
		GiveUps:       a.GiveUps + b.GiveUps,
		Degraded:      a.Degraded + b.Degraded,
		BreakerOpens:  a.BreakerOpens + b.BreakerOpens,
	}
}

// NodeHealth is one node's breaker condition, the substance of
// cmd/sionrouter's /healthz endpoint.
type NodeHealth struct {
	ID       string             `json:"id"`
	Degraded bool               `json:"degraded"`
	Files    []serve.FileHealth `json:"files"`
}

// Health reports every node's per-physical-file breaker state.
func (c *Cluster) Health() []NodeHealth {
	c.mu.RLock()
	nodes := c.nodes
	c.mu.RUnlock()
	out := make([]NodeHealth, len(nodes))
	for i, n := range nodes {
		out[i] = NodeHealth{ID: n.ID, Degraded: n.srv.Degraded(), Files: n.srv.Health()}
	}
	return out
}

// Degraded reports whether the whole cluster is refusing backend work:
// true only when every node (or no node) is serving degraded. While any
// node is healthy the router can route around the rest.
func (c *Cluster) Degraded() bool {
	c.mu.RLock()
	nodes := c.nodes
	c.mu.RUnlock()
	if len(nodes) == 0 {
		return true
	}
	for _, n := range nodes {
		if !n.srv.Degraded() {
			return false
		}
	}
	return true
}
